package genima_test

import (
	"encoding/json"
	"reflect"
	"testing"

	genima "genima"
	"genima/internal/apps"
)

// TestResultJSONRoundTrip: the scripting view of a real run (svmkv
// under GeNIMA with faults, so every section is populated) survives a
// marshal/unmarshal cycle unchanged, and its scalar fields match the
// Result it was built from.
func TestResultJSONRoundTrip(t *testing.T) {
	cfg := genima.DefaultConfig()
	cfg.Faults = genima.FaultMix(0.01, 1)
	entry, ok := apps.ByName(apps.Test, "svmkv")
	if !ok {
		t.Fatal("svmkv not registered")
	}
	res, _, err := genima.Run(cfg, genima.GeNIMA, entry.App)
	if err != nil {
		t.Fatal(err)
	}

	view := genima.NewResultJSON(res)
	if view.Latency == nil {
		t.Fatal("svmkv run produced no latency section")
	}
	if view.Latency.Count == 0 || view.Latency.ReqsPerSec <= 0 {
		t.Fatalf("empty latency summary: %+v", view.Latency)
	}
	if view.Faults.DropsInjected == 0 {
		t.Fatal("faulted run reported no injected drops")
	}
	if len(view.Traffic) == 0 {
		t.Fatal("no per-kind traffic rows")
	}
	if view.ElapsedNs != int64(res.Elapsed) || view.Procs != res.Procs ||
		view.Events != res.Events || view.Label != res.Label {
		t.Fatalf("view scalars do not match result: %+v", view)
	}
	if len(view.Breakdowns) != res.Procs {
		t.Fatalf("got %d per-proc breakdowns, want %d", len(view.Breakdowns), res.Procs)
	}
	var avgTotal int64
	for _, ns := range view.AvgBreakdown {
		avgTotal += ns
	}
	if avgTotal != int64(res.Avg.Total()) {
		t.Fatalf("avg breakdown sums to %d ns, want %d", avgTotal, res.Avg.Total())
	}

	blob, err := json.Marshal(view)
	if err != nil {
		t.Fatal(err)
	}
	var back genima.ResultJSON
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*view, back) {
		t.Fatalf("round trip changed the view:\n marshalled %+v\n decoded    %+v", *view, back)
	}
}

// TestResultJSONCleanRunOmissions: with faults off and a batch app,
// the optional sections behave — no latency block, zero fault
// counters — and the view still round-trips.
func TestResultJSONCleanRunOmissions(t *testing.T) {
	cfg := genima.DefaultConfig()
	entry, ok := apps.ByName(apps.Test, "fft")
	if !ok {
		t.Fatal("fft not registered")
	}
	res, _, err := genima.Run(cfg, genima.Base, entry.App)
	if err != nil {
		t.Fatal(err)
	}
	view := genima.NewResultJSON(res)
	if view.Latency != nil {
		t.Fatalf("batch app grew a latency section: %+v", view.Latency)
	}
	if view.Faults != (genima.FaultsJSON{}) {
		t.Fatalf("clean run reported faults: %+v", view.Faults)
	}
	blob, err := json.Marshal(view)
	if err != nil {
		t.Fatal(err)
	}
	var back genima.ResultJSON
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*view, back) {
		t.Fatal("clean-run view did not round-trip")
	}
}
