package genima_test

// Zero-overhead off-switch regression: with fault injection disabled,
// the packet-level event trace of a run must be byte-identical to the
// pre-faults baseline. The golden hashes below were captured from the
// commit immediately before internal/faults existed; if either test
// fails, the fault/reliability plumbing has leaked timing or events
// into the fault-free path.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	genima "genima"
)

// traceHash runs app under proto at test scale and returns a SHA-256
// over the canonical rendering of every delivered packet, in delivery
// order, plus the run's final elapsed time and event count.
func traceHash(t *testing.T, appName string, proto genima.Protocol, cfg genima.Config) string {
	t.Helper()
	a, _ := appByName(t, appName)
	h := sha256.New()
	res, _, err := genima.RunTraced(cfg, proto, a, func(ev genima.TraceEvent) {
		fmt.Fprintf(h, "%d|%d|%d|%d|%s|%v|%d|%d|%d|%d\n",
			ev.Time, ev.Src, ev.Dst, ev.Size, ev.Kind, ev.Firmware,
			ev.StageTime[0], ev.StageTime[1], ev.StageTime[2], ev.StageTime[3])
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(h, "elapsed=%d events=%d\n", res.Elapsed, res.Events)
	return hex.EncodeToString(h.Sum(nil))
}

// Golden hashes of the pre-faults baseline (fault injection disabled).
const (
	goldenFFTBase     = "ff9fed61efeb81509d901807de7eb3ceda4096f1958061db68305fcfde959ed6"
	goldenWaterGeNIMA = "dafa10df04a99cf51e0e52e9cfe403e869a7f1730c6a6ba28972871e88d299ef"
)

func TestTraceGoldenFaultFreeFFTBase(t *testing.T) {
	cfg := genima.DefaultConfig()
	if got := traceHash(t, "fft", genima.Base, cfg); got != goldenFFTBase {
		t.Errorf("fault-free fft/Base trace hash drifted:\n got %s\nwant %s", got, goldenFFTBase)
	}
}

func TestTraceGoldenFaultFreeWaterGeNIMA(t *testing.T) {
	cfg := genima.DefaultConfig()
	if got := traceHash(t, "water-nsq", genima.GeNIMA, cfg); got != goldenWaterGeNIMA {
		t.Errorf("fault-free water-nsq/GeNIMA trace hash drifted:\n got %s\nwant %s", got, goldenWaterGeNIMA)
	}
}
