package genima

import (
	"genima/internal/stats"
)

// ResultJSON is the machine-readable view of a Result, emitted by
// `genima-run -json` for scripting. Field names are stable snake_case,
// every virtual time is int64 nanoseconds, and the live NI monitor is
// reduced to its per-kind traffic table. The view round-trips through
// encoding/json without loss.
type ResultJSON struct {
	Label     string `json:"label"`
	Procs     int    `json:"procs"`
	ElapsedNs int64  `json:"elapsed_ns"`

	// AvgBreakdown and Breakdowns map execution-time category names
	// (compute, data, lock, acqrel, barrier) to nanoseconds; Breakdowns
	// has one entry per processor.
	AvgBreakdown BreakdownJSON   `json:"avg_breakdown"`
	Breakdowns   []BreakdownJSON `json:"breakdowns"`

	Accounting         AccountingJSON `json:"accounting"`
	BarrierProtoNs     int64          `json:"barrier_proto_ns"`
	Events             uint64         `json:"events"`
	PostQueueStalls    uint64         `json:"post_queue_stalls"`
	PostQueueStallNs   int64          `json:"post_queue_stall_ns"`
	PostQueueOverflows uint64         `json:"post_queue_overflows"`

	Faults FaultsJSON `json:"faults"`
	Util   UtilJSON   `json:"util"`

	// Latency is present only for serving workloads that record
	// per-request latencies (e.g. svmkv).
	Latency *LatencyJSON `json:"latency,omitempty"`

	// Traffic lists per-message-kind packet and byte counts, busiest
	// first (absent for the hardware-DSM and sequential models, which
	// have no NI monitor).
	Traffic []TrafficJSON `json:"traffic,omitempty"`
}

// BreakdownJSON maps execution-time category name to nanoseconds.
type BreakdownJSON map[string]int64

// AccountingJSON mirrors stats.SVMAccounting.
type AccountingJSON struct {
	BarrierWaitNs  int64  `json:"barrier_wait_ns"`
	BarrierProtoNs int64  `json:"barrier_proto_ns"`
	MprotectNs     int64  `json:"mprotect_ns"`
	MprotectOps    uint64 `json:"mprotect_ops"`
	DiffComputeNs  int64  `json:"diff_compute_ns"`
	DiffBytes      uint64 `json:"diff_bytes"`
	PageFetches    uint64 `json:"page_fetches"`
	FetchRetries   uint64 `json:"fetch_retries"`
	LockOps        uint64 `json:"lock_ops"`
	Interrupts     uint64 `json:"interrupts"`
}

// FaultsJSON mirrors stats.FaultReport (all zeros with faults off).
type FaultsJSON struct {
	DropsInjected    uint64 `json:"drops_injected"`
	DupsInjected     uint64 `json:"dups_injected"`
	DelaysInjected   uint64 `json:"delays_injected"`
	CorruptsInjected uint64 `json:"corrupts_injected"`
	DownDrops        uint64 `json:"down_drops"`
	RetxSent         uint64 `json:"retx_sent"`
	DupsSuppressed   uint64 `json:"dups_suppressed"`
	OOODropped       uint64 `json:"ooo_dropped"`
	CorruptDropped   uint64 `json:"corrupt_dropped"`
	AcksSent         uint64 `json:"acks_sent"`
	PiggybackAcks    uint64 `json:"piggyback_acks"`
	Recovered        uint64 `json:"recovered"`
	TotalRecoveryNs  int64  `json:"total_recovery_ns"`
	MaxRecoveryNs    int64  `json:"max_recovery_ns"`
}

// UtilJSON mirrors Utilization (busy fractions in [0,1]).
type UtilJSON struct {
	Firmware      float64 `json:"firmware"`
	PCI           float64 `json:"pci"`
	Link          float64 `json:"link"`
	Switch        float64 `json:"switch"`
	SwitchStageNs []int64 `json:"switch_stage_ns,omitempty"`
	MaxBacklogNs  int64   `json:"max_backlog_ns"`
}

// LatencyJSON is the request-latency summary plus virtual-time
// throughput for serving workloads.
type LatencyJSON struct {
	Count      uint64  `json:"count"`
	ReqsPerSec float64 `json:"reqs_per_sec"`
	MeanNs     int64   `json:"mean_ns"`
	P50Ns      int64   `json:"p50_ns"`
	P90Ns      int64   `json:"p90_ns"`
	P99Ns      int64   `json:"p99_ns"`
	P999Ns     int64   `json:"p999_ns"`
	MaxNs      int64   `json:"max_ns"`
}

// TrafficJSON is one message kind's packet and byte totals.
type TrafficJSON struct {
	Kind    string `json:"kind"`
	Packets uint64 `json:"packets"`
	Bytes   uint64 `json:"bytes"`
}

func breakdownJSON(b stats.Breakdown) BreakdownJSON {
	m := make(BreakdownJSON, stats.NumCategories)
	for c := 0; c < stats.NumCategories; c++ {
		m[stats.Category(c).String()] = int64(b.T[c])
	}
	return m
}

// NewResultJSON builds the scripting view of res.
func NewResultJSON(res *Result) *ResultJSON {
	j := &ResultJSON{
		Label:        res.Label,
		Procs:        res.Procs,
		ElapsedNs:    int64(res.Elapsed),
		AvgBreakdown: breakdownJSON(res.Avg),
		Accounting: AccountingJSON{
			BarrierWaitNs:  int64(res.Acct.BarrierWait),
			BarrierProtoNs: int64(res.Acct.BarrierProto),
			MprotectNs:     int64(res.Acct.Mprotect),
			MprotectOps:    res.Acct.MprotectOps,
			DiffComputeNs:  int64(res.Acct.DiffCompute),
			DiffBytes:      res.Acct.DiffBytes,
			PageFetches:    res.Acct.PageFetches,
			FetchRetries:   res.Acct.FetchRetries,
			LockOps:        res.Acct.LockOps,
			Interrupts:     res.Acct.Interrupts,
		},
		BarrierProtoNs:     int64(res.BarrierProto),
		Events:             res.Events,
		PostQueueStalls:    res.PostQueueStalls,
		PostQueueStallNs:   int64(res.PostQueueStallTime),
		PostQueueOverflows: res.PostQueueOverflows,
		Faults: FaultsJSON{
			DropsInjected:    res.Faults.DropsInjected,
			DupsInjected:     res.Faults.DupsInjected,
			DelaysInjected:   res.Faults.DelaysInjected,
			CorruptsInjected: res.Faults.CorruptsInjected,
			DownDrops:        res.Faults.DownDrops,
			RetxSent:         res.Faults.RetxSent,
			DupsSuppressed:   res.Faults.DupsSuppressed,
			OOODropped:       res.Faults.OOODropped,
			CorruptDropped:   res.Faults.CorruptDropped,
			AcksSent:         res.Faults.AcksSent,
			PiggybackAcks:    res.Faults.PiggybackAcks,
			Recovered:        res.Faults.Recovered,
			TotalRecoveryNs:  int64(res.Faults.TotalRecovery),
			MaxRecoveryNs:    int64(res.Faults.MaxRecovery),
		},
		Util: UtilJSON{
			Firmware:     res.Util.Firmware,
			PCI:          res.Util.PCI,
			Link:         res.Util.Link,
			Switch:       res.Util.Switch,
			MaxBacklogNs: int64(res.Util.MaxBacklog),
		},
	}
	for _, b := range res.Breakdowns {
		j.Breakdowns = append(j.Breakdowns, breakdownJSON(b))
	}
	for _, t := range res.Util.SwitchStage {
		j.Util.SwitchStageNs = append(j.Util.SwitchStageNs, int64(t))
	}
	if res.Latency.Count() > 0 {
		s := res.Latency.Summary()
		j.Latency = &LatencyJSON{
			Count:      s.Count,
			ReqsPerSec: res.Latency.Throughput(res.Elapsed),
			MeanNs:     int64(s.Mean),
			P50Ns:      int64(s.P50),
			P90Ns:      int64(s.P90),
			P99Ns:      int64(s.P99),
			P999Ns:     int64(s.P999),
			MaxNs:      int64(s.Max),
		}
	}
	if res.Monitor != nil {
		for _, k := range res.Monitor.TopKinds(1 << 30) {
			j.Traffic = append(j.Traffic, TrafficJSON{Kind: k.Kind, Packets: k.Packets, Bytes: k.Bytes})
		}
	}
	return j
}
