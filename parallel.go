package genima

// The parallel experiment runner: RunSuite fans its (app × protocol)
// simulations across OS threads. Every run owns a private sim.Engine,
// memory.Space, and app.App instance, so runs are share-nothing and each
// one is exactly the simulation the serial runner would have executed —
// virtual times, statistics, and rendered tables are byte-identical for
// any Workers value. Only the wall-clock order of Progress callbacks
// changes.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"genima/internal/app"
	"genima/internal/apps"
)

// parallelFor runs task(0..n-1) on up to workers goroutines pulling from
// a shared index counter. All tasks run even if one fails; the error
// with the lowest index is returned, so the failure surfaced does not
// depend on scheduling.
func parallelFor(workers, n int, task func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = task(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// suiteWorkers resolves a SuiteOptions.Workers value: 0 means one
// worker per OS thread.
func suiteWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// suiteJob is one simulation of the phase-2 fan-out: either the
// hardware-DSM yardstick or one protocol rung for one application.
type suiteJob struct {
	entry int
	hw    bool
	kind  Protocol
}

// runSuiteParallel executes the suite with the worker pool. Phase 1 runs
// the sequential references (every verification and speedup needs them);
// phase 2 fans out all (app × protocol) runs plus the hardware runs.
// Each job rebuilds its own App instance via apps.Suite — applications
// cache derived state on the receiver during Setup, so instances must
// not be shared between concurrent runs.
func runSuiteParallel(cfg Config, opt SuiteOptions, kinds []Protocol, workers int) (*SuiteResults, error) {
	s := &SuiteResults{Cfg: cfg, Entries: apps.Suite(opt.Scale), SVM: map[Protocol][]*Result{}}
	n := len(s.Entries)

	var mu sync.Mutex
	progress := func(format string, args ...any) {
		if opt.Progress == nil {
			return
		}
		msg := fmt.Sprintf(format, args...)
		mu.Lock()
		defer mu.Unlock()
		opt.Progress(msg)
	}

	s.Seq = make([]*Result, n)
	seqWS := make([]*Workspace, n)
	err := parallelFor(workers, n, func(i int) error {
		a := apps.Suite(opt.Scale)[i].App
		progress("seq  %-12s", a.Name())
		res, ws, err := app.RunSeq(cfg, a)
		if err != nil {
			return err
		}
		s.Seq[i], seqWS[i] = res, ws
		return nil
	})
	if err != nil {
		return nil, err
	}

	var jobs []suiteJob
	for i := 0; i < n; i++ {
		if opt.Hardware {
			jobs = append(jobs, suiteJob{entry: i, hw: true})
		}
		for _, k := range kinds {
			jobs = append(jobs, suiteJob{entry: i, kind: k})
		}
	}
	if opt.Hardware {
		s.HW = make([]*Result, n)
	}
	for _, k := range kinds {
		s.SVM[k] = make([]*Result, n)
	}
	err = parallelFor(workers, len(jobs), func(j int) error {
		jb := jobs[j]
		a := apps.Suite(opt.Scale)[jb.entry].App
		if jb.hw {
			progress("hw   %-12s", a.Name())
			res, ws, err := app.RunHW(cfg, a)
			if err != nil {
				return err
			}
			if opt.Verify {
				if err := app.Validate(a, ws, seqWS[jb.entry]); err != nil {
					return fmt.Errorf("%s on hwdsm: %w", a.Name(), err)
				}
			}
			s.HW[jb.entry] = res
			return nil
		}
		progress("%-4s %-12s", jb.kind, a.Name())
		res, ws, err := app.RunSVM(cfg, jb.kind, a)
		if err != nil {
			return err
		}
		if opt.Verify {
			if err := app.Validate(a, ws, seqWS[jb.entry]); err != nil {
				return fmt.Errorf("%s on %v: %w", a.Name(), jb.kind, err)
			}
		}
		s.SVM[jb.kind][jb.entry] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}
