package genima

// White-box tests for the worker pool itself.

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestParallelForRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		var hits [100]atomic.Int32
		if err := parallelFor(workers, len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestParallelForReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		err := parallelFor(workers, 50, func(i int) error {
			switch i {
			case 13:
				return errA
			case 40:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: err = %v, want the lowest-index error %v", workers, err, errA)
		}
	}
}

func TestParallelForZeroTasks(t *testing.T) {
	if err := parallelFor(4, 0, func(int) error { t.Fatal("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSuiteWorkersDefaults(t *testing.T) {
	if got := suiteWorkers(1); got != 1 {
		t.Fatalf("suiteWorkers(1) = %d", got)
	}
	if got := suiteWorkers(0); got < 1 {
		t.Fatalf("suiteWorkers(0) = %d", got)
	}
	if got := suiteWorkers(9); got != 9 {
		t.Fatalf("suiteWorkers(9) = %d", got)
	}
}
