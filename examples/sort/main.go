// Sort: run the paper's Radix-local application under every protocol
// plus the hardware-DSM yardstick, verifying the sorted output each
// time — the paper's Figure 1 / Figure 2 story for one application.
//
//	go run ./examples/sort
package main

import (
	"fmt"
	"log"
)

import (
	genima "genima"
	"genima/internal/apps/radix"
	"genima/internal/stats"
)

func main() {
	cfg := genima.DefaultConfig()
	a := radix.New(1<<17, 2)

	seq, seqWS, err := genima.RunSequential(cfg, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("radix sort of %d keys on %d simulated processors\n\n", a.N(), cfg.NumProcs())
	fmt.Printf("%-12s %8s %8s %9s %9s\n", "system", "speedup", "data%", "barrier%", "fetches")

	for _, k := range genima.Protocols() {
		res, ws, err := genima.Run(cfg, k, a)
		if err != nil {
			log.Fatal(err)
		}
		if err := a.Verify(ws); err != nil {
			log.Fatalf("%v: %v", k, err)
		}
		if err := genima.Validate(a, ws, seqWS); err != nil {
			log.Fatalf("%v: %v", k, err)
		}
		fr := res.Avg.Fractions()
		fmt.Printf("%-12s %8.2f %7.1f%% %8.1f%% %9d\n",
			k, genima.Speedup(seq, res), 100*fr[stats.Data], 100*fr[stats.Barrier], res.Acct.PageFetches)
	}

	hw, hwWS, err := genima.RunHardware(cfg, a)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Verify(hwWS); err != nil {
		log.Fatal("hwdsm: ", err)
	}
	fmt.Printf("%-12s %8.2f   (cache-coherent hardware, 128 B lines)\n", "Origin2000", genima.Speedup(seq, hw))
}
