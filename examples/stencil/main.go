// Stencil: a user-written heat-diffusion kernel compared across the
// whole protocol ladder — the experiment you would run to decide which
// NI mechanisms matter for a barrier-synchronized, near-neighbor code.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"
)

import (
	genima "genima"
	"genima/internal/app"
	"genima/internal/memory"
	"genima/internal/stats"
)

// heat is an iterative 1-D three-point diffusion over a shared vector,
// double-buffered, with a barrier per sweep.
type heat struct {
	n, iters int
}

func (h *heat) Name() string { return "heat" }
func (h *heat) Ops() float64 { return float64(h.n) * float64(h.iters) * 4 }

func (h *heat) Setup(ws *app.Workspace) {
	a := ws.Alloc("a", 8*h.n, memory.Blocked)
	ws.Alloc("b", 8*h.n, memory.Blocked)
	for i := 0; i < h.n; i++ {
		v := 0.0
		if i == 0 || i == h.n-1 {
			v = 1000 // hot ends
		}
		ws.SetF64(a, i, v)
	}
}

func (h *heat) Run(ctx *app.Ctx) {
	ws := ctx.Workspace()
	src, dst := ws.Region("a"), ws.Region("b")
	lo, hi := ctx.ID()*h.n/ctx.NProc(), (ctx.ID()+1)*h.n/ctx.NProc()
	if lo == 0 {
		lo = 1
	}
	if hi == h.n {
		hi = h.n - 1
	}
	buf := make([]float64, hi-lo+2)
	out := make([]float64, hi-lo)
	iters := h.iters
	if iters%2 != 0 {
		iters++ // result ends in "a"
	}
	for it := 0; it < iters; it++ {
		ctx.CopyOutF64(src, lo-1, buf)
		for i := range out {
			out[i] = 0.25*buf[i] + 0.5*buf[i+1] + 0.25*buf[i+2]
		}
		ctx.Compute(float64(len(out)) * 4)
		ctx.CopyInF64(dst, lo, out)
		ctx.Barrier()
		src, dst = dst, src
	}
}

func main() {
	cfg := genima.DefaultConfig()
	a := &heat{n: 1 << 17, iters: 10}

	seq, seqWS, err := genima.RunSequential(cfg, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1-D heat diffusion, %d points, %d sweeps, %d processors\n\n", a.n, a.iters, cfg.NumProcs())
	fmt.Printf("%-10s %8s %10s %10s %10s %12s\n", "protocol", "speedup", "data%", "barrier%", "interrupts", "packets")
	for _, k := range genima.Protocols() {
		res, ws, err := genima.Run(cfg, k, a)
		if err != nil {
			log.Fatal(err)
		}
		if err := genima.Validate(a, ws, seqWS); err != nil {
			log.Fatalf("%v: wrong answer: %v", k, err)
		}
		fr := res.Avg.Fractions()
		fmt.Printf("%-10s %8.2f %9.1f%% %9.1f%% %10d %12d\n",
			k, genima.Speedup(seq, res),
			100*fr[stats.Data], 100*fr[stats.Barrier],
			res.Acct.Interrupts, res.Monitor.TotalPackets())
	}
}
