// Tuning: the sensitivity studies behind the paper's §3.3 discussion —
// how the interrupt cost drives the Base protocol's losses, and how NI
// post-queue depth and send pipelining recover Barnes-spatial under
// direct diffs (the paper's Windows NT experiment that lifted its
// speedup to 12.21).
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
)

import (
	genima "genima"
	"genima/internal/apps/barnes"
	"genima/internal/apps/ocean"
	"genima/internal/sim"
)

func main() {
	interruptSensitivity()
	fmt.Println()
	postQueueStudy()
	fmt.Println()
	extensionStudy()
}

// interruptSensitivity sweeps the interrupt dispatch cost: the gap
// between Base and GeNIMA should shrink as interrupts get cheap.
func interruptSensitivity() {
	a := ocean.New(128, 6)
	fmt.Println("Interrupt-cost sensitivity (Ocean):")
	fmt.Printf("%-14s %10s %10s %8s\n", "interrupt(us)", "Base", "GeNIMA", "gap")
	for _, us := range []float64{10, 30, 60, 120} {
		cfg := genima.DefaultConfig()
		cfg.Costs.Interrupt = sim.Micro(us)
		seq, _, err := genima.RunSequential(cfg, a)
		if err != nil {
			log.Fatal(err)
		}
		base, _, err := genima.Run(cfg, genima.Base, a)
		if err != nil {
			log.Fatal(err)
		}
		gen, _, err := genima.Run(cfg, genima.GeNIMA, a)
		if err != nil {
			log.Fatal(err)
		}
		sb, sg := genima.Speedup(seq, base), genima.Speedup(seq, gen)
		fmt.Printf("%-14.0f %10.2f %10.2f %7.1f%%\n", us, sb, sg, 100*(sg-sb)/sb)
	}
}

// extensionStudy evaluates the future-work NI extensions the paper
// discusses: scatter-gather direct diffs (§3.3) and NI broadcast for
// write notices (§5).
func extensionStudy() {
	fmt.Println("Future-work NI extensions (GeNIMA):")
	fmt.Printf("%-34s %10s\n", "configuration", "speedup")
	bs := barnes.NewSpatial(1024, 4, 2)
	for _, c := range []struct {
		name string
		mut  func(*genima.Config)
	}{
		{"barnes-sp, per-run diffs", func(*genima.Config) {}},
		{"barnes-sp, NI scatter-gather", func(c *genima.Config) { c.ScatterGather = true }},
	} {
		cfg := genima.DefaultConfig()
		c.mut(&cfg)
		seq, _, err := genima.RunSequential(cfg, bs)
		if err != nil {
			log.Fatal(err)
		}
		res, _, err := genima.Run(cfg, genima.GeNIMA, bs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %10.2f\n", c.name, genima.Speedup(seq, res))
	}
	wn := ocean.New(128, 6)
	for _, c := range []struct {
		name string
		mut  func(*genima.Config)
	}{
		{"ocean, unicast notices", func(*genima.Config) {}},
		{"ocean, NI broadcast notices", func(c *genima.Config) { c.NIBroadcast = true }},
	} {
		cfg := genima.DefaultConfig()
		c.mut(&cfg)
		seq, _, err := genima.RunSequential(cfg, wn)
		if err != nil {
			log.Fatal(err)
		}
		res, _, err := genima.Run(cfg, genima.GeNIMA, wn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %10.2f\n", c.name, genima.Speedup(seq, res))
	}
}

// postQueueStudy reproduces the Barnes-spatial direct-diff recovery:
// deeper post queues and better NI send pipelining absorb the message
// explosion.
func postQueueStudy() {
	a := barnes.NewSpatial(1024, 4, 2)
	fmt.Println("Barnes-spatial under direct diffs (DW+RF+DD):")
	fmt.Printf("%-10s %-12s %10s %14s\n", "queue", "pipelining", "speedup", "send stalls")
	for _, c := range []struct{ depth, pipe int }{
		{16, 1}, {64, 1}, {256, 1}, {64, 4}, {256, 4},
	} {
		cfg := genima.DefaultConfig()
		cfg.PostQueueDepth = c.depth
		cfg.SendPipelining = c.pipe
		seq, _, err := genima.RunSequential(cfg, a)
		if err != nil {
			log.Fatal(err)
		}
		res, _, err := genima.Run(cfg, genima.DWRFDD, a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-12d %10.2f %14d\n", c.depth, c.pipe, genima.Speedup(seq, res), res.PostQueueStalls)
	}
}
