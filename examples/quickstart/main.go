// Quickstart: write a tiny shared-memory program against the genima
// API, run it on the simulated cluster under the GeNIMA protocol, and
// print the speedup and execution-time breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
)

import (
	genima "genima"
	"genima/internal/app"
	"genima/internal/memory"
	"genima/internal/stats"
)

// dotProduct is a minimal workload: each processor computes a partial
// dot product of two shared vectors and lock-accumulates it.
type dotProduct struct {
	n int
}

func (d *dotProduct) Name() string { return "dot" }
func (d *dotProduct) Ops() float64 { return float64(d.n) * 2 }

func (d *dotProduct) Setup(ws *app.Workspace) {
	x := ws.Alloc("x", 8*d.n, memory.Blocked)
	y := ws.Alloc("y", 8*d.n, memory.Blocked)
	ws.Alloc("result", 8, memory.RoundRobin)
	for i := 0; i < d.n; i++ {
		ws.SetF64(x, i, float64(i%100))
		ws.SetF64(y, i, float64((i*7)%100))
	}
}

func (d *dotProduct) Run(ctx *app.Ctx) {
	ws := ctx.Workspace()
	x, y := ws.Region("x"), ws.Region("y")
	lo, hi := ctx.ID()*d.n/ctx.NProc(), (ctx.ID()+1)*d.n/ctx.NProc()

	// Bulk-read both blocks (page faults happen here), then compute
	// on private buffers — the idiomatic SVM pattern.
	bx := make([]float64, hi-lo)
	by := make([]float64, hi-lo)
	ctx.CopyOutF64(x, lo, bx)
	ctx.CopyOutF64(y, lo, by)
	sum := 0.0
	for i := range bx {
		sum += bx[i] * by[i]
	}
	ctx.Compute(float64(hi-lo) * 2)

	ctx.Lock(0)
	ctx.AddF64(ws.Region("result"), 0, sum)
	ctx.Unlock(0)
	ctx.Barrier()
}

func main() {
	cfg := genima.DefaultConfig() // 4 nodes x 4-way SMPs, Myrinet-like NI
	a := &dotProduct{n: 1 << 18}

	seq, seqWS, err := genima.RunSequential(cfg, a)
	if err != nil {
		log.Fatal(err)
	}
	par, parWS, err := genima.Run(cfg, genima.GeNIMA, a)
	if err != nil {
		log.Fatal(err)
	}
	if err := genima.Validate(a, parWS, seqWS); err != nil {
		log.Fatal("wrong answer: ", err)
	}

	fmt.Printf("dot product of %d elements on %d simulated processors\n", a.n, par.Procs)
	fmt.Printf("result: %.0f\n", parWS.F64(parWS.Region("result"), 0))
	fmt.Printf("sequential %.2f ms, parallel %.2f ms -> speedup %.2f\n",
		stats.Seconds(seq.Elapsed)*1000, stats.Seconds(par.Elapsed)*1000, genima.Speedup(seq, par))
	fr := par.Avg.Fractions()
	for c := 0; c < stats.NumCategories; c++ {
		fmt.Printf("  %-8s %5.1f%%\n", stats.Category(c), 100*fr[c])
	}
	fmt.Printf("host interrupts taken under GeNIMA: %d\n", par.Acct.Interrupts)
}
