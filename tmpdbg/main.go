package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strconv"
	"time"

	genima "genima"
	"genima/internal/apps"
)

// usage: tmpdbg <app> <workers> <shards> [nodes topo radix procs faults]
func main() {
	w, _ := strconv.Atoi(os.Args[2])
	s, _ := strconv.Atoi(os.Args[3])
	cfg := genima.DefaultConfig()
	cfg.IntraRunWorkers = w
	cfg.LPShards = s
	scale := apps.Test
	if len(os.Args) > 4 {
		cfg.Nodes, _ = strconv.Atoi(os.Args[4])
		switch os.Args[5] {
		case "clos2":
			cfg.Topo = genima.TopoClos2
		case "fattree":
			cfg.Topo = genima.TopoFatTree
		}
		cfg.SwitchRadix, _ = strconv.Atoi(os.Args[6])
		cfg.ProcsPerNode, _ = strconv.Atoi(os.Args[7])
		if len(os.Args) > 8 && os.Args[8] == "faults" {
			cfg.Faults = genima.FaultMix(0.01, 42)
		}
		scale = apps.Bench
	}
	e, ok := apps.ByName(scale, os.Args[1])
	if !ok {
		panic("no app " + os.Args[1])
	}
	h := sha256.New()
	t0 := time.Now()
	res, _, err := genima.RunTraced(cfg, genima.GeNIMA, e.App, func(ev genima.TraceEvent) {
		fmt.Fprintf(h, "%d|%d|%d|%d|%s|%v|%d|%d|%d|%d\n",
			ev.Time, ev.Src, ev.Dst, ev.Size, ev.Kind, ev.Firmware,
			ev.StageTime[0], ev.StageTime[1], ev.StageTime[2], ev.StageTime[3])
	})
	if err != nil {
		panic(err)
	}
	wall := time.Since(t0)
	fmt.Fprintf(h, "elapsed=%d events=%d\n", res.Elapsed, res.Events)
	fmt.Printf("hash=%s events=%d wall=%v eps=%.0f\n",
		hex.EncodeToString(h.Sum(nil))[:16], res.Events, wall,
		float64(res.Events)/wall.Seconds())
}
