package genima_test

// Multi-stage fabric + NI-firmware collective tree regression: the
// ladder must validate on switched fabrics with collectives enabled,
// and the tree barrier must beat the flat fan-out barrier at scale
// (the PR's headline claim; see DESIGN.md §10).

import (
	"testing"

	genima "genima"
	"genima/internal/apps"
)

// clos2Config is the default 4-node cluster rebuilt on a radix-4
// two-level Clos: two hosts per leaf, so cross-leaf traffic takes
// three switch hops even at test scale.
func clos2Config(collectives bool) genima.Config {
	cfg := genima.DefaultConfig()
	cfg.Topo = genima.TopoClos2
	cfg.SwitchRadix = 4
	cfg.Collectives = collectives
	return cfg
}

// scaleConfig is an n-node, one-processor-per-node cluster on a
// radix-32 Clos (capacity 512), the scalesweep fabric.
func scaleConfig(n int, collectives bool) genima.Config {
	cfg := genima.DefaultConfig()
	cfg.Nodes = n
	cfg.ProcsPerNode = 1
	cfg.Topo = genima.TopoClos2
	cfg.SwitchRadix = 32
	cfg.Collectives = collectives
	return cfg
}

// TestCollectivesValidateLadder runs two apps over the whole ladder on
// the multi-stage fabric with collectives on and checks results
// against the sequential reference. Base has no deposit support, so
// the collective gate leaves it on the interrupt path — it must still
// validate with the config set.
func TestCollectivesValidateLadder(t *testing.T) {
	for _, name := range []string{"fft", "water-nsq"} {
		a, _ := appByName(t, name)
		cfg := clos2Config(true)
		seq, seqWS, err := genima.RunSequential(cfg, a)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range genima.Protocols() {
			res, ws, err := genima.Run(cfg, k, a)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, k, err)
			}
			if err := genima.Validate(a, ws, seqWS); err != nil {
				t.Errorf("%s/%v on clos2+collectives: %v", name, k, err)
			}
			if res.Elapsed <= 0 || res.Elapsed >= seq.Elapsed*10 {
				t.Errorf("%s/%v: implausible elapsed %d (seq %d)", name, k, res.Elapsed, seq.Elapsed)
			}
		}
	}
}

// TestCollectivesKeepGeNIMAInterruptFree checks the tree protocol
// honors the capability ladder: every combine and fan-out step runs in
// NI memory, so GeNIMA still takes zero interrupts with collectives on.
func TestCollectivesKeepGeNIMAInterruptFree(t *testing.T) {
	a, _ := appByName(t, "fft")
	res, _, err := genima.Run(clos2Config(true), genima.GeNIMA, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acct.Interrupts != 0 {
		t.Errorf("GeNIMA with collectives took %d interrupts", res.Acct.Interrupts)
	}
}

// TestTreeBeatsFlat is the acceptance bar: at 128 nodes the
// NI-firmware tree barrier must finish barrierbench at least 2x faster
// than the flat Nodes-1 fan-out.
func TestTreeBeatsFlat(t *testing.T) {
	e, ok := apps.ByName(apps.Test, "barrierbench")
	if !ok {
		t.Fatal("barrierbench not resolvable")
	}
	flat, _, err := genima.Run(scaleConfig(128, false), genima.GeNIMA, e.App)
	if err != nil {
		t.Fatal(err)
	}
	tree, _, err := genima.Run(scaleConfig(128, true), genima.GeNIMA, e.App)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Elapsed*2 > flat.Elapsed {
		t.Errorf("tree barrier %d ns not 2x better than flat %d ns at 128 nodes",
			tree.Elapsed, flat.Elapsed)
	}
}

// TestCollectivesSurviveFaults runs a 64-node collective-tree run
// under the 1%%-drop mixed fault plan: go-back-N sits underneath the
// tree edges, so the run must complete and validate.
func TestCollectivesSurviveFaults(t *testing.T) {
	e, ok := apps.ByName(apps.Test, "barrierbench")
	if !ok {
		t.Fatal("barrierbench not resolvable")
	}
	cfg := scaleConfig(64, true)
	cfg.Faults = genima.FaultMix(0.01, 42)
	res, ws, err := genima.Run(cfg, genima.GeNIMA, e.App)
	if err != nil {
		t.Fatal(err)
	}
	seqCfg := scaleConfig(64, true)
	_, seqWS, err := genima.RunSequential(seqCfg, e.App)
	if err != nil {
		t.Fatal(err)
	}
	if err := genima.Validate(e.App, ws, seqWS); err != nil {
		t.Error(err)
	}
	if res.Faults.DropsInjected == 0 {
		t.Error("fault plan injected no drops — plan not exercising the tree")
	}
}
