// Package genima is a reproduction of "Using Network Interface Support
// to Avoid Asynchronous Protocol Processing in Shared Virtual Memory
// Systems" (Bilas, Liao, Singh; ISCA 1999) as a deterministic
// discrete-event simulation: a cluster of SMP nodes on a Myrinet-like
// fabric running home-based lazy release consistency, with the paper's
// NI mechanisms — remote deposit, remote fetch, and NI locks — layered
// on cumulatively, plus a hardware-DSM (Origin 2000-like) yardstick.
//
// The package is the public face of the library: pick a cluster
// configuration and a protocol, run one of the ten SPLASH-2-style
// applications (or your own app.App), and read back speedups,
// execution-time breakdowns, protocol accounting, and the NI firmware
// monitor's contention ratios.
//
// Each simulation is deterministic and single-threaded, but a suite of
// simulations is embarrassingly parallel: RunSuite fans its independent
// (app × protocol) runs across OS threads (SuiteOptions.Workers,
// default GOMAXPROCS) with byte-identical results for any worker count.
//
//	cfg := genima.DefaultConfig()
//	res, _, err := genima.Run(cfg, genima.GeNIMA, fft.New(14))
package genima

import (
	"genima/internal/app"
	"genima/internal/core"
	"genima/internal/nic"
	"genima/internal/stats"
	"genima/internal/topo"
)

// Protocol selects an SVM protocol configuration (the paper's ladder).
type Protocol = core.Kind

// The protocol rungs, cumulative left to right.
const (
	// Base is HLRC-SMP with interrupt-driven asynchronous handling.
	Base = core.Base
	// DW adds remote deposit for protocol data (eager write notices).
	DW = core.DW
	// DWRF adds NI remote fetch for pages and timestamps.
	DWRF = core.DWRF
	// DWRFDD adds direct diffs deposited into home copies.
	DWRFDD = core.DWRFDD
	// GeNIMA adds NI locks: no interrupts or polling remain.
	GeNIMA = core.GeNIMA
)

// Protocols lists all rungs in evaluation order.
func Protocols() []Protocol { return core.Kinds() }

// Config describes the simulated cluster; see topo.Config for every
// cost constant.
type Config = topo.Config

// DefaultConfig returns the paper-calibrated 4-node, 4-way-SMP cluster.
func DefaultConfig() Config { return topo.Default() }

// Topology selects the network fabric (Config.Topo): the idealized
// 8-way crossbar the paper measured, or a multi-stage switched fabric
// for the 64–512-node scaling studies.
type Topology = topo.TopoKind

// The fabric kinds.
const (
	// TopoXbar is the single-crossbar Myrinet switch (default).
	TopoXbar = topo.TopoXbar
	// TopoClos2 is a two-level leaf/spine Clos built from
	// SwitchRadix-port switches (up to radix²/2 hosts).
	TopoClos2 = topo.TopoClos2
	// TopoFatTree is a three-level fat-tree (up to radix³/4 hosts).
	TopoFatTree = topo.TopoFatTree
)

// ParseTopo maps a -topo flag value ("xbar8", "clos2", "fattree") to a
// Topology.
func ParseTopo(s string) (Topology, error) { return topo.ParseTopo(s) }

// FabricCapacity returns the maximum host count of a fabric kind at a
// given switch radix (0 means unlimited: the idealized crossbar).
func FabricCapacity(k Topology, radix int) int { return topo.FabricCapacity(k, radix) }

// FaultPlan configures deterministic link-fault injection; set it as
// Config.Faults (see internal/topo and internal/faults).
type FaultPlan = topo.FaultPlan

// FaultReport aggregates a run's fault-injection and NI reliable-
// delivery counters (Result.Faults).
type FaultReport = stats.FaultReport

// DownWindow takes one host's link(s) down for a virtual-time window
// (FaultPlan.Down).
type DownWindow = topo.DownWindow

// Link directions for DownWindow.
const (
	BothDirs = topo.BothDirs
	OutOnly  = topo.OutOnly
	InOnly   = topo.InOnly
)

// FaultMix builds a paper-style mixed fault plan around a drop rate:
// dups at rate/4, reorder delays at rate/2 (up to 100 µs), corruption
// at rate/4, all drawn deterministically from seed.
func FaultMix(rate float64, seed uint64) FaultPlan { return topo.FaultMix(rate, seed) }

// App is a workload; the ten paper applications live in
// internal/apps/..., and external code can implement its own.
type App = app.App

// Result is one run's outcome (speedups, breakdowns, accounting).
type Result = app.Result

// Workspace holds the shared address space after a run.
type Workspace = app.Workspace

// Run executes a workload under an SVM protocol.
func Run(cfg Config, p Protocol, a App) (*Result, *Workspace, error) {
	return app.RunSVM(cfg, p, a)
}

// TraceEvent is one delivered network packet (see RunTraced).
type TraceEvent = nic.TraceEvent

// RunTraced is Run with a packet tracer: fn receives every delivered
// packet from the NI firmware monitor, in delivery order.
func RunTraced(cfg Config, p Protocol, a App, fn func(TraceEvent)) (*Result, *Workspace, error) {
	return app.RunSVMTraced(cfg, p, a, fn)
}

// RunControl hooks a run's trace stream for checkpointing, streaming
// stats, and graceful shutdown (see RunControlled).
type RunControl = app.RunControl

// Boundary is a consistent cut of a running simulation, handed to
// RunControl hooks.
type Boundary = app.Boundary

// ErrInterrupted is the sentinel (match with errors.Is) wrapped into
// RunControlled's error when a control hook halted the run early; the
// partial Result is still returned alongside it.
var ErrInterrupted = app.ErrInterrupted

// RunControlled is RunTraced with full run control: an ordinal-aware
// tracer, periodic boundary callbacks at deterministic cuts, a one-shot
// verification cut, and graceful halt. It is the primitive under
// checkpoint/restore, soak mode, and signal-safe shutdown.
func RunControlled(cfg Config, p Protocol, a App, ctl *RunControl) (*Result, *Workspace, error) {
	return app.RunSVMControlled(cfg, p, a, ctl)
}

// RunHardware executes a workload on the hardware-DSM model.
func RunHardware(cfg Config, a App) (*Result, *Workspace, error) {
	return app.RunHW(cfg, a)
}

// RunSequential executes a workload on one zero-overhead processor:
// the reference output and the uniprocessor time for speedups.
func RunSequential(cfg Config, a App) (*Result, *Workspace, error) {
	return app.RunSeq(cfg, a)
}

// Speedup is seq.Elapsed / par.Elapsed.
func Speedup(seq, par *Result) float64 { return app.Speedup(seq, par) }

// Validate compares a parallel run's shared-memory output against the
// sequential reference (exact bytes, or the app's tolerance rule).
func Validate(a App, par, seq *Workspace) error { return app.Validate(a, par, seq) }
