package genima_test

import (
	"fmt"

	genima "genima"
	"genima/internal/app"
	"genima/internal/memory"
)

// counter is a minimal App: every processor increments a shared counter
// under a lock.
type counter struct{ perProc int }

func (c *counter) Name() string { return "counter" }
func (c *counter) Ops() float64 { return float64(c.perProc) }

func (c *counter) Setup(ws *app.Workspace) {
	ws.Alloc("count", 8, memory.RoundRobin)
}

func (c *counter) Run(ctx *app.Ctx) {
	r := ctx.Workspace().Region("count")
	for i := 0; i < c.perProc; i++ {
		ctx.Lock(0)
		ctx.SetI64(r, 0, ctx.I64(r, 0)+1)
		ctx.Unlock(0)
		ctx.Compute(50)
	}
	ctx.Barrier()
}

// ExampleRun runs a tiny workload under the GeNIMA protocol and checks
// its result; the simulation is deterministic, so the output is too.
func ExampleRun() {
	cfg := genima.DefaultConfig() // 4 nodes x 4-way SMPs
	a := &counter{perProc: 8}

	res, ws, err := genima.Run(cfg, genima.GeNIMA, a)
	if err != nil {
		panic(err)
	}
	fmt.Println("count:", ws.I64(ws.Region("count"), 0))
	fmt.Println("interrupts:", res.Acct.Interrupts)
	// Output:
	// count: 128
	// interrupts: 0
}

// ExampleProtocols walks the evaluation ladder.
func ExampleProtocols() {
	for _, p := range genima.Protocols() {
		fmt.Println(p)
	}
	// Output:
	// Base
	// DW
	// DW+RF
	// DW+RF+DD
	// GeNIMA
}

// ExampleValidate shows the correctness check against a sequential run.
func ExampleValidate() {
	cfg := genima.DefaultConfig()
	a := &counter{perProc: 4}
	_, seqWS, _ := genima.RunSequential(cfg, a)
	_, parWS, _ := genima.Run(cfg, genima.Base, a)
	// The sequential run has 1 processor, so the counts differ by
	// design here; compare like with like in real use. For this
	// example, just show both.
	fmt.Println("sequential:", seqWS.I64(seqWS.Region("count"), 0))
	fmt.Println("parallel:  ", parWS.I64(parWS.Region("count"), 0))
	// Output:
	// sequential: 4
	// parallel:   64
}
