package genima_test

// svmkv serving-workload regression: the open-loop KV server must obey
// the repo's core invariant — packet traces byte-identical for any
// (-jrun, -lpshards) combination, faults on and off — validate
// byte-exact against the sequential reference on every protocol rung,
// compose with the multi-stage fabrics at scale, and report a complete
// latency distribution through app.Result.

import (
	"testing"

	genima "genima"
)

// TestSvmkvValidatesAcrossLadder runs the serving workload on every
// protocol rung and validates the final store, per-shard order
// checksums, and hot counters byte-for-byte against the sequential
// reference — with and without 1% faults on the top/bottom rungs.
func TestSvmkvValidatesAcrossLadder(t *testing.T) {
	a, _ := appByName(t, "svmkv")
	seqRes, seqWS, err := genima.RunSequential(genima.DefaultConfig(), a)
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Latency.Count() == 0 {
		t.Fatal("sequential run recorded no latencies")
	}
	for _, proto := range genima.Protocols() {
		for _, faults := range []bool{false, true} {
			if faults && proto != genima.Base && proto != genima.GeNIMA {
				continue
			}
			cfg := genima.DefaultConfig()
			if faults {
				cfg.Faults = genima.FaultMix(0.01, 42)
			}
			res, ws, err := genima.Run(cfg, proto, a)
			if err != nil {
				t.Fatalf("%v faults=%v: %v", proto, faults, err)
			}
			if err := genima.Validate(a, ws, seqWS); err != nil {
				t.Errorf("%v faults=%v: validation failed: %v", proto, faults, err)
			}
			if got := res.Latency.Count(); got != seqRes.Latency.Count() {
				t.Errorf("%v faults=%v: %d latencies recorded, want %d",
					proto, faults, got, seqRes.Latency.Count())
			}
		}
	}
}

// TestSvmkvTraceByteIdentical: the serving workload's packet trace must
// be byte-identical across -jrun 1/2/4, faults on and off, on both an
// interrupt-driven and a synchronous-NI rung.
func TestSvmkvTraceByteIdentical(t *testing.T) {
	for _, proto := range []genima.Protocol{genima.Base, genima.GeNIMA} {
		for _, faults := range []bool{false, true} {
			serial := traceHash(t, "svmkv", proto, jrunConfig(1, faults))
			for _, workers := range []int{2, 4} {
				if got := traceHash(t, "svmkv", proto, jrunConfig(workers, faults)); got != serial {
					t.Errorf("svmkv/%v faults=%v: -jrun %d trace differs from serial:\n got %s\nwant %s",
						proto, faults, workers, got, serial)
				}
			}
		}
	}
}

// TestSvmkvScaleTraceByteIdentical composes the serving workload with
// the multi-stage fabrics at 64–512 nodes: byte-identical across
// -jrun 1/4 x -lpshards 1/8/auto, with and without faults. The 512-node
// fat-tree leg is skipped under -short (same budget rule as
// TestIntraRunScaleTraceByteIdentical).
func TestSvmkvScaleTraceByteIdentical(t *testing.T) {
	for _, pt := range []struct {
		name        string
		nodes       int
		topo        genima.Topology
		radix       int
		proto       genima.Protocol
		collectives bool
	}{
		{"clos2-64", 64, genima.TopoClos2, 16, genima.GeNIMA, true},
		{"fattree-512", 512, genima.TopoFatTree, 16, genima.Base, false},
	} {
		if pt.nodes >= 512 && testing.Short() {
			continue
		}
		for _, faults := range []bool{false, true} {
			serial := traceHash(t, "svmkv", pt.proto,
				scaleMatrixConfig(pt.nodes, pt.topo, pt.radix, pt.collectives, 1, 0, faults))
			for _, shards := range []int{1, 8, 0} {
				got := traceHash(t, "svmkv", pt.proto,
					scaleMatrixConfig(pt.nodes, pt.topo, pt.radix, pt.collectives, 4, shards, faults))
				if got != serial {
					t.Errorf("svmkv %s faults=%v: -jrun 4 -lpshards %d trace differs from serial:\n got %s\nwant %s",
						pt.name, faults, shards, got, serial)
				}
			}
		}
	}
}

// TestSvmkvLatencySummary sanity-checks the merged latency report of a
// parallel run: every request accounted for, quantiles monotone, and a
// positive throughput over the run's elapsed virtual time.
func TestSvmkvLatencySummary(t *testing.T) {
	a, _ := appByName(t, "svmkv")
	res, _, err := genima.Run(genima.DefaultConfig(), genima.GeNIMA, a)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Latency.Summary()
	if s.Count == 0 {
		t.Fatal("no latencies recorded")
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999 && s.P999 <= s.Max) {
		t.Fatalf("quantiles not monotone: %v", s)
	}
	if s.Mean <= 0 || s.Max <= 0 {
		t.Fatalf("degenerate latency summary: %v", s)
	}
	if tput := res.Latency.Throughput(res.Elapsed); tput <= 0 {
		t.Fatalf("throughput = %v", tput)
	}
}
