package genima_test

// The benchmark harness: one testing.B per table and figure of the
// paper's evaluation (regenerating its rows at test-scale problem
// sizes; use cmd/genima-bench for the full bench-scale output), plus
// ablation benchmarks for the design choices called out in DESIGN.md.
//
//	go test -bench=. -benchmem

import (
	"math"
	"testing"

	genima "genima"
	"genima/internal/apps"
	"genima/internal/apps/barnes"
	"genima/internal/apps/ocean"
	"genima/internal/apps/waterns"
	"genima/internal/sim"
)

func runSuite(b *testing.B, hardware bool, kinds []genima.Protocol) *genima.SuiteResults {
	b.Helper()
	cfg := genima.DefaultConfig()
	s, err := genima.RunSuite(cfg, genima.SuiteOptions{
		Scale:     genima.TestScale,
		Protocols: kinds,
		Hardware:  hardware,
		// Workers defaults to GOMAXPROCS: table/figure benchmarks use
		// the parallel runner, like cmd/genima-bench.
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchSuiteWorkers times one full TestScale ladder (all protocols +
// hardware) at a fixed worker count; the Serial/Parallel pair is the
// wall-clock evidence for the parallel runner (see BENCH_sim.json).
func benchSuiteWorkers(b *testing.B, workers int) {
	cfg := genima.DefaultConfig()
	for i := 0; i < b.N; i++ {
		s, err := genima.RunSuite(cfg, genima.SuiteOptions{
			Scale:    genima.TestScale,
			Hardware: true,
			Workers:  workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		var events uint64
		for _, rs := range s.SVM {
			for _, r := range rs {
				events += r.Events
			}
		}
		b.ReportMetric(float64(events), "sim-events")
	}
}

// BenchmarkSuiteSerial is the legacy one-run-at-a-time baseline.
func BenchmarkSuiteSerial(b *testing.B) { benchSuiteWorkers(b, 1) }

// BenchmarkSuiteParallel fans the same runs across GOMAXPROCS workers.
func BenchmarkSuiteParallel(b *testing.B) { benchSuiteWorkers(b, 0) }

func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// BenchmarkFigure1 regenerates Figure 1: Origin 2000 vs Base SVM.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSuite(b, true, []genima.Protocol{genima.Base})
		f := s.Figure1()
		b.ReportMetric(geoMean(f.Origin), "speedup-origin")
		b.ReportMetric(geoMean(f.Base), "speedup-base")
	}
}

// BenchmarkFigure2 regenerates Figure 2: the protocol ladder.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSuite(b, false, nil)
		f := s.Figure2()
		b.ReportMetric(geoMean(f.ByProtocol[genima.Base]), "speedup-base")
		b.ReportMetric(geoMean(f.ByProtocol[genima.GeNIMA]), "speedup-genima")
	}
}

// BenchmarkFigure3 regenerates Figure 3: normalized breakdowns.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSuite(b, false, nil)
		f := s.Figure3()
		// Report GeNIMA's average normalized total (Base = 1.0).
		sum := 0.0
		for app := range f.Apps {
			for _, v := range f.Normalized[app][len(f.Protocols)-1] {
				sum += v
			}
		}
		b.ReportMetric(sum/float64(len(f.Apps)), "genima-normtime")
	}
}

// BenchmarkFigure4 regenerates Figure 4: Origin vs Base vs GeNIMA.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSuite(b, true, []genima.Protocol{genima.Base, genima.GeNIMA})
		f := s.Figure4()
		b.ReportMetric(geoMean(f.GeNIMA), "speedup-genima")
	}
}

// BenchmarkTable1 regenerates Table 1: per-mechanism improvements.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSuite(b, false, nil)
		t := s.Table1()
		var overall float64
		for _, r := range t.Rows {
			overall += r.OverallPct
		}
		b.ReportMetric(overall/float64(len(t.Rows)), "avg-overall-pct")
	}
}

// BenchmarkTable2 regenerates Table 2: barrier decomposition.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSuite(b, false, []genima.Protocol{genima.Base, genima.DW, genima.DWRF, genima.DWRFDD, genima.GeNIMA})
		t := s.Table2()
		var bt float64
		for _, r := range t.Rows {
			bt += r.BTPct
		}
		b.ReportMetric(bt/float64(len(t.Rows)), "avg-barrier-pct")
	}
}

// BenchmarkTable3 regenerates Table 3: small-message contention.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSuite(b, false, []genima.Protocol{genima.Base, genima.DW, genima.DWRF, genima.DWRFDD, genima.GeNIMA})
		t := s.Table3()
		var base, gen float64
		for _, r := range t.Rows {
			base += r.Base[2] // NetLat
			gen += r.GeNIMA[2]
		}
		b.ReportMetric(base/float64(len(t.Rows)), "netlat-base")
		b.ReportMetric(gen/float64(len(t.Rows)), "netlat-genima")
	}
}

// BenchmarkTable4 regenerates Table 4: large-message contention.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSuite(b, false, []genima.Protocol{genima.Base, genima.DW, genima.DWRF, genima.DWRFDD, genima.GeNIMA})
		t := s.Table4()
		var gen float64
		for _, r := range t.Rows {
			gen += r.GeNIMA[2]
		}
		b.ReportMetric(gen/float64(len(t.Rows)), "netlat-genima")
	}
}

// BenchmarkTable5 regenerates Table 5: 32-processor speedups.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := genima.Table5(genima.TestScale, false, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(geoMean(d.SVM), "speedup-svm32")
		b.ReportMetric(geoMean(d.Origin), "speedup-origin32")
	}
}

// --- Ablations (DESIGN.md §5) ---

func speedupOf(b *testing.B, cfg genima.Config, k genima.Protocol, a genima.App) float64 {
	b.Helper()
	seq, _, err := genima.RunSequential(cfg, a)
	if err != nil {
		b.Fatal(err)
	}
	res, _, err := genima.Run(cfg, k, a)
	if err != nil {
		b.Fatal(err)
	}
	return genima.Speedup(seq, res)
}

// BenchmarkAblationDirectDiff contrasts packed diffs (DW+RF) against
// direct diffs (DW+RF+DD) on Barnes-spatial, the paper's §3.3 message
// explosion case.
func BenchmarkAblationDirectDiff(b *testing.B) {
	a := barnes.NewSpatial(256, 3, 1)
	cfg := genima.DefaultConfig()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(speedupOf(b, cfg, genima.DWRF, a), "speedup-packed")
		b.ReportMetric(speedupOf(b, cfg, genima.DWRFDD, a), "speedup-direct")
	}
}

// BenchmarkAblationLockStyle contrasts host-interrupt locks (DW+RF+DD)
// against NI locks (GeNIMA) on the lock-heavy Water-Nsquared.
func BenchmarkAblationLockStyle(b *testing.B) {
	a := waterns.New(96, 1)
	cfg := genima.DefaultConfig()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(speedupOf(b, cfg, genima.DWRFDD, a), "speedup-hostlocks")
		b.ReportMetric(speedupOf(b, cfg, genima.GeNIMA, a), "speedup-nilocks")
	}
}

// BenchmarkAblationInterruptCost sweeps the interrupt dispatch cost:
// Base degrades, GeNIMA does not (the paper's central claim).
func BenchmarkAblationInterruptCost(b *testing.B) {
	a := ocean.New(64, 4)
	for i := 0; i < b.N; i++ {
		for _, us := range []float64{10, 60, 120} {
			cfg := genima.DefaultConfig()
			cfg.Costs.Interrupt = sim.Micro(us)
			b.ReportMetric(speedupOf(b, cfg, genima.Base, a), "base-intr")
			b.ReportMetric(speedupOf(b, cfg, genima.GeNIMA, a), "genima-intr")
		}
	}
}

// BenchmarkAblationPostQueue sweeps the NI post-queue depth under
// direct diffs (the Barnes-spatial stall mechanism).
func BenchmarkAblationPostQueue(b *testing.B) {
	a := barnes.NewSpatial(256, 3, 1)
	for i := 0; i < b.N; i++ {
		for _, depth := range []int{8, 64, 512} {
			cfg := genima.DefaultConfig()
			cfg.PostQueueDepth = depth
			b.ReportMetric(speedupOf(b, cfg, genima.DWRFDD, a), "speedup")
		}
	}
}

// BenchmarkAblationSendPipelining reproduces the paper's Windows NT
// experiment: deeper NI send pipelining drains the post queue faster
// and recovers direct-diff performance.
func BenchmarkAblationSendPipelining(b *testing.B) {
	a := barnes.NewSpatial(256, 3, 1)
	for i := 0; i < b.N; i++ {
		for _, pipe := range []int{1, 4} {
			cfg := genima.DefaultConfig()
			cfg.SendPipelining = pipe
			b.ReportMetric(speedupOf(b, cfg, genima.DWRFDD, a), "speedup")
		}
	}
}

// BenchmarkAblationScatterGather evaluates the NI scatter-gather
// extension the paper proposes but does not adopt (§3.3): gathered
// direct diffs should rescue Barnes-spatial's message explosion at the
// price of NI occupancy.
func BenchmarkAblationScatterGather(b *testing.B) {
	a := barnes.NewSpatial(256, 3, 1)
	for i := 0; i < b.N; i++ {
		plain := genima.DefaultConfig()
		sg := genima.DefaultConfig()
		sg.ScatterGather = true
		b.ReportMetric(speedupOf(b, plain, genima.GeNIMA, a), "speedup-runs")
		b.ReportMetric(speedupOf(b, sg, genima.GeNIMA, a), "speedup-gathered")
	}
}

// BenchmarkAblationNIBroadcast evaluates NI-level broadcast of write
// notices (paper §5 future work) on the notice-heavy Water-Nsquared.
func BenchmarkAblationNIBroadcast(b *testing.B) {
	a := waterns.New(96, 1)
	for i := 0; i < b.N; i++ {
		plain := genima.DefaultConfig()
		bc := genima.DefaultConfig()
		bc.NIBroadcast = true
		b.ReportMetric(speedupOf(b, plain, genima.GeNIMA, a), "speedup-unicast")
		b.ReportMetric(speedupOf(b, bc, genima.GeNIMA, a), "speedup-broadcast")
	}
}

// BenchmarkApps runs each application once under GeNIMA (throughput of
// the simulator itself).
func BenchmarkApps(b *testing.B) {
	for _, e := range apps.Suite(apps.Test) {
		e := e
		b.Run(e.App.Name(), func(b *testing.B) {
			cfg := genima.DefaultConfig()
			for i := 0; i < b.N; i++ {
				res, _, err := genima.Run(cfg, genima.GeNIMA, e.App)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Events), "sim-events")
			}
		})
	}
}

// BenchmarkCollectiveBarrier times the collective-path simulation: the
// barrierbench microbenchmark at 64 nodes on a radix-32 clos2, flat
// fan-out vs the NI-firmware tree (the scalesweep's smallest point; a
// bench-smoke gate that the collective machinery still builds and
// runs, with the tree-vs-flat barrier-time ratio as the metric).
func BenchmarkCollectiveBarrier(b *testing.B) {
	e, ok := apps.ByName(apps.Test, "barrierbench")
	if !ok {
		b.Fatal("barrierbench missing")
	}
	mk := func(collectives bool) genima.Config {
		cfg := genima.DefaultConfig()
		cfg.Nodes = 64
		cfg.ProcsPerNode = 1
		cfg.Topo = genima.TopoClos2
		cfg.SwitchRadix = 32
		cfg.Collectives = collectives
		return cfg
	}
	for i := 0; i < b.N; i++ {
		flat, _, err := genima.Run(mk(false), genima.GeNIMA, e.App)
		if err != nil {
			b.Fatal(err)
		}
		tree, _, err := genima.Run(mk(true), genima.GeNIMA, e.App)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(flat.Elapsed)/float64(tree.Elapsed), "tree-speedup")
		b.ReportMetric(float64(flat.Events+tree.Events), "sim-events")
	}
}
