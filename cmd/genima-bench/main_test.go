package main

import (
	"strings"
	"testing"
)

func TestParseExperimentsAcceptsValidNames(t *testing.T) {
	for _, in := range []string{
		"all",
		"fig2,table3",
		" serve ",
		"soak",
		"scaling,faultsweep,scalesweep,serve",
		"fig1,fig2,fig3,fig4,table1,table2,table3,table4,table5",
	} {
		want, err := parseExperiments(in)
		if err != nil {
			t.Errorf("parseExperiments(%q) = %v", in, err)
			continue
		}
		for _, name := range strings.Split(in, ",") {
			if name = strings.TrimSpace(name); name != "" && !want[name] {
				t.Errorf("parseExperiments(%q) lost %q", in, name)
			}
		}
	}
}

func TestParseExperimentsRejectsUnknownNames(t *testing.T) {
	for _, in := range []string{
		"serv",       // the typo class that used to silently run nothing
		"fig2,tabel3",
		"bogus",
		"all,xyzzy",
		"",
		" , ",
	} {
		_, err := parseExperiments(in)
		if err == nil {
			t.Errorf("parseExperiments(%q) accepted", in)
			continue
		}
		if !strings.Contains(err.Error(), "valid experiments") ||
			!strings.Contains(err.Error(), "serve") {
			t.Errorf("parseExperiments(%q) error does not list valid experiments: %v", in, err)
		}
	}
}
