// Command genima-bench regenerates every table and figure of the paper's
// evaluation (Figures 1–4, Tables 1–5) from the simulated system.
//
// Usage:
//
//	genima-bench                  # everything, bench-scale problems
//	genima-bench -exp fig2,table3 # a subset
//	genima-bench -scale test      # tiny problems (seconds)
//	genima-bench -verify          # validate every run against sequential
//	genima-bench -nodes 8         # cluster size for the 16-proc suite
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

import genima "genima"

var (
	expFlag    = flag.String("exp", "all", "comma-separated experiments: fig1,fig2,fig3,fig4,table1,table2,table3,table4,table5 or all; plus scaling (not in all)")
	scaleFlag  = flag.String("scale", "bench", "problem scale: test or bench")
	verifyFlag = flag.Bool("verify", false, "validate every run against the sequential reference")
	nodesFlag  = flag.Int("nodes", 4, "SMP nodes for the main suite (the paper uses 4)")
	procsFlag  = flag.Int("procs", 4, "processors per node (the paper uses 4)")
	quietFlag  = flag.Bool("q", false, "suppress progress output")
)

func main() {
	flag.Parse()
	scale := genima.BenchScale
	if *scaleFlag == "test" {
		scale = genima.TestScale
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	progress := func(msg string) {
		if !*quietFlag {
			fmt.Fprintf(os.Stderr, "run: %s\n", msg)
		}
	}

	needSuite := sel("fig1") || sel("fig2") || sel("fig3") || sel("fig4") ||
		sel("table1") || sel("table2") || sel("table3") || sel("table4")

	t0 := time.Now()
	if needSuite {
		cfg := genima.DefaultConfig()
		cfg.Nodes = *nodesFlag
		cfg.ProcsPerNode = *procsFlag
		s, err := genima.RunSuite(cfg, genima.SuiteOptions{
			Scale:    scale,
			Hardware: true,
			Verify:   *verifyFlag,
			Progress: progress,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "genima-bench:", err)
			os.Exit(1)
		}
		if sel("fig1") {
			fmt.Println(s.Figure1())
		}
		if sel("table1") {
			fmt.Println(s.Table1())
		}
		if sel("fig2") {
			fmt.Println(s.Figure2())
		}
		if sel("fig3") {
			fmt.Println(s.Figure3())
		}
		if sel("fig4") {
			fmt.Println(s.Figure4())
		}
		if sel("table2") {
			fmt.Println(s.Table2())
		}
		if sel("table3") {
			fmt.Println(s.Table3())
		}
		if sel("table4") {
			fmt.Println(s.Table4())
		}
	}
	if sel("table5") {
		d, err := genima.Table5(scale, *verifyFlag, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genima-bench:", err)
			os.Exit(1)
		}
		fmt.Println(d)
	}
	if want["scaling"] {
		d, err := genima.Scaling(scale, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genima-bench:", err)
			os.Exit(1)
		}
		fmt.Println(d)
	}
	if !*quietFlag {
		fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(t0))
	}
}
