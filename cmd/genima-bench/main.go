// Command genima-bench regenerates every table and figure of the paper's
// evaluation (Figures 1–4, Tables 1–5) from the simulated system.
//
// Usage:
//
//	genima-bench                  # everything, bench-scale problems
//	genima-bench -exp fig2,table3 # a subset
//	genima-bench -scale test      # tiny problems (seconds)
//	genima-bench -verify          # validate every run against sequential
//	genima-bench -nodes 8         # cluster size for the 16-proc suite
//	genima-bench -j 1             # serial runs (default: GOMAXPROCS)
//	genima-bench -benchjson BENCH_sim.json -scale test
//	                              # time serial vs parallel, emit JSON
//	genima-bench -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

import (
	genima "genima"
	"genima/internal/apps"
)

var (
	expFlag    = flag.String("exp", "all", "comma-separated experiments: fig1,fig2,fig3,fig4,table1,table2,table3,table4,table5 or all; plus scaling, faultsweep, scalesweep, serve and soak (not in all)")
	scaleFlag  = flag.String("scale", "bench", "problem scale: test or bench")
	verifyFlag = flag.Bool("verify", false, "validate every run against the sequential reference")
	nodesFlag  = flag.Int("nodes", 4, "SMP nodes for the main suite (the paper uses 4)")
	procsFlag  = flag.Int("procs", 4, "processors per node (the paper uses 4)")
	quietFlag  = flag.Bool("q", false, "suppress progress output")
	jFlag      = flag.Int("j", 0, "concurrent simulation workers (0 = GOMAXPROCS, 1 = serial)")
	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchJSON  = flag.String("benchjson", "", "time the suite serial vs parallel and write a JSON summary to this file (skips the experiment output)")
	benchGuard = flag.String("benchguard", "", "compare current serial throughput against this committed BENCH_sim.json and exit nonzero on a >25% regression")
	faultsFlag = flag.Float64("faults", 0, "link fault injection for the main suite: packet drop rate (0,1) per FaultMix; 0 disables")
	seedFlag   = flag.Uint64("fault-seed", 1, "deterministic seed for -faults and the faultsweep experiment")
	lpsFlag    = flag.Int("lpshards", 0, "node shards (logical processes) for intra-run timing points; 0 = auto (min(workers, nodes))")

	soakEvents    = flag.Uint64("soak-events", 100_000_000, "soak: stop once cumulative simulated events reach this total (0 = bound by -soak-iters alone)")
	soakIters     = flag.Uint64("soak-iters", 0, "soak: iteration cap (0 = bound by -soak-events alone)")
	soakStopAfter = flag.Uint64("soak-stop-after", 0, "soak: halt after this many iterations this invocation, writing a checkpoint (CI restore hook; 0 = no cap)")
	soakCkpt      = flag.String("soak-checkpoint", "", "soak: rolling iteration-cursor checkpoint file")
	soakStats     = flag.String("soak-stats", "", "soak: append one JSON stats line per iteration to this file")
	soakRestore   = flag.Bool("soak-restore", false, "soak: resume from -soak-checkpoint (fresh campaign if the file does not exist yet)")
	soakJrun      = flag.Int("soak-jrun", 1, "soak: intra-run simulation workers per iteration (byte-identical chain for any value)")
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genima-bench:", err)
	os.Exit(1)
}

// validExperiments lists every -exp name, in help order. "all" selects
// the paper figures/tables; the post-paper experiments (scaling,
// faultsweep, scalesweep, serve, soak) are opt-in by name.
var validExperiments = []string{
	"all", "fig1", "fig2", "fig3", "fig4",
	"table1", "table2", "table3", "table4", "table5",
	"scaling", "faultsweep", "scalesweep", "serve", "soak",
}

// parseExperiments splits a -exp value and rejects unknown names, so a
// typo fails loudly instead of silently running nothing.
func parseExperiments(s string) (map[string]bool, error) {
	valid := map[string]bool{}
	for _, v := range validExperiments {
		valid[v] = true
	}
	want := map[string]bool{}
	for _, e := range strings.Split(s, ",") {
		name := strings.TrimSpace(e)
		if name == "" {
			continue
		}
		if !valid[name] {
			return nil, fmt.Errorf("unknown experiment %q; valid experiments: %s",
				name, strings.Join(validExperiments, ", "))
		}
		want[name] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("no experiments selected; valid experiments: %s",
			strings.Join(validExperiments, ", "))
	}
	return want, nil
}

// benchSummary is the BENCH_sim.json schema: wall-clock evidence for the
// simulator's perf trajectory. suite_*_seconds time one full ladder
// (all protocols + hardware + sequential) over the ten applications.
// Inter-run parallelism (suite_parallel_seconds and friends) fans
// independent runs across workers; intra-run parallelism
// (events_per_sec_intrarun and friends) partitions one run into
// per-node logical processes. Measurements that cannot be taken
// meaningfully on this box (e.g. any parallel pass on a single-CPU
// machine) are null, with the reason recorded in note — a null is "not
// measured", never "zero speedup".
type benchSummary struct {
	Generated          string  `json:"generated"`
	GoVersion          string  `json:"go_version"`
	NumCPU             int     `json:"num_cpu"`
	GoMaxProcs         int     `json:"go_max_procs"`
	Scale              string  `json:"scale"`
	Workers            int     `json:"workers"`
	SuiteSerialSeconds float64 `json:"suite_serial_seconds"`
	// Inter-run suite timing: null when skipped (see note).
	SuiteParallelSecs  *float64 `json:"suite_parallel_seconds"`
	ParallelSpeedup    *float64 `json:"parallel_speedup"`
	SimEvents          uint64   `json:"sim_events"`
	EventsPerSecSerial float64  `json:"events_per_sec_serial"`
	EventsPerSecPar    *float64 `json:"events_per_sec_parallel"`
	// Intra-run engine throughput on one fixed point (fft under GeNIMA)
	// with IntraRunWorkers=workers, and its speedup over the same point
	// serial. Null when skipped (see note).
	EventsPerSecIntra *float64 `json:"events_per_sec_intrarun"`
	IntraRunSpeedup   *float64 `json:"intrarun_speedup"`
	// Allocation pressure of the serial run (runtime.ReadMemStats deltas
	// divided by simulated events): the pooled packet pipeline's headline
	// metric. Lower is better; the typed event path targets ~0 on the
	// messaging hot paths.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	// Deterministic simulated-time barrier costs: mean virtual ns per
	// barrier episode of the barrierbench microbenchmark. p32 is 8x4
	// processors on the crossbar with the flat fan-out barrier; p128 is
	// 32x4 on a radix-8 clos2 with the NI-firmware collective tree.
	// Unlike the wall-clock fields these are exact model outputs — any
	// drift is a modeling change, not measurement noise — so the guard
	// gates them direction-aware (an increase is the regression).
	BarrierNsP32  *float64 `json:"barrier_ns_p32"`
	BarrierNsP128 *float64 `json:"barrier_ns_p128"`
	// PDES scaling points: engine throughput on barrierbench at
	// ProcsPerNode=1 over large multi-stage fabrics — 128 nodes on a
	// radix-16 clos2 with the NI collective tree (GeNIMA) and 512 nodes
	// on a radix-16 fat tree with the flat interrupt barrier (Base).
	// events_per_sec_pN is the serial engine (measurable on any box);
	// intrarun_speedup_pN is the same point at IntraRunWorkers=workers
	// and LPShards auto, over serial — null on a single-CPU box.
	EventsPerSecP128 *float64 `json:"events_per_sec_p128"`
	EventsPerSecP512 *float64 `json:"events_per_sec_p512"`
	IntraSpeedupP128 *float64 `json:"intrarun_speedup_p128"`
	IntraSpeedupP512 *float64 `json:"intrarun_speedup_p512"`
	// Serving-workload point: the svmkv open-loop KV server at registry
	// defaults under GeNIMA, clean links. Both are virtual-time model
	// outputs (completed requests per simulated second; p99 request
	// latency in simulated ns) — exact and deterministic like the
	// barrier costs, so the guard gates them direction-aware: throughput
	// dropping or p99 rising >25% is the regression.
	ServeReqsPerSec *float64 `json:"serve_reqs_per_sec"`
	ServeP99Ns      *float64 `json:"serve_p99_ns"`
	// Note lists measurement caveats, comma-separated, e.g.
	// "parallel_skipped_single_cpu" or "intrarun_skipped_single_cpu"
	// when the box cannot run a meaningful parallel pass.
	Note string `json:"note,omitempty"`
}

// timeBarrierNs runs barrierbench once at the given cluster shape and
// returns the mean simulated ns per barrier episode (2 per round plus
// the harness's trailing barrier). The result is virtual time: fully
// deterministic, identical on every box.
func timeBarrierNs(scale genima.Scale, nodes, procs int, topo genima.Topology, radix int, collectives bool) float64 {
	entry, ok := apps.ByName(scale, "barrierbench")
	if !ok {
		fatal(fmt.Errorf("barrierbench missing"))
	}
	rounds := entry.App.(interface{ Rounds() int }).Rounds()
	cfg := genima.DefaultConfig()
	cfg.Nodes = nodes
	cfg.ProcsPerNode = procs
	cfg.Topo = topo
	cfg.SwitchRadix = radix
	cfg.Collectives = collectives
	res, _, err := genima.Run(cfg, genima.GeNIMA, entry.App)
	if err != nil {
		fatal(err)
	}
	return float64(res.Elapsed) / float64(2*rounds+1)
}

// timeIntraRunEPS times repeated fft/GeNIMA runs at the given
// intra-run worker count and returns the best observed events/sec
// (best of three, so one scheduling hiccup does not skew the number).
func timeIntraRunEPS(scale genima.Scale, workers int) float64 {
	entry, ok := apps.ByName(scale, "fft")
	if !ok {
		fatal(fmt.Errorf("intra-run timing point fft missing from suite"))
	}
	cfg := genima.DefaultConfig()
	cfg.Nodes = *nodesFlag
	cfg.ProcsPerNode = *procsFlag
	cfg.IntraRunWorkers = workers
	cfg.LPShards = *lpsFlag
	best := 0.0
	for pass := 0; pass < 3; pass++ {
		t0 := time.Now()
		res, _, err := genima.Run(cfg, genima.GeNIMA, entry.App)
		if err != nil {
			fatal(err)
		}
		if eps := float64(res.Events) / time.Since(t0).Seconds(); eps > best {
			best = eps
		}
	}
	return best
}

// timeServe runs the svmkv serving workload once at registry defaults
// under GeNIMA with clean links and returns its virtual-time throughput
// (completed requests per simulated second) and p99 request latency
// (simulated ns). Exact model outputs: identical on every box.
func timeServe(scale genima.Scale) (reqsPerSec, p99Ns float64) {
	entry, ok := apps.ByName(scale, "svmkv")
	if !ok {
		fatal(fmt.Errorf("svmkv missing"))
	}
	res, _, err := genima.Run(genima.DefaultConfig(), genima.GeNIMA, entry.App)
	if err != nil {
		fatal(err)
	}
	return res.Latency.Throughput(res.Elapsed), float64(res.Latency.Summary().P99)
}

// scalePoint describes one PDES scaling point (see the benchSummary
// field docs): barrierbench at ProcsPerNode=1 on a large fabric.
type scalePoint struct {
	nodes       int
	topo        genima.Topology
	radix       int
	proto       genima.Protocol
	collectives bool
}

var (
	scaleP128 = scalePoint{128, genima.TopoClos2, 16, genima.GeNIMA, true}
	scaleP512 = scalePoint{512, genima.TopoFatTree, 16, genima.Base, false}
)

// timeScaleEPS times barrierbench at one scaling point and returns the
// best observed events/sec over three passes. workers<=1 is the serial
// engine; otherwise the run is partitioned into LPShards shards
// (0 = auto) under IntraRunWorkers=workers.
func timeScaleEPS(scale genima.Scale, p scalePoint, workers, shards int) float64 {
	entry, ok := apps.ByName(scale, "barrierbench")
	if !ok {
		fatal(fmt.Errorf("barrierbench missing"))
	}
	cfg := genima.DefaultConfig()
	cfg.Nodes = p.nodes
	cfg.ProcsPerNode = 1
	cfg.Topo = p.topo
	cfg.SwitchRadix = p.radix
	cfg.Collectives = p.collectives
	cfg.IntraRunWorkers = workers
	cfg.LPShards = shards
	best := 0.0
	for pass := 0; pass < 3; pass++ {
		t0 := time.Now()
		res, _, err := genima.Run(cfg, p.proto, entry.App)
		if err != nil {
			fatal(err)
		}
		if eps := float64(res.Events) / time.Since(t0).Seconds(); eps > best {
			best = eps
		}
	}
	return best
}

// runBenchJSON times the full suite with Workers=1 and Workers=j and
// writes the summary. The two runs produce identical SuiteResults (the
// determinism contract), so the comparison is pure wall-clock.
func runBenchJSON(path string, scale genima.Scale, scaleName string, workers int) {
	cfg := genima.DefaultConfig()
	cfg.Nodes = *nodesFlag
	cfg.ProcsPerNode = *procsFlag
	timeSuite := func(w int) (float64, uint64) {
		t0 := time.Now()
		s, err := genima.RunSuite(cfg, genima.SuiteOptions{
			Scale:    scale,
			Hardware: true,
			Workers:  w,
		})
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(t0).Seconds()
		var events uint64
		for _, r := range s.Seq {
			events += r.Events
		}
		for _, r := range s.HW {
			events += r.Events
		}
		for _, rs := range s.SVM {
			for _, r := range rs {
				events += r.Events
			}
		}
		return elapsed, events
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	serialSec, events := timeSuite(1)
	runtime.ReadMemStats(&msAfter)
	allocs := msAfter.Mallocs - msBefore.Mallocs
	bytes := msAfter.TotalAlloc - msBefore.TotalAlloc
	// On a single-CPU box either parallel pass measures the same serial
	// work plus scheduler overhead; record null-with-note rather than a
	// meaningless "speedup".
	var notes []string
	var parSecP, speedupP, epsParP *float64
	if runtime.NumCPU() == 1 {
		notes = append(notes, "parallel_skipped_single_cpu")
	} else {
		parSec, _ := timeSuite(workers)
		speedup := serialSec / parSec
		epsPar := float64(events) / parSec
		parSecP, speedupP, epsParP = &parSec, &speedup, &epsPar
	}
	var epsIntraP, intraSpeedupP *float64
	if runtime.NumCPU() == 1 {
		notes = append(notes, "intrarun_skipped_single_cpu")
	} else {
		epsIntraSerial := timeIntraRunEPS(scale, 1)
		epsIntra := timeIntraRunEPS(scale, workers)
		intraSpeedup := epsIntra / epsIntraSerial
		epsIntraP, intraSpeedupP = &epsIntra, &intraSpeedup
	}
	barrier32 := timeBarrierNs(scale, 8, *procsFlag, genima.TopoXbar, 8, false)
	barrier128 := timeBarrierNs(scale, 32, *procsFlag, genima.TopoClos2, 8, true)
	serveTput, serveP99 := timeServe(scale)
	// PDES scaling points: serial throughput is measurable anywhere; the
	// intra-run speedups need real parallelism.
	epsP128 := timeScaleEPS(scale, scaleP128, 1, 0)
	epsP512 := timeScaleEPS(scale, scaleP512, 1, 0)
	var speedupP128P, speedupP512P *float64
	if runtime.NumCPU() == 1 {
		notes = append(notes, "intrarun_scale_skipped_single_cpu")
	} else {
		s128 := timeScaleEPS(scale, scaleP128, workers, *lpsFlag) / epsP128
		s512 := timeScaleEPS(scale, scaleP512, workers, *lpsFlag) / epsP512
		speedupP128P, speedupP512P = &s128, &s512
	}
	sum := benchSummary{
		Generated:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:          runtime.Version(),
		NumCPU:             runtime.NumCPU(),
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		Scale:              scaleName,
		Workers:            workers,
		SuiteSerialSeconds: serialSec,
		SuiteParallelSecs:  parSecP,
		ParallelSpeedup:    speedupP,
		SimEvents:          events,
		EventsPerSecSerial: float64(events) / serialSec,
		EventsPerSecPar:    epsParP,
		EventsPerSecIntra:  epsIntraP,
		IntraRunSpeedup:    intraSpeedupP,
		AllocsPerEvent:     float64(allocs) / float64(events),
		BytesPerEvent:      float64(bytes) / float64(events),
		BarrierNsP32:       &barrier32,
		BarrierNsP128:      &barrier128,
		EventsPerSecP128:   &epsP128,
		EventsPerSecP512:   &epsP512,
		IntraSpeedupP128:   speedupP128P,
		IntraSpeedupP512:   speedupP512P,
		ServeReqsPerSec:    &serveTput,
		ServeP99Ns:         &serveP99,
		Note:               strings.Join(notes, ","),
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	if !*quietFlag {
		if len(notes) > 0 {
			fmt.Fprintf(os.Stderr, "serial %.2fs (%s), %.2f allocs/event, %.0f B/event -> %s\n",
				serialSec, sum.Note, sum.AllocsPerEvent, sum.BytesPerEvent, path)
		} else {
			fmt.Fprintf(os.Stderr, "serial %.2fs, parallel(%d) %.2fs, speedup %.2fx, intrarun speedup %.2fx, %.2f allocs/event, %.0f B/event -> %s\n",
				serialSec, workers, *parSecP, *speedupP, *intraSpeedupP,
				sum.AllocsPerEvent, sum.BytesPerEvent, path)
		}
	}
}

// runSoak drives an unattended long-run campaign (genima.Soak):
// iterations cycle the app suite and the protocol ladder under per-
// iteration fault seeds, chaining trace hashes, streaming JSONL stats,
// and keeping a rolling O(1) checkpoint cursor. SIGINT/SIGTERM halt at
// the next iteration boundary with a checkpoint and exit 128+sig.
func runSoak(scaleName string) {
	cfg := genima.DefaultConfig()
	cfg.Nodes = *nodesFlag
	cfg.ProcsPerNode = *procsFlag
	cfg.IntraRunWorkers = *soakJrun
	cfg.LPShards = *lpsFlag
	opts := genima.SoakOptions{
		Scale:          scaleName,
		TargetEvents:   *soakEvents,
		Iters:          *soakIters,
		StopAfter:      *soakStopAfter,
		CheckpointPath: *soakCkpt,
		StatsPath:      *soakStats,
		FaultRate:      *faultsFlag,
		FaultSeed:      *seedFlag,
	}
	if *soakRestore {
		if *soakCkpt == "" {
			fatal(fmt.Errorf("-soak-restore needs -soak-checkpoint"))
		}
		st, err := genima.LoadCheckpoint(*soakCkpt)
		switch {
		case err == nil:
			opts.Restore = st
		case os.IsNotExist(err):
			// Fresh campaign; the checkpoint appears after iteration 1.
		default:
			fatal(err)
		}
	}
	var sig atomic.Int32
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-ch
		signal.Stop(ch)
		n := syscall.SIGINT
		if ss, ok := s.(syscall.Signal); ok {
			n = ss
		}
		sig.Store(int32(n))
	}()
	opts.ShouldStop = func() bool { return sig.Load() != 0 }
	if !*quietFlag {
		opts.Emit = func(r genima.SoakRecord) {
			fmt.Fprintf(os.Stderr, "soak: iter=%d %s/%s events=%d cum=%d chain=%s wall=%dms heap=%.1fMB\n",
				r.Iter, r.App, r.Proto, r.Events, r.CumEvents, r.Chain,
				r.WallMS, float64(r.HeapBytes)/(1<<20))
		}
	}
	res, err := genima.Soak(cfg, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("soak: iters=%d events=%d chain=%s interrupted=%v\n",
		res.Iters, res.Events, res.Chain, res.Interrupted)
	if n := sig.Load(); res.Interrupted && n != 0 {
		os.Exit(128 + int(n))
	}
}

// skipReason disambiguates a null intra-run field in a committed
// baseline: the benchjson writer records a note token when the field
// was skipped on a single-CPU box, so a null WITHOUT the token means
// the committed file simply predates the field.
func skipReason(note, token string) string {
	if strings.Contains(note, token) {
		return "baseline box was single-CPU"
	}
	return "committed baseline predates this field"
}

// runBenchGuard is the CI regression gate: re-time the serial suite at
// the committed baseline's scale and fail if events/sec dropped more
// than 25% below the committed number. Two passes, best taken, so a
// single scheduling hiccup on a shared CI box does not fail the build.
func runBenchGuard(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var committed benchSummary
	if err := json.Unmarshal(data, &committed); err != nil {
		fatal(fmt.Errorf("parse %s: %w", path, err))
	}
	if committed.EventsPerSecSerial <= 0 {
		fatal(fmt.Errorf("%s has no events_per_sec_serial baseline", path))
	}
	scale := genima.BenchScale
	if committed.Scale == "test" {
		scale = genima.TestScale
	}
	cfg := genima.DefaultConfig()
	cfg.Nodes = *nodesFlag
	cfg.ProcsPerNode = *procsFlag
	best := 0.0
	for pass := 0; pass < 2; pass++ {
		t0 := time.Now()
		s, err := genima.RunSuite(cfg, genima.SuiteOptions{Scale: scale, Hardware: true, Workers: 1})
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(t0).Seconds()
		var events uint64
		for _, r := range s.Seq {
			events += r.Events
		}
		for _, r := range s.HW {
			events += r.Events
		}
		for _, rs := range s.SVM {
			for _, r := range rs {
				events += r.Events
			}
		}
		if eps := float64(events) / elapsed; eps > best {
			best = eps
		}
	}
	ratio := best / committed.EventsPerSecSerial
	if !*quietFlag || ratio < 0.75 {
		fmt.Fprintf(os.Stderr, "bench-guard: %.0f events/sec vs committed %.0f (%.0f%%)\n",
			best, committed.EventsPerSecSerial, 100*ratio)
	}
	if ratio < 0.75 {
		fatal(fmt.Errorf("serial throughput regressed >25%% against %s", path))
	}

	// Barrier-cost gates: simulated time, so any change is a modeling
	// change. Direction-aware (an increase is the regression); null in
	// the committed file skips the gate per the existing discipline.
	for _, g := range []struct {
		name        string
		committed   *float64
		nodes, prcs int
		topo        genima.Topology
		radix       int
		collectives bool
	}{
		{"barrier_ns_p32", committed.BarrierNsP32, 8, *procsFlag, genima.TopoXbar, 8, false},
		{"barrier_ns_p128", committed.BarrierNsP128, 32, *procsFlag, genima.TopoClos2, 8, true},
	} {
		if g.committed == nil || *g.committed <= 0 {
			fmt.Fprintf(os.Stderr, "bench-guard: %s check skipped (no committed baseline)\n", g.name)
			continue
		}
		cur := timeBarrierNs(scale, g.nodes, g.prcs, g.topo, g.radix, g.collectives)
		bratio := cur / *g.committed
		if !*quietFlag || bratio > 1.25 {
			fmt.Fprintf(os.Stderr, "bench-guard: %s %.0f ns vs committed %.0f (%.0f%%)\n",
				g.name, cur, *g.committed, 100*bratio)
		}
		if bratio > 1.25 {
			fatal(fmt.Errorf("%s regressed >25%% against %s", g.name, path))
		}
	}

	// Serving-point gates: virtual-time model outputs like the barrier
	// costs, so direction-aware — serve_reqs_per_sec is gated downward
	// (a throughput drop is the regression), serve_p99_ns upward (a tail
	// increase is the regression). Null in the committed file skips the
	// gate per the existing discipline.
	if (committed.ServeReqsPerSec == nil || *committed.ServeReqsPerSec <= 0) &&
		(committed.ServeP99Ns == nil || *committed.ServeP99Ns <= 0) {
		fmt.Fprintln(os.Stderr, "bench-guard: serve checks skipped (no committed baseline)")
	} else {
		curTput, curP99 := timeServe(scale)
		if committed.ServeReqsPerSec != nil && *committed.ServeReqsPerSec > 0 {
			tratio := curTput / *committed.ServeReqsPerSec
			if !*quietFlag || tratio < 0.75 {
				fmt.Fprintf(os.Stderr, "bench-guard: serve_reqs_per_sec %.0f vs committed %.0f (%.0f%%)\n",
					curTput, *committed.ServeReqsPerSec, 100*tratio)
			}
			if tratio < 0.75 {
				fatal(fmt.Errorf("serve_reqs_per_sec regressed >25%% against %s", path))
			}
		}
		if committed.ServeP99Ns != nil && *committed.ServeP99Ns > 0 {
			pratio := curP99 / *committed.ServeP99Ns
			if !*quietFlag || pratio > 1.25 {
				fmt.Fprintf(os.Stderr, "bench-guard: serve_p99_ns %.0f vs committed %.0f (%.0f%%)\n",
					curP99, *committed.ServeP99Ns, 100*pratio)
			}
			if pratio > 1.25 {
				fatal(fmt.Errorf("serve_p99_ns regressed >25%% against %s", path))
			}
		}
	}

	// PDES scaling-point gates. Serial throughput at 128/512 nodes is
	// wall-clock but measurable on any box: skip only when the committed
	// file predates the field (null), fail on a >25% regression. The
	// per-scale intra-run speedups additionally need real parallelism:
	// skip those on a single-CPU box per the null-not-zero discipline.
	for _, g := range []struct {
		name      string
		committed *float64
		point     scalePoint
	}{
		{"events_per_sec_p128", committed.EventsPerSecP128, scaleP128},
		{"events_per_sec_p512", committed.EventsPerSecP512, scaleP512},
	} {
		if g.committed == nil || *g.committed <= 0 {
			fmt.Fprintf(os.Stderr, "bench-guard: %s check skipped (no committed baseline)\n", g.name)
			continue
		}
		best := 0.0
		for pass := 0; pass < 2; pass++ {
			if eps := timeScaleEPS(scale, g.point, 1, 0); eps > best {
				best = eps
			}
		}
		sratio := best / *g.committed
		if !*quietFlag || sratio < 0.75 {
			fmt.Fprintf(os.Stderr, "bench-guard: %s %.0f events/sec vs committed %.0f (%.0f%%)\n",
				g.name, best, *g.committed, 100*sratio)
		}
		if sratio < 0.75 {
			fatal(fmt.Errorf("%s regressed >25%% against %s", g.name, path))
		}
	}
	for _, g := range []struct {
		name      string
		committed *float64
		point     scalePoint
	}{
		{"intrarun_speedup_p128", committed.IntraSpeedupP128, scaleP128},
		{"intrarun_speedup_p512", committed.IntraSpeedupP512, scaleP512},
	} {
		switch {
		case g.committed == nil || *g.committed <= 0:
			fmt.Fprintf(os.Stderr, "bench-guard: %s check skipped (%s)\n",
				g.name, skipReason(committed.Note, "intrarun_scale_skipped_single_cpu"))
		case runtime.NumCPU() == 1:
			fmt.Fprintf(os.Stderr, "bench-guard: %s check skipped (single CPU; intra-run timing is meaningless here)\n", g.name)
		default:
			w := committed.Workers
			if w < 2 {
				w = runtime.GOMAXPROCS(0)
			}
			cur := timeScaleEPS(scale, g.point, w, 0) / timeScaleEPS(scale, g.point, 1, 0)
			iratio := cur / *g.committed
			if !*quietFlag || iratio < 0.75 {
				fmt.Fprintf(os.Stderr, "bench-guard: %s %.2fx vs committed %.2fx (%.0f%%)\n",
					g.name, cur, *g.committed, 100*iratio)
			}
			if iratio < 0.75 {
				fatal(fmt.Errorf("%s regressed >25%% against %s", g.name, path))
			}
		}
	}

	// Intra-run throughput gate: only when the committed baseline has a
	// measured number (multi-CPU box) and this box can reproduce one.
	switch {
	case committed.EventsPerSecIntra == nil || *committed.EventsPerSecIntra <= 0:
		fmt.Fprintf(os.Stderr, "bench-guard: intra-run check skipped (%s)\n",
			skipReason(committed.Note, "intrarun_skipped_single_cpu"))
	case runtime.NumCPU() == 1:
		fmt.Fprintln(os.Stderr, "bench-guard: intra-run check skipped (single CPU; intra-run timing is meaningless here)")
	default:
		w := committed.Workers
		if w < 2 {
			w = runtime.GOMAXPROCS(0)
		}
		cur := timeIntraRunEPS(scale, w)
		iratio := cur / *committed.EventsPerSecIntra
		if !*quietFlag || iratio < 0.75 {
			fmt.Fprintf(os.Stderr, "bench-guard: intra-run %.0f events/sec vs committed %.0f (%.0f%%)\n",
				cur, *committed.EventsPerSecIntra, 100*iratio)
		}
		if iratio < 0.75 {
			fatal(fmt.Errorf("intra-run throughput regressed >25%% against %s", path))
		}
	}
}

func main() {
	flag.Parse()
	if *memProfile != "" {
		// Record every allocation: the suite's remaining alloc count is
		// small enough that sampled profiles are all noise.
		runtime.MemProfileRate = 1
	}
	scale := genima.BenchScale
	scaleName := "bench"
	if *scaleFlag == "test" {
		scale = genima.TestScale
		scaleName = "test"
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}()

	if *benchJSON != "" {
		runBenchJSON(*benchJSON, scale, scaleName, *jFlag)
		return
	}
	if *benchGuard != "" {
		runBenchGuard(*benchGuard)
		return
	}

	want, err := parseExperiments(*expFlag)
	if err != nil {
		fatal(err)
	}
	if want["soak"] {
		runSoak(scaleName)
		return
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	progress := func(msg string) {
		if !*quietFlag {
			fmt.Fprintf(os.Stderr, "run: %s\n", msg)
		}
	}

	needSuite := sel("fig1") || sel("fig2") || sel("fig3") || sel("fig4") ||
		sel("table1") || sel("table2") || sel("table3") || sel("table4")

	t0 := time.Now()
	if needSuite {
		cfg := genima.DefaultConfig()
		cfg.Nodes = *nodesFlag
		cfg.ProcsPerNode = *procsFlag
		if *faultsFlag > 0 {
			cfg.Faults = genima.FaultMix(*faultsFlag, *seedFlag)
		}
		s, err := genima.RunSuite(cfg, genima.SuiteOptions{
			Scale:    scale,
			Hardware: true,
			Verify:   *verifyFlag,
			Progress: progress,
			Workers:  *jFlag,
		})
		if err != nil {
			fatal(err)
		}
		if sel("fig1") {
			fmt.Println(s.Figure1())
		}
		if sel("table1") {
			fmt.Println(s.Table1())
		}
		if sel("fig2") {
			fmt.Println(s.Figure2())
		}
		if sel("fig3") {
			fmt.Println(s.Figure3())
		}
		if sel("fig4") {
			fmt.Println(s.Figure4())
		}
		if sel("table2") {
			fmt.Println(s.Table2())
		}
		if sel("table3") {
			fmt.Println(s.Table3())
		}
		if sel("table4") {
			fmt.Println(s.Table4())
		}
	}
	if sel("table5") {
		d, err := genima.Table5(scale, *verifyFlag, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(d)
	}
	if want["scaling"] {
		d, err := genima.Scaling(scale, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(d)
	}
	if want["faultsweep"] {
		d, err := genima.FaultSweep(scale, *seedFlag, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(d)
	}
	if want["scalesweep"] {
		d, err := genima.ScaleSweep(scale, *seedFlag, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(d)
	}
	if want["serve"] {
		d, err := genima.Serve(scale, *seedFlag, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(d)
	}
	if !*quietFlag {
		fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(t0))
	}
}
