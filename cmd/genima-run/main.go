// Command genima-run executes one application under one protocol and
// prints its speedup, execution-time breakdown, protocol accounting,
// and the NI firmware monitor's contention ratios.
//
// Usage:
//
//	genima-run -app fft -proto GeNIMA
//	genima-run -app barnes-sp -proto DW+RF+DD -nodes 8 -scale bench
//	genima-run -app radix -proto hw            # hardware-DSM model
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

import (
	genima "genima"
	"genima/internal/apps"
	"genima/internal/nic"
	"genima/internal/stats"
)

var (
	appFlag    = flag.String("app", "fft", "application: "+strings.Join(apps.Names(apps.Bench), ", "))
	protoFlag  = flag.String("proto", "GeNIMA", "protocol: Base, DW, DW+RF, DW+RF+DD, GeNIMA, or hw")
	scaleFlag  = flag.String("scale", "bench", "problem scale: test or bench")
	nodesFlag  = flag.Int("nodes", 4, "SMP nodes")
	procsFlag  = flag.Int("procs", 4, "processors per node")
	verifyFlag = flag.Bool("verify", true, "validate against the sequential reference")
	sgFlag     = flag.Bool("sg", false, "enable the NI scatter-gather extension for direct diffs")
	bcastFlag  = flag.Bool("broadcast", false, "enable NI broadcast for write notices")
	topoFlag   = flag.String("topo", "xbar8", "network fabric: xbar8, clos2, or fattree")
	radixFlag  = flag.Int("radix", 8, "switch radix for clos2/fattree (even, >= 4)")
	collFlag   = flag.Bool("collectives", false, "run barriers and notice broadcasts on the NI-firmware collective tree (DW and later)")
	arityFlag  = flag.Int("arity", 4, "collective tree fan-out (used with -collectives)")
	traceFlag  = flag.String("trace", "", "write a per-packet trace to this file")
	faultsFlag = flag.Float64("faults", 0, "link fault injection: packet drop rate (0,1), with dups/delays/corruption mixed in per FaultMix; 0 disables")
	seedFlag   = flag.Uint64("fault-seed", 1, "deterministic seed for the fault plan (used with -faults)")
	jrunFlag   = flag.Int("jrun", 1, "intra-run simulation workers executing shard logical processes; any value yields a byte-identical result")
	lpsFlag    = flag.Int("lpshards", 0, "node shards (logical processes) for intra-run parallelism; 0 = auto (min(jrun, nodes)); any value yields a byte-identical result")

	ckptFlag      = flag.String("checkpoint", "", "write a rolling checkpoint to this file (SIGINT/SIGTERM also flush one and exit 128+sig)")
	ckptEveryFlag = flag.Uint64("checkpoint-every", genima.DefaultCheckpointEvery, "trace events between checkpoint/stats boundaries")
	restoreFlag   = flag.String("restore", "", "resume from this checkpoint file (deterministic replay to the cut, then continue)")
	hashFlag      = flag.Bool("trace-hash", false, "print the canonical SHA-256 trace hash with event counts and wall-clock rate")
	statsFlag     = flag.String("stats", "", "append one JSON line of progress stats per boundary to this file")
	jsonFlag      = flag.Bool("json", false, "emit the full result as one JSON document on stdout instead of the human-readable report")
	stopAfter     = flag.Uint64("stop-after", 0, "halt gracefully at the Nth checkpoint boundary, as if signaled (deterministic testing hook; exits 130)")
)

func main() {
	flag.Parse()
	scale := apps.Bench
	if *scaleFlag == "test" {
		scale = apps.Test
	}
	entry, ok := apps.ByName(scale, *appFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "genima-run: unknown app %q (have: %s)\n", *appFlag, strings.Join(apps.Names(scale), ", "))
		os.Exit(2)
	}
	cfg := genima.DefaultConfig()
	cfg.Nodes = *nodesFlag
	cfg.ProcsPerNode = *procsFlag
	cfg.ScatterGather = *sgFlag
	cfg.NIBroadcast = *bcastFlag
	cfg.IntraRunWorkers = *jrunFlag
	cfg.LPShards = *lpsFlag
	topo, terr := genima.ParseTopo(*topoFlag)
	if terr != nil {
		fatal(terr)
	}
	cfg.Topo = topo
	cfg.SwitchRadix = *radixFlag
	cfg.Collectives = *collFlag
	cfg.CollectiveArity = *arityFlag
	if *faultsFlag > 0 {
		cfg.Faults = genima.FaultMix(*faultsFlag, *seedFlag)
	}

	// SIGINT/SIGTERM request a graceful halt: the flag is polled at the
	// next deterministic boundary of the controlled run, which writes a
	// final checkpoint (when -checkpoint is set), flushes partial stats,
	// and exits 128+sig. A second signal kills outright. Installed
	// before the sequential reference run so an early signal is
	// recorded, not fatal.
	var sig atomic.Int32
	controlled := *ckptFlag != "" || *restoreFlag != "" || *hashFlag || *statsFlag != "" || *stopAfter > 0
	if controlled {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		go func() {
			s := <-ch
			signal.Stop(ch)
			n := syscall.SIGINT
			if ss, ok := s.(syscall.Signal); ok {
				n = ss
			}
			sig.Store(int32(n))
		}()
	}

	seq, seqWS, err := genima.RunSequential(cfg, entry.App)
	if err != nil {
		fatal(err)
	}

	var res *genima.Result
	var ws *genima.Workspace
	var traceHash string
	var traceEvents uint64
	interrupted := 0 // signal number once a graceful halt is requested
	t0 := time.Now()
	if *protoFlag == "hw" {
		if controlled {
			fatal(fmt.Errorf("-checkpoint/-restore/-trace-hash/-stats apply to SVM protocols, not -proto hw"))
		}
		res, ws, err = genima.RunHardware(cfg, entry.App)
	} else {
		proto, perr := parseProto(*protoFlag)
		if perr != nil {
			fatal(perr)
		}
		var emit func(genima.TraceEvent)
		if *traceFlag != "" {
			f, ferr := os.Create(*traceFlag)
			if ferr != nil {
				fatal(ferr)
			}
			defer f.Close()
			w := bufio.NewWriter(f)
			defer w.Flush()
			emit = func(ev genima.TraceEvent) {
				fmt.Fprintf(w, "t=%dns src=%d dst=%d size=%d kind=%s fw=%v src_ns=%d lanai_ns=%d net_ns=%d dest_ns=%d\n",
					ev.Time, ev.Src, ev.Dst, ev.Size, ev.Kind, ev.Firmware,
					ev.StageTime[0], ev.StageTime[1], ev.StageTime[2], ev.StageTime[3])
			}
		}
		if !controlled {
			res, ws, err = genima.RunTraced(cfg, proto, entry.App, emit)
		} else {
			opts := genima.CheckpointOptions{
				Path:  *ckptFlag,
				Every: *ckptEveryFlag,
				App:   *appFlag,
				Scale: *scaleFlag,
			}
			if emit != nil {
				// On a restore, RunCheckpointed suppresses the replayed
				// prefix, so the trace file holds post-cut packets only.
				opts.OnTrace = func(_ uint64, ev genima.TraceEvent) { emit(ev) }
			}
			if *restoreFlag != "" {
				st, lerr := genima.LoadCheckpoint(*restoreFlag)
				if lerr != nil {
					fatal(lerr)
				}
				opts.Restore = st
			}
			var boundaries uint64
			opts.ShouldStop = func() bool {
				if sig.Load() != 0 {
					return true
				}
				if *stopAfter > 0 {
					boundaries++
					return boundaries >= *stopAfter
				}
				return false
			}
			if *statsFlag != "" {
				sf, serr := os.OpenFile(*statsFlag, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if serr != nil {
					fatal(serr)
				}
				defer sf.Close()
				enc := json.NewEncoder(sf)
				opts.OnBoundary = func(b *genima.Boundary) {
					var ms runtime.MemStats
					runtime.ReadMemStats(&ms)
					enc.Encode(map[string]any{
						"trace_events": b.TraceEvents, "sim_ns": int64(b.SimTime),
						"events": b.Events, "wall_ms": time.Since(t0).Milliseconds(),
						"heap_bytes": ms.HeapAlloc,
					})
				}
			}
			cr, cerr := genima.RunCheckpointed(cfg, proto, entry.App, opts)
			err = cerr
			if cerr == nil {
				res, ws = cr.Res, cr.WS
				traceHash, traceEvents = cr.TraceHash, cr.TraceEvents
				if cr.Interrupted {
					where := "no checkpoint file (-checkpoint not set)"
					if *ckptFlag != "" {
						where = "checkpoint saved to " + *ckptFlag
					}
					interrupted = int(sig.Load())
					cause := fmt.Sprintf("signal %d", interrupted)
					if interrupted == 0 {
						// -stop-after halts mimic SIGINT, exit code included.
						interrupted = int(syscall.SIGINT)
						cause = fmt.Sprintf("-stop-after %d", *stopAfter)
					}
					fmt.Fprintf(os.Stderr, "genima-run: %s: halted at trace event %d; %s\n",
						cause, cr.TraceEvents, where)
				}
			}
		}
	}
	if err != nil {
		fatal(err)
	}
	if interrupted != 0 {
		os.Exit(128 + interrupted)
	}
	wall := time.Since(t0)
	if *hashFlag && !*jsonFlag {
		fmt.Printf("trace-hash=%s trace-events=%d events=%d wall=%v eps=%.0f\n",
			traceHash, traceEvents, res.Events, wall.Round(time.Millisecond),
			float64(res.Events)/wall.Seconds())
	}
	if *verifyFlag {
		if err := genima.Validate(entry.App, ws, seqWS); err != nil {
			fatal(fmt.Errorf("validation FAILED: %w", err))
		}
		if !*jsonFlag {
			fmt.Println("validation: output matches the sequential reference")
		}
	}

	if *jsonFlag {
		doc := runJSON{
			App:          *appFlag,
			Protocol:     *protoFlag,
			Scale:        *scaleFlag,
			Nodes:        cfg.Nodes,
			ProcsPerNode: cfg.ProcsPerNode,
			Validated:    *verifyFlag,
			SeqElapsedNs: int64(seq.Elapsed),
			Speedup:      genima.Speedup(seq, res),
			Result:       genima.NewResultJSON(res),
		}
		if *hashFlag {
			doc.TraceHash = traceHash
			doc.TraceEvents = traceEvents
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("%s (%s) on %s, %d nodes x %d procs\n",
		entry.PaperName, entry.OurSize, res.Label, cfg.Nodes, cfg.ProcsPerNode)
	fmt.Printf("uniprocessor time: %.3f s (simulated)\n", stats.Seconds(seq.Elapsed))
	fmt.Printf("parallel time:     %.3f s  -> speedup %.2f on %d processors\n",
		stats.Seconds(res.Elapsed), genima.Speedup(seq, res), res.Procs)

	fmt.Println("\nAverage execution-time breakdown:")
	fr := res.Avg.Fractions()
	for c := 0; c < stats.NumCategories; c++ {
		fmt.Printf("  %-8s %6.1f%%  (%.3f s)\n", stats.Category(c), 100*fr[c], stats.Seconds(res.Avg.T[c]))
	}

	a := res.Acct
	if a.PageFetches > 0 || a.LockOps > 0 {
		fmt.Println("\nProtocol accounting:")
		fmt.Printf("  page fetches %d (retries %d), remote lock ops %d, interrupts %d\n",
			a.PageFetches, a.FetchRetries, a.LockOps, a.Interrupts)
		fmt.Printf("  diff bytes %d, mprotect calls %d (%.3f s)\n",
			a.DiffBytes, a.MprotectOps, stats.Seconds(a.Mprotect))
	}
	if res.Latency.Count() > 0 {
		fmt.Println("\nRequest latency (open-loop serving, virtual time):")
		fmt.Printf("  %s\n  throughput %.2f kreq/s\n",
			res.Latency.Summary(), res.Latency.Throughput(res.Elapsed)/1e3)
	}
	if res.Monitor != nil {
		u := res.Util
		fmt.Printf("\nSubstrate utilization (busiest device): LANai %.0f%%, PCI %.0f%%, link %.0f%%, switch %.0f%%; worst NI backlog %.0f us\n",
			100*u.Firmware, 100*u.PCI, 100*u.Link, 100*u.Switch, float64(u.MaxBacklog)/1000)
		if res.PostQueueStalls > 0 {
			fmt.Printf("post-queue stalls: %d (%.3f s lost)\n",
				res.PostQueueStalls, stats.Seconds(res.PostQueueStallTime))
		}
		fmt.Printf("post-queue overflows (event-context posts past a full queue): %d\n",
			res.PostQueueOverflows)
		if f := &res.Faults; f.Any() {
			fmt.Println("\nFault injection and NI reliable delivery:")
			fmt.Printf("  injected: %d drops, %d dups, %d delays, %d corruptions, %d down-window drops\n",
				f.DropsInjected, f.DupsInjected, f.DelaysInjected, f.CorruptsInjected, f.DownDrops)
			fmt.Printf("  masked:   %d retransmissions, %d dups suppressed, %d out-of-order dropped, %d corrupt dropped\n",
				f.RetxSent, f.DupsSuppressed, f.OOODropped, f.CorruptDropped)
			fmt.Printf("  acks:     %d standalone, %d piggybacked\n", f.AcksSent, f.PiggybackAcks)
			fmt.Printf("  recovery: %d packets needed retransmission, mean %.0f us, max %.0f us\n",
				f.Recovered, float64(f.MeanRecovery())/1000, float64(f.MaxRecovery)/1000)
		}
		fmt.Println("\nNI firmware monitor (actual/uncontended per stage):")
		for _, class := range []nic.Class{nic.Small, nic.Large} {
			r := res.Monitor.Ratios(class)
			fmt.Printf("  %-5s msgs (%7d pkts):", class, res.Monitor.Packets(class))
			for st := 0; st < int(nic.NumStages); st++ {
				fmt.Printf(" %s=%.1f", nic.Stage(st), r[st])
			}
			fmt.Println()
		}
		fmt.Println("\nTraffic by message kind:")
		for _, k := range res.Monitor.TopKinds(8) {
			fmt.Printf("  %-14s %8d pkts %10d bytes\n", k.Kind, k.Packets, k.Bytes)
		}
	}
}

// runJSON is the `-json` document: run metadata wrapping the full
// ResultJSON view (see genima.ResultJSON for field semantics).
type runJSON struct {
	App          string             `json:"app"`
	Protocol     string             `json:"protocol"`
	Scale        string             `json:"scale"`
	Nodes        int                `json:"nodes"`
	ProcsPerNode int                `json:"procs_per_node"`
	Validated    bool               `json:"validated"`
	SeqElapsedNs int64              `json:"seq_elapsed_ns"`
	Speedup      float64            `json:"speedup"`
	TraceHash    string             `json:"trace_hash,omitempty"`
	TraceEvents  uint64             `json:"trace_events,omitempty"`
	Result       *genima.ResultJSON `json:"result"`
}

func parseProto(s string) (genima.Protocol, error) {
	for _, k := range genima.Protocols() {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown protocol %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genima-run:", err)
	os.Exit(1)
}
