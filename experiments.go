package genima

import (
	"fmt"
	"strings"

	"genima/internal/app"
	"genima/internal/apps"
	"genima/internal/apps/svmkv"
	"genima/internal/nic"
	"genima/internal/sim"
	"genima/internal/stats"
)

// Scale selects suite problem sizes.
type Scale = apps.Scale

// Suite scales.
const (
	// TestScale runs each experiment in milliseconds (CI-sized inputs).
	TestScale = apps.Test
	// BenchScale is the default table/figure regeneration size.
	BenchScale = apps.Bench
)

// SuiteOptions configures RunSuite.
type SuiteOptions struct {
	Scale     Scale
	Protocols []Protocol // default: all five rungs
	Hardware  bool       // also run the Origin-2000-like model
	Verify    bool       // validate every run against the sequential reference
	Progress  func(string)

	// Workers bounds how many simulations run concurrently. Every run
	// owns a private engine and address space, so results are identical
	// for any value; only wall-clock time and Progress ordering change.
	// 0 (the default) uses GOMAXPROCS; 1 forces the legacy serial order.
	Workers int
}

// SuiteResults holds every run needed to regenerate Figures 1–4 and
// Tables 1–4 (Table 5 takes its own 32-processor runs; see Table5).
type SuiteResults struct {
	Cfg     Config
	Entries []apps.Entry
	Seq     []*Result
	HW      []*Result
	SVM     map[Protocol][]*Result
}

func (o *SuiteOptions) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// RunSuite executes the application suite under every requested
// protocol (plus the sequential reference and, optionally, hardware).
// Independent runs are fanned across OS threads per opt.Workers; see
// SuiteOptions. Results do not depend on the worker count.
func RunSuite(cfg Config, opt SuiteOptions) (*SuiteResults, error) {
	kinds := opt.Protocols
	if kinds == nil {
		kinds = Protocols()
	}
	if workers := suiteWorkers(opt.Workers); workers > 1 {
		return runSuiteParallel(cfg, opt, kinds, workers)
	}
	s := &SuiteResults{Cfg: cfg, Entries: apps.Suite(opt.Scale), SVM: map[Protocol][]*Result{}}
	for _, e := range s.Entries {
		opt.progress("seq  %-12s", e.App.Name())
		seqRes, seqWS, err := app.RunSeq(cfg, e.App)
		if err != nil {
			return nil, err
		}
		s.Seq = append(s.Seq, seqRes)

		if opt.Hardware {
			opt.progress("hw   %-12s", e.App.Name())
			hwRes, hwWS, err := app.RunHW(cfg, e.App)
			if err != nil {
				return nil, err
			}
			if opt.Verify {
				if err := app.Validate(e.App, hwWS, seqWS); err != nil {
					return nil, fmt.Errorf("%s on hwdsm: %w", e.App.Name(), err)
				}
			}
			s.HW = append(s.HW, hwRes)
		}

		for _, k := range kinds {
			opt.progress("%-4s %-12s", k, e.App.Name())
			res, ws, err := app.RunSVM(cfg, k, e.App)
			if err != nil {
				return nil, err
			}
			if opt.Verify {
				if err := app.Validate(e.App, ws, seqWS); err != nil {
					return nil, fmt.Errorf("%s on %v: %w", e.App.Name(), k, err)
				}
			}
			s.SVM[k] = append(s.SVM[k], res)
		}
	}
	return s, nil
}

func (s *SuiteResults) appNames() []string {
	var out []string
	for _, e := range s.Entries {
		out = append(out, e.PaperName)
	}
	return out
}

func (s *SuiteResults) speedups(rs []*Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = app.Speedup(s.Seq[i], r)
	}
	return out
}

// --- Figure 1: Origin 2000 vs Base SVM speedups ---

// Figure1Data is the paper's Figure 1: hardware DSM vs Base SVM.
type Figure1Data struct {
	Apps   []string
	Origin []float64
	Base   []float64
}

// Figure1 computes Figure 1 (requires Hardware runs).
func (s *SuiteResults) Figure1() *Figure1Data {
	return &Figure1Data{Apps: s.appNames(), Origin: s.speedups(s.HW), Base: s.speedups(s.SVM[Base])}
}

// String renders the figure as a table of speedups.
func (f *Figure1Data) String() string {
	t := stats.NewTable("Application", "Origin2000", "Base SVM")
	for i, a := range f.Apps {
		t.Row(a, f.Origin[i], f.Base[i])
	}
	return "Figure 1: speedups, hardware DSM vs Base SVM (16 procs)\n" + t.String()
}

// --- Figure 2: the protocol ladder speedups ---

// Figure2Data is the paper's Figure 2: speedups for every rung.
type Figure2Data struct {
	Apps       []string
	Protocols  []Protocol
	ByProtocol map[Protocol][]float64
}

// Figure2 computes Figure 2.
func (s *SuiteResults) Figure2() *Figure2Data {
	f := &Figure2Data{Apps: s.appNames(), Protocols: Protocols(), ByProtocol: map[Protocol][]float64{}}
	for _, k := range f.Protocols {
		if rs, ok := s.SVM[k]; ok {
			f.ByProtocol[k] = s.speedups(rs)
		}
	}
	return f
}

// String renders the figure.
func (f *Figure2Data) String() string {
	cols := []string{"Application"}
	for _, k := range f.Protocols {
		cols = append(cols, k.String())
	}
	t := stats.NewTable(cols...)
	for i, a := range f.Apps {
		row := []any{a}
		for _, k := range f.Protocols {
			row = append(row, f.ByProtocol[k][i])
		}
		t.Row(row...)
	}
	return "Figure 2: application speedups per protocol (16 procs)\n" + t.String()
}

// --- Figure 3: normalized execution-time breakdowns ---

// Figure3Data is the paper's Figure 3: per-protocol breakdowns
// normalized to the Base protocol's total (Base = 1.0).
type Figure3Data struct {
	Apps       []string
	Protocols  []Protocol
	Categories []string
	// Normalized[app][protocol][category]
	Normalized [][][]float64
}

// Figure3 computes Figure 3.
func (s *SuiteResults) Figure3() *Figure3Data {
	f := &Figure3Data{Apps: s.appNames(), Protocols: Protocols()}
	for c := 0; c < stats.NumCategories; c++ {
		f.Categories = append(f.Categories, stats.Category(c).String())
	}
	for i := range s.Entries {
		baseTotal := s.SVM[Base][i].Avg.Total()
		perProto := make([][]float64, 0, len(f.Protocols))
		for _, k := range f.Protocols {
			avg := s.SVM[k][i].Avg
			cats := make([]float64, stats.NumCategories)
			for c := range cats {
				if baseTotal > 0 {
					cats[c] = float64(avg.T[c]) / float64(baseTotal)
				}
			}
			perProto = append(perProto, cats)
		}
		f.Normalized = append(f.Normalized, perProto)
	}
	return f
}

// String renders the figure as stacked-component rows.
func (f *Figure3Data) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 3: normalized execution time breakdowns (Base = 1.00)\n")
	cols := append([]string{"Application", "Protocol"}, f.Categories...)
	cols = append(cols, "Total")
	t := stats.NewTable(cols...)
	for i, a := range f.Apps {
		for p, k := range f.Protocols {
			row := []any{a, k.String()}
			total := 0.0
			for _, v := range f.Normalized[i][p] {
				row = append(row, v)
				total += v
			}
			row = append(row, total)
			t.Row(row...)
		}
	}
	sb.WriteString(t.String())
	return sb.String()
}

// --- Figure 4: Origin vs Base vs GeNIMA ---

// Figure4Data is the paper's Figure 4.
type Figure4Data struct {
	Apps   []string
	Origin []float64
	Base   []float64
	GeNIMA []float64
}

// Figure4 computes Figure 4 (requires Hardware runs).
func (s *SuiteResults) Figure4() *Figure4Data {
	return &Figure4Data{
		Apps:   s.appNames(),
		Origin: s.speedups(s.HW),
		Base:   s.speedups(s.SVM[Base]),
		GeNIMA: s.speedups(s.SVM[GeNIMA]),
	}
}

// String renders the figure.
func (f *Figure4Data) String() string {
	t := stats.NewTable("Application", "Origin2000", "Base", "GeNIMA")
	for i, a := range f.Apps {
		t.Row(a, f.Origin[i], f.Base[i], f.GeNIMA[i])
	}
	return "Figure 4: speedups, hardware DSM vs Base vs GeNIMA (16 procs)\n" + t.String()
}

// --- Table 1: application statistics and improvements ---

// Table1Row is one application's Table 1 statistics.
type Table1Row struct {
	App        string
	PaperSize  string
	OurSize    string
	UniprocSec float64
	// OverallPct is the Base -> GeNIMA improvement in execution time.
	OverallPct float64
	// DataPct is the DW -> DW+RF improvement in data wait time; the
	// parenthesized paper figure is DW -> GeNIMA.
	DataPct float64
	// DataFullPct is the DW -> GeNIMA data-wait improvement.
	DataFullPct float64
	// LockPct is the DW+RF+DD -> GeNIMA improvement in lock time.
	LockPct float64
}

// Table1Data is the paper's Table 1.
type Table1Data struct{ Rows []Table1Row }

func improvePct(before, after float64) float64 {
	if before <= 0 {
		return 0
	}
	return 100 * (before - after) / before
}

// Table1 computes Table 1.
func (s *SuiteResults) Table1() *Table1Data {
	d := &Table1Data{}
	for i, e := range s.Entries {
		base := s.SVM[Base][i]
		gen := s.SVM[GeNIMA][i]
		dw := s.SVM[DW][i]
		dwrf := s.SVM[DWRF][i]
		dd := s.SVM[DWRFDD][i]
		d.Rows = append(d.Rows, Table1Row{
			App:         e.PaperName,
			PaperSize:   e.PaperSize,
			OurSize:     e.OurSize,
			UniprocSec:  stats.Seconds(s.Seq[i].Elapsed),
			OverallPct:  improvePct(float64(base.Elapsed), float64(gen.Elapsed)),
			DataPct:     improvePct(float64(dw.Avg.T[stats.Data]), float64(dwrf.Avg.T[stats.Data])),
			DataFullPct: improvePct(float64(dw.Avg.T[stats.Data]), float64(gen.Avg.T[stats.Data])),
			LockPct:     improvePct(float64(dd.Avg.T[stats.Lock]), float64(gen.Avg.T[stats.Lock])),
		})
	}
	return d
}

// String renders Table 1.
func (d *Table1Data) String() string {
	t := stats.NewTable("Application", "Paper size", "Our size", "Uniproc(s)",
		"Overall(%)", "Data(%) RF", "Data(%) all", "Lock(%) NIL")
	for _, r := range d.Rows {
		t.Row(r.App, r.PaperSize, r.OurSize, r.UniprocSec, r.OverallPct, r.DataPct, r.DataFullPct, r.LockPct)
	}
	return "Table 1: application statistics and per-mechanism improvements\n" + t.String()
}

// --- Table 2: barrier time decomposition (GeNIMA) ---

// Table2Row is one application's barrier statistics under GeNIMA.
type Table2Row struct {
	App string
	// BTPct: share of execution time spent in barriers.
	BTPct float64
	// BPTPct: share of barrier time that is protocol processing.
	BPTPct float64
	// MTPct: share of total SVM overhead spent in mprotect.
	MTPct float64
}

// Table2Data is the paper's Table 2.
type Table2Data struct{ Rows []Table2Row }

// Table2 computes Table 2 from the GeNIMA runs.
func (s *SuiteResults) Table2() *Table2Data {
	d := &Table2Data{}
	for i, e := range s.Entries {
		r := s.SVM[GeNIMA][i]
		var sumTotal, sumBarrier, sumOverhead float64
		for _, b := range r.Breakdowns {
			sumTotal += float64(b.Total())
			sumBarrier += float64(b.T[stats.Barrier])
			sumOverhead += float64(b.Overhead())
		}
		row := Table2Row{App: e.PaperName}
		if sumTotal > 0 {
			row.BTPct = 100 * sumBarrier / sumTotal
		}
		if sumBarrier > 0 {
			row.BPTPct = 100 * float64(r.BarrierProto) / sumBarrier
		}
		if sumOverhead > 0 {
			row.MTPct = 100 * float64(r.Acct.Mprotect) / sumOverhead
		}
		d.Rows = append(d.Rows, row)
	}
	return d
}

// String renders Table 2.
func (d *Table2Data) String() string {
	t := stats.NewTable("Application", "BT(%)", "BPT(%)", "MT(%)")
	for _, r := range d.Rows {
		t.Row(r.App, r.BTPct, r.BPTPct, r.MTPct)
	}
	return "Table 2: barrier time (BT), barrier protocol share (BPT), mprotect share of SVM overhead (MT), GeNIMA\n" + t.String()
}

// --- Tables 3 and 4: NI monitor contention ratios ---

// ContentionRow is one application's per-stage actual/uncontended
// ratios under Base and GeNIMA.
type ContentionRow struct {
	App    string
	Base   [nic.NumStages]float64
	GeNIMA [nic.NumStages]float64
}

// ContentionData is Table 3 (small messages) or Table 4 (large).
type ContentionData struct {
	Class nic.Class
	Rows  []ContentionRow
}

func (s *SuiteResults) contention(class nic.Class) *ContentionData {
	d := &ContentionData{Class: class}
	for i, e := range s.Entries {
		d.Rows = append(d.Rows, ContentionRow{
			App:    e.PaperName,
			Base:   s.SVM[Base][i].Monitor.Ratios(class),
			GeNIMA: s.SVM[GeNIMA][i].Monitor.Ratios(class),
		})
	}
	return d
}

// Table3 computes the small-message contention ratios.
func (s *SuiteResults) Table3() *ContentionData { return s.contention(nic.Small) }

// Table4 computes the large-message contention ratios.
func (s *SuiteResults) Table4() *ContentionData { return s.contention(nic.Large) }

// String renders the contention table in the paper's Base/GeNIMA form.
func (d *ContentionData) String() string {
	t := stats.NewTable("Application", "SourceLat", "LANaiLat", "NetLat", "DestLat")
	for _, r := range d.Rows {
		cells := []any{r.App}
		for st := 0; st < int(nic.NumStages); st++ {
			cells = append(cells, fmt.Sprintf("%.1f/%.1f", r.Base[st], r.GeNIMA[st]))
		}
		t.Row(cells...)
	}
	n := "Table 3"
	if d.Class == nic.Large {
		n = "Table 4"
	}
	return fmt.Sprintf("%s: %s-message contention ratios, actual/uncontended (Base/GeNIMA)\n%s",
		n, d.Class, t.String())
}

// --- Table 5: 32-processor speedups ---

// Table5Data is the paper's Table 5: GeNIMA vs Origin at 32 processors.
type Table5Data struct {
	Apps   []string
	SVM    []float64
	Origin []float64
}

// Table5 runs the suite on an 8-node (32-processor) cluster under
// GeNIMA and the hardware model. It is independent of RunSuite.
func Table5(scale Scale, verify bool, progress func(string)) (*Table5Data, error) {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	opt := SuiteOptions{
		Scale:     scale,
		Protocols: []Protocol{GeNIMA},
		Hardware:  true,
		Verify:    verify,
		Progress:  progress,
	}
	s, err := RunSuite(cfg, opt)
	if err != nil {
		return nil, err
	}
	return &Table5Data{
		Apps:   s.appNames(),
		SVM:    s.speedups(s.SVM[GeNIMA]),
		Origin: s.speedups(s.HW),
	}, nil
}

// String renders Table 5.
func (d *Table5Data) String() string {
	t := stats.NewTable("Application", "SVM (GeNIMA)", "SGI Origin2000")
	for i, a := range d.Apps {
		t.Row(a, d.SVM[i], d.Origin[i])
	}
	return "Table 5: speedups on 32 processors\n" + t.String()
}

// --- Scaling study (the paper's §5: "how the performance and
// bottlenecks scale with system size") ---

// ScalingData holds per-cluster-size speedups for the whole suite under
// Base and GeNIMA.
type ScalingData struct {
	Apps   []string
	Nodes  []int
	Procs  []int
	Base   [][]float64 // [app][size]
	GeNIMA [][]float64
}

// Scaling runs the suite at 1, 2, 4 and 8 nodes (4-way SMPs) under
// Base and GeNIMA.
func Scaling(scale Scale, progress func(string)) (*ScalingData, error) {
	d := &ScalingData{Nodes: []int{1, 2, 4, 8}}
	for _, nodes := range d.Nodes {
		d.Procs = append(d.Procs, nodes*4)
	}
	entries := apps.Suite(scale)
	for _, e := range entries {
		d.Apps = append(d.Apps, e.PaperName)
	}
	d.Base = make([][]float64, len(entries))
	d.GeNIMA = make([][]float64, len(entries))
	for i := range entries {
		d.Base[i] = make([]float64, len(d.Nodes))
		d.GeNIMA[i] = make([]float64, len(d.Nodes))
	}
	for si, nodes := range d.Nodes {
		cfg := DefaultConfig()
		cfg.Nodes = nodes
		opt := SuiteOptions{Scale: scale, Protocols: []Protocol{Base, GeNIMA}, Progress: progress}
		s, err := RunSuite(cfg, opt)
		if err != nil {
			return nil, err
		}
		for i := range entries {
			d.Base[i][si] = app.Speedup(s.Seq[i], s.SVM[Base][i])
			d.GeNIMA[i][si] = app.Speedup(s.Seq[i], s.SVM[GeNIMA][i])
		}
	}
	return d, nil
}

// String renders the scaling study.
func (d *ScalingData) String() string {
	cols := []string{"Application", "Protocol"}
	for _, p := range d.Procs {
		cols = append(cols, fmt.Sprintf("%dp", p))
	}
	t := stats.NewTable(cols...)
	for i, a := range d.Apps {
		row := []any{a, "Base"}
		for si := range d.Nodes {
			row = append(row, d.Base[i][si])
		}
		t.Row(row...)
		row = []any{a, "GeNIMA"}
		for si := range d.Nodes {
			row = append(row, d.GeNIMA[i][si])
		}
		t.Row(row...)
	}
	return "Scaling study: suite speedups vs cluster size (4-way SMP nodes)\n" + t.String()
}

// --- Fault sweep: protocol robustness under link faults (new
// experiment, beyond the paper: the paper's testbed assumes VMMC's
// reliable delivery; here the NI firmware provides it over lossy
// links, and the sweep shows what that reliability costs each
// protocol rung) ---

// FaultSweepData holds mean suite speedups per protocol at each drop
// rate, with per-rate fault/recovery totals. Every run is validated
// against the sequential reference, so a row's presence certifies the
// ladder still computes correct results at that rate.
type FaultSweepData struct {
	Seed      uint64
	Rates     []float64 // drop rates; dup/delay/corrupt ride along per FaultMix
	Apps      []string
	Speedups  map[Protocol][]float64 // mean suite speedup, [protocol][rate]
	Injected  []uint64               // faults injected per rate, summed over the suite
	Retx      []uint64               // retransmissions per rate
	RecovToUs []float64              // mean recovery time per rate, µs
}

// FaultSweepRates is the sweep's drop-rate ladder (0 = faults off).
func FaultSweepRates() []float64 { return []float64{0, 0.001, 0.005, 0.01} }

// FaultSweep runs the full app x protocol suite at each drop rate in
// FaultSweepRates with a FaultMix plan seeded by seed, validating
// every run. It is independent of RunSuite's main-suite callers.
func FaultSweep(scale Scale, seed uint64, progress func(string)) (*FaultSweepData, error) {
	d := &FaultSweepData{
		Seed:     seed,
		Rates:    FaultSweepRates(),
		Speedups: map[Protocol][]float64{},
	}
	for _, e := range apps.Suite(scale) {
		d.Apps = append(d.Apps, e.PaperName)
	}
	for _, rate := range d.Rates {
		cfg := DefaultConfig()
		if rate > 0 {
			cfg.Faults = FaultMix(rate, seed)
		}
		if progress != nil {
			progress(fmt.Sprintf("fault sweep: drop rate %.2f%%", 100*rate))
		}
		s, err := RunSuite(cfg, SuiteOptions{Scale: scale, Verify: true, Progress: progress})
		if err != nil {
			return nil, fmt.Errorf("fault sweep at %.2f%% drop: %w", 100*rate, err)
		}
		var rep stats.FaultReport
		for _, k := range Protocols() {
			sum := 0.0
			for i, r := range s.SVM[k] {
				sum += app.Speedup(s.Seq[i], r)
				rep.Merge(r.Faults)
			}
			d.Speedups[k] = append(d.Speedups[k], sum/float64(len(s.SVM[k])))
		}
		d.Injected = append(d.Injected, rep.DropsInjected+rep.DupsInjected+
			rep.DelaysInjected+rep.CorruptsInjected+rep.DownDrops)
		d.Retx = append(d.Retx, rep.RetxSent)
		d.RecovToUs = append(d.RecovToUs, float64(rep.MeanRecovery())/1000)
	}
	return d, nil
}

// --- Scale sweep: barrier cost vs node count, flat fan-out vs the
// NI-firmware collective tree (the PR 7 headline experiment; the paper
// stops at 32 processors, this extrapolates its Figure 2 / Table 2
// barrier story to 64–512 nodes on a switched fabric) ---

// ScaleSweepData holds per-node-count barrier costs for the
// barrierbench microbenchmark on a radix-32 clos2 fabric, one
// processor per node, under a 1% mixed fault plan. FlatNs and TreeNs
// are mean wall-clock (virtual) ns per barrier episode; TreeSpeedup is
// flat/tree. Base has no deposit support, so the collective gate
// leaves it on the interrupt path: its "tree" column equals flat and
// is reported as the contrast the capability ladder predicts.
type ScaleSweepData struct {
	Nodes     []int
	Protocols []Protocol
	Radix     int
	Rounds    int
	FlatNs    map[Protocol][]float64
	TreeNs    map[Protocol][]float64
}

// ScaleSweepNodes is the sweep's cluster-size ladder.
func ScaleSweepNodes() []int { return []int{64, 128, 256, 512} }

// TreeSpeedup returns flat/tree for one protocol across the ladder.
func (d *ScaleSweepData) TreeSpeedup(k Protocol) []float64 {
	out := make([]float64, len(d.Nodes))
	for i := range d.Nodes {
		if t := d.TreeNs[k][i]; t > 0 {
			out[i] = d.FlatNs[k][i] / t
		}
	}
	return out
}

// ScaleSweep runs barrierbench at each node count in ScaleSweepNodes,
// per protocol, with collectives off (flat fan-out) and on (NI tree).
// DW+RF and DW+RF+DD share DW's barrier path exactly, so the sweep
// covers Base (interrupt barrier), DW (flat deposit vs tree), and
// GeNIMA (adds NI locks; barrier path as DW). Every run injects the
// 1% mixed fault plan — completing the sweep certifies the collective
// tree rides the go-back-N reliable edges.
func ScaleSweep(scale Scale, seed uint64, progress func(string)) (*ScaleSweepData, error) {
	e, ok := apps.ByName(scale, "barrierbench")
	if !ok {
		return nil, fmt.Errorf("scalesweep: barrierbench app missing")
	}
	rounds := e.App.(interface{ Rounds() int }).Rounds()
	d := &ScaleSweepData{
		Nodes:     ScaleSweepNodes(),
		Protocols: []Protocol{Base, DW, GeNIMA},
		Radix:     32,
		Rounds:    rounds,
		FlatNs:    map[Protocol][]float64{},
		TreeNs:    map[Protocol][]float64{},
	}
	// 2 barriers per round plus the harness's trailing flush barrier.
	barriers := float64(2*rounds + 1)
	for _, nodes := range d.Nodes {
		for _, k := range d.Protocols {
			for _, tree := range []bool{false, true} {
				cfg := DefaultConfig()
				cfg.Nodes = nodes
				cfg.ProcsPerNode = 1
				cfg.Topo = TopoClos2
				cfg.SwitchRadix = d.Radix
				cfg.Collectives = tree
				cfg.Faults = FaultMix(0.01, seed)
				if progress != nil {
					progress(fmt.Sprintf("scalesweep: %d nodes, %v, collectives=%v", nodes, k, tree))
				}
				res, _, err := app.RunSVM(cfg, k, e.App)
				if err != nil {
					return nil, fmt.Errorf("scalesweep %d nodes %v tree=%v: %w", nodes, k, tree, err)
				}
				ns := float64(res.Elapsed) / barriers
				if tree {
					d.TreeNs[k] = append(d.TreeNs[k], ns)
				} else {
					d.FlatNs[k] = append(d.FlatNs[k], ns)
				}
			}
		}
	}
	return d, nil
}

// String renders the sweep.
func (d *ScaleSweepData) String() string {
	cols := []string{"Protocol", "Barrier"}
	for _, n := range d.Nodes {
		cols = append(cols, fmt.Sprintf("%dn", n))
	}
	t := stats.NewTable(cols...)
	for _, k := range d.Protocols {
		row := []any{k.String(), "flat us"}
		for i := range d.Nodes {
			row = append(row, d.FlatNs[k][i]/1000)
		}
		t.Row(row...)
		row = []any{k.String(), "tree us"}
		for i := range d.Nodes {
			row = append(row, d.TreeNs[k][i]/1000)
		}
		t.Row(row...)
		row = []any{k.String(), "speedup"}
		for _, s := range d.TreeSpeedup(k) {
			row = append(row, s)
		}
		t.Row(row...)
	}
	return fmt.Sprintf("Scale sweep: mean barrier time (us) on clos2 radix %d, 1 proc/node, 1%% faults, %d rounds\n%s",
		d.Radix, d.Rounds, t.String())
}

// --- Serving sweep: throughput and tail latency of the svmkv
// open-loop KV server, protocol × load level × fault rate (new
// experiment, beyond the paper: the ladder judged on p50/p99/p999
// request tails under production-style load and packet loss instead of
// one batch speedup number) ---

// ServeLoadLevels names the sweep's offered-load points as multipliers
// on the svmkv default mean interarrival gap: "moderate" (2.5× the
// gap) sits below every rung's drain rate, so tails reflect service
// and burst absorption; "heavy" (the default gap) offers more than the
// fastest rung drains, so tails reflect open-loop overload queueing.
func ServeLoadLevels() []ServeLoad {
	return []ServeLoad{{"moderate", 2.5}, {"heavy", 1.0}}
}

// ServeLoad is one offered-load point.
type ServeLoad struct {
	Name string
	// GapScale multiplies Params.MeanGapNs (larger gap = lighter load).
	GapScale float64
}

// ServeFaultRates is the sweep's fault ladder: clean links and the 1%
// mixed plan (drops + dups + delays + corruption per FaultMix).
func ServeFaultRates() []float64 { return []float64{0, 0.01} }

// ServeCell is one (protocol, load, fault-rate) measurement.
type ServeCell struct {
	// ReqsPerSec is completed requests per simulated second.
	ReqsPerSec float64
	Lat        stats.LatencySummary
}

// ServeData holds the serving sweep. Cells is indexed
// [protocol][load][fault-rate], aligned with Protocols/Loads/Rates.
// Every run is validated byte-exact against the sequential reference,
// so a cell's presence certifies the server computed correct results
// under that protocol, load, and fault plan.
type ServeData struct {
	Seed      uint64
	Scale     Scale
	Params    svmkv.Params // base workload (MeanGapNs scaled per load)
	Protocols []Protocol
	Loads     []ServeLoad
	Rates     []float64
	Cells     map[Protocol][][]ServeCell
}

// Serve runs the svmkv serving workload across the full protocol
// ladder at each load level and fault rate, collecting throughput and
// latency tails from the merged per-processor histograms.
func Serve(scale Scale, seed uint64, progress func(string)) (*ServeData, error) {
	base := svmkv.DefaultParams(scale == BenchScale)
	base.Seed = seed
	d := &ServeData{
		Seed:      seed,
		Scale:     scale,
		Params:    base,
		Protocols: Protocols(),
		Loads:     ServeLoadLevels(),
		Rates:     ServeFaultRates(),
		Cells:     map[Protocol][][]ServeCell{},
	}
	for li, load := range d.Loads {
		p := base
		p.MeanGapNs = base.MeanGapNs * load.GapScale
		a := svmkv.New(p)
		_, seqWS, err := app.RunSeq(DefaultConfig(), a)
		if err != nil {
			return nil, fmt.Errorf("serve %s: sequential reference: %w", load.Name, err)
		}
		for _, k := range d.Protocols {
			if len(d.Cells[k]) <= li {
				d.Cells[k] = append(d.Cells[k], make([]ServeCell, len(d.Rates)))
			}
			for ri, rate := range d.Rates {
				cfg := DefaultConfig()
				if rate > 0 {
					cfg.Faults = FaultMix(rate, seed)
				}
				if progress != nil {
					progress(fmt.Sprintf("serve: %v, %s load, %.1f%% faults", k, load.Name, 100*rate))
				}
				res, ws, err := app.RunSVM(cfg, k, a)
				if err != nil {
					return nil, fmt.Errorf("serve %v/%s/%.1f%%: %w", k, load.Name, 100*rate, err)
				}
				if err := app.Validate(a, ws, seqWS); err != nil {
					return nil, fmt.Errorf("serve %v/%s/%.1f%%: validation failed: %w", k, load.Name, 100*rate, err)
				}
				d.Cells[k][li][ri] = ServeCell{
					ReqsPerSec: res.Latency.Throughput(res.Elapsed),
					Lat:        res.Latency.Summary(),
				}
			}
		}
	}
	return d, nil
}

// Cell returns the measurement for (protocol, load index, rate index).
func (d *ServeData) Cell(k Protocol, load, rate int) ServeCell { return d.Cells[k][load][rate] }

// String renders the sweep as the protocol × load × fault-rate table.
func (d *ServeData) String() string {
	t := stats.NewTable("Protocol", "Load", "Faults", "kreq/s", "p50 us", "p90 us", "p99 us", "p999 us", "max us")
	us := func(v sim.Time) float64 { return float64(v) / 1000 }
	for _, k := range d.Protocols {
		for li, load := range d.Loads {
			for ri, rate := range d.Rates {
				c := d.Cells[k][li][ri]
				t.Row(k.String(), load.Name, fmt.Sprintf("%.0f%%", 100*rate),
					c.ReqsPerSec/1000, us(c.Lat.P50), us(c.Lat.P90), us(c.Lat.P99),
					us(c.Lat.P999), us(c.Lat.Max))
			}
		}
	}
	return fmt.Sprintf("Serving sweep: svmkv open-loop KV server (%d reqs, %d shards, zipf %.2f, seed %d; all runs validated)\n%s",
		d.Params.Requests, d.Params.Shards, d.Params.Zipf, d.Seed, t.String())
}

// String renders the sweep as a degradation table.
func (d *FaultSweepData) String() string {
	cols := []string{"Protocol"}
	for _, r := range d.Rates {
		cols = append(cols, fmt.Sprintf("%.1f%% drop", 100*r))
	}
	t := stats.NewTable(cols...)
	for _, k := range Protocols() {
		row := []any{k.String()}
		for ri := range d.Rates {
			row = append(row, d.Speedups[k][ri])
		}
		t.Row(row...)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fault sweep: mean suite speedup vs link fault rate (seed %d, all runs validated)\n", d.Seed)
	sb.WriteString(t.String())
	for ri, r := range d.Rates {
		if r == 0 {
			continue
		}
		fmt.Fprintf(&sb, "at %.1f%%: %d faults injected, %d retransmissions, mean recovery %.0f us\n",
			100*r, d.Injected[ri], d.Retx[ri], d.RecovToUs[ri])
	}
	return sb.String()
}
