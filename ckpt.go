package genima

import (
	"bytes"
	"errors"
	"fmt"

	"genima/internal/checkpoint"
)

// Checkpoint is a saved cut of a deterministic run (or a soak
// campaign's iteration cursor); see internal/checkpoint for the format.
type Checkpoint = checkpoint.State

// Checkpoint-file sentinel errors, matchable with errors.Is.
var (
	ErrCheckpointCorrupt = checkpoint.ErrCorrupt
	ErrCheckpointVersion = checkpoint.ErrVersion
)

// LoadCheckpoint reads and verifies a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) { return checkpoint.Load(path) }

// DefaultCheckpointEvery is the default rolling-checkpoint period, in
// trace events.
const DefaultCheckpointEvery = 100_000

// CheckpointOptions configures RunCheckpointed.
type CheckpointOptions struct {
	// Path is the rolling-checkpoint file; "" disables checkpoint
	// writes (the run still hashes its trace). Each write replaces the
	// previous checkpoint atomically.
	Path string
	// Every is the checkpoint/boundary period in trace events
	// (default DefaultCheckpointEvery).
	Every uint64
	// Restore resumes from a previously saved cut: the run re-executes
	// deterministically from event zero with OnTrace suppressed up to
	// the cut, verifies the replayed prefix against the checkpoint
	// (trace-hash midstate always; live-state digest when the execution
	// mode matches), and continues normally.
	Restore *Checkpoint
	// App and Scale name the workload for checkpoint identity checks
	// (the protocol comes from the run itself).
	App   string
	Scale string
	// OnTrace receives delivered packets past the restore cut (all
	// packets on a fresh run), with their global 0-based ordinals.
	OnTrace func(idx uint64, ev TraceEvent)
	// OnBoundary observes each checkpoint boundary (streaming stats).
	OnBoundary func(b *Boundary)
	// ShouldStop is polled at each boundary; returning true writes a
	// final checkpoint at that cut and halts the run gracefully
	// (CheckpointedResult.Interrupted). This is the signal-safe
	// shutdown hook: the poll runs at a deterministic cut, never on the
	// signal goroutine.
	ShouldStop func() bool
}

// CheckpointedResult is RunCheckpointed's outcome.
type CheckpointedResult struct {
	Res *Result
	WS  *Workspace
	// TraceHash is the canonical whole-run trace hash (the golden-hash
	// rendering); empty when the run was interrupted.
	TraceHash string
	// TraceEvents counts trace events emitted (including any replayed
	// prefix after a restore).
	TraceEvents uint64
	// Interrupted reports a graceful halt via ShouldStop; the final
	// checkpoint is on disk at opts.Path.
	Interrupted bool
}

// RunCheckpointed executes a workload under an SVM protocol with
// rolling checkpoints, restore, and graceful shutdown. A run restored
// at cut k and carried to completion produces a TraceHash byte-
// identical to an uninterrupted run — under any (IntraRunWorkers,
// LPShards) combination, since the trace stream is mode-independent.
func RunCheckpointed(cfg Config, p Protocol, a App, opts CheckpointOptions) (*CheckpointedResult, error) {
	every := opts.Every
	if every == 0 {
		every = DefaultCheckpointEvery
	}
	hasher := checkpoint.NewTraceHasher()
	var skip uint64
	if st := opts.Restore; st != nil {
		if err := st.CompatibleWith(&cfg, opts.App, p.String(), opts.Scale); err != nil {
			return nil, err
		}
		skip = st.TraceEvents
	}
	cr := &CheckpointedResult{}
	var ckptErr error
	workers, shards := runMode(&cfg)
	write := func(b *Boundary, note string) bool {
		snap, err := hasher.Snapshot()
		if err == nil {
			err = checkpoint.Save(opts.Path, &Checkpoint{
				ConfigSum:   checkpoint.ConfigSum(&cfg),
				App:         opts.App,
				Proto:       p.String(),
				Scale:       opts.Scale,
				ModeWorkers: workers,
				ModeShards:  shards,
				TraceEvents: b.TraceEvents,
				SimTime:     int64(b.SimTime),
				Events:      b.Events,
				StateDigest: b.StateDigest(),
				HashState:   snap,
				Note:        note,
			})
		}
		if err != nil {
			ckptErr = fmt.Errorf("writing checkpoint at trace event %d: %w", b.TraceEvents, err)
			return false
		}
		return true
	}
	ctl := &RunControl{
		OnTrace: func(idx uint64, ev TraceEvent) {
			hasher.Add(ev)
			if opts.OnTrace != nil && idx >= skip {
				opts.OnTrace(idx, ev)
			}
		},
		BoundaryEvery: every,
		OnBoundary: func(b *Boundary) bool {
			if opts.OnBoundary != nil {
				opts.OnBoundary(b)
			}
			halt := opts.ShouldStop != nil && opts.ShouldStop()
			if opts.Path != "" && (halt || b.TraceEvents > skip) {
				if !write(b, "rolling") {
					return false
				}
			}
			if halt {
				cr.Interrupted = true
			}
			return !halt
		},
	}
	if st := opts.Restore; st != nil {
		ctl.VerifyAt = st.TraceEvents
		ctl.OnVerify = func(b *Boundary) error {
			want := checkpoint.NewTraceHasher()
			if err := want.Restore(st.HashState, st.TraceEvents); err != nil {
				return err
			}
			if !bytes.Equal(hasher.PrefixSum(), want.PrefixSum()) {
				return fmt.Errorf("checkpoint: replay diverged from checkpointed trace prefix at event %d", st.TraceEvents)
			}
			if st.SameMode(workers, shards) && b.StateDigest() != st.StateDigest {
				return fmt.Errorf("checkpoint: live-state digest mismatch at event %d (trace prefix matches; state walk diverged)", st.TraceEvents)
			}
			return nil
		}
	}
	res, ws, err := RunControlled(cfg, p, a, ctl)
	if ckptErr != nil {
		return nil, ckptErr
	}
	if err != nil && !(cr.Interrupted && errors.Is(err, ErrInterrupted)) {
		return nil, err
	}
	cr.Res, cr.WS = res, ws
	cr.TraceEvents = hasher.Count()
	if !cr.Interrupted {
		cr.TraceHash = hasher.Final(res.Elapsed, res.Events)
	}
	return cr, nil
}

// runMode resolves the execution mode a config selects: the worker
// count and the effective shard count (0 shards on the serial path,
// which builds no cluster at all). StateDigest values are only
// comparable between identical modes.
func runMode(cfg *Config) (workers, shards int) {
	if cfg.IntraRunWorkers > 1 && cfg.Nodes > 1 {
		return cfg.IntraRunWorkers, cfg.EffectiveLPShards()
	}
	return 1, 0
}
