package genima

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"genima/internal/apps"
	"genima/internal/checkpoint"
)

// SoakRecord is one soak iteration's JSONL stats line. Everything the
// verification chain covers (trace hash, events, elapsed) is
// deterministic; wall-clock and heap figures are operational telemetry
// and deliberately excluded from the chain.
type SoakRecord struct {
	Iter        uint64 `json:"iter"`
	App         string `json:"app"`
	Proto       string `json:"proto"`
	FaultSeed   uint64 `json:"fault_seed,omitempty"`
	Events      uint64 `json:"events"`
	CumEvents   uint64 `json:"cum_events"`
	ElapsedNS   int64  `json:"elapsed_ns"`
	TraceEvents uint64 `json:"trace_events"`
	TraceHash   string `json:"trace_hash"`
	Chain       string `json:"chain"`
	WallMS      int64  `json:"wall_ms"`
	HeapBytes   uint64 `json:"heap_bytes"`
}

// SoakOptions configures a Soak campaign. At least one of TargetEvents
// and Iters must be set.
type SoakOptions struct {
	// Scale is the problem scale per iteration: "test" (default, runs
	// the whole ladder in seconds) or "bench".
	Scale string
	// TargetEvents stops the campaign once cumulative engine events
	// reach this total (0 = bound by Iters alone).
	TargetEvents uint64
	// Iters caps the number of iterations (0 = bound by TargetEvents
	// alone).
	Iters uint64
	// StopAfter halts after this many iterations completed in THIS
	// invocation, writing a checkpoint — the CI kill-at-boundary hook
	// (0 = no cap).
	StopAfter uint64
	// CheckpointPath is where the rolling iteration-cursor checkpoint
	// goes ("" disables). Soak checkpoints at run boundaries, where no
	// simulation state is live, so restores are O(1) cursor seeks.
	CheckpointPath string
	// StatsPath appends one SoakRecord JSON line per iteration (""
	// disables). The file is opened in append mode, so a restored
	// campaign continues the same log.
	StatsPath string
	// Restore resumes a campaign from its checkpoint cursor.
	Restore *Checkpoint
	// FaultRate enables FaultMix fault injection per iteration, seeded
	// FaultSeed+iter so every iteration explores a distinct fault
	// pattern deterministically (0 = fault-free).
	FaultRate float64
	FaultSeed uint64
	// ShouldStop is polled between iterations; returning true writes a
	// checkpoint and halts gracefully (the signal hook).
	ShouldStop func() bool
	// Emit observes each iteration's record (in addition to StatsPath).
	Emit func(SoakRecord)
}

// SoakResult is a Soak campaign's outcome.
type SoakResult struct {
	// Iters counts completed iterations over the whole campaign,
	// including iterations restored from a checkpoint.
	Iters uint64
	// Events is the cumulative engine-event total.
	Events uint64
	// Chain is the hex chained hash over all completed iterations:
	// chain' = SHA-256(chain || traceHash || events || elapsed). Equal
	// chains prove two campaigns (interrupted+restored vs.
	// uninterrupted) executed identical simulations.
	Chain string
	// Interrupted reports a graceful halt (ShouldStop or StopAfter);
	// the checkpoint on disk resumes the campaign.
	Interrupted bool
}

// Soak runs an unattended long-run campaign: iterations cycle through
// the application suite and the protocol ladder, each under a fresh
// deterministic fault seed, chaining every run's canonical trace hash
// into a campaign-wide verification chain. Memory stays bounded: each
// iteration's simulation is dropped before the next begins, and stats
// stream out as JSONL instead of accumulating. The iteration recipe is
// a pure function of the iteration index, so a campaign restored from
// its checkpoint cursor produces the same chain as an uninterrupted
// one.
func Soak(cfg Config, opts SoakOptions) (*SoakResult, error) {
	if opts.TargetEvents == 0 && opts.Iters == 0 {
		return nil, fmt.Errorf("soak: need TargetEvents or Iters")
	}
	scale, scaleName := apps.Test, "test"
	if opts.Scale == "bench" {
		scale, scaleName = apps.Bench, "bench"
	} else if opts.Scale != "" && opts.Scale != "test" {
		return nil, fmt.Errorf("soak: unknown scale %q", opts.Scale)
	}
	// Campaign identity: the base config with per-iteration fault plans
	// cleared (they are derived from the iteration index), plus the
	// fault parameters folded into the protocol label so a restore with
	// different fault settings is rejected rather than silently
	// diverging the chain.
	base := cfg
	base.Faults = FaultPlan{}
	ident := fmt.Sprintf("ladder/faults=%g/seed=%d", opts.FaultRate, opts.FaultSeed)

	var iter, cum uint64
	var chain [32]byte
	if st := opts.Restore; st != nil {
		if err := st.CompatibleWith(&base, "soak", ident, scaleName); err != nil {
			return nil, err
		}
		iter, cum, chain = st.SoakIter, st.SoakEvents, st.SoakChain
	}
	var statsW io.Writer
	if opts.StatsPath != "" {
		f, err := os.OpenFile(opts.StatsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		statsW = f
	}
	workers, shards := runMode(&cfg)
	writeCkpt := func(note string) error {
		if opts.CheckpointPath == "" {
			return nil
		}
		return checkpoint.Save(opts.CheckpointPath, &Checkpoint{
			ConfigSum:   checkpoint.ConfigSum(&base),
			App:         "soak",
			Proto:       ident,
			Scale:       scaleName,
			ModeWorkers: workers,
			ModeShards:  shards,
			SoakIter:    iter,
			SoakEvents:  cum,
			SoakChain:   chain,
			Note:        note,
		})
	}
	result := func(interrupted bool) *SoakResult {
		return &SoakResult{Iters: iter, Events: cum, Chain: hex.EncodeToString(chain[:]), Interrupted: interrupted}
	}
	names := soakApps(scale)
	ladder := Protocols()
	var doneHere uint64
	for {
		if opts.Iters > 0 && iter >= opts.Iters {
			break
		}
		if opts.TargetEvents > 0 && cum >= opts.TargetEvents {
			break
		}
		if opts.ShouldStop != nil && opts.ShouldStop() {
			if err := writeCkpt("signal"); err != nil {
				return nil, err
			}
			return result(true), nil
		}
		if opts.StopAfter > 0 && doneHere >= opts.StopAfter {
			if err := writeCkpt("stop-after"); err != nil {
				return nil, err
			}
			return result(true), nil
		}

		name, proto := soakPick(iter, names, ladder)
		entry, ok := apps.ByName(scale, name)
		if !ok {
			return nil, fmt.Errorf("soak: app %q vanished from the suite", name)
		}
		c := cfg
		var seed uint64
		if opts.FaultRate > 0 {
			seed = opts.FaultSeed + iter
			c.Faults = FaultMix(opts.FaultRate, seed)
		}
		hasher := checkpoint.NewTraceHasher()
		t0 := time.Now()
		res, _, err := RunTraced(c, proto, entry.App, hasher.Add)
		if err != nil {
			return nil, fmt.Errorf("soak iteration %d (%s on %s): %w", iter, name, proto, err)
		}
		wall := time.Since(t0)
		traceEvents := hasher.Count()
		traceHash := hasher.Final(res.Elapsed, res.Events)

		h := sha256.New()
		h.Write(chain[:])
		io.WriteString(h, traceHash)
		var w [16]byte
		binary.LittleEndian.PutUint64(w[:8], res.Events)
		binary.LittleEndian.PutUint64(w[8:], uint64(res.Elapsed))
		h.Write(w[:])
		copy(chain[:], h.Sum(nil))

		iter++
		cum += res.Events
		doneHere++

		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		rec := SoakRecord{
			Iter: iter - 1, App: name, Proto: proto.String(), FaultSeed: seed,
			Events: res.Events, CumEvents: cum, ElapsedNS: int64(res.Elapsed),
			TraceEvents: traceEvents, TraceHash: traceHash,
			Chain:  hex.EncodeToString(chain[:8]),
			WallMS: wall.Milliseconds(), HeapBytes: ms.HeapAlloc,
		}
		if statsW != nil {
			if err := json.NewEncoder(statsW).Encode(rec); err != nil {
				return nil, fmt.Errorf("soak: writing stats: %w", err)
			}
		}
		if opts.Emit != nil {
			opts.Emit(rec)
		}
		if err := writeCkpt("rolling"); err != nil {
			return nil, err
		}
	}
	if err := writeCkpt("complete"); err != nil {
		return nil, err
	}
	return result(false), nil
}

// soakApps is the soak rotation's app list: the SPLASH suite plus the
// svmkv serving workload (registered by name only, so the suite
// goldens stay put).
func soakApps(scale apps.Scale) []string {
	return append(apps.Names(scale), "svmkv")
}

// soakPick returns iteration iter's (app, protocol): apps rotate
// slowly and the ladder quickly, so every pair recurs, each time under
// a fresh fault seed.
func soakPick(iter uint64, names []string, ladder []Protocol) (string, Protocol) {
	return names[(iter/uint64(len(ladder)))%uint64(len(names))], ladder[iter%uint64(len(ladder))]
}
