package genima_test

// End-to-end assertions on the regenerated tables and figures: the
// qualitative "shape" results the paper reports must hold in the
// reproduction (see DESIGN.md §4 for the shape targets).

import (
	"strings"
	"sync"
	"testing"

	genima "genima"
	"genima/internal/apps"
)

// appByName fetches a test-scale suite app.
func appByName(t *testing.T, name string) (genima.App, apps.Entry) {
	t.Helper()
	e, ok := apps.ByName(apps.Test, name)
	if !ok {
		t.Fatalf("unknown app %q", name)
	}
	return e.App, e
}

var (
	suiteOnce sync.Once
	suite     *genima.SuiteResults
	suiteErr  error
)

// sharedSuite runs the full test-scale suite (with hardware and
// verification) once for all facade tests.
func sharedSuite(t *testing.T) *genima.SuiteResults {
	t.Helper()
	suiteOnce.Do(func() {
		cfg := genima.DefaultConfig()
		suite, suiteErr = genima.RunSuite(cfg, genima.SuiteOptions{
			Scale:    genima.TestScale,
			Hardware: true,
			Verify:   true,
		})
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

func TestSuiteValidatesEverywhere(t *testing.T) {
	s := sharedSuite(t)
	if len(s.Entries) != 10 {
		t.Fatalf("suite has %d apps, want 10", len(s.Entries))
	}
	for _, k := range genima.Protocols() {
		if len(s.SVM[k]) != 10 {
			t.Errorf("%v: %d results", k, len(s.SVM[k]))
		}
	}
}

func TestFigure1HardwareDominatesBaseSVM(t *testing.T) {
	f := sharedSuite(t).Figure1()
	for i, a := range f.Apps {
		if f.Origin[i] <= f.Base[i] {
			t.Errorf("%s: Origin %.2f not above Base SVM %.2f", a, f.Origin[i], f.Base[i])
		}
	}
	if !strings.Contains(f.String(), "Figure 1") {
		t.Error("rendering lacks the figure title")
	}
}

func TestFigure2GeNIMAHelpsOnAverage(t *testing.T) {
	f := sharedSuite(t).Figure2()
	wins := 0
	for i := range f.Apps {
		if f.ByProtocol[genima.GeNIMA][i] >= f.ByProtocol[genima.Base][i] {
			wins++
		}
	}
	// The paper's only regression is Barnes-spatial (direct diffs);
	// allow up to two apps below Base at test scale.
	if wins < len(f.Apps)-2 {
		t.Errorf("GeNIMA beats Base on only %d of %d apps", wins, len(f.Apps))
	}
}

func TestFigure3BreakdownsNormalized(t *testing.T) {
	f := sharedSuite(t).Figure3()
	for i, a := range f.Apps {
		// Base row must sum to ~1.0 by construction.
		var baseTotal float64
		for _, v := range f.Normalized[i][0] {
			baseTotal += v
		}
		if baseTotal < 0.999 || baseTotal > 1.001 {
			t.Errorf("%s: Base normalized total = %.4f, want 1.0", a, baseTotal)
		}
	}
}

func TestTable1ImprovementFields(t *testing.T) {
	d := sharedSuite(t).Table1()
	if len(d.Rows) != 10 {
		t.Fatalf("%d rows", len(d.Rows))
	}
	for _, r := range d.Rows {
		if r.UniprocSec <= 0 {
			t.Errorf("%s: uniproc time %.3f", r.App, r.UniprocSec)
		}
		if r.OverallPct < -100 || r.OverallPct > 100 {
			t.Errorf("%s: overall improvement %.1f%% out of range", r.App, r.OverallPct)
		}
	}
}

func TestTable2SharesAreBounded(t *testing.T) {
	d := sharedSuite(t).Table2()
	for _, r := range d.Rows {
		for name, v := range map[string]float64{"BT": r.BTPct, "BPT": r.BPTPct, "MT": r.MTPct} {
			if v < 0 || v > 100.0001 {
				t.Errorf("%s: %s = %.1f%% out of [0,100]", r.App, name, v)
			}
		}
	}
}

func TestTables34ContentionAtLeastOne(t *testing.T) {
	s := sharedSuite(t)
	for _, d := range []*genima.ContentionData{s.Table3(), s.Table4()} {
		for _, r := range d.Rows {
			for st := 0; st < 4; st++ {
				if r.Base[st] < 0.999 || r.GeNIMA[st] < 0.999 {
					t.Errorf("%s stage %d: ratio below 1 (%.2f/%.2f)", r.App, st, r.Base[st], r.GeNIMA[st])
				}
			}
		}
	}
}

// The paper's §4 finding: GeNIMA increases small-message contention
// relative to Base (more, smaller messages) yet still wins overall.
func TestSmallMessageContentionRises(t *testing.T) {
	s := sharedSuite(t)
	t3 := s.Table3()
	higher := 0
	for _, r := range t3.Rows {
		if r.GeNIMA[2] >= r.Base[2] { // NetLat
			higher++
		}
	}
	if higher < len(t3.Rows)/2 {
		t.Errorf("GeNIMA small-message NetLat contention above Base for only %d of %d apps",
			higher, len(t3.Rows))
	}
}

func TestGeNIMAEliminatesAllInterrupts(t *testing.T) {
	s := sharedSuite(t)
	for i, e := range s.Entries {
		if n := s.SVM[genima.GeNIMA][i].Acct.Interrupts; n != 0 {
			t.Errorf("%s: GeNIMA took %d interrupts", e.PaperName, n)
		}
		if n := s.SVM[genima.Base][i].Acct.Interrupts; n == 0 {
			t.Errorf("%s: Base took no interrupts", e.PaperName)
		}
	}
}

func TestRenderings(t *testing.T) {
	s := sharedSuite(t)
	for name, out := range map[string]string{
		"fig2":   s.Figure2().String(),
		"fig3":   s.Figure3().String(),
		"fig4":   s.Figure4().String(),
		"table1": s.Table1().String(),
		"table2": s.Table2().String(),
		"table3": s.Table3().String(),
		"table4": s.Table4().String(),
	} {
		if len(out) < 100 || !strings.Contains(out, "FFT") {
			t.Errorf("%s rendering looks empty:\n%s", name, out)
		}
	}
}

func TestTable5RunsAt32Procs(t *testing.T) {
	d, err := genima.Table5(genima.TestScale, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Apps) != 10 {
		t.Fatalf("%d apps", len(d.Apps))
	}
	for i, a := range d.Apps {
		if d.SVM[i] <= 0 || d.Origin[i] <= 0 {
			t.Errorf("%s: speedups %.2f / %.2f", a, d.SVM[i], d.Origin[i])
		}
	}
}

func TestProtocolsList(t *testing.T) {
	ps := genima.Protocols()
	if len(ps) != 5 || ps[0] != genima.Base || ps[4] != genima.GeNIMA {
		t.Errorf("protocol ladder = %v", ps)
	}
	if genima.DWRF.String() != "DW+RF" {
		t.Errorf("DWRF renders as %q", genima.DWRF.String())
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := genima.DefaultConfig()
	cfg.Nodes = 0
	if err := cfg.Validate(); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunTracedStreamsPackets(t *testing.T) {
	cfg := genima.DefaultConfig()
	var events int
	var lastT int64
	ordered := true
	a, _ := appByName(t, "fft")
	res, _, err := genima.RunTraced(cfg, genima.GeNIMA, a, func(ev genima.TraceEvent) {
		events++
		if ev.Time < lastT {
			ordered = false
		}
		lastT = ev.Time
		if ev.Size <= 0 || ev.Kind == "" {
			t.Errorf("bad trace event %+v", ev)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(events) != res.Monitor.TotalPackets() {
		t.Errorf("traced %d events, monitor counted %d", events, res.Monitor.TotalPackets())
	}
	if !ordered {
		t.Error("trace not in delivery order")
	}
}

func TestScalingStudyShape(t *testing.T) {
	d, err := genima.Scaling(genima.TestScale, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Apps) != 10 || len(d.Nodes) != 4 {
		t.Fatalf("apps=%d sizes=%d", len(d.Apps), len(d.Nodes))
	}
	for i := range d.Apps {
		for si := range d.Nodes {
			if d.Base[i][si] <= 0 || d.GeNIMA[i][si] <= 0 {
				t.Errorf("%s at %d nodes: non-positive speedup", d.Apps[i], d.Nodes[si])
			}
		}
	}
}
