# Tier-1 verification and perf targets. `make check` is the one-command
# gate: build, vet, tests, and the race detector over the concurrent
# suite runner.

GO ?= go

.PHONY: check build vet test race race-intrarun smoke-faults smoke-scale smoke-soak smoke-serve bench-smoke bench-json bench-mem bench-guard

check: build vet test race race-intrarun smoke-faults smoke-scale smoke-soak smoke-serve

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-intrarun runs the intra-run parallel-simulation determinism
# tests (byte-identical traces across -jrun and -lpshards combinations,
# with and without faults) under the race detector, at test scale.
# -short keeps the 512-node leg out of the race budget; the 128-node
# sharded matrix still runs, so sharded clusters are race-checked.
race-intrarun:
	$(GO) test -race -short -run 'TestIntraRun' -count=1 .

# smoke-faults exercises the fault-injection + NI reliable-delivery
# recovery path end to end: one short app at a 1% drop rate (with dups,
# delays, and corruption mixed in), validated against the sequential
# reference.
smoke-faults:
	$(GO) run ./cmd/genima-run -app fft -scale test -proto GeNIMA \
		-faults 0.01 -fault-seed 42 > /dev/null

# smoke-scale exercises the multi-stage fabrics end to end: one short
# app on a radix-32 clos2 under Base (interrupt barrier, flat) and
# GeNIMA (NI collective tree) at 64 nodes, plus a 128-node radix-16
# clos2 leg under explicit LP sharding (-jrun 4 -lpshards 4) — all
# intra-run parallel, with 1% faults, validated against the sequential
# reference.
smoke-scale:
	$(GO) run ./cmd/genima-run -app barrierbench -scale test -proto Base \
		-nodes 64 -procs 1 -topo clos2 -radix 32 -jrun 4 \
		-faults 0.01 -fault-seed 42 > /dev/null
	$(GO) run ./cmd/genima-run -app barrierbench -scale test -proto GeNIMA \
		-nodes 64 -procs 1 -topo clos2 -radix 32 -collectives -jrun 4 \
		-faults 0.01 -fault-seed 42 > /dev/null
	$(GO) run ./cmd/genima-run -app barrierbench -scale test -proto GeNIMA \
		-nodes 128 -procs 1 -topo clos2 -radix 16 -collectives \
		-jrun 4 -lpshards 4 -faults 0.01 -fault-seed 42 > /dev/null

# smoke-soak exercises soak-scale long-run ops end to end, asserting
# checkpoint/restore determinism from the shell like an operator would:
#   (1) single run under faults: halt at a rolling-checkpoint boundary
#       (exit 130), restore, final canonical trace hash must be
#       byte-identical to an uninterrupted run's;
#   (2) soak campaign under faults: kill -INT once the first rolling
#       cursor checkpoint lands (signal-safe shutdown, exit 130),
#       resume with -soak-restore, final verification chain must equal
#       an uninterrupted campaign's, and the JSONL stats log is
#       non-empty.
SOAKTMP := /tmp/genima-smoke-soak
smoke-soak:
	rm -rf $(SOAKTMP) && mkdir -p $(SOAKTMP)
	$(GO) build -o $(SOAKTMP)/genima-run ./cmd/genima-run
	$(GO) build -o $(SOAKTMP)/genima-bench ./cmd/genima-bench
	$(SOAKTMP)/genima-run -app fft -scale bench -proto GeNIMA -verify=false \
		-faults 0.01 -fault-seed 42 -trace-hash \
		| grep -o 'trace-hash=[0-9a-f]*' > $(SOAKTMP)/hash.full
	sh -c '$(SOAKTMP)/genima-run -app fft -scale bench -proto GeNIMA -verify=false \
		-faults 0.01 -fault-seed 42 -trace-hash \
		-checkpoint $(SOAKTMP)/run.ckpt -checkpoint-every 1000 -stop-after 3 \
		> /dev/null 2> $(SOAKTMP)/halt.err; test $$? -eq 130'
	$(SOAKTMP)/genima-run -app fft -scale bench -proto GeNIMA -verify=false \
		-faults 0.01 -fault-seed 42 -trace-hash -restore $(SOAKTMP)/run.ckpt \
		| grep -o 'trace-hash=[0-9a-f]*' > $(SOAKTMP)/hash.resumed
	cmp $(SOAKTMP)/hash.full $(SOAKTMP)/hash.resumed
	$(SOAKTMP)/genima-bench -exp soak -scale test -soak-events 4000000 \
		-faults 0.01 -fault-seed 5 -q \
		| grep -o 'chain=[0-9a-f]*' > $(SOAKTMP)/chain.full
	sh -c '$(SOAKTMP)/genima-bench -exp soak -scale test -soak-events 4000000 \
		-faults 0.01 -fault-seed 5 -q \
		-soak-checkpoint $(SOAKTMP)/soak.ckpt -soak-stats $(SOAKTMP)/soak.jsonl \
		> $(SOAKTMP)/soak.out 2>&1 & pid=$$!; \
		n=0; until test -f $(SOAKTMP)/soak.ckpt; do \
			n=$$((n+1)); test $$n -lt 200 || exit 1; sleep 0.05; \
		done; \
		kill -INT $$pid; wait $$pid; st=$$?; \
		test $$st -eq 130 || { echo "soak kill leg: exit $$st, want 130" \
			"(campaign too short? raise -soak-events)"; exit 1; }'
	$(SOAKTMP)/genima-bench -exp soak -scale test -soak-events 4000000 \
		-faults 0.01 -fault-seed 5 -q -soak-restore \
		-soak-checkpoint $(SOAKTMP)/soak.ckpt -soak-stats $(SOAKTMP)/soak.jsonl \
		| grep -o 'chain=[0-9a-f]*' > $(SOAKTMP)/chain.resumed
	cmp $(SOAKTMP)/chain.full $(SOAKTMP)/chain.resumed
	test -s $(SOAKTMP)/soak.jsonl
	rm -rf $(SOAKTMP)

# smoke-serve exercises the svmkv open-loop serving workload end to
# end at test scale on two protocol rungs (interrupt-driven Base and
# synchronous-NI GeNIMA, the latter under 1% faults), each validated
# against the sequential reference, asserting the canonical trace hash
# is byte-identical between serial (-jrun 1) and parallel (-jrun 4)
# simulation — the core determinism invariant on the serving path.
SERVETMP := /tmp/genima-smoke-serve
smoke-serve:
	rm -rf $(SERVETMP) && mkdir -p $(SERVETMP)
	$(GO) build -o $(SERVETMP)/genima-run ./cmd/genima-run
	$(SERVETMP)/genima-run -app svmkv -scale test -proto Base -jrun 1 \
		-trace-hash | grep -o 'trace-hash=[0-9a-f]*' > $(SERVETMP)/base.j1
	$(SERVETMP)/genima-run -app svmkv -scale test -proto Base -jrun 4 \
		-trace-hash | grep -o 'trace-hash=[0-9a-f]*' > $(SERVETMP)/base.j4
	cmp $(SERVETMP)/base.j1 $(SERVETMP)/base.j4
	$(SERVETMP)/genima-run -app svmkv -scale test -proto GeNIMA -jrun 1 \
		-faults 0.01 -fault-seed 42 -trace-hash \
		| grep -o 'trace-hash=[0-9a-f]*' > $(SERVETMP)/genima.j1
	$(SERVETMP)/genima-run -app svmkv -scale test -proto GeNIMA -jrun 4 \
		-faults 0.01 -fault-seed 42 -trace-hash \
		| grep -o 'trace-hash=[0-9a-f]*' > $(SERVETMP)/genima.j4
	cmp $(SERVETMP)/genima.j1 $(SERVETMP)/genima.j4
	rm -rf $(SERVETMP)

# bench-smoke runs every micro- and suite-benchmark once — a fast "do
# the benchmarks still build and run" gate, not a measurement. The
# ./internal/sim pass includes BenchmarkCrossLPHandoff, the cross-LP
# handoff cost of the conservative-parallel engine.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./internal/sim ./internal/memory ./internal/vmmc
	$(GO) test -run xxx -bench 'Suite|CollectiveBarrier' -benchtime 1x .

# bench-mem measures allocation pressure on the messaging hot paths
# (Deposit, remote fetch, broadcast, NI locks). The pooled pipeline
# keeps the closed-loop paths at 0 allocs/op.
bench-mem:
	$(GO) test -run xxx -bench . -benchmem ./internal/vmmc ./internal/sim

# bench-json refreshes BENCH_sim.json: the wall-clock serial-vs-parallel
# suite comparison for the perf trajectory (see DESIGN.md §7).
bench-json:
	$(GO) run ./cmd/genima-bench -benchjson BENCH_sim.json -scale test -q

# bench-guard fails if serial suite throughput regressed more than 25%
# against the committed BENCH_sim.json baseline (best of two passes, so
# one scheduling hiccup on a shared box does not fail the build).
bench-guard:
	$(GO) run ./cmd/genima-bench -benchguard BENCH_sim.json -q
