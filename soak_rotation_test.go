package genima

import (
	"testing"

	"genima/internal/apps"
)

// TestSoakRotationCoversSvmkv: one full rotation period pairs every
// app — the SPLASH suite plus svmkv — with every protocol rung, and
// every rotated name resolves in the registry.
func TestSoakRotationCoversSvmkv(t *testing.T) {
	names := soakApps(apps.Test)
	ladder := Protocols()
	found := false
	for _, n := range names {
		if n == "svmkv" {
			found = true
		}
	}
	if !found {
		t.Fatal("svmkv missing from the soak rotation")
	}
	seen := make(map[string]bool)
	period := uint64(len(names) * len(ladder))
	for iter := uint64(0); iter < period; iter++ {
		name, proto := soakPick(iter, names, ladder)
		if _, ok := apps.ByName(apps.Test, name); !ok {
			t.Fatalf("rotation picked unregistered app %q", name)
		}
		seen[name+"/"+proto.String()] = true
	}
	if len(seen) != int(period) {
		t.Fatalf("rotation period covered %d distinct (app, protocol) pairs, want %d",
			len(seen), period)
	}
	for _, p := range ladder {
		if !seen["svmkv/"+p.String()] {
			t.Fatalf("rotation never pairs svmkv with %s", p)
		}
	}
}
