package genima_test

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	genima "genima"
)

// A soak campaign halted mid-way and resumed from its checkpoint cursor
// must end with the same verification chain as an uninterrupted one,
// and its JSONL stats log must hold exactly one record per iteration.
func TestSoakResumeMatchesUninterrupted(t *testing.T) {
	cfg := genima.DefaultConfig()
	base := genima.SoakOptions{Iters: 5, FaultRate: 0.01, FaultSeed: 3}

	full, err := genima.Soak(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if full.Interrupted || full.Iters != 5 {
		t.Fatalf("uninterrupted campaign: %+v", full)
	}

	dir := t.TempDir()
	ck := filepath.Join(dir, "soak.ckpt")
	stats := filepath.Join(dir, "soak.jsonl")

	first := base
	first.CheckpointPath, first.StatsPath, first.StopAfter = ck, stats, 2
	r1, err := genima.Soak(cfg, first)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Interrupted || r1.Iters != 2 {
		t.Fatalf("stop-after-2 campaign: %+v", r1)
	}
	if r1.Chain == full.Chain {
		t.Fatal("partial chain equals full chain")
	}

	st, err := genima.LoadCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	if st.SoakIter != 2 {
		t.Fatalf("checkpoint cursor at iteration %d, want 2", st.SoakIter)
	}
	second := base
	second.CheckpointPath, second.StatsPath, second.Restore = ck, stats, st
	r2, err := genima.Soak(cfg, second)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Interrupted || r2.Iters != 5 {
		t.Fatalf("resumed campaign: %+v", r2)
	}
	if r2.Chain != full.Chain {
		t.Errorf("resumed chain %s != uninterrupted %s", r2.Chain, full.Chain)
	}
	if r2.Events != full.Events {
		t.Errorf("resumed events %d != uninterrupted %d", r2.Events, full.Events)
	}

	// The appended stats log covers all 5 iterations exactly once, in
	// order, each line valid JSON.
	f, err := os.Open(stats)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var iters []uint64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec genima.SoakRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad stats line %q: %v", sc.Text(), err)
		}
		iters = append(iters, rec.Iter)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(iters) != 5 {
		t.Fatalf("stats log has %d records, want 5", len(iters))
	}
	for i, it := range iters {
		if it != uint64(i) {
			t.Fatalf("stats record %d has iter %d", i, it)
		}
	}
}

// Restoring a soak checkpoint under different campaign parameters must
// be rejected: a silently diverging chain would be worse than an error.
func TestSoakRestoreRejectsParameterMismatch(t *testing.T) {
	cfg := genima.DefaultConfig()
	dir := t.TempDir()
	ck := filepath.Join(dir, "soak.ckpt")
	opts := genima.SoakOptions{Iters: 3, FaultRate: 0.01, FaultSeed: 3, CheckpointPath: ck, StopAfter: 1}
	if _, err := genima.Soak(cfg, opts); err != nil {
		t.Fatal(err)
	}
	st, err := genima.LoadCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	bad := opts
	bad.Restore = st
	bad.FaultRate = 0.05
	if _, err := genima.Soak(cfg, bad); err == nil {
		t.Error("fault-rate change accepted on restore")
	}
	badCfg := cfg
	badCfg.Nodes = 8
	good := opts
	good.Restore = st
	if _, err := genima.Soak(badCfg, good); err == nil {
		t.Error("config change accepted on restore")
	}
}

// The campaign needs at least one bound, or it would run forever.
func TestSoakRequiresBound(t *testing.T) {
	if _, err := genima.Soak(genima.DefaultConfig(), genima.SoakOptions{}); err == nil {
		t.Fatal("unbounded soak accepted")
	}
}
