package genima_test

// Checkpoint/restore acceptance: a run halted at a cut and restored
// from its checkpoint must finish with a trace hash byte-identical to
// an uninterrupted run — on the serial engine and under intra-run
// parallel modes, with fault injection on and off, including a link
// down-window spanning the cut.

import (
	"path/filepath"
	"strings"
	"testing"

	genima "genima"
)

// ckptFull runs uninterrupted (no checkpoint file) and returns the
// final canonical trace hash.
func ckptFull(t *testing.T, cfg genima.Config, proto genima.Protocol, appName string) string {
	t.Helper()
	a, _ := appByName(t, appName)
	cr, err := genima.RunCheckpointed(cfg, proto, a, genima.CheckpointOptions{
		App: appName, Scale: "test", Every: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cr.TraceHash
}

// ckptCutAndResume halts the run at its stopAt-th boundary (writing a
// checkpoint), restores from that checkpoint, and returns the cut
// ordinal and the resumed run's final hash.
func ckptCutAndResume(t *testing.T, cfg genima.Config, proto genima.Protocol, appName string, stopAt int) (uint64, string) {
	t.Helper()
	a, _ := appByName(t, appName)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	boundaries := 0
	cr, err := genima.RunCheckpointed(cfg, proto, a, genima.CheckpointOptions{
		Path: path, Every: 50, App: appName, Scale: "test",
		ShouldStop: func() bool {
			boundaries++
			return boundaries >= stopAt
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Interrupted {
		t.Fatalf("run finished (%d trace events) before boundary %d; shrink Every", cr.TraceEvents, stopAt)
	}
	st, err := genima.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceEvents != cr.TraceEvents {
		t.Fatalf("checkpoint cut %d != halt point %d", st.TraceEvents, cr.TraceEvents)
	}
	res, err := genima.RunCheckpointed(cfg, proto, a, genima.CheckpointOptions{
		App: appName, Scale: "test", Every: 50, Restore: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("restored run reported Interrupted")
	}
	return st.TraceEvents, res.TraceHash
}

func TestCheckpointRestoreByteIdentical(t *testing.T) {
	modes := []struct {
		name            string
		workers, shards int
	}{
		{"serial", 1, 0},
		{"w2s1", 2, 1},
		{"w4s2", 4, 2},
	}
	for _, faulted := range []bool{false, true} {
		for _, m := range modes {
			name := m.name
			if faulted {
				name += "_faults"
			}
			t.Run(name, func(t *testing.T) {
				cfg := genima.DefaultConfig()
				cfg.IntraRunWorkers = m.workers
				cfg.LPShards = m.shards
				if faulted {
					cfg.Faults = genima.FaultMix(0.02, 7)
				}
				want := ckptFull(t, cfg, genima.GeNIMA, "fft")
				cut, got := ckptCutAndResume(t, cfg, genima.GeNIMA, "fft", 2)
				if cut == 0 {
					t.Fatal("cut at trace event 0")
				}
				if got != want {
					t.Errorf("restored-at-%d hash %s != uninterrupted %s", cut, got, want)
				}
			})
		}
	}
}

// A checkpoint taken under one execution mode restores under another:
// the trace stream is mode-independent, so only the state-digest check
// is skipped (it is gated on SameMode), never the trace verification.
func TestCheckpointRestoreAcrossModes(t *testing.T) {
	serial := genima.DefaultConfig()
	want := ckptFull(t, serial, genima.GeNIMA, "fft")

	a, _ := appByName(t, "fft")
	path := filepath.Join(t.TempDir(), "run.ckpt")
	boundaries := 0
	cr, err := genima.RunCheckpointed(serial, genima.GeNIMA, a, genima.CheckpointOptions{
		Path: path, Every: 50, App: "fft", Scale: "test",
		ShouldStop: func() bool { boundaries++; return boundaries >= 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Interrupted {
		t.Fatal("run finished before the stop boundary")
	}
	st, err := genima.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	par := serial
	par.IntraRunWorkers = 4
	par.LPShards = 2
	res, err := genima.RunCheckpointed(par, genima.GeNIMA, a, genima.CheckpointOptions{
		App: "fft", Scale: "test", Every: 50, Restore: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceHash != want {
		t.Errorf("serial checkpoint restored under w4s2: hash %s != %s", res.TraceHash, want)
	}
}

// A link down-window open across the checkpoint cut must not disturb
// restore determinism: the retransmission state in flight at the cut is
// reproduced by the replay.
func TestCheckpointRestoreAcrossDownWindow(t *testing.T) {
	cfg := genima.DefaultConfig()
	cfg.Faults = genima.FaultPlan{
		Enabled: true,
		Seed:    11,
		Down: []genima.DownWindow{
			// Node 1 dark for most of the run: every checkpoint boundary
			// a short fft run reaches falls inside this window.
			{Node: 1, Dir: genima.BothDirs, From: 100_000, Until: 3_000_000},
		},
	}
	want := ckptFull(t, cfg, genima.GeNIMA, "fft")
	cut, got := ckptCutAndResume(t, cfg, genima.GeNIMA, "fft", 2)
	if got != want {
		t.Errorf("restored-at-%d hash %s != uninterrupted %s", cut, got, want)
	}
}

// Restoring against the wrong run identity must be rejected up front.
func TestCheckpointRestoreRejectsMismatch(t *testing.T) {
	cfg := genima.DefaultConfig()
	a, _ := appByName(t, "fft")
	path := filepath.Join(t.TempDir(), "run.ckpt")
	boundaries := 0
	cr, err := genima.RunCheckpointed(cfg, genima.GeNIMA, a, genima.CheckpointOptions{
		Path: path, Every: 50, App: "fft", Scale: "test",
		ShouldStop: func() bool { boundaries++; return boundaries >= 1 },
	})
	if err != nil || !cr.Interrupted {
		t.Fatalf("setup run: err=%v interrupted=%v", err, cr != nil && cr.Interrupted)
	}
	st, err := genima.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		run  func() error
	}{
		{"app", func() error {
			lu, _ := appByName(t, "lu")
			_, err := genima.RunCheckpointed(cfg, genima.GeNIMA, lu, genima.CheckpointOptions{App: "lu", Scale: "test", Restore: st})
			return err
		}},
		{"proto", func() error {
			_, err := genima.RunCheckpointed(cfg, genima.Base, a, genima.CheckpointOptions{App: "fft", Scale: "test", Restore: st})
			return err
		}},
		{"config", func() error {
			other := cfg
			other.Nodes = 8
			_, err := genima.RunCheckpointed(other, genima.GeNIMA, a, genima.CheckpointOptions{App: "fft", Scale: "test", Restore: st})
			return err
		}},
	}
	for _, c := range cases {
		if err := c.run(); err == nil {
			t.Errorf("%s mismatch accepted", c.name)
		} else if !strings.Contains(err.Error(), "mismatch") {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
	}
}

// OnTrace ordinals: a restore suppresses the replayed prefix, emitting
// exactly the post-cut packets with continuous global ordinals.
func TestCheckpointRestoreSuppressesPrefix(t *testing.T) {
	cfg := genima.DefaultConfig()
	a, _ := appByName(t, "fft")
	path := filepath.Join(t.TempDir(), "run.ckpt")
	boundaries := 0
	cr, err := genima.RunCheckpointed(cfg, genima.GeNIMA, a, genima.CheckpointOptions{
		Path: path, Every: 50, App: "fft", Scale: "test",
		ShouldStop: func() bool { boundaries++; return boundaries >= 2 },
	})
	if err != nil || !cr.Interrupted {
		t.Fatalf("setup run: err=%v interrupted=%v", err, cr != nil && cr.Interrupted)
	}
	st, err := genima.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	res, err := genima.RunCheckpointed(cfg, genima.GeNIMA, a, genima.CheckpointOptions{
		App: "fft", Scale: "test", Restore: st,
		OnTrace: func(idx uint64, _ genima.TraceEvent) { got = append(got, idx) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(got)) != res.TraceEvents-st.TraceEvents {
		t.Fatalf("emitted %d events, want %d post-cut", len(got), res.TraceEvents-st.TraceEvents)
	}
	for i, idx := range got {
		if want := st.TraceEvents + uint64(i); idx != want {
			t.Fatalf("ordinal %d at position %d, want %d", idx, i, want)
		}
	}
}

// Guard against silent boundary drift: the helper cut must land on an
// Every multiple.
func TestCheckpointCutOnBoundary(t *testing.T) {
	cfg := genima.DefaultConfig()
	cut, _ := ckptCutAndResume(t, cfg, genima.GeNIMA, "fft", 2)
	if cut%50 != 0 {
		t.Errorf("cut %d not on an Every=50 boundary", cut)
	}
	if cut != 100 {
		// Two boundaries at Every=50: documents the expected cut so a
		// behavioural change here is loud, not silent.
		t.Errorf("cut %d, want 100", cut)
	}
}
