package genima_test

// Intra-run parallel simulation regression: a run partitioned into
// shard-granular logical processes (Config.IntraRunWorkers > 1, shard
// count per Config.LPShards) must produce a packet-level event trace
// byte-identical to the serial engine — for every (worker, shard)
// combination, with and without fault injection. The serial
// goldens in trace_golden_test.go therefore pin the parallel engine
// too: -jrun 1 must still match them, and -jrun N must match -jrun 1.

import (
	"testing"

	genima "genima"
)

// intraRunPoints are the (app, protocol) coverage points: the two
// golden-trace points plus a middle-ladder rung with direct writes and
// remote fetch, so the interrupt path, the NI-lock path, and the
// remote-fetch path all cross logical processes under test.
var intraRunPoints = []struct {
	app   string
	proto genima.Protocol
}{
	{"fft", genima.Base},
	{"lu", genima.DWRF},
	{"water-nsq", genima.GeNIMA},
}

func jrunConfig(workers int, faults bool) genima.Config {
	cfg := genima.DefaultConfig()
	cfg.IntraRunWorkers = workers
	if faults {
		cfg.Faults = genima.FaultMix(0.01, 42)
	}
	return cfg
}

func TestIntraRunTraceByteIdentical(t *testing.T) {
	for _, pt := range intraRunPoints {
		for _, faults := range []bool{false, true} {
			serial := traceHash(t, pt.app, pt.proto, jrunConfig(1, faults))
			for _, workers := range []int{2, 4} {
				got := traceHash(t, pt.app, pt.proto, jrunConfig(workers, faults))
				if got != serial {
					t.Errorf("%s/%v faults=%v: -jrun %d trace differs from serial:\n got %s\nwant %s",
						pt.app, pt.proto, faults, workers, got, serial)
				}
			}
		}
	}
}

// multiStageConfig is the default cluster on a radix-4 clos2 (two
// hosts per leaf, so cross-leaf routes take 3 switch hops even at 4
// nodes) — the smallest config where packets cross intermediate
// switches on the fabric LP.
func multiStageConfig(workers int, faults, collectives bool) genima.Config {
	cfg := jrunConfig(workers, faults)
	cfg.Topo = genima.TopoClos2
	cfg.SwitchRadix = 4
	cfg.Collectives = collectives
	return cfg
}

// TestIntraRunMultiStageTraceByteIdentical extends the byte-identical
// guarantee to multi-stage fabrics and the collective-tree protocol:
// for any worker count, with and without faults, the packet trace must
// match the serial engine exactly.
func TestIntraRunMultiStageTraceByteIdentical(t *testing.T) {
	for _, pt := range []struct {
		app         string
		proto       genima.Protocol
		collectives bool
	}{
		{"fft", genima.Base, false},
		{"fft", genima.GeNIMA, true},
		{"water-nsq", genima.GeNIMA, true},
	} {
		for _, faults := range []bool{false, true} {
			serial := traceHash(t, pt.app, pt.proto, multiStageConfig(1, faults, pt.collectives))
			for _, workers := range []int{2, 4} {
				got := traceHash(t, pt.app, pt.proto, multiStageConfig(workers, faults, pt.collectives))
				if got != serial {
					t.Errorf("%s/%v clos2 collectives=%v faults=%v: -jrun %d trace differs from serial:\n got %s\nwant %s",
						pt.app, pt.proto, pt.collectives, faults, workers, got, serial)
				}
			}
		}
	}
}

// scaleMatrixConfig is one point of the at-scale determinism matrix:
// barrierbench at ProcsPerNode=1 on a large multi-stage fabric, with an
// explicit shard count (0 = auto).
func scaleMatrixConfig(nodes int, tp genima.Topology, radix int, collectives bool, workers, shards int, faults bool) genima.Config {
	cfg := jrunConfig(workers, faults)
	cfg.Nodes = nodes
	cfg.ProcsPerNode = 1
	cfg.Topo = tp
	cfg.SwitchRadix = radix
	cfg.Collectives = collectives
	cfg.LPShards = shards
	return cfg
}

// TestIntraRunScaleTraceByteIdentical is the at-scale determinism
// matrix: a 128-node clos2 and a 512-node fat tree, byte-identical
// across -jrun 1/4 x -lpshards 1/8/auto, with and without 1% faults.
// This is the configuration family the LP-sharding work targets — a
// shard-count change must never change the simulation, only its
// wall-clock. The 512-node leg is skipped under -short (it dominates
// the race-detector budget; the 128-node leg still covers sharded
// clusters there).
func TestIntraRunScaleTraceByteIdentical(t *testing.T) {
	for _, pt := range []struct {
		name        string
		nodes       int
		topo        genima.Topology
		radix       int
		proto       genima.Protocol
		collectives bool
	}{
		// NI-firmware collective tree on a 2-stage clos: fabric-heavy.
		{"clos2-128", 128, genima.TopoClos2, 16, genima.GeNIMA, true},
		// Flat interrupt barrier on a 3-stage fat tree: interrupt-heavy.
		{"fattree-512", 512, genima.TopoFatTree, 16, genima.Base, false},
	} {
		if pt.nodes >= 512 && testing.Short() {
			continue
		}
		for _, faults := range []bool{false, true} {
			serial := traceHash(t, "barrierbench", pt.proto,
				scaleMatrixConfig(pt.nodes, pt.topo, pt.radix, pt.collectives, 1, 0, faults))
			for _, shards := range []int{1, 8, 0} {
				got := traceHash(t, "barrierbench", pt.proto,
					scaleMatrixConfig(pt.nodes, pt.topo, pt.radix, pt.collectives, 4, shards, faults))
				if got != serial {
					t.Errorf("%s faults=%v: -jrun 4 -lpshards %d trace differs from serial:\n got %s\nwant %s",
						pt.name, faults, shards, got, serial)
				}
			}
		}
	}
}

// TestIntraRunSerialMatchesGolden pins -jrun 1 to the committed serial
// golden hashes: the parallel engine's serial mode must be the exact
// engine the goldens were recorded on, not a one-worker parallel run.
func TestIntraRunSerialMatchesGolden(t *testing.T) {
	if got := traceHash(t, "fft", genima.Base, jrunConfig(1, false)); got != goldenFFTBase {
		t.Errorf("-jrun 1 fft/Base drifted from golden:\n got %s\nwant %s", got, goldenFFTBase)
	}
	if got := traceHash(t, "water-nsq", genima.GeNIMA, jrunConfig(1, false)); got != goldenWaterGeNIMA {
		t.Errorf("-jrun 1 water-nsq/GeNIMA drifted from golden:\n got %s\nwant %s", got, goldenWaterGeNIMA)
	}
}
