package genima_test

// Intra-run parallel simulation regression: a run partitioned into
// per-node logical processes (Config.IntraRunWorkers > 1) must produce
// a packet-level event trace byte-identical to the serial engine — for
// every worker count, with and without fault injection. The serial
// goldens in trace_golden_test.go therefore pin the parallel engine
// too: -jrun 1 must still match them, and -jrun N must match -jrun 1.

import (
	"testing"

	genima "genima"
)

// intraRunPoints are the (app, protocol) coverage points: the two
// golden-trace points plus a middle-ladder rung with direct writes and
// remote fetch, so the interrupt path, the NI-lock path, and the
// remote-fetch path all cross logical processes under test.
var intraRunPoints = []struct {
	app   string
	proto genima.Protocol
}{
	{"fft", genima.Base},
	{"lu", genima.DWRF},
	{"water-nsq", genima.GeNIMA},
}

func jrunConfig(workers int, faults bool) genima.Config {
	cfg := genima.DefaultConfig()
	cfg.IntraRunWorkers = workers
	if faults {
		cfg.Faults = genima.FaultMix(0.01, 42)
	}
	return cfg
}

func TestIntraRunTraceByteIdentical(t *testing.T) {
	for _, pt := range intraRunPoints {
		for _, faults := range []bool{false, true} {
			serial := traceHash(t, pt.app, pt.proto, jrunConfig(1, faults))
			for _, workers := range []int{2, 4} {
				got := traceHash(t, pt.app, pt.proto, jrunConfig(workers, faults))
				if got != serial {
					t.Errorf("%s/%v faults=%v: -jrun %d trace differs from serial:\n got %s\nwant %s",
						pt.app, pt.proto, faults, workers, got, serial)
				}
			}
		}
	}
}

// multiStageConfig is the default cluster on a radix-4 clos2 (two
// hosts per leaf, so cross-leaf routes take 3 switch hops even at 4
// nodes) — the smallest config where packets cross intermediate
// switches on the fabric LP.
func multiStageConfig(workers int, faults, collectives bool) genima.Config {
	cfg := jrunConfig(workers, faults)
	cfg.Topo = genima.TopoClos2
	cfg.SwitchRadix = 4
	cfg.Collectives = collectives
	return cfg
}

// TestIntraRunMultiStageTraceByteIdentical extends the byte-identical
// guarantee to multi-stage fabrics and the collective-tree protocol:
// for any worker count, with and without faults, the packet trace must
// match the serial engine exactly.
func TestIntraRunMultiStageTraceByteIdentical(t *testing.T) {
	for _, pt := range []struct {
		app         string
		proto       genima.Protocol
		collectives bool
	}{
		{"fft", genima.Base, false},
		{"fft", genima.GeNIMA, true},
		{"water-nsq", genima.GeNIMA, true},
	} {
		for _, faults := range []bool{false, true} {
			serial := traceHash(t, pt.app, pt.proto, multiStageConfig(1, faults, pt.collectives))
			for _, workers := range []int{2, 4} {
				got := traceHash(t, pt.app, pt.proto, multiStageConfig(workers, faults, pt.collectives))
				if got != serial {
					t.Errorf("%s/%v clos2 collectives=%v faults=%v: -jrun %d trace differs from serial:\n got %s\nwant %s",
						pt.app, pt.proto, pt.collectives, faults, workers, got, serial)
				}
			}
		}
	}
}

// TestIntraRunSerialMatchesGolden pins -jrun 1 to the committed serial
// golden hashes: the parallel engine's serial mode must be the exact
// engine the goldens were recorded on, not a one-worker parallel run.
func TestIntraRunSerialMatchesGolden(t *testing.T) {
	if got := traceHash(t, "fft", genima.Base, jrunConfig(1, false)); got != goldenFFTBase {
		t.Errorf("-jrun 1 fft/Base drifted from golden:\n got %s\nwant %s", got, goldenFFTBase)
	}
	if got := traceHash(t, "water-nsq", genima.GeNIMA, jrunConfig(1, false)); got != goldenWaterGeNIMA {
		t.Errorf("-jrun 1 water-nsq/GeNIMA drifted from golden:\n got %s\nwant %s", got, goldenWaterGeNIMA)
	}
}
