package faults

import (
	"testing"

	"genima/internal/sim"
	"genima/internal/topo"
)

func TestStreamsAreDeterministic(t *testing.T) {
	fp := topo.FaultMix(0.1, 99)
	a, b := New(&fp, 4), New(&fp, 4)
	for i := 0; i < 1000; i++ {
		node := i % 4
		va, vb := a.JudgeIn(node, sim.Time(i)), b.JudgeIn(node, sim.Time(i))
		if va != vb {
			t.Fatalf("draw %d: %+v vs %+v", i, va, vb)
		}
		if oa, ob := a.JudgeOut(node, sim.Time(i)), b.JudgeOut(node, sim.Time(i)); oa != ob {
			t.Fatalf("out draw %d: %+v vs %+v", i, oa, ob)
		}
	}
	if a.Report() != b.Report() {
		t.Fatalf("reports diverged: %+v vs %+v", a.Report(), b.Report())
	}
}

func TestSeedChangesStreams(t *testing.T) {
	fp1, fp2 := topo.FaultMix(0.2, 1), topo.FaultMix(0.2, 2)
	a, b := New(&fp1, 2), New(&fp2, 2)
	same := 0
	for i := 0; i < 200; i++ {
		if a.JudgeIn(0, 0) == b.JudgeIn(0, 0) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("different seeds produced identical verdict streams")
	}
}

func TestLinksHaveIndependentStreams(t *testing.T) {
	fp := topo.FaultMix(0.5, 7)
	p := New(&fp, 2)
	identical := true
	for i := 0; i < 100; i++ {
		if p.JudgeIn(0, 0) != p.JudgeIn(1, 0) {
			identical = false
		}
	}
	if identical {
		t.Fatal("nodes 0 and 1 share a fault stream")
	}
}

func TestRatesRoughlyHold(t *testing.T) {
	fp := topo.FaultPlan{Enabled: true, Seed: 3, DropRate: 0.1}
	p := New(&fp, 1)
	drops := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.JudgeIn(0, 0).Drop {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.08 || got > 0.12 {
		t.Fatalf("10%% drop rate produced %.3f", got)
	}
	if p.Report().DropsInjected != uint64(drops) {
		t.Fatalf("report says %d drops, saw %d", p.Report().DropsInjected, drops)
	}
}

func TestDownWindows(t *testing.T) {
	fp := topo.FaultPlan{
		Enabled: true,
		Down: []topo.DownWindow{
			{Node: 1, Dir: topo.InOnly, From: 100, Until: 200},
			{Node: 0, Dir: topo.BothDirs, From: 50, Until: 60},
		},
	}
	p := New(&fp, 2)
	cases := []struct {
		in   bool
		node int
		at   sim.Time
		drop bool
	}{
		{true, 1, 150, true},   // inside node 1's in window
		{true, 1, 99, false},   // before it
		{true, 1, 200, false},  // Until is exclusive
		{false, 1, 150, false}, // out direction unaffected by InOnly
		{true, 0, 55, true},    // BothDirs covers in
		{false, 0, 55, true},   // ... and out
		{false, 0, 60, false},
	}
	for i, c := range cases {
		var v Verdict
		if c.in {
			v = p.JudgeIn(c.node, c.at)
		} else {
			v = p.JudgeOut(c.node, c.at)
		}
		if v.Drop != c.drop {
			t.Errorf("case %d (%+v): drop=%v", i, c, v.Drop)
		}
	}
	if p.Report().DownDrops != 3 {
		t.Errorf("DownDrops = %d, want 3", p.Report().DownDrops)
	}
}

func TestCorruptMaskNeverZero(t *testing.T) {
	fp := topo.FaultPlan{Enabled: true, Seed: 5, CorruptRate: 0.999}
	p := New(&fp, 1)
	for i := 0; i < 1000; i++ {
		if v := p.JudgeIn(0, 0); !v.Drop && v.CorruptMask == 0 {
			// A zero mask would leave the checksum intact and the
			// "corruption" undetectable and unmasked.
			t.Fatal("corrupt verdict with zero mask")
		}
	}
}

func TestDelayBounded(t *testing.T) {
	fp := topo.FaultPlan{Enabled: true, Seed: 6, DelayRate: 0.999, DelayMax: sim.Micro(50)}
	p := New(&fp, 1)
	saw := false
	for i := 0; i < 1000; i++ {
		v := p.JudgeIn(0, 0)
		if v.Delay < 0 || v.Delay > sim.Micro(50) {
			t.Fatalf("delay %d outside (0, %d]", v.Delay, sim.Micro(50))
		}
		if v.Delay > 0 {
			saw = true
		}
	}
	if !saw {
		t.Fatal("no delays drawn at 99.9% rate")
	}
}
