package faults

import (
	"testing"

	"genima/internal/sim"
	"genima/internal/topo"
)

func planWith(down ...topo.DownWindow) *Plan {
	fp := &topo.FaultPlan{Enabled: true, Seed: 1, Down: down}
	return New(fp, 4)
}

// DownWindow is half-open: [From, Until). The first instant of the
// window drops; the last instant before Until drops; Until itself is
// back up.
func TestDownWindowHalfOpenEdges(t *testing.T) {
	p := planWith(topo.DownWindow{Node: 0, Dir: topo.BothDirs, From: 100, Until: 200})
	cases := []struct {
		now  int64
		down bool
	}{
		{99, false}, {100, true}, {150, true}, {199, true}, {200, false}, {201, false},
	}
	for _, c := range cases {
		if got := p.JudgeOut(0, simTime(c.now)).Drop; got != c.down {
			t.Errorf("out t=%d: drop=%v, want %v", c.now, got, c.down)
		}
		if got := p.JudgeIn(0, simTime(c.now)).Drop; got != c.down {
			t.Errorf("in t=%d: drop=%v, want %v", c.now, got, c.down)
		}
	}
	// 3 in-window judgements per direction above.
	rep := p.Report()
	if rep.DownDrops != 6 {
		t.Errorf("DownDrops = %d, want 6", rep.DownDrops)
	}
}

// Overlapping windows act as their union, and a packet inside the
// overlap counts one DownDrop, not one per window.
func TestDownWindowOverlap(t *testing.T) {
	p := planWith(
		topo.DownWindow{Node: 2, Dir: topo.BothDirs, From: 100, Until: 300},
		topo.DownWindow{Node: 2, Dir: topo.BothDirs, From: 200, Until: 400},
	)
	for _, c := range []struct {
		now  int64
		down bool
	}{
		{99, false}, {100, true}, {250, true}, {399, true}, {400, false},
	} {
		if got := p.JudgeOut(2, simTime(c.now)).Drop; got != c.down {
			t.Errorf("t=%d: drop=%v, want %v", c.now, got, c.down)
		}
	}
	if rep := p.Report(); rep.DownDrops != 3 {
		t.Errorf("DownDrops = %d, want 3 (one per in-window packet)", rep.DownDrops)
	}
}

// Dir selects which link(s) of the node go dark, and other nodes are
// untouched.
func TestDownWindowDirSelectivity(t *testing.T) {
	out := planWith(topo.DownWindow{Node: 1, Dir: topo.OutOnly, From: 0, Until: 100})
	if !out.JudgeOut(1, 50).Drop {
		t.Error("OutOnly: out link not down")
	}
	if out.JudgeIn(1, 50).Drop {
		t.Error("OutOnly: in link down")
	}
	in := planWith(topo.DownWindow{Node: 1, Dir: topo.InOnly, From: 0, Until: 100})
	if in.JudgeOut(1, 50).Drop {
		t.Error("InOnly: out link down")
	}
	if !in.JudgeIn(1, 50).Drop {
		t.Error("InOnly: in link not down")
	}
	both := planWith(topo.DownWindow{Node: 1, Dir: topo.BothDirs, From: 0, Until: 100})
	if !both.JudgeOut(1, 50).Drop || !both.JudgeIn(1, 50).Drop {
		t.Error("BothDirs: a direction stayed up")
	}
	if both.JudgeOut(0, 50).Drop || both.JudgeIn(2, 50).Drop {
		t.Error("window leaked onto another node")
	}
}

// A down-window drop consumes no PRNG draws: the fault stream a
// checkpoint restore must reproduce advances only on real judgements.
// Judge a packet inside the window, then compare the next post-window
// verdict against a windowless plan with the same seed that judged one
// packet fewer.
func TestDownWindowPreservesFaultStream(t *testing.T) {
	rates := topo.FaultPlan{
		Enabled: true, Seed: 9,
		DropRate: 0.5, CorruptRate: 0.5, DupRate: 0.5, DelayRate: 0.5, DelayMax: 1000,
	}
	windowed := rates
	windowed.Down = []topo.DownWindow{{Node: 0, Dir: topo.BothDirs, From: 100, Until: 200}}
	a := New(&windowed, 4)
	b := New(&rates, 4)

	if !a.JudgeIn(0, 150).Drop {
		t.Fatal("in-window packet not dropped")
	}
	got := a.JudgeIn(0, 500)
	want := b.JudgeIn(0, 500)
	if got != want {
		t.Errorf("post-window verdict %+v != windowless first verdict %+v (window consumed stream draws)", got, want)
	}
}

// simTime converts a test literal; keeps the table literals compact.
func simTime(ns int64) sim.Time { return sim.Time(ns) }
