// Package faults implements a deterministic, seed-driven network fault
// plan: per-link packet drop, duplication, reorder-delay, payload
// corruption, and timed link-down windows. Every decision is drawn from
// a per-link splitmix64 stream derived from the configured seed — no
// wall clock, no global rand — so a run with the same topo.Config
// (including the fault seed) replays byte-identically.
//
// The plan is consulted by the NI packet pipeline at the two link
// crossings of a packet's path: the host-to-switch (out) link and the
// switch-to-host (in) link. Drop, corruption, and down windows apply to
// both crossings; duplication and reorder-delay are modeled on the in
// link only (the last hop, where they are observable by the receiver).
// The NI-firmware reliable-delivery layer (internal/nic/reliable.go)
// masks everything the plan injects.
package faults

import (
	"genima/internal/rng"
	"genima/internal/sim"
	"genima/internal/stats"
	"genima/internal/topo"
)

// outLinkSalt decorrelates a host's out-link stream from its in-link
// stream (both derive from the same seed and node id). The value is
// frozen: it participates in every fault verdict stream pinned by the
// golden trace hashes.
const outLinkSalt = 0xd1b54a32d192ed03

// seedFor derives the fault stream for one directional link — an
// independent splitmix64 stream per link, so adding traffic on one
// link never perturbs the fault pattern of another.
func seedFor(seed uint64, out bool, node int) rng.Stream {
	var salt uint64
	if out {
		salt = outLinkSalt
	}
	return rng.Derive(seed, uint64(node), salt)
}

// Verdict is the plan's decision for one link crossing.
type Verdict struct {
	// Drop loses the packet on this crossing.
	Drop bool
	// Dup makes the link deliver the packet a second time.
	Dup bool
	// CorruptMask, when nonzero, is XOR-ed into the packet's checksum
	// (modeling flipped payload bits the receiver's checksum catches).
	CorruptMask uint64
	// Delay holds the packet for this long after the link, letting later
	// packets overtake it.
	Delay sim.Time
}

// linkState is one directional link's fault stream. Each state —
// including its injection counters — is touched only by the logical
// process that executes that link's crossings (the fabric LP for out
// links, the receiving node's LP for in links), so parallel runs need
// no synchronization here; Plan.Report aggregates the shards after the
// run.
type linkState struct {
	r    rng.Stream
	down []topo.DownWindow
	rep  stats.FaultReport
}

func (ls *linkState) isDown(now sim.Time) bool {
	for _, w := range ls.down {
		if now >= w.From && now < w.Until {
			return true
		}
	}
	return false
}

// Plan is a compiled fault plan for one simulated fabric. It is owned
// by a single run and must not be shared across concurrent runs.
type Plan struct {
	cfg topo.FaultPlan
	out []linkState // host -> switch, by host
	in  []linkState // switch -> host, by host
}

// Report sums the per-link injection counters (the *Injected/DownDrops
// fields; the reliability fields stay zero here).
func (p *Plan) Report() stats.FaultReport {
	var rep stats.FaultReport
	for i := range p.out {
		rep.Merge(p.out[i].rep)
	}
	for i := range p.in {
		rep.Merge(p.in[i].rep)
	}
	return rep
}

// New compiles a fault plan for a fabric of `nodes` hosts. The plan
// assumes fp has passed topo validation.
func New(fp *topo.FaultPlan, nodes int) *Plan {
	p := &Plan{cfg: *fp, out: make([]linkState, nodes), in: make([]linkState, nodes)}
	for i := 0; i < nodes; i++ {
		p.out[i].r = seedFor(fp.Seed, true, i)
		p.in[i].r = seedFor(fp.Seed, false, i)
	}
	for _, w := range fp.Down {
		if w.Dir == topo.BothDirs || w.Dir == topo.OutOnly {
			p.out[w.Node].down = append(p.out[w.Node].down, w)
		}
		if w.Dir == topo.BothDirs || w.Dir == topo.InOnly {
			p.in[w.Node].down = append(p.in[w.Node].down, w)
		}
	}
	return p
}

// JudgeOut decides the fate of a packet that just crossed host `node`'s
// out link (drop, corruption, and down windows only; duplication and
// delay are in-link faults).
func (p *Plan) JudgeOut(node int, now sim.Time) Verdict {
	ls := &p.out[node]
	if ls.isDown(now) {
		ls.rep.DownDrops++
		return Verdict{Drop: true}
	}
	var v Verdict
	// Fixed draw order keeps each link's stream stable across fault
	// classes: drop, then corrupt.
	if ls.r.Float() < p.cfg.DropRate {
		v.Drop = true
		ls.rep.DropsInjected++
	}
	if ls.r.Float() < p.cfg.CorruptRate {
		v.CorruptMask = ls.r.Next() | 1
		if !v.Drop {
			ls.rep.CorruptsInjected++
		}
	}
	return v
}

// JudgeIn decides the fate of a packet that just crossed host `node`'s
// in link: every fault class applies here.
func (p *Plan) JudgeIn(node int, now sim.Time) Verdict {
	ls := &p.in[node]
	if ls.isDown(now) {
		ls.rep.DownDrops++
		return Verdict{Drop: true}
	}
	var v Verdict
	// Fixed draw order: drop, corrupt, dup, delay.
	if ls.r.Float() < p.cfg.DropRate {
		v.Drop = true
		ls.rep.DropsInjected++
	}
	if ls.r.Float() < p.cfg.CorruptRate {
		v.CorruptMask = ls.r.Next() | 1
		if !v.Drop {
			ls.rep.CorruptsInjected++
		}
	}
	if ls.r.Float() < p.cfg.DupRate {
		v.Dup = true
		ls.rep.DupsInjected++
	}
	if ls.r.Float() < p.cfg.DelayRate {
		d := 1 + sim.Time(ls.r.Float()*float64(p.cfg.DelayMax))
		if d > p.cfg.DelayMax {
			d = p.cfg.DelayMax
		}
		v.Delay = d
		if !v.Drop {
			ls.rep.DelaysInjected++
		}
	}
	return v
}

// DigestInto folds every link's fault-stream cursor (the raw splitmix64
// state, which advances one step per draw) and injection counters into
// d. Two runs that judged the same packet sequence have identical
// cursors, so the digest pins exactly how far each fault stream has
// been consumed — the state a checkpoint restore must reproduce.
func (p *Plan) DigestInto(d *sim.Digest) {
	dir := func(links []linkState) {
		d.U64(uint64(len(links)))
		for i := range links {
			ls := &links[i]
			d.U64(ls.r.State())
			ls.rep.DigestInto(d)
		}
	}
	dir(p.out)
	dir(p.in)
}

// AckEvery returns the configured cumulative-ack threshold with its
// default applied.
func (p *Plan) AckEvery() int {
	if p.cfg.AckEvery > 0 {
		return p.cfg.AckEvery
	}
	return 4
}
