package core

import (
	"sort"

	"genima/internal/sim"
)

// DigestInto folds the whole protocol system's live state — per-node
// page tables, vector clocks, flat version-vector tables, lock caches,
// barrier epoch rings, the resumable protocol machine, and the pooled
// free lists — into d, for checkpoint verification. Maps are folded in
// sorted key order; pooled free lists contribute their lengths (their
// pointer identities are not portable across processes).
func (s *System) DigestInto(d *sim.Digest) {
	d.U64(uint64(s.Kind))
	d.U64(uint64(len(s.Nodes)))
	for _, n := range s.Nodes {
		n.digestInto(d)
	}
}

func (n *Node) digestInto(d *sim.Digest) {
	if n.Mem != nil {
		n.Mem.DigestInto(d)
	}
	for _, st := range n.state {
		d.U64(uint64(st))
	}
	for i := range n.fetching {
		d.Bool(n.fetching[i])
		d.U64(uint64(n.fetchQ[i].Len()))
	}
	for i := range n.homeWaitQ {
		d.U64(uint64(n.homeWaitQ[i].Len()))
	}
	for _, v := range n.vc {
		d.U64(v)
	}
	for i := range n.arrived {
		d.U64(n.arrived[i].Value())
		d.U64(uint64(len(n.log[i])))
	}
	n.need.digestInto(d)
	n.copyVer.digestInto(d)
	n.homeVer.digestInto(d)
	for _, set := range n.copyVerSet {
		d.Bool(set)
	}
	for _, dirty := range n.dirtySet {
		d.Bool(dirty)
	}
	d.U64(uint64(len(n.dirtyList)))
	n.ivGate.DigestInto(d)

	pages := make([]int, 0, len(n.pendingReqs))
	for pg := range n.pendingReqs {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	for _, pg := range pages {
		d.U64(uint64(pg))
		d.U64(uint64(len(n.pendingReqs[pg])))
	}

	ids := make([]int, 0, len(n.locks))
	for id := range n.locks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		lk := n.locks[id]
		d.U64(uint64(id))
		d.Bool(lk.cached)
		d.Bool(lk.held)
		d.Bool(lk.requesting)
		d.Bool(lk.releasing)
		d.U64(uint64(lk.localQ.Len()))
		d.Bool(lk.wantGrant)
		d.Bool(lk.pendingReq)
		d.U64(uint64(lk.pendingRequester))
	}
	ids = ids[:0]
	for id := range n.lockDir {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		d.U64(uint64(id))
		d.U64(uint64(n.lockDir[id].lastOwner))
	}

	n.pm.digestInto(d)

	d.U64(uint64(n.barSeq))
	d.U64(n.lastBarSelfSeq)
	for i := range n.barEpochs {
		e := &n.barEpochs[i]
		d.U64(uint64(e.seq))
		d.U64(e.count.Value())
		for _, v := range e.vc {
			d.U64(v)
		}
		d.Bool(e.flag.IsSet())
		d.Bool(e.rel != nil)
		d.U64(uint64(e.localArrived))
		d.Bool(e.localDone.IsSet())
		d.U64(uint64(e.mArrived))
		for _, v := range e.mVC {
			d.U64(v)
		}
		d.U64(uint64(len(e.mIvs)))
	}

	for _, t := range n.steal {
		d.I64(t)
	}
	d.U64(uint64(n.victim))

	// Pooled free lists and arenas: lengths only.
	d.U64(uint64(len(n.pageReqFree)))
	d.U64(uint64(len(n.fpFree)))
	d.U64(uint64(len(n.diffFree)))
	d.U64(uint64(len(n.lockReqFree)))
	d.U64(uint64(len(n.grantFree)))
	d.U64(uint64(len(n.vcMsgFree)))
	d.U64(uint64(len(n.barArrFree)))
	d.U64(uint64(len(n.barRelFree)))
	d.U64(uint64(len(n.runDepFree)))
	d.U64(uint64(len(n.verMarkFree)))
	d.U64(uint64(len(n.sgDepFree)))
	d.U64(uint64(len(n.invFree)))
	d.U64(uint64(len(n.ivChunk)))
	d.U64(uint64(len(n.ivPages)))

	n.Acct.DigestInto(d)
}

func (t *vecTable) digestInto(d *sim.Digest) {
	for _, v := range t.a {
		d.U64(v)
	}
}

func (pm *protoMachine) digestInto(d *sim.Digest) {
	d.U64(uint64(pm.st))
	d.U64(uint64(len(pm.q) - pm.head))
	for i := pm.head; i < len(pm.q); i++ {
		m := &pm.q[i]
		d.U64(uint64(m.Src))
		d.U64(uint64(m.Kind))
	}
	d.Bool(pm.gateBlocked)
	d.U64(uint64(pm.sendDst))
	d.U64(uint64(pm.sendRem))
	d.Str(pm.sendLabel)
	d.U64(uint64(pm.sendMeta))
	d.Bool(pm.sendSG)
	d.U64(uint64(pm.sendRet))
	d.Bool(pm.d != nil)
	d.U64(uint64(pm.retryPage))
	d.Bool(pm.lkReq != nil)
	d.Bool(pm.ivCur != nil)
	d.U64(pm.ivSeq)
	d.U64(uint64(pm.pageIdx))
	d.U64(uint64(pm.fpPg))
	d.U64(uint64(pm.fpHome))
	d.U64(uint64(pm.runIdx))
	d.U64(uint64(pm.noticeDst))
}
