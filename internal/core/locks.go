package core

import (
	"fmt"

	"genima/internal/sim"
	"genima/internal/vmmc"
)

// Lock synchronization.
//
// Base path (also DW, DW+RF, DW+RF+DD): every lock has a static home.
// An acquire message interrupts the home, which forwards it to the last
// owner (updating the distributed chain tail); the owner's host —
// interrupted, or at its next release — closes its write interval,
// flushes diffs, and sends the grant. In Base the grant piggybacks the
// write notices the requester lacks; with DW the notices have already
// been deposited eagerly and the grant carries only the releaser's
// vector timestamp.
//
// NIL path (GeNIMA): vmmc's NI firmware locks carry the releaser's
// vector timestamp as an opaque payload; no host other than the
// requester is involved, and diffs/notices are produced eagerly at
// release, before the lock is handed to the NI.
//
// Within a node, locks are cached and handed between processors under
// hardware coherence (a local handoff closes no interval — the paper's
// hybrid laziness).

// lockMeta is the home-side chain tail for the Base path.
type lockMeta struct {
	lastOwner int
}

// lockReqMsg is the Base acquire payload: pooled, and reused verbatim
// for the home's forward hop (same wire size); the final consumer — the
// node that grants or queues the request — releases it.
type lockReqMsg struct {
	id        int
	requester int
	reqVC     []uint64
}

// lockGrant is the Base/DW grant payload (pooled; the requester
// releases it after applying the carried coherence information).
type lockGrant struct {
	id        int
	vc        []uint64
	intervals []*interval // Base only: piggybacked write notices
}

func (g *lockGrant) wireSize() int {
	n := lockMsgOverhead + 8*len(g.vc)
	for _, iv := range g.intervals {
		n += iv.wireSize()
	}
	return n
}

// vcMsg is the pooled NI-lock timestamp payload (NIL path): boxing the
// record pointer into the NI's opaque payload slot allocates nothing.
type vcMsg struct {
	vc []uint64
}

// nodeLock is the node-level lock cache.
type nodeLock struct {
	id         int
	cached     bool // this node is the lock's current owner
	held       bool // some local processor holds it
	requesting bool // a remote acquire is outstanding
	releasing  bool // a release (diff flush / NI handback) is in progress
	localQ     sim.WaitQ

	// Remote acquire state (one outstanding acquire per node-lock).
	wantGrant bool
	grantF    sim.Flag
	grant     *lockGrant

	// A remote requester parked here until the local release (its
	// vector is copied out of the pooled request so the record can be
	// released immediately).
	pendingReq       bool
	pendingRequester int
	pendingVC        []uint64
}

func (n *Node) lock(id int) *nodeLock {
	lk := n.locks[id]
	if lk == nil {
		// Fine-grained locking apps (Barnes) touch hundreds of lock ids
		// per node; carve records out of a chunk instead of allocating
		// each one.
		if len(n.lockChunk) == 0 {
			n.lockChunk = make([]nodeLock, 32)
		}
		lk = &n.lockChunk[0]
		n.lockChunk = n.lockChunk[1:]
		home := n.sys.lockHome(id)
		lk.id = id
		lk.cached = !n.sys.Feat.NIL && home == n.ID
		n.locks[id] = lk
	}
	return lk
}

// lockHome returns the static home node of a lock (must match vmmc's).
func (s *System) lockHome(id int) int { return id % s.Cfg.Nodes }

// lockMetaFor returns the home-side chain tail for a lock homed at this
// node (callers must be the home's protocol machine).
func (n *Node) lockMetaFor(id int) *lockMeta {
	m := n.lockDir[id]
	if m == nil {
		m = &lockMeta{lastOwner: n.sys.lockHome(id)}
		n.lockDir[id] = m
	}
	return m
}

// LockAcquire acquires lock id for a processor of this node, blocking
// the calling process. All elapsed time is the paper's "Lock time".
func (n *Node) LockAcquire(p *sim.Proc, id int) {
	c := &n.sys.Cfg.Costs
	p.Sleep(c.LocalLock)
	lk := n.lock(id)
	for {
		if lk.held || lk.requesting || lk.releasing {
			lk.localQ.Wait(p)
			continue
		}
		if lk.cached {
			// Local handoff or cached re-acquire: hardware coherence
			// inside the node, no protocol action.
			lk.held = true
			return
		}
		break
	}
	// Remote acquire.
	lk.requesting = true
	n.Acct.LockOps++
	if n.sys.Feat.NIL {
		n.acquireNIL(p, lk)
	} else {
		n.acquireBase(p, lk)
	}
	lk.requesting = false
	lk.cached = true
	lk.held = true
}

func (n *Node) acquireNIL(p *sim.Proc, lk *nodeLock) {
	payload := n.ep.NILockAcquire(p, lk.id)
	if payload == nil {
		return // first acquire ever: nothing to apply
	}
	vm := payload.(*vcMsg)
	n.waitNotices(p, vm.vc)
	n.applyUpTo(p, vm.vc)
	n.putVCMsg(vm)
}

func (n *Node) acquireBase(p *sim.Proc, lk *nodeLock) {
	lk.wantGrant = true
	req := n.getLockReq()
	req.id, req.requester = lk.id, n.ID
	copy(req.reqVC, n.vc)
	home := n.sys.lockHome(lk.id)
	size := lockMsgOverhead + 8*len(req.reqVC)
	if home == n.ID {
		// The home is this node: the chain lookup still runs on the
		// protocol process (it owns the directory), posted locally
		// without a network hop or interrupt cost.
		n.pm.post(localMsg(vmmc.MsgLockReq, req))
	} else {
		n.ep.SendInterrupt(p, home, size, vmmc.MsgLockReq, req)
	}
	lk.grantF.Wait(p)
	g := lk.grant
	lk.grant, lk.wantGrant = nil, false
	lk.grantF.Reset()

	for _, iv := range g.intervals {
		n.recordInterval(iv)
	}
	if n.sys.Feat.DW {
		n.waitNotices(p, g.vc)
	}
	n.applyUpTo(p, g.vc)
	n.putGrant(g)
}

// LockRelease releases lock id. A waiting local processor gets the lock
// without closing the interval; otherwise, under DD/GeNIMA the interval
// closes eagerly here, and under NIL the lock is handed back to the NI.
func (n *Node) LockRelease(p *sim.Proc, id int) {
	c := &n.sys.Cfg.Costs
	p.Sleep(c.LocalLock)
	lk := n.lock(id)
	if !lk.held || !lk.cached {
		panic(fmt.Sprintf("core: release of lock %d not held at node %d", id, n.ID))
	}
	lk.held = false
	if lk.localQ.Len() > 0 {
		// Hybrid laziness: the lock stays in the node, no diffs (under
		// NIL the NI still thinks this host holds the lock).
		lk.localQ.WakeOne()
		return
	}
	// The release path below yields (diff computation, NI post); block
	// local acquirers until the lock's fate is settled.
	lk.releasing = true
	if n.sys.Feat.DD {
		// Direct diffs are computed at release points.
		n.closeInterval(p)
	}
	if n.sys.Feat.NIL {
		n.closeInterval(p) // ensure notices precede the NI release
		lk.cached = false
		vm := n.getVCMsg()
		copy(vm.vc, n.vc)
		n.ep.NILockRelease(p, id, vm, 8*len(vm.vc))
		lk.releasing = false
		lk.localQ.WakeAll() // re-check state (they will go remote)
		return
	}
	if lk.pendingReq {
		lk.pendingReq = false
		// No new forward can arrive while releasing (a forward requires
		// this node to re-own the lock, which requires a local acquire —
		// blocked until releasing clears), so pendingVC stays stable
		// across grantRemote's yields.
		n.grantRemote(p, lk, lk.pendingRequester, lk.pendingVC)
	}
	lk.releasing = false
	lk.localQ.WakeAll()
	// Otherwise the last owner keeps the lock until someone asks.
}

// grantRemote transfers ownership to a remote requester: close the
// interval (flushing diffs — "diffs are propagated to the home at the
// next incoming acquire"), then send the grant.
func (n *Node) grantRemote(p *sim.Proc, lk *nodeLock, requester int, reqVC []uint64) {
	// Revoke the cache entry before yielding in closeInterval so no
	// local processor grabs the lock while it is being shipped away.
	lk.cached = false
	n.closeInterval(p)
	g := n.getGrant()
	g.id = lk.id
	copy(g.vc, n.vc)
	if !n.sys.Feat.DW {
		// Base: piggyback the write notices the requester lacks.
		for src := 0; src < n.sys.Cfg.Nodes; src++ {
			g.intervals = n.appendIntervalsAfter(g.intervals, src, reqVC[src], n.vc[src])
		}
	}
	n.ep.DepositTo(p, requester, g.wireSize(), "lock-grant", g, &n.sys.grantDel)
	lk.localQ.WakeAll() // local waiters must now go remote
}

// receiveGrant runs in engine context at the requester when the grant
// message is deposited.
func (n *Node) receiveGrant(g *lockGrant) {
	lk := n.lock(g.id)
	if !lk.wantGrant {
		panic(fmt.Sprintf("core: unexpected lock grant %d at node %d", g.id, n.ID))
	}
	lk.grant = g
	lk.grantF.Set()
}

// Lock request handling at the home and the previous owner runs on the
// protocol machine: see pmDispatch (MsgLockReq/MsgLockFwd) and lockFwd
// in handler.go. The pooled request is forwarded as-is (identical wire
// size) and released by the node that finally grants or parks it.
