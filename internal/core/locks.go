package core

import (
	"fmt"

	"genima/internal/sim"
)

// Lock synchronization.
//
// Base path (also DW, DW+RF, DW+RF+DD): every lock has a static home.
// An acquire message interrupts the home, which forwards it to the last
// owner (updating the distributed chain tail); the owner's host —
// interrupted, or at its next release — closes its write interval,
// flushes diffs, and sends the grant. In Base the grant piggybacks the
// write notices the requester lacks; with DW the notices have already
// been deposited eagerly and the grant carries only the releaser's
// vector timestamp.
//
// NIL path (GeNIMA): vmmc's NI firmware locks carry the releaser's
// vector timestamp as an opaque payload; no host other than the
// requester is involved, and diffs/notices are produced eagerly at
// release, before the lock is handed to the NI.
//
// Within a node, locks are cached and handed between processors under
// hardware coherence (a local handoff closes no interval — the paper's
// hybrid laziness).

// lockMeta is the home-side chain tail for the Base path.
type lockMeta struct {
	lastOwner int
}

// remoteReq is a remote acquire waiting at the current owner.
type remoteReq struct {
	requester int
	reqVC     []uint64
}

// lockReqMsg is the Base acquire/forward payload.
type lockReqMsg struct {
	id        int
	requester int
	reqVC     []uint64
}

// lockGrant is the Base/DW grant payload.
type lockGrant struct {
	id        int
	vc        []uint64
	intervals []*interval // Base only: piggybacked write notices
}

func (g *lockGrant) wireSize() int {
	n := lockMsgOverhead + 8*len(g.vc)
	for _, iv := range g.intervals {
		n += iv.wireSize()
	}
	return n
}

// nodeLock is the node-level lock cache.
type nodeLock struct {
	id            int
	cached        bool // this node is the lock's current owner
	held          bool // some local processor holds it
	requesting    bool // a remote acquire is outstanding
	releasing     bool // a release (diff flush / NI handback) is in progress
	localQ        sim.WaitQ
	grantFlag     *sim.Flag
	grantVC       []uint64
	grantIvs      []*interval
	pendingRemote *remoteReq
}

func (n *Node) lock(id int) *nodeLock {
	lk := n.locks[id]
	if lk == nil {
		home := n.sys.lockHome(id)
		lk = &nodeLock{id: id, cached: !n.sys.Feat.NIL && home == n.ID}
		n.locks[id] = lk
	}
	return lk
}

// lockHome returns the static home node of a lock (must match vmmc's).
func (s *System) lockHome(id int) int { return id % s.Cfg.Nodes }

func (s *System) lockMetaFor(id int) *lockMeta {
	m := s.locks[id]
	if m == nil {
		m = &lockMeta{lastOwner: s.lockHome(id)}
		s.locks[id] = m
	}
	return m
}

// LockAcquire acquires lock id for a processor of this node, blocking
// the calling process. All elapsed time is the paper's "Lock time".
func (n *Node) LockAcquire(p *sim.Proc, id int) {
	c := &n.sys.Cfg.Costs
	p.Sleep(c.LocalLock)
	lk := n.lock(id)
	for {
		if lk.held || lk.requesting || lk.releasing {
			lk.localQ.Wait(p)
			continue
		}
		if lk.cached {
			// Local handoff or cached re-acquire: hardware coherence
			// inside the node, no protocol action.
			lk.held = true
			return
		}
		break
	}
	// Remote acquire.
	lk.requesting = true
	n.Acct.LockOps++
	if n.sys.Feat.NIL {
		n.acquireNIL(p, lk)
	} else {
		n.acquireBase(p, lk)
	}
	lk.requesting = false
	lk.cached = true
	lk.held = true
}

func (n *Node) acquireNIL(p *sim.Proc, lk *nodeLock) {
	payload := n.ep.NILockAcquire(p, lk.id)
	if payload == nil {
		return // first acquire ever: nothing to apply
	}
	grantVC := payload.([]uint64)
	n.waitNotices(p, grantVC)
	n.applyUpTo(p, grantVC)
}

func (n *Node) acquireBase(p *sim.Proc, lk *nodeLock) {
	lk.grantFlag = &sim.Flag{}
	req := &lockReqMsg{id: lk.id, requester: n.ID, reqVC: append([]uint64(nil), n.vc...)}
	home := n.sys.lockHome(lk.id)
	size := lockMsgOverhead + 8*len(req.reqVC)
	if home == n.ID {
		// The home is this node: the chain lookup still runs on the
		// protocol process (it owns the directory), via the mailbox but
		// without a network hop or interrupt cost.
		n.mb.Send(localMsg("lock-req", req))
	} else {
		n.ep.SendInterrupt(p, home, size, "lock-req", req)
	}
	lk.grantFlag.Wait(p)

	for _, iv := range lk.grantIvs {
		n.recordInterval(iv)
	}
	if n.sys.Feat.DW {
		n.waitNotices(p, lk.grantVC)
	}
	n.applyUpTo(p, lk.grantVC)
	lk.grantFlag, lk.grantVC, lk.grantIvs = nil, nil, nil
}

// LockRelease releases lock id. A waiting local processor gets the lock
// without closing the interval; otherwise, under DD/GeNIMA the interval
// closes eagerly here, and under NIL the lock is handed back to the NI.
func (n *Node) LockRelease(p *sim.Proc, id int) {
	c := &n.sys.Cfg.Costs
	p.Sleep(c.LocalLock)
	lk := n.lock(id)
	if !lk.held || !lk.cached {
		panic(fmt.Sprintf("core: release of lock %d not held at node %d", id, n.ID))
	}
	lk.held = false
	if lk.localQ.Len() > 0 {
		// Hybrid laziness: the lock stays in the node, no diffs (under
		// NIL the NI still thinks this host holds the lock).
		lk.localQ.WakeOne()
		return
	}
	// The release path below yields (diff computation, NI post); block
	// local acquirers until the lock's fate is settled.
	lk.releasing = true
	if n.sys.Feat.DD {
		// Direct diffs are computed at release points.
		n.closeInterval(p)
	}
	if n.sys.Feat.NIL {
		n.closeInterval(p) // ensure notices precede the NI release
		lk.cached = false
		n.ep.NILockRelease(p, id, append([]uint64(nil), n.vc...), 8*len(n.vc))
		lk.releasing = false
		lk.localQ.WakeAll() // re-check state (they will go remote)
		return
	}
	if lk.pendingRemote != nil {
		rr := lk.pendingRemote
		lk.pendingRemote = nil
		n.grantRemote(p, lk, rr)
	}
	lk.releasing = false
	lk.localQ.WakeAll()
	// Otherwise the last owner keeps the lock until someone asks.
}

// grantRemote transfers ownership to a remote requester: close the
// interval (flushing diffs — "diffs are propagated to the home at the
// next incoming acquire"), then send the grant.
func (n *Node) grantRemote(p *sim.Proc, lk *nodeLock, rr *remoteReq) {
	// Revoke the cache entry before yielding in closeInterval so no
	// local processor grabs the lock while it is being shipped away.
	lk.cached = false
	n.closeInterval(p)
	g := &lockGrant{id: lk.id, vc: append([]uint64(nil), n.vc...)}
	if !n.sys.Feat.DW {
		// Base: piggyback the write notices the requester lacks.
		for src := 0; src < n.sys.Cfg.Nodes; src++ {
			g.intervals = append(g.intervals, n.intervalsAfter(src, rr.reqVC[src], n.vc[src])...)
		}
	}
	dst := n.sys.Nodes[rr.requester]
	n.ep.Deposit(p, rr.requester, g.wireSize(), "lock-grant", nil, func() {
		dst.receiveGrant(g)
	})
	lk.localQ.WakeAll() // local waiters must now go remote
}

// receiveGrant runs in engine context at the requester when the grant
// message is deposited.
func (n *Node) receiveGrant(g *lockGrant) {
	lk := n.lock(g.id)
	if lk.grantFlag == nil {
		panic(fmt.Sprintf("core: unexpected lock grant %d at node %d", g.id, n.ID))
	}
	lk.grantVC = g.vc
	lk.grantIvs = g.intervals
	lk.grantFlag.Set()
}

// handleLockReq runs at the lock's home on the protocol process.
func (n *Node) handleLockReq(p *sim.Proc, req *lockReqMsg) {
	meta := n.sys.lockMetaFor(req.id)
	prev := meta.lastOwner
	meta.lastOwner = req.requester
	rr := &remoteReq{requester: req.requester, reqVC: req.reqVC}
	if prev == n.ID {
		n.handleLockFwd(p, req.id, rr)
		return
	}
	size := lockMsgOverhead + 8*len(req.reqVC)
	n.ep.SendInterrupt(p, prev, size, "lock-fwd", &lockReqMsg{id: req.id, requester: req.requester, reqVC: req.reqVC})
}

// handleLockFwd runs at the previous owner on the protocol process.
func (n *Node) handleLockFwd(p *sim.Proc, id int, rr *remoteReq) {
	lk := n.lock(id)
	if lk.cached && !lk.held {
		n.grantRemote(p, lk, rr)
		return
	}
	if lk.pendingRemote != nil {
		panic(fmt.Sprintf("core: lock %d at node %d already has a pending remote requester", id, n.ID))
	}
	lk.pendingRemote = rr
}
