package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests for the flat version-vector storage against naive
// [][]uint64 / []uint64 oracles: the flattening is a pure layout change
// and must be observationally identical to per-page slices.

// oracleMergeMax is the obvious element-wise max over fresh slices.
func oracleMergeMax(dst, src []uint64) []uint64 {
	out := make([]uint64, len(dst))
	copy(out, dst)
	for i, v := range src {
		if v > out[i] {
			out[i] = v
		}
	}
	return out
}

// oracleCovered is the obvious element-wise comparison.
func oracleCovered(want, have []uint64) bool {
	for i, w := range want {
		if have[i] < w {
			return false
		}
	}
	return true
}

func TestVecMergeMaxMatchesOracle(t *testing.T) {
	property := func(a, b []uint64) bool {
		if len(a) != len(b) {
			// vecMergeMax requires equal lengths (checked separately);
			// trim to the shorter so the property exercises the math.
			n := min(len(a), len(b))
			a, b = a[:n], b[:n]
		}
		want := oracleMergeMax(a, b)
		got := make([]uint64, len(a))
		copy(got, a)
		vecMergeMax(got, b)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVecMergeMaxMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("vecMergeMax with mismatched lengths did not panic")
		}
	}()
	vecMergeMax(make([]uint64, 3), make([]uint64, 4))
}

func TestVecCoveredMatchesOracle(t *testing.T) {
	property := func(want, have []uint64, nearMiss bool) bool {
		n := min(len(want), len(have))
		want, have = want[:n], have[:n]
		if nearMiss && n > 0 {
			// Random vectors almost always differ wildly; bias half the
			// cases toward have ~ want so both outcomes are exercised.
			copy(have, want)
			if want[0] > 0 {
				have[0] = want[0] - 1
			}
		}
		return vecCovered(want, have) == oracleCovered(want, have)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVecCoveredAllZero(t *testing.T) {
	// The all-zero requirement is covered by anything, including an
	// all-zero version row — the initial state of every table.
	zero := make([]uint64, 4)
	if !vecCovered(zero, zero) {
		t.Error("all-zero want not covered by all-zero have")
	}
	if !vecCovered(zero, []uint64{1, 2, 3, 4}) {
		t.Error("all-zero want not covered by nonzero have")
	}
	if vecCovered([]uint64{0, 0, 1, 0}, zero) {
		t.Error("nonzero want covered by all-zero have")
	}
	if !vecCovered(nil, nil) {
		t.Error("empty want not covered by empty have")
	}
}

// TestVecTableMatchesSliceOracle drives a vecTable and a [][]uint64
// oracle through the same random row updates (the protocol's access
// pattern: read a row, merge, bump single entries) and checks every row
// stays identical, including rows never written (all-zero).
func TestVecTableMatchesSliceOracle(t *testing.T) {
	const pages, nodes = 17, 5
	rng := rand.New(rand.NewSource(42))

	tab := newVecTable(pages, nodes)
	oracle := make([][]uint64, pages)
	for p := range oracle {
		oracle[p] = make([]uint64, nodes)
	}

	for step := 0; step < 2000; step++ {
		pg := rng.Intn(pages)
		switch rng.Intn(3) {
		case 0: // bump one entry
			i := rng.Intn(nodes)
			v := uint64(rng.Intn(100))
			if row := tab.row(pg); row[i] < v {
				row[i] = v
			}
			if oracle[pg][i] < v {
				oracle[pg][i] = v
			}
		case 1: // merge a random vector into the row
			src := make([]uint64, nodes)
			for i := range src {
				src[i] = uint64(rng.Intn(100))
			}
			vecMergeMax(tab.row(pg), src)
			oracle[pg] = oracleMergeMax(oracle[pg], src)
		case 2: // compare coverage between two rows
			other := rng.Intn(pages)
			got := vecCovered(tab.row(pg), tab.row(other))
			want := oracleCovered(oracle[pg], oracle[other])
			if got != want {
				t.Fatalf("step %d: vecCovered(row %d, row %d) = %v, oracle %v",
					step, pg, other, got, want)
			}
		}
	}
	for p := 0; p < pages; p++ {
		row := tab.row(p)
		for i := range row {
			if row[i] != oracle[p][i] {
				t.Fatalf("row %d entry %d = %d, oracle %d", p, i, row[i], oracle[p][i])
			}
		}
	}
}

// TestVecTableRowIsolation: writing (even appending to) one row must
// never disturb a neighbouring page's row — the full slice expression
// in row() caps each row at its own boundary.
func TestVecTableRowIsolation(t *testing.T) {
	tab := newVecTable(3, 2)
	r1 := tab.row(1)
	r1[0], r1[1] = 7, 8
	// An append past the row must reallocate, not spill into row 2.
	_ = append(tab.row(1), 99)
	for _, i := range []int{0, 1} {
		if got := tab.row(2)[i]; got != 0 {
			t.Fatalf("row 2 entry %d = %d after append to row 1, want 0", i, got)
		}
		if got := tab.row(0)[i]; got != 0 {
			t.Fatalf("row 0 entry %d = %d, want 0", i, got)
		}
	}
	if r := tab.row(1); r[0] != 7 || r[1] != 8 {
		t.Fatalf("row 1 = %v, want [7 8]", r)
	}
}
