package core

import (
	"sort"

	"genima/internal/memory"
	"genima/internal/sim"
)

// Interval close and diff propagation.
//
// In Base/DW/DW+RF an interval closes lazily at the first incoming
// remote acquire (or at a barrier); diffs for the interval's dirty
// pages are then packed and sent to each page's home, where a host
// interrupt + the protocol process applies them. With DD (direct
// diffs), the interval closes eagerly at release and each contiguous
// run of modified words is deposited straight into the home copy as the
// diff is computed, followed by a version marker — no home processor
// involvement (which is why DD requires remote fetch with retry).

// diffMsg is a packed diff for one page (Base path).
type diffMsg struct {
	page int
	src  int
	seq  uint64
	runs []memory.Run
}

func (d *diffMsg) wireSize() int {
	return diffMsgOverhead + memory.RunsBytes(d.runs) + runHeader*len(d.runs)
}

// closeInterval closes the node's open write interval: computes diffs
// for dirty pages, propagates them to homes, logs the interval, and (in
// DW and later) eagerly broadcasts the write notice to every node. It
// returns the new interval, or nil if nothing was written.
//
// p is the process doing the work: an application processor at a
// release/barrier (DD, NIL, barriers) or the Base protocol process at
// an incoming acquire.
func (n *Node) closeInterval(p *sim.Proc) *interval {
	// Serialize interval closes within the node: two processors (e.g. a
	// lock release and a barrier leader, or the Base protocol process
	// granting a lock) must not close overlapping intervals, and write
	// notices must leave the node in sequence order.
	n.ivGate.Acquire(p)
	if len(n.dirty) == 0 {
		n.ivGate.Release()
		return nil
	}
	// Snapshot and reset the dirty set before any yield: writes during
	// the flush start a fresh interval.
	pages := make([]int32, 0, len(n.dirty))
	for pg := range n.dirty {
		pages = append(pages, int32(pg))
	}
	n.dirty = map[int]struct{}{}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	seq := n.vc[n.ID] + 1
	n.vc[n.ID] = seq
	iv := &interval{Src: n.ID, Seq: seq, Pages: pages}
	n.recordInterval(iv)

	for _, pg32 := range pages {
		n.flushPage(p, int(pg32), seq)
	}

	if n.sys.Feat.DW {
		n.broadcastNotice(p, iv)
	}
	n.ivGate.Release()
	return iv
}

// flushPage diffs one dirty page against its twin and propagates the
// changes to the page's home.
func (n *Node) flushPage(p *sim.Proc, pg int, seq uint64) {
	c := &n.sys.Cfg.Costs
	home := n.sys.Space.Home(pg)

	// A later fetch of this page (if our copy gets invalidated by some
	// other writer's notice) must not return a home version predating
	// this flush, or we would lose our own writes: record the
	// requirement against ourselves too.
	if n.need[pg][n.ID] < seq {
		n.need[pg][n.ID] = seq
	}

	if home == n.ID {
		// Home writes go directly to the home copy; only the version
		// advances (visible to fetchers immediately after).
		n.bumpVersion(nil, pg, n.ID, seq)
		return
	}
	var runs []memory.Run
	if n.Mem.HasTwin(pg) {
		// Word-by-word comparison of the page against its twin.
		p.Sleep(sim.Time(float64(n.sys.Cfg.PageSize) * c.DiffPerByte))
		n.Acct.DiffCompute += sim.Time(float64(n.sys.Cfg.PageSize) * c.DiffPerByte)
		runs = memory.CloneRuns(n.Mem.Diff(pg))
		n.Mem.DropTwin(pg)
		n.Acct.DiffBytes += uint64(memory.RunsBytes(runs))
	}
	// No twin: the page's modifications were already flushed (e.g. an
	// early flush when a notice invalidated a concurrently written
	// page); only the version needs to advance for this interval.

	if n.sys.Feat.DD {
		if n.sys.Cfg.ScatterGather && len(runs) > 1 {
			// The scatter-gather extension (paper §3.3, not adopted
			// there): all runs travel as one gathered message that the
			// home NI scatters itself — one message instead of many, at
			// extra NI occupancy on both sides.
			size := diffMsgOverhead + memory.RunsBytes(runs) + runHeader*len(runs)
			homeNode := n.sys.Nodes[home]
			src := n.ID
			n.ep.DepositGathered(p, home, size, "sg-diff", func() {
				memory.ApplyRuns(n.sys.Space.HomeCopy(pg), runs)
				homeNode.bumpVersion(nil, pg, src, seq)
			})
			return
		}
		// Direct diffs: one remote deposit per contiguous run, applied
		// into the home copy by the home NI, then a version marker.
		for _, r := range runs {
			r := r
			n.ep.Deposit(p, home, runHeader+len(r.Data), "direct-diff", nil, func() {
				memory.ApplyRuns(n.sys.Space.HomeCopy(pg), []memory.Run{r})
			})
		}
		n.sendVersionMarker(p, home, pg, seq)
		return
	}

	// Packed diff: single message, interrupt + protocol process applies
	// (sent even when empty so the home's version row advances under
	// protocol-process control and queued page requests are retried).
	d := &diffMsg{page: pg, src: n.ID, seq: seq, runs: runs}
	n.ep.SendInterrupt(p, home, d.wireSize(), "diff", d)
}

// closePageEarly closes a one-page interval for a dirty page that is
// about to be invalidated by an incoming write notice (a concurrent
// writer on the same page). It is a full interval close — own sequence
// number, log entry, and (DW) write notice — so that waiters keyed to
// any other interval's sequence are not satisfied prematurely and other
// nodes still learn about the flushed writes.
func (n *Node) closePageEarly(p *sim.Proc, pg int) {
	n.ivGate.Acquire(p)
	if _, still := n.dirty[pg]; !still || !n.Mem.HasTwin(pg) {
		n.ivGate.Release()
		return // a concurrent close already flushed it
	}
	delete(n.dirty, pg)
	seq := n.vc[n.ID] + 1
	n.vc[n.ID] = seq
	iv := &interval{Src: n.ID, Seq: seq, Pages: []int32{int32(pg)}}
	n.recordInterval(iv)
	n.flushPage(p, pg, seq)
	if n.sys.Feat.DW {
		n.broadcastNotice(p, iv)
	}
	n.ivGate.Release()
}

// sendVersionMarker deposits the "diffs for (pg, src, seq) are all
// ahead of this message" marker; per-pair FIFO ordering guarantees the
// run deposits land first.
func (n *Node) sendVersionMarker(p *sim.Proc, home, pg int, seq uint64) {
	src := n.ID
	homeNode := n.sys.Nodes[home]
	n.ep.Deposit(p, home, 16, "diff-done", nil, func() {
		homeNode.bumpVersion(nil, pg, src, seq)
	})
}

// applyPackedDiff runs on the home's protocol process (Base path).
func (n *Node) applyPackedDiff(p *sim.Proc, d *diffMsg) {
	c := &n.sys.Cfg.Costs
	p.Sleep(sim.Time(float64(d.wireSize()) * c.HandlerPerByte))
	memory.ApplyRuns(n.sys.Space.HomeCopy(d.page), d.runs)
	n.bumpVersion(p, d.page, d.src, d.seq)
}

// bumpVersion advances the applied-version row for a page homed here,
// wakes local accessors waiting on the home copy, and (Base) retries
// queued page requests. p may be nil in event context (DD markers),
// where no queued Base requests can exist.
func (n *Node) bumpVersion(p *sim.Proc, pg, src int, seq uint64) {
	if n.homeVer[pg][src] < seq {
		n.homeVer[pg][src] = seq
	}
	if wq := n.homeWait[pg]; wq != nil {
		wq.WakeAll()
	}
	if p != nil {
		n.retryPending(p, pg)
	}
}

// broadcastNotice eagerly deposits the interval's write notice into
// every other node's protocol data structures (the DW mechanism). With
// the NI-broadcast extension (paper §5), the host posts once and the
// fabric replicates.
func (n *Node) broadcastNotice(p *sim.Proc, iv *interval) {
	if n.sys.Cfg.NIBroadcast && iv.wireSize() <= n.sys.Cfg.MaxPacket {
		sys := n.sys
		n.ep.DepositBroadcast(p, iv.wireSize(), "notice", func(dst int) {
			sys.Nodes[dst].depositNotice(iv)
		})
		return
	}
	for dst := 0; dst < n.sys.Cfg.Nodes; dst++ {
		if dst == n.ID {
			continue
		}
		dstNode := n.sys.Nodes[dst]
		n.ep.Deposit(p, dst, iv.wireSize(), "notice", nil, func() {
			dstNode.depositNotice(iv)
		})
	}
}

// depositNotice records an eagerly deposited write notice (engine
// context, NI deposit: no host time).
func (n *Node) depositNotice(iv *interval) {
	n.recordInterval(iv)
	// Per-pair FIFO delivery means notices from one source arrive in
	// seq order, so the arrival counter equals the highest arrived seq.
	n.arrived[iv.Src].Add(1)
}

// waitNotices blocks until every source's notices up to target have
// been deposited locally (the protocol "flags" of §2).
func (n *Node) waitNotices(p *sim.Proc, target []uint64) {
	for src, want := range target {
		if src == n.ID {
			continue
		}
		n.arrived[src].WaitFor(p, want)
	}
}

// applyUpTo applies invalidations for all logged intervals with
// seq <= target[src] that this node has not yet applied, batching the
// mprotect cost. Dirty pages being invalidated are flushed first
// (concurrent-writer case). Returns the mprotect time charged.
func (n *Node) applyUpTo(p *sim.Proc, target []uint64) sim.Time {
	var invalidate []int
	for src := range target {
		if src == n.ID {
			continue
		}
		for seq := n.vc[src] + 1; seq <= target[src]; seq++ {
			iv := n.log[src][seq-1]
			if iv == nil {
				panic("core: applying unknown interval")
			}
			// Flush concurrent local modifications before invalidating
			// (skipped when the copy-version check will keep the copy
			// valid anyway).
			for _, pg32 := range iv.Pages {
				pg := int(pg32)
				if n.copyVer[pg] != nil && n.copyVer[pg][iv.Src] >= seq {
					continue
				}
				if _, isDirty := n.dirty[pg]; isDirty && n.sys.Space.Home(pg) != n.ID && n.Mem.HasTwin(pg) {
					n.closePageEarly(p, pg)
				}
			}
			n.applyIntervalMeta(iv, &invalidate)
		}
	}
	if len(invalidate) == 0 {
		return 0
	}
	c := &n.sys.Cfg.Costs
	cost, calls := memory.MprotectCost(invalidate, c.MprotectBase, c.MprotectPerPage)
	p.Sleep(cost)
	n.Acct.Mprotect += cost
	n.Acct.MprotectOps += uint64(calls)
	return cost
}

// maxVec returns the element-wise max of a and b into a new slice.
func maxVec(a, b []uint64) []uint64 {
	out := make([]uint64, len(a))
	for i := range a {
		out[i] = a[i]
		if b[i] > out[i] {
			out[i] = b[i]
		}
	}
	return out
}
