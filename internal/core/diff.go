package core

import (
	"slices"

	"genima/internal/memory"
	"genima/internal/sim"
	"genima/internal/vmmc"
)

// Interval close and diff propagation.
//
// In Base/DW/DW+RF an interval closes lazily at the first incoming
// remote acquire (or at a barrier); diffs for the interval's dirty
// pages are then packed and sent to each page's home, where a host
// interrupt + the protocol process applies them. With DD (direct
// diffs), the interval closes eagerly at release and each contiguous
// run of modified words is deposited straight into the home copy as the
// diff is computed, followed by a version marker — no home processor
// involvement (which is why DD requires remote fetch with retry).

// diffMsg is the diff storage for one page: pooled, with the run list
// and the copied run bytes reused across flushes. On the packed (Base)
// path it travels whole and the home frees it after application; on the
// DD path the per-run deposits alias buf and the version marker (which
// per-pair FIFO delivers last) frees it.
type diffMsg struct {
	page int
	src  int
	seq  uint64
	runs []memory.Run
	buf  []byte // backing storage for the runs' data
}

func (d *diffMsg) wireSize() int {
	return diffMsgOverhead + memory.RunsBytes(d.runs) + runHeader*len(d.runs)
}

// runDep is one direct-diff run deposit (pooled, freed at delivery).
// Its run data aliases the owning flush's diffMsg buffer.
type runDep struct {
	owner *Node // origin node (pool + Space access)
	pg    int
	run   memory.Run
}

// verMark is a direct-diff version marker (pooled, freed at delivery);
// it carries the diffMsg to release once all runs have landed.
type verMark struct {
	origin *Node
	home   *Node
	pg     int
	seq    uint64
	d      *diffMsg // nil when the flush had no twin (version-only)
}

// sgDep is a pooled scatter-gather diff deposit: its ApplySG hook runs
// in the home NI's firmware when the last fragment lands, replacing the
// per-flush closure.
type sgDep struct {
	origin *Node
	home   *Node
	pg     int
	src    int
	seq    uint64
	d      *diffMsg
}

// ApplySG implements vmmc.SGApplier (engine context, home NI firmware —
// the home's logical process, so the consumed records go to the home's
// pools, not the origin's).
func (m *sgDep) ApplySG() {
	memory.ApplyRuns(m.origin.sys.Space.HomeCopy(m.pg), m.d.runs)
	m.home.bumpVersion(m.pg, m.src, m.seq)
	m.home.putDiff(m.d)
	m.home.putSGDep(m)
}

// closeInterval closes the node's open write interval: computes diffs
// for dirty pages, propagates them to homes, logs the interval, and (in
// DW and later) eagerly broadcasts the write notice to every node. It
// returns the new interval, or nil if nothing was written.
//
// p is the process doing the work: an application processor at a
// release/barrier (DD, NIL, barriers) or the Base protocol process at
// an incoming acquire.
func (n *Node) closeInterval(p *sim.Proc) *interval {
	// Serialize interval closes within the node: two processors (e.g. a
	// lock release and a barrier leader, or the Base protocol process
	// granting a lock) must not close overlapping intervals, and write
	// notices must leave the node in sequence order.
	n.ivGate.Acquire(p)
	if len(n.dirtyList) == 0 {
		n.ivGate.Release()
		return nil
	}
	// Snapshot and reset the dirty set before any yield: writes during
	// the flush start a fresh interval.
	slices.Sort(n.dirtyList)
	seq := n.vc[n.ID] + 1
	n.vc[n.ID] = seq
	iv := n.newInterval(seq, len(n.dirtyList))
	copy(iv.Pages, n.dirtyList)
	for _, pg := range n.dirtyList {
		n.dirtySet[pg] = false
	}
	n.dirtyList = n.dirtyList[:0]
	n.recordInterval(iv)

	for _, pg32 := range iv.Pages {
		n.flushPage(p, int(pg32), seq)
	}

	if n.sys.Feat.DW {
		n.broadcastNotice(p, iv)
	}
	n.ivGate.Release()
	return iv
}

// flushPage diffs one dirty page against its twin and propagates the
// changes to the page's home.
func (n *Node) flushPage(p *sim.Proc, pg int, seq uint64) {
	c := &n.sys.Cfg.Costs
	home := n.sys.Space.Home(pg)

	// A later fetch of this page (if our copy gets invalidated by some
	// other writer's notice) must not return a home version predating
	// this flush, or we would lose our own writes: record the
	// requirement against ourselves too.
	if row := n.need.row(pg); row[n.ID] < seq {
		row[n.ID] = seq
	}

	if home == n.ID {
		// Home writes go directly to the home copy; only the version
		// advances (visible to fetchers immediately after).
		n.bumpVersion(pg, n.ID, seq)
		return
	}
	var d *diffMsg
	if n.Mem.HasTwin(pg) {
		// Word-by-word comparison of the page against its twin.
		p.Sleep(sim.Time(float64(n.sys.Cfg.PageSize) * c.DiffPerByte))
		n.Acct.DiffCompute += sim.Time(float64(n.sys.Cfg.PageSize) * c.DiffPerByte)
		d = n.getDiff()
		d.page, d.src, d.seq = pg, n.ID, seq
		d.runs, d.buf = n.Mem.DiffCopy(pg, d.runs[:0], d.buf)
		n.Mem.DropTwin(pg)
		n.Acct.DiffBytes += uint64(memory.RunsBytes(d.runs))
	}
	// No twin: the page's modifications were already flushed (e.g. an
	// early flush when a notice invalidated a concurrently written
	// page); only the version needs to advance for this interval.

	if n.sys.Feat.DD {
		if d != nil && n.sys.Cfg.ScatterGather && len(d.runs) > 1 {
			// The scatter-gather extension (paper §3.3, not adopted
			// there): all runs travel as one gathered message that the
			// home NI scatters itself — one message instead of many, at
			// extra NI occupancy on both sides.
			sg := n.getSGDep()
			sg.origin, sg.home, sg.pg, sg.src, sg.seq, sg.d = n, n.sys.Nodes[home], pg, n.ID, seq, d
			n.ep.DepositGatheredTo(p, home, d.wireSize(), "sg-diff", sg)
			return
		}
		// Direct diffs: one remote deposit per contiguous run, applied
		// into the home copy by the home NI, then a version marker that
		// releases the diff storage (FIFO: it lands after every run).
		if d != nil {
			for i := range d.runs {
				rd := n.getRunDep()
				rd.owner, rd.pg, rd.run = n, pg, d.runs[i]
				n.ep.DepositTo(p, home, runHeader+len(rd.run.Data), "direct-diff", rd, runDepDel)
			}
		}
		n.sendVersionMarker(p, home, pg, seq, d)
		return
	}

	// Packed diff: single message, interrupt + protocol process applies
	// (sent even when empty so the home's version row advances under
	// protocol-process control and queued page requests are retried).
	if d == nil {
		d = n.getDiff()
		d.page, d.src, d.seq = pg, n.ID, seq
	}
	n.ep.SendInterrupt(p, home, d.wireSize(), vmmc.MsgDiff, d)
}

// closePageEarly closes a one-page interval for a dirty page that is
// about to be invalidated by an incoming write notice (a concurrent
// writer on the same page). It is a full interval close — own sequence
// number, log entry, and (DW) write notice — so that waiters keyed to
// any other interval's sequence are not satisfied prematurely and other
// nodes still learn about the flushed writes.
func (n *Node) closePageEarly(p *sim.Proc, pg int) {
	n.ivGate.Acquire(p)
	if !n.dirtySet[pg] || !n.Mem.HasTwin(pg) {
		n.ivGate.Release()
		return // a concurrent close already flushed it
	}
	n.dirtySet[pg] = false
	for i, v := range n.dirtyList {
		if int(v) == pg {
			last := len(n.dirtyList) - 1
			n.dirtyList[i] = n.dirtyList[last]
			n.dirtyList = n.dirtyList[:last]
			break
		}
	}
	seq := n.vc[n.ID] + 1
	n.vc[n.ID] = seq
	iv := n.newInterval(seq, 1)
	iv.Pages[0] = int32(pg)
	n.recordInterval(iv)
	n.flushPage(p, pg, seq)
	if n.sys.Feat.DW {
		n.broadcastNotice(p, iv)
	}
	n.ivGate.Release()
}

// sendVersionMarker deposits the "diffs for (pg, src, seq) are all
// ahead of this message" marker; per-pair FIFO ordering guarantees the
// run deposits land first. d (if any) is the diff storage the marker's
// delivery releases.
func (n *Node) sendVersionMarker(p *sim.Proc, home, pg int, seq uint64, d *diffMsg) {
	vm := n.getVerMark()
	vm.origin, vm.home, vm.pg, vm.seq, vm.d = n, n.sys.Nodes[home], pg, seq, d
	n.ep.DepositTo(p, home, 16, "diff-done", vm, verMarkDel)
}

// Packed diff application runs on the home's protocol machine (Base
// path): see pmDiffApply/pmRetryLoop in handler.go, which also retry
// queued page requests after the version advances.

// bumpVersion advances the applied-version row for a page homed here
// and wakes local accessors waiting on the home copy. Queued Base page
// requests are retried only by the protocol machine's diff body — the
// sole context where they can become answerable.
func (n *Node) bumpVersion(pg, src int, seq uint64) {
	if row := n.homeVer.row(pg); row[src] < seq {
		row[src] = seq
	}
	n.homeWaitQ[pg].WakeAll()
}

// broadcastNotice eagerly deposits the interval's write notice into
// every other node's protocol data structures (the DW mechanism). With
// the NI-broadcast extension (paper §5), the host posts once and the
// fabric replicates.
func (n *Node) broadcastNotice(p *sim.Proc, iv *interval) {
	if n.sys.Cfg.Collectives && n.sys.Cfg.Nodes > 1 {
		// NI-firmware tree broadcast. Once collectives are on, EVERY
		// notice from every source takes the tree, regardless of size
		// (large intervals are fragmented inside the collective layer):
		// the arrival counters in depositNotice require per-source FIFO
		// order, which holds within the flat resource chain and within a
		// source's fixed tree, but not across a mix of the two.
		n.ep.NI().ColBroadcast(p, iv.wireSize(), "notice", iv, &n.sys.noticeDel)
		return
	}
	if n.sys.Cfg.NIBroadcast && iv.wireSize() <= n.sys.Cfg.MaxPacket {
		n.ep.DepositBroadcastTo(p, iv.wireSize(), "notice", iv, &n.sys.noticeDel)
		return
	}
	for dst := 0; dst < n.sys.Cfg.Nodes; dst++ {
		if dst == n.ID {
			continue
		}
		n.ep.DepositTo(p, dst, iv.wireSize(), "notice", iv, &n.sys.noticeDel)
	}
}

// depositNotice records an eagerly deposited write notice (engine
// context, NI deposit: no host time).
func (n *Node) depositNotice(iv *interval) {
	n.recordInterval(iv)
	// Per-pair FIFO delivery means notices from one source arrive in
	// seq order, so the arrival counter equals the highest arrived seq.
	n.arrived[iv.Src].Add(1)
}

// waitNotices blocks until every source's notices up to target have
// been deposited locally (the protocol "flags" of §2).
func (n *Node) waitNotices(p *sim.Proc, target []uint64) {
	for src, want := range target {
		if src == n.ID {
			continue
		}
		n.arrived[src].WaitFor(p, want)
	}
}

// applyUpTo applies invalidations for all logged intervals with
// seq <= target[src] that this node has not yet applied, batching the
// mprotect cost. Dirty pages being invalidated are flushed first
// (concurrent-writer case). Returns the mprotect time charged.
func (n *Node) applyUpTo(p *sim.Proc, target []uint64) sim.Time {
	invalidate := n.getInv()
	for src := range target {
		if src == n.ID {
			continue
		}
		for seq := n.vc[src] + 1; seq <= target[src]; seq++ {
			iv := n.log[src][seq-1]
			if iv == nil {
				panic("core: applying unknown interval")
			}
			// Flush concurrent local modifications before invalidating
			// (skipped when the copy-version check will keep the copy
			// valid anyway).
			for _, pg32 := range iv.Pages {
				pg := int(pg32)
				if n.copyVerSet[pg] && n.copyVer.row(pg)[iv.Src] >= seq {
					continue
				}
				if n.dirtySet[pg] && n.sys.Space.Home(pg) != n.ID && n.Mem.HasTwin(pg) {
					n.closePageEarly(p, pg)
				}
			}
			n.applyIntervalMeta(iv, &invalidate)
		}
	}
	if len(invalidate) == 0 {
		n.putInv(invalidate)
		return 0
	}
	c := &n.sys.Cfg.Costs
	cost, calls := memory.MprotectCost(invalidate, c.MprotectBase, c.MprotectPerPage)
	p.Sleep(cost)
	n.Acct.Mprotect += cost
	n.Acct.MprotectOps += uint64(calls)
	n.putInv(invalidate)
	return cost
}
