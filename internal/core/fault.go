package core

import (
	"genima/internal/memory"
	"genima/internal/sim"
	"genima/internal/vmmc"
)

// Page fault handling: read faults fetch the page from its home (via an
// interrupt-serviced request in Base, via NI remote fetch with retry in
// RF and later); write faults additionally create a twin. Faults are the
// "Data wait time" component of the paper's breakdowns.

// pendingPage is a queued Base-protocol page request at the home that
// cannot be answered until pending diffs arrive.
type pendingPage struct {
	src int
	msg *pageReqMsg
}

// fetchPayload is what an NI remote fetch returns: a snapshot of the
// home copy and the home's applied-version row at snapshot time. Pooled;
// the requester releases it once the snapshot is consumed.
type fetchPayload struct {
	page int
	data []byte
	ver  []uint64
}

// pageReqMsg is the Base-protocol page request record. It is pooled and
// doubles as the reply destination: the home writes the snapshot into
// data/ver at reply time and delivery raises done (the requester reads
// the fields only after done, so writing them early is safe).
type pageReqMsg struct {
	page int
	need []uint64 // requester's requirement row (copied at send time)
	done sim.Flag
	data []byte   // reply: page snapshot (from the home's buffer pool)
	ver  []uint64 // reply: home version row at snapshot time
}

const (
	pageReqOverhead   = 32 // request header bytes
	pageReplyOverhead = 32 // reply header + version row
	diffMsgOverhead   = 16
	runHeader         = 8
	lockMsgOverhead   = 16
)

// EnsureReadable makes pages [first, last] readable by the calling
// processor, fetching any missing ones. All blocking time is virtual
// (the caller's harness attributes the elapsed time to Data wait).
func (n *Node) EnsureReadable(p *sim.Proc, first, last int) {
	for pg := first; pg <= last; pg++ {
		n.faultIn(p, pg)
	}
}

// EnsureWritable makes pages [first, last] writable: readable plus
// twinned (non-home pages) and registered in the open interval. The
// sleeps inside (mprotect, twin copy) yield the processor; another
// processor of the node may invalidate the page meanwhile (applying a
// notice at its own acquire), so every step re-checks page state.
func (n *Node) EnsureWritable(p *sim.Proc, first, last int) {
	c := &n.sys.Cfg.Costs
	for pg := first; pg <= last; pg++ {
		home := n.sys.Space.Home(pg) == n.ID
		for {
			n.faultIn(p, pg)
			dirtyAlready := n.dirtySet[pg]
			if home {
				if !dirtyAlready {
					// Home pages are written in place; the write fault
					// still costs a protection change for tracking.
					p.Sleep(c.MprotectBase)
					n.Acct.Mprotect += c.MprotectBase
					n.Acct.MprotectOps++
					n.markDirty(pg)
				}
				break
			}
			if dirtyAlready && n.Mem.HasTwin(pg) && n.state[pg] == pageValid {
				break
			}
			if !n.Mem.HasTwin(pg) {
				// Write fault: mprotect to RW plus twin creation.
				p.Sleep(c.MprotectBase)
				n.Acct.Mprotect += c.MprotectBase
				n.Acct.MprotectOps++
				p.Sleep(sim.Time(float64(n.sys.Cfg.PageSize) * c.TwinCopyPerByte))
				if n.state[pg] != pageValid {
					continue // invalidated during the sleeps: refetch first
				}
				n.Mem.MakeTwin(pg)
				n.markDirty(pg)
				break
			}
			// A twin exists but the page is not (or no longer cleanly)
			// in the dirty set: an interval close snapshotted the dirty
			// set and is mid-flush on this page. Wait for the close to
			// finish — the twin will be consumed — then retry.
			n.ivGate.Acquire(p)
			n.ivGate.Release()
		}
	}
}

// faultIn ensures one page is present and readable at this node,
// re-checking after every blocking step (a concurrent processor's
// acquire may invalidate the page while this one sleeps).
func (n *Node) faultIn(p *sim.Proc, page int) {
	if n.sys.Space.Home(page) == n.ID {
		// The home copy is the master; a local access must only wait
		// until the diffs this node has seen notices for are applied.
		for !n.needSatisfied(page, n.homeVer.row(page)) {
			n.homeWaitQ[page].Wait(p)
		}
		return
	}
	c := &n.sys.Cfg.Costs
	for n.state[page] != pageValid {
		// Collapse concurrent faults on the same page within the node.
		if n.fetching[page] {
			n.fetchQ[page].Wait(p)
			continue
		}
		n.fetching[page] = true

		var data []byte
		if n.sys.Feat.RF {
			data = n.fetchRF(p, page)
		} else {
			data = n.fetchBase(p, page)
		}
		n.installFetched(page, data)
		n.Mem.Pool().Put(data) // snapshot consumed: recycle the buffer
		n.state[page] = pageValid
		// Map the fresh page read-only.
		p.Sleep(c.MprotectBase)
		n.Acct.Mprotect += c.MprotectBase
		n.Acct.MprotectOps++
		n.Acct.PageFetches++

		n.fetching[page] = false
		n.fetchQ[page].WakeAll()
	}
}

// installFetched installs a fetched page. If the page carries unflushed
// local modifications (it was re-dirtied while an interval close or an
// early flush was in progress and then invalidated), those words are
// re-applied on top of the fetched data so they are not lost — the
// multiple-writer guarantee across a refetch. The run scratch is reused
// across calls (no yields happen while it is live).
func (n *Node) installFetched(page int, data []byte) {
	if !n.Mem.HasTwin(page) {
		n.Mem.InstallCopy(page, data)
		return
	}
	n.modsRuns, n.modsBuf = n.Mem.DiffCopy(page, n.modsRuns[:0], n.modsBuf)
	n.Mem.DropTwin(page)
	n.Mem.InstallCopy(page, data)
	n.Mem.MakeTwin(page)
	memory.ApplyRuns(n.Mem.Page(page), n.modsRuns)
}

// fetchBase is the interrupt path: request -> home protocol process ->
// reply deposit. The home queues the request if diffs are pending. The
// fetched snapshot's version row is recorded in copyVer before the
// pooled request is released.
func (n *Node) fetchBase(p *sim.Proc, page int) []byte {
	home := n.sys.Space.Home(page)
	req := n.getPageReq()
	req.page = page
	for {
		// Another processor in this node may raise the page's
		// requirements (by applying notices) while a request is in
		// flight; each (re-)request snapshots the current row.
		copy(req.need, n.need.row(page))
		n.ep.SendInterrupt(p, home, pageReqOverhead+8*len(req.need), vmmc.MsgPageReq, req)
		req.done.Wait(p)
		if n.needSatisfied(page, req.ver) {
			break
		}
		n.Acct.FetchRetries++
		n.Mem.Pool().Put(req.data) // stale snapshot: recycle
		req.done.Reset()
	}
	copy(n.copyVer.row(page), req.ver)
	n.copyVerSet[page] = true
	data := req.data
	n.putPageReq(req)
	return data
}

// fetchRF is the NI remote-fetch path with requester retry on stale
// versions (no home processor involvement).
func (n *Node) fetchRF(p *sim.Proc, page int) []byte {
	home := n.sys.Space.Home(page)
	size := n.sys.Cfg.PageSize + pageReplyOverhead
	for {
		rep := n.ep.RemoteFetch(p, home, size, "page-req", "page-reply", page)
		pl := rep.Payload.(*fetchPayload)
		if n.needSatisfied(page, pl.ver) {
			copy(n.copyVer.row(page), pl.ver)
			n.copyVerSet[page] = true
			data := pl.data
			n.putFetchPayload(pl)
			return data
		}
		n.Acct.FetchRetries++
		n.Mem.Pool().Put(pl.data) // stale snapshot: recycle
		n.putFetchPayload(pl)
		p.Sleep(n.sys.Cfg.Costs.FetchRetryBackoff)
	}
}

// serveFetch runs in the home NI's firmware: snapshot the page and its
// version row into a pooled payload (released by the requester). No
// host time is charged.
func (n *Node) serveFetch(req vmmc.FetchReq) vmmc.FetchReply {
	page := req.Tag
	pl := n.getFetchPayload()
	pl.page = page
	pl.data = n.Mem.Pool().Get()
	copy(pl.data, n.sys.Space.HomeCopy(page))
	copy(pl.ver, n.homeVer.row(page))
	return vmmc.FetchReply{
		Payload: pl,
		Size:    n.sys.Cfg.PageSize + pageReplyOverhead,
	}
}

// Base page-request servicing (handle, reply, pending retry) lives on
// the protocol machine: see pmDispatch/startReply/pmRetryLoop in
// handler.go.
