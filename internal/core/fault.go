package core

import (
	"genima/internal/memory"
	"genima/internal/sim"
	"genima/internal/vmmc"
)

// Page fault handling: read faults fetch the page from its home (via an
// interrupt-serviced request in Base, via NI remote fetch with retry in
// RF and later); write faults additionally create a twin. Faults are the
// "Data wait time" component of the paper's breakdowns.

// pendingPage is a queued Base-protocol page request at the home that
// cannot be answered until pending diffs arrive.
type pendingPage struct {
	src int
	msg *pageReqMsg
}

// fetchPayload is what a page fetch returns: a snapshot of the home copy
// and the home's applied-version row at snapshot time.
type fetchPayload struct {
	page int
	data []byte
	ver  []uint64
}

// pageReqMsg is the Base-protocol page request payload.
type pageReqMsg struct {
	page int
	need []uint64
	done *sim.Flag
	data *fetchPayload // reply destination (deposited by home)
}

const (
	pageReqOverhead   = 32 // request header bytes
	pageReplyOverhead = 32 // reply header + version row
	diffMsgOverhead   = 16
	runHeader         = 8
	lockMsgOverhead   = 16
)

// EnsureReadable makes pages [first, last] readable by the calling
// processor, fetching any missing ones. All blocking time is virtual
// (the caller's harness attributes the elapsed time to Data wait).
func (n *Node) EnsureReadable(p *sim.Proc, first, last int) {
	for pg := first; pg <= last; pg++ {
		n.faultIn(p, pg)
	}
}

// EnsureWritable makes pages [first, last] writable: readable plus
// twinned (non-home pages) and registered in the open interval. The
// sleeps inside (mprotect, twin copy) yield the processor; another
// processor of the node may invalidate the page meanwhile (applying a
// notice at its own acquire), so every step re-checks page state.
func (n *Node) EnsureWritable(p *sim.Proc, first, last int) {
	c := &n.sys.Cfg.Costs
	for pg := first; pg <= last; pg++ {
		home := n.sys.Space.Home(pg) == n.ID
		for {
			n.faultIn(p, pg)
			_, dirtyAlready := n.dirty[pg]
			if home {
				if !dirtyAlready {
					// Home pages are written in place; the write fault
					// still costs a protection change for tracking.
					p.Sleep(c.MprotectBase)
					n.Acct.Mprotect += c.MprotectBase
					n.Acct.MprotectOps++
					n.dirty[pg] = struct{}{}
				}
				break
			}
			if dirtyAlready && n.Mem.HasTwin(pg) && n.state[pg] == pageValid {
				break
			}
			if !n.Mem.HasTwin(pg) {
				// Write fault: mprotect to RW plus twin creation.
				p.Sleep(c.MprotectBase)
				n.Acct.Mprotect += c.MprotectBase
				n.Acct.MprotectOps++
				p.Sleep(sim.Time(float64(n.sys.Cfg.PageSize) * c.TwinCopyPerByte))
				if n.state[pg] != pageValid {
					continue // invalidated during the sleeps: refetch first
				}
				n.Mem.MakeTwin(pg)
				n.dirty[pg] = struct{}{}
				break
			}
			// A twin exists but the page is not (or no longer cleanly)
			// in the dirty set: an interval close snapshotted the dirty
			// set and is mid-flush on this page. Wait for the close to
			// finish — the twin will be consumed — then retry.
			n.ivGate.Acquire(p)
			n.ivGate.Release()
		}
	}
}

// faultIn ensures one page is present and readable at this node,
// re-checking after every blocking step (a concurrent processor's
// acquire may invalidate the page while this one sleeps).
func (n *Node) faultIn(p *sim.Proc, page int) {
	if n.sys.Space.Home(page) == n.ID {
		// The home copy is the master; a local access must only wait
		// until the diffs this node has seen notices for are applied.
		for !n.needSatisfied(page, n.homeVer[page]) {
			wq := n.homeWait[page]
			if wq == nil {
				wq = &sim.WaitQ{}
				n.homeWait[page] = wq
			}
			wq.Wait(p)
		}
		return
	}
	c := &n.sys.Cfg.Costs
	for n.state[page] != pageValid {
		// Collapse concurrent faults on the same page within the node.
		if f := n.inFlight[page]; f != nil {
			f.Wait(p)
			continue
		}
		f := &sim.Flag{}
		n.inFlight[page] = f

		var data []byte
		var ver []uint64
		if n.sys.Feat.RF {
			data, ver = n.fetchRF(p, page)
		} else {
			data, ver = n.fetchBase(p, page)
		}
		n.installFetched(page, data)
		n.Mem.Pool().Put(data) // snapshot consumed: recycle the buffer
		n.copyVer[page] = ver
		n.state[page] = pageValid
		// Map the fresh page read-only.
		p.Sleep(c.MprotectBase)
		n.Acct.Mprotect += c.MprotectBase
		n.Acct.MprotectOps++
		n.Acct.PageFetches++

		delete(n.inFlight, page)
		f.Set()
	}
}

// installFetched installs a fetched page. If the page carries unflushed
// local modifications (it was re-dirtied while an interval close or an
// early flush was in progress and then invalidated), those words are
// re-applied on top of the fetched data so they are not lost — the
// multiple-writer guarantee across a refetch.
func (n *Node) installFetched(page int, data []byte) {
	if !n.Mem.HasTwin(page) {
		n.Mem.InstallCopy(page, data)
		return
	}
	mods := memory.CloneRuns(n.Mem.Diff(page))
	n.Mem.DropTwin(page)
	n.Mem.InstallCopy(page, data)
	n.Mem.MakeTwin(page)
	memory.ApplyRuns(n.Mem.Page(page), mods)
}

// fetchBase is the interrupt path: request -> home protocol process ->
// reply deposit. The home queues the request if diffs are pending.
func (n *Node) fetchBase(p *sim.Proc, page int) ([]byte, []uint64) {
	home := n.sys.Space.Home(page)
	for {
		req := &pageReqMsg{
			page: page,
			need: append([]uint64(nil), n.need[page]...),
			done: &sim.Flag{},
			data: &fetchPayload{},
		}
		n.ep.SendInterrupt(p, home, pageReqOverhead+8*len(req.need), "page-req", req)
		req.done.Wait(p)
		// Another processor in this node may have raised the page's
		// requirements (by applying notices) while the request was in
		// flight; re-request if the reply no longer satisfies them.
		if n.needSatisfied(page, req.data.ver) {
			return req.data.data, req.data.ver
		}
		n.Acct.FetchRetries++
		n.Mem.Pool().Put(req.data.data) // stale snapshot: recycle
	}
}

// fetchRF is the NI remote-fetch path with requester retry on stale
// versions (no home processor involvement).
func (n *Node) fetchRF(p *sim.Proc, page int) ([]byte, []uint64) {
	home := n.sys.Space.Home(page)
	size := n.sys.Cfg.PageSize + pageReplyOverhead
	for {
		rep := n.ep.RemoteFetch(p, home, size, "page", page)
		pl := rep.Payload.(*fetchPayload)
		if n.needSatisfied(page, pl.ver) {
			return pl.data, pl.ver
		}
		n.Acct.FetchRetries++
		n.Mem.Pool().Put(pl.data) // stale snapshot: recycle
		p.Sleep(n.sys.Cfg.Costs.FetchRetryBackoff)
	}
}

// serveFetch runs in the home NI's firmware: snapshot the page and its
// version row. No host time is charged.
func (n *Node) serveFetch(req vmmc.FetchReq) vmmc.FetchReply {
	page := req.Tag.(int)
	data := n.Mem.Pool().Get()
	copy(data, n.sys.Space.HomeCopy(page))
	ver := append([]uint64(nil), n.homeVer[page]...)
	return vmmc.FetchReply{
		Payload: &fetchPayload{page: page, data: data, ver: ver},
		Size:    n.sys.Cfg.PageSize + pageReplyOverhead,
	}
}

// handlePageReq services a Base page request on the home's protocol
// process (process context).
func (n *Node) handlePageReq(p *sim.Proc, src int, req *pageReqMsg) {
	if !vecCovered(req.need, n.homeVer[req.page]) {
		n.pendingReqs[req.page] = append(n.pendingReqs[req.page], pendingPage{src: src, msg: req})
		return
	}
	n.replyPage(p, src, req)
}

func (n *Node) replyPage(p *sim.Proc, src int, req *pageReqMsg) {
	data := n.Mem.Pool().Get()
	copy(data, n.sys.Space.HomeCopy(req.page))
	ver := append([]uint64(nil), n.homeVer[req.page]...)
	n.ep.Deposit(p, src, n.sys.Cfg.PageSize+pageReplyOverhead, "page-reply", nil, func() {
		req.data.data = data
		req.data.ver = ver
		req.done.Set()
	})
}

// retryPending re-checks queued page requests after a diff application
// at the home (process context: the Base protocol process).
func (n *Node) retryPending(p *sim.Proc, page int) {
	reqs := n.pendingReqs[page]
	if len(reqs) == 0 {
		return
	}
	var keep []pendingPage
	for _, r := range reqs {
		if vecCovered(r.msg.need, n.homeVer[page]) {
			n.replyPage(p, r.src, r.msg)
		} else {
			keep = append(keep, r)
		}
	}
	n.pendingReqs[page] = keep
}

// vecCovered reports whether have >= want element-wise.
func vecCovered(want, have []uint64) bool {
	for i, w := range want {
		if have[i] < w {
			return false
		}
	}
	return true
}
