package core

// Flat per-page version-vector storage. The protocol keeps three
// page-indexed vector tables (need, copyVer, homeVer); storing them as
// [][]uint64 costs one allocation and one pointer indirection per page.
// vecTable packs all rows into a single backing array indexed
// page*nodes, so table setup is one allocation and row access is pure
// arithmetic.

// vecTable is a dense pages x nodes matrix of interval sequence numbers.
type vecTable struct {
	nodes int
	a     []uint64
}

func newVecTable(pages, nodes int) vecTable {
	return vecTable{nodes: nodes, a: make([]uint64, pages*nodes)}
}

// row returns page pg's vector. The full slice expression caps the row
// so a stray append cannot spill into the neighbouring page's row.
func (t *vecTable) row(pg int) []uint64 {
	off := pg * t.nodes
	return t.a[off : off+t.nodes : off+t.nodes]
}

// vecMergeMax raises dst to the element-wise max of dst and src, in
// place (no scratch allocation).
func vecMergeMax(dst, src []uint64) {
	if len(dst) != len(src) {
		panic("core: vecMergeMax length mismatch")
	}
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// vecCovered reports whether have >= want element-wise.
func vecCovered(want, have []uint64) bool {
	for i, w := range want {
		if have[i] < w {
			return false
		}
	}
	return true
}
