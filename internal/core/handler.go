package core

import (
	"fmt"

	"genima/internal/sim"
	"genima/internal/vmmc"
)

// The floating protocol process (HLRC-SMP): one per node, scheduled by
// interrupts, servicing incoming asynchronous protocol requests. In the
// Base protocol it handles page requests, packed diff applications, lock
// chain operations, and barrier control; each GeNIMA mechanism removes a
// class of messages from this loop until (GeNIMA) it receives none.

// localMsg wraps a request a node sends to its own protocol process
// (directory lookups at the local home) — no interrupt, no network.
func localMsg(kind string, payload any) vmmc.Msg {
	return vmmc.Msg{Src: -1, Kind: kind, Size: 0, Payload: payload}
}

func (n *Node) protoLoop(p *sim.Proc) {
	c := &n.sys.Cfg.Costs
	for {
		m := n.mb.Recv(p)
		p.Sleep(c.HandlerFixed)
		if m.Src >= 0 {
			n.Acct.Interrupts++
		}
		switch m.Kind {
		case "page-req":
			n.handlePageReq(p, m.Src, m.Payload.(*pageReqMsg))
		case "diff":
			n.applyPackedDiff(p, m.Payload.(*diffMsg))
		case "lock-req":
			n.handleLockReq(p, m.Payload.(*lockReqMsg))
		case "lock-fwd":
			req := m.Payload.(*lockReqMsg)
			n.handleLockFwd(p, req.id, &remoteReq{requester: req.requester, reqVC: req.reqVC})
		case "bar-arrive":
			n.handleBarArrive(p, m.Payload.(*barArriveMsg))
		case "bar-release":
			n.handleBarRelease(m.Payload.(*barReleaseMsg))
		default:
			panic(fmt.Sprintf("core: protocol process got unknown message %q", m.Kind))
		}
	}
}
