package core

import (
	"fmt"
	"slices"

	"genima/internal/memory"
	"genima/internal/nic"
	"genima/internal/sim"
	"genima/internal/vmmc"
)

// The floating protocol process (HLRC-SMP): one per node, scheduled by
// interrupts, servicing incoming asynchronous protocol requests. In the
// Base protocol it handles page requests, packed diff applications, lock
// chain operations, and barrier control; each GeNIMA mechanism removes a
// class of messages from this loop until (GeNIMA) it receives none.
//
// The process is a resumable sim.Handler state machine, not a goroutine:
// it holds no stack across virtual-time waits, so a node's protocol
// engine costs zero goroutines and zero allocations per message. Every
// blocking step of the old goroutine loop (the fixed handler cost, the
// per-byte diff application cost, the per-packet post overhead, the
// post-queue and interval-gate admissions) is a scheduled resumption
// with the same event times and ordering, so simulation results are
// bit-identical to the goroutine form. Compute processors remain
// goroutines: they run application code with real data accesses
// interleaved into protocol calls, which a state machine cannot express
// without inverting the applications themselves.
//
// The machine duplicates the closeInterval/flushPage/grantRemote logic
// of diff.go and locks.go in continuation-passing style (states below);
// the two copies must evolve together. The proc versions remain the
// release/barrier paths; the machine versions run only for an incoming
// remote acquire at the previous owner.

// localMsg wraps a request a node sends to its own protocol process
// (directory lookups at the local home) — no interrupt, no network.
func localMsg(kind vmmc.MsgKind, payload any) vmmc.Msg {
	return vmmc.Msg{Src: -1, Kind: kind, Payload: payload}
}

// pmState is a resume point of the protocol machine.
type pmState uint8

const (
	pmIdle       pmState = iota
	pmWake               // a message arrived while idle: start a dispatch cycle
	pmDispatch           // fixed handler cost paid: run the message body
	pmBodyDone           // body finished: next queued message or go idle
	pmDiffApply          // MsgDiff: per-byte handler cost paid, apply the runs
	pmRetryLoop          // re-check queued page requests after a diff
	pmCIGate             // closeInterval: acquire the interval gate
	pmCIPage             // closeInterval: flush the next dirty page
	pmFPDiffed           // flushPage: diff-computation sleep finished
	pmFPRun              // flushPage (DD): send the next run deposit
	pmCINotice           // closeInterval (DW): per-destination notice sends
	pmCIDone             // closeInterval: release the gate
	pmGrantSend          // grantRemote: build and send the grant
	pmGrantSent          // grantRemote: grant posted, wake local waiters
	pmBarRel             // barrier master: send the next release
	pmSendSleep          // send submachine: per-packet post overhead
	pmSendGate           // send submachine: post-queue admission + launch
	pmBcastSleep         // broadcast submachine: post overhead
	pmBcastGate          // broadcast submachine: admission + launch
	pmColSleep           // collective-tree broadcast: post overhead
	pmColGate            // collective-tree broadcast: admission + hand to NI
)

// protoMachine is the per-node protocol process. It implements
// vmmc.MsgSink (message arrival), sim.Handler (scheduled resumption)
// and sim.Waiter (gate wakeup).
type protoMachine struct {
	n  *Node
	st pmState

	// Incoming message queue: a head-indexed slice reused in place
	// (the machine analogue of sim.Mailbox).
	q    []vmmc.Msg
	head int

	m vmmc.Msg // message whose fixed handler cost is being paid

	// Gate admission accounting, mirroring Gate.Acquire (the machine
	// blocks on at most one gate at a time).
	gateBlocked bool
	gateT0      sim.Time

	// Send submachine: one protocol message split into wire packets,
	// each paying the post overhead and the post-queue admission.
	sendDst     int
	sendRem     int
	sendLabel   string
	sendPayload any
	sendTo      nic.Deliverer
	sendIntr    bool // interrupt-class: Meta + interrupt deliverer on the last packet
	sendMeta    int
	sendSG      bool // scatter-gather: firmware-handled packets
	sendRet     pmState

	// Diff being applied (MsgDiff body) or flushed (closeInterval).
	d *diffMsg

	// Pending page-request retry after a diff application.
	retryPage         int
	retryReqs         []pendingPage
	retryI, retryKeep int

	// Lock grant in progress (the machine's closeInterval caller).
	lkReq *lockReqMsg
	lk    *nodeLock

	// closeInterval / flushPage continuation state.
	ivCur     *interval
	ivSeq     uint64
	pageIdx   int
	fpPg      int
	fpHome    int
	runIdx    int
	noticeDst int

	// Barrier release fan-out (master node).
	barRel *barReleaseMsg
	barDst int
}

// HandleMsg implements vmmc.MsgSink: an interrupt-class message arrives
// in engine context.
func (pm *protoMachine) HandleMsg(m vmmc.Msg) { pm.post(m) }

// post queues a message and, when the machine is idle, schedules the
// dispatch cycle at the current time (the counterpart of Mailbox.Send
// waking the parked goroutine).
func (pm *protoMachine) post(m vmmc.Msg) {
	pm.q = append(pm.q, m)
	if pm.st != pmIdle {
		return
	}
	pm.st = pmWake
	eng := pm.n.eng
	now := eng.Now()
	eng.AtHandler(now, now, pm)
}

// Unpark implements sim.Waiter: a gate the machine was parked in has a
// free slot to retry for.
func (pm *protoMachine) Unpark() {
	eng := pm.n.eng
	now := eng.Now()
	eng.AtHandler(now, now, pm)
}

// Run implements sim.Handler.
func (pm *protoMachine) Run(_, _ sim.Time) { pm.step() }

func (pm *protoMachine) pop() vmmc.Msg {
	m := pm.q[pm.head]
	pm.q[pm.head] = vmmc.Msg{}
	pm.head++
	if pm.head == len(pm.q) {
		pm.q = pm.q[:0]
		pm.head = 0
	}
	return m
}

// sleep moves to next after d of virtual time. It returns true when an
// event was scheduled and the machine must return to the engine; d == 0
// continues inline, exactly like Proc.Sleep(0).
func (pm *protoMachine) sleep(d sim.Time, next pmState) bool {
	pm.st = next
	if d == 0 {
		return false
	}
	eng := pm.n.eng
	t := eng.Now() + d
	eng.AtHandler(t, t, pm)
	return true
}

// acquireGate mirrors Gate.Acquire for a machine: true when the slot is
// claimed, false when the machine parked in the gate's queue (it
// resumes in the same state and retries).
func (pm *protoMachine) acquireGate(g *sim.Gate) bool {
	now := pm.n.eng.Now()
	if g.TryAcquire() {
		if pm.gateBlocked {
			pm.gateBlocked = false
			g.BlockedTime += now - pm.gateT0
		}
		return true
	}
	if !pm.gateBlocked {
		pm.gateBlocked = true
		pm.gateT0 = now
		g.Blocked++
	}
	g.Enqueue(pm)
	return false
}

// startSend begins the send submachine: size bytes to dst as MaxPacket
// legs, the typed deliverer riding the last packet. The machine resumes
// at ret once the last packet is launched.
func (pm *protoMachine) startSend(dst, size int, label string, payload any, to nic.Deliverer, ret pmState) {
	pm.sendDst, pm.sendRem, pm.sendLabel = dst, size, label
	pm.sendPayload, pm.sendTo = payload, to
	pm.sendIntr, pm.sendSG = false, false
	pm.sendRet = ret
	pm.st = pmSendSleep
}

// startSendInterrupt is startSend for interrupt-class messages (the
// machine form of SendInterrupt).
func (pm *protoMachine) startSendInterrupt(dst, size int, kind vmmc.MsgKind, payload any, ret pmState) {
	pm.startSend(dst, size, kind.String(), payload, nil, ret)
	pm.sendIntr = true
	pm.sendMeta = int(kind)
}

// startSendSG is startSend for scatter-gather deposits (the machine
// form of DepositGatheredTo).
func (pm *protoMachine) startSendSG(dst, size int, label string, apply vmmc.SGApplier, ret pmState) {
	pm.startSend(dst, size, label, apply, nil, ret)
	pm.sendSG = true
}

// startReply snapshots the home copy and version row into the pooled
// request (the reply rides the request record) and starts the reply
// deposit.
func (pm *protoMachine) startReply(src int, req *pageReqMsg, ret pmState) {
	n := pm.n
	req.data = n.Mem.Pool().Get()
	copy(req.data, n.sys.Space.HomeCopy(req.page))
	copy(req.ver, n.homeVer.row(req.page))
	pm.startSend(src, n.sys.Cfg.PageSize+pageReplyOverhead, "page-reply", req, pageReplyDel, ret)
}

// lockFwd services a lock request at the (previous) owner: grant it now
// if the lock is cached and free, otherwise park the requester for the
// next local release.
func (pm *protoMachine) lockFwd(req *lockReqMsg) {
	n := pm.n
	lk := n.lock(req.id)
	if lk.cached && !lk.held {
		// Grant: revoke the cache entry before any yield so no local
		// processor grabs the lock mid-transfer, then close the interval
		// and send the grant (pmCIGate .. pmGrantSent).
		pm.lkReq, pm.lk = req, lk
		lk.cached = false
		pm.st = pmCIGate
		return
	}
	if lk.pendingReq {
		panic(fmt.Sprintf("core: lock %d at node %d already has a pending remote requester", req.id, n.ID))
	}
	lk.pendingReq = true
	lk.pendingRequester = req.requester
	if lk.pendingVC == nil {
		lk.pendingVC = make([]uint64, n.sys.Cfg.Nodes)
	}
	copy(lk.pendingVC, req.reqVC)
	n.putLockReq(req)
	pm.st = pmBodyDone
}

// barArrive aggregates a barrier arrival at the master; the last
// arrival builds the release and starts the fan-out.
func (pm *protoMachine) barArrive(m *barArriveMsg) {
	n := pm.n
	e := n.barEpochAt(m.seq)
	seq := m.seq
	e.mArrived++
	vecMergeMax(e.mVC, m.vc)
	e.mIvs = append(e.mIvs, m.intervals...)
	n.putBarArr(m) // aggregated; intervals are arena-backed
	if e.mArrived < n.sys.Cfg.Nodes {
		pm.st = pmBodyDone
		return
	}
	rel := n.getBarRel()
	rel.seq = seq
	copy(rel.vc, e.mVC)
	// Hand the interval union to the release record by swapping slices:
	// the epoch keeps the (empty) old backing for its next reuse.
	rel.intervals, e.mIvs = e.mIvs, rel.intervals[:0]
	rel.refs = int32(n.sys.Cfg.Nodes)
	pm.barRel, pm.barDst = rel, 0
	pm.st = pmBarRel
}

// fpRoute starts a flushed diff's trip to the home, mirroring
// flushPage's propagation choice for the DD / scatter-gather / packed
// paths. pm.d is nil when the page's twin was already consumed
// (version-only flush).
func (pm *protoMachine) fpRoute() {
	n := pm.n
	d := pm.d
	pg, home, seq := pm.fpPg, pm.fpHome, pm.ivSeq
	if n.sys.Feat.DD {
		if d != nil && n.sys.Cfg.ScatterGather && len(d.runs) > 1 {
			sg := n.getSGDep()
			sg.origin, sg.home, sg.pg, sg.src, sg.seq, sg.d = n, n.sys.Nodes[home], pg, n.ID, seq, d
			pm.d = nil
			pm.startSendSG(home, d.wireSize(), "sg-diff", sg, pmCIPage)
			return
		}
		if d != nil {
			pm.runIdx = 0
			pm.st = pmFPRun
			return
		}
		pm.startVerMarker(pmCIPage)
		return
	}
	// Packed diff (sent even when empty so the home's version row
	// advances under protocol-process control).
	if d == nil {
		d = n.getDiff()
		d.page, d.src, d.seq = pg, n.ID, seq
	}
	pm.d = nil
	pm.startSendInterrupt(home, d.wireSize(), vmmc.MsgDiff, d, pmCIPage)
}

// startVerMarker sends the direct-diff version marker, which releases
// pm.d (if any) at delivery.
func (pm *protoMachine) startVerMarker(ret pmState) {
	n := pm.n
	vm := n.getVerMark()
	vm.origin, vm.home, vm.pg, vm.seq, vm.d = n, n.sys.Nodes[pm.fpHome], pm.fpPg, pm.ivSeq, pm.d
	pm.d = nil
	pm.startSend(pm.fpHome, 16, "diff-done", vm, verMarkDel, ret)
}

// step runs the machine until it parks (idle, sleeping, or gated).
func (pm *protoMachine) step() {
	n := pm.n
	c := &n.sys.Cfg.Costs
	for {
		switch pm.st {
		case pmWake, pmBodyDone:
			if pm.head == len(pm.q) {
				pm.st = pmIdle
				return
			}
			pm.m = pm.pop()
			if pm.sleep(c.HandlerFixed, pmDispatch) {
				return
			}

		case pmDispatch:
			m := pm.m
			pm.m = vmmc.Msg{}
			if m.Src >= 0 {
				n.Acct.Interrupts++
			}
			switch m.Kind {
			case vmmc.MsgPageReq:
				req := m.Payload.(*pageReqMsg)
				if !vecCovered(req.need, n.homeVer.row(req.page)) {
					n.pendingReqs[req.page] = append(n.pendingReqs[req.page], pendingPage{src: m.Src, msg: req})
					pm.st = pmBodyDone
					continue
				}
				pm.startReply(m.Src, req, pmBodyDone)
			case vmmc.MsgDiff:
				d := m.Payload.(*diffMsg)
				pm.d = d
				if pm.sleep(sim.Time(float64(d.wireSize())*c.HandlerPerByte), pmDiffApply) {
					return
				}
			case vmmc.MsgLockReq:
				req := m.Payload.(*lockReqMsg)
				meta := n.lockMetaFor(req.id)
				prev := meta.lastOwner
				meta.lastOwner = req.requester
				if prev == n.ID {
					pm.lockFwd(req)
					continue
				}
				pm.startSendInterrupt(prev, lockMsgOverhead+8*len(req.reqVC), vmmc.MsgLockFwd, req, pmBodyDone)
			case vmmc.MsgLockFwd:
				pm.lockFwd(m.Payload.(*lockReqMsg))
			case vmmc.MsgBarArrive:
				pm.barArrive(m.Payload.(*barArriveMsg))
			case vmmc.MsgBarRelease:
				n.handleBarRelease(m.Payload.(*barReleaseMsg))
				pm.st = pmBodyDone
			default:
				panic(fmt.Sprintf("core: protocol process got unknown message %q", m.Kind))
			}

		case pmDiffApply:
			d := pm.d
			pm.d = nil
			memory.ApplyRuns(n.sys.Space.HomeCopy(d.page), d.runs)
			page, src, seq := d.page, d.src, d.seq
			n.putDiff(d) // consumed; free before the retry path yields
			n.bumpVersion(page, src, seq)
			reqs := n.pendingReqs[page]
			if len(reqs) == 0 {
				pm.st = pmBodyDone
				continue
			}
			pm.retryPage = page
			pm.retryReqs = reqs
			pm.retryI, pm.retryKeep = 0, 0
			pm.st = pmRetryLoop

		case pmRetryLoop:
			// In-place keep-compaction of the pending queue; the machine
			// serializes all mutation of it, so compaction across the
			// reply sends is safe (new requests only append via
			// pmDispatch, which cannot run until this body finishes).
			for pm.st == pmRetryLoop {
				if pm.retryI >= len(pm.retryReqs) {
					for i := pm.retryKeep; i < len(pm.retryReqs); i++ {
						pm.retryReqs[i] = pendingPage{}
					}
					n.pendingReqs[pm.retryPage] = pm.retryReqs[:pm.retryKeep]
					pm.retryReqs = nil
					pm.st = pmBodyDone
					break
				}
				r := pm.retryReqs[pm.retryI]
				pm.retryI++
				if vecCovered(r.msg.need, n.homeVer.row(pm.retryPage)) {
					pm.startReply(r.src, r.msg, pmRetryLoop)
					break
				}
				pm.retryReqs[pm.retryKeep] = r
				pm.retryKeep++
			}

		case pmCIGate:
			if !pm.acquireGate(n.ivGate) {
				return
			}
			if len(n.dirtyList) == 0 {
				n.ivGate.Release()
				pm.ivCur = nil
				pm.st = pmGrantSend
				continue
			}
			// Snapshot and reset the dirty set before any yield: writes
			// during the flush start a fresh interval.
			slices.Sort(n.dirtyList)
			seq := n.vc[n.ID] + 1
			n.vc[n.ID] = seq
			iv := n.newInterval(seq, len(n.dirtyList))
			copy(iv.Pages, n.dirtyList)
			for _, pg := range n.dirtyList {
				n.dirtySet[pg] = false
			}
			n.dirtyList = n.dirtyList[:0]
			n.recordInterval(iv)
			pm.ivCur, pm.ivSeq, pm.pageIdx = iv, seq, 0
			pm.st = pmCIPage

		case pmCIPage:
			if pm.pageIdx >= len(pm.ivCur.Pages) {
				if !n.sys.Feat.DW {
					pm.st = pmCIDone
					continue
				}
				if n.sys.Cfg.Collectives && n.sys.Cfg.Nodes > 1 {
					// Same single-path rule as broadcastNotice: with
					// collectives on, every notice takes the tree.
					pm.st = pmColSleep
				} else if n.sys.Cfg.NIBroadcast && pm.ivCur.wireSize() <= n.sys.Cfg.MaxPacket {
					pm.st = pmBcastSleep
				} else {
					pm.noticeDst = 0
					pm.st = pmCINotice
				}
				continue
			}
			pg := int(pm.ivCur.Pages[pm.pageIdx])
			pm.pageIdx++
			seq := pm.ivSeq
			if row := n.need.row(pg); row[n.ID] < seq {
				row[n.ID] = seq
			}
			home := n.sys.Space.Home(pg)
			if home == n.ID {
				n.bumpVersion(pg, n.ID, seq)
				continue
			}
			pm.fpPg, pm.fpHome = pg, home
			pm.d = nil
			if n.Mem.HasTwin(pg) {
				cost := sim.Time(float64(n.sys.Cfg.PageSize) * c.DiffPerByte)
				n.Acct.DiffCompute += cost
				if pm.sleep(cost, pmFPDiffed) {
					return
				}
				continue
			}
			pm.fpRoute()

		case pmFPDiffed:
			pg := pm.fpPg
			d := n.getDiff()
			d.page, d.src, d.seq = pg, n.ID, pm.ivSeq
			d.runs, d.buf = n.Mem.DiffCopy(pg, d.runs[:0], d.buf)
			n.Mem.DropTwin(pg)
			n.Acct.DiffBytes += uint64(memory.RunsBytes(d.runs))
			pm.d = d
			pm.fpRoute()

		case pmFPRun:
			d := pm.d
			if pm.runIdx < len(d.runs) {
				rd := n.getRunDep()
				rd.owner, rd.pg, rd.run = n, pm.fpPg, d.runs[pm.runIdx]
				pm.runIdx++
				pm.startSend(pm.fpHome, runHeader+len(rd.run.Data), "direct-diff", rd, runDepDel, pmFPRun)
				continue
			}
			pm.startVerMarker(pmCIPage)

		case pmCINotice:
			for pm.st == pmCINotice {
				if pm.noticeDst >= n.sys.Cfg.Nodes {
					pm.st = pmCIDone
					break
				}
				dst := pm.noticeDst
				pm.noticeDst++
				if dst == n.ID {
					continue
				}
				pm.startSend(dst, pm.ivCur.wireSize(), "notice", pm.ivCur, &n.sys.noticeDel, pmCINotice)
			}

		case pmCIDone:
			n.ivGate.Release()
			pm.st = pmGrantSend

		case pmGrantSend:
			req := pm.lkReq
			g := n.getGrant()
			g.id = pm.lk.id
			copy(g.vc, n.vc)
			if !n.sys.Feat.DW {
				// Base: piggyback the write notices the requester lacks.
				for src := 0; src < n.sys.Cfg.Nodes; src++ {
					g.intervals = n.appendIntervalsAfter(g.intervals, src, req.reqVC[src], n.vc[src])
				}
			}
			pm.startSend(req.requester, g.wireSize(), "lock-grant", g, &n.sys.grantDel, pmGrantSent)

		case pmGrantSent:
			pm.lk.localQ.WakeAll() // local waiters must now go remote
			n.putLockReq(pm.lkReq)
			pm.lkReq, pm.lk = nil, nil
			pm.st = pmBodyDone

		case pmBarRel:
			for pm.st == pmBarRel {
				if pm.barDst >= n.sys.Cfg.Nodes {
					pm.barRel = nil
					pm.st = pmBodyDone
					break
				}
				dst := pm.barDst
				pm.barDst++
				if dst == n.ID {
					n.handleBarRelease(pm.barRel)
					continue
				}
				pm.startSendInterrupt(dst, pm.barRel.wireSize(), vmmc.MsgBarRelease, pm.barRel, pmBarRel)
			}

		case pmSendSleep:
			if pm.sleep(c.PostOverhead, pmSendGate) {
				return
			}

		case pmSendGate:
			ni := n.ep.NI()
			if !pm.acquireGate(ni.PostQueue) {
				return
			}
			max := n.sys.Cfg.MaxPacket
			sz, last := pm.sendRem, true
			if sz > max {
				sz, last = max, false
			}
			pkt := ni.NewPacket()
			pkt.Src, pkt.Dst, pkt.Size, pkt.Kind = n.ID, pm.sendDst, sz, pm.sendLabel
			if pm.sendSG {
				ex := sim.Time(float64(sz) * c.NISGPerByte)
				pkt.FwSendExtra, pkt.FwService = ex, ex
				pkt.FwHandler = vmmc.SGApplyHandler
			}
			if last {
				pkt.Payload = pm.sendPayload
				if pm.sendIntr {
					pkt.Meta = pm.sendMeta
					pkt.DeliverTo = n.ep.InterruptDeliverer()
				} else if !pm.sendSG {
					pkt.DeliverTo = pm.sendTo
				}
				pm.sendPayload, pm.sendTo = nil, nil
				pm.st = pm.sendRet
			} else {
				pm.sendRem -= sz
				pm.st = pmSendSleep
			}
			ni.LaunchPosted(pkt)

		case pmBcastSleep:
			if pm.sleep(c.PostOverhead, pmBcastGate) {
				return
			}

		case pmBcastGate:
			ni := n.ep.NI()
			if !pm.acquireGate(ni.PostQueue) {
				return
			}
			iv := pm.ivCur
			tmpl := ni.NewPacket()
			tmpl.Src, tmpl.Dst, tmpl.Size, tmpl.Kind = n.ID, -1, iv.wireSize(), "notice"
			tmpl.Payload = iv
			tmpl.DeliverTo = &n.sys.noticeDel
			ni.LaunchPostedBroadcast(tmpl, n.ep.BroadcastDsts(), nil)
			pm.st = pmCIDone

		case pmColSleep:
			if pm.sleep(c.PostOverhead, pmColGate) {
				return
			}

		case pmColGate:
			ni := n.ep.NI()
			if !pm.acquireGate(ni.PostQueue) {
				return
			}
			// The NI's collective layer takes over from here: one source
			// DMA (which releases the post-queue slot), then firmware
			// tree hops. Machine-context counterpart of broadcastNotice.
			ni.ColBroadcastPosted(pm.ivCur.wireSize(), "notice", pm.ivCur, &n.sys.noticeDel)
			pm.st = pmCIDone

		default:
			panic(fmt.Sprintf("core: protocol machine at node %d in invalid state %d", n.ID, pm.st))
		}
	}
}
