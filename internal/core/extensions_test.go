package core

// Tests for the NI extensions the paper discusses as future work and
// that this reproduction implements behind config flags: scatter-gather
// direct diffs (§3.3) and NI broadcast for write notices (§5).

import (
	"testing"

	"genima/internal/memory"
	"genima/internal/sim"
	"genima/internal/topo"
)

func newClusterCfg(t *testing.T, cfg topo.Config, kind Kind, pages int) *testCluster {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	space := memory.NewSpace(cfg.PageSize, cfg.WordSize, cfg.Nodes)
	space.Alloc("shared", pages*cfg.PageSize, memory.RoundRobin)
	sys := New(eng, &cfg, kind, space)
	sys.Start()
	return &testCluster{eng: eng, cfg: cfg, space: space, sys: sys}
}

// scatteredWriter writes every other word of a page (worst case for
// direct diffs) and runs one barrier round trip.
func runScatteredWriters(t *testing.T, cfg topo.Config) (*testCluster, uint64) {
	t.Helper()
	tc := newClusterCfg(t, cfg, GeNIMA, 8)
	done := 0
	for nd := 0; nd < cfg.Nodes; nd++ {
		nd := nd
		tc.spawn("w", nd, func(p *sim.Proc, n *Node) {
			// Page (nd+1)%... write alternating words of page 5.
			n.EnsureWritable(p, 5, 5)
			pg := n.PageBytes(5)
			for w := nd * 4; w < tc.cfg.PageSize/4; w += 4 * cfg.Nodes {
				pg[4*w] = byte(nd + 1)
			}
			n.Barrier(p)
			done++
		})
	}
	tc.run(t, &done, cfg.Nodes)
	return tc, tc.sys.Layer.Monitor().TotalPackets()
}

func TestScatterGatherReducesMessages(t *testing.T) {
	base := topo.Default()
	base.ProcsPerNode = 1
	_, plain := runScatteredWriters(t, base)

	sg := base
	sg.ScatterGather = true
	tcSG, gathered := runScatteredWriters(t, sg)

	if gathered >= plain {
		t.Errorf("scatter-gather packets (%d) not below per-run deposits (%d)", gathered, plain)
	}
	// Data must still be correct: every node's alternating words
	// merged in the home copy.
	hc := tcSG.space.HomeCopy(5)
	for nd := 0; nd < sg.Nodes; nd++ {
		w := nd * 4
		if hc[4*w] != byte(nd+1) {
			t.Errorf("home copy lost node %d's word (offset %d)", nd, 4*w)
		}
	}
}

func TestScatterGatherEndToEnd(t *testing.T) {
	cfg := topo.Default()
	cfg.ProcsPerNode = 1
	cfg.ScatterGather = true
	tc := newClusterCfg(t, cfg, GeNIMA, 8)
	done := 0
	for nd := 0; nd < 4; nd++ {
		nd := nd
		tc.spawn("w", nd, func(p *sim.Proc, n *Node) {
			writeByte(p, n, 3, 8*nd, byte(0x40+nd))
			writeByte(p, n, 3, 8*nd+128, byte(0x60+nd)) // second run
			n.Barrier(p)
			if got := readByte(p, n, 3, 16); got != 0x42 {
				t.Errorf("node %d read %#x, want 0x42", nd, got)
			}
			if got := readByte(p, n, 3, 136); got != 0x61 {
				t.Errorf("node %d read %#x, want 0x61", nd, got)
			}
			n.Barrier(p)
			done++
		})
	}
	tc.run(t, &done, 4)
}

func TestNIBroadcastDeliversNotices(t *testing.T) {
	cfg := topo.Default()
	cfg.ProcsPerNode = 1
	cfg.NIBroadcast = true
	tc := newClusterCfg(t, cfg, GeNIMA, 8)
	done := 0
	var got byte
	tc.spawn("writer", 1, func(p *sim.Proc, n *Node) {
		n.LockAcquire(p, 0)
		writeByte(p, n, 3, 100, 0xAB)
		n.LockRelease(p, 0)
		done++
	})
	tc.spawn("reader", 2, func(p *sim.Proc, n *Node) {
		p.Sleep(sim.Micro(500))
		n.LockAcquire(p, 0)
		got = readByte(p, n, 3, 100)
		n.LockRelease(p, 0)
		done++
	})
	tc.run(t, &done, 2)
	if got != 0xAB {
		t.Fatalf("reader saw %#x under NI broadcast", got)
	}
}

func TestNIBroadcastFewerHostPosts(t *testing.T) {
	run := func(broadcast bool) sim.Time {
		cfg := topo.Default()
		cfg.ProcsPerNode = 1
		cfg.Nodes = 8
		cfg.NIBroadcast = broadcast
		tc := newClusterCfg(t, cfg, GeNIMA, 8)
		done := 0
		var releaseCost sim.Time
		tc.spawn("w", 0, func(p *sim.Proc, n *Node) {
			n.LockAcquire(p, 0)
			writeByte(p, n, 1, 0, 1)
			t0 := p.Now()
			n.LockRelease(p, 0) // closes the interval: notices go out
			releaseCost = p.Now() - t0
			done++
		})
		tc.run(t, &done, 1)
		return releaseCost
	}
	plain := run(false)
	bcast := run(true)
	if bcast >= plain {
		t.Errorf("NI broadcast release cost (%d) not below per-node posts (%d)", bcast, plain)
	}
}
