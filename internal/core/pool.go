package core

import (
	"sync/atomic"

	"genima/internal/memory"
	"genima/internal/nic"
)

// Deterministic free lists for protocol records, one set per node.
//
// Ownership rules (see DESIGN.md §7): a record is taken from some
// node's free list, travels through the protocol as a typed packet
// payload, and is released — possibly at a different node — by the
// single party the protocol designates as its final consumer. Records
// therefore migrate between per-node pools; the engine is
// single-threaded, so the migration order (and hence every Get) is
// deterministic. Embedded sim.Flag values are Reset (not reallocated)
// when a record is recycled, which is safe only after the flag's
// waiters have resumed — the protocol guarantees a record's waiter has
// consumed the result before the record is released.

func (n *Node) getPageReq() *pageReqMsg {
	if k := len(n.pageReqFree); k > 0 {
		r := n.pageReqFree[k-1]
		n.pageReqFree[k-1] = nil
		n.pageReqFree = n.pageReqFree[:k-1]
		return r
	}
	nn := n.sys.Cfg.Nodes
	return &pageReqMsg{need: make([]uint64, nn), ver: make([]uint64, nn)}
}

func (n *Node) putPageReq(r *pageReqMsg) {
	r.data = nil
	r.done.Reset()
	n.pageReqFree = append(n.pageReqFree, r)
}

func (n *Node) getFetchPayload() *fetchPayload {
	if k := len(n.fpFree); k > 0 {
		r := n.fpFree[k-1]
		n.fpFree[k-1] = nil
		n.fpFree = n.fpFree[:k-1]
		return r
	}
	// Pool miss: build a chunk of records over one backing version
	// array, so a growing in-flight window costs two allocations per
	// eight records.
	nn := n.sys.Cfg.Nodes
	chunk := make([]fetchPayload, 8)
	vers := make([]uint64, len(chunk)*nn)
	for i := len(chunk) - 1; i >= 0; i-- {
		chunk[i].ver = vers[i*nn : (i+1)*nn : (i+1)*nn]
		if i > 0 {
			n.fpFree = append(n.fpFree, &chunk[i])
		}
	}
	return &chunk[0]
}

func (n *Node) putFetchPayload(r *fetchPayload) {
	r.data = nil
	n.fpFree = append(n.fpFree, r)
}

func (n *Node) getDiff() *diffMsg {
	if k := len(n.diffFree); k > 0 {
		r := n.diffFree[k-1]
		n.diffFree[k-1] = nil
		n.diffFree = n.diffFree[:k-1]
		return r
	}
	// Presize fresh records so DiffCopy does not regrow runs/buf word
	// by word on first use (buf holds at most one page of changed
	// bytes), and chunk them: diff records go in flight in bursts at
	// interval close, so misses cluster.
	ps := n.sys.Cfg.PageSize
	chunk := make([]diffMsg, 4)
	runsBack := make([]memory.Run, len(chunk)*64)
	bufBack := make([]byte, len(chunk)*ps)
	for i := len(chunk) - 1; i >= 0; i-- {
		chunk[i].runs = runsBack[i*64 : i*64 : (i+1)*64]
		chunk[i].buf = bufBack[i*ps : i*ps : (i+1)*ps]
		if i > 0 {
			n.diffFree = append(n.diffFree, &chunk[i])
		}
	}
	return &chunk[0]
}

func (n *Node) putDiff(d *diffMsg) {
	d.runs = d.runs[:0]
	n.diffFree = append(n.diffFree, d)
}

func (n *Node) getLockReq() *lockReqMsg {
	if k := len(n.lockReqFree); k > 0 {
		r := n.lockReqFree[k-1]
		n.lockReqFree[k-1] = nil
		n.lockReqFree = n.lockReqFree[:k-1]
		return r
	}
	nn := n.sys.Cfg.Nodes
	chunk := make([]lockReqMsg, 8)
	vcs := make([]uint64, len(chunk)*nn)
	for i := len(chunk) - 1; i >= 0; i-- {
		chunk[i].reqVC = vcs[i*nn : (i+1)*nn : (i+1)*nn]
		if i > 0 {
			n.lockReqFree = append(n.lockReqFree, &chunk[i])
		}
	}
	return &chunk[0]
}

func (n *Node) putLockReq(r *lockReqMsg) {
	n.lockReqFree = append(n.lockReqFree, r)
}

func (n *Node) getGrant() *lockGrant {
	if k := len(n.grantFree); k > 0 {
		r := n.grantFree[k-1]
		n.grantFree[k-1] = nil
		n.grantFree = n.grantFree[:k-1]
		return r
	}
	nn := n.sys.Cfg.Nodes
	chunk := make([]lockGrant, 8)
	vcs := make([]uint64, len(chunk)*nn)
	for i := len(chunk) - 1; i >= 0; i-- {
		chunk[i].vc = vcs[i*nn : (i+1)*nn : (i+1)*nn]
		if i > 0 {
			n.grantFree = append(n.grantFree, &chunk[i])
		}
	}
	return &chunk[0]
}

func (n *Node) putGrant(g *lockGrant) {
	g.intervals = g.intervals[:0]
	n.grantFree = append(n.grantFree, g)
}

func (n *Node) getVCMsg() *vcMsg {
	if k := len(n.vcMsgFree); k > 0 {
		r := n.vcMsgFree[k-1]
		n.vcMsgFree[k-1] = nil
		n.vcMsgFree = n.vcMsgFree[:k-1]
		return r
	}
	nn := n.sys.Cfg.Nodes
	chunk := make([]vcMsg, 8)
	vcs := make([]uint64, len(chunk)*nn)
	for i := len(chunk) - 1; i >= 0; i-- {
		chunk[i].vc = vcs[i*nn : (i+1)*nn : (i+1)*nn]
		if i > 0 {
			n.vcMsgFree = append(n.vcMsgFree, &chunk[i])
		}
	}
	return &chunk[0]
}

func (n *Node) putVCMsg(m *vcMsg) {
	n.vcMsgFree = append(n.vcMsgFree, m)
}

func (n *Node) getBarArr() *barArriveMsg {
	if k := len(n.barArrFree); k > 0 {
		r := n.barArrFree[k-1]
		n.barArrFree[k-1] = nil
		n.barArrFree = n.barArrFree[:k-1]
		return r
	}
	nn := n.sys.Cfg.Nodes
	chunk := make([]barArriveMsg, 8)
	vcs := make([]uint64, len(chunk)*nn)
	for i := len(chunk) - 1; i >= 0; i-- {
		chunk[i].vc = vcs[i*nn : (i+1)*nn : (i+1)*nn]
		if i > 0 {
			n.barArrFree = append(n.barArrFree, &chunk[i])
		}
	}
	return &chunk[0]
}

func (n *Node) putBarArr(m *barArriveMsg) {
	m.intervals = m.intervals[:0]
	n.barArrFree = append(n.barArrFree, m)
}

func (n *Node) getBarRel() *barReleaseMsg {
	if k := len(n.barRelFree); k > 0 {
		r := n.barRelFree[k-1]
		n.barRelFree[k-1] = nil
		n.barRelFree = n.barRelFree[:k-1]
		return r
	}
	nn := n.sys.Cfg.Nodes
	chunk := make([]barReleaseMsg, 8)
	vcs := make([]uint64, len(chunk)*nn)
	for i := len(chunk) - 1; i >= 0; i-- {
		chunk[i].vc = vcs[i*nn : (i+1)*nn : (i+1)*nn]
		if i > 0 {
			n.barRelFree = append(n.barRelFree, &chunk[i])
		}
	}
	return &chunk[0]
}

func (n *Node) putBarRel(m *barReleaseMsg) {
	m.intervals = m.intervals[:0]
	n.barRelFree = append(n.barRelFree, m)
}

func (n *Node) getRunDep() *runDep {
	if k := len(n.runDepFree); k > 0 {
		r := n.runDepFree[k-1]
		n.runDepFree[k-1] = nil
		n.runDepFree = n.runDepFree[:k-1]
		return r
	}
	// Direct diffs put one runDep in flight per run of a page diff, so
	// misses come in bursts; chunk them.
	chunk := make([]runDep, 16)
	for i := len(chunk) - 1; i > 0; i-- {
		n.runDepFree = append(n.runDepFree, &chunk[i])
	}
	return &chunk[0]
}

func (n *Node) putRunDep(r *runDep) {
	r.run = memory.Run{}
	n.runDepFree = append(n.runDepFree, r)
}

func (n *Node) getVerMark() *verMark {
	if k := len(n.verMarkFree); k > 0 {
		r := n.verMarkFree[k-1]
		n.verMarkFree[k-1] = nil
		n.verMarkFree = n.verMarkFree[:k-1]
		return r
	}
	chunk := make([]verMark, 8)
	for i := len(chunk) - 1; i > 0; i-- {
		n.verMarkFree = append(n.verMarkFree, &chunk[i])
	}
	return &chunk[0]
}

func (n *Node) putVerMark(v *verMark) {
	v.d = nil
	n.verMarkFree = append(n.verMarkFree, v)
}

func (n *Node) getSGDep() *sgDep {
	if k := len(n.sgDepFree); k > 0 {
		r := n.sgDepFree[k-1]
		n.sgDepFree[k-1] = nil
		n.sgDepFree = n.sgDepFree[:k-1]
		return r
	}
	return &sgDep{}
}

func (n *Node) putSGDep(m *sgDep) {
	m.d = nil
	n.sgDepFree = append(n.sgDepFree, m)
}

// getInv returns a zero-length invalidation scratch slice. applyUpTo can
// nest (closePageEarly yields and another processor may enter applyUpTo),
// so the scratch comes from a free list rather than a single field.
func (n *Node) getInv() []int {
	if k := len(n.invFree); k > 0 {
		s := n.invFree[k-1]
		n.invFree[k-1] = nil
		n.invFree = n.invFree[:k-1]
		return s[:0]
	}
	return make([]int, 0, 16)
}

func (n *Node) putInv(s []int) {
	n.invFree = append(n.invFree, s)
}

// Shared packet deliverers: singletons invoked by the NI when the final
// packet of a protocol message lands, replacing per-send OnDeliver
// closures. Stateless ones are package-level; the ones that must map
// pkt.Dst to a *Node live on System.

// pageReplyDeliver completes a Base page fetch: the reply data was
// written into the pooled request record at reply time, so delivery
// only wakes the requester.
type pageReplyDeliver struct{}

var pageReplyDel pageReplyDeliver

func (pageReplyDeliver) Deliver(pkt *nic.Packet) { pkt.Payload.(*pageReqMsg).done.Set() }

// runDepDeliver applies one direct-diff run into the home copy (DD: the
// destination NI deposits the run, no host involvement). The record is
// freed into the destination node's pool — delivery runs on the
// destination's logical process, and the origin node may be executing
// concurrently, so its free list must not be touched here.
type runDepDeliver struct{}

var runDepDel runDepDeliver

func (runDepDeliver) Deliver(pkt *nic.Packet) {
	rd := pkt.Payload.(*runDep)
	memory.ApplyRun(rd.owner.sys.Space.HomeCopy(rd.pg), rd.run)
	rd.owner.sys.Nodes[pkt.Dst].putRunDep(rd)
}

// verMarkDeliver lands a direct-diff version marker. Per-pair FIFO
// delivery guarantees the run deposits (sent first) have already been
// applied, so the diff record whose buffer they aliased can be freed —
// into the home's pool: delivery runs on the home's logical process.
type verMarkDeliver struct{}

var verMarkDel verMarkDeliver

func (verMarkDeliver) Deliver(pkt *nic.Packet) {
	vm := pkt.Payload.(*verMark)
	vm.home.bumpVersion(vm.pg, vm.origin.ID, vm.seq)
	if vm.d != nil {
		vm.home.putDiff(vm.d)
	}
	vm.home.putVerMark(vm)
}

// noticeDeliver records an eagerly deposited write notice at pkt.Dst
// (DW). Intervals are arena-allocated and live for the whole run, so no
// refcounting is needed.
type noticeDeliver struct{ s *System }

func (d *noticeDeliver) Deliver(pkt *nic.Packet) {
	d.s.Nodes[pkt.Dst].depositNotice(pkt.Payload.(*interval))
}

// grantDeliver hands a lock grant to the waiting requester at pkt.Dst.
type grantDeliver struct{ s *System }

func (d *grantDeliver) Deliver(pkt *nic.Packet) {
	d.s.Nodes[pkt.Dst].receiveGrant(pkt.Payload.(*lockGrant))
}

// barFlagDeliver lands a DW barrier arrival flag at pkt.Dst. One pooled
// record serves all Nodes-1 deposits; the last delivery frees it into
// the pool of the node it landed on (the deliveries may run on
// different logical processes within one round, hence the atomic).
type barFlagDeliver struct{ s *System }

func (d *barFlagDeliver) Deliver(pkt *nic.Packet) {
	m := pkt.Payload.(*barArriveMsg)
	d.s.Nodes[pkt.Dst].depositBarFlag(m)
	if atomic.AddInt32(&m.refs, -1) == 0 {
		d.s.Nodes[pkt.Dst].putBarArr(m)
	}
}
