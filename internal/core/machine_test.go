package core

import (
	"fmt"
	"strings"
	"testing"

	"genima/internal/sim"
	"genima/internal/vmmc"
)

// ladderWorkload drives one cluster through a fixed mix of contended
// locks, writes, post-barrier reads (remote fetches), and barriers —
// touching every interrupt class the ladder eliminates — and returns
// the total host interrupts taken.
func ladderWorkload(t *testing.T, k Kind) uint64 {
	t.Helper()
	tc := newCluster(t, k, 4, 1, 16)
	done := 0
	for nd := 0; nd < 4; nd++ {
		nd := nd
		tc.spawn("work", nd, func(p *sim.Proc, n *Node) {
			for i := 0; i < 4; i++ {
				n.LockAcquire(p, nd%2)
				pg := (3*nd + i) % 16
				n.EnsureWritable(p, pg, pg)
				n.PageBytes(pg)[nd]++
				n.LockRelease(p, nd%2)
			}
			n.Barrier(p)
			for i := 0; i < 2; i++ {
				// Post-barrier reads of pages other nodes wrote: remote
				// fetches, served by interrupts until RF.
				pg := (5*nd + 7*i + 3) % 16
				n.EnsureReadable(p, pg, pg)
				_ = n.PageBytes(pg)[0]
			}
			n.Barrier(p)
			done++
		})
	}
	tc.run(t, &done, 4)
	var total uint64
	for _, n := range tc.sys.Nodes {
		total += n.Acct.Interrupts
	}
	return total
}

// TestInterruptLadder: each rung of the protocol ladder moves one more
// protocol service into the NI, so host interrupts strictly decrease
// rung to rung, reaching exactly zero at GeNIMA (the paper's central
// claim: no asynchronous protocol processing remains).
func TestInterruptLadder(t *testing.T) {
	kinds := Kinds()
	counts := make([]uint64, len(kinds))
	for i, k := range kinds {
		counts[i] = ladderWorkload(t, k)
	}
	t.Logf("interrupts per rung: %v -> %v", kinds, counts)
	if counts[0] == 0 {
		t.Fatalf("%v took no interrupts; workload exercises nothing", kinds[0])
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] >= counts[i-1] {
			t.Errorf("%v took %d interrupts, want fewer than %v's %d",
				kinds[i], counts[i], kinds[i-1], counts[i-1])
		}
	}
	if last := counts[len(counts)-1]; last != 0 {
		t.Errorf("%v took %d interrupts, want 0", kinds[len(kinds)-1], last)
	}
}

// TestUnknownProtocolMessagePanics: the protocol machine refuses
// messages outside the typed enum loudly rather than dropping them —
// a corrupted or future message kind is a protocol bug, not noise.
func TestUnknownProtocolMessagePanics(t *testing.T) {
	tc := newCluster(t, Base, 2, 1, 4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("posting an unknown message kind did not panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "unknown message") {
			t.Fatalf("panic %q does not mention the unknown message", msg)
		}
	}()
	tc.sys.Node(0).pm.post(vmmc.Msg{Src: 0, Kind: vmmc.MsgKind(99)})
	tc.eng.RunUntilQuiet()
}
