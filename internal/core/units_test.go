package core

// Unit tests for the protocol's data-structure helpers, plus randomized
// cross-protocol consistency checks.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"genima/internal/memory"
	"genima/internal/sim"
	"genima/internal/topo"
)

func TestFeaturesOfLadderIsCumulative(t *testing.T) {
	prev := Features{}
	count := func(f Features) int {
		n := 0
		for _, b := range []bool{f.DW, f.RF, f.DD, f.NIL} {
			if b {
				n++
			}
		}
		return n
	}
	for _, k := range Kinds() {
		f := FeaturesOf(k)
		if count(f) != count(prev)+1 && k != Base {
			t.Errorf("%v adds %d features over its predecessor, want exactly 1", k, count(f)-count(prev))
		}
		// Cumulative: everything enabled before stays enabled.
		if (prev.DW && !f.DW) || (prev.RF && !f.RF) || (prev.DD && !f.DD) || (prev.NIL && !f.NIL) {
			t.Errorf("%v drops a feature of its predecessor", k)
		}
		prev = f
	}
	if !FeaturesOf(GeNIMA).NIL {
		t.Error("GeNIMA must enable NI locks")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{Base: "Base", DW: "DW", DWRF: "DW+RF", DWRFDD: "DW+RF+DD", GeNIMA: "GeNIMA"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d renders %q, want %q", int(k), k.String(), w)
		}
	}
	if Kind(42).String() == "" {
		t.Error("out-of-range kind renders empty")
	}
}

func TestIntervalWireSize(t *testing.T) {
	iv := &interval{Src: 1, Seq: 3, Pages: []int32{1, 2, 3}}
	if iv.wireSize() != 16+12 {
		t.Errorf("wireSize = %d", iv.wireSize())
	}
}

func TestRecordAndQueryIntervals(t *testing.T) {
	tc := newCluster(t, Base, 2, 1, 4)
	n := tc.sys.Node(0)
	// Record out of order; intervalsAfter must return the range asked.
	n.recordInterval(&interval{Src: 1, Seq: 2, Pages: []int32{1}})
	n.recordInterval(&interval{Src: 1, Seq: 1, Pages: []int32{0}})
	n.recordInterval(&interval{Src: 1, Seq: 4, Pages: []int32{2}})
	got := n.appendIntervalsAfter(nil, 1, 0, 2)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("appendIntervalsAfter(0,2) = %+v", got)
	}
	// A gap (seq 3 unknown) is simply skipped.
	got = n.appendIntervalsAfter(nil, 1, 2, 4)
	if len(got) != 1 || got[0].Seq != 4 {
		t.Fatalf("appendIntervalsAfter(2,4) = %+v", got)
	}
}

func TestVecHelpers(t *testing.T) {
	a := []uint64{1, 5, 2}
	b := []uint64{3, 4, 2}
	vecMergeMax(a, b)
	if a[0] != 3 || a[1] != 5 || a[2] != 2 {
		t.Errorf("vecMergeMax = %v", a)
	}
	if !vecCovered([]uint64{1, 2}, []uint64{1, 2}) {
		t.Error("equal vectors must be covered")
	}
	if vecCovered([]uint64{2, 0}, []uint64{1, 9}) {
		t.Error("uncovered vector accepted")
	}
}

func TestNeedSatisfiedUsesEveryWriter(t *testing.T) {
	tc := newCluster(t, Base, 4, 1, 4)
	n := tc.sys.Node(0)
	copy(n.need.row(1), []uint64{0, 2, 0, 1})
	if n.needSatisfied(1, []uint64{0, 1, 0, 1}) {
		t.Error("satisfied despite writer 1 behind")
	}
	if !n.needSatisfied(1, []uint64{5, 2, 9, 1}) {
		t.Error("not satisfied despite coverage")
	}
}

func TestLockReacquireCachedIsLocal(t *testing.T) {
	// After a remote acquire, re-acquiring the cached lock must not add
	// remote lock ops (the Base "last owner keeps the lock" rule).
	tc := newCluster(t, Base, 2, 1, 4)
	done := 0
	tc.spawn("p", 1, func(p *sim.Proc, n *Node) {
		n.LockAcquire(p, 0) // lock 0 homed at node 0: remote
		n.LockRelease(p, 0)
		before := n.Acct.LockOps
		for i := 0; i < 5; i++ {
			n.LockAcquire(p, 0)
			n.LockRelease(p, 0)
		}
		if n.Acct.LockOps != before {
			t.Errorf("cached re-acquire went remote (%d -> %d ops)", before, n.Acct.LockOps)
		}
		done++
	})
	tc.run(t, &done, 1)
}

func TestLockChainThroughPendingRemote(t *testing.T) {
	// A requester whose forward arrives while the lock is held must be
	// granted at the holder's release.
	tc := newCluster(t, Base, 3, 1, 4)
	done := 0
	var order []int
	tc.spawn("holder", 0, func(p *sim.Proc, n *Node) {
		n.LockAcquire(p, 0)
		order = append(order, 0)
		p.Sleep(sim.Micro(800)) // hold long enough for the forward to arrive
		n.LockRelease(p, 0)
		done++
	})
	tc.spawn("waiter", 2, func(p *sim.Proc, n *Node) {
		p.Sleep(sim.Micro(100))
		n.LockAcquire(p, 0)
		order = append(order, 2)
		n.LockRelease(p, 0)
		done++
	})
	tc.run(t, &done, 2)
	if len(order) != 2 || order[0] != 0 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

// Property: a randomized schedule of writes under locks and barriers
// produces the same final shared memory under every protocol.
func TestCrossProtocolConsistencyProperty(t *testing.T) {
	type op struct {
		kind      int // 0 = write, 1 = lock-write-unlock, 2 = barrier
		page, off int
		val       byte
		lock      int
	}
	run := func(seed int64, kind Kind) []byte {
		rng := rand.New(rand.NewSource(seed))
		const pages = 6
		nodes := 3
		// Build per-node scripts. Writes are made unique per (node,
		// word) to avoid data races: node i owns word-offsets congruent
		// to i.
		scripts := make([][]op, nodes)
		barriers := 3
		for nd := 0; nd < nodes; nd++ {
			var s []op
			for b := 0; b < barriers; b++ {
				steps := rng.Intn(4)
				for k := 0; k < steps; k++ {
					// Word-offsets congruent to nd (mod nodes) so that
					// concurrent writers never share a word: the only
					// races left are the protocol's to resolve.
					o := op{
						page: rng.Intn(pages),
						off:  (rng.Intn(300)*nodes + nd) * 4,
						val:  byte(rng.Intn(255) + 1),
						lock: rng.Intn(3),
						kind: rng.Intn(2),
					}
					s = append(s, o)
				}
				s = append(s, op{kind: 2})
			}
			scripts[nd] = s
		}
		cfg := topo.Default()
		cfg.Nodes = nodes
		cfg.ProcsPerNode = 1
		eng := sim.NewEngine()
		space := memory.NewSpace(cfg.PageSize, cfg.WordSize, nodes)
		space.Alloc("shared", pages*cfg.PageSize, memory.RoundRobin)
		sys := New(eng, &cfg, kind, space)
		sys.Start()
		done := 0
		for nd := 0; nd < nodes; nd++ {
			nd := nd
			node := sys.Node(nd)
			eng.Go("p", func(p *sim.Proc) {
				for _, o := range scripts[nd] {
					switch o.kind {
					case 2:
						node.Barrier(p)
					case 1:
						node.LockAcquire(p, o.lock)
						node.EnsureWritable(p, o.page, o.page)
						node.PageBytes(o.page)[o.off] = o.val
						node.LockRelease(p, o.lock)
					default:
						node.EnsureWritable(p, o.page, o.page)
						node.PageBytes(o.page)[o.off] = o.val
					}
				}
				node.Barrier(p)
				done++
			})
		}
		eng.RunUntilQuiet()
		if done != nodes {
			t.Fatalf("%v: deadlock (%d/%d)", kind, done, nodes)
		}
		out := make([]byte, 0, pages*cfg.PageSize)
		for pg := 0; pg < pages; pg++ {
			out = append(out, space.HomeCopy(pg)...)
		}
		return out
	}
	prop := func(seed int64) bool {
		ref := run(seed, Base)
		for _, k := range []Kind{DW, DWRF, DWRFDD, GeNIMA} {
			got := run(seed, k)
			for i := range ref {
				if got[i] != ref[i] {
					t.Logf("seed %d: %v differs from Base at byte %d", seed, k, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The same consistency property with two processors per node exercises
// the intra-node races (shared page table, local lock handoff, barrier
// leader election).
func TestCrossProtocolConsistencySMPProperty(t *testing.T) {
	run := func(seed int64, kind Kind) []byte {
		rng := rand.New(rand.NewSource(seed))
		const pages = 4
		nodes, ppn := 2, 2
		nprocs := nodes * ppn
		type op struct {
			kind, page, off, lock int
			val                   byte
		}
		scripts := make([][]op, nprocs)
		for pr := 0; pr < nprocs; pr++ {
			var s []op
			for b := 0; b < 3; b++ {
				for k := rng.Intn(4); k > 0; k-- {
					s = append(s, op{
						kind: rng.Intn(2),
						page: rng.Intn(pages),
						off:  (rng.Intn(200)*nprocs + pr) * 4, // proc-owned words
						val:  byte(rng.Intn(255) + 1),
						lock: rng.Intn(2),
					})
				}
				s = append(s, op{kind: 2})
			}
			scripts[pr] = s
		}
		cfg := topo.Default()
		cfg.Nodes = nodes
		cfg.ProcsPerNode = ppn
		eng := sim.NewEngine()
		space := memory.NewSpace(cfg.PageSize, cfg.WordSize, nodes)
		space.Alloc("shared", pages*cfg.PageSize, memory.RoundRobin)
		sys := New(eng, &cfg, kind, space)
		sys.Start()
		done := 0
		for pr := 0; pr < nprocs; pr++ {
			pr := pr
			node := sys.Node(pr / ppn)
			eng.Go("p", func(p *sim.Proc) {
				for _, o := range scripts[pr] {
					switch o.kind {
					case 2:
						node.Barrier(p)
					case 1:
						node.LockAcquire(p, o.lock)
						node.EnsureWritable(p, o.page, o.page)
						node.PageBytes(o.page)[o.off] = o.val
						node.LockRelease(p, o.lock)
					default:
						node.EnsureWritable(p, o.page, o.page)
						node.PageBytes(o.page)[o.off] = o.val
					}
				}
				node.Barrier(p)
				done++
			})
		}
		eng.RunUntilQuiet()
		if done != nprocs {
			t.Fatalf("%v seed %d: deadlock (%d/%d)", kind, seed, done, nprocs)
		}
		out := make([]byte, 0, pages*cfg.PageSize)
		for pg := 0; pg < pages; pg++ {
			out = append(out, space.HomeCopy(pg)...)
		}
		return out
	}
	prop := func(seed int64) bool {
		ref := run(seed, Base)
		for _, k := range []Kind{DW, DWRF, DWRFDD, GeNIMA} {
			got := run(seed, k)
			for i := range ref {
				if got[i] != ref[i] {
					t.Logf("seed %d: %v differs from Base at byte %d", seed, k, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
