package core

import (
	"testing"

	"genima/internal/memory"
	"genima/internal/sim"
	"genima/internal/topo"
)

// testCluster wires a full protocol system for integration tests.
type testCluster struct {
	eng   *sim.Engine
	cfg   topo.Config
	space *memory.Space
	sys   *System
}

func newCluster(t *testing.T, kind Kind, nodes, procsPerNode, pages int) *testCluster {
	t.Helper()
	cfg := topo.Default()
	cfg.Nodes = nodes
	cfg.ProcsPerNode = procsPerNode
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	space := memory.NewSpace(cfg.PageSize, cfg.WordSize, nodes)
	space.Alloc("shared", pages*cfg.PageSize, memory.RoundRobin)
	sys := New(eng, &cfg, kind, space)
	sys.Start()
	return &testCluster{eng: eng, cfg: cfg, space: space, sys: sys}
}

// spawn runs body as a simulated processor on node nd.
func (tc *testCluster) spawn(name string, nd int, body func(p *sim.Proc, n *Node)) {
	node := tc.sys.Node(nd)
	tc.eng.Go(name, func(p *sim.Proc) { body(p, node) })
}

// writeByte writes one byte of shared data (with fault handling).
func writeByte(p *sim.Proc, n *Node, page, off int, v byte) {
	n.EnsureWritable(p, page, page)
	n.PageBytes(page)[off] = v
}

// readByte reads one byte of shared data (with fault handling).
func readByte(p *sim.Proc, n *Node, page, off int) byte {
	n.EnsureReadable(p, page, page)
	return n.PageBytes(page)[off]
}

// run drains the engine and fails the test if done isn't reached.
func (tc *testCluster) run(t *testing.T, done *int, want int) {
	t.Helper()
	tc.eng.RunUntilQuiet()
	if *done != want {
		t.Fatalf("only %d of %d processors finished (deadlock?)", *done, want)
	}
}

func forEachKind(t *testing.T, f func(t *testing.T, k Kind)) {
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) { f(t, k) })
	}
}

// A writer updates a page under a lock; a reader on another node
// acquires the same lock and must see the write (lock-protected
// causality, the heart of LRC).
func TestLockProtectedVisibility(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		tc := newCluster(t, k, 4, 1, 8)
		done := 0
		var got byte
		tc.spawn("writer", 1, func(p *sim.Proc, n *Node) {
			n.LockAcquire(p, 0)
			writeByte(p, n, 3, 100, 0xAB) // page 3 homed at node 3
			n.LockRelease(p, 0)
			done++
		})
		tc.spawn("reader", 2, func(p *sim.Proc, n *Node) {
			p.Sleep(sim.Micro(500)) // arrive after the writer
			n.LockAcquire(p, 0)
			got = readByte(p, n, 3, 100)
			n.LockRelease(p, 0)
			done++
		})
		tc.run(t, &done, 2)
		if got != 0xAB {
			t.Fatalf("%v: reader saw %#x, want 0xAB", k, got)
		}
	})
}

// Without intervening synchronization, a remote node that already has a
// copy may legitimately see stale data (lazy release consistency); after
// a barrier everyone must see all writes.
func TestBarrierPropagatesAllWrites(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		tc := newCluster(t, k, 4, 1, 8)
		done := 0
		results := make([]byte, 4)
		for nd := 0; nd < 4; nd++ {
			nd := nd
			tc.spawn("proc", nd, func(p *sim.Proc, n *Node) {
				// Everyone writes its own word of page 5 (concurrent
				// writes must be word-disjoint at SVM diff granularity,
				// per the SPLASH-2 rules the paper's apps follow).
				writeByte(p, n, 5, 200+4*nd, byte(10+nd))
				n.Barrier(p)
				// Everyone reads node 2's word.
				results[nd] = readByte(p, n, 5, 208)
				n.Barrier(p)
				done++
			})
		}
		tc.run(t, &done, 4)
		for nd, v := range results {
			if v != 12 {
				t.Errorf("%v: node %d saw %d, want 12", k, nd, v)
			}
		}
	})
}

// Multiple-writer merge: two nodes concurrently write disjoint words of
// the same page; after a barrier both writes must be visible everywhere.
func TestMultipleWriterMerge(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		tc := newCluster(t, k, 4, 1, 8)
		done := 0
		var a, b byte
		for nd := 1; nd <= 2; nd++ {
			nd := nd
			tc.spawn("writer", nd, func(p *sim.Proc, n *Node) {
				writeByte(p, n, 6, 400+4*nd, byte(nd)) // disjoint words
				n.Barrier(p)
				n.Barrier(p)
				done++
			})
		}
		tc.spawn("reader", 0, func(p *sim.Proc, n *Node) {
			n.Barrier(p)
			a = readByte(p, n, 6, 404)
			b = readByte(p, n, 6, 408)
			n.Barrier(p)
			done++
		})
		tc.spawn("idle", 3, func(p *sim.Proc, n *Node) {
			n.Barrier(p)
			n.Barrier(p)
			done++
		})
		tc.run(t, &done, 4)
		if a != 1 || b != 2 {
			t.Fatalf("%v: merged page has (%d,%d), want (1,2)", k, a, b)
		}
	})
}

// The home node itself must not read stale data: a remote write under a
// lock must be awaited by the home after it acquires the lock.
func TestHomeNodeWaitsForDiffs(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		tc := newCluster(t, k, 4, 1, 8)
		done := 0
		var got byte
		// Page 2 is homed at node 2.
		tc.spawn("writer", 0, func(p *sim.Proc, n *Node) {
			n.LockAcquire(p, 1)
			writeByte(p, n, 2, 8, 0x5C)
			n.LockRelease(p, 1)
			done++
		})
		tc.spawn("home-reader", 2, func(p *sim.Proc, n *Node) {
			p.Sleep(sim.Micro(300))
			n.LockAcquire(p, 1)
			got = readByte(p, n, 2, 8)
			n.LockRelease(p, 1)
			done++
		})
		tc.run(t, &done, 2)
		if got != 0x5C {
			t.Fatalf("%v: home read %#x, want 0x5C", k, got)
		}
	})
}

// Lock chain through three nodes: values accumulate in order.
func TestLockChainAccumulation(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		tc := newCluster(t, k, 4, 1, 4)
		done := 0
		for nd := 0; nd < 4; nd++ {
			nd := nd
			tc.spawn("inc", nd, func(p *sim.Proc, n *Node) {
				for i := 0; i < 3; i++ {
					n.LockAcquire(p, 2)
					n.EnsureWritable(p, 1, 1)
					n.PageBytes(1)[0]++
					n.LockRelease(p, 2)
					p.Sleep(sim.Micro(20))
				}
				done++
			})
		}
		tc.run(t, &done, 4)
		// Final value must be 12, observed after acquiring the lock.
		var final byte
		fin := 0
		tc.spawn("check", 3, func(p *sim.Proc, n *Node) {
			n.LockAcquire(p, 2)
			final = readByte(p, n, 1, 0)
			n.LockRelease(p, 2)
			fin++
		})
		tc.eng.RunUntilQuiet()
		if fin != 1 || final != 12 {
			t.Fatalf("%v: counter = %d (checked=%d), want 12", k, final, fin)
		}
	})
}

// Intra-node handoff: two processors in one node pass a lock without
// any remote traffic, and see each other's writes via node coherence.
func TestIntraNodeLockHandoff(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		tc := newCluster(t, k, 2, 2, 4)
		done := 0
		for cpu := 0; cpu < 2; cpu++ {
			tc.spawn("inc", 0, func(p *sim.Proc, n *Node) {
				for i := 0; i < 5; i++ {
					n.LockAcquire(p, 0) // homed at node 0
					n.EnsureWritable(p, 0, 0)
					n.PageBytes(0)[4]++
					n.LockRelease(p, 0)
				}
				n.Barrier(p)
				done++
			})
		}
		for cpu := 0; cpu < 2; cpu++ {
			tc.spawn("other", 1, func(p *sim.Proc, n *Node) {
				n.Barrier(p)
				done++
			})
		}
		tc.run(t, &done, 4)
		if v := tc.space.HomeCopy(0)[4]; v != 10 {
			t.Fatalf("%v: counter = %d, want 10", k, v)
		}
	})
}

// GeNIMA must take zero host interrupts; Base must take many.
func TestInterruptElimination(t *testing.T) {
	counts := map[Kind]uint64{}
	for _, k := range []Kind{Base, GeNIMA} {
		tc := newCluster(t, k, 4, 1, 16)
		done := 0
		for nd := 0; nd < 4; nd++ {
			nd := nd
			tc.spawn("work", nd, func(p *sim.Proc, n *Node) {
				for i := 0; i < 4; i++ {
					n.LockAcquire(p, 7)
					pg := (nd + i) % 16
					n.EnsureWritable(p, pg, pg)
					n.PageBytes(pg)[0]++
					n.LockRelease(p, 7)
				}
				n.Barrier(p)
				done++
			})
		}
		tc.run(t, &done, 4)
		var total uint64
		for _, n := range tc.sys.Nodes {
			total += n.Acct.Interrupts
		}
		counts[k] = total
	}
	if counts[GeNIMA] != 0 {
		t.Errorf("GeNIMA took %d interrupts, want 0", counts[GeNIMA])
	}
	if counts[Base] == 0 {
		t.Error("Base took no interrupts")
	}
}

// Determinism: identical runs produce identical virtual end times.
func TestProtocolDeterminism(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		run := func() sim.Time {
			tc := newCluster(t, k, 4, 2, 16)
			done := 0
			for nd := 0; nd < 4; nd++ {
				for cpu := 0; cpu < 2; cpu++ {
					nd := nd
					tc.spawn("w", nd, func(p *sim.Proc, n *Node) {
						for i := 0; i < 3; i++ {
							n.LockAcquire(p, 1)
							n.EnsureWritable(p, i, i)
							n.PageBytes(i)[nd]++
							n.LockRelease(p, 1)
						}
						n.Barrier(p)
						done++
					})
				}
			}
			tc.eng.RunUntilQuiet()
			if done != 8 {
				t.Fatalf("deadlock: %d/8 finished", done)
			}
			return tc.eng.Now()
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("%v: nondeterministic end times %d vs %d", k, a, b)
		}
	})
}

// Remote-fetch retries happen (and terminate) when a page is fetched
// while its diffs are still in flight.
func TestRemoteFetchRetries(t *testing.T) {
	tc := newCluster(t, DWRF, 4, 1, 8)
	done := 0
	tc.spawn("writer", 1, func(p *sim.Proc, n *Node) {
		n.LockAcquire(p, 0)
		writeByte(p, n, 3, 0, 1)
		n.LockRelease(p, 0)
		done++
	})
	tc.spawn("reader", 2, func(p *sim.Proc, n *Node) {
		p.Sleep(sim.Micro(200))
		n.LockAcquire(p, 0)
		if got := readByte(p, n, 3, 0); got != 1 {
			t.Errorf("reader saw %d, want 1", got)
		}
		n.LockRelease(p, 0)
		done++
	})
	tc.run(t, &done, 2)
	// Retries are plausible but not guaranteed for this timing; the
	// accounting field must at least be consistent (non-negative is
	// implied by the type; fetches must have happened).
	acct := tc.sys.Accounting()
	if acct.PageFetches == 0 {
		t.Error("no page fetches recorded")
	}
}

// Dirty pages invalidated by an incoming notice are flushed first so no
// data is lost (concurrent writer on the same page, different words).
func TestConcurrentWriterFlushOnInvalidate(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		tc := newCluster(t, k, 2, 1, 4)
		done := 0
		tc.spawn("a", 0, func(p *sim.Proc, n *Node) {
			writeByte(p, n, 1, 0, 7) // page 1 homed at node 1
			n.LockAcquire(p, 0)
			n.LockRelease(p, 0)
			n.Barrier(p)
			done++
		})
		tc.spawn("b", 1, func(p *sim.Proc, n *Node) {
			n.LockAcquire(p, 0)
			writeByte(p, n, 1, 4, 8)
			n.LockRelease(p, 0)
			n.Barrier(p)
			done++
		})
		tc.run(t, &done, 2)
		hc := tc.space.HomeCopy(1)
		if hc[0] != 7 || hc[4] != 8 {
			t.Fatalf("%v: home copy has (%d,%d), want (7,8)", k, hc[0], hc[4])
		}
	})
}
