package core

import (
	"genima/internal/sim"
)

// Barrier synchronization.
//
// Base: a centralized barrier. Each node's last-arriving processor (the
// node leader) closes the write interval, flushes diffs, and sends an
// arrival message — carrying the intervals the node created this epoch —
// to the barrier master (node 0), interrupting it. When all nodes have
// arrived, the master broadcasts a release message with the union of
// intervals; every node's leader applies the invalidations.
//
// DW and later: barrier control information is deposited directly into
// every node's protocol data structures. Each leader closes its
// interval (notices travel by eager deposit), deposits an arrival flag
// carrying its vector clock to all nodes, and then spins locally until
// all flags arrive — no interrupts anywhere. Invalidations (and their
// mprotect) are applied locally before leaving.

type barArriveMsg struct {
	src       int
	seq       int
	vc        []uint64
	intervals []*interval
}

func (m *barArriveMsg) wireSize() int {
	n := 16 + 8*len(m.vc)
	for _, iv := range m.intervals {
		n += iv.wireSize()
	}
	return n
}

type barReleaseMsg struct {
	seq       int
	vc        []uint64
	intervals []*interval
}

func (m *barReleaseMsg) wireSize() int {
	n := 16 + 8*len(m.vc)
	for _, iv := range m.intervals {
		n += iv.wireSize()
	}
	return n
}

// masterBarState is the master's per-epoch aggregation (Base).
type masterBarState struct {
	arrived   int
	vc        []uint64
	intervals []*interval
}

// selfIntervalsSince returns the intervals this node created with
// seq > from (its contribution to the barrier exchange).
func (n *Node) selfIntervalsSince(from uint64) []*interval {
	return n.intervalsAfter(n.ID, from, n.vc[n.ID])
}

func (n *Node) barCounter(seq int) *sim.Counter {
	ctr := n.barCount[seq]
	if ctr == nil {
		ctr = &sim.Counter{}
		n.barCount[seq] = ctr
	}
	return ctr
}

func (n *Node) barVCFor(seq int) []uint64 {
	v := n.barVC[seq]
	if v == nil {
		v = make([]uint64, n.sys.Cfg.Nodes)
		n.barVC[seq] = v
	}
	return v
}

func (n *Node) barFlagFor(seq int) *sim.Flag {
	f := n.barFlag[seq]
	if f == nil {
		f = &sim.Flag{}
		n.barFlag[seq] = f
	}
	return f
}

// Barrier blocks the calling processor until all processors in the
// system arrive. It returns the portion of this call's elapsed time
// that was protocol processing rather than wait (for Table 2).
func (n *Node) Barrier(p *sim.Proc) sim.Time {
	seq := n.barSeq
	ls := n.barLocal[seq]
	if ls == nil {
		ls = &barLocalSync{}
		n.barLocal[seq] = ls
	}
	ls.arrived++
	if ls.arrived < n.sys.Cfg.ProcsPerNode {
		// Not the node leader: wait for the leader to finish the epoch.
		ls.done.Wait(p)
		return 0
	}
	// Node leader (last local arriver): advance the node's epoch and
	// run the node's barrier protocol.
	n.barSeq++
	var proto sim.Time
	if n.sys.Feat.DW {
		proto = n.barrierDW(p, seq)
	} else {
		proto = n.barrierBase(p, seq)
	}
	n.Acct.BarrierProto += proto
	delete(n.barLocal, seq)
	ls.done.Set()
	return proto
}

// barrierDW is the interrupt-free flag barrier (DW and later).
func (n *Node) barrierDW(p *sim.Proc, seq int) sim.Time {
	t0 := p.Now()
	n.closeInterval(p) // diffs + eager notices
	// Record own arrival locally, then deposit the flag everywhere.
	myVC := append([]uint64(nil), n.vc...)
	local := n.barVCFor(seq)
	copy(local, maxVec(local, myVC))
	n.barCounter(seq).Add(1)
	for dst := 0; dst < n.sys.Cfg.Nodes; dst++ {
		if dst == n.ID {
			continue
		}
		dstNode := n.sys.Nodes[dst]
		msg := &barArriveMsg{src: n.ID, seq: seq, vc: myVC}
		n.ep.Deposit(p, dst, msg.wireSize(), "bar-flag", nil, func() {
			dstNode.depositBarFlag(msg)
		})
	}
	protoSoFar := p.Now() - t0

	// Wait for every node's flag (pure wait time).
	n.barCounter(seq).WaitFor(p, uint64(n.sys.Cfg.Nodes))

	// Apply invalidations for everything the barrier saw. Waiting for
	// in-flight notices counts as protocol time too: it is
	// communication the protocol deferred to the barrier.
	t1 := p.Now()
	target := append([]uint64(nil), n.barVCFor(seq)...)
	n.waitNotices(p, target)
	n.applyUpTo(p, target)
	delete(n.barCount, seq)
	delete(n.barVC, seq)
	return protoSoFar + (p.Now() - t1)
}

// depositBarFlag records a remote node's barrier arrival (engine
// context; deposited by the NI).
func (n *Node) depositBarFlag(m *barArriveMsg) {
	v := n.barVCFor(m.seq)
	copy(v, maxVec(v, m.vc))
	n.barCounter(m.seq).Add(1)
}

// barrierBase is the centralized interrupt-driven barrier.
func (n *Node) barrierBase(p *sim.Proc, seq int) sim.Time {
	t0 := p.Now()
	prevSelf := n.lastBarSelfSeq
	n.closeInterval(p)
	n.lastBarSelfSeq = n.vc[n.ID]
	arrive := &barArriveMsg{
		src:       n.ID,
		seq:       seq,
		vc:        append([]uint64(nil), n.vc...),
		intervals: n.selfIntervalsSince(prevSelf),
	}
	if n.ID == 0 {
		n.mb.Send(localMsg("bar-arrive", arrive))
	} else {
		n.ep.SendInterrupt(p, 0, arrive.wireSize(), "bar-arrive", arrive)
	}
	protoSoFar := p.Now() - t0

	// Wait for the master's release (wait time).
	f := n.barFlagFor(seq)
	f.Wait(p)
	rel := n.barPayload[seq]
	delete(n.barFlag, seq)
	delete(n.barPayload, seq)

	// Apply the released coherence information (protocol time).
	t2 := p.Now()
	for _, iv := range rel {
		if iv.Src != n.ID {
			n.recordInterval(iv)
		}
	}
	n.applyUpTo(p, n.barRelVC[seq])
	delete(n.barRelVC, seq)
	return protoSoFar + (p.Now() - t2)
}

// handleBarArrive runs on the master's protocol process.
func (n *Node) handleBarArrive(p *sim.Proc, m *barArriveMsg) {
	st := n.masterBar[m.seq]
	if st == nil {
		st = &masterBarState{vc: make([]uint64, n.sys.Cfg.Nodes)}
		n.masterBar[m.seq] = st
	}
	st.arrived++
	copy(st.vc, maxVec(st.vc, m.vc))
	st.intervals = append(st.intervals, m.intervals...)
	if st.arrived < n.sys.Cfg.Nodes {
		return
	}
	delete(n.masterBar, m.seq)
	rel := &barReleaseMsg{seq: m.seq, vc: st.vc, intervals: st.intervals}
	for dst := 0; dst < n.sys.Cfg.Nodes; dst++ {
		if dst == n.ID {
			n.handleBarRelease(rel)
			continue
		}
		n.ep.SendInterrupt(p, dst, rel.wireSize(), "bar-release", rel)
	}
}

// handleBarRelease delivers the release to the waiting node leader.
func (n *Node) handleBarRelease(m *barReleaseMsg) {
	n.barPayload[m.seq] = m.intervals
	n.barRelVC[m.seq] = m.vc
	n.barFlagFor(m.seq).Set()
}
