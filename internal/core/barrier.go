package core

import (
	"fmt"
	"sync/atomic"

	"genima/internal/sim"
	"genima/internal/vmmc"
)

// Barrier synchronization.
//
// Base: a centralized barrier. Each node's last-arriving processor (the
// node leader) closes the write interval, flushes diffs, and sends an
// arrival message — carrying the intervals the node created this epoch —
// to the barrier master (node 0), interrupting it. When all nodes have
// arrived, the master broadcasts a release message with the union of
// intervals; every node's leader applies the invalidations.
//
// DW and later: barrier control information is deposited directly into
// every node's protocol data structures. Each leader closes its
// interval (notices travel by eager deposit), deposits an arrival flag
// carrying its vector clock to all nodes, and then spins locally until
// all flags arrive — no interrupts anywhere. Invalidations (and their
// mprotect) are applied locally before leaving.

// barArriveMsg is an arrival record: a DW flag deposit (one pooled
// record fanned out to all peers, refcounted, freed at the last
// delivery) or a Base arrival sent to the master (freed there after
// aggregation). In a parallel run the fan-out deliveries may land on
// different logical processes within one round, so refs is decremented
// atomically and the last delivery returns the record to the pool of
// the node it landed on (records are fungible across node pools).
type barArriveMsg struct {
	refs      int32
	src       int
	seq       int
	vc        []uint64
	intervals []*interval
}

func (m *barArriveMsg) wireSize() int {
	n := 16 + 8*len(m.vc)
	for _, iv := range m.intervals {
		n += iv.wireSize()
	}
	return n
}

// barReleaseMsg is the master's release (Base): one pooled record
// shared by all Nodes deliveries; each leader decrements refs (atomic:
// leaders run on different logical processes) after applying it and the
// last one frees it into its own node's pool. The interval union is
// swapped out of the master's epoch state, not copied.
type barReleaseMsg struct {
	refs      int32
	seq       int
	vc        []uint64
	intervals []*interval
}

func (m *barReleaseMsg) wireSize() int {
	n := 16 + 8*len(m.vc)
	for _, iv := range m.intervals {
		n += iv.wireSize()
	}
	return n
}

// barEpoch is one slot of the per-node barrier epoch ring, replacing
// seven per-seq maps. A slot is recycled when a new epoch claims it;
// the embedded Flag/Counter Reset guards panic if the old epoch still
// had parked waiters (i.e. the 4-slot window was violated).
type barEpoch struct {
	seq   int         // epoch using this slot; -1 = never used
	count sim.Counter // DW: arrival flags deposited
	vc    []uint64    // DW: element-wise max vc of arrivals
	flag  sim.Flag    // Base: release arrived
	rel   *barReleaseMsg

	// Intra-node arrival bookkeeping.
	localArrived int
	localDone    sim.Flag

	// Base master aggregation (node 0 only).
	mArrived int
	mVC      []uint64
	mIvs     []*interval
}

func (e *barEpoch) reset(seq int) {
	e.seq = seq
	e.count.Reset()
	for i := range e.vc {
		e.vc[i] = 0
	}
	e.flag.Reset()
	e.rel = nil
	e.localArrived = 0
	e.localDone.Reset()
	e.mArrived = 0
	for i := range e.mVC {
		e.mVC[i] = 0
	}
	e.mIvs = e.mIvs[:0]
}

// barEpochAt returns the epoch record for barrier seq, claiming (and
// recycling) its ring slot on first use. At most two epochs are live at
// once — a slow node still inside epoch k while fast peers deposit k+1
// flags — so by the time epoch k+4 claims k's slot, k has fully
// drained (every local waiter of k resumed before arriving at k+1).
func (n *Node) barEpochAt(seq int) *barEpoch {
	e := &n.barEpochs[seq&3]
	if e.seq != seq {
		if e.seq > seq {
			panic(fmt.Sprintf("core: barrier epoch %d claims slot still held by %d at node %d", seq, e.seq, n.ID))
		}
		e.reset(seq)
	}
	return e
}

// Barrier blocks the calling processor until all processors in the
// system arrive. It returns the portion of this call's elapsed time
// that was protocol processing rather than wait (for Table 2).
func (n *Node) Barrier(p *sim.Proc) sim.Time {
	seq := n.barSeq
	e := n.barEpochAt(seq)
	e.localArrived++
	if e.localArrived < n.sys.Cfg.ProcsPerNode {
		// Not the node leader: wait for the leader to finish the epoch.
		e.localDone.Wait(p)
		return 0
	}
	// Node leader (last local arriver): advance the node's epoch and
	// run the node's barrier protocol.
	n.barSeq++
	var proto sim.Time
	switch {
	case n.sys.Feat.DW && n.sys.Cfg.Collectives && n.sys.Cfg.Nodes > 1:
		proto = n.barrierColl(p, seq)
	case n.sys.Feat.DW:
		proto = n.barrierDW(p, seq)
	default:
		proto = n.barrierBase(p, seq)
	}
	n.Acct.BarrierProto += proto
	e.localDone.Set()
	return proto
}

// barrierDW is the interrupt-free flag barrier (DW and later).
func (n *Node) barrierDW(p *sim.Proc, seq int) sim.Time {
	t0 := p.Now()
	n.closeInterval(p) // diffs + eager notices
	// Record own arrival locally, then deposit the flag everywhere: one
	// pooled record fanned out to every peer, freed at last delivery.
	e := n.barEpochAt(seq)
	vecMergeMax(e.vc, n.vc)
	e.count.Add(1)
	if n.sys.Cfg.Nodes > 1 {
		m := n.getBarArr()
		m.src, m.seq = n.ID, seq
		copy(m.vc, n.vc)
		m.refs = int32(n.sys.Cfg.Nodes - 1)
		for dst := 0; dst < n.sys.Cfg.Nodes; dst++ {
			if dst == n.ID {
				continue
			}
			n.ep.DepositTo(p, dst, m.wireSize(), "bar-flag", m, &n.sys.barFlagDel)
		}
	}
	protoSoFar := p.Now() - t0

	// Wait for every node's flag (pure wait time).
	e.count.WaitFor(p, uint64(n.sys.Cfg.Nodes))

	// Apply invalidations for everything the barrier saw (e.vc is
	// stable once the counter reaches Nodes: no further deposits for
	// this epoch can arrive, and the slot outlives the leader). Waiting
	// for in-flight notices counts as protocol time too: it is
	// communication the protocol deferred to the barrier.
	t1 := p.Now()
	n.waitNotices(p, e.vc)
	n.applyUpTo(p, e.vc)
	return protoSoFar + (p.Now() - t1)
}

// barrierColl is the NI-firmware tree barrier (DW and later, with
// Config.Collectives): the leader contributes its vector clock to the
// k-ary reduction tree rooted at node 0 and blocks until the combined
// vector is DMA'd back by the broadcast phase — one post instead of
// Nodes-1, and every combine/fan-out step runs in NI memory with no
// host interrupts anywhere.
func (n *Node) barrierColl(p *sim.Proc, seq int) sim.Time {
	t0 := p.Now()
	n.closeInterval(p) // diffs + eager (tree-broadcast) notices
	e := n.barEpochAt(seq)
	n.ep.NI().ColBarrierArrive(p, seq, n.vc)
	protoSoFar := p.Now() - t0

	// Wait for the released epoch (pure wait time); the sink stored the
	// combined vector in e.vc before setting the flag.
	e.flag.Wait(p)

	t1 := p.Now()
	n.waitNotices(p, e.vc)
	n.applyUpTo(p, e.vc)
	return protoSoFar + (p.Now() - t1)
}

// colBarSink receives completed tree-barrier epochs from the NI layer
// (engine context on the landing node's LP).
type colBarSink struct{ s *System }

// ColBarrierDone implements nic.ColBarrierSink.
func (k *colBarSink) ColBarrierDone(node, seq int, vec []uint64) {
	n := k.s.Nodes[node]
	e := n.barEpochAt(seq)
	copy(e.vc, vec) // vec is the collective layer's buffer: copy, don't keep
	e.flag.Set()
}

// depositBarFlag records a remote node's barrier arrival (engine
// context; deposited by the NI).
func (n *Node) depositBarFlag(m *barArriveMsg) {
	e := n.barEpochAt(m.seq)
	vecMergeMax(e.vc, m.vc)
	e.count.Add(1)
}

// barrierBase is the centralized interrupt-driven barrier.
func (n *Node) barrierBase(p *sim.Proc, seq int) sim.Time {
	t0 := p.Now()
	prevSelf := n.lastBarSelfSeq
	n.closeInterval(p)
	n.lastBarSelfSeq = n.vc[n.ID]
	arrive := n.getBarArr()
	arrive.src, arrive.seq = n.ID, seq
	copy(arrive.vc, n.vc)
	arrive.intervals = n.appendIntervalsAfter(arrive.intervals, n.ID, prevSelf, n.vc[n.ID])
	if n.ID == 0 {
		n.pm.post(localMsg(vmmc.MsgBarArrive, arrive))
	} else {
		n.ep.SendInterrupt(p, 0, arrive.wireSize(), vmmc.MsgBarArrive, arrive)
	}
	protoSoFar := p.Now() - t0

	// Wait for the master's release (wait time).
	e := n.barEpochAt(seq)
	e.flag.Wait(p)
	rel := e.rel

	// Apply the released coherence information (protocol time).
	t2 := p.Now()
	for _, iv := range rel.intervals {
		if iv.Src != n.ID {
			n.recordInterval(iv)
		}
	}
	n.applyUpTo(p, rel.vc)
	if atomic.AddInt32(&rel.refs, -1) == 0 {
		n.putBarRel(rel)
	}
	return protoSoFar + (p.Now() - t2)
}

// Barrier arrival aggregation at the master runs on the protocol
// machine: see barArrive/pmBarRel in handler.go.

// handleBarRelease delivers the release to the waiting node leader.
func (n *Node) handleBarRelease(m *barReleaseMsg) {
	e := n.barEpochAt(m.seq)
	e.rel = m
	e.flag.Set()
}
