// Package core implements the paper's contribution: the home-based lazy
// release consistency SVM protocol family running over VMMC.
//
// Five cumulative protocol configurations are supported, exactly the
// ladder evaluated in §3.3 of the paper:
//
//	Base    — HLRC-SMP: every incoming protocol request (page fetch,
//	          lock acquire, diff application) interrupts a host
//	          processor and is serviced by a floating protocol process.
//	DW      — direct writes: write notices and barrier control
//	          information are deposited directly into remote protocol
//	          data structures at release time, eagerly, with no
//	          interrupts for coherence propagation.
//	DW+RF   — remote fetch: page timestamps and page data are pulled
//	          from the home by the requesting node's NI, with requester
//	          retry when the home version is stale.
//	DW+RF+DD — direct diffs: each contiguous run of modified words is
//	          deposited straight into the home copy as the diff is
//	          computed at release time (hybrid: skipped when the lock
//	          moves to another processor in the same node).
//	GeNIMA  — all of the above plus NI locks: mutual exclusion handled
//	          entirely in NI firmware; no interrupts remain.
//
// Shared data is real: applications read and write bytes in page copies,
// twins are compared word by word, and diffs are applied at homes, so a
// protocol bug produces wrong application output, not just wrong timing.
package core

import (
	"fmt"

	"genima/internal/memory"
	"genima/internal/sim"
	"genima/internal/stats"
	"genima/internal/topo"
	"genima/internal/vmmc"
)

// Kind selects a protocol configuration.
type Kind int

// The protocol ladder, in the paper's order.
const (
	Base Kind = iota
	DW
	DWRF
	DWRFDD
	GeNIMA
)

var kindNames = [...]string{"Base", "DW", "DW+RF", "DW+RF+DD", "GeNIMA"}

// String names the protocol.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds lists all protocol rungs in evaluation order.
func Kinds() []Kind { return []Kind{Base, DW, DWRF, DWRFDD, GeNIMA} }

// Features are the individual NI mechanisms; each Kind enables a prefix.
type Features struct {
	DW  bool // remote deposit for protocol data (eager write notices)
	RF  bool // remote fetch for pages + timestamps
	DD  bool // direct diffs
	NIL bool // NI locks
}

// FeaturesOf expands a Kind into its feature set.
func FeaturesOf(k Kind) Features {
	switch k {
	case Base:
		return Features{}
	case DW:
		return Features{DW: true}
	case DWRF:
		return Features{DW: true, RF: true}
	case DWRFDD:
		return Features{DW: true, RF: true, DD: true}
	default:
		return Features{DW: true, RF: true, DD: true, NIL: true}
	}
}

// System is one protocol instance spanning the cluster.
type System struct {
	Eng   *sim.Engine
	Cfg   *topo.Config
	Kind  Kind
	Feat  Features
	Space *memory.Space
	Layer *vmmc.Layer
	Nodes []*Node

	// Shared packet deliverers that must map a destination id to a Node.
	noticeDel  noticeDeliver
	grantDel   grantDeliver
	barFlagDel barFlagDeliver

	// colSink receives completed NI-tree barrier epochs (collectives).
	colSink colBarSink
}

// New creates a protocol system over a fresh communication layer. The
// space must be fully allocated before Start is called.
func New(eng *sim.Engine, cfg *topo.Config, kind Kind, space *memory.Space) *System {
	s := &System{
		Eng:   eng,
		Cfg:   cfg,
		Kind:  kind,
		Feat:  FeaturesOf(kind),
		Space: space,
		Layer: vmmc.New(eng, cfg),
	}
	s.noticeDel.s = s
	s.grantDel.s = s
	s.barFlagDel.s = s
	s.Nodes = make([]*Node, cfg.Nodes)
	for i := range s.Nodes {
		s.Nodes[i] = newNode(s, i)
	}
	if cfg.Collectives && s.Feat.DW && cfg.Nodes > 1 {
		// NI-firmware collective trees need the deposit-write capability
		// (protocol data deposited without host involvement): DW and up
		// use them for barriers and write notices; Base keeps its
		// interrupt-driven paths as the contrast case.
		s.colSink.s = s
		for _, n := range s.Nodes {
			n.ep.NI().EnableCollectives(cfg.CollectiveArity, &s.colSink)
		}
	}
	return s
}

// newInterval allocates an interval with room for npages page ids from
// the node's arena (intervals are only ever created by their source
// node, so the arena is per-node and touched only by the node's LP).
// The chunk pointers stay valid when a new chunk starts.
func (n *Node) newInterval(seq uint64, npages int) *interval {
	if len(n.ivChunk) == cap(n.ivChunk) {
		n.ivChunk = make([]interval, 0, 256)
	}
	n.ivChunk = append(n.ivChunk, interval{Src: n.ID, Seq: seq})
	iv := &n.ivChunk[len(n.ivChunk)-1]
	if cap(n.ivPages)-len(n.ivPages) < npages {
		c := 4096
		if npages > c {
			c = npages
		}
		n.ivPages = make([]int32, 0, c)
	}
	off := len(n.ivPages)
	n.ivPages = n.ivPages[:off+npages]
	iv.Pages = n.ivPages[off : off+npages : off+npages]
	return iv
}

// Start finalizes per-page state (after all allocations). Call exactly
// once, before application processors run.
func (s *System) Start() {
	for _, n := range s.Nodes {
		n.start()
	}
}

// Node returns node i.
func (s *System) Node(i int) *Node { return s.Nodes[i] }

// Accounting aggregates per-node protocol accounting.
func (s *System) Accounting() stats.SVMAccounting {
	var a stats.SVMAccounting
	for _, n := range s.Nodes {
		a.Merge(n.Acct)
	}
	return a
}

// interval is one node's closed write interval: the unit of coherence
// information (a write notice batch).
type interval struct {
	Src   int
	Seq   uint64
	Pages []int32
}

// wireSize returns the interval's size as a write-notice message.
func (iv *interval) wireSize() int { return 16 + 4*len(iv.Pages) }

// pageState is a node's view of one page.
type pageState uint8

const (
	pageInvalid pageState = iota
	pageValid
)

// Node is the per-SMP-node protocol state: the node-level page table
// (hardware coherence is exploited inside the node), interval log,
// vector clock, and — for pages homed here — the per-writer applied
// versions.
type Node struct {
	sys *System
	ID  int

	// eng is the node's logical process. In a serial run it is the
	// system engine; in a parallel run every engine-context action of
	// this node (protocol machine resumptions, gate wakeups) must be
	// scheduled here so it stays on the node's own event heap.
	eng *sim.Engine

	Mem *memory.NodeMem
	ep  *vmmc.Endpoint

	state     []pageState
	fetching  []bool      // per page: a fetch is in flight (collapses faults)
	fetchQ    []sim.WaitQ // per page: waiters on the in-flight fetch
	homeWaitQ []sim.WaitQ // per page homed here: accessors waiting on version

	vc      []uint64      // applied interval seq per source node
	arrived []sim.Counter // deposited notice count per source node
	log     [][]*interval // received intervals per source, indexed seq-1

	need       vecTable // per page: required home version per writer node
	copyVer    vecTable // per page: home version row at fetch time
	copyVerSet []bool   // per page: copyVer row is meaningful (fetched at least once)
	homeVer    vecTable // per page homed here: applied interval seq per writer

	dirtySet  []bool    // per page: written in the open interval
	dirtyList []int32   // the dirty pages, unsorted
	ivGate    *sim.Gate // serializes interval close within the node

	pendingReqs map[int][]pendingPage // Base: queued page requests per page

	locks map[int]*nodeLock

	// lockDir is the Base-path home-side lock directory for locks homed
	// at this node (only the home's protocol machine touches it).
	lockDir map[int]*lockMeta

	// Interval arena backing for intervals created by this node.
	ivChunk []interval
	ivPages []int32

	// The floating protocol process: a resumable state machine (see
	// handler.go), not a goroutine.
	pm protoMachine

	// Interrupt scheduling perturbation, charged round-robin to the
	// node's compute processors at their next compute step.
	steal  []sim.Time
	victim int

	// Barrier state: a ring of epoch records. At most two epochs are
	// ever live at once (a slow node still in epoch k while fast nodes
	// deposit k+1 flags); four slots leave slack, and the seq tags plus
	// Flag/Counter Reset guards catch any window violation.
	barSeq         int
	barEpochs      [4]barEpoch
	lastBarSelfSeq uint64 // own intervals already exchanged at barriers

	// Free lists for pooled protocol records (see pool.go) and scratch
	// storage reused across installFetched calls.
	pageReqFree []*pageReqMsg
	fpFree      []*fetchPayload
	diffFree    []*diffMsg
	lockReqFree []*lockReqMsg
	grantFree   []*lockGrant
	vcMsgFree   []*vcMsg
	barArrFree  []*barArriveMsg
	barRelFree  []*barReleaseMsg
	runDepFree  []*runDep
	verMarkFree []*verMark
	sgDepFree   []*sgDep
	invFree     [][]int
	lockChunk   []nodeLock // arena for nodeLock records (see Node.lock)
	modsRuns    []memory.Run
	modsBuf     []byte

	Acct stats.SVMAccounting
}

func newNode(s *System, id int) *Node {
	n := &Node{
		sys:         s,
		ID:          id,
		eng:         s.Eng.LPNode(id),
		ep:          s.Layer.Endpoint(id),
		arrived:     make([]sim.Counter, s.Cfg.Nodes),
		log:         make([][]*interval, s.Cfg.Nodes),
		ivGate:      sim.NewGate(1),
		pendingReqs: map[int][]pendingPage{},
		locks:       map[int]*nodeLock{},
		lockDir:     map[int]*lockMeta{},
		steal:       make([]sim.Time, s.Cfg.ProcsPerNode),
	}
	// One backing array serves the node vector clock and the barrier
	// epochs' vectors (nine fixed-size vectors; full slice caps keep
	// them from spilling into each other).
	nn := s.Cfg.Nodes
	vecs := make([]uint64, (1+2*len(n.barEpochs))*nn)
	cut := func() []uint64 {
		v := vecs[:nn:nn]
		vecs = vecs[nn:]
		return v
	}
	n.vc = cut()
	for i := range n.barEpochs {
		n.barEpochs[i].seq = -1
		n.barEpochs[i].vc = cut()
		n.barEpochs[i].mVC = cut()
	}
	n.pm.n = n
	n.ep.Perturb = n.perturb
	n.ep.Sink = &n.pm
	return n
}

func (n *Node) start() {
	np := n.sys.Space.NPages()
	nodes := n.sys.Cfg.Nodes
	n.Mem = memory.NewNodeMem(n.sys.Space)
	n.state = make([]pageState, np)
	// Per-page slices share backing arrays by element type (full slice
	// caps prevent cross-spill): three bool tables, two WaitQ tables,
	// and the three per-page version tables.
	bools := make([]bool, 3*np)
	n.fetching = bools[0:np:np]
	n.copyVerSet = bools[np : 2*np : 2*np]
	n.dirtySet = bools[2*np : 3*np : 3*np]
	qs := make([]sim.WaitQ, 2*np)
	n.fetchQ = qs[0:np:np]
	n.homeWaitQ = qs[np : 2*np : 2*np]
	rows := make([]uint64, 3*np*nodes)
	n.need = vecTable{nodes: nodes, a: rows[0 : np*nodes : np*nodes]}
	n.copyVer = vecTable{nodes: nodes, a: rows[np*nodes : 2*np*nodes : 2*np*nodes]}
	n.homeVer = vecTable{nodes: nodes, a: rows[2*np*nodes : 3*np*nodes : 3*np*nodes]}
	for p := 0; p < np; p++ {
		if n.sys.Space.Home(p) == n.ID {
			n.state[p] = pageValid // the home copy is always materialized
		}
	}
	if n.sys.Feat.RF {
		n.ep.FetchServer = n.serveFetch
	}
	// The floating protocol process (n.pm) exists in all configurations
	// (some residual interrupt-class traffic exists until GeNIMA), but
	// under GeNIMA it never receives a message. As a state machine it
	// needs no startup event: it runs only when a message arrives.
}

// perturb charges interrupt scheduling perturbation to the next victim
// compute processor (round robin).
func (n *Node) perturb() {
	n.steal[n.victim] += n.sys.Cfg.Costs.SchedPerturb
	n.victim = (n.victim + 1) % len(n.steal)
}

// TakeSteal consumes pending stolen time for processor slot cpu; the app
// harness adds it to the processor's next compute period.
func (n *Node) TakeSteal(cpu int) sim.Time {
	t := n.steal[cpu]
	n.steal[cpu] = 0
	return t
}

// PageBytes returns the node's working copy of a page: the authoritative
// home copy when this node is the page's home, the local copy otherwise.
// Callers must bracket accesses with EnsureReadable/EnsureWritable.
func (n *Node) PageBytes(page int) []byte {
	if n.sys.Space.Home(page) == n.ID {
		return n.sys.Space.HomeCopy(page)
	}
	return n.Mem.Page(page)
}

// needSatisfied reports whether verRow covers this node's requirements
// for page p.
func (n *Node) needSatisfied(p int, verRow []uint64) bool {
	return vecCovered(n.need.row(p), verRow)
}

// applyIntervalMeta applies a write notice: records the page requirement
// and collects pages to invalidate (the caller batches the mprotect).
// Pages homed at this node are not invalidated (the home copy is master);
// accesses to them wait on the home version instead. A local copy that
// was fetched after the interval's diff reached the home is already
// current and is not invalidated (the copy-version check of HLRC).
func (n *Node) applyIntervalMeta(iv *interval, invalidate *[]int) {
	for _, p32 := range iv.Pages {
		p := int(p32)
		if row := n.need.row(p); row[iv.Src] < iv.Seq {
			row[iv.Src] = iv.Seq
		}
		if n.sys.Space.Home(p) == n.ID {
			continue
		}
		if n.state[p] == pageValid && (!n.copyVerSet[p] || n.copyVer.row(p)[iv.Src] < iv.Seq) {
			n.state[p] = pageInvalid
			*invalidate = append(*invalidate, p)
		}
	}
	if n.vc[iv.Src] < iv.Seq {
		n.vc[iv.Src] = iv.Seq
	}
}

// recordInterval stores a received interval in the log. The log only
// ever grows, so extending within capacity just re-slices (the tail is
// still zero from the backing array's make); growth jumps geometrically
// rather than entry by entry.
func (n *Node) recordInterval(iv *interval) {
	lg := n.log[iv.Src]
	if uint64(len(lg)) < iv.Seq {
		if uint64(cap(lg)) < iv.Seq {
			newCap := uint64(cap(lg)) * 4
			if newCap < 64 {
				newCap = 64
			}
			if newCap < iv.Seq {
				newCap = iv.Seq
			}
			ng := make([]*interval, iv.Seq, newCap)
			copy(ng, lg)
			lg = ng
		} else {
			lg = lg[:iv.Seq]
		}
	}
	lg[iv.Seq-1] = iv
	n.log[iv.Src] = lg
}

// appendIntervalsAfter appends this node's known intervals from src in
// (from, to] onto out (piggybacked on Base lock grants and barrier
// arrivals), reusing out's backing array.
func (n *Node) appendIntervalsAfter(out []*interval, src int, from, to uint64) []*interval {
	lg := n.log[src]
	for s := from + 1; s <= to; s++ {
		if s-1 < uint64(len(lg)) && lg[s-1] != nil {
			out = append(out, lg[s-1])
		}
	}
	return out
}

// markDirty registers a page in the node's open write interval.
func (n *Node) markDirty(pg int) {
	if !n.dirtySet[pg] {
		n.dirtySet[pg] = true
		n.dirtyList = append(n.dirtyList, int32(pg))
	}
}
