// Package core implements the paper's contribution: the home-based lazy
// release consistency SVM protocol family running over VMMC.
//
// Five cumulative protocol configurations are supported, exactly the
// ladder evaluated in §3.3 of the paper:
//
//	Base    — HLRC-SMP: every incoming protocol request (page fetch,
//	          lock acquire, diff application) interrupts a host
//	          processor and is serviced by a floating protocol process.
//	DW      — direct writes: write notices and barrier control
//	          information are deposited directly into remote protocol
//	          data structures at release time, eagerly, with no
//	          interrupts for coherence propagation.
//	DW+RF   — remote fetch: page timestamps and page data are pulled
//	          from the home by the requesting node's NI, with requester
//	          retry when the home version is stale.
//	DW+RF+DD — direct diffs: each contiguous run of modified words is
//	          deposited straight into the home copy as the diff is
//	          computed at release time (hybrid: skipped when the lock
//	          moves to another processor in the same node).
//	GeNIMA  — all of the above plus NI locks: mutual exclusion handled
//	          entirely in NI firmware; no interrupts remain.
//
// Shared data is real: applications read and write bytes in page copies,
// twins are compared word by word, and diffs are applied at homes, so a
// protocol bug produces wrong application output, not just wrong timing.
package core

import (
	"fmt"

	"genima/internal/memory"
	"genima/internal/sim"
	"genima/internal/stats"
	"genima/internal/topo"
	"genima/internal/vmmc"
)

// Kind selects a protocol configuration.
type Kind int

// The protocol ladder, in the paper's order.
const (
	Base Kind = iota
	DW
	DWRF
	DWRFDD
	GeNIMA
)

var kindNames = [...]string{"Base", "DW", "DW+RF", "DW+RF+DD", "GeNIMA"}

// String names the protocol.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds lists all protocol rungs in evaluation order.
func Kinds() []Kind { return []Kind{Base, DW, DWRF, DWRFDD, GeNIMA} }

// Features are the individual NI mechanisms; each Kind enables a prefix.
type Features struct {
	DW  bool // remote deposit for protocol data (eager write notices)
	RF  bool // remote fetch for pages + timestamps
	DD  bool // direct diffs
	NIL bool // NI locks
}

// FeaturesOf expands a Kind into its feature set.
func FeaturesOf(k Kind) Features {
	switch k {
	case Base:
		return Features{}
	case DW:
		return Features{DW: true}
	case DWRF:
		return Features{DW: true, RF: true}
	case DWRFDD:
		return Features{DW: true, RF: true, DD: true}
	default:
		return Features{DW: true, RF: true, DD: true, NIL: true}
	}
}

// System is one protocol instance spanning the cluster.
type System struct {
	Eng   *sim.Engine
	Cfg   *topo.Config
	Kind  Kind
	Feat  Features
	Space *memory.Space
	Layer *vmmc.Layer
	Nodes []*Node

	locks map[int]*lockMeta // Base-path lock directory metadata
}

// New creates a protocol system over a fresh communication layer. The
// space must be fully allocated before Start is called.
func New(eng *sim.Engine, cfg *topo.Config, kind Kind, space *memory.Space) *System {
	s := &System{
		Eng:   eng,
		Cfg:   cfg,
		Kind:  kind,
		Feat:  FeaturesOf(kind),
		Space: space,
		Layer: vmmc.New(eng, cfg),
		locks: map[int]*lockMeta{},
	}
	s.Nodes = make([]*Node, cfg.Nodes)
	for i := range s.Nodes {
		s.Nodes[i] = newNode(s, i)
	}
	return s
}

// Start finalizes per-page state (after all allocations) and launches
// the Base protocol processes. Call exactly once, before application
// processors run.
func (s *System) Start() {
	for _, n := range s.Nodes {
		n.start()
	}
}

// Node returns node i.
func (s *System) Node(i int) *Node { return s.Nodes[i] }

// Accounting aggregates per-node protocol accounting.
func (s *System) Accounting() stats.SVMAccounting {
	var a stats.SVMAccounting
	for _, n := range s.Nodes {
		a.Merge(n.Acct)
	}
	return a
}

// interval is one node's closed write interval: the unit of coherence
// information (a write notice batch).
type interval struct {
	Src   int
	Seq   uint64
	Pages []int32
}

// wireSize returns the interval's size as a write-notice message.
func (iv *interval) wireSize() int { return 16 + 4*len(iv.Pages) }

// pageState is a node's view of one page.
type pageState uint8

const (
	pageInvalid pageState = iota
	pageValid
)

// Node is the per-SMP-node protocol state: the node-level page table
// (hardware coherence is exploited inside the node), interval log,
// vector clock, and — for pages homed here — the per-writer applied
// versions.
type Node struct {
	sys *System
	ID  int

	Mem *memory.NodeMem
	ep  *vmmc.Endpoint

	state    []pageState
	inFlight map[int]*sim.Flag // page-id -> fetch completion
	homeWait map[int]*sim.WaitQ

	vc      []uint64       // applied interval seq per source node
	arrived []*sim.Counter // deposited notice count per source node
	log     [][]*interval  // received intervals per source, indexed seq-1

	need    [][]uint64 // per page: required home version per writer node
	copyVer [][]uint64 // per page: home version row at fetch time (nil = never fetched)
	homeVer [][]uint64 // per page homed here: applied interval seq per writer

	dirty  map[int]struct{} // pages written in the open interval
	ivGate *sim.Gate        // serializes interval close within the node

	pendingReqs map[int][]pendingPage // Base: queued page requests per page

	locks map[int]*nodeLock

	// Base protocol process.
	mb        sim.Mailbox[vmmc.Msg]
	protoProc *sim.Proc

	// Interrupt scheduling perturbation, charged round-robin to the
	// node's compute processors at their next compute step.
	steal  []sim.Time
	victim int

	// Barrier state.
	barSeq         int
	barCount       map[int]*sim.Counter    // barrier seq -> arrival counter (DW flags)
	barVC          map[int][]uint64        // barrier seq -> element-wise max vc of arrivals
	barFlag        map[int]*sim.Flag       // barrier seq -> node released (Base)
	barPayload     map[int][]*interval     // Base: intervals delivered with release
	barRelVC       map[int][]uint64        // Base: release vector clock
	barLocal       map[int]*barLocalSync   // intra-node arrival bookkeeping
	masterBar      map[int]*masterBarState // Base master aggregation (node 0)
	lastBarSelfSeq uint64                  // own intervals already exchanged at barriers

	Acct stats.SVMAccounting
}

type barLocalSync struct {
	arrived int
	done    sim.Flag
}

func newNode(s *System, id int) *Node {
	n := &Node{
		sys:         s,
		ID:          id,
		ep:          s.Layer.Endpoint(id),
		inFlight:    map[int]*sim.Flag{},
		homeWait:    map[int]*sim.WaitQ{},
		vc:          make([]uint64, s.Cfg.Nodes),
		arrived:     make([]*sim.Counter, s.Cfg.Nodes),
		log:         make([][]*interval, s.Cfg.Nodes),
		dirty:       map[int]struct{}{},
		ivGate:      sim.NewGate(1),
		pendingReqs: map[int][]pendingPage{},
		locks:       map[int]*nodeLock{},
		steal:       make([]sim.Time, s.Cfg.ProcsPerNode),
		barCount:    map[int]*sim.Counter{},
		barVC:       map[int][]uint64{},
		barFlag:     map[int]*sim.Flag{},
		barPayload:  map[int][]*interval{},
		barRelVC:    map[int][]uint64{},
		barLocal:    map[int]*barLocalSync{},
		masterBar:   map[int]*masterBarState{},
	}
	for i := range n.arrived {
		n.arrived[i] = &sim.Counter{}
	}
	n.ep.Perturb = n.perturb
	n.ep.InterruptSink = func(m vmmc.Msg) { n.mb.Send(m) }
	return n
}

func (n *Node) start() {
	np := n.sys.Space.NPages()
	n.Mem = memory.NewNodeMem(n.sys.Space)
	n.state = make([]pageState, np)
	n.need = make([][]uint64, np)
	n.copyVer = make([][]uint64, np)
	n.homeVer = make([][]uint64, np)
	for p := 0; p < np; p++ {
		n.need[p] = make([]uint64, n.sys.Cfg.Nodes)
		if n.sys.Space.Home(p) == n.ID {
			n.homeVer[p] = make([]uint64, n.sys.Cfg.Nodes)
			n.state[p] = pageValid // the home copy is always materialized
		}
	}
	if n.sys.Feat.RF {
		n.ep.FetchServer = n.serveFetch
	}
	// The floating protocol process exists in all configurations (some
	// residual interrupt-class traffic exists until GeNIMA), but under
	// GeNIMA it never receives a message.
	n.protoProc = n.sys.Eng.Go(fmt.Sprintf("proto-%d", n.ID), n.protoLoop)
}

// perturb charges interrupt scheduling perturbation to the next victim
// compute processor (round robin).
func (n *Node) perturb() {
	n.steal[n.victim] += n.sys.Cfg.Costs.SchedPerturb
	n.victim = (n.victim + 1) % len(n.steal)
}

// TakeSteal consumes pending stolen time for processor slot cpu; the app
// harness adds it to the processor's next compute period.
func (n *Node) TakeSteal(cpu int) sim.Time {
	t := n.steal[cpu]
	n.steal[cpu] = 0
	return t
}

// PageBytes returns the node's working copy of a page: the authoritative
// home copy when this node is the page's home, the local copy otherwise.
// Callers must bracket accesses with EnsureReadable/EnsureWritable.
func (n *Node) PageBytes(page int) []byte {
	if n.sys.Space.Home(page) == n.ID {
		return n.sys.Space.HomeCopy(page)
	}
	return n.Mem.Page(page)
}

// needSatisfied reports whether verRow covers this node's requirements
// for page p.
func (n *Node) needSatisfied(p int, verRow []uint64) bool {
	for src, want := range n.need[p] {
		if verRow[src] < want {
			return false
		}
	}
	return true
}

// applyIntervalMeta applies a write notice: records the page requirement
// and collects pages to invalidate (the caller batches the mprotect).
// Pages homed at this node are not invalidated (the home copy is master);
// accesses to them wait on the home version instead. A local copy that
// was fetched after the interval's diff reached the home is already
// current and is not invalidated (the copy-version check of HLRC).
func (n *Node) applyIntervalMeta(iv *interval, invalidate *[]int) {
	for _, p32 := range iv.Pages {
		p := int(p32)
		if n.need[p][iv.Src] < iv.Seq {
			n.need[p][iv.Src] = iv.Seq
		}
		if n.sys.Space.Home(p) == n.ID {
			continue
		}
		if n.state[p] == pageValid && (n.copyVer[p] == nil || n.copyVer[p][iv.Src] < iv.Seq) {
			n.state[p] = pageInvalid
			*invalidate = append(*invalidate, p)
		}
	}
	if n.vc[iv.Src] < iv.Seq {
		n.vc[iv.Src] = iv.Seq
	}
}

// recordInterval stores a received interval in the log.
func (n *Node) recordInterval(iv *interval) {
	lg := n.log[iv.Src]
	for uint64(len(lg)) < iv.Seq {
		lg = append(lg, nil)
	}
	lg[iv.Seq-1] = iv
	n.log[iv.Src] = lg
}

// intervalsAfter returns this node's known intervals from src in
// (from, to], for piggybacking on Base lock grants.
func (n *Node) intervalsAfter(src int, from, to uint64) []*interval {
	var out []*interval
	lg := n.log[src]
	for s := from + 1; s <= to; s++ {
		if s-1 < uint64(len(lg)) && lg[s-1] != nil {
			out = append(out, lg[s-1])
		}
	}
	return out
}
