package rng

import (
	"testing"
	"testing/quick"
)

// TestFrozenSequence pins the first draws of a known seed. These values
// are load-bearing: internal/faults derives its verdict streams from
// this generator, and the repo's golden trace hashes pin those verdicts.
// If this test moves, the stream algorithm changed and every golden
// hash in trace_golden_test.go is invalid.
func TestFrozenSequence(t *testing.T) {
	r := New(42)
	want := []uint64{
		0xbdd732262feb6e95, 0x28efe333b266f103, 0x47526757130f9f52,
	}
	for i, w := range want {
		if got := r.Next(); got != w {
			// Recompute `want` only if the algorithm is deliberately
			// changed — which also invalidates the golden trace hashes.
			t.Fatalf("Next()[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 64; i++ {
			if a.Next() != b.Next() {
				return false
			}
		}
		return a.State() == b.State()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloatRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 64; i++ {
			if v := r.Float(); v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1 << 20} {
		for i := 0; i < 200; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

// TestDeriveIndependence: streams derived from the same seed with
// different indices (or salts) must not track each other. Exact
// collisions over a 32-draw prefix would mean the derivation failed to
// decorrelate.
func TestDeriveIndependence(t *testing.T) {
	f := func(seed uint64, i, j uint16) bool {
		if i == j {
			return true
		}
		a := Derive(seed, uint64(i), 0)
		b := Derive(seed, uint64(j), 0)
		for k := 0; k < 32; k++ {
			if a.Next() != b.Next() {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Salt decorrelates two streams with the same index.
	a := Derive(1, 0, 0)
	b := Derive(1, 0, 0xd1b54a32d192ed03)
	same := true
	for k := 0; k < 32; k++ {
		if a.Next() != b.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("salted stream tracks unsalted stream")
	}
}

// TestDeriveDeterminism: Derive is a pure function of (seed, index,
// salt).
func TestDeriveDeterminism(t *testing.T) {
	f := func(seed, index, salt uint64) bool {
		a, b := Derive(seed, index, salt), Derive(seed, index, salt)
		for k := 0; k < 16; k++ {
			if a.Next() != b.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSeedIndependence: different seeds give different streams.
func TestSeedIndependence(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		if s1 == s2 {
			return true
		}
		a, b := New(s1), New(s2)
		for k := 0; k < 32; k++ {
			if a.Next() != b.Next() {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformityRough(t *testing.T) {
	// 20k draws into 16 buckets: each should hold ~1250; a frozen,
	// correct splitmix64 lands well inside ±25%.
	r := New(12345)
	var buckets [16]int
	const n = 20000
	for i := 0; i < n; i++ {
		buckets[r.Next()>>60]++
	}
	for i, c := range buckets {
		if c < n/16*3/4 || c > n/16*5/4 {
			t.Fatalf("bucket %d has %d draws (expected ~%d)", i, c, n/16)
		}
	}
}

func TestMix64(t *testing.T) {
	// Mix64(x) must equal the first Next() of a stream whose pre-advance
	// state is x (splitmix64's finalizer applied to x + golden gamma).
	f := func(x uint64) bool {
		r := New(x)
		return Mix64(x) == r.Next()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Mix64(1) == Mix64(2) {
		t.Fatal("Mix64 collides on 1,2")
	}
}
