// Package rng provides the repo's one deterministic random stream: a
// splitmix64 generator. Every stochastic subsystem (fault injection,
// the svmkv request generator) derives independent Streams from its
// configured seed — no wall clock, no global rand — so a run with the
// same configuration replays byte-identically on any box.
//
// The stream algorithm is frozen: internal/faults' verdict sequences
// are pinned by golden trace hashes, so any change to Next's constants
// or draw arithmetic is a protocol-visible regression.
package rng

// Stream is a splitmix64 stream: tiny, fast, and deterministic. The
// zero value is a valid stream (seed 0); derive decorrelated streams
// from one seed with Derive.
type Stream uint64

// New returns a stream starting at state seed.
func New(seed uint64) Stream { return Stream(seed) }

// Next advances the stream and returns the next 64 uniform bits.
func (r *Stream) Next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *Stream) Float() float64 { return float64(r.Next()>>11) / (1 << 53) }

// Intn returns a uniform draw in [0, n); n must be positive. The tiny
// modulo bias (< n/2^64) is irrelevant at the stream's use sites and
// keeps the draw a single Next call, which the frozen-stream contract
// requires.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// State returns the raw stream state (for digests and checkpoints).
func (r Stream) State() uint64 { return uint64(r) }

// Derive returns a stream decorrelated from seed by an index: the
// golden-ratio stride separates adjacent ids, one scramble round moves
// the starting states far apart. Index 0 with salt 0 is NOT the same
// as New(seed): Derive is for families of independent streams, New for
// resuming a known raw state.
func Derive(seed, index, salt uint64) Stream {
	z := seed ^ (index+1)*0x9e3779b97f4a7c15 ^ salt
	r := Stream(z)
	r.Next()
	return r
}

// Mix64 is a one-shot splitmix64 finalizer: a stateless hash of x,
// used to decorrelate values (key → shard placement, request → stored
// value) without consuming any stream state.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
