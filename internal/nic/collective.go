package nic

// NI-firmware collective trees (the scaling extension of the paper's
// "let the NI do it synchronously" thesis, cf. the NI-based collective
// results on Quadrics/Myrinet in PAPERS.md): barrier reduction and
// write-notice broadcast run over a k-ary tree whose combine and
// fan-out steps execute in NI memory. No host interrupt is ever taken:
// every tree hop is a firmware-handled packet (FwHandler), the only
// host involvement is the source's post/DMA and each destination's
// final deposit DMA. Hops are ordinary pipeline packets, so they ride
// under go-back-N reliable delivery for free — the receive gate at the
// destination-firmware stage retransmits/suppresses before the
// collective handler ever runs, giving exactly-once, in-order handler
// invocation per (parent, child) edge even at 1% drop.
//
// Trees are virtual: for root r over N nodes, node id maps to
// v = (id-r+N) mod N, with parent (v-1)/k and children kv+1..kv+k.
// Barriers use the fixed root 0; broadcasts are rooted at the source,
// so every source's notices follow one fixed tree — which preserves
// the per-source FIFO delivery order the interval arrival counters
// rely on (see core.depositNotice): each tree edge is a FIFO resource
// chain, forwarding happens in arrival order on the FIFO firmware
// processor, and reliable delivery restores seq order under faults.
//
// Pool ownership (DESIGN §7/§10): colMsg combine buffers and the
// deliver/host-op records are drawn from the LP-local free lists of
// the NI that allocates them and freed by their final consumer into
// *that consumer's* NI free list — records migrate between pools,
// mutation stays LP-local. A retransmitted packet may still hold a
// pointer to a freed (and even reused) colMsg, but the reliability
// gate discards duplicates before the handler dereferences anything,
// the same argument that covers diff/interval payloads.

import (
	"fmt"

	"genima/internal/sim"
)

// ColBarrierSink receives completed tree-barrier epochs: the combined
// version vector for epoch seq has been DMA'd into node's host memory.
// The vec slice is owned by the collective layer and valid only during
// the call; implementations must copy what they keep.
type ColBarrierSink interface {
	ColBarrierDone(node, seq int, vec []uint64)
}

// colMsg is a pooled NI-memory combine buffer: one version vector
// traveling (or being accumulated) through the tree.
type colMsg struct {
	vec []uint64
}

// colOp is one in-flight barrier epoch's combine state at this NI.
// Epochs use a 4-slot ring keyed by seq&3, mirroring the host-side
// barrier epoch ring: contributions for epoch k+1 may arrive while the
// local host is still in epoch k, but global barrier semantics bound
// the spread well below 4 (a release of k+1 needs every node past k).
type colOp struct {
	seq    int
	got    int
	active bool
	vec    []uint64
}

// colState is one NI's collective engine, nil unless
// Config.Collectives enabled it for this run's protocol tier.
type colState struct {
	arity int
	nodes int
	sink  ColBarrierSink

	// Barrier tree (root 0) shape for this node, precomputed.
	parent     int
	childCount int

	ops [4]colOp

	msgFree  []*colMsg
	delFree  []*colDeliver
	hostFree []*colHostOp
}

// EnableCollectives switches this NI's barrier/broadcast support onto
// the firmware tree protocol with fan-out k = arity; sink receives
// completed barrier epochs. Call once per NI before the run starts.
func (ni *NI) EnableCollectives(arity int, sink ColBarrierSink) {
	n := ni.cfg.Nodes
	c := &colState{arity: arity, nodes: n, sink: sink}
	c.parent = colParent(ni.ID, 0, n, arity)
	for j := 1; j <= arity; j++ {
		if colChild(ni.ID, 0, n, arity, j) < 0 {
			break
		}
		c.childCount++
	}
	for i := range c.ops {
		c.ops[i].vec = make([]uint64, n)
	}
	ni.col = c
}

// colParent returns the tree parent of id under root, or -1 for the
// root itself.
func colParent(id, root, n, k int) int {
	v := (id - root + n) % n
	if v == 0 {
		return -1
	}
	return ((v-1)/k + root) % n
}

// colChild returns the j-th (1-based) tree child of id under root, or
// -1 when id has fewer than j children.
func colChild(id, root, n, k, j int) int {
	v := (id - root + n) % n
	cv := k*v + j
	if cv >= n {
		return -1
	}
	return (cv + root) % n
}

// colCombineService is the firmware cost of one NI-memory combine or
// copy step over an n-byte vector.
func (ni *NI) colCombineService(n int) sim.Time {
	return ni.cfg.Costs.NIColCombine + sim.Time(float64(n)*ni.cfg.Costs.NIColPerByte)
}

func (c *colState) getMsg(n int) *colMsg {
	if l := len(c.msgFree); l > 0 {
		m := c.msgFree[l-1]
		c.msgFree[l-1] = nil
		c.msgFree = c.msgFree[:l-1]
		return m
	}
	return &colMsg{vec: make([]uint64, n)}
}

func (c *colState) putMsg(m *colMsg) { c.msgFree = append(c.msgFree, m) }

// opAt claims (or finds) the epoch ring slot for seq.
func (c *colState) opAt(seq int) *colOp {
	op := &c.ops[seq&3]
	if !op.active {
		op.active = true
		op.seq = seq
		op.got = 0
		return op
	}
	if op.seq != seq {
		panic(fmt.Sprintf("nic: collective barrier epoch %d claims slot still owned by epoch %d", seq, op.seq))
	}
	return op
}

// ColBarrierArrive contributes this node's version vector to tree
// barrier epoch seq from host process p: post overhead, a post-queue
// slot, the host->NI DMA of the vector, then a firmware combine step.
// The caller must keep vc unchanged until the sink reports the epoch
// (barrier semantics already guarantee it — the leader blocks).
func (ni *NI) ColBarrierArrive(p *sim.Proc, seq int, vc []uint64) {
	p.Sleep(ni.cfg.Costs.PostOverhead)
	ni.PostQueue.Acquire(p)
	c := ni.col
	m := c.getMsg(c.nodes)
	copy(m.vec, vc)
	h := c.getHostOp()
	h.ni, h.barrier, h.release, h.seq, h.m = ni, true, true, seq, m
	ni.PCI.EnqueueHandler(ni.pciService(8*c.nodes), h)
}

// colContribute merges one contribution (the local host's or a
// child subtree's) into epoch seq; when the local subtree is complete
// the result moves up the tree, or — at the root — back down.
func (ni *NI) colContribute(seq int, vec []uint64) {
	c := ni.col
	op := c.opAt(seq)
	if op.got == 0 {
		copy(op.vec, vec)
	} else {
		for i, v := range vec {
			if v > op.vec[i] {
				op.vec[i] = v
			}
		}
	}
	op.got++
	if op.got < c.childCount+1 {
		return
	}
	op.active = false
	if c.parent >= 0 {
		m := c.getMsg(c.nodes)
		copy(m.vec, op.vec)
		ni.colSendVec(c.parent, seq, "col-up", colUpFw, m)
		return
	}
	// Root: the reduction is complete; fan the combined vector out.
	ni.colRelease(seq, op.vec)
}

// colRelease forwards the combined vector of epoch seq to this node's
// tree children and deposits it into the local host.
func (ni *NI) colRelease(seq int, vec []uint64) {
	c := ni.col
	for j := 1; j <= c.arity; j++ {
		child := colChild(ni.ID, 0, c.nodes, c.arity, j)
		if child < 0 {
			break
		}
		m := c.getMsg(c.nodes)
		copy(m.vec, vec)
		ni.colSendVec(child, seq, "col-dn", colDnFw, m)
	}
	d := c.getDeliver()
	d.ni, d.barrier, d.seq = ni, true, seq
	d.m = c.getMsg(c.nodes)
	copy(d.m.vec, vec)
	ni.PCI.EnqueueHandler(ni.pciService(8*c.nodes), d)
}

// colSendVec emits one tree hop carrying a combine buffer, straight
// from NI memory (no host DMA).
func (ni *NI) colSendVec(dst, seq int, kind string, fw func(*NI, *Packet), m *colMsg) {
	pkt := ni.getPacket()
	pkt.Src, pkt.Dst = ni.ID, dst
	pkt.Size = 8 * ni.col.nodes
	pkt.Kind = kind
	pkt.Meta = seq
	pkt.Payload = m
	pkt.FwHandler = fw
	pkt.FwService = ni.colCombineService(pkt.Size)
	ni.FirmwareSend(pkt, false)
}

// colUpFw receives a child subtree's combined vector (runs on the
// parent NI's firmware; the combine cost was charged via FwService).
func colUpFw(dst *NI, pkt *Packet) {
	m := pkt.Payload.(*colMsg)
	dst.colContribute(pkt.Meta, m.vec)
	dst.col.putMsg(m)
}

// colDnFw receives the released vector on the way down: forward to
// this node's children, deposit locally.
func colDnFw(dst *NI, pkt *Packet) {
	c := dst.col
	m := pkt.Payload.(*colMsg)
	for j := 1; j <= c.arity; j++ {
		child := colChild(dst.ID, 0, c.nodes, c.arity, j)
		if child < 0 {
			break
		}
		cp := c.getMsg(c.nodes)
		copy(cp.vec, m.vec)
		dst.colSendVec(child, pkt.Meta, "col-dn", colDnFw, cp)
	}
	d := c.getDeliver()
	d.ni, d.barrier, d.seq, d.m = dst, true, pkt.Meta, m
	dst.PCI.EnqueueHandler(dst.pciService(pkt.Size), d)
}

// ColBroadcast replicates a payload from host process p to every other
// node through this source's broadcast tree: post overhead, a
// post-queue slot, one host->NI DMA, then firmware-forwarded tree
// hops. to.Deliver runs at each destination exactly as for a flat
// deposit (same payload-sharing semantics as the NI-broadcast path).
func (ni *NI) ColBroadcast(p *sim.Proc, size int, kind string, payload any, to Deliverer) {
	p.Sleep(ni.cfg.Costs.PostOverhead)
	ni.PostQueue.Acquire(p)
	ni.colBcastStart(size, kind, payload, to)
}

// ColBroadcastPosted is ColBroadcast for machine-context senders that
// charged the post overhead and claimed the post-queue slot themselves
// (the protocol state machine cannot block).
func (ni *NI) ColBroadcastPosted(size int, kind string, payload any, to Deliverer) {
	ni.colBcastStart(size, kind, payload, to)
}

func (ni *NI) colBcastStart(size int, kind string, payload any, to Deliverer) {
	h := ni.col.getHostOp()
	h.ni, h.barrier, h.release = ni, false, true
	h.size, h.kind, h.payload, h.to = size, kind, payload, to
	ni.PCI.EnqueueHandler(ni.pciService(size), h)
}

// colForward sends a broadcast's fragments from this NI to every child
// in tree(root). Fragments larger than MaxPacket never exist (the
// source splits); the last fragment carries the payload and delivery
// target, marked by Meta2 = total size (mid fragments have Meta2 0).
func (ni *NI) colForward(root, size int, kind string, payload any, to Deliverer) {
	c := ni.col
	maxp := ni.cfg.MaxPacket
	for j := 1; j <= c.arity; j++ {
		child := colChild(ni.ID, root, c.nodes, c.arity, j)
		if child < 0 {
			break
		}
		for off := 0; ; {
			frag := size - off
			if frag > maxp {
				frag = maxp
			}
			if frag < 1 {
				frag = 1 // zero-byte payloads still cost a packet
			}
			off += frag
			last := off >= size
			pkt := ni.getPacket()
			pkt.Src, pkt.Dst, pkt.Size, pkt.Kind = ni.ID, child, frag, kind
			pkt.Meta = root
			pkt.FwHandler = colBcastFw
			pkt.FwService = ni.colCombineService(frag)
			if last {
				pkt.Meta2 = size
				pkt.Payload = payload
				pkt.DeliverTo = to
			}
			ni.FirmwareSend(pkt, false)
			if last {
				break
			}
		}
	}
}

// colBcastFw handles one broadcast fragment at a tree node: forward
// the fragment onward (from NI memory), then DMA it into the local
// host; the last fragment's deposit completion delivers the payload.
func colBcastFw(dst *NI, pkt *Packet) {
	root := pkt.Meta
	// Forward just this fragment (not the whole message) to children.
	c := dst.col
	for j := 1; j <= c.arity; j++ {
		child := colChild(dst.ID, root, c.nodes, c.arity, j)
		if child < 0 {
			break
		}
		cp := dst.getPacket()
		cp.Src, cp.Dst, cp.Size, cp.Kind = dst.ID, child, pkt.Size, pkt.Kind
		cp.Meta, cp.Meta2 = pkt.Meta, pkt.Meta2
		cp.Payload = pkt.Payload
		cp.DeliverTo = pkt.DeliverTo
		cp.FwHandler = colBcastFw
		cp.FwService = dst.colCombineService(pkt.Size)
		dst.FirmwareSend(cp, false)
	}
	d := c.getDeliver()
	d.ni, d.barrier = dst, false
	if pkt.Meta2 > 0 {
		d.root, d.total, d.kind = root, pkt.Meta2, pkt.Kind
		d.payload, d.to = pkt.Payload, pkt.DeliverTo
	}
	dst.PCI.EnqueueHandler(dst.pciService(pkt.Size), d)
}

// colDeliver is the pooled PCI-deposit completion handler: hand a
// finished barrier epoch to the sink, or a fully-arrived broadcast
// payload to its Deliverer.
type colDeliver struct {
	ni      *NI
	barrier bool
	seq     int
	m       *colMsg

	root, total int
	kind        string
	payload     any
	to          Deliverer
}

func (c *colState) getDeliver() *colDeliver {
	if l := len(c.delFree); l > 0 {
		d := c.delFree[l-1]
		c.delFree[l-1] = nil
		c.delFree = c.delFree[:l-1]
		return d
	}
	return &colDeliver{}
}

// Run implements sim.Handler (PCI completion at the owning NI's LP).
func (d *colDeliver) Run(_, _ sim.Time) {
	ni := d.ni
	if d.barrier {
		ni.col.sink.ColBarrierDone(ni.ID, d.seq, d.m.vec)
		ni.col.putMsg(d.m)
	} else if d.to != nil {
		// Hand the payload to the protocol through a scratch packet so
		// the Deliverer sees the same shape as a flat deposit.
		pkt := ni.getPacket()
		pkt.Src, pkt.Dst, pkt.Size, pkt.Kind = d.root, ni.ID, d.total, d.kind
		pkt.Payload = d.payload
		d.to.Deliver(pkt)
		ni.putPacket(pkt)
	}
	*d = colDeliver{}
	ni.col.delFree = append(ni.col.delFree, d)
}

// colHostOp is the pooled host-side entry handler: the source DMA
// completion of a barrier contribution (which then runs a firmware
// combine) or of a broadcast (which then fans out from NI memory).
type colHostOp struct {
	ni      *NI
	stage   int8
	barrier bool
	release bool
	seq     int
	m       *colMsg

	size    int
	kind    string
	payload any
	to      Deliverer
}

func (c *colState) getHostOp() *colHostOp {
	if l := len(c.hostFree); l > 0 {
		h := c.hostFree[l-1]
		c.hostFree[l-1] = nil
		c.hostFree = c.hostFree[:l-1]
		return h
	}
	return &colHostOp{}
}

// Run implements sim.Handler: stage 0 is the PCI DMA completion,
// stage 1 the barrier's firmware combine completion.
func (h *colHostOp) Run(_, _ sim.Time) {
	ni := h.ni
	switch h.stage {
	case 0:
		if h.release {
			ni.PostQueue.Release()
		}
		if h.barrier {
			h.stage = 1
			ni.Firmware.EnqueueHandler(ni.colCombineService(8*ni.col.nodes), h)
			return
		}
		ni.colForward(ni.ID, h.size, h.kind, h.payload, h.to)
	case 1:
		ni.colContribute(h.seq, h.m.vec)
		ni.col.putMsg(h.m)
	}
	*h = colHostOp{}
	ni.col.hostFree = append(ni.col.hostFree, h)
}
