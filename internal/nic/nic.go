// Package nic models the programmable network interface (the paper's
// 33 MHz LANai on Myrinet): a bounded post queue fed by the host, DMA
// engines sharing the node's PCI bus, a firmware processor that handles
// both outgoing and incoming packets, and — for the GeNIMA extensions —
// firmware-level services that handle incoming packets entirely in the
// NI without involving a host processor.
//
// Every packet records timestamps at the four stage boundaries of §3.1
// of the paper (SourceLatency, LANaiLatency, NetLatency, DestLatency);
// the firmware performance monitor accumulates actual versus uncontended
// time per stage and per message-size class, which regenerates Tables 3
// and 4.
package nic

import (
	"genima/internal/network"
	"genima/internal/sim"
	"genima/internal/stats"
	"genima/internal/topo"
)

// SmallMessageMax is the size boundary between the monitor's "small" and
// "large" message classes (≤ 256 bytes in the paper).
const SmallMessageMax = 256

// Class is a monitor message-size class.
type Class int

// Message-size classes.
const (
	Small Class = iota
	Large
	numClasses
)

// ClassOf returns the class for a packet size.
func ClassOf(size int) Class {
	if size <= SmallMessageMax {
		return Small
	}
	return Large
}

// String names the class.
func (c Class) String() string {
	if c == Small {
		return "small"
	}
	return "large"
}

// Stage identifies one of the four measured pipeline stages.
type Stage int

// Pipeline stages, in path order.
const (
	StageSource Stage = iota // post-queue appearance -> packet data DMA'd into NI
	StageLANai               // end of Source -> packet inserted into network
	StageNet                 // end of Source -> last word at receiving NI
	StageDest                // last word at receiving NI -> delivered to host memory
	NumStages
)

var stageNames = [...]string{"SourceLat", "LANaiLat", "NetLat", "DestLat"}

// String names the stage.
func (s Stage) String() string { return stageNames[s] }

// Deliverer is the typed counterpart of Packet.OnDeliver: a shared
// (usually singleton) delivery dispatcher invoked with the packet still
// in hand, so Dst/Src/Meta/Payload can parameterize one handler object
// instead of a per-send closure. Runs in engine context at the moment
// the packet's data lands in destination host memory.
type Deliverer interface {
	Deliver(pkt *Packet)
}

// Packet is one network packet (≤ MaxPacket bytes of simulated payload).
type Packet struct {
	Src, Dst int
	Size     int
	Kind     string // diagnostic label ("page-req", "diff", "lock-grant", ...)
	Payload  any
	// Meta and Meta2 are small protocol-defined integers (message kind,
	// lock id, ...) that travel with the packet without boxing.
	Meta, Meta2 int

	// FwHandler, when non-nil, makes the destination NI service the
	// packet entirely in firmware (remote fetch, NI lock operations):
	// no host DMA, no interrupt. FwService is extra firmware occupancy
	// charged for the service.
	FwHandler func(dst *NI, pkt *Packet)
	FwService sim.Time
	// FwSendExtra is additional firmware occupancy on the SENDING NI
	// (e.g. scatter-gather packing from host memory).
	FwSendExtra sim.Time

	// OnDeliver runs when the packet's data has been deposited into
	// destination host memory (remote-deposit semantics). Ignored for
	// firmware-handled packets. DeliverTo is the closure-free variant
	// and takes precedence when both are set.
	OnDeliver func()
	DeliverTo Deliverer

	// Reliable-delivery header (see reliable.go); zero when fault
	// injection is disabled. Seq is the per-(Src,Dst) sequence number,
	// Ack the piggybacked cumulative ack, Csum the header checksum that
	// link corruption perturbs.
	Seq, Ack, Csum uint64
	RelFlags       uint8

	noSrcDMA bool // firmware-originated packet whose data is already in NI memory

	tPost, tSrc, tInject, tArrive, tDone sim.Time
}

// NI is one node's network interface.
type NI struct {
	ID  int
	eng *sim.Engine
	cfg *topo.Config

	fabric *network.Fabric
	peers  []*NI

	PostQueue *sim.Gate     // bounded post queue (host stalls when full)
	PCI       *sim.Resource // the node's I/O bus: both send and receive DMA
	Firmware  *sim.Resource // the NI processor (one, shared by both directions)

	// Overflows counts event-context posts accepted past a full post
	// queue (PostFromEvent cannot block, so the depth bound is waived
	// for them). Reported beside the PostQueue Gate statistics so the
	// condition is observable instead of silent.
	Overflows uint64

	mon *Monitor

	// rel is the firmware reliable-delivery engine, non-nil only when
	// fault injection is enabled (reliable.go). With it nil, the packet
	// pipeline takes no reliability branches at all.
	rel *relState

	// col is the firmware collective-tree engine (collective.go),
	// non-nil only when Config.Collectives is on and the protocol tier
	// has the capability for it (EnableCollectives was called).
	col *colState

	// pool holds the deterministic free lists for the pooled packet
	// pipeline (see transit.go). Pools are logical-process-local: in a
	// parallel run each node LP allocates and recycles only through
	// pools it owns, so the free lists need no locks.
	pool pktPool

	// monFree pools deferred monitor records (monitor.go); drawn on
	// this NI's LP during a parallel round, returned at the barrier.
	monFree []*monRec

	// fab is the fabric logical process (engine + packet pool), shared
	// by all NIs of a parallel run; nil in a serial run, which the
	// transit pipeline uses as the serial/parallel branch.
	fab *fabLP
}

// fabLP is the network fabric's logical process: the engine that owns
// the switch plus the packet/transit pool that fan-out copies are drawn
// from while a packet is on the fabric.
type fabLP struct {
	eng  *sim.Engine
	pool pktPool
}

// Eng returns the engine (logical process) this NI executes on.
func (ni *NI) Eng() *sim.Engine { return ni.eng }

// System is the set of NIs plus the shared fabric and monitor.
type System struct {
	NIs     []*NI
	Fabric  *network.Fabric
	Monitor *Monitor
}

// NewSystem builds one NI per node on a fresh fabric. Each NI (its
// engine, DMA/firmware resources, pools, and reliability state) lives
// on its node's logical process; with a standalone engine LPNode
// returns eng itself and the system is wired exactly as before.
func NewSystem(eng *sim.Engine, cfg *topo.Config) *System {
	fab := network.NewFabric(eng, cfg)
	mon := &Monitor{}
	s := &System{Fabric: fab, Monitor: mon}
	s.NIs = make([]*NI, cfg.Nodes)
	var fl *fabLP
	if eng.Parallel() {
		fl = &fabLP{eng: eng.LPFabric()}
	}
	for i := range s.NIs {
		ne := eng.LPNode(i)
		s.NIs[i] = &NI{
			ID:        i,
			eng:       ne,
			cfg:       cfg,
			fabric:    fab,
			PostQueue: sim.NewGate(cfg.PostQueueDepth),
			PCI:       sim.NewResource(ne, "pci"),
			Firmware:  sim.NewResource(ne, "lanai"),
			mon:       mon,
			fab:       fl,
		}
	}
	for _, ni := range s.NIs {
		ni.peers = s.NIs
	}
	if cfg.Faults.Enabled {
		ackEvery := fab.Faults.AckEvery()
		for _, ni := range s.NIs {
			ni.rel = newRelState(ni, ackEvery)
		}
	}
	return s
}

// RelReport aggregates the per-NI reliable-delivery counters (zero
// when fault injection is disabled).
func (s *System) RelReport() stats.FaultReport {
	var rep stats.FaultReport
	for _, ni := range s.NIs {
		if ni.rel != nil {
			rep.Merge(ni.rel.Report)
		}
	}
	return rep
}

// FaultReport aggregates the fault plan's injection counters with the
// NIs' reliable-delivery counters for a whole run.
func (s *System) FaultReport() stats.FaultReport {
	rep := s.RelReport()
	if s.Fabric.Faults != nil {
		rep.Merge(s.Fabric.Faults.Report())
	}
	return rep
}

func (ni *NI) pciService(size int) sim.Time {
	return ni.cfg.Costs.PCIFixed + sim.Time(float64(size)*ni.cfg.Costs.PCIPerByte)
}

func (ni *NI) fwSendService(size int) sim.Time {
	per := ni.cfg.Costs.NIPerPacket / sim.Time(ni.cfg.SendPipelining)
	return per + sim.Time(float64(size)*ni.cfg.Costs.NIPerByte) + ni.relService(size)
}

func (ni *NI) fwRecvService(size int) sim.Time {
	return ni.cfg.Costs.NIPerPacket + sim.Time(float64(size)*ni.cfg.Costs.NIPerByte) +
		ni.relService(size)
}

// Post submits a packet from host process p: it charges the asynchronous
// post overhead to the caller and blocks only if the post queue is full
// (the paper's only host-side blocking condition for async sends).
func (ni *NI) Post(p *sim.Proc, pkt *Packet) {
	p.Sleep(ni.cfg.Costs.PostOverhead)
	ni.PostQueue.Acquire(p)
	ni.launch(pkt)
}

// PostFromEvent submits a packet from engine context (e.g. a protocol
// handler modeled as an event). It cannot block; if the post queue is
// full the packet is still accepted (queue-depth accounting via Gate is
// skipped) and the NI's Overflows counter is bumped, which callers use
// only for low-rate control traffic.
func (ni *NI) PostFromEvent(pkt *Packet) {
	if !ni.PostQueue.TryAcquire() {
		// Overflow is tolerated for event-context posts; the packet
		// still pays all pipeline stage costs.
		ni.Overflows++
		pkt.tPost = ni.eng.Now()
		ni.newTransit(pkt).start()
		return
	}
	ni.launch(pkt)
}

// FirmwareSend transmits a firmware-originated packet (fetch reply, lock
// forward/grant). If dataFromHost is true the packet's payload must first
// be DMA'd from host memory over PCI (e.g. a fetched page); otherwise the
// data already lives in NI memory (lock state) and the source-DMA stage
// is skipped.
func (ni *NI) FirmwareSend(pkt *Packet, dataFromHost bool) {
	pkt.tPost = ni.eng.Now()
	pkt.noSrcDMA = !dataFromHost
	t := ni.newTransit(pkt)
	if dataFromHost {
		t.start()
		return
	}
	pkt.tSrc = ni.eng.Now()
	t.startAtFirmware()
}

// launch runs the full host-originated send pipeline; the post-queue slot
// is released when the source DMA completes (the request has been
// consumed by the NI).
func (ni *NI) launch(pkt *Packet) {
	pkt.tPost = ni.eng.Now()
	t := ni.newTransit(pkt)
	t.holdsSlot = true
	t.start()
}

// LaunchPosted launches a packet whose post-queue slot the caller has
// already claimed via TryAcquire/Gate.Enqueue (machine-context senders
// cannot block in Post, so they drive the admission step themselves).
// The slot is released when the source DMA completes, exactly as for
// Post.
func (ni *NI) LaunchPosted(pkt *Packet) { ni.launch(pkt) }

// LaunchPostedBroadcast is LaunchPosted for a broadcast template (see
// PostBroadcast for the dsts/onDeliver semantics).
func (ni *NI) LaunchPostedBroadcast(tmpl *Packet, dsts []int, onDeliver func(dst int)) {
	tmpl.tPost = ni.eng.Now()
	t := ni.newTransit(tmpl)
	t.holdsSlot = true
	t.dsts = dsts
	t.bcastDeliver = onDeliver
	t.start()
}

// PostBroadcast submits one packet that the fabric replicates to every
// node in dsts (the NI-broadcast extension, paper §5). The host pays
// one post; each destination receives its own copy of the packet (taken
// from the packet pool at the switch fan-out), with onDeliver(dst)
// running at that copy's delivery. Broadcast packets are plain deposits
// (no firmware handler). The NI keeps no reference to dsts after the
// switch stage, but the caller must not mutate it while the broadcast
// is in flight.
func (ni *NI) PostBroadcast(p *sim.Proc, tmpl *Packet, dsts []int, onDeliver func(dst int)) {
	p.Sleep(ni.cfg.Costs.PostOverhead)
	ni.PostQueue.Acquire(p)
	tmpl.tPost = ni.eng.Now()
	t := ni.newTransit(tmpl)
	t.holdsSlot = true
	t.dsts = dsts
	t.bcastDeliver = onDeliver
	t.start()
}

// DepositLocal models the NI DMA-ing size bytes into its own host's
// memory (e.g. a lock grant handed to a locally spinning acquirer); fn
// runs when the DMA completes.
func (ni *NI) DepositLocal(size int, fn func()) {
	ni.PCI.Enqueue(ni.pciService(size), func(_, _ sim.Time) {
		if fn != nil {
			fn()
		}
	})
}

// DepositLocalHandler is DepositLocal on the typed event path: h.Run
// fires when the DMA completes, with no closure allocation.
func (ni *NI) DepositLocalHandler(size int, h sim.Handler) {
	ni.PCI.EnqueueHandler(ni.pciService(size), h)
}

// FirmwareRun charges service time on this NI's firmware processor and
// runs fn when it completes (local firmware work with no packet).
func (ni *NI) FirmwareRun(service sim.Time, fn func()) {
	ni.Firmware.Enqueue(service, func(_, _ sim.Time) {
		if fn != nil {
			fn()
		}
	})
}

// FirmwareRunHandler is FirmwareRun on the typed event path.
func (ni *NI) FirmwareRunHandler(service sim.Time, h sim.Handler) {
	ni.Firmware.EnqueueHandler(service, h)
}

// UncontendedOneWay returns the zero-load host-to-host-memory latency for
// an n-byte packet (excluding the 2 µs post overhead), used by tests to
// check calibration against the paper's 18 µs figure.
func (s *System) UncontendedOneWay(n int) sim.Time {
	ni := s.NIs[0]
	return ni.pciService(n) + ni.fwSendService(n) + s.Fabric.UncontendedNet(n) +
		ni.fwRecvService(n) + ni.pciService(n)
}
