package nic

import (
	"sort"

	"genima/internal/sim"
)

// DigestInto folds the whole NI subsystem's live state — per-NI queues,
// pools, reliable-delivery flows, collective trees, and the shared
// monitor — into d, for checkpoint verification. Everything folded is a
// pure function of the executed event prefix (pool free-list LENGTHS
// rather than pointer identities, entry contents rather than heap
// addresses), so two runs that executed the same prefix in the same
// mode digest identically.
func (s *System) DigestInto(d *sim.Digest) {
	d.U64(uint64(len(s.NIs)))
	for _, ni := range s.NIs {
		ni.digestInto(d)
	}
	s.Monitor.DigestInto(d)
	if s.Fabric.Faults != nil {
		s.Fabric.Faults.DigestInto(d)
	}
}

func (ni *NI) digestInto(d *sim.Digest) {
	d.U64(ni.Overflows)
	ni.PostQueue.DigestInto(d)
	ni.PCI.DigestInto(d)
	ni.Firmware.DigestInto(d)
	d.U64(uint64(len(ni.pool.pktFree)))
	d.U64(uint64(len(ni.pool.trFree)))
	d.U64(uint64(len(ni.monFree)))
	if ni.rel != nil {
		ni.rel.digestInto(d)
	}
	if ni.col != nil {
		ni.col.digestInto(d)
	}
}

func (r *relState) digestInto(d *sim.Digest) {
	d.U64(uint64(len(r.flows)))
	for i := range r.flows {
		f := &r.flows[i]
		d.U64(f.nextSeq)
		d.I64(f.rto)
		d.I64(f.srtt)
		d.U64(f.recvd)
		d.U64(uint64(f.unacked))
		d.I64(f.retx.deadline)
		d.I64(f.ackT.deadline)
		d.U64(uint64(len(f.pending)))
		for _, e := range f.pending {
			d.U64(e.pkt.Seq)
			d.U64(e.pkt.Ack)
			d.U64(e.pkt.Csum)
			d.U64(uint64(e.pkt.Size))
			d.Str(e.pkt.Kind)
			d.I64(e.firstSent)
			d.I64(e.lastSent)
			d.U64(uint64(e.attempts))
		}
	}
	d.U64(uint64(len(r.entFree)))
	r.Report.DigestInto(d)
}

func (c *colState) digestInto(d *sim.Digest) {
	for i := range c.ops {
		op := &c.ops[i]
		d.U64(uint64(op.seq))
		d.U64(uint64(op.got))
		d.Bool(op.active)
		if op.active {
			for _, v := range op.vec {
				d.U64(v)
			}
		}
	}
	d.U64(uint64(len(c.msgFree)))
	d.U64(uint64(len(c.delFree)))
	d.U64(uint64(len(c.hostFree)))
}

// DigestInto folds the firmware monitor's accumulated statistics. The
// per-kind map is folded in sorted key order so iteration order cannot
// perturb the digest.
func (m *Monitor) DigestInto(d *sim.Digest) {
	for c := Class(0); c < numClasses; c++ {
		st := &m.ByClass[c]
		d.U64(st.Packets)
		d.U64(st.Bytes)
		for s := Stage(0); s < NumStages; s++ {
			d.I64(st.Actual[s])
			d.I64(st.Uncontended[s])
		}
	}
	kinds := make([]string, 0, len(m.ByKind))
	for k := range m.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		ks := m.ByKind[k]
		d.Str(k)
		d.U64(ks.Packets)
		d.U64(ks.Bytes)
	}
}
