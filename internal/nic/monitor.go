package nic

import (
	"fmt"
	"sort"
	"strings"

	"genima/internal/network"
	"genima/internal/sim"
	"genima/internal/topo"
)

// StageStats accumulates actual and uncontended time per pipeline stage
// for one message-size class.
type StageStats struct {
	Packets     uint64
	Bytes       uint64
	Actual      [NumStages]sim.Time
	Uncontended [NumStages]sim.Time
}

// Ratio returns actual/uncontended for a stage (1.0 when no traffic).
func (s *StageStats) Ratio(st Stage) float64 {
	if s.Uncontended[st] == 0 {
		return 1
	}
	return float64(s.Actual[st]) / float64(s.Uncontended[st])
}

// KindStats counts traffic for one protocol message kind.
type KindStats struct {
	Packets uint64
	Bytes   uint64
}

// TraceEvent is one delivered packet, as seen by the firmware monitor.
type TraceEvent struct {
	Time      sim.Time // delivery completion
	Src, Dst  int
	Size      int
	Kind      string
	Firmware  bool                // serviced in destination NI firmware
	StageTime [NumStages]sim.Time // per-stage elapsed (incl. queueing)
}

// Monitor is the NI firmware performance monitor (the paper's [36]): it
// gathers packet-level data at the firmware level for the whole system.
type Monitor struct {
	ByClass [numClasses]StageStats
	// ByKind breaks traffic down by protocol message kind ("page-req",
	// "diff", "notice", "ni-lock-acq", ...), the view §4 of the paper
	// uses to identify control messages stuck behind data.
	ByKind map[string]*KindStats
	// Tracer, when set before the run, receives every delivered packet
	// (the monitor's packet-level event stream).
	Tracer func(TraceEvent)
}

func (m *Monitor) record(cfg *topo.Config, fab *network.Fabric, pkt *Packet) {
	st := &m.ByClass[ClassOf(pkt.Size)]
	st.Packets++
	st.Bytes += uint64(pkt.Size)

	if m.ByKind == nil {
		m.ByKind = map[string]*KindStats{}
	}
	ks := m.ByKind[pkt.Kind]
	if ks == nil {
		ks = &KindStats{}
		m.ByKind[pkt.Kind] = ks
	}
	ks.Packets++
	ks.Bytes += uint64(pkt.Size)

	st.Actual[StageSource] += pkt.tSrc - pkt.tPost
	st.Actual[StageLANai] += pkt.tInject - pkt.tSrc
	st.Actual[StageNet] += pkt.tArrive - pkt.tSrc
	st.Actual[StageDest] += pkt.tDone - pkt.tArrive

	c := &cfg.Costs
	pci := c.PCIFixed + sim.Time(float64(pkt.Size)*c.PCIPerByte)
	fwSend := c.NIPerPacket/sim.Time(cfg.SendPipelining) + sim.Time(float64(pkt.Size)*c.NIPerByte)
	fwRecv := c.NIPerPacket + sim.Time(float64(pkt.Size)*c.NIPerByte) + pkt.FwService
	if cfg.Faults.Enabled {
		// Reliable delivery charges checksum/seq bookkeeping on both
		// firmware passes; fold it into the uncontended baseline so
		// contention ratios stay comparable with faults on.
		rel := c.NIRelFixed + sim.Time(float64(pkt.Size)*c.NICsumPerByte)
		fwSend += rel
		fwRecv += rel
	}
	outLink := fab.Out[0].ServiceTime(pkt.Size)

	uSrc := pci
	if pkt.noSrcDMA {
		uSrc = 0
	}
	uDest := fwRecv
	if pkt.FwHandler == nil {
		uDest += pci
	}
	st.Uncontended[StageSource] += uSrc
	st.Uncontended[StageLANai] += fwSend + outLink
	st.Uncontended[StageNet] += fwSend + fab.UncontendedNet(pkt.Size)
	st.Uncontended[StageDest] += uDest

	if m.Tracer != nil {
		m.Tracer(TraceEvent{
			Time: pkt.tDone, Src: pkt.Src, Dst: pkt.Dst,
			Size: pkt.Size, Kind: pkt.Kind, Firmware: pkt.FwHandler != nil,
			StageTime: [NumStages]sim.Time{
				pkt.tSrc - pkt.tPost, pkt.tInject - pkt.tSrc,
				pkt.tArrive - pkt.tSrc, pkt.tDone - pkt.tArrive,
			},
		})
	}
}

// Ratios returns the four contention ratios for a class, in stage order
// (the rows of Tables 3 and 4 in the paper).
func (m *Monitor) Ratios(c Class) [NumStages]float64 {
	var r [NumStages]float64
	for s := Stage(0); s < NumStages; s++ {
		r[s] = m.ByClass[c].Ratio(s)
	}
	return r
}

// Packets returns the packet count in a class.
func (m *Monitor) Packets(c Class) uint64 { return m.ByClass[c].Packets }

// TotalPackets returns the packet count across classes.
func (m *Monitor) TotalPackets() uint64 {
	return m.ByClass[Small].Packets + m.ByClass[Large].Packets
}

// TotalBytes returns total bytes moved across classes.
func (m *Monitor) TotalBytes() uint64 {
	return m.ByClass[Small].Bytes + m.ByClass[Large].Bytes
}

// String renders the monitor in a compact diagnostic form.
func (m *Monitor) String() string {
	var sb strings.Builder
	for c := Class(0); c < numClasses; c++ {
		st := &m.ByClass[c]
		fmt.Fprintf(&sb, "%s: %d pkts, %d bytes;", c, st.Packets, st.Bytes)
		for s := Stage(0); s < NumStages; s++ {
			fmt.Fprintf(&sb, " %s=%.1f", s, st.Ratio(s))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TopKinds returns up to n message kinds by packet count, descending.
func (m *Monitor) TopKinds(n int) []struct {
	Kind string
	KindStats
} {
	type row struct {
		Kind string
		KindStats
	}
	var rows []row
	for k, v := range m.ByKind {
		rows = append(rows, row{k, *v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Packets != rows[j].Packets {
			return rows[i].Packets > rows[j].Packets
		}
		return rows[i].Kind < rows[j].Kind
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	out := make([]struct {
		Kind string
		KindStats
	}, len(rows))
	for i, r := range rows {
		out[i] = struct {
			Kind string
			KindStats
		}{r.Kind, r.KindStats}
	}
	return out
}
