package nic

import (
	"fmt"
	"sort"
	"strings"

	"genima/internal/sim"
)

// StageStats accumulates actual and uncontended time per pipeline stage
// for one message-size class.
type StageStats struct {
	Packets     uint64
	Bytes       uint64
	Actual      [NumStages]sim.Time
	Uncontended [NumStages]sim.Time
}

// Ratio returns actual/uncontended for a stage (1.0 when no traffic).
func (s *StageStats) Ratio(st Stage) float64 {
	if s.Uncontended[st] == 0 {
		return 1
	}
	return float64(s.Actual[st]) / float64(s.Uncontended[st])
}

// KindStats counts traffic for one protocol message kind.
type KindStats struct {
	Packets uint64
	Bytes   uint64
}

// TraceEvent is one delivered packet, as seen by the firmware monitor.
type TraceEvent struct {
	Time      sim.Time // delivery completion
	Src, Dst  int
	Size      int
	Kind      string
	Firmware  bool                // serviced in destination NI firmware
	StageTime [NumStages]sim.Time // per-stage elapsed (incl. queueing)
}

// Monitor is the NI firmware performance monitor (the paper's [36]): it
// gathers packet-level data at the firmware level for the whole system.
type Monitor struct {
	ByClass [numClasses]StageStats
	// ByKind breaks traffic down by protocol message kind ("page-req",
	// "diff", "notice", "ni-lock-acq", ...), the view §4 of the paper
	// uses to identify control messages stuck behind data.
	ByKind map[string]*KindStats
	// Tracer, when set before the run, receives every delivered packet
	// (the monitor's packet-level event stream).
	Tracer func(TraceEvent)
}

// monRec is a snapshot of the packet fields the monitor needs. During a
// parallel round, delivery events on different LPs must not mutate the
// shared Monitor concurrently, so record snapshots the packet (which
// may be recycled before the round ends) and defers the commit to the
// barrier, where DeferFlush replays commits in the global serial order
// of the delivery events. monRec implements sim.Handler for exactly
// that replay.
type monRec struct {
	ni       *NI
	size     int
	kind     string
	fw       bool
	noSrcDMA bool
	fwSvc    sim.Time
	src, dst int

	tPost, tSrc, tInject, tArrive, tDone sim.Time
}

func (r *monRec) fill(ni *NI, pkt *Packet) {
	r.ni = ni
	r.size, r.kind = pkt.Size, pkt.Kind
	r.fw, r.noSrcDMA, r.fwSvc = pkt.FwHandler != nil, pkt.noSrcDMA, pkt.FwService
	r.src, r.dst = pkt.Src, pkt.Dst
	r.tPost, r.tSrc, r.tInject, r.tArrive, r.tDone =
		pkt.tPost, pkt.tSrc, pkt.tInject, pkt.tArrive, pkt.tDone
}

// Run commits a deferred record at the round barrier and returns it to
// its NI's pool (the barrier is single-threaded, so touching the NI's
// free list here is safe).
func (r *monRec) Run(_, _ sim.Time) {
	ni := r.ni
	ni.mon.commit(ni, r)
	*r = monRec{}
	ni.monFree = append(ni.monFree, r)
}

func (ni *NI) getMonRec() *monRec {
	if n := len(ni.monFree); n > 0 {
		r := ni.monFree[n-1]
		ni.monFree[n-1] = nil
		ni.monFree = ni.monFree[:n-1]
		return r
	}
	return &monRec{}
}

// record is called by the pipeline on the delivering NI, in that NI's
// LP context. Serial runs (and lone-mode parallel execution) commit
// inline; parallel rounds defer to the barrier.
func (m *Monitor) record(ni *NI, pkt *Packet) {
	if ni.eng.Deferring() {
		r := ni.getMonRec()
		r.fill(ni, pkt)
		ni.eng.DeferFlush(r)
		return
	}
	var r monRec
	r.fill(ni, pkt)
	m.commit(ni, &r)
}

func (m *Monitor) commit(ni *NI, r *monRec) {
	cfg, fab := ni.cfg, ni.fabric
	st := &m.ByClass[ClassOf(r.size)]
	st.Packets++
	st.Bytes += uint64(r.size)

	if m.ByKind == nil {
		m.ByKind = map[string]*KindStats{}
	}
	ks := m.ByKind[r.kind]
	if ks == nil {
		ks = &KindStats{}
		m.ByKind[r.kind] = ks
	}
	ks.Packets++
	ks.Bytes += uint64(r.size)

	st.Actual[StageSource] += r.tSrc - r.tPost
	st.Actual[StageLANai] += r.tInject - r.tSrc
	st.Actual[StageNet] += r.tArrive - r.tSrc
	st.Actual[StageDest] += r.tDone - r.tArrive

	c := &cfg.Costs
	pci := c.PCIFixed + sim.Time(float64(r.size)*c.PCIPerByte)
	fwSend := c.NIPerPacket/sim.Time(cfg.SendPipelining) + sim.Time(float64(r.size)*c.NIPerByte)
	fwRecv := c.NIPerPacket + sim.Time(float64(r.size)*c.NIPerByte) + r.fwSvc
	if cfg.Faults.Enabled {
		// Reliable delivery charges checksum/seq bookkeeping on both
		// firmware passes; fold it into the uncontended baseline so
		// contention ratios stay comparable with faults on.
		rel := c.NIRelFixed + sim.Time(float64(r.size)*c.NICsumPerByte)
		fwSend += rel
		fwRecv += rel
	}
	outLink := fab.Out[0].ServiceTime(r.size)

	uSrc := pci
	if r.noSrcDMA {
		uSrc = 0
	}
	uDest := fwRecv
	if !r.fw {
		uDest += pci
	}
	st.Uncontended[StageSource] += uSrc
	st.Uncontended[StageLANai] += fwSend + outLink
	st.Uncontended[StageNet] += fwSend + fab.UncontendedNet(r.size)
	st.Uncontended[StageDest] += uDest

	if m.Tracer != nil {
		m.Tracer(TraceEvent{
			Time: r.tDone, Src: r.src, Dst: r.dst,
			Size: r.size, Kind: r.kind, Firmware: r.fw,
			StageTime: [NumStages]sim.Time{
				r.tSrc - r.tPost, r.tInject - r.tSrc,
				r.tArrive - r.tSrc, r.tDone - r.tArrive,
			},
		})
	}
}

// Ratios returns the four contention ratios for a class, in stage order
// (the rows of Tables 3 and 4 in the paper).
func (m *Monitor) Ratios(c Class) [NumStages]float64 {
	var r [NumStages]float64
	for s := Stage(0); s < NumStages; s++ {
		r[s] = m.ByClass[c].Ratio(s)
	}
	return r
}

// Packets returns the packet count in a class.
func (m *Monitor) Packets(c Class) uint64 { return m.ByClass[c].Packets }

// TotalPackets returns the packet count across classes.
func (m *Monitor) TotalPackets() uint64 {
	return m.ByClass[Small].Packets + m.ByClass[Large].Packets
}

// TotalBytes returns total bytes moved across classes.
func (m *Monitor) TotalBytes() uint64 {
	return m.ByClass[Small].Bytes + m.ByClass[Large].Bytes
}

// String renders the monitor in a compact diagnostic form.
func (m *Monitor) String() string {
	var sb strings.Builder
	for c := Class(0); c < numClasses; c++ {
		st := &m.ByClass[c]
		fmt.Fprintf(&sb, "%s: %d pkts, %d bytes;", c, st.Packets, st.Bytes)
		for s := Stage(0); s < NumStages; s++ {
			fmt.Fprintf(&sb, " %s=%.1f", s, st.Ratio(s))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TopKinds returns up to n message kinds by packet count, descending.
func (m *Monitor) TopKinds(n int) []struct {
	Kind string
	KindStats
} {
	type row struct {
		Kind string
		KindStats
	}
	var rows []row
	for k, v := range m.ByKind {
		rows = append(rows, row{k, *v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Packets != rows[j].Packets {
			return rows[i].Packets > rows[j].Packets
		}
		return rows[i].Kind < rows[j].Kind
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	out := make([]struct {
		Kind string
		KindStats
	}, len(rows))
	for i, r := range rows {
		out[i] = struct {
			Kind string
			KindStats
		}{r.Kind, r.KindStats}
	}
	return out
}
