package nic

import (
	"testing"
	"testing/quick"

	"genima/internal/sim"
	"genima/internal/topo"
)

func newTestSystem(t *testing.T) (*sim.Engine, *System, *topo.Config) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := topo.Default()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return eng, NewSystem(eng, &cfg), &cfg
}

// The paper reports ~18 µs one-way latency for one-word messages and a
// ~2 µs asynchronous post overhead. Check the calibration within 20%.
func TestCalibrationOneWordLatency(t *testing.T) {
	_, sys, _ := newTestSystem(t)
	lat := sys.UncontendedOneWay(4)
	lo, hi := sim.Micro(14.5), sim.Micro(21.5)
	if lat < lo || lat > hi {
		t.Errorf("one-word one-way latency = %.1f µs, want ~18 µs", float64(lat)/1000)
	}
}

// A 4 KB transfer (page) should take on the order of 90–115 µs one-way,
// so that remote fetch (request + transfer) lands near the paper's 110 µs.
func TestCalibrationPageTransfer(t *testing.T) {
	_, sys, _ := newTestSystem(t)
	lat := sys.UncontendedOneWay(4096)
	lo, hi := sim.Micro(80), sim.Micro(120)
	if lat < lo || lat > hi {
		t.Errorf("4KB one-way latency = %.1f µs, want 80–120 µs", float64(lat)/1000)
	}
}

func TestDeliveryRunsOnDeliver(t *testing.T) {
	eng, sys, _ := newTestSystem(t)
	var deliveredAt sim.Time
	eng.Go("sender", func(p *sim.Proc) {
		pkt := &Packet{Src: 0, Dst: 1, Size: 64, Kind: "test",
			OnDeliver: func() { deliveredAt = eng.Now() }}
		sys.NIs[0].Post(p, pkt)
	})
	eng.RunUntilQuiet()
	if deliveredAt == 0 {
		t.Fatal("packet never delivered")
	}
	want := sys.UncontendedOneWay(64) + sim.Micro(2) // + post overhead
	if deliveredAt != want {
		t.Errorf("delivered at %d, want %d", deliveredAt, want)
	}
}

func TestPerPairFIFOOrder(t *testing.T) {
	eng, sys, _ := newTestSystem(t)
	var order []int
	eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			i := i
			size := 64
			if i%2 == 0 {
				size = 4096 // mix sizes; order must still hold per pair
			}
			sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 1, Size: size,
				OnDeliver: func() { order = append(order, i) }})
		}
	})
	eng.RunUntilQuiet()
	if len(order) != 10 {
		t.Fatalf("delivered %d of 10", len(order))
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("delivery order %v; want FIFO", order)
		}
	}
}

// Property: messages between the same pair are always delivered in post
// order, regardless of size mix.
func TestFIFOProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 40 {
			return true
		}
		eng := sim.NewEngine()
		cfg := topo.Default()
		sys := NewSystem(eng, &cfg)
		var order []int
		eng.Go("s", func(p *sim.Proc) {
			for i, s := range sizes {
				i := i
				sz := int(s)%4096 + 1
				sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 2, Size: sz,
					OnDeliver: func() { order = append(order, i) }})
			}
		})
		eng.RunUntilQuiet()
		if len(order) != len(sizes) {
			return false
		}
		for i := range order {
			if order[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFirmwareHandledPacketSkipsHostDMA(t *testing.T) {
	eng, sys, cfg := newTestSystem(t)
	var fwAt, depositAt sim.Time
	eng.Go("sender", func(p *sim.Proc) {
		sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 1, Size: 32, Kind: "fetch-req",
			FwService: cfg.Costs.NIFetchService,
			FwHandler: func(dst *NI, pkt *Packet) {
				fwAt = eng.Now()
				if dst.ID != 1 {
					t.Errorf("handler on NI %d, want 1", dst.ID)
				}
			}})
		sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 1, Size: 32,
			OnDeliver: func() { depositAt = eng.Now() }})
	})
	eng.RunUntilQuiet()
	if fwAt == 0 || depositAt == 0 {
		t.Fatal("packets not handled")
	}
	// The firmware-handled packet skips the destination host DMA, so the
	// deposit packet (same size, sent right after) must finish later by
	// more than one PCI DMA service time.
	if depositAt <= fwAt {
		t.Errorf("deposit at %d not after firmware handling at %d", depositAt, fwAt)
	}
}

func TestFirmwareSendSkipsPostQueue(t *testing.T) {
	eng, sys, _ := newTestSystem(t)
	delivered := false
	eng.At(0, func() {
		sys.NIs[2].FirmwareSend(&Packet{Src: 2, Dst: 3, Size: 16, Kind: "grant",
			OnDeliver: func() { delivered = true }}, false)
	})
	eng.RunUntilQuiet()
	if !delivered {
		t.Fatal("firmware-originated packet not delivered")
	}
	if sys.NIs[2].PostQueue.InUse() != 0 {
		t.Error("firmware send consumed a post-queue slot")
	}
}

func TestPostQueueBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	cfg := topo.Default()
	cfg.PostQueueDepth = 4
	sys := NewSystem(eng, &cfg)
	n := 32
	var posted int
	eng.Go("flood", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 1, Size: 4096})
			posted++
		}
	})
	eng.RunUntilQuiet()
	if posted != n {
		t.Fatalf("posted %d of %d", posted, n)
	}
	if sys.NIs[0].PostQueue.Blocked == 0 {
		t.Error("flooding a depth-4 post queue never blocked the host")
	}
	if sys.NIs[0].PostQueue.BlockedTime == 0 {
		t.Error("blocked time not accounted")
	}
}

func TestPostFromEventOverflowCounted(t *testing.T) {
	eng := sim.NewEngine()
	cfg := topo.Default()
	cfg.PostQueueDepth = 2
	sys := NewSystem(eng, &cfg)
	delivered := 0
	eng.At(0, func() {
		// Five posts in one event: the first two claim the depth-2
		// queue, the rest are accepted past it and must be counted.
		for i := 0; i < 5; i++ {
			pkt := sys.NIs[0].NewPacket()
			pkt.Src, pkt.Dst, pkt.Size, pkt.Kind = 0, 1, 64, "ctl"
			pkt.OnDeliver = func() { delivered++ }
			sys.NIs[0].PostFromEvent(pkt)
		}
	})
	eng.RunUntilQuiet()
	if delivered != 5 {
		t.Fatalf("delivered %d of 5", delivered)
	}
	if got := sys.NIs[0].Overflows; got != 3 {
		t.Errorf("Overflows = %d, want 3", got)
	}
	if sys.NIs[0].PostQueue.Blocked != 0 {
		t.Errorf("event-context overflow must not count as a Gate stall")
	}
	if sys.NIs[0].PostQueue.InUse() != 0 {
		t.Errorf("post-queue slots leaked: InUse = %d", sys.NIs[0].PostQueue.InUse())
	}
}

func TestPostQueueStallTimeExact(t *testing.T) {
	// Depth-1 queue, two back-to-back posts: the second stalls from the
	// end of its post overhead until the first packet's source DMA
	// releases the slot. BlockedTime must equal exactly that interval.
	eng := sim.NewEngine()
	cfg := topo.Default()
	cfg.PostQueueDepth = 1
	sys := NewSystem(eng, &cfg)
	po := cfg.Costs.PostOverhead
	pci := cfg.Costs.PCIFixed + sim.Time(float64(4096)*cfg.Costs.PCIPerByte)
	want := (po + pci) - 2*po // slot frees at po+pci; second acquire at 2*po
	if want <= 0 {
		t.Skipf("config makes the source DMA (%d) shorter than the post overhead", pci)
	}
	eng.Go("s", func(p *sim.Proc) {
		sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 1, Size: 4096})
		sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 1, Size: 4096})
	})
	eng.RunUntilQuiet()
	if sys.NIs[0].PostQueue.Blocked != 1 {
		t.Fatalf("Blocked = %d, want 1", sys.NIs[0].PostQueue.Blocked)
	}
	if got := sys.NIs[0].PostQueue.BlockedTime; got != want {
		t.Errorf("BlockedTime = %d, want %d", got, want)
	}
}

func TestPacketAndTransitRecycleToOrigin(t *testing.T) {
	eng, sys, _ := newTestSystem(t)
	eng.Go("s", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			pkt := sys.NIs[0].NewPacket()
			pkt.Src, pkt.Dst, pkt.Size = 0, 1, 64
			sys.NIs[0].Post(p, pkt)
		}
	})
	eng.RunUntilQuiet()
	// All packets and transits return to the origin NI's free lists, so
	// a steady sender reaches a closed, allocation-free loop.
	if got := len(sys.NIs[0].pool.pktFree); got == 0 {
		t.Error("origin packet pool empty after deliveries")
	}
	if got := len(sys.NIs[0].pool.trFree); got == 0 {
		t.Error("origin transit pool empty after deliveries")
	}
	if got := len(sys.NIs[1].pool.pktFree); got != 0 {
		t.Errorf("destination packet pool has %d packets; recycling should target the origin", got)
	}
}

func TestBroadcastCopiesComeFromPool(t *testing.T) {
	eng, sys, _ := newTestSystem(t)
	// Pre-warm the origin pools past the broadcast's needs (Get misses
	// carve whole chunks, which would obscure the recycle count below).
	ni := sys.NIs[0]
	var pkts []*Packet
	for i := 0; i < 4; i++ {
		pkts = append(pkts, ni.getPacket())
	}
	for _, p := range pkts {
		ni.putPacket(p)
	}
	var trs []*transit
	for i := 0; i < 4; i++ {
		trs = append(trs, ni.pool.getTransit())
	}
	for _, tr := range trs {
		ni.pool.putTransit(tr)
	}
	basePkts, baseTrs := len(ni.pool.pktFree), len(ni.pool.trFree)

	delivered := 0
	eng.Go("s", func(p *sim.Proc) {
		tmpl := ni.NewPacket()
		tmpl.Src, tmpl.Dst, tmpl.Size, tmpl.Kind = 0, -1, 128, "bcast"
		ni.PostBroadcast(p, tmpl, []int{1, 2, 3}, func(int) { delivered++ })
	})
	eng.RunUntilQuiet()
	if delivered != 3 {
		t.Fatalf("delivered %d of 3 copies", delivered)
	}
	// Template + three per-destination copies all recycle to the origin:
	// the pools end exactly where they started, a closed loop.
	if got := len(ni.pool.pktFree); got != basePkts {
		t.Errorf("origin pool holds %d packets after broadcast, want %d", got, basePkts)
	}
	if got := len(ni.pool.trFree); got != baseTrs {
		t.Errorf("origin pool holds %d transits after broadcast, want %d", got, baseTrs)
	}
}

func TestMonitorUncontendedRatiosNearOne(t *testing.T) {
	eng, sys, _ := newTestSystem(t)
	// One widely spaced packet at a time: no contention anywhere.
	eng.Go("s", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 1, Size: 64})
			p.Sleep(sim.Micro(1000))
		}
	})
	eng.RunUntilQuiet()
	r := sys.Monitor.Ratios(Small)
	for s, v := range r {
		if v < 0.99 || v > 1.01 {
			t.Errorf("stage %v ratio = %.3f, want ~1.0 (uncontended)", Stage(s), v)
		}
	}
	if sys.Monitor.Packets(Small) != 5 {
		t.Errorf("small packets = %d, want 5", sys.Monitor.Packets(Small))
	}
}

func TestMonitorContentionAboveOneUnderLoad(t *testing.T) {
	eng, sys, _ := newTestSystem(t)
	// Many senders to one destination: queueing at the shared stages.
	for src := 0; src < 3; src++ {
		src := src
		eng.Go("s", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				sys.NIs[src].Post(p, &Packet{Src: src, Dst: 3, Size: 64})
			}
		})
	}
	eng.RunUntilQuiet()
	r := sys.Monitor.Ratios(Small)
	if r[StageDest] <= 1.05 && r[StageNet] <= 1.05 {
		t.Errorf("ratios %v: expected visible contention at Net or Dest", r)
	}
	// Actual must never be below uncontended.
	for s := Stage(0); s < NumStages; s++ {
		if r[s] < 0.999 {
			t.Errorf("stage %v ratio %.3f < 1: actual below uncontended", s, r[s])
		}
	}
}

func TestMonitorClassSplit(t *testing.T) {
	eng, sys, _ := newTestSystem(t)
	eng.Go("s", func(p *sim.Proc) {
		sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 1, Size: 256})  // small (boundary)
		sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 1, Size: 257})  // large
		sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 1, Size: 4096}) // large
	})
	eng.RunUntilQuiet()
	if got := sys.Monitor.Packets(Small); got != 1 {
		t.Errorf("small = %d, want 1", got)
	}
	if got := sys.Monitor.Packets(Large); got != 2 {
		t.Errorf("large = %d, want 2", got)
	}
	if sys.Monitor.TotalPackets() != 3 {
		t.Errorf("total = %d", sys.Monitor.TotalPackets())
	}
	if sys.Monitor.TotalBytes() != 256+257+4096 {
		t.Errorf("bytes = %d", sys.Monitor.TotalBytes())
	}
}

func TestSendPipeliningReducesLANaiOccupancy(t *testing.T) {
	run := func(pipe int) sim.Time {
		eng := sim.NewEngine()
		cfg := topo.Default()
		cfg.SendPipelining = pipe
		sys := NewSystem(eng, &cfg)
		var last sim.Time
		eng.Go("s", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 1, Size: 32,
					OnDeliver: func() { last = eng.Now() }})
			}
		})
		eng.RunUntilQuiet()
		return last
	}
	if t1, t4 := run(1), run(4); t4 >= t1 {
		t.Errorf("pipelining=4 finish %d not faster than pipelining=1 finish %d", t4, t1)
	}
}

func TestMonitorKindAccounting(t *testing.T) {
	eng, sys, _ := newTestSystem(t)
	eng.Go("s", func(p *sim.Proc) {
		sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 1, Size: 64, Kind: "diff"})
		sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 1, Size: 64, Kind: "diff"})
		sys.NIs[0].Post(p, &Packet{Src: 0, Dst: 1, Size: 128, Kind: "notice"})
	})
	eng.RunUntilQuiet()
	top := sys.Monitor.TopKinds(10)
	if len(top) != 2 || top[0].Kind != "diff" || top[0].Packets != 2 || top[0].Bytes != 128 {
		t.Fatalf("TopKinds = %+v", top)
	}
	if top[1].Kind != "notice" || top[1].Bytes != 128 {
		t.Fatalf("TopKinds = %+v", top)
	}
}
