package nic

// NI-firmware reliable delivery: the half of VMMC's contract the fabric
// stops providing once fault injection is on. The firmware keeps
// per-destination sequence numbers, a checksum over the packet header
// (standing in for a payload CRC), a pooled retransmission buffer with
// virtual-time timeout + exponential backoff, duplicate suppression,
// and cumulative acks piggybacked on reverse traffic — so everything
// above the firmware line (vmmc, the protocols) still sees reliable,
// per-flow-FIFO delivery and the host never takes an interrupt for a
// lost packet.
//
// Sequence discipline is go-back-N. Sequence numbers are assigned when
// the send-firmware stage completes (transit stSrcFW), which is the
// moment the packet enters the out-link: the firmware resource is FIFO,
// so per-(src,dst) sequence order always equals wire order and the only
// sources of out-of-order arrival are injected faults. The receiver
// accepts exactly the next expected sequence number, suppresses
// duplicates (Seq <= recvd), and discards later packets (go-back-N has
// no reassembly buffer), re-acking in both cases. The sender keeps a
// snapshot of every unacked packet in a pooled retransmission entry;
// on timeout it retransmits the whole window from NI memory
// (startAtFirmware, no host DMA) and doubles the timeout, resetting it
// on cumulative-ack progress.
//
// The timeout adapts to the measured round-trip time: an entry that
// was never retransmitted feeds an EWMA smoothed RTT with the exact
// sample now-firstSent, and the flow's base RTO is max(RetxTimeout,
// 2*srtt). Retransmitted entries are ambiguous (Karn's problem) and
// do not update srtt — sampling them with now-firstSent is divergent,
// not merely noisy: that sample includes the back-off waits the entry
// sat through, each loss episode then inflates srtt, the inflated srtt
// doubles the next wait, and the next sample inflates srtt further, a
// positive-feedback loop that drives virtual time to absurdity (a
// 60-packet unit-test burst reached 10^5 simulated seconds before the
// arithmetic overflowed). The one exception is a flow with no estimate
// at all (srtt == 0): its first retired entry bootstraps srtt with
// now-lastSent, the round trip of the copy that finally got through —
// a sample that contains no back-off waits and so cannot feed back.
//
// The back-off itself is uncapped (up to an overflow guard far beyond
// any run length): consecutive timeouts double the RTO without limit,
// and only cumulative-ack progress resets it to the base. A static cap
// is not a safety net but a collapse mechanism at scale — a flat
// 256-node barrier puts hundreds of multi-KB flag deposits in every
// NI's firmware FIFO at once, the queueing round trip then exceeds any
// static cap by an order of magnitude, and with a capped RTO every
// flow times out forever, each spurious whole-window retransmit (and
// the dup-ack it provokes) growing the queues faster than they drain.
// Uncapped doubling instead halves a stuck flow's retransmission
// pressure each cycle, the fabric drains, the first ack arrives, and
// the flow learns the real (congested) round trip. The full-window
// resend then heals a genuine hole in one round trip (the receiver
// discarded everything behind it).
//
// Pool ownership: a retransmission entry snapshots the Packet by VALUE,
// so the in-flight packet recycles through the normal pipeline pools
// while the entry lives until acked. The snapshot's Payload pointer is
// only ever dereferenced at delivery, and sequence gating delivers each
// number exactly once, so a payload the protocol has already consumed
// (and possibly recycled) is never touched again through a stale entry.
//
// All of this is gated on ni.rel != nil, which is non-nil only when
// cfg.Faults.Enabled — with faults off, not one branch of this file
// runs and the event stream is byte-identical to the pre-faults code
// (see trace_golden_test.go).

import (
	"fmt"

	"genima/internal/sim"
	"genima/internal/stats"
	"genima/internal/topo"
)

// RelFlags bits.
const (
	relHasSeq uint8 = 1 << iota // packet carries a sequence number
	relHasAck                   // packet carries a cumulative ack
	relCtrl                     // standalone ack: consumed by firmware, never delivered
)

const (
	// relAckBytes is the wire size of a standalone cumulative ack.
	relAckBytes = 16
	// relMaxAttempts is a tripwire: a packet retransmitted this many
	// times means the fault plan or backoff logic livelocked.
	relMaxAttempts = 100
	// relRTOCeil bounds the uncapped exponential back-off purely for
	// arithmetic safety: ~9.7 virtual hours, beyond any run length but
	// far enough from the int64 horizon that now+rto cannot overflow.
	// It is not a behavioral cap — a flow that reaches it has long
	// since tripped relMaxAttempts.
	relRTOCeil = sim.Time(1) << 45
)

// relChecksum is an FNV-1a hash over the packet header fields the
// reliability layer must trust (the model's stand-in for a payload
// CRC). Link corruption XORs a nonzero mask into pkt.Csum, so a
// corrupted packet always fails this check at the receiver.
func relChecksum(p *Packet) uint64 {
	h := uint64(0xcbf29ce484222325)
	h = fnvMix(h, uint64(int64(p.Src)))
	h = fnvMix(h, uint64(int64(p.Dst)))
	h = fnvMix(h, uint64(int64(p.Size)))
	h = fnvMix(h, uint64(int64(p.Meta)))
	h = fnvMix(h, uint64(int64(p.Meta2)))
	h = fnvMix(h, p.Seq)
	h = fnvMix(h, p.Ack)
	h = fnvMix(h, uint64(p.RelFlags))
	return h
}

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 0x100000001b3
		v >>= 8
	}
	return h
}

// retxEntry is one unacked packet in the sender's retransmission
// buffer (modeling the copy VMMC keeps in NI SRAM).
type retxEntry struct {
	pkt       Packet    // value snapshot at sequence-stamp time
	bcast     func(int) // broadcast per-destination deliver, nil for unicast
	firstSent sim.Time
	lastSent  sim.Time
	attempts  int
}

// relTimer is a rearmable virtual-time timer. The event queue has no
// cancellation, so disarm/rearm work by deadline: a fired event whose
// deadline moved later reschedules itself, and a disarmed one
// (deadline 0) drains without effect. A timer can therefore fire
// slightly later than its nominal deadline after rapid rearming —
// harmless for retransmission and delayed-ack purposes — but never
// earlier, and never leaks: every queued event either fires or drains.
type relTimer struct {
	rel      *relState
	peer     int
	kind     uint8 // 0 = retransmission, 1 = delayed ack
	deadline sim.Time
	nextFire sim.Time
	queued   int
}

func (t *relTimer) arm(at sim.Time) {
	t.deadline = at
	if t.queued > 0 && t.nextFire <= at {
		return // an already-queued event covers this deadline
	}
	t.queued++
	t.nextFire = at
	t.rel.ni.eng.AtHandler(at, at, t)
}

func (t *relTimer) disarm() { t.deadline = 0 }

// Run implements sim.Handler.
func (t *relTimer) Run(_, now sim.Time) {
	t.queued--
	if t.deadline == 0 || now < t.deadline {
		if t.deadline != 0 && t.queued == 0 {
			t.queued++
			t.nextFire = t.deadline
			t.rel.ni.eng.AtHandler(t.deadline, t.deadline, t)
		}
		return
	}
	t.deadline = 0
	if t.kind == 0 {
		t.rel.retxFire(t.peer, now)
	} else {
		t.rel.ackFire(t.peer, now)
	}
}

// relFlow is the reliability state this NI keeps for one peer: the
// sender side of traffic TO the peer and the receiver side of traffic
// FROM it (cumulative acks for the latter piggyback on the former).
type relFlow struct {
	// Sender side (packets to the peer).
	nextSeq uint64       // last assigned; first packet gets 1
	pending []*retxEntry // unacked, in sequence order
	rto     sim.Time     // current timeout (exponential backoff)
	srtt    sim.Time     // EWMA round-trip estimate; 0 until first sample
	retx    relTimer

	// Receiver side (packets from the peer).
	recvd   uint64 // highest in-order sequence received = cumulative ack
	unacked int    // accepted deliveries not yet acked
	ackT    relTimer
}

// relState is one NI's reliable-delivery engine.
type relState struct {
	ni       *NI
	flows    []relFlow
	ackEvery int

	// Report counts what this NI's firmware did to mask faults (the
	// reliability fields of stats.FaultReport; injection fields are
	// counted by the fault plan itself).
	Report stats.FaultReport

	entFree []*retxEntry
}

func newRelState(ni *NI, ackEvery int) *relState {
	r := &relState{ni: ni, flows: make([]relFlow, len(ni.peers)), ackEvery: ackEvery}
	for i := range r.flows {
		f := &r.flows[i]
		f.retx = relTimer{rel: r, peer: i, kind: 0}
		f.ackT = relTimer{rel: r, peer: i, kind: 1}
	}
	return r
}

// relService is the extra firmware occupancy reliable delivery charges
// per packet on each side (checksum + seq/ack bookkeeping).
func (ni *NI) relService(size int) sim.Time {
	if ni.rel == nil {
		return 0
	}
	return ni.cfg.Costs.NIRelFixed + sim.Time(float64(size)*ni.cfg.Costs.NICsumPerByte)
}

// Entry pool: same deterministic LIFO + chunk discipline as the packet
// pool (see transit.go getPacket).
func (r *relState) getEntry() *retxEntry {
	if n := len(r.entFree); n > 0 {
		e := r.entFree[n-1]
		r.entFree[n-1] = nil
		r.entFree = r.entFree[:n-1]
		return e
	}
	chunk := make([]retxEntry, 16)
	for i := len(chunk) - 1; i > 0; i-- {
		r.entFree = append(r.entFree, &chunk[i])
	}
	return &chunk[0]
}

func (r *relState) putEntry(e *retxEntry) {
	*e = retxEntry{}
	r.entFree = append(r.entFree, e)
}

// notePiggyback records that an outgoing packet's cumulative ack also
// settles the receiver side's pending-ack obligation for this peer.
func (r *relState) notePiggyback(f *relFlow) {
	if f.unacked > 0 {
		r.Report.PiggybackAcks++
		f.unacked = 0
		f.ackT.disarm()
	}
}

// stamp assigns reliability headers when the send-firmware stage
// completes and the packet is about to enter the wire. Standalone acks
// get a fresh cumulative ack value; retransmissions (already carrying
// a sequence number) pass through untouched — retxFire restamped them;
// everything else gets the next per-destination sequence number, a
// piggybacked ack, a checksum, and a retransmission entry.
func (r *relState) stamp(t *transit, now sim.Time) {
	pkt := t.pkt
	if pkt.RelFlags&relCtrl != 0 {
		pkt.Ack = r.flows[pkt.Dst].recvd
		pkt.Csum = relChecksum(pkt)
		return
	}
	if pkt.RelFlags&relHasSeq != 0 {
		return
	}
	if t.dsts != nil {
		r.stampBroadcast(t, now)
		return
	}
	f := &r.flows[pkt.Dst]
	f.nextSeq++
	pkt.Seq = f.nextSeq
	pkt.RelFlags = relHasSeq | relHasAck
	pkt.Ack = f.recvd
	r.notePiggyback(f)
	pkt.Csum = relChecksum(pkt)

	e := r.getEntry()
	e.pkt = *pkt
	e.firstSent, e.lastSent = now, now
	e.attempts = 1
	r.addPending(f, e, now)
}

// stampBroadcast creates one retransmission entry per destination for
// a broadcast template. The template itself carries no single (Seq,
// Csum): its Csum field is zeroed here and accumulates any corruption
// injected on the shared out-link/switch prefix; fanOut XORs that into
// each per-destination copy's entry checksum, so shared-prefix
// corruption is detected at every destination. A template dropped
// before the fan-out is recovered by per-destination unicast
// retransmissions from the entries created here.
func (r *relState) stampBroadcast(t *transit, now sim.Time) {
	tmpl := t.pkt
	tmpl.RelFlags = relHasSeq | relHasAck
	tmpl.Csum = 0
	for _, dst := range t.dsts {
		f := &r.flows[dst]
		f.nextSeq++
		e := r.getEntry()
		e.pkt = *tmpl
		e.pkt.Dst = dst
		e.pkt.Seq = f.nextSeq
		e.pkt.Ack = f.recvd
		r.notePiggyback(f)
		e.pkt.Csum = relChecksum(&e.pkt)
		e.bcast = t.bcastDeliver
		e.firstSent, e.lastSent = now, now
		e.attempts = 1
		r.addPending(f, e, now)
		t.entries = append(t.entries, e)
	}
}

// baseRTO is the flow's adaptive initial timeout: twice the smoothed
// RTT (headroom for jitter and ack delay), floored at the static
// RetxTimeout while no sample exists or traffic is genuinely fast.
func (f *relFlow) baseRTO(c *topo.Costs) sim.Time {
	rto := 2 * f.srtt
	if rto < c.RetxTimeout {
		rto = c.RetxTimeout
	}
	return rto
}

func (r *relState) addPending(f *relFlow, e *retxEntry, now sim.Time) {
	f.pending = append(f.pending, e)
	if f.retx.deadline == 0 {
		f.rto = f.baseRTO(&r.ni.cfg.Costs)
		f.retx.arm(now + f.rto)
	}
}

// retxFire retransmits the whole unacked window to one peer
// (go-back-N: the receiver discarded everything after the hole, so the
// successors must travel again for the loss to heal in one round trip)
// from NI memory and backs the timeout off. The adaptive RTO is what
// makes the full-window resend safe at scale: the timer only fires
// when a round trip has genuinely been exceeded, not on a fixed
// schedule a congested barrier burst can never meet.
func (r *relState) retxFire(peer int, now sim.Time) {
	f := &r.flows[peer]
	if len(f.pending) == 0 {
		return
	}
	ni := r.ni
	for _, e := range f.pending {
		e.attempts++
		if e.attempts > relMaxAttempts {
			panic(fmt.Sprintf("nic: packet %s %d->%d seq %d exceeded %d transmit attempts (pending %d, rto %dns, srtt %dns, firstSent %dns, now %dns)",
				e.pkt.Kind, e.pkt.Src, e.pkt.Dst, e.pkt.Seq, relMaxAttempts,
				len(f.pending), f.rto, f.srtt, e.firstSent, now))
		}
		e.lastSent = now
		r.Report.RetxSent++

		cp := ni.getPacket()
		*cp = e.pkt
		cp.Ack = f.recvd // refresh the piggybacked ack
		cp.Csum = relChecksum(cp)
		cp.FwSendExtra = 0 // data is already packed in NI memory
		cp.noSrcDMA = true
		cp.tPost, cp.tSrc = now, now
		cp.tInject, cp.tArrive, cp.tDone = 0, 0, 0
		td := ni.newTransit(cp)
		td.bcastDeliver = e.bcast
		td.startAtFirmware()
	}
	f.rto *= 2
	if f.rto > relRTOCeil {
		f.rto = relRTOCeil
	}
	f.retx.arm(now + f.rto)
}

// processAck retires pending entries covered by a cumulative ack from
// peer, resets the backoff on progress, and records recovery time for
// packets that needed retransmission.
func (r *relState) processAck(peer int, ack uint64, now sim.Time) {
	f := &r.flows[peer]
	n := 0
	for n < len(f.pending) && f.pending[n].pkt.Seq <= ack {
		e := f.pending[n]
		if e.attempts > 1 {
			r.Report.Recovered++
			d := now - e.firstSent
			r.Report.TotalRecovery += d
			if d > r.Report.MaxRecovery {
				r.Report.MaxRecovery = d
			}
		}
		// RTT sample for the adaptive RTO; EWMA with gain 1/4. Only
		// never-retransmitted entries sample (Karn's rule: their
		// now-firstSent is an exact round trip, free of back-off
		// waits), except that a flow with no estimate yet bootstraps
		// from the last copy's round trip — see the package comment.
		if e.attempts == 1 {
			s := now - e.firstSent
			if f.srtt == 0 {
				f.srtt = s
			} else {
				f.srtt += (s - f.srtt) / 4
			}
		} else if f.srtt == 0 {
			f.srtt = now - e.lastSent
		}
		r.putEntry(e)
		n++
	}
	if n == 0 {
		return
	}
	m := copy(f.pending, f.pending[n:])
	for i := m; i < len(f.pending); i++ {
		f.pending[i] = nil
	}
	f.pending = f.pending[:m]
	f.rto = f.baseRTO(&r.ni.cfg.Costs)
	if m == 0 {
		f.retx.disarm()
	} else {
		f.retx.arm(now + f.rto)
	}
}

// receive is the receiver-side gate, run when the destination firmware
// stage completes and before the packet is delivered (host DMA or
// firmware handler). It returns true iff the packet should be
// delivered; false means the firmware consumed it (ack) or discarded
// it (corrupt, duplicate, out of order).
func (r *relState) receive(pkt *Packet, now sim.Time) bool {
	if pkt.Csum != relChecksum(pkt) {
		// Corrupted in flight: indistinguishable from loss. The
		// header (including any ack) cannot be trusted, so nothing
		// else is processed; the sender's timer recovers.
		r.Report.CorruptDropped++
		return false
	}
	if pkt.RelFlags&relHasAck != 0 {
		r.processAck(pkt.Src, pkt.Ack, now)
	}
	if pkt.RelFlags&relCtrl != 0 {
		return false
	}
	f := &r.flows[pkt.Src]
	switch {
	case pkt.Seq == f.recvd+1:
		f.recvd++
		f.unacked++
		if f.unacked >= r.ackEvery {
			r.sendAck(pkt.Src)
		} else {
			r.armAck(f, now)
		}
		return true
	case pkt.Seq <= f.recvd:
		r.Report.DupsSuppressed++
		r.sendAck(pkt.Src)
		return false
	default:
		r.Report.OOODropped++
		r.sendAck(pkt.Src)
		return false
	}
}

// sendAck emits a standalone cumulative ack to peer from NI memory.
func (r *relState) sendAck(peer int) {
	f := &r.flows[peer]
	f.unacked = 0
	f.ackT.disarm()
	r.Report.AcksSent++
	ni := r.ni
	p := ni.getPacket()
	p.Src, p.Dst, p.Size = ni.ID, peer, relAckBytes
	p.Kind = "rel-ack"
	p.RelFlags = relCtrl | relHasAck
	p.Ack = f.recvd
	p.Csum = relChecksum(p)
	ni.FirmwareSend(p, false)
}

// armAck starts the delayed-ack timer so sparse one-way traffic still
// gets acked within AckDelay even when no reverse packet or ackEvery
// threshold comes along.
func (r *relState) armAck(f *relFlow, now sim.Time) {
	if f.ackT.deadline != 0 {
		return
	}
	f.ackT.arm(now + r.ni.cfg.Costs.AckDelay)
}

func (r *relState) ackFire(peer int, _ sim.Time) {
	if r.flows[peer].unacked > 0 {
		r.sendAck(peer)
	}
}
