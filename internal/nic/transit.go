package nic

import (
	"genima/internal/sim"
)

// transit is the pooled state machine that carries one packet through
// the seven-stage send/route/receive pipeline:
//
//	src PCI -> src firmware -> out-link -> switch -> in-link
//	        -> dst firmware -> dst PCI
//
// Each stage completion is scheduled on the owning sim.Resource via
// EnqueueHandler, so advancing a packet costs zero heap allocations:
// the transit record itself is the sim.Handler, and its stage counter
// says which boundary just completed. A broadcast uses one template
// transit for the shared prefix (PCI, firmware, out-link, switch) and
// fans out per-destination transits at the switch, each carrying its
// own pooled Packet copy.
//
// The event *stream* is bit-identical to the old closure pipeline: the
// same resources are reserved in the same order at the same times, and
// EnqueueHandler shares the engine's seq counter with At, so FIFO
// tie-breaks are unchanged. Only the Go-level dispatch changed.
type transit struct {
	ni        *NI // source NI: fabric, peer table, config
	pkt       *Packet
	stage     int8
	holdsSlot bool // release the post-queue slot when the source DMA ends

	// route is the packet's compiled switch path (aliases the topology's
	// flat table — never mutated) and hop the index of the switch whose
	// crossing is underway or just completed. On the single crossbar
	// every route is [0] and the pipeline is call-for-call identical to
	// the one-switch model.
	route []int16
	hop   int8

	// eng is the logical process currently carrying the packet and pool
	// the free lists owned by that LP (the transit and packet recycle
	// into the pool of the LP they finish on). Both start at the source
	// NI and are advanced at the two LP-crossing boundaries — out-link
	// completion (node -> fabric) and switch completion (fabric ->
	// destination node). In a serial run they never change, so recycling
	// stays at the origin NI exactly as before.
	eng  *sim.Engine
	pool *pktPool

	// Broadcast template state (nil/zero on unicast and per-dst copies).
	dsts         []int
	bcastDeliver func(dst int)

	// Broadcast retransmission entries, parallel to dsts, filled at
	// sequence-stamp time when reliable delivery is on (reliable.go).
	// The slice's capacity survives pooling so steady-state broadcasts
	// allocate nothing.
	entries []*retxEntry
}

// Stage values: the boundary that just completed when Run is invoked.
const (
	stSrcPCI  int8 = iota // source DMA into NI memory done
	stSrcFW               // send-side firmware done -> enter the network
	stOutLink             // last byte on the out-link (the inject point)
	stSwitch              // crossbar arbitration done
	stInLink              // last byte at the receiving NI
	stDstFW               // receive-side firmware done
	stDstPCI              // deposit DMA into destination host memory done

	// stFaultDelay holds a packet the fault plan chose to reorder-delay
	// after its in-link crossing; only reachable with faults enabled.
	stFaultDelay
)

// start begins the pipeline at the source DMA stage.
func (t *transit) start() {
	t.stage = stSrcPCI
	t.ni.PCI.EnqueueHandler(t.ni.pciService(t.pkt.Size), t)
}

// startAtFirmware begins the pipeline at the send-firmware stage, for
// firmware-originated packets whose data already lives in NI memory.
func (t *transit) startAtFirmware() {
	t.stage = stSrcFW
	t.ni.Firmware.EnqueueHandler(t.ni.fwSendService(t.pkt.Size)+t.pkt.FwSendExtra, t)
}

// Run advances the packet one stage. It implements sim.Handler; end is
// the current virtual time (the completed reservation's end).
func (t *transit) Run(_, end sim.Time) {
	pkt := t.pkt
	switch t.stage {
	case stSrcPCI:
		if t.holdsSlot {
			t.ni.PostQueue.Release()
		}
		pkt.tSrc = end
		t.stage = stSrcFW
		t.ni.Firmware.EnqueueHandler(t.ni.fwSendService(pkt.Size)+pkt.FwSendExtra, t)

	case stSrcFW:
		if r := t.ni.rel; r != nil {
			// Sequence numbers are assigned here, at network entry:
			// the firmware resource is FIFO, so per-flow sequence
			// order always equals wire order.
			r.stamp(t, end)
		}
		t.stage = stOutLink
		if fl := t.ni.fab; fl != nil {
			// Node -> fabric LP crossing: the out-link is owned by the
			// source node, its completion runs on the fabric.
			t.ni.fabric.Out[pkt.Src].TransferCross(pkt.Size, t.eng, fl.eng, t)
			t.eng, t.pool = fl.eng, &fl.pool
		} else {
			t.ni.fabric.Out[pkt.Src].TransferHandler(pkt.Size, t)
		}

	case stOutLink:
		pkt.tInject = end
		if F := t.ni.fabric.Faults; F != nil {
			v := F.JudgeOut(pkt.Src, end)
			if v.Drop {
				t.recycle()
				return
			}
			// For a broadcast template Csum is zero here, so the mask
			// accumulates and fanOut folds it into every copy.
			pkt.Csum ^= v.CorruptMask
		}
		t.stage = stSwitch
		t.hop = 0
		if t.dsts != nil {
			// Broadcast template: traverse the source's first (leaf)
			// switch once; fanOut/parFanOut replicate from there.
			if fl := t.ni.fab; fl != nil {
				t.parFanOut(fl)
				return
			}
			t.ni.fabric.Switches[t.ni.fabric.Desc.FirstSwitch(pkt.Src)].RouteHandler(t)
			return
		}
		t.route = t.ni.fabric.Route(pkt.Src, pkt.Dst)
		t.enterSwitch()

	case stSwitch:
		if t.dsts != nil {
			t.fanOut()
			return
		}
		if int(t.hop)+1 < len(t.route) {
			// Multi-stage fabric: more switch hops before the
			// destination's in-link. Intermediate hops stay on the
			// fabric LP.
			t.hop++
			t.enterSwitch()
			return
		}
		t.stage = stInLink
		t.ni.fabric.In[pkt.Dst].TransferHandler(pkt.Size, t)

	case stInLink:
		pkt.tArrive = end
		if F := t.ni.fabric.Faults; F != nil {
			v := F.JudgeIn(pkt.Dst, end)
			if v.Drop {
				t.recycle()
				return
			}
			pkt.Csum ^= v.CorruptMask
			if v.Dup {
				t.dupArrival()
			}
			if v.Delay > 0 {
				t.stage = stFaultDelay
				t.eng.AtHandler(end+v.Delay, end, t)
				return
			}
		}
		t.toDstFirmware()

	case stFaultDelay:
		t.toDstFirmware()

	case stDstFW:
		dst := t.ni.peers[pkt.Dst]
		if r := dst.rel; r != nil && !r.receive(pkt, end) {
			// Consumed (ack) or discarded (corrupt/dup/out-of-order)
			// by the receive firmware: never delivered, never seen by
			// the monitor.
			t.recycle()
			return
		}
		if pkt.FwHandler != nil {
			pkt.tDone = end
			dst.mon.record(dst, pkt)
			pkt.FwHandler(dst, pkt)
			t.recycle()
			return
		}
		t.stage = stDstPCI
		dst.PCI.EnqueueHandler(dst.pciService(pkt.Size), t)

	case stDstPCI:
		dst := t.ni.peers[pkt.Dst]
		pkt.tDone = end
		dst.mon.record(dst, pkt)
		if t.bcastDeliver != nil {
			t.bcastDeliver(pkt.Dst)
		} else if pkt.DeliverTo != nil {
			pkt.DeliverTo.Deliver(pkt)
		} else if pkt.OnDeliver != nil {
			pkt.OnDeliver()
		}
		t.recycle()
	}
}

// enterSwitch reserves the route's hop-indexed switch. The final hop's
// completion is the fabric -> destination-LP crossing in a parallel
// run (the switch is owned by the fabric, its completion runs at the
// destination); intermediate hops complete fabric-locally.
func (t *transit) enterSwitch() {
	sw := t.ni.fabric.Switches[t.route[t.hop]]
	if fl := t.ni.fab; fl != nil && int(t.hop) == len(t.route)-1 {
		de := t.ni.peers[t.pkt.Dst]
		sw.RouteCross(t.eng, de.eng, t)
		t.eng, t.pool = de.eng, &de.pool
		return
	}
	sw.RouteHandler(t)
}

// toDstFirmware enqueues the arrived packet on the destination NI's
// firmware processor (factored out of Run so the fault-delay stage can
// share it).
func (t *transit) toDstFirmware() {
	pkt := t.pkt
	t.stage = stDstFW
	dst := t.ni.peers[pkt.Dst]
	dst.Firmware.EnqueueHandler(dst.fwRecvService(pkt.Size)+pkt.FwService, t)
}

// dupArrival models link-level duplication: a second copy of the packet
// crosses the in-link again and presents itself to the destination
// firmware. The copy shares the original's reliability header, so the
// receive gate suppresses whichever of the two arrives second.
func (t *transit) dupArrival() {
	pkt := t.pkt
	cp := t.pool.getPacket()
	cp.Src, cp.Dst, cp.Size, cp.Kind = pkt.Src, pkt.Dst, pkt.Size, pkt.Kind
	cp.Payload = pkt.Payload
	cp.Meta, cp.Meta2 = pkt.Meta, pkt.Meta2
	cp.FwHandler, cp.FwService = pkt.FwHandler, pkt.FwService
	cp.DeliverTo, cp.OnDeliver = pkt.DeliverTo, pkt.OnDeliver
	cp.Seq, cp.Ack, cp.Csum, cp.RelFlags = pkt.Seq, pkt.Ack, pkt.Csum, pkt.RelFlags
	cp.tPost, cp.tSrc, cp.tInject = pkt.tPost, pkt.tSrc, pkt.tInject
	td := t.pool.getTransit()
	td.ni = t.ni
	td.pkt = cp
	td.stage = stInLink
	td.bcastDeliver = t.bcastDeliver
	td.eng, td.pool = t.eng, t.pool
	t.ni.fabric.In[pkt.Dst].TransferHandler(cp.Size, td)
}

// fanOut replicates a broadcast template onto every destination (the
// template's first-switch stage just completed). Each destination gets
// its own pooled Packet copy and transit; a copy whose route has more
// switch hops continues at hop 1, a same-leaf copy goes straight to the
// destination's in-link (on the crossbar, every copy). The template is
// recycled here, so the caller's dsts slice is never retained past the
// switch stage.
func (t *transit) fanOut() {
	tmpl := t.pkt
	for i, dst := range t.dsts {
		cp := t.pool.getPacket()
		cp.Src, cp.Dst, cp.Size, cp.Kind = tmpl.Src, dst, tmpl.Size, tmpl.Kind
		cp.Payload = tmpl.Payload
		cp.Meta, cp.Meta2 = tmpl.Meta, tmpl.Meta2
		cp.DeliverTo = tmpl.DeliverTo
		cp.FwService = tmpl.FwService
		cp.tPost, cp.tSrc, cp.tInject = tmpl.tPost, tmpl.tSrc, tmpl.tInject
		if len(t.entries) > 0 {
			// Per-destination reliability header from the stamp-time
			// entry; tmpl.Csum carries corruption accumulated on the
			// shared prefix (zero otherwise).
			e := t.entries[i]
			cp.Seq, cp.Ack, cp.RelFlags = e.pkt.Seq, e.pkt.Ack, e.pkt.RelFlags
			cp.Csum = e.pkt.Csum ^ tmpl.Csum
		}
		td := t.pool.getTransit()
		td.ni = t.ni
		td.pkt = cp
		td.bcastDeliver = t.bcastDeliver
		td.eng, td.pool = t.eng, t.pool
		if route := t.ni.fabric.Route(tmpl.Src, dst); len(route) > 1 {
			td.stage = stSwitch
			td.route = route
			td.hop = 1
			t.ni.fabric.Switches[route[1]].RouteHandler(td)
			continue
		}
		td.stage = stInLink
		t.ni.fabric.In[dst].TransferHandler(cp.Size, td)
	}
	t.recycle()
}

// parFanOut is the parallel run's broadcast fan-out, executed on the
// fabric LP when the template's out-link crossing completes. The serial
// engine routes the template through the switch once and replicates it
// onto every in-link in a single switch-completion event; here the
// in-links are owned by the destination LPs, so the fabric reserves the
// switch occupancy itself and sends each destination its own pooled
// copy as a switch-completion (stSwitch) event at the routing end time.
// Each copy then reserves its in-link at the destination at exactly the
// time the serial fan-out would have, and the per-destination events
// inherit consecutive action indices of the same out-link event that
// keyed the serial switch event, so the global event order is
// preserved. One serial event became len(dsts) events; the count
// adjustment keeps reported totals identical.
func (t *transit) parFanOut(fl *fabLP) {
	tmpl := t.pkt
	start, routeEnd := t.ni.fabric.Switches[t.ni.fabric.Desc.FirstSwitch(tmpl.Src)].Reserve()
	for i, dst := range t.dsts {
		cp := fl.pool.getPacket()
		cp.Src, cp.Dst, cp.Size, cp.Kind = tmpl.Src, dst, tmpl.Size, tmpl.Kind
		cp.Payload = tmpl.Payload
		cp.Meta, cp.Meta2 = tmpl.Meta, tmpl.Meta2
		cp.DeliverTo = tmpl.DeliverTo
		cp.FwService = tmpl.FwService
		cp.tPost, cp.tSrc, cp.tInject = tmpl.tPost, tmpl.tSrc, tmpl.tInject
		if len(t.entries) > 0 {
			e := t.entries[i]
			cp.Seq, cp.Ack, cp.RelFlags = e.pkt.Seq, e.pkt.Ack, e.pkt.RelFlags
			cp.Csum = e.pkt.Csum ^ tmpl.Csum
		}
		td := fl.pool.getTransit()
		td.ni = t.ni
		td.pkt = cp
		td.stage = stSwitch
		td.bcastDeliver = t.bcastDeliver
		td.route = t.ni.fabric.Route(tmpl.Src, dst)
		td.hop = 0
		if len(td.route) > 1 {
			// The copy has more switch hops: it stays on the fabric LP
			// (which owns every switch) and crosses to the destination
			// at its final hop, like a unicast would.
			td.eng, td.pool = fl.eng, &fl.pool
			t.eng.AtHandler(routeEnd, start, td)
			continue
		}
		de := t.ni.peers[dst]
		td.eng, td.pool = de.eng, &de.pool
		t.eng.Send(de.eng, routeEnd, start, td)
	}
	t.eng.AdjustEventCount(1 - int64(len(t.dsts)))
	t.recycle()
}

// pktPool holds one logical process's packet and transit free lists.
// Like memory.BufPool, the lists are plain LIFO slices: each pool is
// touched only by its owning LP (or by the single-threaded barrier), so
// reuse order is deterministic run to run and needs no locks.
type pktPool struct {
	pktFree []*Packet
	trFree  []*transit
}

// getPacket returns a zeroed Packet from the free list, or a fresh one.
func (pl *pktPool) getPacket() *Packet {
	if n := len(pl.pktFree); n > 0 {
		p := pl.pktFree[n-1]
		pl.pktFree[n-1] = nil
		pl.pktFree = pl.pktFree[:n-1]
		return p
	}
	// Pool miss: allocate a chunk at once so a growing in-flight window
	// costs one allocation per 16 packets, not one per packet.
	chunk := make([]Packet, 16)
	for i := len(chunk) - 1; i > 0; i-- {
		pl.pktFree = append(pl.pktFree, &chunk[i])
	}
	return &chunk[0]
}

func (pl *pktPool) putPacket(p *Packet) {
	*p = Packet{} // drop payload/handler references before pooling
	pl.pktFree = append(pl.pktFree, p)
}

func (pl *pktPool) getTransit() *transit {
	if n := len(pl.trFree); n > 0 {
		t := pl.trFree[n-1]
		pl.trFree[n-1] = nil
		pl.trFree = pl.trFree[:n-1]
		return t
	}
	chunk := make([]transit, 16)
	for i := len(chunk) - 1; i > 0; i-- {
		pl.trFree = append(pl.trFree, &chunk[i])
	}
	return &chunk[0]
}

func (pl *pktPool) putTransit(t *transit) {
	ents := t.entries
	for i := range ents {
		ents[i] = nil // entries are owned by the rel layer until acked
	}
	*t = transit{}
	t.entries = ents[:0]
	pl.trFree = append(pl.trFree, t)
}

// getPacket draws from this NI's own pool (its LP's free lists).
func (ni *NI) getPacket() *Packet { return ni.pool.getPacket() }

// NewPacket hands callers a pooled Packet for a subsequent Post /
// PostFromEvent / FirmwareSend / PostBroadcast. The pipeline owns the
// packet once posted and recycles it after delivery, so callers must
// not retain or reuse it; fields are zeroed.
func (ni *NI) NewPacket() *Packet { return ni.getPacket() }

func (ni *NI) putPacket(p *Packet) { ni.pool.putPacket(p) }

// recycle returns a finished transit and its packet to the pool of the
// LP it finished on (in a serial run, always the origin NI's pool).
func (t *transit) recycle() {
	pl := t.pool
	pl.putPacket(t.pkt)
	pl.putTransit(t)
}

// newTransit builds a transit for pkt originating at this NI.
func (ni *NI) newTransit(pkt *Packet) *transit {
	t := ni.pool.getTransit()
	t.ni = ni
	t.pkt = pkt
	t.eng = ni.eng
	t.pool = &ni.pool
	return t
}
