package nic

import (
	"testing"

	"genima/internal/sim"
	"genima/internal/topo"
)

func newFaultySystem(t *testing.T, fp topo.FaultPlan) (*sim.Engine, *System, *topo.Config) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := topo.Default()
	cfg.Faults = fp
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return eng, NewSystem(eng, &cfg), &cfg
}

// sendBurst posts n max-size data packets 0 -> 1, each tagged with its
// index in Meta, and returns the per-index delivery counts and order.
func sendBurst(eng *sim.Engine, sys *System, n, size int) (counts []int, order []int) {
	counts = make([]int, n)
	orderPtr := &order
	eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			i := i
			pkt := sys.NIs[0].NewPacket()
			pkt.Src, pkt.Dst, pkt.Size, pkt.Kind, pkt.Meta = 0, 1, size, "burst", i
			pkt.OnDeliver = func() {
				counts[i]++
				*orderPtr = append(*orderPtr, i)
			}
			sys.NIs[0].Post(p, pkt)
		}
	})
	eng.RunUntilQuiet()
	return counts, order
}

// checkExactlyOnceInOrder asserts the reliable layer's contract: every
// packet delivered exactly once, in posting order.
func checkExactlyOnceInOrder(t *testing.T, counts, order []int) {
	t.Helper()
	for i, c := range counts {
		if c != 1 {
			t.Errorf("packet %d delivered %d times, want exactly once", i, c)
		}
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Errorf("delivery order violated: %v", order)
			break
		}
	}
}

// Max-size packets through a lossy link: go-back-N must deliver each
// 4 KB packet exactly once, in order, with recovery recorded.
func TestReliableMaxSizePacketsUnderDrop(t *testing.T) {
	fp := topo.FaultPlan{Enabled: true, Seed: 21, DropRate: 0.2}
	eng, sys, cfg := newFaultySystem(t, fp)
	counts, order := sendBurst(eng, sys, 40, cfg.MaxPacket)
	checkExactlyOnceInOrder(t, counts, order)
	if sys.Fabric.Faults.Report().DropsInjected == 0 {
		t.Fatal("20% plan dropped nothing over 40 packets")
	}
	rel := sys.RelReport()
	if rel.RetxSent == 0 {
		t.Error("drops occurred but nothing was retransmitted")
	}
	if rel.Recovered == 0 {
		t.Error("no recovery time recorded")
	}
}

// Duplication and corruption: dups must be suppressed, corrupt packets
// discarded and retransmitted, and delivery still exactly-once.
func TestReliableDupAndCorrupt(t *testing.T) {
	fp := topo.FaultPlan{Enabled: true, Seed: 8, DupRate: 0.3, CorruptRate: 0.2}
	eng, sys, _ := newFaultySystem(t, fp)
	counts, order := sendBurst(eng, sys, 40, 256)
	checkExactlyOnceInOrder(t, counts, order)
	rel := sys.RelReport()
	injRep := sys.Fabric.Faults.Report()
	inj := &injRep
	if inj.DupsInjected == 0 || rel.DupsSuppressed == 0 {
		t.Errorf("dups injected=%d suppressed=%d, want both > 0",
			inj.DupsInjected, rel.DupsSuppressed)
	}
	if inj.CorruptsInjected == 0 || rel.CorruptDropped == 0 {
		t.Errorf("corrupt injected=%d dropped=%d, want both > 0",
			inj.CorruptsInjected, rel.CorruptDropped)
	}
}

// Broadcast fan-out with one destination's in-link down: the live
// destinations deliver from the fan-out; the downed one recovers by
// unicast retransmission after the window lifts. Exactly one delivery
// per destination either way.
func TestBroadcastFanOutUnderDownedLink(t *testing.T) {
	const windowEnd = 3_000_000 // 3 ms, several retx timeouts long
	fp := topo.FaultPlan{Enabled: true, Down: []topo.DownWindow{
		{Node: 2, Dir: topo.InOnly, From: 0, Until: windowEnd},
	}}
	eng, sys, _ := newFaultySystem(t, fp)
	got := map[int]int{}
	var lastAt sim.Time
	eng.Go("caster", func(p *sim.Proc) {
		tmpl := sys.NIs[0].NewPacket()
		tmpl.Src, tmpl.Size, tmpl.Kind = 0, 1024, "bcast"
		sys.NIs[0].PostBroadcast(p, tmpl, []int{1, 2, 3}, func(dst int) {
			got[dst]++
			lastAt = eng.Now()
		})
	})
	eng.RunUntilQuiet()
	for _, dst := range []int{1, 2, 3} {
		if got[dst] != 1 {
			t.Errorf("dst %d got %d deliveries, want 1", dst, got[dst])
		}
	}
	if lastAt < windowEnd {
		t.Errorf("all deliveries done at %d, before the down window lifted at %d", lastAt, windowEnd)
	}
	if sys.Fabric.Faults.Report().DownDrops == 0 {
		t.Error("down window dropped nothing")
	}
	if sys.RelReport().RetxSent == 0 {
		t.Error("downed destination was never retransmitted to")
	}
}

// Reorder delays must not disturb switch busy-time accounting: delays
// are injected after the in-link, so the switch still charges exactly
// one fixed routing slot per packet that crossed it.
func TestSwitchBusyTimeWithDelayedPackets(t *testing.T) {
	fp := topo.FaultPlan{Enabled: true, Seed: 13,
		DelayRate: 0.5, DelayMax: sim.Micro(200)}
	eng, sys, cfg := newFaultySystem(t, fp)
	counts, order := sendBurst(eng, sys, 30, 512)
	checkExactlyOnceInOrder(t, counts, order)
	injRep := sys.Fabric.Faults.Report()
	inj := &injRep
	if inj.DelaysInjected == 0 {
		t.Fatal("50% delay plan delayed nothing over 30 packets")
	}
	busy := sys.Fabric.Switch.Stats().BusyTime
	fixed := cfg.Costs.SwitchFixed
	if busy%fixed != 0 {
		t.Errorf("switch busy time %d is not a multiple of the %d routing slot", busy, fixed)
	}
	if busy < 30*fixed {
		t.Errorf("switch busy %d < 30 routing slots; data packets bypassed the switch", busy)
	}
}

// A delayed packet lets later traffic overtake it; go-back-N discards
// the overtakers and recovers them by retransmission, so order and
// exactly-once still hold end to end. (OOODropped is only nonzero when
// the drawn delays actually caused an overtake, so it is not asserted.)
func TestReliableReorderRecovery(t *testing.T) {
	fp := topo.FaultPlan{Enabled: true, Seed: 4,
		DelayRate: 0.4, DelayMax: sim.Micro(500), DropRate: 0.05}
	eng, sys, _ := newFaultySystem(t, fp)
	counts, order := sendBurst(eng, sys, 60, 64)
	checkExactlyOnceInOrder(t, counts, order)
	if n := len(order); n != 60 {
		t.Fatalf("%d deliveries, want 60", n)
	}
}

// Firmware-handled packets (the GeNIMA remote-fetch/NI-lock path) sit
// behind the same sequence gate: a dropped request is retransmitted and
// the handler runs exactly once.
func TestReliableFirmwareHandledPackets(t *testing.T) {
	fp := topo.FaultPlan{Enabled: true, Seed: 31, DropRate: 0.25}
	eng, sys, _ := newFaultySystem(t, fp)
	const n = 30
	counts := make([]int, n)
	eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			i := i
			pkt := sys.NIs[0].NewPacket()
			pkt.Src, pkt.Dst, pkt.Size, pkt.Kind, pkt.Meta = 0, 1, 64, "fw-req", i
			pkt.FwHandler = func(_ *NI, q *Packet) { counts[q.Meta]++ }
			sys.NIs[0].Post(p, pkt)
			_ = i
		}
	})
	eng.RunUntilQuiet()
	for i, c := range counts {
		if c != 1 {
			t.Errorf("fw request %d handled %d times, want exactly once", i, c)
		}
	}
	if sys.RelReport().RetxSent == 0 {
		t.Error("no retransmissions at 25% drop")
	}
}

// The zero-overhead off switch at the unit level: with faults disabled,
// no NI has reliability state, packets carry zero headers, and service
// times match the pre-faults formulas exactly.
func TestFaultsOffHasNoRelState(t *testing.T) {
	eng, sys, cfg := newTestSystem(t)
	for _, ni := range sys.NIs {
		if ni.rel != nil {
			t.Fatal("rel state allocated with faults disabled")
		}
	}
	if sys.Fabric.Faults != nil {
		t.Fatal("fault plan allocated with faults disabled")
	}
	ni := sys.NIs[0]
	want := cfg.Costs.NIPerPacket + sim.Time(float64(4096)*cfg.Costs.NIPerByte)
	if got := ni.fwRecvService(4096); got != want {
		t.Errorf("fwRecvService = %d, want %d (reliability surcharge leaked)", got, want)
	}
	_ = eng
}
