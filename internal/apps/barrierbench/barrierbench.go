// Package barrierbench is a synthetic barrier microbenchmark: R rounds
// of (processor 0 publishes one value, a token of compute, everyone
// barriers twice). Almost all of its time is barrier protocol + wait,
// which makes it the probe workload for the scalesweep experiment
// comparing flat fan-out barriers against the NI-firmware collective
// tree. Deliberately no read-back of the published value: a fetch
// storm at the home node would serialize identically under both
// barrier schemes and dilute the difference being measured. It is not
// part of the paper's suite — apps.ByName resolves it, but
// Suite/Names do not list it.
package barrierbench

import (
	"genima/internal/app"
	"genima/internal/memory"
)

// App is one barrierbench instance.
type App struct {
	rounds int
}

// New creates a benchmark of r rounds (two barriers per round).
func New(r int) *App {
	if r < 1 {
		panic("barrierbench: rounds must be >= 1")
	}
	return &App{rounds: r}
}

// Name implements app.App.
func (a *App) Name() string { return "barrierbench" }

// Ops implements app.App.
func (a *App) Ops() float64 { return float64(a.rounds) }

// Rounds returns the configured round count.
func (a *App) Rounds() int { return a.rounds }

// Setup allocates the published-value array, one word per round.
func (a *App) Setup(ws *app.Workspace) {
	ws.Alloc("count", 8*a.rounds, memory.Blocked)
}

// Run publishes, synchronizes, and reads back, once per round. The
// writes are identical in sequential and parallel runs, so exact byte
// validation holds.
func (a *App) Run(ctx *app.Ctx) {
	c := ctx.Workspace().Region("count")
	for r := 0; r < a.rounds; r++ {
		if ctx.ID() == 0 {
			ctx.SetI64(c, r, int64(r)*2654435761+1)
		}
		ctx.Compute(64)
		ctx.Barrier()
		ctx.Barrier()
	}
}
