// Package ocean reproduces the Ocean-rowwise application: an iterative
// 5-point Jacobi stencil over a 2-D grid partitioned in contiguous row
// blocks (the "rowwise" restructuring, which on 4-way SMP nodes is
// practically equivalent to Ocean-contiguous per the paper's footnote).
// Two grids alternate as source and destination, as in the real
// multigrid smoother, so writes are dense rows and diffs are contiguous.
// Communication is near-neighbor: page sharing happens at partition
// boundary rows; synchronization is barrier-only.
package ocean

import (
	"genima/internal/app"
	"genima/internal/memory"
)

// App is one Ocean problem instance.
type App struct {
	n     int // interior grid dimension (grid is (n+2)²)
	iters int
}

// New creates an n×n-interior ocean relaxation running iters sweeps.
func New(n, iters int) *App {
	if n < 4 || iters < 1 {
		panic("ocean: need n >= 4 and iters >= 1")
	}
	return &App{n: n, iters: iters}
}

// Name implements app.App.
func (a *App) Name() string { return "ocean" }

// Ops implements app.App.
func (a *App) Ops() float64 { return float64(a.n) * float64(a.n) * float64(a.iters) * 6 }

// MemIntensity marks Ocean as memory-bus bound within an SMP (§3.4).
func (a *App) MemIntensity() float64 { return 0.8 }

// N returns the interior grid dimension.
func (a *App) N() int { return a.n }

func (a *App) side() int { return a.n + 2 }

// Setup allocates both grids with fixed boundary values and a
// deterministic interior.
func (a *App) Setup(ws *app.Workspace) {
	side := a.side()
	grid := ws.Alloc("grid", 8*side*side, memory.Blocked)
	next := ws.Alloc("grid2", 8*side*side, memory.Blocked)
	seed := uint64(20260704)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			var v float64
			switch {
			case i == 0:
				v = 100
			case i == side-1:
				v = -40
			case j == 0 || j == side-1:
				v = 25
			default:
				seed = seed*6364136223846793005 + 1442695040888963407
				v = float64(seed>>40)/float64(1<<24)*40 - 20
			}
			ws.SetF64(grid, i*side+j, v)
			ws.SetF64(next, i*side+j, v)
		}
	}
}

// rowRange gives this processor's interior rows [lo, hi).
func (a *App) rowRange(ctx *app.Ctx) (int, int) {
	id, np := ctx.ID(), ctx.NProc()
	return 1 + id*a.n/np, 1 + (id+1)*a.n/np
}

// Run performs iters Jacobi sweeps, alternating grids, with a barrier
// after each sweep. The final smoothed field always ends in "grid"
// (iters is effectively rounded up to even by a copy-back sweep).
func (a *App) Run(ctx *app.Ctx) {
	ws := ctx.Workspace()
	src := ws.Region("grid")
	dst := ws.Region("grid2")
	lo, hi := a.rowRange(ctx)
	side := a.side()
	up := make([]float64, side)
	cur := make([]float64, side)
	down := make([]float64, side)
	out := make([]float64, side)

	iters := a.iters
	if iters%2 != 0 {
		iters++ // keep the result in "grid"
	}
	for it := 0; it < iters; it++ {
		for r := lo; r < hi; r++ {
			ctx.CopyOutF64(src, (r-1)*side, up)
			ctx.CopyOutF64(src, r*side, cur)
			ctx.CopyOutF64(src, (r+1)*side, down)
			out[0], out[side-1] = cur[0], cur[side-1]
			for j := 1; j < side-1; j++ {
				out[j] = 0.25 * (up[j] + down[j] + cur[j-1] + cur[j+1])
			}
			ctx.CopyInF64(dst, r*side, out)
		}
		ctx.Compute(float64((hi - lo) * a.n * 6))
		ctx.Barrier()
		src, dst = dst, src
	}
}
