package ocean

import (
	"math"
	"testing"

	"genima/internal/app"
	"genima/internal/core"
	"genima/internal/topo"
)

func cfg() topo.Config {
	c := topo.Default()
	c.Nodes = 4
	c.ProcsPerNode = 2
	return c
}

// Relaxation must reduce the residual of the interior points.
func TestResidualDecreases(t *testing.T) {
	residual := func(ws *app.Workspace, a *App) float64 {
		grid := ws.Region("grid")
		side := a.side()
		var r float64
		for i := 1; i <= a.n; i++ {
			for j := 1; j <= a.n; j++ {
				v := ws.F64(grid, i*side+j)
				avg := 0.25 * (ws.F64(grid, (i-1)*side+j) + ws.F64(grid, (i+1)*side+j) +
					ws.F64(grid, i*side+j-1) + ws.F64(grid, i*side+j+1))
				r += math.Abs(v - avg)
			}
		}
		return r
	}
	short := New(32, 1)
	long := New(32, 20)
	_, wsShort, err := app.RunSeq(cfg(), short)
	if err != nil {
		t.Fatal(err)
	}
	_, wsLong, err := app.RunSeq(cfg(), long)
	if err != nil {
		t.Fatal(err)
	}
	rs, rl := residual(wsShort, short), residual(wsLong, long)
	if rl >= rs/2 {
		t.Errorf("residual after 20 iters (%g) not much below after 1 iter (%g)", rl, rs)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	a := New(64, 4)
	_, seqWS, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []core.Kind{core.Base, core.DWRF, core.GeNIMA} {
		_, parWS, err := app.RunSVM(cfg(), k, a)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := app.Validate(a, parWS, seqWS); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
	_, hwWS, err := app.RunHW(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(a, hwWS, seqWS); err != nil {
		t.Errorf("hwdsm: %v", err)
	}
}

func TestBoundaryValuesUntouched(t *testing.T) {
	a := New(16, 3)
	_, ws, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	grid := ws.Region("grid")
	side := a.side()
	for j := 0; j < side; j++ {
		if ws.F64(grid, j) != 100 {
			t.Fatalf("top boundary modified at %d", j)
		}
		if ws.F64(grid, (side-1)*side+j) != -40 {
			t.Fatalf("bottom boundary modified at %d", j)
		}
	}
}
