// Package radix reproduces the Radix-local integer sort: a parallel
// radix sort whose permutation phase writes keys to rank-determined
// positions across the whole destination array. The "local"
// restructuring buckets keys privately first so each digit's keys land
// as one contiguous span — but at page granularity the spans of all
// processors interleave across the destination, so Radix remains the
// paper's false-sharing stress case, with barrier time dominated by
// protocol processing and mprotect (Table 2 reports 57.7% barrier
// time, 94% of it protocol, for Radix).
package radix

import (
	"fmt"

	"genima/internal/app"
	"genima/internal/memory"
)

// DigitBits is the radix width per pass.
const DigitBits = 8

// R is the number of buckets per pass.
const R = 1 << DigitBits

// App is one Radix sort instance.
type App struct {
	n      int // keys
	passes int // digit passes (keys are passes*DigitBits wide)
}

// New creates an n-key sort over `passes` 8-bit digit passes.
func New(n, passes int) *App {
	if n < R || passes < 1 || passes > 3 {
		panic("radix: need n >= 256 and 1 <= passes <= 3")
	}
	return &App{n: n, passes: passes}
}

// Name implements app.App.
func (a *App) Name() string { return "radix" }

// Ops implements app.App.
func (a *App) Ops() float64 { return float64(a.n) * float64(a.passes) * 26 }

// N returns the key count.
func (a *App) N() int { return a.n }

// Setup allocates the double-buffered key arrays and the per-processor
// histogram table, and generates uniform keys.
func (a *App) Setup(ws *app.Workspace) {
	keys := ws.Alloc("keys0", 4*a.n, memory.Blocked)
	ws.Alloc("keys1", 4*a.n, memory.Blocked)
	// Histograms: sized for the largest processor count we run (64).
	ws.Alloc("hist", 4*64*R, memory.RoundRobin)
	seed := uint64(31337)
	max := int32(1) << (DigitBits * a.passes)
	for i := 0; i < a.n; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		ws.SetI32(keys, i, int32(seed>>33)&(max-1))
	}
}

// Run sorts the keys; the result lands in "keys0" if passes is even,
// "keys1" if odd.
func (a *App) Run(ctx *app.Ctx) {
	ws := ctx.Workspace()
	bufs := [2]memory.Region{ws.Region("keys0"), ws.Region("keys1")}
	hist := ws.Region("hist")
	id, np := ctx.ID(), ctx.NProc()
	lo, hi := id*a.n/np, (id+1)*a.n/np

	local := make([]int32, hi-lo)
	counts := make([]int32, R)
	offsets := make([]int, R)
	all := make([]int32, np*R)
	bucketed := make([]int32, hi-lo)
	cursor := make([]int, R)

	for pass := 0; pass < a.passes; pass++ {
		src, dst := bufs[pass%2], bufs[(pass+1)%2]
		shift := uint(pass * DigitBits)

		// Local histogram over my block.
		ctx.CopyOutI32(src, lo, local)
		for i := range counts {
			counts[i] = 0
		}
		for _, k := range local {
			counts[(k>>shift)&(R-1)]++
		}
		ctx.Compute(float64(len(local)) * 6)
		ctx.CopyInI32(hist, id*R, counts)
		ctx.Barrier()

		// Global ranks: my starting offset for each digit (prefix sum
		// over digits, then over lower-ranked processors).
		ctx.CopyOutI32(hist, 0, all)
		cum := 0
		for d := 0; d < R; d++ {
			offsets[d] = cum
			for p := 0; p < np; p++ {
				cum += int(all[p*R+d])
			}
			for p := 0; p < id; p++ {
				offsets[d] += int(all[p*R+d])
			}
		}
		ctx.Compute(float64(R * 2 * np))

		// Permutation, with the "local" restructuring: keys are first
		// bucketed privately so each digit's keys can be written as one
		// contiguous span (stable within the block). Page-granularity
		// sharing remains at every span boundary — the false sharing
		// that keeps Radix data- and barrier-bound — but the writes are
		// bulk, not single words.
		// Counting placement into one flat buffer: cursor[d] walks span
		// d, so the bucketing is stable and allocation-free.
		start := 0
		for d := 0; d < R; d++ {
			cursor[d] = start
			start += int(counts[d])
		}
		for _, k := range local {
			d := (k >> shift) & (R - 1)
			bucketed[cursor[d]] = k
			cursor[d]++
		}
		begin := 0
		for d := 0; d < R; d++ {
			end := cursor[d] // == span start + counts[d]
			if end > begin {
				ctx.CopyInI32(dst, offsets[d], bucketed[begin:end])
			}
			begin = end
		}
		// The real permutation does address arithmetic, bounds checks
		// and key movement per element (~20 ops).
		ctx.Compute(float64(len(local)) * 20)
		ctx.Barrier()
	}
}

// Compare checks the sorted output exactly; the histogram table is
// per-processor scratch and legitimately depends on the processor
// count, so it is excluded.
func (a *App) Compare(par, seq *app.Workspace) error {
	out := fmt.Sprintf("keys%d", a.passes%2)
	rp, rs := par.Region(out), seq.Region(out)
	for i := 0; i < a.n; i++ {
		if p, s := par.I32(rp, i), seq.I32(rs, i); p != s {
			return fmt.Errorf("radix: output[%d] = %d, want %d", i, p, s)
		}
	}
	return nil
}

// Verify checks the output is sorted (a self-check that needs no
// reference run).
func (a *App) Verify(ws *app.Workspace) error {
	out := ws.Region(fmt.Sprintf("keys%d", a.passes%2))
	prev := int32(-1)
	for i := 0; i < a.n; i++ {
		k := ws.I32(out, i)
		if k < prev {
			return fmt.Errorf("radix: output not sorted at %d: %d < %d", i, k, prev)
		}
		prev = k
	}
	return nil
}
