package radix

import (
	"sort"
	"testing"

	"genima/internal/app"
	"genima/internal/core"
	"genima/internal/topo"
)

func cfg() topo.Config {
	c := topo.Default()
	c.Nodes = 4
	c.ProcsPerNode = 2
	return c
}

func TestSequentialSortsCorrectly(t *testing.T) {
	a := New(2048, 2)
	// Capture the input distribution.
	c := cfg()
	in := app.NewWorkspace(&c)
	a.Setup(in)
	want := make([]int, a.n)
	for i := 0; i < a.n; i++ {
		want[i] = int(in.I32(in.Region("keys0"), i))
	}
	sort.Ints(want)

	_, ws, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(ws); err != nil {
		t.Fatal(err)
	}
	out := ws.Region("keys0") // 2 passes: result back in keys0
	for i := 0; i < a.n; i++ {
		if got := int(ws.I32(out, i)); got != want[i] {
			t.Fatalf("output[%d] = %d, want %d", i, got, want[i])
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	a := New(2048, 2)
	_, seqWS, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range core.Kinds() {
		_, parWS, err := app.RunSVM(cfg(), k, a)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := a.Verify(parWS); err != nil {
			t.Errorf("%v: %v", k, err)
		}
		if err := app.Validate(a, parWS, seqWS); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
	_, hwWS, err := app.RunHW(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(a, hwWS, seqWS); err != nil {
		t.Errorf("hwdsm: %v", err)
	}
}

func TestScatteredWritesCauseTraffic(t *testing.T) {
	// The permutation phase's scattered writes must cause substantially
	// more page fetches than keys/pages would suggest for a streaming
	// access pattern.
	a := New(4096, 2)
	res, _, err := app.RunSVM(cfg(), core.Base, a)
	if err != nil {
		t.Fatal(err)
	}
	pages := 4 * a.n / cfg().PageSize * 2 // both key buffers
	if res.Acct.PageFetches < uint64(pages) {
		t.Errorf("page fetches = %d, expected at least %d", res.Acct.PageFetches, pages)
	}
}
