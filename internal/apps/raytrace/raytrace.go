// Package raytrace reproduces the Raytrace application (the version the
// paper uses eliminates the global ray-ID lock, leaving a single shared
// tile queue as the only lock): a recursive sphere-scene ray tracer
// where processors pull image tiles from one shared counter and write
// disjoint image regions. Scene data is read-only and replicates across
// nodes on first touch.
package raytrace

import (
	"fmt"
	"math"

	"genima/internal/app"
	"genima/internal/memory"
)

// App is one Raytrace instance.
type App struct {
	img     int // image side in pixels
	tile    int // tile side
	spheres int
}

// New creates an img×img render of a generated scene.
func New(img, tile, spheres int) *App {
	if img < tile || img%tile != 0 || spheres < 1 {
		panic("raytrace: need tile | img and spheres >= 1")
	}
	return &App{img: img, tile: tile, spheres: spheres}
}

// Name implements app.App.
func (a *App) Name() string { return "raytrace" }

// Ops implements app.App.
func (a *App) Ops() float64 {
	return float64(a.img) * float64(a.img) * float64(a.spheres) * 12
}

const (
	sphereStride  = 8 // cx, cy, cz, r, colR, colG, colB, reflect
	tileQueueLock = 9500
)

// Setup allocates the scene (read-only), image, and the shared tile
// counter.
func (a *App) Setup(ws *app.Workspace) {
	scene := ws.Alloc("scene", 8*sphereStride*a.spheres, memory.RoundRobin)
	ws.Alloc("image", 8*3*a.img*a.img, memory.Blocked)
	ws.Alloc("tilectr", 8, memory.RoundRobin)
	seed := uint64(9001)
	rnd := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>40) / float64(1<<24)
	}
	for s := 0; s < a.spheres; s++ {
		base := s * sphereStride
		ws.SetF64(scene, base+0, rnd()*8-4) // cx
		ws.SetF64(scene, base+1, rnd()*8-4) // cy
		ws.SetF64(scene, base+2, rnd()*6+3) // cz
		ws.SetF64(scene, base+3, rnd()*0.8+0.3)
		ws.SetF64(scene, base+4, rnd())
		ws.SetF64(scene, base+5, rnd())
		ws.SetF64(scene, base+6, rnd())
		ws.SetF64(scene, base+7, rnd()*0.5)
	}
}

type sphere struct {
	cx, cy, cz, r, cr, cg, cb, refl float64
}

// Run pulls tiles from the shared queue and renders them.
func (a *App) Run(ctx *app.Ctx) {
	ws := ctx.Workspace()
	sceneR := ws.Region("scene")
	ctr := ws.Region("tilectr")

	// Load the scene once (read-only; replicates locally).
	buf := make([]float64, sphereStride*a.spheres)
	ctx.CopyOutF64(sceneR, 0, buf)
	scene := make([]sphere, a.spheres)
	for s := range scene {
		b := buf[s*sphereStride:]
		scene[s] = sphere{b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]}
	}

	if ctx.ID() == 0 {
		ctx.Lock(tileQueueLock)
		ctx.SetI64(ctr, 0, 0)
		ctx.Unlock(tileQueueLock)
	}
	ctx.Barrier()

	nt := (a.img / a.tile) * (a.img / a.tile)
	for {
		ctx.Lock(tileQueueLock)
		t := ctx.I64(ctr, 0)
		if t < int64(nt) {
			ctx.SetI64(ctr, 0, t+1)
		}
		ctx.Unlock(tileQueueLock)
		if t >= int64(nt) {
			break
		}
		a.renderTile(ctx, scene, int(t))
	}
	ctx.Barrier()
}

func (a *App) renderTile(ctx *app.Ctx, scene []sphere, tileIdx int) {
	img := ctx.Workspace().Region("image")
	tilesPerRow := a.img / a.tile
	ty, tx := tileIdx/tilesPerRow, tileIdx%tilesPerRow
	ops := 0
	for py := ty * a.tile; py < (ty+1)*a.tile; py++ {
		for px := tx * a.tile; px < (tx+1)*a.tile; px++ {
			ox := (float64(px)/float64(a.img))*8 - 4
			oy := (float64(py)/float64(a.img))*8 - 4
			r, g, b := trace(scene, 0, 0, 0, ox/8, oy/8, 1, 2)
			base := 3 * (py*a.img + px)
			ctx.SetF64(img, base, r)
			ctx.SetF64(img, base+1, g)
			ctx.SetF64(img, base+2, b)
			ops += a.spheres * 12
		}
	}
	ctx.Compute(float64(ops))
}

// trace follows a ray through the scene with one reflection bounce.
func trace(scene []sphere, x, y, z, dx, dy, dz float64, depth int) (r, g, b float64) {
	norm := math.Sqrt(dx*dx + dy*dy + dz*dz)
	dx, dy, dz = dx/norm, dy/norm, dz/norm
	best := math.Inf(1)
	hit := -1
	for i, s := range scene {
		ocx, ocy, ocz := x-s.cx, y-s.cy, z-s.cz
		bq := ocx*dx + ocy*dy + ocz*dz
		cq := ocx*ocx + ocy*ocy + ocz*ocz - s.r*s.r
		disc := bq*bq - cq
		if disc < 0 {
			continue
		}
		t := -bq - math.Sqrt(disc)
		if t > 1e-6 && t < best {
			best = t
			hit = i
		}
	}
	if hit < 0 {
		// Sky gradient.
		return 0.1, 0.1, 0.2 + 0.1*dy
	}
	s := scene[hit]
	hx, hy, hz := x+best*dx, y+best*dy, z+best*dz
	nx, ny, nz := (hx-s.cx)/s.r, (hy-s.cy)/s.r, (hz-s.cz)/s.r
	// Fixed directional light.
	lambert := nx*0.5 + ny*0.7 - nz*0.3
	if lambert < 0.05 {
		lambert = 0.05
	}
	r, g, b = s.cr*lambert, s.cg*lambert, s.cb*lambert
	if depth > 0 && s.refl > 0 {
		dot := dx*nx + dy*ny + dz*nz
		rr, rg, rb := trace(scene, hx, hy, hz, dx-2*dot*nx, dy-2*dot*ny, dz-2*dot*nz, depth-1)
		r += s.refl * rr
		g += s.refl * rg
		b += s.refl * rb
	}
	return r, g, b
}

// Compare checks the image exactly; the tile counter is scratch.
func (a *App) Compare(par, seq *app.Workspace) error {
	rp, rs := par.Region("image"), seq.Region("image")
	for i := 0; i < 3*a.img*a.img; i++ {
		if p, s := par.F64(rp, i), seq.F64(rs, i); p != s {
			return fmt.Errorf("raytrace: component %d = %g, want %g", i, p, s)
		}
	}
	return nil
}
