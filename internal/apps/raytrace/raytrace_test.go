package raytrace

import (
	"testing"

	"genima/internal/app"
	"genima/internal/core"
	"genima/internal/topo"
)

func cfg() topo.Config {
	c := topo.Default()
	c.Nodes = 4
	c.ProcsPerNode = 2
	return c
}

func TestParallelMatchesSequential(t *testing.T) {
	a := New(32, 8, 12)
	_, seqWS, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range core.Kinds() {
		_, parWS, err := app.RunSVM(cfg(), k, a)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := app.Validate(a, parWS, seqWS); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
	_, hwWS, err := app.RunHW(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(a, hwWS, seqWS); err != nil {
		t.Errorf("hwdsm: %v", err)
	}
}

func TestSpheresVisible(t *testing.T) {
	a := New(32, 8, 12)
	_, ws, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	img := ws.Region("image")
	// Sky pixels are (0.1, 0.1, ~0.2); sphere hits differ. Count
	// pixels that are not sky.
	hits := 0
	for p := 0; p < 32*32; p++ {
		if ws.F64(img, 3*p) != 0.1 {
			hits++
		}
	}
	if hits < 20 {
		t.Errorf("only %d sphere pixels; scene looks empty", hits)
	}
}

func TestEveryTileRenderedOnce(t *testing.T) {
	// The shared tile counter must hand out each tile exactly once:
	// after a parallel run the counter equals the tile count.
	a := New(32, 8, 12)
	_, ws, err := app.RunSVM(cfg(), core.GeNIMA, a)
	if err != nil {
		t.Fatal(err)
	}
	if got := ws.I64(ws.Region("tilectr"), 0); got != 16 {
		t.Errorf("tile counter = %d, want 16", got)
	}
}
