// Package svmkv is a sharded in-memory KV/page-cache server workload on
// the SVM API — the repo's first request-serving (non-SPLASH) app. N
// simulated server processors own key shards living in SVM pages;
// per-shard open-loop client streams issue GET/PUT/INCR requests with
// Zipf-skewed keys and bursty deterministic arrival times, driving page
// faults, diffs, locks, and cross-shard page migration exactly as the
// protocol ladder sees them. Per-request enqueue→completion virtual
// time lands in the Ctx latency histogram, so a run reports throughput
// and p50/p99/p999 tails instead of one speedup number.
//
// Determinism contract (the repo's core invariant): the full request
// schedule — arrival times, keys, ops, values — is precomputed in New
// as a pure function of Params (splitmix64 streams, no global rand) and
// is read-only during Run, so it is safe to share across LPs and across
// the parallel/sequential runs of a validation pair. Requests carry a
// global index; every access to a given shard is made by that shard's
// current owner in ascending index order, in both the parallel run
// (each owner walks its shards' subsequence in order) and the
// sequential reference (one processor walks all requests in order).
// Last-PUT-wins bytes, the order-dependent per-shard checksum fold, and
// the lock-protected commutative INCR counters therefore all reach
// byte-identical final state, and exact byte validation holds.
//
// Shard ownership rotates every epoch — owner(s, e) = (s + e) mod P —
// with a barrier at each epoch boundary. The barrier is both the HLRC
// coherence point for the handoff and a deterministic cross-epoch
// ordering fence; the rotation forces every shard's pages (store slab,
// checksum word) to migrate between nodes mid-run, the page-cache
// churn a real serving tier sees on resharding.
package svmkv

import (
	"math"

	"genima/internal/app"
	"genima/internal/memory"
	"genima/internal/rng"
	"genima/internal/sim"
)

// Op is one request's operation.
type Op uint8

// Request operations: point read, point write, hot-counter increment.
const (
	Get Op = iota
	Put
	Incr
)

// Params configures one svmkv instance. All fields must be positive
// (fractions non-negative, summing to ≤ 1).
type Params struct {
	Shards   int // key shards; each shard's slab is page-aligned
	Keys     int // distinct keys, striped over shards (key k → shard k mod Shards)
	Requests int // total requests across the run
	Epochs   int // shard-ownership rotation epochs (barrier at each boundary)
	// ValWords is the value size in 8-byte words (a 64-byte value is 8).
	ValWords int
	// MeanGapNs is the mean request interarrival gap in virtual ns: the
	// open-loop offered load is Requests arriving at ~1/MeanGapNs req/ns
	// regardless of how fast the servers drain them.
	MeanGapNs float64
	// Zipf is the key-popularity skew exponent (0 = uniform; web-style
	// skew is ~0.99).
	Zipf float64
	// PutFrac and IncrFrac split the op mix; the rest are GETs.
	PutFrac, IncrFrac float64
	Seed              uint64
}

// DefaultParams returns the registry configurations: a sub-second test
// size (integration tests, smoke targets, soak rotation) and the
// benchmark size the `-exp serve` sweep scales its load levels from.
func DefaultParams(bench bool) Params {
	// MeanGapNs 6000 offers ~167 kreq/s — just past the fastest rung's
	// drain rate (~125 kreq/s on the default cluster), so the registry
	// default is the "heavy" (saturating) load level; the serve sweep's
	// "moderate" level scales the gap up to sit below capacity.
	if bench {
		return Params{
			Shards: 64, Keys: 4096, Requests: 24000, Epochs: 6,
			ValWords: 8, MeanGapNs: 6000, Zipf: 0.99,
			PutFrac: 0.3, IncrFrac: 0.1, Seed: 1,
		}
	}
	return Params{
		Shards: 64, Keys: 512, Requests: 1536, Epochs: 4,
		ValWords: 8, MeanGapNs: 6000, Zipf: 0.99,
		PutFrac: 0.3, IncrFrac: 0.1, Seed: 1,
	}
}

// lockBase spaces svmkv's counter locks away from other apps' lock ids
// (volrend uses 9000+).
const lockBase = 11000

// numCounters is the hot-counter set size: small enough that INCRs
// contend, large enough to spread across a few lock homes.
const numCounters = 8

// request is one precomputed schedule entry.
type request struct {
	arr sim.Time // absolute arrival (enqueue) time
	key int32
	op  Op
}

// App is one svmkv instance: immutable params + precomputed schedule.
type App struct {
	p     Params
	sched []request
	// epochStart[e] is the first request index of epoch e (epoch e covers
	// [epochStart[e], epochStart[e+1])); len = Epochs+1.
	epochStart []int
	slotsPer   int // key slots per shard
	shardPages int // pages per shard slab
}

// New builds the instance and its full deterministic request schedule.
func New(p Params) *App {
	if p.Shards < 1 || p.Keys < 1 || p.Requests < 1 || p.Epochs < 1 ||
		p.ValWords < 1 || p.MeanGapNs <= 0 {
		panic("svmkv: all size params must be positive")
	}
	if p.PutFrac < 0 || p.IncrFrac < 0 || p.PutFrac+p.IncrFrac > 1 {
		panic("svmkv: bad op mix")
	}
	a := &App{p: p, slotsPer: (p.Keys + p.Shards - 1) / p.Shards}

	// Zipf CDF over key ranks: weight(k) = 1/(k+1)^Zipf. Key id == rank,
	// so key 0 is hottest; striping (key mod Shards) spreads the hot
	// head across shards.
	cdf := make([]float64, p.Keys)
	var total float64
	for k := 0; k < p.Keys; k++ {
		total += 1 / math.Pow(float64(k+1), p.Zipf)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}

	// Independent streams per decision class, so changing the op mix
	// never perturbs the key sequence and vice versa.
	arrR := rng.Derive(p.Seed, 0, 'a')
	keyR := rng.Derive(p.Seed, 1, 'k')
	opR := rng.Derive(p.Seed, 2, 'o')

	a.sched = make([]request, p.Requests)
	var now sim.Time
	for i := range a.sched {
		// Bursty open-loop arrivals: exponential gaps whose mean swings
		// between 0.4× (burst) and 1.6× (lull) of MeanGapNs on a
		// 256-request square wave — offered load is independent of
		// service rate by construction.
		phase := 1.6
		if (i/256)%2 == 0 {
			phase = 0.4
		}
		gap := -math.Log(1-arrR.Float()) * p.MeanGapNs * phase
		now += sim.Time(gap) + 1
		a.sched[i].arr = now

		u := keyR.Float()
		lo, hi := 0, p.Keys-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		a.sched[i].key = int32(lo)

		switch v := opR.Float(); {
		case v < p.PutFrac:
			a.sched[i].op = Put
		case v < p.PutFrac+p.IncrFrac:
			a.sched[i].op = Incr
		default:
			a.sched[i].op = Get
		}
	}

	a.epochStart = make([]int, p.Epochs+1)
	for e := 0; e <= p.Epochs; e++ {
		a.epochStart[e] = e * p.Requests / p.Epochs
	}
	return a
}

// Name implements app.App.
func (a *App) Name() string { return "svmkv" }

// Ops approximates the per-request service compute for reporting.
func (a *App) Ops() float64 { return float64(a.p.Requests) * 64 }

// Params returns the instance's configuration.
func (a *App) Params() Params { return a.p }

// Setup allocates the store slabs, per-shard checksums, and hot
// counters. Slabs are page-aligned so shard migration moves whole
// pages; Blocked homes spread the shards across nodes.
func (a *App) Setup(ws *app.Workspace) {
	ps := ws.Cfg.PageSize
	slabBytes := a.slotsPer * a.p.ValWords * 8
	a.shardPages = (slabBytes + ps - 1) / ps
	ws.Alloc("kvstore", a.p.Shards*a.shardPages*ps, memory.Blocked)
	ws.Alloc("shardsum", 8*a.p.Shards, memory.Blocked)
	ws.Alloc("counters", 8*numCounters, memory.Blocked)
}

// Run implements app.App: each processor serves the shards it owns in
// the current epoch, walking the epoch's request range in global index
// order and handling the requests whose shard it owns.
func (a *App) Run(ctx *app.Ctx) {
	store := ctx.Workspace().Region("kvstore")
	sums := ctx.Workspace().Region("shardsum")
	counters := ctx.Workspace().Region("counters")
	ps := ctx.Workspace().Cfg.PageSize
	pageWords := ps / 8
	nproc := ctx.NProc()

	for e := 0; e < a.p.Epochs; e++ {
		for i := a.epochStart[e]; i < a.epochStart[e+1]; i++ {
			req := &a.sched[i]
			shard := int(req.key) % a.p.Shards
			if (shard+e)%nproc != ctx.ID() {
				continue
			}
			// Open-loop wait: the request is not in the system before its
			// scheduled arrival.
			if d := req.arr - ctx.Now(); d > 0 {
				ctx.Sleep(d)
			}
			slot := int(req.key) / a.p.Shards
			base := shard*a.shardPages*pageWords + slot*a.p.ValWords
			var folded int64
			switch req.op {
			case Put:
				// Parse + hash + store path.
				ctx.Compute(80)
				for w := 0; w < a.p.ValWords; w++ {
					v := int64(rng.Mix64(a.p.Seed ^ uint64(i)<<8 ^ uint64(w)))
					ctx.SetI64(store, base+w, v)
					if w == 0 {
						folded = v
					}
				}
			case Incr:
				ctx.Compute(40)
				c := int(rng.Mix64(uint64(i)) % numCounters)
				ctx.Lock(lockBase + c)
				ctx.SetI64(counters, c, ctx.I64(counters, c)+int64(i)+1)
				ctx.Unlock(lockBase + c)
			default: // Get
				ctx.Compute(50)
				folded = ctx.I64(store, base)
				for w := 1; w < a.p.ValWords; w++ {
					_ = ctx.I64(store, base+w)
				}
			}
			if req.op != Incr {
				// Order-dependent fold: validates that every shard's
				// requests were served in global index order.
				s := ctx.I64(sums, shard)
				ctx.SetI64(sums, shard, s*1099511628211+folded)
			}
			ctx.RecordLatency(ctx.Now() - req.arr)
		}
		// Epoch fence: coherence point for the ownership handoff and the
		// cross-epoch ordering guarantee.
		ctx.Barrier()
	}
}
