package svmkv

import (
	"testing"
)

// TestScheduleDeterministic: the request schedule is a pure function of
// Params — two instances agree entry-for-entry.
func TestScheduleDeterministic(t *testing.T) {
	p := DefaultParams(false)
	a, b := New(p), New(p)
	if len(a.sched) != len(b.sched) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a.sched), len(b.sched))
	}
	for i := range a.sched {
		if a.sched[i] != b.sched[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.sched[i], b.sched[i])
		}
	}
}

// TestScheduleSeedSensitive: changing the seed changes the schedule.
func TestScheduleSeedSensitive(t *testing.T) {
	p := DefaultParams(false)
	a := New(p)
	p.Seed++
	b := New(p)
	same := true
	for i := range a.sched {
		if a.sched[i] != b.sched[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestArrivalsMonotone: arrival times strictly increase with the global
// request index — the property the in-order per-shard service discipline
// and the open-loop latency definition both rest on.
func TestArrivalsMonotone(t *testing.T) {
	a := New(DefaultParams(false))
	for i := 1; i < len(a.sched); i++ {
		if a.sched[i].arr <= a.sched[i-1].arr {
			t.Fatalf("arrival %d (%d) not after arrival %d (%d)",
				i, a.sched[i].arr, i-1, a.sched[i-1].arr)
		}
	}
}

// TestZipfSkew: with skew ~1, the hottest key must draw far more than
// the uniform share, and every key index must be in range.
func TestZipfSkew(t *testing.T) {
	p := DefaultParams(false)
	a := New(p)
	counts := make([]int, p.Keys)
	for _, r := range a.sched {
		if r.key < 0 || int(r.key) >= p.Keys {
			t.Fatalf("key %d out of range [0, %d)", r.key, p.Keys)
		}
		counts[r.key]++
	}
	uniform := len(a.sched) / p.Keys
	if counts[0] < 4*uniform {
		t.Fatalf("hottest key drew %d of %d requests (uniform share %d): no Zipf skew",
			counts[0], len(a.sched), uniform)
	}
}

// TestOpMixRoughlyHolds: the op mix matches the configured fractions
// within a loose statistical margin.
func TestOpMixRoughlyHolds(t *testing.T) {
	p := DefaultParams(true) // more requests, tighter ratio
	a := New(p)
	var puts, incrs int
	for _, r := range a.sched {
		switch r.op {
		case Put:
			puts++
		case Incr:
			incrs++
		}
	}
	n := float64(len(a.sched))
	if f := float64(puts) / n; f < p.PutFrac*0.8 || f > p.PutFrac*1.2 {
		t.Fatalf("PUT fraction %.3f, configured %.3f", f, p.PutFrac)
	}
	if f := float64(incrs) / n; f < p.IncrFrac*0.8 || f > p.IncrFrac*1.2 {
		t.Fatalf("INCR fraction %.3f, configured %.3f", f, p.IncrFrac)
	}
}

// TestEpochPartition: epochs partition [0, Requests) without gaps or
// overlap.
func TestEpochPartition(t *testing.T) {
	p := DefaultParams(false)
	a := New(p)
	if a.epochStart[0] != 0 || a.epochStart[p.Epochs] != p.Requests {
		t.Fatalf("epoch bounds %v do not cover [0, %d)", a.epochStart, p.Requests)
	}
	for e := 1; e <= p.Epochs; e++ {
		if a.epochStart[e] < a.epochStart[e-1] {
			t.Fatalf("epoch starts not monotone: %v", a.epochStart)
		}
	}
}

func TestBadParamsPanic(t *testing.T) {
	for name, p := range map[string]Params{
		"zero-shards": {Keys: 1, Requests: 1, Epochs: 1, ValWords: 1, MeanGapNs: 1},
		"bad-mix": {Shards: 1, Keys: 1, Requests: 1, Epochs: 1, ValWords: 1,
			MeanGapNs: 1, PutFrac: 0.8, IncrFrac: 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			New(p)
		}()
	}
}
