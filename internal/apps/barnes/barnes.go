// Package barnes reproduces the two Barnes-Hut N-body variants the
// paper evaluates, built on a complete quadtree over the unit square
// (depth-fixed, so the tree shape is insertion-order independent and
// parallel runs are comparable to sequential ones):
//
//   - Original: bodies are stored SoA in input order with interleaved
//     ownership, and leaf centers-of-mass are accumulated into the
//     shared tree under per-leaf locks — the fine-grained locking and
//     scattered remote access the paper blames for Barnes-original's
//     high lock and data-wait time.
//   - Spatial: the restructured version. Bodies are Morton-sorted and
//     spatially partitioned so tree accumulation is lock-free, but the
//     AoS body layout leaves unmodified words (mass) between updated
//     ones, so diffs within a page are highly scattered — which is
//     exactly why direct diffs explode the message count for
//     Barnes-spatial in §3.3 (a >30x message increase).
package barnes

import (
	"fmt"
	"math"

	"genima/internal/app"
	"genima/internal/memory"
)

// Variant selects the application flavor.
type Variant int

// The two Barnes-Hut flavors.
const (
	Original Variant = iota
	Spatial
)

// App is one Barnes-Hut instance.
type App struct {
	variant Variant
	n       int // bodies
	depth   int // quadtree depth (leaves at this level)
	steps   int

	levelOff []int // cell index offset per level
	ncells   int

	// Spatial variant: body -> leaf binning computed at Setup.
	leafOf     []int
	bodyOrder  []int // Morton-sorted body permutation
	leafStart  []int // leaf -> first body slot
	slotBounds []int // leaf-aligned slot boundaries (Morton order)
	slotLeaf   []int // slot -> (static) leaf

	// Per-processor scratch, indexed by ctx.ID(). Safe to keep on the
	// receiver: within a run the engine interleaves processors without
	// true concurrency, and concurrent runs never share an App instance
	// (see runSuiteParallel).
	sc []procScratch
}

// frame is one level/cell pair on the force traversal stack.
type frame struct{ level, cell int }

// procScratch holds one processor's reusable buffers.
type procScratch struct {
	stack  []frame
	bodies []int
	zero   []float64
}

// scratch returns the calling processor's scratch slot. The table is
// sized in Setup, before the processors start: sizing it lazily here
// would race when processors on different simulation workers hit their
// first phase concurrently.
func (a *App) scratch(ctx *app.Ctx) *procScratch {
	return &a.sc[ctx.ID()]
}

// NewOriginal creates the unrestructured variant.
func NewOriginal(n, depth, steps int) *App { return newApp(Original, n, depth, steps) }

// NewSpatial creates the restructured variant.
func NewSpatial(n, depth, steps int) *App { return newApp(Spatial, n, depth, steps) }

func newApp(v Variant, n, depth, steps int) *App {
	if n < 16 || depth < 2 || depth > 7 || steps < 1 {
		panic("barnes: need n >= 16, 2 <= depth <= 7, steps >= 1")
	}
	a := &App{variant: v, n: n, depth: depth, steps: steps}
	a.levelOff = make([]int, depth+1)
	off := 0
	for l := 0; l <= depth; l++ {
		a.levelOff[l] = off
		off += 1 << (2 * l)
	}
	a.ncells = off
	return a
}

// Name implements app.App.
func (a *App) Name() string {
	if a.variant == Original {
		return "barnes"
	}
	return "barnes-sp"
}

// Ops implements app.App.
func (a *App) Ops() float64 {
	return float64(a.n) * float64(a.ncells) / 4 * cellOps * float64(a.steps)
}

// N returns the body count.
func (a *App) N() int { return a.n }

const (
	theta        = 0.7
	dt           = 1e-3
	cellLockBase = 20000
	bodyStride   = 8 // spatial AoS: x, y, m, fx, fy, vx, vy, pad
	// cellOps models the per-cell force evaluation (distance, sqrt,
	// acceptance test, accumulation).
	cellOps = 40
)

func (a *App) leafIndex(x, y float64) int {
	side := 1 << a.depth
	cx := int(x * float64(side))
	cy := int(y * float64(side))
	if cx >= side {
		cx = side - 1
	}
	if cy >= side {
		cy = side - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return cy*side + cx
}

// morton interleaves the bits of a leaf's (x, y) for spatial sorting.
func morton(cx, cy, bits int) int {
	m := 0
	for b := 0; b < bits; b++ {
		m |= ((cx >> b) & 1) << (2 * b)
		m |= ((cy >> b) & 1) << (2*b + 1)
	}
	return m
}

// Setup generates a clustered body distribution and allocates the body
// and tree-cell regions in the variant's layout.
func (a *App) Setup(ws *app.Workspace) {
	if np := ws.Cfg.NumProcs(); len(a.sc) != np {
		a.sc = make([]procScratch, np)
	}
	xs := make([]float64, a.n)
	ys := make([]float64, a.n)
	ms := make([]float64, a.n)
	seed := uint64(271828)
	rnd := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>40) / float64(1<<24)
	}
	for i := 0; i < a.n; i++ {
		// Two gaussian-ish clusters for load imbalance.
		if i%3 == 0 {
			xs[i] = 0.25 + 0.15*(rnd()+rnd()-1)
			ys[i] = 0.25 + 0.15*(rnd()+rnd()-1)
		} else {
			xs[i] = 0.7 + 0.2*(rnd()+rnd()-1)
			ys[i] = 0.65 + 0.2*(rnd()+rnd()-1)
		}
		xs[i] = clamp01(xs[i])
		ys[i] = clamp01(ys[i])
		ms[i] = 0.5 + rnd()
	}

	// Tree cells (SoA): mass, center-of-mass x, y.
	ws.Alloc("cmass", 8*a.ncells, memory.RoundRobin)
	ws.Alloc("ccx", 8*a.ncells, memory.RoundRobin)
	ws.Alloc("ccy", 8*a.ncells, memory.RoundRobin)

	if a.variant == Original {
		// SoA bodies in input order.
		px := ws.Alloc("px", 8*a.n, memory.Blocked)
		py := ws.Alloc("py", 8*a.n, memory.Blocked)
		mass := ws.Alloc("mass", 8*a.n, memory.Blocked)
		ws.Alloc("fx", 8*a.n, memory.Blocked)
		ws.Alloc("fy", 8*a.n, memory.Blocked)
		ws.Alloc("vx", 8*a.n, memory.Blocked)
		ws.Alloc("vy", 8*a.n, memory.Blocked)
		for i := 0; i < a.n; i++ {
			ws.SetF64(px, i, xs[i])
			ws.SetF64(py, i, ys[i])
			ws.SetF64(mass, i, ms[i])
		}
		return
	}

	// Spatial: Morton-sort bodies by leaf, AoS layout.
	side := 1 << a.depth
	a.leafOf = make([]int, a.n)
	keys := make([]int, a.n)
	for i := 0; i < a.n; i++ {
		leaf := a.leafIndex(xs[i], ys[i])
		a.leafOf[i] = leaf
		keys[i] = morton(leaf%side, leaf/side, a.depth)
	}
	a.bodyOrder = make([]int, a.n)
	for i := range a.bodyOrder {
		a.bodyOrder[i] = i
	}
	// Stable counting-style sort by Morton key.
	sortByKey(a.bodyOrder, keys)

	a.leafStart = make([]int, side*side+1)
	counts := make([]int, side*side)
	for _, leaf := range a.leafOf {
		counts[leaf]++
	}
	// leafStart in Morton order of leaves.
	mortonLeaves := make([]int, side*side)
	for leaf := 0; leaf < side*side; leaf++ {
		mortonLeaves[morton(leaf%side, leaf/side, a.depth)] = leaf
	}
	pos := 0
	starts := make([]int, side*side)
	a.slotBounds = a.slotBounds[:0]
	for _, leaf := range mortonLeaves {
		a.slotBounds = append(a.slotBounds, pos)
		starts[leaf] = pos
		pos += counts[leaf]
	}
	a.slotBounds = append(a.slotBounds, a.n)
	a.leafStart = starts

	// Round-robin page homes: in the real application the body array
	// is allocated once while costzones ownership shifts every step,
	// so body pages are generally remote to their writers — which is
	// what makes the spatial variant's scattered within-page diffs
	// travel the network (the §3.3 direct-diff explosion).
	bodies := ws.Alloc("bodies", 8*bodyStride*a.n, memory.RoundRobin)
	// Static leaf binning: bodies keep their setup-time leaf for COM
	// accumulation even as they drift (they move a small fraction of a
	// cell per step at this scale). This keeps the spatial variant's
	// accumulation strictly owner-local and lock-free — the essence of
	// the restructuring — without a rebinning phase.
	a.slotLeaf = make([]int, a.n)
	for slot, i := range a.bodyOrder {
		a.slotLeaf[slot] = a.leafOf[i]
	}
	for slot, i := range a.bodyOrder {
		base := slot * bodyStride
		ws.SetF64(bodies, base+0, xs[i])
		ws.SetF64(bodies, base+1, ys[i])
		ws.SetF64(bodies, base+2, ms[i])
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return 0.999999
	}
	return v
}

func sortByKey(order, keys []int) {
	// Insertion sort is fine at setup scale and is stable.
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 && keys[order[j-1]] > keys[order[j]] {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
}

// Run advances the system: tree build (locks in Original, lock-free in
// Spatial), upward aggregation, force traversal, integration.
func (a *App) Run(ctx *app.Ctx) {
	for step := 0; step < a.steps; step++ {
		a.clearCells(ctx)
		ctx.Barrier()
		a.accumulateLeaves(ctx)
		ctx.Barrier()
		a.upwardPass(ctx)
		a.forcesAndIntegrate(ctx)
		ctx.Barrier()
	}
}

// clearCells zeroes this processor's share of the cell arrays.
func (a *App) clearCells(ctx *app.Ctx) {
	ws := ctx.Workspace()
	id, np := ctx.ID(), ctx.NProc()
	lo, hi := id*a.ncells/np, (id+1)*a.ncells/np
	if hi <= lo {
		return
	}
	sc := a.scratch(ctx)
	if cap(sc.zero) < hi-lo {
		sc.zero = make([]float64, hi-lo)
	}
	zero := sc.zero[:hi-lo] // never written: stays all-zero
	ctx.CopyInF64(ws.Region("cmass"), lo, zero)
	ctx.CopyInF64(ws.Region("ccx"), lo, zero)
	ctx.CopyInF64(ws.Region("ccy"), lo, zero)
	ctx.Compute(float64(hi-lo) * 0.5)
}

// body loads body i's position and mass (variant-specific layout).
func (a *App) body(ctx *app.Ctx, i int) (x, y, m float64) {
	ws := ctx.Workspace()
	if a.variant == Original {
		return ctx.F64(ws.Region("px"), i), ctx.F64(ws.Region("py"), i), ctx.F64(ws.Region("mass"), i)
	}
	b := ws.Region("bodies")
	base := i * bodyStride
	return ctx.F64(b, base), ctx.F64(b, base+1), ctx.F64(b, base+2)
}

// myBodies returns this processor's body slots (valid until the
// processor's next myBodies call).
func (a *App) myBodies(ctx *app.Ctx) []int {
	id, np := ctx.ID(), ctx.NProc()
	sc := a.scratch(ctx)
	out := sc.bodies[:0]
	defer func() { sc.bodies = out }()
	if a.variant == Original {
		// Interleaved ownership: scattered writes.
		for i := id; i < a.n; i += np {
			out = append(out, i)
		}
		return out
	}
	// Spatial: contiguous Morton-ordered slots, aligned to leaf
	// boundaries so no leaf's lock-free accumulation is split between
	// two processors.
	lo := a.alignToLeaf(id * a.n / np)
	hi := a.alignToLeaf((id + 1) * a.n / np)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// alignToLeaf rounds a slot position up to the nearest leaf boundary.
func (a *App) alignToLeaf(slot int) int {
	lo, hi := 0, len(a.slotBounds)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if a.slotBounds[mid] < slot {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return a.slotBounds[lo]
}

// accumulateLeaves adds each body's mass moment into its leaf cell.
func (a *App) accumulateLeaves(ctx *app.Ctx) {
	ws := ctx.Workspace()
	cmass, ccx, ccy := ws.Region("cmass"), ws.Region("ccx"), ws.Region("ccy")
	leafBase := a.levelOff[a.depth]

	for _, i := range a.myBodies(ctx) {
		x, y, m := a.body(ctx, i)
		var leaf int
		if a.variant == Spatial {
			leaf = leafBase + a.slotLeaf[i]
		} else {
			leaf = leafBase + a.leafIndex(x, y)
		}
		if a.variant == Original {
			// Fine-grained per-leaf locks on the shared tree.
			ctx.Lock(cellLockBase + leaf)
			ctx.AddF64(cmass, leaf, m)
			ctx.AddF64(ccx, leaf, m*x)
			ctx.AddF64(ccy, leaf, m*y)
			ctx.Unlock(cellLockBase + leaf)
		} else {
			// Spatial partitioning makes leaf updates owner-local.
			ctx.AddF64(cmass, leaf, m)
			ctx.AddF64(ccx, leaf, m*x)
			ctx.AddF64(ccy, leaf, m*y)
		}
		ctx.Compute(8)
	}
}

// upwardPass aggregates children into parents, level by level.
func (a *App) upwardPass(ctx *app.Ctx) {
	ws := ctx.Workspace()
	cmass, ccx, ccy := ws.Region("cmass"), ws.Region("ccx"), ws.Region("ccy")
	id, np := ctx.ID(), ctx.NProc()
	for l := a.depth - 1; l >= 0; l-- {
		cells := 1 << (2 * l)
		lo, hi := id*cells/np, (id+1)*cells/np
		side := 1 << l
		for c := lo; c < hi; c++ {
			cy, cx := c/side, c%side
			var m, mx, my float64
			for q := 0; q < 4; q++ {
				childSide := side * 2
				ccol := cx*2 + q%2
				crow := cy*2 + q/2
				child := a.levelOff[l+1] + crow*childSide + ccol
				cm := ctx.F64(cmass, child)
				if cm == 0 {
					continue
				}
				m += cm
				mx += ctx.F64(ccx, child)
				my += ctx.F64(ccy, child)
			}
			idx := a.levelOff[l] + c
			ctx.SetF64(cmass, idx, m)
			ctx.SetF64(ccx, idx, mx)
			ctx.SetF64(ccy, idx, my)
			ctx.Compute(12)
		}
		ctx.Barrier()
	}
}

// forcesAndIntegrate traverses the tree for each owned body and
// integrates it.
func (a *App) forcesAndIntegrate(ctx *app.Ctx) {
	ws := ctx.Workspace()
	for _, i := range a.myBodies(ctx) {
		x, y, m := a.body(ctx, i)
		fx, fy, visited := a.force(ctx, x, y)
		ctx.Compute(float64(visited) * cellOps)
		_ = m
		if a.variant == Original {
			vxR, vyR := ws.Region("vx"), ws.Region("vy")
			pxR, pyR := ws.Region("px"), ws.Region("py")
			fxR, fyR := ws.Region("fx"), ws.Region("fy")
			ctx.SetF64(fxR, i, fx)
			ctx.SetF64(fyR, i, fy)
			nvx := ctx.F64(vxR, i) + dt*fx
			nvy := ctx.F64(vyR, i) + dt*fy
			ctx.SetF64(vxR, i, nvx)
			ctx.SetF64(vyR, i, nvy)
			ctx.SetF64(pxR, i, clamp01(x+dt*nvx))
			ctx.SetF64(pyR, i, clamp01(y+dt*nvy))
		} else {
			b := ws.Region("bodies")
			base := i * bodyStride
			ctx.SetF64(b, base+3, fx)
			ctx.SetF64(b, base+4, fy)
			nvx := ctx.F64(b, base+5) + dt*fx
			nvy := ctx.F64(b, base+6) + dt*fy
			ctx.SetF64(b, base+5, nvx)
			ctx.SetF64(b, base+6, nvy)
			ctx.SetF64(b, base+0, clamp01(x+dt*nvx))
			ctx.SetF64(b, base+1, clamp01(y+dt*nvy))
		}
		ctx.Compute(10)
	}
}

// force runs the Barnes-Hut traversal (iterative, explicit stack) and
// returns the force plus the number of cells visited.
func (a *App) force(ctx *app.Ctx, x, y float64) (fx, fy float64, visited int) {
	ws := ctx.Workspace()
	cmass, ccx, ccy := ws.Region("cmass"), ws.Region("ccx"), ws.Region("ccy")

	sc := a.scratch(ctx)
	stack := append(sc.stack[:0], frame{0, 0})
	defer func() { sc.stack = stack }()
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		idx := a.levelOff[f.level] + f.cell
		m := ctx.F64(cmass, idx)
		visited++
		if m == 0 {
			continue
		}
		cx := ctx.F64(ccx, idx) / m
		cy := ctx.F64(ccy, idx) / m
		dx, dy := cx-x, cy-y
		dist2 := dx*dx + dy*dy + 1e-4
		size := 1.0 / float64(int(1)<<f.level)
		if f.level == a.depth || size*size < theta*theta*dist2 {
			inv := m / (dist2 * math.Sqrt(dist2))
			fx += dx * inv
			fy += dy * inv
			continue
		}
		side := 1 << f.level
		ccol, crow := f.cell%side, f.cell/side
		for q := 0; q < 4; q++ {
			child := (crow*2+q/2)*(side*2) + ccol*2 + q%2
			stack = append(stack, frame{f.level + 1, child})
		}
	}
	return fx, fy, visited
}

// Compare validates with tolerance (Original's lock-merge order differs
// from sequential; Spatial matches bit-exactly but shares the check).
func (a *App) Compare(par, seq *app.Workspace) error {
	check := func(name string, count int) error {
		return app.CompareF64Tolerance(par, seq, name, count, 1e-7)
	}
	if a.variant == Original {
		for _, r := range []string{"px", "py", "vx", "vy", "fx", "fy"} {
			if err := check(r, a.n); err != nil {
				return fmt.Errorf("barnes: %w", err)
			}
		}
		return nil
	}
	if err := check("bodies", bodyStride*a.n); err != nil {
		return fmt.Errorf("barnes-sp: %w", err)
	}
	return nil
}
