package barnes

import (
	"math"
	"testing"

	"genima/internal/app"
	"genima/internal/core"
	"genima/internal/topo"
)

func cfg() topo.Config {
	c := topo.Default()
	c.Nodes = 4
	c.ProcsPerNode = 2
	return c
}

func TestTreeMassConservation(t *testing.T) {
	// After the upward pass, the root cell's mass equals total body mass.
	a := NewOriginal(64, 3, 1)
	_, ws, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	root := ws.F64(ws.Region("cmass"), 0)
	var want float64
	mass := ws.Region("mass")
	for i := 0; i < a.n; i++ {
		want += ws.F64(mass, i)
	}
	if math.Abs(root-want) > 1e-9*want {
		t.Errorf("root mass = %g, want %g", root, want)
	}
}

func TestMortonOrdering(t *testing.T) {
	if morton(0, 0, 3) != 0 || morton(1, 0, 3) != 1 || morton(0, 1, 3) != 2 || morton(1, 1, 3) != 3 {
		t.Error("morton interleave broken for first quad")
	}
	if morton(2, 0, 3) != 4 {
		t.Errorf("morton(2,0) = %d, want 4", morton(2, 0, 3))
	}
}

func TestOriginalParallelMatchesSequential(t *testing.T) {
	a := NewOriginal(96, 3, 2)
	_, seqWS, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range core.Kinds() {
		_, parWS, err := app.RunSVM(cfg(), k, a)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := app.Validate(a, parWS, seqWS); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
	_, hwWS, err := app.RunHW(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(a, hwWS, seqWS); err != nil {
		t.Errorf("hwdsm: %v", err)
	}
}

func TestSpatialParallelMatchesSequential(t *testing.T) {
	a := NewSpatial(96, 3, 2)
	_, seqWS, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range core.Kinds() {
		_, parWS, err := app.RunSVM(cfg(), k, a)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := app.Validate(a, parWS, seqWS); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

func TestOriginalLocksSpatialDoesNot(t *testing.T) {
	orig := NewOriginal(96, 3, 1)
	sp := NewSpatial(96, 3, 1)
	ro, _, err := app.RunSVM(cfg(), core.Base, orig)
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := app.RunSVM(cfg(), core.Base, sp)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Acct.LockOps == 0 {
		t.Error("original variant took no remote locks")
	}
	if rs.Acct.LockOps >= ro.Acct.LockOps/2 {
		t.Errorf("spatial lock ops (%d) not well below original (%d)", rs.Acct.LockOps, ro.Acct.LockOps)
	}
}

// The paper's §3.3 DD effect: direct diffs massively increase message
// counts for Barnes-spatial because the AoS layout scatters modified
// words within each page.
func TestSpatialDirectDiffMessageExplosion(t *testing.T) {
	a := NewSpatial(256, 3, 1)
	noDD, _, err := app.RunSVM(cfg(), core.DWRF, a)
	if err != nil {
		t.Fatal(err)
	}
	withDD, _, err := app.RunSVM(cfg(), core.DWRFDD, a)
	if err != nil {
		t.Fatal(err)
	}
	nd := noDD.Monitor.TotalPackets()
	wd := withDD.Monitor.TotalPackets()
	if wd < nd*2 {
		t.Errorf("DD packets (%d) not much above non-DD (%d) for barnes-spatial", wd, nd)
	}
}
