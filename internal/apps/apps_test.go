package apps

import (
	"testing"

	"genima/internal/app"
	"genima/internal/topo"
)

func TestSuiteHasTenUniqueApps(t *testing.T) {
	for _, scale := range []Scale{Test, Bench} {
		suite := Suite(scale)
		if len(suite) != 10 {
			t.Fatalf("scale %d: %d apps, want 10", scale, len(suite))
		}
		seen := map[string]bool{}
		for _, e := range suite {
			if seen[e.App.Name()] {
				t.Errorf("duplicate app name %q", e.App.Name())
			}
			seen[e.App.Name()] = true
			if e.PaperName == "" || e.PaperSize == "" || e.OurSize == "" {
				t.Errorf("%s: missing paper metadata", e.App.Name())
			}
			if e.App.Ops() <= 0 {
				t.Errorf("%s: non-positive op estimate", e.App.Name())
			}
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names(Test)
	if len(names) != 10 {
		t.Fatalf("Names returned %d", len(names))
	}
	for _, n := range names {
		e, ok := ByName(Test, n)
		if !ok || e.App.Name() != n {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName(Test, "no-such-app"); ok {
		t.Error("ByName accepted a bogus name")
	}
}

func TestPaperTableOrder(t *testing.T) {
	// The suite must follow the paper's Table 1 row order.
	want := []string{"FFT", "LU-contiguous", "Ocean-rowwise", "Water-nsquared",
		"Water-spatial", "Radix-local", "Volrend-stealing", "Raytrace",
		"Barnes-original", "Barnes-spatial"}
	for i, e := range Suite(Bench) {
		if e.PaperName != want[i] {
			t.Errorf("row %d = %q, want %q", i, e.PaperName, want[i])
		}
	}
}

// Every suite app must run sequentially without error.
func TestSuiteAppsRunnable(t *testing.T) {
	for _, e := range Suite(Test) {
		e := e
		t.Run(e.App.Name(), func(t *testing.T) {
			if _, _, err := app.RunSeq(topo.Default(), e.App); err != nil {
				t.Fatalf("sequential run failed: %v", err)
			}
		})
	}
}
