// Regression tests for protocol races found during development: the
// premature-version early-flush bug, intra-node invalidation races, and
// lock-release yield races. They drive the raw merge/read pattern that
// exposed them.
package waterns

import (
	"testing"

	"genima/internal/app"
	"genima/internal/core"
	"genima/internal/memory"
	"genima/internal/topo"
)

type miniApp struct{ got []float64 }

func (m *miniApp) Name() string { return "mini" }
func (m *miniApp) Ops() float64 { return 1 }
func (m *miniApp) Setup(ws *app.Workspace) {
	ws.Alloc("f", 4096, memory.RoundRobin)
	ws.Alloc("out", 4096, memory.RoundRobin)
}
func (m *miniApp) Run(ctx *app.Ctx) {
	ws := ctx.Workspace()
	f := ws.Region("f")
	out := ws.Region("out")
	for step := 0; step < 3; step++ {
		ctx.Lock(5)
		ctx.AddF64(f, 0, float64(ctx.ID()+1))
		ctx.Unlock(5)
		ctx.Barrier()
		if ctx.ID() == 0 {
			v := ctx.F64(f, 0)
			ctx.SetF64(out, step, v)
			ctx.SetF64(f, 0, 0)
		}
		ctx.Barrier()
	}
}

func TestMiniAddClear(t *testing.T) {
	c := topo.Default()
	c.Nodes = 2
	c.ProcsPerNode = 1
	a := &miniApp{}
	want := 3.0 // 1 + 2 for two processors
	for _, k := range core.Kinds() {
		_, parWS, err := app.RunSVM(c, k, a)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 3; step++ {
			p := parWS.F64(parWS.Region("out"), step)
			if p != want {
				t.Errorf("%v step %d: got %v want %v", k, step, p, want)
			}
		}
	}
}

func TestIsolateSteps(t *testing.T) {
	c := topo.Default()
	c.Nodes = 2
	c.ProcsPerNode = 1
	for _, steps := range []int{1, 2} {
		a := New(48, steps)
		_, seqWS, err := app.RunSeq(c, a)
		if err != nil {
			t.Fatal(err)
		}
		_, parWS, err := app.RunSVM(c, core.DWRF, a)
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Validate(a, parWS, seqWS); err != nil {
			t.Errorf("steps=%d: %v", steps, err)
		} else {
			t.Logf("steps=%d OK", steps)
		}
	}
}

// mergeOnly replicates waterns' force phase without integration so the
// merged force array itself can be inspected.
type mergeOnly struct{ n int }

func (m *mergeOnly) Name() string { return "merge-only" }
func (m *mergeOnly) Ops() float64 { return 1 }
func (m *mergeOnly) Setup(ws *app.Workspace) {
	full := New(m.n, 1)
	full.Setup(ws)
}
func (m *mergeOnly) Run(ctx *app.Ctx) {
	ws := ctx.Workspace()
	pos := ws.Region("pos")
	force := ws.Region("force")
	id, np := ctx.ID(), ctx.NProc()
	lo, hi := id*m.n/np, (id+1)*m.n/np
	p := make([]float64, 3*m.n)
	partial := make([]float64, 3*m.n)
	ctx.CopyOutF64(pos, 0, p)
	for i := lo; i < hi; i++ {
		for j := i + 1; j < m.n; j++ {
			fx, fy, fz := pairForce(p, i, j)
			partial[3*i] += fx
			partial[3*i+1] += fy
			partial[3*i+2] += fz
			partial[3*j] -= fx
			partial[3*j+1] -= fy
			partial[3*j+2] -= fz
		}
	}
	for j := 0; j < m.n; j++ {
		if partial[3*j] == 0 && partial[3*j+1] == 0 && partial[3*j+2] == 0 {
			continue
		}
		ctx.Lock(lockBase + j)
		ctx.AddF64(force, 3*j, partial[3*j])
		ctx.AddF64(force, 3*j+1, partial[3*j+1])
		ctx.AddF64(force, 3*j+2, partial[3*j+2])
		ctx.Unlock(lockBase + j)
	}
	ctx.Barrier()
}

func TestIsolateMerge(t *testing.T) {
	c := topo.Default()
	c.Nodes = 2
	c.ProcsPerNode = 1
	a := &mergeOnly{n: 48}
	_, seqWS, err := app.RunSeq(c, a)
	if err != nil {
		t.Fatal(err)
	}
	_, parWS, err := app.RunSVM(c, core.DWRF, a)
	if err != nil {
		t.Fatal(err)
	}
	fs, fp := seqWS.Region("force"), parWS.Region("force")
	bad := 0
	for i := 0; i < 3*48; i++ {
		s, p := seqWS.F64(fs, i), parWS.F64(fp, i)
		d := s - p
		if d < 0 {
			d = -d
		}
		if d > 1e-9 {
			t.Logf("force[%d] (mol %d): par=%.12g seq=%.12g diff=%.3g", i, i/3, p, s, p-s)
			bad++
			if bad > 10 {
				break
			}
		}
	}
	if bad == 0 {
		t.Log("forces match")
	}
}

// readBack extends mergeOnly: after the barrier each proc reads its
// molecules' forces into a readout region (like the integration phase).
type readBack struct{ mergeOnly }

func (m *readBack) Name() string { return "read-back" }
func (m *readBack) Setup(ws *app.Workspace) {
	m.mergeOnly.Setup(ws)
	ws.Alloc("readout", 8*3*m.n, memory.Blocked)
}
func (m *readBack) Run(ctx *app.Ctx) {
	m.mergeOnly.Run(ctx) // merge + barrier
	ws := ctx.Workspace()
	force := ws.Region("force")
	readout := ws.Region("readout")
	id, np := ctx.ID(), ctx.NProc()
	lo, hi := id*m.n/np, (id+1)*m.n/np
	for i := lo; i < hi; i++ {
		for d := 0; d < 3; d++ {
			ctx.SetF64(readout, 3*i+d, ctx.F64(force, 3*i+d))
		}
	}
	ctx.Barrier()
}

func TestIsolateReadBack(t *testing.T) {
	c := topo.Default()
	c.Nodes = 2
	c.ProcsPerNode = 1
	a := &readBack{mergeOnly{n: 48}}
	_, seqWS, err := app.RunSeq(c, a)
	if err != nil {
		t.Fatal(err)
	}
	_, parWS, err := app.RunSVM(c, core.DWRF, a)
	if err != nil {
		t.Fatal(err)
	}
	rs, rp := seqWS.Region("readout"), parWS.Region("readout")
	fs, fp := seqWS.Region("force"), parWS.Region("force")
	bad := 0
	for i := 0; i < 3*48; i++ {
		s, p := seqWS.F64(rs, i), parWS.F64(rp, i)
		if d := s - p; d > 1e-9 || d < -1e-9 {
			t.Logf("readout[%d] (mol %d, proc %d): par=%.12g seq=%.12g finalF par=%.12g seq=%.12g",
				i, i/3, (i/3)/24, p, s, parWS.F64(fp, i), seqWS.F64(fs, i))
			bad++
			if bad > 6 {
				break
			}
		}
	}
	if bad == 0 {
		t.Log("readouts match")
	}
}
