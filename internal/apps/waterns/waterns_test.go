package waterns

import (
	"testing"

	"genima/internal/app"
	"genima/internal/core"
	"genima/internal/topo"
)

func cfg() topo.Config {
	c := topo.Default()
	c.Nodes = 4
	c.ProcsPerNode = 2
	return c
}

func TestMomentumConservation(t *testing.T) {
	// Newton's third law: the merged force array sums to ~zero before
	// the integration clears it. Check on a 1-step sequential run by
	// summing position deltas weighted 1/dt.
	a := New(32, 1)
	orig := func() *app.Workspace {
		c := cfg()
		ws := app.NewWorkspace(&c)
		a.Setup(ws)
		return ws
	}()
	_, ws, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	pos, pos0 := ws.Region("pos"), orig.Region("pos")
	for d := 0; d < 3; d++ {
		var sum float64
		for i := 0; i < a.n; i++ {
			sum += ws.F64(pos, 3*i+d) - orig.F64(pos0, 3*i+d)
		}
		if sum > 1e-9 || sum < -1e-9 {
			t.Errorf("net momentum along axis %d = %g, want ~0", d, sum)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	a := New(48, 2)
	_, seqWS, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range core.Kinds() {
		_, parWS, err := app.RunSVM(cfg(), k, a)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := app.Validate(a, parWS, seqWS); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
	_, hwWS, err := app.RunHW(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(a, hwWS, seqWS); err != nil {
		t.Errorf("hwdsm: %v", err)
	}
}

func TestLockHeavyProfile(t *testing.T) {
	// Water-Nsquared is the paper's fine-grained-locking case: remote
	// lock operations must dominate those of a lock-free run.
	a := New(48, 2)
	res, _, err := app.RunSVM(cfg(), core.Base, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acct.LockOps == 0 {
		t.Error("no remote lock operations recorded")
	}
	if res.Avg.T[2] == 0 { // Lock category
		t.Error("no lock time in the breakdown")
	}
}
