// Package waterns reproduces Water-Nsquared: an O(N²) molecular dynamics
// step in which every pair of molecules interacts. Each processor
// computes partial forces privately, then merges them into the shared
// force array under per-molecule locks — the fine-grained locking the
// paper identifies as this application's bottleneck (frequent locks push
// invalidation propagation traffic into the NI queues, where control
// messages get stuck behind data in the Base and DW protocols).
package waterns

import (
	"fmt"

	"genima/internal/app"
	"genima/internal/memory"
)

// App is one Water-Nsquared instance.
type App struct {
	n     int // molecules
	steps int
}

// New creates an n-molecule, steps-step run.
func New(n, steps int) *App {
	if n < 8 || steps < 1 {
		panic("waterns: need n >= 8 and steps >= 1")
	}
	return &App{n: n, steps: steps}
}

// Name implements app.App.
func (a *App) Name() string { return "water-nsq" }

// Ops implements app.App.
func (a *App) Ops() float64 {
	return float64(a.n) * float64(a.n) / 2 * pairOps * float64(a.steps)
}

// N returns the molecule count.
func (a *App) N() int { return a.n }

const dt = 1e-4

// pairOps models the real Water force kernel: each molecule pair
// involves nine atom-atom distances, square roots and exponentials —
// on the order of a hundred operations.
const pairOps = 120

// Setup allocates positions and forces (3 doubles per molecule each).
func (a *App) Setup(ws *app.Workspace) {
	pos := ws.Alloc("pos", 8*3*a.n, memory.RoundRobin)
	ws.Alloc("force", 8*3*a.n, memory.RoundRobin)
	seed := uint64(777)
	for i := 0; i < 3*a.n; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		ws.SetF64(pos, i, float64(seed>>40)/float64(1<<24)*10)
	}
}

// Run advances the system: pairwise forces (private), merge under
// per-molecule locks, barrier, position integration by owner, barrier.
func (a *App) Run(ctx *app.Ctx) {
	ws := ctx.Workspace()
	pos := ws.Region("pos")
	force := ws.Region("force")
	id, np := ctx.ID(), ctx.NProc()
	lo, hi := id*a.n/np, (id+1)*a.n/np

	p := make([]float64, 3*a.n)
	partial := make([]float64, 3*a.n)

	for step := 0; step < a.steps; step++ {
		// Read all positions (coarse read phase).
		ctx.CopyOutF64(pos, 0, p)
		for i := range partial {
			partial[i] = 0
		}
		// Pairwise interactions for my molecule block.
		for i := lo; i < hi; i++ {
			for j := i + 1; j < a.n; j++ {
				fx, fy, fz := pairForce(p, i, j)
				partial[3*i] += fx
				partial[3*i+1] += fy
				partial[3*i+2] += fz
				partial[3*j] -= fx
				partial[3*j+1] -= fy
				partial[3*j+2] -= fz
			}
		}
		ctx.Compute(float64(hi-lo) * float64(a.n) / 2 * pairOps)

		// Merge partial forces under per-molecule locks. As in the
		// SPLASH-2 code, each processor starts at its own block and
		// wraps around, so processors do not convoy on the same lock.
		for jj := 0; jj < a.n; jj++ {
			j := (lo + jj) % a.n
			if partial[3*j] == 0 && partial[3*j+1] == 0 && partial[3*j+2] == 0 {
				continue
			}
			ctx.Lock(lockBase + j)
			ctx.AddF64(force, 3*j, partial[3*j])
			ctx.AddF64(force, 3*j+1, partial[3*j+1])
			ctx.AddF64(force, 3*j+2, partial[3*j+2])
			ctx.Unlock(lockBase + j)
			ctx.Compute(6)
		}
		ctx.Barrier()

		// Integrate my molecules and clear their forces.
		for i := lo; i < hi; i++ {
			for d := 0; d < 3; d++ {
				f := ctx.F64(force, 3*i+d)
				ctx.SetF64(pos, 3*i+d, p[3*i+d]+dt*f)
				ctx.SetF64(force, 3*i+d, 0)
			}
		}
		ctx.Compute(float64(hi-lo) * 9)
		ctx.Barrier()
	}
}

// lockBase keeps per-molecule lock ids clear of small shared lock ids
// used elsewhere.
const lockBase = 1000

// pairForce computes a softened inverse-square attraction between
// molecules i and j.
func pairForce(p []float64, i, j int) (fx, fy, fz float64) {
	dx := p[3*j] - p[3*i]
	dy := p[3*j+1] - p[3*i+1]
	dz := p[3*j+2] - p[3*i+2]
	r2 := dx*dx + dy*dy + dz*dz + 0.1
	inv := 1 / (r2 * r2)
	return dx * inv, dy * inv, dz * inv
}

// Compare validates with tolerance: the parallel force merge order
// differs from the sequential order, so sums differ in rounding.
func (a *App) Compare(par, seq *app.Workspace) error {
	if err := app.CompareF64Tolerance(par, seq, "pos", 3*a.n, 1e-9); err != nil {
		return fmt.Errorf("waterns positions: %w", err)
	}
	if err := app.CompareF64Tolerance(par, seq, "force", 3*a.n, 1e-6); err != nil {
		return fmt.Errorf("waterns forces: %w", err)
	}
	return nil
}
