package watersp

import (
	"testing"

	"genima/internal/app"
	"genima/internal/core"
	"genima/internal/topo"
)

func cfg() topo.Config {
	c := topo.Default()
	c.Nodes = 4
	c.ProcsPerNode = 2
	return c
}

func TestBinningCoversAllMolecules(t *testing.T) {
	a := New(64, 4, 1)
	c := cfg()
	ws := app.NewWorkspace(&c)
	a.Setup(ws)
	if a.start[len(a.start)-1] != a.n {
		t.Fatalf("cell starts cover %d molecules, want %d", a.start[len(a.start)-1], a.n)
	}
	seen := make([]bool, a.n)
	for _, m := range a.perm {
		if seen[m] {
			t.Fatalf("molecule %d appears twice in the permutation", m)
		}
		seen[m] = true
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	a := New(64, 4, 2)
	_, seqWS, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range core.Kinds() {
		_, parWS, err := app.RunSVM(cfg(), k, a)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := app.Validate(a, parWS, seqWS); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
	_, hwWS, err := app.RunHW(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(a, hwWS, seqWS); err != nil {
		t.Errorf("hwdsm: %v", err)
	}
}

func TestCoarserLockingThanNsquared(t *testing.T) {
	// The spatial decomposition must take far fewer remote lock
	// operations than one per molecule per processor per step.
	a := New(64, 4, 2)
	res, _, err := app.RunSVM(cfg(), core.Base, a)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg()
	perStepCeiling := uint64(c.NumProcs() * 64) // molecules × procs
	if res.Acct.LockOps >= perStepCeiling*uint64(a.steps) {
		t.Errorf("lock ops = %d, not coarser than per-molecule locking", res.Acct.LockOps)
	}
}
