// Package watersp reproduces Water-Spatial: the cell-decomposed version
// of the Water molecular dynamics code. Molecules are binned into a 2-D
// grid of cells (done at setup; molecules move far less than a cell per
// step at this scale) and only neighbor-cell pairs interact, so both
// computation and locking are far coarser than Water-Nsquared: partial
// forces are merged under per-cell (not per-molecule) locks, which is
// why the paper sees much lower lock time for the spatial version.
package watersp

import (
	"fmt"

	"genima/internal/app"
	"genima/internal/memory"
)

// App is one Water-Spatial instance.
type App struct {
	n     int // molecules
	g     int // cell grid side
	steps int

	cellOf []int // molecule -> cell (fixed binning)
	perm   []int // sorted-by-cell molecule order
	start  []int // cell -> first molecule index in perm order
}

// New creates an n-molecule run on a g×g cell grid for steps steps.
func New(n, g, steps int) *App {
	if n < 8 || g < 2 || steps < 1 {
		panic("watersp: need n >= 8, g >= 2, steps >= 1")
	}
	return &App{n: n, g: g, steps: steps}
}

// Name implements app.App.
func (a *App) Name() string { return "water-sp" }

// Ops implements app.App.
func (a *App) Ops() float64 {
	perCell := float64(a.n) / float64(a.g*a.g)
	return float64(a.n) * perCell * 9 * pairOps * float64(a.steps)
}

// N returns the molecule count.
func (a *App) N() int { return a.n }

const (
	boxSize  = 10.0
	dt       = 1e-4
	lockBase = 5000
	// pairOps models the real Water force kernel (~100 ops per pair).
	pairOps = 120
)

// Setup bins molecules into cells and lays them out cell-contiguously
// (the "spatial" data restructuring).
func (a *App) Setup(ws *app.Workspace) {
	raw := make([]float64, 3*a.n)
	seed := uint64(4242)
	for i := range raw {
		seed = seed*6364136223846793005 + 1442695040888963407
		raw[i] = float64(seed>>40) / float64(1<<24) * boxSize
	}
	// Bin by (x, y).
	a.cellOf = make([]int, a.n)
	counts := make([]int, a.g*a.g)
	for m := 0; m < a.n; m++ {
		cx := int(raw[3*m] / boxSize * float64(a.g))
		cy := int(raw[3*m+1] / boxSize * float64(a.g))
		if cx >= a.g {
			cx = a.g - 1
		}
		if cy >= a.g {
			cy = a.g - 1
		}
		a.cellOf[m] = cy*a.g + cx
		counts[a.cellOf[m]]++
	}
	a.start = make([]int, a.g*a.g+1)
	for c := 0; c < a.g*a.g; c++ {
		a.start[c+1] = a.start[c] + counts[c]
	}
	fill := append([]int(nil), a.start...)
	a.perm = make([]int, a.n)
	for m := 0; m < a.n; m++ {
		a.perm[fill[a.cellOf[m]]] = m
		fill[a.cellOf[m]]++
	}

	pos := ws.Alloc("pos", 8*3*a.n, memory.Blocked)
	ws.Alloc("force", 8*3*a.n, memory.Blocked)
	for slot, m := range a.perm {
		for d := 0; d < 3; d++ {
			ws.SetF64(pos, 3*slot+d, raw[3*m+d])
		}
	}
}

// cellRange gives this processor's block of cell rows.
func (a *App) cellRows(ctx *app.Ctx) (int, int) {
	id, np := ctx.ID(), ctx.NProc()
	return id * a.g / np, (id + 1) * a.g / np
}

// Run advances the system with neighbor-cell interactions.
func (a *App) Run(ctx *app.Ctx) {
	ws := ctx.Workspace()
	pos := ws.Region("pos")
	force := ws.Region("force")
	r0, r1 := a.cellRows(ctx)

	p := make([]float64, 3*a.n)
	partial := make([]float64, 3*a.n)
	touched := make([]bool, a.g*a.g)

	for step := 0; step < a.steps; step++ {
		ctx.CopyOutF64(pos, 0, p)
		for i := range partial {
			partial[i] = 0
		}
		for i := range touched {
			touched[i] = false
		}

		pairs := 0
		for cy := r0; cy < r1; cy++ {
			for cx := 0; cx < a.g; cx++ {
				c := cy*a.g + cx
				pairs += a.cellPairs(c, p, partial, touched)
			}
		}
		ctx.Compute(float64(pairs) * pairOps)

		// Merge partial forces per touched cell under the cell lock.
		for c := 0; c < a.g*a.g; c++ {
			if !touched[c] {
				continue
			}
			ctx.Lock(lockBase + c)
			for s := a.start[c]; s < a.start[c+1]; s++ {
				ctx.AddF64(force, 3*s, partial[3*s])
				ctx.AddF64(force, 3*s+1, partial[3*s+1])
				ctx.AddF64(force, 3*s+2, partial[3*s+2])
			}
			ctx.Unlock(lockBase + c)
			ctx.Compute(float64(a.start[c+1]-a.start[c]) * 6)
		}
		ctx.Barrier()

		// Integrate my cells' molecules; clear their forces.
		for cy := r0; cy < r1; cy++ {
			for cx := 0; cx < a.g; cx++ {
				c := cy*a.g + cx
				for s := a.start[c]; s < a.start[c+1]; s++ {
					for d := 0; d < 3; d++ {
						f := ctx.F64(force, 3*s+d)
						ctx.SetF64(pos, 3*s+d, p[3*s+d]+dt*f)
						ctx.SetF64(force, 3*s+d, 0)
					}
				}
			}
		}
		ctx.Barrier()
	}
}

// cellPairs accumulates interactions of cell c with itself and its
// east/south neighbor cells (each pair of cells visited once), marking
// the cells whose molecules received force contributions.
func (a *App) cellPairs(c int, p, partial []float64, touched []bool) int {
	cy, cx := c/a.g, c%a.g
	pairs := 0
	// Within the cell: j > i.
	for si := a.start[c]; si < a.start[c+1]; si++ {
		for sj := si + 1; sj < a.start[c+1]; sj++ {
			addPair(p, partial, si, sj)
			pairs++
		}
	}
	if a.start[c+1] > a.start[c] {
		touched[c] = true
	}
	// Neighbor cells (east, south-west, south, south-east): each
	// unordered cell pair handled exactly once.
	for _, d := range [][2]int{{1, 0}, {-1, 1}, {0, 1}, {1, 1}} {
		nx, ny := cx+d[0], cy+d[1]
		if nx < 0 || nx >= a.g || ny >= a.g {
			continue
		}
		nc := ny*a.g + nx
		for si := a.start[c]; si < a.start[c+1]; si++ {
			for sj := a.start[nc]; sj < a.start[nc+1]; sj++ {
				addPair(p, partial, si, sj)
				pairs++
			}
		}
		if a.start[nc+1] > a.start[nc] && a.start[c+1] > a.start[c] {
			touched[c] = true
			touched[nc] = true
		}
	}
	return pairs
}

func addPair(p, partial []float64, i, j int) {
	dx := p[3*j] - p[3*i]
	dy := p[3*j+1] - p[3*i+1]
	dz := p[3*j+2] - p[3*i+2]
	r2 := dx*dx + dy*dy + dz*dz + 0.1
	inv := 1 / (r2 * r2)
	partial[3*i] += dx * inv
	partial[3*i+1] += dy * inv
	partial[3*i+2] += dz * inv
	partial[3*j] -= dx * inv
	partial[3*j+1] -= dy * inv
	partial[3*j+2] -= dz * inv
}

// Compare validates positions and forces with tolerance (merge order).
func (a *App) Compare(par, seq *app.Workspace) error {
	if err := app.CompareF64Tolerance(par, seq, "pos", 3*a.n, 1e-9); err != nil {
		return fmt.Errorf("watersp positions: %w", err)
	}
	if err := app.CompareF64Tolerance(par, seq, "force", 3*a.n, 1e-6); err != nil {
		return fmt.Errorf("watersp forces: %w", err)
	}
	return nil
}
