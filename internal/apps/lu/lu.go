// Package lu is the reproduction of the SPLASH-2 LU-contiguous kernel:
// blocked dense LU factorization without pivoting, with each B×B block
// stored contiguously (the "contiguous" restructuring that avoids false
// sharing at page granularity). Blocks are owner-computed on a 2-D
// scatter; barriers separate the factor/perimeter/interior phases of
// each step. There are no locks.
package lu

import (
	"genima/internal/app"
	"genima/internal/memory"
)

// App is one LU problem instance.
type App struct {
	n  int // matrix dimension
	b  int // block size
	nb int // blocks per side
}

// New creates an n×n LU factorization with b×b blocks (b must divide n).
func New(n, b int) *App {
	if n%b != 0 || n < 2*b {
		panic("lu: b must divide n and n >= 2b")
	}
	return &App{n: n, b: b, nb: n / b}
}

// Name implements app.App.
func (a *App) Name() string { return "lu" }

// Ops implements app.App.
func (a *App) Ops() float64 {
	nf := float64(a.n)
	return 2.0 / 3.0 * nf * nf * nf
}

// N returns the matrix dimension.
func (a *App) N() int { return a.n }

// blockOff returns the element offset of block (i, j) in block-major
// storage.
func (a *App) blockOff(i, j int) int { return (i*a.nb + j) * a.b * a.b }

// owner returns the processor that owns block (i, j): a 2-D scatter.
func (a *App) owner(i, j, np int) int { return (i*a.nb + j) % np }

// Setup allocates the block-major matrix, diagonally dominant so the
// factorization is stable without pivoting.
func (a *App) Setup(ws *app.Workspace) {
	mat := ws.Alloc("mat", 8*a.n*a.n, memory.Blocked)
	seed := uint64(12345)
	for bi := 0; bi < a.nb; bi++ {
		for bj := 0; bj < a.nb; bj++ {
			off := a.blockOff(bi, bj)
			for x := 0; x < a.b; x++ {
				for y := 0; y < a.b; y++ {
					seed = seed*6364136223846793005 + 1442695040888963407
					v := float64(seed>>40) / float64(1<<24)
					if bi == bj && x == y {
						v += float64(a.n)
					}
					ws.SetF64(mat, off+x*a.b+y, v)
				}
			}
		}
	}
}

// Run factors the matrix in place.
func (a *App) Run(ctx *app.Ctx) {
	mat := ctx.Workspace().Region("mat")
	id, np := ctx.ID(), ctx.NProc()
	b := a.b
	bb := b * b
	diag := make([]float64, bb)
	blk := make([]float64, bb)
	left := make([]float64, bb)
	up := make([]float64, bb)

	for k := 0; k < a.nb; k++ {
		// Factor the diagonal block.
		if a.owner(k, k, np) == id {
			ctx.CopyOutF64(mat, a.blockOff(k, k), diag)
			factorDiag(diag, b)
			ctx.CopyInF64(mat, a.blockOff(k, k), diag)
			ctx.Compute(float64(b*b*b) / 3)
		}
		ctx.Barrier()

		// Perimeter: column blocks below and row blocks right of (k,k).
		ctx.CopyOutF64(mat, a.blockOff(k, k), diag)
		for i := k + 1; i < a.nb; i++ {
			if a.owner(i, k, np) == id {
				ctx.CopyOutF64(mat, a.blockOff(i, k), blk)
				solveRight(blk, diag, b) // blk = blk * U(k,k)^-1
				ctx.CopyInF64(mat, a.blockOff(i, k), blk)
				ctx.Compute(float64(b*b*b) / 2)
			}
			if a.owner(k, i, np) == id {
				ctx.CopyOutF64(mat, a.blockOff(k, i), blk)
				solveLeft(blk, diag, b) // blk = L(k,k)^-1 * blk
				ctx.CopyInF64(mat, a.blockOff(k, i), blk)
				ctx.Compute(float64(b*b*b) / 2)
			}
		}
		ctx.Barrier()

		// Interior update: A[i][j] -= A[i][k] * A[k][j].
		for i := k + 1; i < a.nb; i++ {
			for j := k + 1; j < a.nb; j++ {
				if a.owner(i, j, np) != id {
					continue
				}
				ctx.CopyOutF64(mat, a.blockOff(i, k), left)
				ctx.CopyOutF64(mat, a.blockOff(k, j), up)
				ctx.CopyOutF64(mat, a.blockOff(i, j), blk)
				multiplySub(blk, left, up, b)
				ctx.CopyInF64(mat, a.blockOff(i, j), blk)
				ctx.Compute(2 * float64(b*b*b))
			}
		}
		ctx.Barrier()
	}
}

// factorDiag performs an in-place unblocked LU (L unit-diagonal) of a
// b×b block.
func factorDiag(d []float64, b int) {
	for k := 0; k < b; k++ {
		pivot := d[k*b+k]
		for i := k + 1; i < b; i++ {
			d[i*b+k] /= pivot
			lik := d[i*b+k]
			for j := k + 1; j < b; j++ {
				d[i*b+j] -= lik * d[k*b+j]
			}
		}
	}
}

// solveRight computes blk = blk * U^-1 where U is the upper triangle of
// the factored diagonal block.
func solveRight(blk, diag []float64, b int) {
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			s := blk[i*b+j]
			for k := 0; k < j; k++ {
				s -= blk[i*b+k] * diag[k*b+j]
			}
			blk[i*b+j] = s / diag[j*b+j]
		}
	}
}

// solveLeft computes blk = L^-1 * blk where L is the unit lower triangle
// of the factored diagonal block.
func solveLeft(blk, diag []float64, b int) {
	for j := 0; j < b; j++ {
		for i := 0; i < b; i++ {
			s := blk[i*b+j]
			for k := 0; k < i; k++ {
				s -= diag[i*b+k] * blk[k*b+j]
			}
			blk[i*b+j] = s
		}
	}
}

// multiplySub computes blk -= left * up.
func multiplySub(blk, left, up []float64, b int) {
	for i := 0; i < b; i++ {
		for k := 0; k < b; k++ {
			l := left[i*b+k]
			if l == 0 {
				continue
			}
			for j := 0; j < b; j++ {
				blk[i*b+j] -= l * up[k*b+j]
			}
		}
	}
}
