package lu

import (
	"math"
	"testing"

	"genima/internal/app"
	"genima/internal/core"
	"genima/internal/topo"
)

func cfg() topo.Config {
	c := topo.Default()
	c.Nodes = 4
	c.ProcsPerNode = 2
	return c
}

// Rebuild A from the computed L and U factors and compare with the
// original matrix: proves the factorization is a real LU.
func TestFactorizationReconstructs(t *testing.T) {
	a := New(64, 16)
	// Original matrix.
	orig := app.NewWorkspace(func() *topo.Config { c := cfg(); return &c }())
	a.Setup(orig)
	matO := orig.Region("mat")

	_, ws, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	mat := ws.Region("mat")

	get := func(w *app.Workspace, r interface{ End() int }, i, j int) float64 {
		bi, bj := i/a.b, j/a.b
		x, y := i%a.b, j%a.b
		off := a.blockOff(bi, bj) + x*a.b + y
		if w == orig {
			return orig.F64(matO, off)
		}
		return ws.F64(mat, off)
	}
	n := a.n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// (L*U)[i][j]
			var s float64
			for k := 0; k <= min(i, j); k++ {
				var l float64
				if k == i {
					l = 1
				} else if k < i {
					l = get(ws, mat, i, k)
				}
				u := get(ws, mat, k, j)
				if k <= j {
					s += l * u
				}
			}
			want := get(orig, matO, i, j)
			if math.Abs(s-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("LU reconstruction at (%d,%d): %g vs %g", i, j, s, want)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestParallelMatchesSequential(t *testing.T) {
	a := New(64, 16)
	_, seqWS, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []core.Kind{core.Base, core.GeNIMA} {
		_, parWS, err := app.RunSVM(cfg(), k, a)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := app.Validate(a, parWS, seqWS); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
	_, hwWS, err := app.RunHW(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(a, hwWS, seqWS); err != nil {
		t.Errorf("hwdsm: %v", err)
	}
}

func TestBadBlockSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("indivisible block size did not panic")
		}
	}()
	New(100, 16)
}
