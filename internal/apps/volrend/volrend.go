// Package volrend reproduces the restructured Volrend application: a
// ray-casting volume renderer with task stealing. Image tiles are the
// task unit; each processor owns a queue of tiles (the restructured
// initial assignment that improves load balance), and an idle processor
// steals from the busiest victim under the victim's queue lock. The
// paper notes GeNIMA makes stealing effective for the first time, since
// it slashes the cost of the queue locks.
package volrend

import (
	"fmt"

	"genima/internal/app"
	"genima/internal/memory"
)

// App is one Volrend instance.
type App struct {
	vol  int // volume side (vol³ voxels)
	img  int // image side in pixels
	tile int // tile side in pixels
}

// New creates a renderer for a vol³ volume onto an img×img image with
// tile×tile tiles.
func New(vol, img, tile int) *App {
	if vol < 8 || img < tile || img%tile != 0 {
		panic("volrend: need vol >= 8 and tile | img")
	}
	return &App{vol: vol, img: img, tile: tile}
}

// Name implements app.App.
func (a *App) Name() string { return "volrend" }

// Ops implements app.App.
func (a *App) Ops() float64 { return float64(a.img) * float64(a.img) * float64(a.vol) * 25 }

func (a *App) tiles() int { return (a.img / a.tile) * (a.img / a.tile) }

const queueLockBase = 9000

// Setup allocates the read-only volume, the output image, and the
// per-processor task queues (head/tail index pairs). Density is a
// deterministic blobby field, denser toward one corner so tile costs
// are imbalanced and stealing matters.
func (a *App) Setup(ws *app.Workspace) {
	volR := ws.Alloc("volume", 4*a.vol*a.vol*a.vol, memory.RoundRobin)
	ws.Alloc("image", 8*a.img*a.img, memory.Blocked)
	// queues: up to 64 processors × (head, tail).
	ws.Alloc("queues", 4*2*64, memory.RoundRobin)
	for z := 0; z < a.vol; z++ {
		for y := 0; y < a.vol; y++ {
			for x := 0; x < a.vol; x++ {
				// Blob density: high near the (0,0,0) corner.
				d := (x*x + y*y + z*z) * 255 / (3 * a.vol * a.vol)
				v := 255 - d
				if v < 0 {
					v = 0
				}
				// Sparse empty shells create cost imbalance.
				if (x+y+z)%7 == 0 {
					v = 0
				}
				ws.SetI32(volR, (z*a.vol+y)*a.vol+x, int32(v))
			}
		}
	}
}

// Run renders: drain my queue, then steal.
func (a *App) Run(ctx *app.Ctx) {
	ws := ctx.Workspace()
	queues := ws.Region("queues")
	id, np := ctx.ID(), ctx.NProc()
	nt := a.tiles()

	// Initialize my queue bounds: a contiguous tile range.
	ctx.Lock(queueLockBase + id)
	ctx.SetI32(queues, 2*id, int32(id*nt/np))       // head
	ctx.SetI32(queues, 2*id+1, int32((id+1)*nt/np)) // tail
	ctx.Unlock(queueLockBase + id)
	ctx.Barrier()

	// Drain own queue from the head.
	for {
		ctx.Lock(queueLockBase + id)
		h := ctx.I32(queues, 2*id)
		t := ctx.I32(queues, 2*id+1)
		if h < t {
			ctx.SetI32(queues, 2*id, h+1)
		}
		ctx.Unlock(queueLockBase + id)
		if h >= t {
			break
		}
		a.renderTile(ctx, int(h))
	}

	// Steal from the tail of other queues, round robin.
	for victim := (id + 1) % np; victim != id; victim = (victim + 1) % np {
		for {
			ctx.Lock(queueLockBase + victim)
			h := ctx.I32(queues, 2*victim)
			t := ctx.I32(queues, 2*victim+1)
			if h < t {
				ctx.SetI32(queues, 2*victim+1, t-1)
			}
			ctx.Unlock(queueLockBase + victim)
			if h >= t {
				break
			}
			a.renderTile(ctx, int(t-1))
		}
	}
	ctx.Barrier()
}

// renderTile casts one ray per pixel of the tile through the volume.
func (a *App) renderTile(ctx *app.Ctx, tileIdx int) {
	ws := ctx.Workspace()
	volR := ws.Region("volume")
	img := ws.Region("image")
	tilesPerRow := a.img / a.tile
	ty, tx := tileIdx/tilesPerRow, tileIdx%tilesPerRow

	ops := 0
	for py := ty * a.tile; py < (ty+1)*a.tile; py++ {
		for px := tx * a.tile; px < (tx+1)*a.tile; px++ {
			// Map pixel to a volume column.
			vx := px * a.vol / a.img
			vy := py * a.vol / a.img
			ctx.ReadRange(volR, 4*((0*a.vol+vy)*a.vol+vx), 4)
			var intensity, transparency float64 = 0, 1
			for vz := 0; vz < a.vol && transparency > 0.02; vz++ {
				d := float64(ctx.I32(volR, (vz*a.vol+vy)*a.vol+vx)) / 255
				if d == 0 {
					ops += 2
					continue // empty space leap
				}
				alpha := d * 0.25
				intensity += transparency * alpha * d
				transparency *= 1 - alpha
				// Real Volrend does trilinear interpolation, gradient
				// shading and compositing per sample (~25 ops).
				ops += 25
			}
			ctx.SetF64(img, py*a.img+px, intensity)
		}
	}
	ctx.Compute(float64(ops))
}

// Compare checks the image exactly (pixel values are independent of
// which processor rendered them); queue indices are scratch.
func (a *App) Compare(par, seq *app.Workspace) error {
	rp, rs := par.Region("image"), seq.Region("image")
	for i := 0; i < a.img*a.img; i++ {
		if p, s := par.F64(rp, i), seq.F64(rs, i); p != s {
			return fmt.Errorf("volrend: pixel %d = %g, want %g", i, p, s)
		}
	}
	return nil
}
