package volrend

import (
	"testing"

	"genima/internal/app"
	"genima/internal/core"
	"genima/internal/topo"
)

func cfg() topo.Config {
	c := topo.Default()
	c.Nodes = 4
	c.ProcsPerNode = 2
	return c
}

func TestParallelMatchesSequential(t *testing.T) {
	a := New(16, 32, 8)
	_, seqWS, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range core.Kinds() {
		_, parWS, err := app.RunSVM(cfg(), k, a)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := app.Validate(a, parWS, seqWS); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
	_, hwWS, err := app.RunHW(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(a, hwWS, seqWS); err != nil {
		t.Errorf("hwdsm: %v", err)
	}
}

func TestImageNonTrivial(t *testing.T) {
	a := New(16, 32, 8)
	_, ws, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	img := ws.Region("image")
	nonzero := 0
	for i := 0; i < 32*32; i++ {
		if ws.F64(img, i) > 0 {
			nonzero++
		}
	}
	if nonzero < 32*32/4 {
		t.Errorf("only %d of %d pixels lit; volume render looks broken", nonzero, 32*32)
	}
}

func TestStealingHappens(t *testing.T) {
	// With an imbalanced volume, some processor must exhaust its own
	// queue and steal: total lock ops must exceed the minimum (one
	// init + one pop per tile).
	a := New(16, 32, 8)
	res, _, err := app.RunSVM(cfg(), core.GeNIMA, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acct.LockOps == 0 {
		t.Error("no remote lock ops — task queues never contended")
	}
}
