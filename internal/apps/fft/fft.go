// Package fft is the reproduction of the SPLASH-2 FFT kernel: a
// 1-D complex FFT of n = 2^m points computed with the transpose-based
// six-step algorithm over a √n × √n matrix. All-to-all communication in
// the transpose phases gives the high inherent bandwidth demand and the
// coarse-grained access pattern the paper describes; there are no locks,
// only barriers between phases.
package fft

import (
	"math"

	"genima/internal/app"
	"genima/internal/memory"
)

// App is one FFT problem instance.
type App struct {
	m    int // log2(n); must be even
	n    int // points
	side int // matrix side = 2^(m/2)

	sc []procScratch // per-processor scratch, reused across phases
}

// procScratch holds one processor's reusable buffers. Every buffer is
// fully overwritten before it is read, so reuse cannot leak state
// between phases or runs.
type procScratch struct {
	block []float64
	seg   []float64
	row   []float64
}

// scratch returns the calling processor's scratch slot. The table is
// sized in Setup, before the processors start: sizing it lazily here
// would race when processors on different simulation workers hit their
// first phase concurrently.
func (a *App) scratch(ctx *app.Ctx) *procScratch {
	return &a.sc[ctx.ID()]
}

// grow returns s resized to n elements, reallocating only when the
// capacity is insufficient.
func grow(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

// New creates an n = 2^m point FFT (m must be even).
func New(m int) *App {
	if m%2 != 0 || m < 4 {
		panic("fft: m must be even and >= 4")
	}
	return &App{m: m, n: 1 << m, side: 1 << (m / 2)}
}

// Name implements app.App.
func (a *App) Name() string { return "fft" }

// Ops implements app.App.
func (a *App) Ops() float64 { return 5 * float64(a.n) * float64(a.m) }

// MemIntensity marks FFT as memory-bus bound within an SMP (§3.4).
func (a *App) MemIntensity() float64 { return 1.0 }

// Points returns the problem size.
func (a *App) Points() int { return a.n }

// Setup allocates the data and transpose-scratch matrices, homed in
// blocked row panels matching the processor partitioning.
func (a *App) Setup(ws *app.Workspace) {
	if np := ws.Cfg.NumProcs(); len(a.sc) != np {
		a.sc = make([]procScratch, np)
	}
	bytes := 16 * a.n // complex128 per point
	data := ws.Alloc("data", bytes, memory.Blocked)
	ws.Alloc("trans", bytes, memory.Blocked)
	// Deterministic pseudo-random input.
	seed := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < a.n; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		re := float64(int32(seed>>33)) / float64(1<<31)
		seed = seed*6364136223846793005 + 1442695040888963407
		im := float64(int32(seed>>33)) / float64(1<<31)
		ws.SetF64(data, 2*i, re)
		ws.SetF64(data, 2*i+1, im)
	}
}

// Run implements the six-step FFT; the final result lands in "trans" in
// natural order.
func (a *App) Run(ctx *app.Ctx) {
	data := regionOf(ctx, "data")
	trans := regionOf(ctx, "trans")

	a.transpose(ctx, data, trans)
	ctx.Barrier()
	a.fftRows(ctx, trans, true)
	ctx.Barrier()
	a.transpose(ctx, trans, data)
	ctx.Barrier()
	a.fftRows(ctx, data, false)
	ctx.Barrier()
	a.transpose(ctx, data, trans)
	ctx.Barrier()
}

func regionOf(ctx *app.Ctx, name string) memory.Region {
	return ctx.Workspace().Region(name)
}

// rowRange gives this processor's block of matrix rows.
func (a *App) rowRange(ctx *app.Ctx) (int, int) {
	id, np := ctx.ID(), ctx.NProc()
	return id * a.side / np, (id + 1) * a.side / np
}

// transpose writes dst[r][c] = src[c][r] for this processor's dst rows,
// using the blocked algorithm: for each source row, bulk-read the
// segment covering our destination rows, then scatter locally.
func (a *App) transpose(ctx *app.Ctx, src, dst memory.Region) {
	r0, r1 := a.rowRange(ctx)
	myRows := r1 - r0
	if myRows == 0 {
		return
	}
	side := a.side
	sc := a.scratch(ctx)
	block := grow(&sc.block, myRows*2*side) // dst rows r0..r1, full width
	seg := grow(&sc.seg, 2*myRows)
	for c := 0; c < side; c++ {
		// src row c, columns r0..r1 — contiguous in src.
		ctx.CopyOutF64(src, 2*(c*side+r0), seg)
		for r := 0; r < myRows; r++ {
			block[r*2*side+2*c] = seg[2*r]
			block[r*2*side+2*c+1] = seg[2*r+1]
		}
	}
	ctx.Compute(float64(myRows*side) * 2)
	for r := 0; r < myRows; r++ {
		ctx.CopyInF64(dst, 2*(r0+r)*side, block[r*2*side:(r+1)*2*side])
	}
}

// fftRows runs an in-place radix-2 FFT on each of this processor's rows
// (rows are local after the preceding transpose); with twiddle, each
// element is additionally scaled by W_n^(row·col) afterwards.
func (a *App) fftRows(ctx *app.Ctx, reg memory.Region, twiddle bool) {
	r0, r1 := a.rowRange(ctx)
	side := a.side
	row := grow(&a.scratch(ctx).row, 2*side)
	for r := r0; r < r1; r++ {
		ctx.CopyOutF64(reg, 2*r*side, row)
		fftInPlace(row)
		if twiddle {
			applyTwiddle(row, r, a.n)
		}
		ctx.CopyInF64(reg, 2*r*side, row)
		ops := 5 * float64(side) * math.Log2(float64(side))
		if twiddle {
			ops += 6 * float64(side)
		}
		ctx.Compute(ops)
	}
}

// fftInPlace computes an iterative radix-2 DIT FFT over interleaved
// (re, im) pairs, length must be a power of two.
func fftInPlace(row []float64) {
	n := len(row) / 2
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			row[2*i], row[2*j] = row[2*j], row[2*i]
			row[2*i+1], row[2*j+1] = row[2*j+1], row[2*i+1]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			curRe, curIm := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				i0, i1 := start+k, start+k+half
				uRe, uIm := row[2*i0], row[2*i0+1]
				vRe := row[2*i1]*curRe - row[2*i1+1]*curIm
				vIm := row[2*i1]*curIm + row[2*i1+1]*curRe
				row[2*i0], row[2*i0+1] = uRe+vRe, uIm+vIm
				row[2*i1], row[2*i1+1] = uRe-vRe, uIm-vIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
}

// applyTwiddle multiplies row element c by W_n^(r·c).
func applyTwiddle(row []float64, r, n int) {
	cols := len(row) / 2
	for c := 0; c < cols; c++ {
		ang := -2 * math.Pi * float64(r) * float64(c) / float64(n)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		re, im := row[2*c], row[2*c+1]
		row[2*c] = re*wRe - im*wIm
		row[2*c+1] = re*wIm + im*wRe
	}
}
