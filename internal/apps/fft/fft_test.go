package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"genima/internal/app"
	"genima/internal/core"
	"genima/internal/topo"
)

func cfg() topo.Config {
	c := topo.Default()
	c.Nodes = 4
	c.ProcsPerNode = 2
	return c
}

// The six-step pipeline must compute the actual DFT: check the
// sequential run against a naive O(n²) DFT.
func TestMatchesNaiveDFT(t *testing.T) {
	a := New(8) // 256 points
	_, ws, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the input the Setup generated.
	in := make([]complex128, a.n)
	seed := uint64(0x9E3779B97F4A7C15)
	for i := range in {
		seed = seed*6364136223846793005 + 1442695040888963407
		re := float64(int32(seed>>33)) / float64(1<<31)
		seed = seed*6364136223846793005 + 1442695040888963407
		im := float64(int32(seed>>33)) / float64(1<<31)
		in[i] = complex(re, im)
	}
	trans := ws.Region("trans")
	for k := 0; k < a.n; k++ {
		var want complex128
		for j := 0; j < a.n; j++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(a.n)
			want += in[j] * cmplx.Exp(complex(0, ang))
		}
		got := complex(ws.F64(trans, 2*k), ws.F64(trans, 2*k+1))
		if cmplx.Abs(got-want) > 1e-6*(1+cmplx.Abs(want)) {
			t.Fatalf("X[%d] = %v, want %v", k, got, want)
		}
	}
}

func TestFFTInPlaceRoundTrip(t *testing.T) {
	// FFT of a delta is all-ones.
	row := make([]float64, 2*16)
	row[0] = 1
	fftInPlace(row)
	for c := 0; c < 16; c++ {
		if math.Abs(row[2*c]-1) > 1e-12 || math.Abs(row[2*c+1]) > 1e-12 {
			t.Fatalf("delta FFT element %d = (%g,%g)", c, row[2*c], row[2*c+1])
		}
	}
}

func TestParallelMatchesSequentialAllProtocols(t *testing.T) {
	a := New(10) // 1024 points: 32x32
	_, seqWS, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range core.Kinds() {
		_, parWS, err := app.RunSVM(cfg(), k, a)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := app.Validate(a, parWS, seqWS); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

func TestParallelMatchesSequentialHW(t *testing.T) {
	a := New(10)
	_, seqWS, err := app.RunSeq(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	_, parWS, err := app.RunHW(cfg(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(a, parWS, seqWS); err != nil {
		t.Error(err)
	}
}

func TestBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd m did not panic")
		}
	}()
	New(9)
}
