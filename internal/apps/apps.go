// Package apps assembles the paper's application suite (Table 1): the
// ten workloads at test- and benchmark-scale problem sizes. Paper-scale
// inputs (4M-point FFT, 4096² LU, ...) are impractical inside a
// discrete-event simulation; the benchmark sizes keep every sharing
// pattern while shrinking data so a full protocol sweep runs in
// seconds. EXPERIMENTS.md records the scaling next to each result.
package apps

import (
	"genima/internal/app"
	"genima/internal/apps/barnes"
	"genima/internal/apps/barrierbench"
	"genima/internal/apps/fft"
	"genima/internal/apps/lu"
	"genima/internal/apps/ocean"
	"genima/internal/apps/radix"
	"genima/internal/apps/raytrace"
	"genima/internal/apps/svmkv"
	"genima/internal/apps/volrend"
	"genima/internal/apps/waterns"
	"genima/internal/apps/watersp"
)

// Scale selects problem sizes.
type Scale int

// Problem-size scales.
const (
	// Test sizes run the whole suite in well under a second per
	// protocol; used by integration tests.
	Test Scale = iota
	// Bench sizes drive the table/figure regeneration.
	Bench
)

// Entry pairs an application with the paper's metadata for it.
type Entry struct {
	App app.App
	// PaperName is the application's name in the paper's tables.
	PaperName string
	// PaperSize is the problem size the paper ran.
	PaperSize string
	// OurSize describes the scaled-down problem used here.
	OurSize string
}

// Suite returns the ten applications in the paper's table order.
func Suite(s Scale) []Entry {
	if s == Test {
		return []Entry{
			{fft.New(10), "FFT", "4M points", "1K points"},
			{lu.New(64, 16), "LU-contiguous", "4096x4096 matrix", "64x64, B=16"},
			{ocean.New(32, 2), "Ocean-rowwise", "514x514 ocean", "34x34, 2 iters"},
			{waterns.New(48, 1), "Water-nsquared", "4096 molecules", "48 molecules, 1 step"},
			{watersp.New(64, 4, 1), "Water-spatial", "4096 molecules", "64 molecules, 4x4 cells"},
			{radix.New(2048, 2), "Radix-local", "4M keys", "2K keys, 2 passes"},
			{volrend.New(16, 32, 8), "Volrend-stealing", "256x256x256 cst head", "16^3 volume, 32^2 image"},
			{raytrace.New(32, 8, 12), "Raytrace", "256x256 car", "32^2 image, 12 spheres"},
			{barnes.NewOriginal(96, 3, 1), "Barnes-original", "32K particles", "96 bodies, depth 3"},
			{barnes.NewSpatial(128, 3, 1), "Barnes-spatial", "128K particles", "128 bodies, depth 3"},
		}
	}
	return []Entry{
		{fft.New(16), "FFT", "4M points", "64K points (256x256)"},
		{lu.New(512, 32), "LU-contiguous", "4096x4096 matrix", "512x512, B=32"},
		{ocean.New(256, 8), "Ocean-rowwise", "514x514 ocean", "258x258, 8 iters"},
		{waterns.New(1024, 1), "Water-nsquared", "4096 molecules", "1K molecules, 1 step"},
		{watersp.New(1024, 8, 2), "Water-spatial", "4096 molecules", "1K molecules, 8x8 cells"},
		{radix.New(262144, 2), "Radix-local", "4M keys", "256K keys, 2 passes"},
		{volrend.New(48, 96, 8), "Volrend-stealing", "256x256x256 cst head", "48^3 volume, 96^2 image"},
		{raytrace.New(128, 8, 32), "Raytrace", "256x256 car", "128^2 image, 32 spheres"},
		{barnes.NewOriginal(1024, 4, 2), "Barnes-original", "32K particles", "1K bodies, depth 4"},
		{barnes.NewSpatial(2048, 5, 2), "Barnes-spatial", "128K particles", "2K bodies, depth 5"},
	}
}

// ByName returns the suite entry with the given app name. It also
// resolves the non-paper workloads that Suite/Names deliberately omit:
// the synthetic "barrierbench" microbenchmark (scalesweep experiment)
// and the "svmkv" request-serving workload (serve experiment, soak
// rotation).
func ByName(s Scale, name string) (Entry, bool) {
	if name == "barrierbench" {
		r := 8
		if s == Bench {
			r = 16
		}
		return Entry{barrierbench.New(r), "Barrier-bench", "n/a", "synthetic"}, true
	}
	if name == "svmkv" {
		p := svmkv.DefaultParams(s == Bench)
		return Entry{svmkv.New(p), "SVM-KV", "n/a", "open-loop KV serving"}, true
	}
	for _, e := range Suite(s) {
		if e.App.Name() == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Names lists the app names in suite order.
func Names(s Scale) []string {
	var out []string
	for _, e := range Suite(s) {
		out = append(out, e.App.Name())
	}
	return out
}
