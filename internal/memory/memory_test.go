package memory

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"genima/internal/sim"
)

func TestAllocPageAlignment(t *testing.T) {
	s := NewSpace(4096, 4, 4)
	r1 := s.Alloc("a", 100, RoundRobin)
	r2 := s.Alloc("b", 5000, RoundRobin)
	if r1.Base != 0 || r1.Size != 4096 {
		t.Errorf("r1 = %+v", r1)
	}
	if r2.Base != 4096 || r2.Size != 8192 {
		t.Errorf("r2 = %+v", r2)
	}
	if s.NPages() != 3 {
		t.Errorf("NPages = %d, want 3", s.NPages())
	}
	if len(s.Regions()) != 2 {
		t.Errorf("regions = %d", len(s.Regions()))
	}
}

func TestHomeRoundRobin(t *testing.T) {
	s := NewSpace(4096, 4, 4)
	s.Alloc("a", 8*4096, RoundRobin)
	for p := 0; p < 8; p++ {
		if s.Home(p) != p%4 {
			t.Errorf("home(%d) = %d, want %d", p, s.Home(p), p%4)
		}
	}
}

func TestHomeBlocked(t *testing.T) {
	s := NewSpace(4096, 4, 4)
	s.Alloc("a", 8*4096, Blocked)
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for p, w := range want {
		if s.Home(p) != w {
			t.Errorf("home(%d) = %d, want %d", p, s.Home(p), w)
		}
	}
}

func TestPageRange(t *testing.T) {
	s := NewSpace(4096, 4, 2)
	s.Alloc("a", 16*4096, RoundRobin)
	cases := []struct{ addr, size, f, l int }{
		{0, 1, 0, 0},
		{0, 4096, 0, 0},
		{0, 4097, 0, 1},
		{4095, 2, 0, 1},
		{8192, 4096 * 3, 2, 4},
	}
	for _, c := range cases {
		f, l := s.PageRange(c.addr, c.size)
		if f != c.f || l != c.l {
			t.Errorf("PageRange(%d,%d) = %d,%d want %d,%d", c.addr, c.size, f, l, c.f, c.l)
		}
	}
}

func TestTwinDiffApplyRoundTrip(t *testing.T) {
	s := NewSpace(256, 4, 2)
	s.Alloc("a", 256, RoundRobin)
	m := NewNodeMem(s)
	pg := m.Page(0)
	for i := range pg {
		pg[i] = byte(i)
	}
	m.MakeTwin(0)
	// Modify two separate spans.
	copy(pg[8:16], []byte{9, 9, 9, 9, 9, 9, 9, 9})
	pg[100] = 77
	runs := m.Diff(0)
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want 2 (%v)", len(runs), runs)
	}
	// Apply onto a copy of the original — must reproduce the new page.
	orig := make([]byte, 256)
	for i := range orig {
		orig[i] = byte(i)
	}
	ApplyRuns(orig, runs)
	if !bytes.Equal(orig, pg) {
		t.Error("diff+apply did not reproduce the modified page")
	}
}

func TestDiffWordGranularity(t *testing.T) {
	cur := make([]byte, 32)
	old := make([]byte, 32)
	cur[5] = 1 // one byte in word 1 -> whole word [4,8) is a run
	runs := DiffWords(cur, old, 4)
	if len(runs) != 1 || runs[0].Off != 4 || len(runs[0].Data) != 4 {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestDiffAdjacentWordsCoalesce(t *testing.T) {
	cur := make([]byte, 32)
	old := make([]byte, 32)
	cur[4], cur[8] = 1, 1 // words 1 and 2 both dirty -> single run [4,12)
	runs := DiffWords(cur, old, 4)
	if len(runs) != 1 || runs[0].Off != 4 || len(runs[0].Data) != 8 {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestDiffEmptyWhenClean(t *testing.T) {
	a := make([]byte, 64)
	if runs := DiffWords(a, make([]byte, 64), 4); len(runs) != 0 {
		t.Fatalf("clean page produced runs: %v", runs)
	}
}

func TestMakeTwinIdempotent(t *testing.T) {
	s := NewSpace(64, 4, 1)
	s.Alloc("a", 64, RoundRobin)
	m := NewNodeMem(s)
	pg := m.Page(0)
	m.MakeTwin(0)
	pg[0] = 42
	m.MakeTwin(0) // must not re-snapshot
	runs := m.Diff(0)
	if len(runs) != 1 {
		t.Fatalf("second MakeTwin overwrote the twin: runs=%v", runs)
	}
	m.DropTwin(0)
	if m.HasTwin(0) {
		t.Error("DropTwin left the twin")
	}
}

// Property: diff/apply round-trips any random page mutation.
func TestDiffApplyProperty(t *testing.T) {
	prop := func(seed int64, nMods uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 512
		old := make([]byte, size)
		rng.Read(old)
		cur := make([]byte, size)
		copy(cur, old)
		for i := 0; i < int(nMods); i++ {
			cur[rng.Intn(size)] = byte(rng.Intn(256))
		}
		runs := DiffWords(cur, old, 4)
		rebuilt := make([]byte, size)
		copy(rebuilt, old)
		ApplyRuns(rebuilt, runs)
		if !bytes.Equal(rebuilt, cur) {
			return false
		}
		// Runs must be disjoint, ordered, word-aligned.
		prevEnd := -1
		for _, r := range runs {
			if r.Off%4 != 0 || len(r.Data)%4 != 0 {
				return false
			}
			if r.Off <= prevEnd {
				return false
			}
			prevEnd = r.Off + len(r.Data) - 1
		}
		return RunsBytes(runs) >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneRunsIndependent(t *testing.T) {
	page := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	runs := []Run{{Off: 0, Data: page[0:4]}}
	cl := CloneRuns(runs)
	page[0] = 99
	if cl[0].Data[0] != 1 {
		t.Error("CloneRuns aliases the source page")
	}
}

func TestMprotectCoalescing(t *testing.T) {
	base, per := sim.Micro(12), sim.Micro(1.5)
	cost, calls := MprotectCost([]int{5, 3, 4}, base, per)
	if calls != 1 {
		t.Errorf("contiguous pages: calls = %d, want 1", calls)
	}
	if want := base + 2*per; cost != want {
		t.Errorf("cost = %d, want %d", cost, want)
	}

	cost, calls = MprotectCost([]int{1, 3, 5}, base, per)
	if calls != 3 || cost != 3*base {
		t.Errorf("scattered pages: calls=%d cost=%d", calls, cost)
	}

	cost, calls = MprotectCost(nil, base, per)
	if calls != 0 || cost != 0 {
		t.Errorf("empty: calls=%d cost=%d", calls, cost)
	}

	// Duplicates collapse.
	_, calls = MprotectCost([]int{7, 7, 7}, base, per)
	if calls != 1 {
		t.Errorf("duplicates: calls = %d, want 1", calls)
	}
}

// Property: coalesced mprotect never costs more than one call per page.
func TestMprotectCostProperty(t *testing.T) {
	base, per := sim.Micro(12), sim.Micro(1.5)
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		pages := make([]int, len(raw))
		for i, v := range raw {
			pages[i] = int(v)
		}
		cost, calls := MprotectCost(pages, base, per)
		naive := sim.Time(len(raw)) * base
		return calls >= 1 && calls <= len(raw) && cost <= naive && cost > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInstallCopy(t *testing.T) {
	s := NewSpace(64, 4, 1)
	s.Alloc("a", 64, RoundRobin)
	m := NewNodeMem(s)
	data := make([]byte, 64)
	data[10] = 5
	m.InstallCopy(0, data)
	data[10] = 9 // mutate source; node copy must be unaffected
	if m.Page(0)[10] != 5 {
		t.Error("InstallCopy aliased the source slice")
	}
	if !m.HasCopy(0) {
		t.Error("HasCopy false after install")
	}
}

func TestPageOfAndRegionEnd(t *testing.T) {
	s := NewSpace(4096, 4, 2)
	r := s.Alloc("a", 3*4096, RoundRobin)
	if s.PageOf(0) != 0 || s.PageOf(4095) != 0 || s.PageOf(4096) != 1 {
		t.Error("PageOf boundaries wrong")
	}
	if r.End() != 3*4096 {
		t.Errorf("End = %d", r.End())
	}
	if s.Nodes() != 2 {
		t.Errorf("Nodes = %d", s.Nodes())
	}
}

func TestAllocZeroSizePanics(t *testing.T) {
	s := NewSpace(4096, 4, 2)
	defer func() {
		if recover() == nil {
			t.Error("zero-size Alloc did not panic")
		}
	}()
	s.Alloc("bad", 0, RoundRobin)
}

func TestDiffWithoutTwinPanics(t *testing.T) {
	s := NewSpace(64, 4, 1)
	s.Alloc("a", 64, RoundRobin)
	m := NewNodeMem(s)
	defer func() {
		if recover() == nil {
			t.Error("Diff without twin did not panic")
		}
	}()
	m.Diff(0)
}

// diffWordsRef is the original word-by-word byte-loop DiffWords, the
// oracle for the chunked kernel. (One fix over the historical code: a
// trailing partial word is clamped at n instead of over-slicing into
// the buffer's spare capacity, matching the kernel.)
func diffWordsRef(cur, old []byte, wordSize int) []Run {
	if len(cur) != len(old) {
		panic("memory: DiffWords length mismatch")
	}
	var runs []Run
	n := len(cur)
	for off := 0; off < n; {
		for off < n && equalWord(cur, old, off, wordSize) {
			off += wordSize
		}
		if off >= n {
			break
		}
		start := off
		for off < n && !equalWord(cur, old, off, wordSize) {
			off += wordSize
		}
		if off > n {
			off = n
		}
		runs = append(runs, Run{Off: start, Data: cur[start:off]})
	}
	return runs
}

func runsEqual(a, b []Run) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Off != b[i].Off || !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

// TestDiffWordsMatchesReference is the testing/quick property test: the
// chunked kernel must be run-for-run identical to the byte loop for
// random page pairs, word sizes (dividing and not dividing 8), and
// lengths (including non-multiples of the word size).
func TestDiffWordsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, w := range []int{1, 2, 4, 8, 3, 16} {
			n := r.Intn(600)
			old := make([]byte, n)
			r.Read(old)
			cur := append([]byte(nil), old...)
			// Mutate a random sprinkle of bytes plus a dense burst, the
			// two shapes real diffs take.
			for i := 0; n > 0 && i < r.Intn(20); i++ {
				cur[r.Intn(n)] ^= byte(1 + r.Intn(255))
			}
			if n > 16 {
				start := r.Intn(n - 8)
				for i := start; i < start+8; i++ {
					cur[i] ^= 0xff
				}
			}
			got := DiffWords(cur, old, w)
			want := diffWordsRef(cur, old, w)
			if !runsEqual(got, want) {
				t.Logf("w=%d n=%d: got %d runs, want %d", w, n, len(got), len(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestDiffApplyRoundTrip: applying the diff of (cur, old) onto a copy of
// old must reproduce cur exactly — with both the fast and generic paths.
func TestDiffApplyRoundTrip(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, w := range []int{4, 8} {
			n := 64 * (1 + r.Intn(8))
			old := make([]byte, n)
			r.Read(old)
			cur := append([]byte(nil), old...)
			for i := 0; i < r.Intn(40); i++ {
				cur[r.Intn(n)] ^= byte(1 + r.Intn(255))
			}
			dst := append([]byte(nil), old...)
			ApplyRuns(dst, DiffWords(cur, old, w))
			if !bytes.Equal(dst, cur) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTwinPooling: DropTwin must recycle the twin buffer and MakeTwin
// must reuse it rather than allocating.
func TestTwinPooling(t *testing.T) {
	s := NewSpace(256, 4, 1)
	s.Alloc("a", 1024, RoundRobin)
	m := NewNodeMem(s)

	m.Page(0)[0] = 1
	m.MakeTwin(0)
	first := &m.twins[0][0]
	m.DropTwin(0)
	// A Get miss carves a chunk of buffers, so the pool holds the
	// dropped twin plus its chunk-mates; LIFO order guarantees the
	// dropped twin is reused first.
	if m.pool.Len() < 1 {
		t.Fatalf("pool empty after DropTwin")
	}
	m.Page(1)[0] = 2
	m.MakeTwin(1)
	if &m.twins[1][0] != first {
		t.Error("MakeTwin did not reuse the recycled buffer")
	}
	if m.pool.Allocs != 1 || m.pool.Hits != 1 {
		t.Errorf("pool stats = %d allocs / %d hits, want 1/1", m.pool.Allocs, m.pool.Hits)
	}
	// The recycled buffer must still produce correct twin contents.
	if m.twins[1][0] != 2 {
		t.Error("reused twin does not snapshot the page")
	}
}

// TestBufPoolWrongSizeDropped: foreign-size buffers must not enter the pool.
func TestBufPoolWrongSizeDropped(t *testing.T) {
	p := NewBufPool(64)
	p.Put(make([]byte, 63))
	if p.Len() != 0 {
		t.Fatal("wrong-size buffer entered the pool")
	}
	b := p.Get()
	if len(b) != 64 {
		t.Fatalf("Get returned %d bytes, want 64", len(b))
	}
}

// TestCloneRunsSharedBacking: clones must survive mutation of the source
// page even with the shared backing buffer.
func TestCloneRunsSharedBacking(t *testing.T) {
	cur := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	old := []byte{1, 2, 0, 0, 5, 6, 0, 0}
	runs := DiffWords(cur, old, 2)
	clone := CloneRuns(runs)
	cur[2], cur[6] = 99, 99
	if clone[0].Data[0] != 3 || clone[1].Data[0] != 7 {
		t.Fatalf("clone aliases the source page: %v", clone)
	}
	// Appending to one clone's data must not bleed into the next run's
	// backing space.
	_ = append(clone[0].Data, 0xAA)
	if clone[1].Data[0] != 7 {
		t.Fatal("clone backing buffer not capacity-clipped")
	}
}
