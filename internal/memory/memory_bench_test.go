package memory

// Wall-clock micro-benchmarks for the page hot paths: diff computation
// (sparse, dense, clean), run application, twin pooling, and the
// mprotect cost model. `make bench-smoke` runs these once; compare
// before/after with `go test -bench . -benchmem ./internal/memory`.

import (
	"math/rand"
	"testing"

	"genima/internal/sim"
)

const benchPage = 4096

func benchPages(mutate func(cur []byte, r *rand.Rand)) (cur, old []byte) {
	r := rand.New(rand.NewSource(1))
	old = make([]byte, benchPage)
	r.Read(old)
	cur = append([]byte(nil), old...)
	if mutate != nil {
		mutate(cur, r)
	}
	return cur, old
}

// BenchmarkDiffWordsClean diffs an unmodified page — the dominant case
// when a twin exists but only a few of a node's pages changed.
func BenchmarkDiffWordsClean(b *testing.B) {
	cur, old := benchPages(nil)
	b.SetBytes(benchPage)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if runs := DiffWords(cur, old, 4); runs != nil {
			b.Fatal("clean page produced runs")
		}
	}
}

// BenchmarkDiffWordsSparse diffs a page with 8 scattered modified words,
// the typical fine-grain sharing shape.
func BenchmarkDiffWordsSparse(b *testing.B) {
	cur, old := benchPages(func(cur []byte, r *rand.Rand) {
		for i := 0; i < 8; i++ {
			cur[(i*509+17)*4%benchPage] ^= 0x5a
		}
	})
	b.SetBytes(benchPage)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiffWords(cur, old, 4)
	}
}

// BenchmarkDiffWordsDense diffs a page where every other word changed —
// the worst case for run-boundary resolution.
func BenchmarkDiffWordsDense(b *testing.B) {
	cur, old := benchPages(func(cur []byte, r *rand.Rand) {
		for off := 0; off < benchPage; off += 8 {
			cur[off] ^= 0xff
		}
	})
	b.SetBytes(benchPage)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiffWords(cur, old, 4)
	}
}

// BenchmarkApplyRunsWords applies word-size runs (direct-diff traffic).
func BenchmarkApplyRunsWords(b *testing.B) {
	cur, old := benchPages(func(cur []byte, r *rand.Rand) {
		for i := 0; i < 16; i++ {
			cur[(i*251+3)*4%benchPage] ^= 0x5a
		}
	})
	runs := DiffWords(cur, old, 4)
	dst := append([]byte(nil), old...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyRuns(dst, runs)
	}
}

// BenchmarkMakeTwin measures twin creation with pooling (steady state:
// every DropTwin feeds the next MakeTwin).
func BenchmarkMakeTwin(b *testing.B) {
	s := NewSpace(benchPage, 4, 1)
	s.Alloc("a", benchPage, RoundRobin)
	m := NewNodeMem(s)
	m.Page(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MakeTwin(0)
		m.DropTwin(0)
	}
}

// BenchmarkCloneRuns measures diff snapshotting (one backing buffer).
func BenchmarkCloneRuns(b *testing.B) {
	cur, old := benchPages(func(cur []byte, r *rand.Rand) {
		for i := 0; i < 32; i++ {
			cur[(i*127+5)*4%benchPage] ^= 0x5a
		}
	})
	runs := DiffWords(cur, old, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CloneRuns(runs)
	}
}

// BenchmarkMprotectCost measures the call-coalescing cost model on a
// mixed contiguous/scattered invalidation set.
func BenchmarkMprotectCost(b *testing.B) {
	base := make([]int, 64)
	for i := range base {
		if i < 32 {
			base[i] = 100 + i // one long run
		} else {
			base[i] = i * 7 // scattered
		}
	}
	pages := make([]int, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(pages, base)
		MprotectCost(pages, sim.Micro(12), sim.Micro(1.5))
	}
}
