// Package memory implements the paged shared address space the SVM
// protocols manage: page/home layout, per-node page copies, twin
// creation, word-granularity diff computation and application, and the
// mprotect cost model (with the call-coalescing optimization the paper
// describes in §3.1).
package memory

import (
	"fmt"
	"sort"

	"genima/internal/sim"
)

// HomePolicy chooses the home node for each shared page.
type HomePolicy int

// Home-assignment policies.
const (
	// RoundRobin interleaves pages across nodes (the common default).
	RoundRobin HomePolicy = iota
	// Blocked gives each node a contiguous chunk of the allocation,
	// matching block-partitioned applications (FFT, LU, Ocean rows).
	Blocked
)

// Region is a contiguous allocation in the shared space, addressed by
// byte offsets from the start of the space.
type Region struct {
	Name string
	Base int // byte offset, page-aligned
	Size int
}

// End returns the first byte offset past the region.
func (r Region) End() int { return r.Base + r.Size }

// Space is the shared virtual address space: the page/home map plus the
// canonical home copy of every page. Node-local copies live in NodeMem.
type Space struct {
	PageSize int
	WordSize int

	regions []Region
	next    int // next free byte offset (page aligned)

	homes []int    // page -> home node
	home  [][]byte // page -> home copy (the authoritative data)

	nodes int
}

// NewSpace creates an empty space for a cluster of n nodes.
func NewSpace(pageSize, wordSize, nodes int) *Space {
	if pageSize <= 0 || wordSize <= 0 || pageSize%wordSize != 0 {
		panic(fmt.Sprintf("memory: bad page/word size %d/%d", pageSize, wordSize))
	}
	return &Space{PageSize: pageSize, WordSize: wordSize, nodes: nodes}
}

// NPages returns the number of allocated pages.
func (s *Space) NPages() int { return len(s.homes) }

// Nodes returns the cluster size the space was built for.
func (s *Space) Nodes() int { return s.nodes }

// Regions returns all allocations.
func (s *Space) Regions() []Region { return s.regions }

// Alloc reserves size bytes (rounded up to whole pages) and assigns
// homes under the given policy.
func (s *Space) Alloc(name string, size int, policy HomePolicy) Region {
	if size <= 0 {
		panic("memory: Alloc size must be positive")
	}
	pages := (size + s.PageSize - 1) / s.PageSize
	r := Region{Name: name, Base: s.next, Size: pages * s.PageSize}
	s.next += r.Size
	s.regions = append(s.regions, r)
	for i := 0; i < pages; i++ {
		var h int
		switch policy {
		case Blocked:
			h = i * s.nodes / pages
		default:
			h = (len(s.homes)) % s.nodes
		}
		s.homes = append(s.homes, h)
		s.home = append(s.home, make([]byte, s.PageSize))
	}
	return r
}

// Home returns the home node of a page.
func (s *Space) Home(page int) int { return s.homes[page] }

// HomeCopy returns the authoritative home copy of a page. Only the home
// node's protocol (or the hardware-DSM model) may mutate it.
func (s *Space) HomeCopy(page int) []byte { return s.home[page] }

// PageOf returns the page containing byte offset addr.
func (s *Space) PageOf(addr int) int { return addr / s.PageSize }

// PageRange returns the inclusive page span [first,last] covering
// [addr, addr+size).
func (s *Space) PageRange(addr, size int) (first, last int) {
	if size <= 0 {
		size = 1
	}
	return addr / s.PageSize, (addr + size - 1) / s.PageSize
}

// NodeMem holds one node's local copies and twins.
type NodeMem struct {
	space *Space
	pages [][]byte
	twins [][]byte
}

// NewNodeMem creates node-local storage for the space. All ten SPLASH-2
// style workloads allocate before parallel work begins, so node memories
// are sized after allocation.
func NewNodeMem(s *Space) *NodeMem {
	return &NodeMem{
		space: s,
		pages: make([][]byte, s.NPages()),
		twins: make([][]byte, s.NPages()),
	}
}

// Page returns the node's copy of a page, allocating it zeroed on first
// use.
func (m *NodeMem) Page(page int) []byte {
	if m.pages[page] == nil {
		m.pages[page] = make([]byte, m.space.PageSize)
	}
	return m.pages[page]
}

// HasCopy reports whether the node has materialized a copy of page.
func (m *NodeMem) HasCopy(page int) bool { return m.pages[page] != nil }

// InstallCopy replaces the node's copy of a page with data (a fetched
// page); the slice is copied.
func (m *NodeMem) InstallCopy(page int, data []byte) {
	dst := m.Page(page)
	copy(dst, data)
}

// MakeTwin snapshots the node's current copy of page so later
// modifications can be diffed. Idempotent within a twin lifetime.
func (m *NodeMem) MakeTwin(page int) {
	if m.twins[page] != nil {
		return
	}
	src := m.Page(page)
	tw := make([]byte, len(src))
	copy(tw, src)
	m.twins[page] = tw
}

// HasTwin reports whether a twin exists for page.
func (m *NodeMem) HasTwin(page int) bool { return m.twins[page] != nil }

// DropTwin discards the twin after diffing.
func (m *NodeMem) DropTwin(page int) { m.twins[page] = nil }

// Diff compares the node's copy of page against its twin and returns the
// contiguous runs of modified words. It panics if no twin exists.
func (m *NodeMem) Diff(page int) []Run {
	tw := m.twins[page]
	if tw == nil {
		panic(fmt.Sprintf("memory: Diff of page %d without twin", page))
	}
	return DiffWords(m.Page(page), tw, m.space.WordSize)
}

// Run is one contiguous span of modified bytes within a page.
type Run struct {
	Off  int
	Data []byte
}

// DiffWords compares cur against old at word granularity and returns the
// modified runs (data aliases cur; callers snapshot if needed).
func DiffWords(cur, old []byte, wordSize int) []Run {
	if len(cur) != len(old) {
		panic("memory: DiffWords length mismatch")
	}
	var runs []Run
	n := len(cur)
	for off := 0; off < n; {
		// Find next differing word.
		for off < n && equalWord(cur, old, off, wordSize) {
			off += wordSize
		}
		if off >= n {
			break
		}
		start := off
		for off < n && !equalWord(cur, old, off, wordSize) {
			off += wordSize
		}
		runs = append(runs, Run{Off: start, Data: cur[start:off]})
	}
	return runs
}

func equalWord(a, b []byte, off, w int) bool {
	end := off + w
	if end > len(a) {
		end = len(a)
	}
	for i := off; i < end; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ApplyRuns writes the runs into dst (a page copy).
func ApplyRuns(dst []byte, runs []Run) {
	for _, r := range runs {
		copy(dst[r.Off:], r.Data)
	}
}

// RunsBytes returns the total data bytes across runs.
func RunsBytes(runs []Run) int {
	n := 0
	for _, r := range runs {
		n += len(r.Data)
	}
	return n
}

// CloneRuns deep-copies runs so they survive further page mutation.
func CloneRuns(runs []Run) []Run {
	out := make([]Run, len(runs))
	for i, r := range runs {
		d := make([]byte, len(r.Data))
		copy(d, r.Data)
		out[i] = Run{Off: r.Off, Data: d}
	}
	return out
}

// MprotectCost returns the virtual-time cost and the number of mprotect
// system calls needed to change protection on the given pages, after
// coalescing contiguous page runs into single calls (the optimization
// described in §3.1). The pages slice is sorted in place.
func MprotectCost(pages []int, base, perPage sim.Time) (cost sim.Time, calls int) {
	if len(pages) == 0 {
		return 0, 0
	}
	sort.Ints(pages)
	runLen := 1
	flush := func() {
		cost += base + perPage*sim.Time(runLen-1)
		calls++
	}
	for i := 1; i < len(pages); i++ {
		if pages[i] == pages[i-1] {
			continue // duplicate page
		}
		if pages[i] == pages[i-1]+1 {
			runLen++
			continue
		}
		flush()
		runLen = 1
	}
	flush()
	return cost, calls
}
