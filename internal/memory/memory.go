// Package memory implements the paged shared address space the SVM
// protocols manage: page/home layout, per-node page copies, twin
// creation, word-granularity diff computation and application, and the
// mprotect cost model (with the call-coalescing optimization the paper
// describes in §3.1).
package memory

import (
	"encoding/binary"
	"fmt"
	"sort"

	"genima/internal/sim"
)

// HomePolicy chooses the home node for each shared page.
type HomePolicy int

// Home-assignment policies.
const (
	// RoundRobin interleaves pages across nodes (the common default).
	RoundRobin HomePolicy = iota
	// Blocked gives each node a contiguous chunk of the allocation,
	// matching block-partitioned applications (FFT, LU, Ocean rows).
	Blocked
)

// Region is a contiguous allocation in the shared space, addressed by
// byte offsets from the start of the space.
type Region struct {
	Name string
	Base int // byte offset, page-aligned
	Size int
}

// End returns the first byte offset past the region.
func (r Region) End() int { return r.Base + r.Size }

// Space is the shared virtual address space: the page/home map plus the
// canonical home copy of every page. Node-local copies live in NodeMem.
type Space struct {
	PageSize int
	WordSize int

	regions []Region
	next    int // next free byte offset (page aligned)

	homes []int    // page -> home node
	home  [][]byte // page -> home copy (the authoritative data)

	nodes int
}

// NewSpace creates an empty space for a cluster of n nodes.
func NewSpace(pageSize, wordSize, nodes int) *Space {
	if pageSize <= 0 || wordSize <= 0 || pageSize%wordSize != 0 {
		panic(fmt.Sprintf("memory: bad page/word size %d/%d", pageSize, wordSize))
	}
	return &Space{PageSize: pageSize, WordSize: wordSize, nodes: nodes}
}

// NPages returns the number of allocated pages.
func (s *Space) NPages() int { return len(s.homes) }

// Nodes returns the cluster size the space was built for.
func (s *Space) Nodes() int { return s.nodes }

// Regions returns all allocations.
func (s *Space) Regions() []Region { return s.regions }

// Alloc reserves size bytes (rounded up to whole pages) and assigns
// homes under the given policy.
func (s *Space) Alloc(name string, size int, policy HomePolicy) Region {
	if size <= 0 {
		panic("memory: Alloc size must be positive")
	}
	pages := (size + s.PageSize - 1) / s.PageSize
	r := Region{Name: name, Base: s.next, Size: pages * s.PageSize}
	s.next += r.Size
	s.regions = append(s.regions, r)
	for i := 0; i < pages; i++ {
		var h int
		switch policy {
		case Blocked:
			h = i * s.nodes / pages
		default:
			h = (len(s.homes)) % s.nodes
		}
		s.homes = append(s.homes, h)
		s.home = append(s.home, make([]byte, s.PageSize))
	}
	return r
}

// Home returns the home node of a page.
func (s *Space) Home(page int) int { return s.homes[page] }

// HomeCopy returns the authoritative home copy of a page. Only the home
// node's protocol (or the hardware-DSM model) may mutate it.
func (s *Space) HomeCopy(page int) []byte { return s.home[page] }

// PageOf returns the page containing byte offset addr.
func (s *Space) PageOf(addr int) int { return addr / s.PageSize }

// PageRange returns the inclusive page span [first,last] covering
// [addr, addr+size).
func (s *Space) PageRange(addr, size int) (first, last int) {
	if size <= 0 {
		size = 1
	}
	return addr / s.PageSize, (addr + size - 1) / s.PageSize
}

// BufPool is a deterministic free list of fixed-size page buffers.
// Engines are share-nothing and single-threaded, so a plain LIFO slice
// (rather than sync.Pool) keeps buffer reuse bit-deterministic from run
// to run and race-free without atomics; every NodeMem owns its own pool
// and no pool state crosses simulated runs. Buffers may migrate between
// the pools of one simulation (a page snapshot allocated at the home is
// released at the requester) — still within a single engine goroutine.
type BufPool struct {
	size int
	free [][]byte

	// Hits counts Gets served from the free list; Allocs counts Gets
	// that missed and allocated fresh storage (one chunk of buffers per
	// miss). Exposed for tests and benchmarks.
	Hits, Allocs uint64
}

// NewBufPool returns an empty pool of size-byte buffers.
func NewBufPool(size int) *BufPool { return &BufPool{size: size} }

// Get returns a buffer of the pool's size. Contents are unspecified:
// every caller overwrites the whole buffer (twin snapshot, page copy).
func (p *BufPool) Get() []byte {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.Hits++
		return b
	}
	p.Allocs++
	// Miss: carve a chunk of buffers out of one backing array, so a
	// growing working set costs one allocation per four pages. Full
	// slice caps keep an append on one buffer from clobbering the next.
	back := make([]byte, 4*p.size)
	for i := 3; i > 0; i-- {
		p.free = append(p.free, back[i*p.size:(i+1)*p.size:(i+1)*p.size])
	}
	return back[0:p.size:p.size]
}

// Put returns a buffer to the free list. Buffers of the wrong length
// are dropped rather than poisoning the pool.
func (p *BufPool) Put(b []byte) {
	if len(b) != p.size {
		return
	}
	p.free = append(p.free, b)
}

// Len returns the number of buffers currently on the free list.
func (p *BufPool) Len() int { return len(p.free) }

// NodeMem holds one node's local copies and twins.
type NodeMem struct {
	space *Space
	pages [][]byte
	twins [][]byte
	pool  *BufPool
}

// NewNodeMem creates node-local storage for the space. All ten SPLASH-2
// style workloads allocate before parallel work begins, so node memories
// are sized after allocation.
func NewNodeMem(s *Space) *NodeMem {
	return &NodeMem{
		space: s,
		pages: make([][]byte, s.NPages()),
		twins: make([][]byte, s.NPages()),
		pool:  NewBufPool(s.PageSize),
	}
}

// Pool returns the node's page-buffer free list, shared by twins and by
// the protocol layer's transient page snapshots (fetch replies).
func (m *NodeMem) Pool() *BufPool { return m.pool }

// Page returns the node's copy of a page, allocating it zeroed on first
// use.
func (m *NodeMem) Page(page int) []byte {
	if m.pages[page] == nil {
		m.pages[page] = make([]byte, m.space.PageSize)
	}
	return m.pages[page]
}

// HasCopy reports whether the node has materialized a copy of page.
func (m *NodeMem) HasCopy(page int) bool { return m.pages[page] != nil }

// InstallCopy replaces the node's copy of a page with data (a fetched
// page); the slice is copied.
func (m *NodeMem) InstallCopy(page int, data []byte) {
	dst := m.Page(page)
	copy(dst, data)
}

// MakeTwin snapshots the node's current copy of page so later
// modifications can be diffed. Idempotent within a twin lifetime. Twin
// buffers come from the node's pool and return to it on DropTwin.
func (m *NodeMem) MakeTwin(page int) {
	if m.twins[page] != nil {
		return
	}
	src := m.Page(page)
	tw := m.pool.Get()
	copy(tw, src)
	m.twins[page] = tw
}

// HasTwin reports whether a twin exists for page.
func (m *NodeMem) HasTwin(page int) bool { return m.twins[page] != nil }

// DropTwin discards the twin after diffing, recycling its buffer. Safe
// even while Diff results are alive: runs alias the page copy, never the
// twin.
func (m *NodeMem) DropTwin(page int) {
	if tw := m.twins[page]; tw != nil {
		m.pool.Put(tw)
		m.twins[page] = nil
	}
}

// Diff compares the node's copy of page against its twin and returns the
// contiguous runs of modified words. It panics if no twin exists.
func (m *NodeMem) Diff(page int) []Run {
	tw := m.twins[page]
	if tw == nil {
		panic(fmt.Sprintf("memory: Diff of page %d without twin", page))
	}
	return DiffWords(m.Page(page), tw, m.space.WordSize)
}

// Run is one contiguous span of modified bytes within a page.
type Run struct {
	Off  int
	Data []byte
}

// DiffWords compares cur against old at word granularity and returns the
// modified runs (data aliases cur; callers snapshot if needed).
//
// The kernel compares 8 bytes at a time (unchanged regions dominate real
// pages) and resolves run boundaries at word granularity, so its output
// is run-for-run identical to a word-by-word byte comparison.
func DiffWords(cur, old []byte, wordSize int) []Run {
	if len(cur) != len(old) {
		panic("memory: DiffWords length mismatch")
	}
	var runs []Run
	n := len(cur)
	off := 0
	for off < n {
		off = nextDifferingWord(cur, old, off, wordSize)
		if off >= n {
			break
		}
		start := off
		off = nextEqualWord(cur, old, off, wordSize)
		runs = append(runs, Run{Off: start, Data: cur[start:off]})
	}
	return runs
}

// DiffCopyWords is DiffWords with reusable storage: runs are appended to
// runs (typically a pooled slice re-sliced to length 0) and each run's
// data is deep-copied into buf, so the result survives further page
// mutation without per-diff allocations. buf is grown once to the page
// size if needed — never mid-loop, so run aliases stay stable — and the
// (possibly regrown) buf is returned for the caller to retain.
func DiffCopyWords(runs []Run, buf []byte, cur, old []byte, wordSize int) ([]Run, []byte) {
	if len(cur) != len(old) {
		panic("memory: DiffCopyWords length mismatch")
	}
	if cap(buf) < len(cur) {
		buf = make([]byte, 0, len(cur))
	}
	buf = buf[:0]
	n := len(cur)
	off := 0
	for off < n {
		off = nextDifferingWord(cur, old, off, wordSize)
		if off >= n {
			break
		}
		start := off
		off = nextEqualWord(cur, old, off, wordSize)
		bstart := len(buf)
		buf = append(buf, cur[start:off]...)
		runs = append(runs, Run{Off: start, Data: buf[bstart:len(buf):len(buf)]})
	}
	return runs, buf
}

// DiffCopy is Diff with reusable storage (see DiffCopyWords).
func (m *NodeMem) DiffCopy(page int, runs []Run, buf []byte) ([]Run, []byte) {
	tw := m.twins[page]
	if tw == nil {
		panic(fmt.Sprintf("memory: DiffCopy of page %d without twin", page))
	}
	return DiffCopyWords(runs, buf, m.Page(page), tw, m.space.WordSize)
}

// nextDifferingWord returns the offset of the first word at or after off
// that differs between a and b, or len(a) if none. When the word size
// divides 8, equal regions are skipped 8 bytes per comparison; offsets
// stay word-aligned because both strides are multiples of wordSize.
func nextDifferingWord(a, b []byte, off, w int) int {
	n := len(a)
	if 8%w == 0 {
		for off+8 <= n && binary.LittleEndian.Uint64(a[off:]) == binary.LittleEndian.Uint64(b[off:]) {
			off += 8
		}
	}
	for off < n && equalWord(a, b, off, w) {
		off += w
	}
	if off > n {
		off = n
	}
	return off
}

// nextEqualWord returns the offset of the first word at or after off that
// is equal between a and b, or len(a) if none. Modified runs are usually
// short, so whole words are compared with single integer loads.
func nextEqualWord(a, b []byte, off, w int) int {
	n := len(a)
	switch w {
	case 8:
		for off+8 <= n && binary.LittleEndian.Uint64(a[off:]) != binary.LittleEndian.Uint64(b[off:]) {
			off += 8
		}
	case 4:
		for off+4 <= n && binary.LittleEndian.Uint32(a[off:]) != binary.LittleEndian.Uint32(b[off:]) {
			off += 4
		}
	case 2:
		for off+2 <= n && binary.LittleEndian.Uint16(a[off:]) != binary.LittleEndian.Uint16(b[off:]) {
			off += 2
		}
	}
	// A trailing partial word is clamped so runs never extend past the
	// buffer (the old byte loop could over-slice into spare capacity).
	for off < n && !equalWord(a, b, off, w) {
		off += w
	}
	if off > n {
		off = n
	}
	return off
}

func equalWord(a, b []byte, off, w int) bool {
	end := off + w
	if end > len(a) {
		end = len(a)
	}
	for i := off; i < end; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ApplyRuns writes the runs into dst (a page copy). Single-word runs
// dominate direct-diff traffic, so 4- and 8-byte runs are stored with
// one integer move instead of a memmove call.
func ApplyRuns(dst []byte, runs []Run) {
	for _, r := range runs {
		ApplyRun(dst, r)
	}
}

// ApplyRun writes one run into dst (see ApplyRuns).
func ApplyRun(dst []byte, r Run) {
	switch len(r.Data) {
	case 8:
		if r.Off+8 <= len(dst) {
			binary.LittleEndian.PutUint64(dst[r.Off:], binary.LittleEndian.Uint64(r.Data))
			return
		}
	case 4:
		if r.Off+4 <= len(dst) {
			binary.LittleEndian.PutUint32(dst[r.Off:], binary.LittleEndian.Uint32(r.Data))
			return
		}
	}
	copy(dst[r.Off:], r.Data)
}

// RunsBytes returns the total data bytes across runs.
func RunsBytes(runs []Run) int {
	n := 0
	for _, r := range runs {
		n += len(r.Data)
	}
	return n
}

// CloneRuns deep-copies runs so they survive further page mutation. All
// clones share one backing allocation (a diff is cloned and applied as a
// unit), collapsing len(runs)+1 allocations into two.
func CloneRuns(runs []Run) []Run {
	out := make([]Run, len(runs))
	buf := make([]byte, 0, RunsBytes(runs))
	for i, r := range runs {
		start := len(buf)
		buf = append(buf, r.Data...)
		out[i] = Run{Off: r.Off, Data: buf[start:len(buf):len(buf)]}
	}
	return out
}

// MprotectCost returns the virtual-time cost and the number of mprotect
// system calls needed to change protection on the given pages, after
// coalescing contiguous page runs into single calls (the optimization
// described in §3.1). The pages slice is sorted in place.
func MprotectCost(pages []int, base, perPage sim.Time) (cost sim.Time, calls int) {
	if len(pages) == 0 {
		return 0, 0
	}
	sort.Ints(pages)
	runLen := 1
	flush := func() {
		cost += base + perPage*sim.Time(runLen-1)
		calls++
	}
	for i := 1; i < len(pages); i++ {
		if pages[i] == pages[i-1] {
			continue // duplicate page
		}
		if pages[i] == pages[i-1]+1 {
			runLen++
			continue
		}
		flush()
		runLen = 1
	}
	flush()
	return cost, calls
}
