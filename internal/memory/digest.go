package memory

import "genima/internal/sim"

// DigestInto folds the pool's reuse state: the free-list depth and the
// hit/miss counters. Buffer identities are not portable, but the depth
// plus the deterministic LIFO discipline pin the reuse order.
func (p *BufPool) DigestInto(d *sim.Digest) {
	d.U64(uint64(p.size))
	d.U64(uint64(len(p.free)))
	d.U64(p.Hits)
	d.U64(p.Allocs)
}

// DigestInto folds the node's materialized page copies and twins —
// presence and full contents — plus the buffer pool state. Page data is
// protocol state (diffs are computed from it), so a restore that
// reproduced the event prefix must reproduce every byte.
func (m *NodeMem) DigestInto(d *sim.Digest) {
	d.U64(uint64(len(m.pages)))
	for pg := range m.pages {
		d.Bool(m.pages[pg] != nil)
		if m.pages[pg] != nil {
			d.Bytes(m.pages[pg])
		}
		d.Bool(m.twins[pg] != nil)
		if m.twins[pg] != nil {
			d.Bytes(m.twins[pg])
		}
	}
	m.pool.DigestInto(d)
}
