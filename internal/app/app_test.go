package app

import (
	"testing"

	"genima/internal/core"
	"genima/internal/memory"
	"genima/internal/topo"
)

// sumApp is a minimal workload: each processor squares its block of a
// shared vector, then lock-accumulates a partial sum into a shared cell,
// with barriers between phases.
type sumApp struct {
	n int
}

func (a *sumApp) Name() string { return "sum" }
func (a *sumApp) Ops() float64 { return float64(a.n) * 3 }

func (a *sumApp) Setup(ws *Workspace) {
	v := ws.Alloc("vec", 8*a.n, memory.Blocked)
	ws.Alloc("sum", 8, memory.RoundRobin)
	for i := 0; i < a.n; i++ {
		ws.SetF64(v, i, float64(i%17)+1)
	}
}

func (a *sumApp) Run(ctx *Ctx) {
	v := ctx.ws.Region("vec")
	sum := ctx.ws.Region("sum")
	id, np := ctx.ID(), ctx.NProc()
	lo, hi := id*a.n/np, (id+1)*a.n/np

	local := 0.0
	for i := lo; i < hi; i++ {
		x := ctx.F64(v, i)
		x = x * x
		ctx.SetF64(v, i, x)
		local += x
	}
	ctx.Compute(float64(hi-lo) * 3)
	ctx.Barrier()

	ctx.Lock(0)
	ctx.AddF64(sum, 0, local)
	ctx.Unlock(0)
	ctx.Barrier()
}

// The sum result depends on accumulation order only in rounding; with
// integral values it is exact, so the default comparison works.

func testConfig() topo.Config {
	cfg := topo.Default()
	cfg.Nodes = 4
	cfg.ProcsPerNode = 2
	return cfg
}

func TestRunSeqProducesReference(t *testing.T) {
	a := &sumApp{n: 4096}
	res, ws, err := RunSeq(testConfig(), a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("sequential run has zero elapsed time")
	}
	want := 0.0
	for i := 0; i < a.n; i++ {
		x := float64(i%17) + 1
		want += x * x
	}
	if got := ws.F64(ws.Region("sum"), 0); got != want {
		t.Errorf("sequential sum = %g, want %g", got, want)
	}
}

func TestSVMMatchesSequentialAllProtocols(t *testing.T) {
	a := &sumApp{n: 4096}
	_, seqWS, err := RunSeq(testConfig(), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range core.Kinds() {
		res, parWS, err := RunSVM(testConfig(), k, a)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := Validate(a, parWS, seqWS); err != nil {
			t.Errorf("%v: wrong result: %v", k, err)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%v: zero elapsed", k)
		}
		if res.Avg.T[0] == 0 { // Compute
			t.Errorf("%v: no compute time recorded", k)
		}
	}
}

func TestHWMatchesSequential(t *testing.T) {
	a := &sumApp{n: 4096}
	_, seqWS, err := RunSeq(testConfig(), a)
	if err != nil {
		t.Fatal(err)
	}
	res, parWS, err := RunHW(testConfig(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(a, parWS, seqWS); err != nil {
		t.Errorf("hwdsm wrong result: %v", err)
	}
	if res.Elapsed <= 0 {
		t.Error("zero elapsed")
	}
}

func TestHWFasterThanSVM(t *testing.T) {
	a := &sumApp{n: 16384}
	hw, _, err := RunHW(testConfig(), a)
	if err != nil {
		t.Fatal(err)
	}
	svm, _, err := RunSVM(testConfig(), core.Base, a)
	if err != nil {
		t.Fatal(err)
	}
	if hw.Elapsed >= svm.Elapsed {
		t.Errorf("hardware DSM (%d) not faster than Base SVM (%d)", hw.Elapsed, svm.Elapsed)
	}
}

func TestGeNIMABeatsBase(t *testing.T) {
	a := &sumApp{n: 16384}
	base, _, err := RunSVM(testConfig(), core.Base, a)
	if err != nil {
		t.Fatal(err)
	}
	gen, _, err := RunSVM(testConfig(), core.GeNIMA, a)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Elapsed >= base.Elapsed {
		t.Errorf("GeNIMA (%d) not faster than Base (%d)", gen.Elapsed, base.Elapsed)
	}
	if gen.Acct.Interrupts != 0 {
		t.Errorf("GeNIMA took %d interrupts", gen.Acct.Interrupts)
	}
	if base.Acct.Interrupts == 0 {
		t.Error("Base took no interrupts")
	}
}

func TestBreakdownCategoriesPopulated(t *testing.T) {
	a := &sumApp{n: 8192}
	res, _, err := RunSVM(testConfig(), core.Base, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Avg.T[0] == 0 {
		t.Error("no Compute time")
	}
	if res.Avg.T[1] == 0 {
		t.Error("no Data time")
	}
	if res.Avg.T[4] == 0 {
		t.Error("no Barrier time")
	}
	tot := res.Avg.Total()
	if tot <= 0 || tot > res.Elapsed {
		t.Errorf("avg breakdown total %d vs elapsed %d", tot, res.Elapsed)
	}
}

func TestSpeedupHelper(t *testing.T) {
	seq := &Result{Elapsed: 1000}
	par := &Result{Elapsed: 250}
	if s := Speedup(seq, par); s != 4 {
		t.Errorf("speedup = %v, want 4", s)
	}
	if s := Speedup(seq, &Result{}); s != 0 {
		t.Errorf("speedup with zero elapsed = %v, want 0", s)
	}
}

func TestWorkspaceAccessors(t *testing.T) {
	cfg := testConfig()
	ws := NewWorkspace(&cfg)
	r := ws.Alloc("a", 4096, memory.RoundRobin)
	ws.SetF64(r, 3, 2.5)
	if v := ws.F64(r, 3); v != 2.5 {
		t.Errorf("F64 = %v", v)
	}
	ws.SetI32(r, 100, -7)
	if v := ws.I32(r, 100); v != -7 {
		t.Errorf("I32 = %v", v)
	}
	ws.SetI64(r, 60, 1<<40)
	if v := ws.I64(r, 60); v != 1<<40 {
		t.Errorf("I64 = %v", v)
	}
	if ws.Region("a") != r {
		t.Error("Region lookup mismatch")
	}
}

func TestCompareF64Tolerance(t *testing.T) {
	cfg := testConfig()
	a := NewWorkspace(&cfg)
	b := NewWorkspace(&cfg)
	ra := a.Alloc("x", 8*4, memory.RoundRobin)
	rb := b.Alloc("x", 8*4, memory.RoundRobin)
	for i := 0; i < 4; i++ {
		a.SetF64(ra, i, 100)
		b.SetF64(rb, i, 100)
	}
	a.SetF64(ra, 2, 100.000001)
	if err := CompareF64Tolerance(a, b, "x", 4, 1e-6); err != nil {
		t.Errorf("within tolerance rejected: %v", err)
	}
	a.SetF64(ra, 2, 101)
	if err := CompareF64Tolerance(a, b, "x", 4, 1e-6); err == nil {
		t.Error("out-of-tolerance accepted")
	}
}
