package app

import (
	"genima/internal/memory"
	"genima/internal/stats"
)

// Bulk transfers between shared regions and private buffers. Real SVM
// programs work on cached local data between synchronization points;
// these helpers fault the covered pages once and then move bytes, so an
// inner loop (an FFT butterfly pass, a stencil sweep) runs on private
// memory exactly as it would on the real system.

// CopyOutF64 reads len(dst) float64 elements starting at element
// elemOff of region r into dst.
func (c *Ctx) CopyOutF64(r memory.Region, elemOff int, dst []float64) {
	if len(dst) == 0 {
		return
	}
	addr := r.Base + 8*elemOff
	t0 := c.p.Now()
	c.be.EnsureRead(c.p, addr, 8*len(dst))
	if dt := c.p.Now() - t0; dt > 0 {
		c.Breakdown.Add(stats.Data, dt)
	}
	c.forEachSpan(addr, 8*len(dst), func(pg []byte, off, n, done int) {
		for i := 0; i < n; i += 8 {
			dst[(done+i)/8] = getF64(pg, off+i)
		}
	})
}

// CopyInF64 writes src into region r starting at element elemOff.
func (c *Ctx) CopyInF64(r memory.Region, elemOff int, src []float64) {
	if len(src) == 0 {
		return
	}
	addr := r.Base + 8*elemOff
	t0 := c.p.Now()
	c.be.EnsureWrite(c.p, addr, 8*len(src))
	if dt := c.p.Now() - t0; dt > 0 {
		c.Breakdown.Add(stats.Data, dt)
	}
	c.forEachSpan(addr, 8*len(src), func(pg []byte, off, n, done int) {
		for i := 0; i < n; i += 8 {
			putF64(pg, off+i, src[(done+i)/8])
		}
	})
}

// CopyOutI32 reads len(dst) int32 elements starting at element elemOff.
func (c *Ctx) CopyOutI32(r memory.Region, elemOff int, dst []int32) {
	if len(dst) == 0 {
		return
	}
	addr := r.Base + 4*elemOff
	t0 := c.p.Now()
	c.be.EnsureRead(c.p, addr, 4*len(dst))
	if dt := c.p.Now() - t0; dt > 0 {
		c.Breakdown.Add(stats.Data, dt)
	}
	c.forEachSpan(addr, 4*len(dst), func(pg []byte, off, n, done int) {
		for i := 0; i < n; i += 4 {
			dst[(done+i)/4] = getI32(pg, off+i)
		}
	})
}

// CopyInI32 writes src into region r starting at element elemOff.
func (c *Ctx) CopyInI32(r memory.Region, elemOff int, src []int32) {
	if len(src) == 0 {
		return
	}
	addr := r.Base + 4*elemOff
	t0 := c.p.Now()
	c.be.EnsureWrite(c.p, addr, 4*len(src))
	if dt := c.p.Now() - t0; dt > 0 {
		c.Breakdown.Add(stats.Data, dt)
	}
	c.forEachSpan(addr, 4*len(src), func(pg []byte, off, n, done int) {
		for i := 0; i < n; i += 4 {
			putI32(pg, off+i, src[(done+i)/4])
		}
	})
}

// forEachSpan walks [addr, addr+size) page by page: fn receives the page
// bytes, the in-page offset, the span length, and how many bytes were
// processed before this span.
func (c *Ctx) forEachSpan(addr, size int, fn func(pg []byte, off, n, done int)) {
	ps := c.cfg.PageSize
	done := 0
	for done < size {
		a := addr + done
		page := a / ps
		off := a % ps
		n := ps - off
		if n > size-done {
			n = size - done
		}
		fn(c.be.Bytes(page), off, n, done)
		done += n
	}
}
