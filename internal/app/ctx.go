package app

import (
	"encoding/binary"
	"math"

	"genima/internal/memory"
	"genima/internal/sim"
	"genima/internal/stats"
	"genima/internal/topo"
)

// Ctx is one simulated processor's handle to the shared address space:
// typed accessors with fault handling, compute-time charging, locks and
// barriers. All elapsed virtual time is attributed to the paper's five
// execution-time categories.
type Ctx struct {
	id, n int
	p     *sim.Proc
	be    Backend
	ws    *Workspace
	cfg   *topo.Config

	memIntensity float64

	Breakdown stats.Breakdown
	// BarrierProto accumulates the protocol-processing share of this
	// processor's barrier time (node leaders only), for Table 2.
	BarrierProto sim.Time
	// Latency collects per-request virtual-time latencies for serving
	// workloads (svmkv); batch apps leave it empty. Per-processor
	// recorders are merged into Result.Latency after the run.
	Latency stats.LatencyRecorder
}

// ID returns this processor's global index in [0, NProc).
func (c *Ctx) ID() int { return c.id }

// NProc returns the total processor count.
func (c *Ctx) NProc() int { return c.n }

// Proc exposes the underlying simulation process (for Sleep in tests).
func (c *Ctx) Proc() *sim.Proc { return c.p }

// Workspace returns the shared workspace, for region lookups.
func (c *Ctx) Workspace() *Workspace { return c.ws }

// Compute charges ops abstract operations of useful work, folding in any
// pending interrupt-scheduling perturbation.
func (c *Ctx) Compute(ops float64) {
	d := sim.Time(ops*c.cfg.Costs.NsPerOp*c.be.ComputeScale(c.memIntensity)) + c.be.TakeSteal()
	c.p.Sleep(d)
	c.Breakdown.Add(stats.Compute, d)
}

// Lock acquires global lock id.
func (c *Ctx) Lock(id int) {
	t0 := c.p.Now()
	c.be.Lock(c.p, id)
	c.Breakdown.Add(stats.Lock, c.p.Now()-t0)
}

// Unlock releases global lock id.
func (c *Ctx) Unlock(id int) {
	t0 := c.p.Now()
	c.be.Unlock(c.p, id)
	c.Breakdown.Add(stats.Lock, c.p.Now()-t0)
}

// Acquire performs an acquire purely for release consistency (no
// mutual exclusion needed — e.g. consuming a flag another processor
// set). Mechanically it is a lock acquire, but the time lands in the
// paper's "Acq/Rel" breakdown category.
func (c *Ctx) Acquire(id int) {
	t0 := c.p.Now()
	c.be.Lock(c.p, id)
	c.Breakdown.Add(stats.AcqRel, c.p.Now()-t0)
}

// Release is the matching release-consistency release.
func (c *Ctx) Release(id int) {
	t0 := c.p.Now()
	c.be.Unlock(c.p, id)
	c.Breakdown.Add(stats.AcqRel, c.p.Now()-t0)
}

// Barrier waits for all processors.
func (c *Ctx) Barrier() {
	t0 := c.p.Now()
	proto := c.be.Barrier(c.p)
	c.Breakdown.Add(stats.Barrier, c.p.Now()-t0)
	c.BarrierProto += proto
}

// ReadRange pre-faults [off, off+size) bytes of region r for reading —
// batching fault handling for a loop that follows.
func (c *Ctx) ReadRange(r memory.Region, off, size int) {
	t0 := c.p.Now()
	c.be.EnsureRead(c.p, r.Base+off, size)
	c.Breakdown.Add(stats.Data, c.p.Now()-t0)
}

// WriteRange pre-faults [off, off+size) bytes of region r for writing.
func (c *Ctx) WriteRange(r memory.Region, off, size int) {
	t0 := c.p.Now()
	c.be.EnsureWrite(c.p, r.Base+off, size)
	c.Breakdown.Add(stats.Data, c.p.Now()-t0)
}

// read resolves addr for an n-byte load, handling faults.
func (c *Ctx) read(addr, n int) ([]byte, int) {
	t0 := c.p.Now()
	c.be.EnsureRead(c.p, addr, n)
	if dt := c.p.Now() - t0; dt > 0 {
		c.Breakdown.Add(stats.Data, dt)
	}
	return c.be.Bytes(addr / c.cfg.PageSize), addr % c.cfg.PageSize
}

// write resolves addr for an n-byte store, handling faults.
func (c *Ctx) write(addr, n int) ([]byte, int) {
	t0 := c.p.Now()
	c.be.EnsureWrite(c.p, addr, n)
	if dt := c.p.Now() - t0; dt > 0 {
		c.Breakdown.Add(stats.Data, dt)
	}
	return c.be.Bytes(addr / c.cfg.PageSize), addr % c.cfg.PageSize
}

// F64 loads element i of a float64 region.
func (c *Ctx) F64(r memory.Region, i int) float64 {
	pg, off := c.read(r.Base+8*i, 8)
	return getF64(pg, off)
}

// SetF64 stores element i of a float64 region.
func (c *Ctx) SetF64(r memory.Region, i int, v float64) {
	pg, off := c.write(r.Base+8*i, 8)
	putF64(pg, off, v)
}

// AddF64 adds v to element i of a float64 region (read-modify-write).
func (c *Ctx) AddF64(r memory.Region, i int, v float64) {
	pg, off := c.write(r.Base+8*i, 8)
	putF64(pg, off, getF64(pg, off)+v)
}

// I32 loads element i of an int32 region.
func (c *Ctx) I32(r memory.Region, i int) int32 {
	pg, off := c.read(r.Base+4*i, 4)
	return getI32(pg, off)
}

// SetI32 stores element i of an int32 region.
func (c *Ctx) SetI32(r memory.Region, i int, v int32) {
	pg, off := c.write(r.Base+4*i, 4)
	putI32(pg, off, v)
}

// AddI32 adds v to element i of an int32 region.
func (c *Ctx) AddI32(r memory.Region, i int, v int32) {
	pg, off := c.write(r.Base+4*i, 4)
	putI32(pg, off, getI32(pg, off)+v)
}

// I64 loads element i of an int64 region.
func (c *Ctx) I64(r memory.Region, i int) int64 {
	pg, off := c.read(r.Base+8*i, 8)
	return getI64(pg, off)
}

// SetI64 stores element i of an int64 region.
func (c *Ctx) SetI64(r memory.Region, i int, v int64) {
	pg, off := c.write(r.Base+8*i, 8)
	putI64(pg, off, v)
}

// Sleep advances this processor's clock without attributing the time to
// any work category (open-loop idle waits and test scaffolding).
func (c *Ctx) Sleep(d sim.Time) { c.p.Sleep(d) }

// Now returns this processor's virtual clock.
func (c *Ctx) Now() sim.Time { return c.p.Now() }

// RecordLatency adds one request's enqueue→completion virtual time to
// this processor's latency histogram.
func (c *Ctx) RecordLatency(d sim.Time) { c.Latency.Record(d) }

// --- little-endian scalar encoding over page bytes ---

func putF64(b []byte, off int, v float64) {
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
}

func getF64(b []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
}

func putI32(b []byte, off int, v int32) {
	binary.LittleEndian.PutUint32(b[off:], uint32(v))
}

func getI32(b []byte, off int) int32 {
	return int32(binary.LittleEndian.Uint32(b[off:]))
}

func putI64(b []byte, off int, v int64) {
	binary.LittleEndian.PutUint64(b[off:], uint64(v))
}

func getI64(b []byte, off int) int64 {
	return int64(binary.LittleEndian.Uint64(b[off:]))
}
