package app

import (
	"genima/internal/core"
	"genima/internal/sim"
	"genima/internal/topo"
)

// svmBackend binds one processor slot to its SVM node.
type svmBackend struct {
	sys  *core.System
	node *core.Node
	cpu  int // processor slot within the node
}

// NewSVMBackend creates the Backend for processor slot cpu of node nd.
func NewSVMBackend(sys *core.System, nd, cpu int) Backend {
	return &svmBackend{sys: sys, node: sys.Node(nd), cpu: cpu}
}

func (b *svmBackend) EnsureRead(p *sim.Proc, addr, size int) {
	first, last := b.sys.Space.PageRange(addr, size)
	b.node.EnsureReadable(p, first, last)
}

func (b *svmBackend) EnsureWrite(p *sim.Proc, addr, size int) {
	first, last := b.sys.Space.PageRange(addr, size)
	b.node.EnsureWritable(p, first, last)
}

func (b *svmBackend) Bytes(page int) []byte { return b.node.PageBytes(page) }

func (b *svmBackend) Lock(p *sim.Proc, id int)   { b.node.LockAcquire(p, id) }
func (b *svmBackend) Unlock(p *sim.Proc, id int) { b.node.LockRelease(p, id) }

func (b *svmBackend) Barrier(p *sim.Proc) sim.Time { return b.node.Barrier(p) }

func (b *svmBackend) ComputeScale(mi float64) float64 {
	return 1 + mi*b.sys.Cfg.Costs.SMPBusPenalty*float64(b.sys.Cfg.ProcsPerNode-1)
}

func (b *svmBackend) TakeSteal() sim.Time { return b.node.TakeSteal(b.cpu) }

// nullBackend executes with zero protocol cost against the home copies:
// the sequential reference and uniprocessor-timing backend.
type nullBackend struct {
	ws *Workspace
}

// NewNullBackend creates the zero-cost backend (single processor only).
func NewNullBackend(ws *Workspace) Backend { return &nullBackend{ws: ws} }

func (b *nullBackend) EnsureRead(*sim.Proc, int, int)  {}
func (b *nullBackend) EnsureWrite(*sim.Proc, int, int) {}
func (b *nullBackend) Bytes(page int) []byte           { return b.ws.Space.HomeCopy(page) }
func (b *nullBackend) Lock(*sim.Proc, int)             {}
func (b *nullBackend) Unlock(*sim.Proc, int)           {}
func (b *nullBackend) Barrier(*sim.Proc) sim.Time      { return 0 }
func (b *nullBackend) ComputeScale(float64) float64    { return 1 }
func (b *nullBackend) TakeSteal() sim.Time             { return 0 }

// NewCtx wires a processor context; the harness uses this, and tests may
// construct contexts directly.
func NewCtx(id, n int, p *sim.Proc, be Backend, ws *Workspace, cfg *topo.Config, memIntensity float64) *Ctx {
	return &Ctx{id: id, n: n, p: p, be: be, ws: ws, cfg: cfg, memIntensity: memIntensity}
}

// SetProc binds the context to its simulation process (called by the
// run harness once the processor goroutine starts).
func (c *Ctx) SetProc(p *sim.Proc) { c.p = p }
