package app

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"

	"genima/internal/core"
	"genima/internal/nic"
	"genima/internal/sim"
	"genima/internal/topo"
)

// ErrInterrupted is returned (wrapped with run context) by
// RunSVMControlled when a control hook halted the run before the
// application finished. The partial Result is still returned alongside
// it: its counters are valid up to the halt point.
var ErrInterrupted = errors.New("run interrupted by controller")

// Boundary is a consistent cut of a running simulation, handed to
// RunControl hooks. It is only valid during the hook call: the hooks
// run in deterministic single-threaded contexts (inline with serial
// event execution, or at a cluster barrier), and the simulation resumes
// as soon as the hook returns.
type Boundary struct {
	TraceEvents uint64   // trace events emitted so far (the cut ordinal)
	SimTime     sim.Time // virtual clock at the cut
	Events      uint64   // engine events executed at the cut

	digest func() uint64
}

// StateDigest computes the live-state fingerprint at this cut: engine/LP
// heaps and clocks, NI pools and reliable-delivery flows, protocol
// tables and machines, page contents, fault-stream cursors. It walks
// the whole simulator state, so call it only when the digest is
// actually wanted (checkpoint writes, verification cuts). The value is
// comparable only between runs in the same execution mode — a parallel
// run's deferred-commit backlog makes its live state at a given trace
// ordinal legitimately differ from a serial run's.
func (b *Boundary) StateDigest() uint64 { return b.digest() }

// RunControl hooks a run's trace stream for checkpointing, streaming
// stats, and graceful shutdown. All fields are optional.
type RunControl struct {
	// OnTrace receives every delivered packet with its 0-based ordinal.
	// Restore paths use the ordinal to suppress re-emission of an
	// already-output prefix.
	OnTrace func(idx uint64, ev nic.TraceEvent)

	// OnBoundary runs after every BoundaryEvery-th trace event.
	// Returning false halts the run: the Result comes back partial with
	// ErrInterrupted. Signal handlers and rolling-checkpoint writers
	// live here — the hook runs at a deterministic cut, never from a
	// signal goroutine.
	BoundaryEvery uint64
	OnBoundary    func(b *Boundary) bool

	// OnVerify runs once, when the trace ordinal reaches VerifyAt — the
	// restore path's "did the replay reproduce the checkpointed cut"
	// hook. A non-nil error halts the run and is returned verbatim.
	VerifyAt uint64
	OnVerify func(b *Boundary) error
}

func (ctl *RunControl) active() bool {
	return ctl != nil && (ctl.OnTrace != nil ||
		(ctl.BoundaryEvery > 0 && ctl.OnBoundary != nil) ||
		(ctl.VerifyAt > 0 && ctl.OnVerify != nil))
}

// RunSVMControlled is RunSVMTraced with full run control: a tracer that
// sees ordinals, periodic boundary callbacks at deterministic cuts, a
// one-shot verification cut, and graceful halt. It is the engine under
// checkpoint/restore, soak mode, and signal-safe shutdown.
func RunSVMControlled(cfg topo.Config, kind core.Kind, a App, ctl *RunControl) (*Result, *Workspace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	// Intra-run parallelism: with more than one worker and more than one
	// node, the run is partitioned into shard-granular logical processes
	// under a conservative PDES cluster (LPShards node shards plus the
	// fabric LP; see Config.EffectiveLPShards). The serial path builds no
	// cluster at all, so it is exactly the engine the goldens were
	// recorded on. The wiring below is bipartite by construction — nodes
	// talk to other nodes only through fabric links and switches
	// (TransferCross/RouteCross in internal/network), and NI-local timers
	// stay on their own LP — so the cluster may batch windows per class.
	var cl *sim.Cluster
	var eng *sim.Engine
	if cfg.IntraRunWorkers > 1 && cfg.Nodes > 1 {
		nodeLA, fabLA := cfg.Lookaheads()
		cl = sim.NewCluster(cfg.Nodes, cfg.EffectiveLPShards(), cfg.IntraRunWorkers, nodeLA, fabLA)
		cl.MarkBipartite()
		eng = cl.Main()
	} else {
		eng = sim.NewEngine()
	}
	ws := NewWorkspace(&cfg)
	a.Setup(ws)
	sys := core.New(eng, &cfg, kind, ws.Space)

	// Control plumbing. The tracer below runs only in single-threaded
	// contexts: inline during serial (and lone-mode) event execution,
	// or on the Run goroutine at a cluster barrier while the worker
	// pool is parked — so reading cross-LP state (Events, Now, digests)
	// is safe, and halting is an ordinary flag-and-stop.
	var traceIdx uint64
	var verifyErr error
	var interrupted bool
	if ctl.active() {
		halt := func() {
			interrupted = true
			if cl != nil {
				cl.Stop()
			} else {
				eng.Stop()
			}
		}
		digest := func() uint64 {
			d := sim.NewDigest()
			if cl != nil {
				cl.DigestInto(d)
			} else {
				eng.DigestInto(d)
			}
			sys.DigestInto(d)
			sys.Layer.NIs().DigestInto(d)
			return d.Sum()
		}
		cut := func() *Boundary {
			b := &Boundary{TraceEvents: traceIdx, digest: digest}
			if cl != nil {
				b.SimTime, b.Events = cl.Now(), cl.Events()
			} else {
				b.SimTime, b.Events = eng.Now(), eng.Events()
			}
			return b
		}
		sys.Layer.Monitor().Tracer = func(ev nic.TraceEvent) {
			if interrupted {
				// Barrier defer replay may still commit a few records
				// after the halting hook; they belong past the cut and
				// must not reach the controller.
				return
			}
			idx := traceIdx
			traceIdx++
			if ctl.OnTrace != nil {
				ctl.OnTrace(idx, ev)
			}
			if ctl.OnVerify != nil && ctl.VerifyAt > 0 && traceIdx == ctl.VerifyAt {
				if err := ctl.OnVerify(cut()); err != nil {
					verifyErr = err
					halt()
					return
				}
			}
			if ctl.OnBoundary != nil && ctl.BoundaryEvery > 0 && traceIdx%ctl.BoundaryEvery == 0 {
				if !ctl.OnBoundary(cut()) {
					halt()
				}
			}
		}
	}
	sys.Start()

	n := cfg.NumProcs()
	ctxs := make([]*Ctx, n)
	finish := make([]sim.Time, n)
	var finished int32
	mi := memIntensityOf(a)
	for i := 0; i < n; i++ {
		i := i
		nd, cpu := i/cfg.ProcsPerNode, i%cfg.ProcsPerNode
		be := NewSVMBackend(sys, nd, cpu)
		ctxs[i] = NewCtx(i, n, nil, be, ws, &cfg, mi)
		// Each processor goroutine lives on its node's logical process
		// (LPNode is the engine itself in a serial run).
		eng.LPNode(nd).Go(a.Name()+"-p"+strconv.Itoa(i), func(p *sim.Proc) {
			ctxs[i].p = p
			a.Run(ctxs[i])
			ctxs[i].Barrier() // flush all diffs to the homes
			finish[i] = p.Now()
			atomic.AddInt32(&finished, 1)
		})
	}
	if cl != nil {
		cl.Run()
	} else {
		eng.RunUntilQuiet()
	}
	if verifyErr != nil {
		return nil, nil, verifyErr
	}
	if !interrupted && int(finished) != n {
		return nil, nil, fmt.Errorf("app %s on %v: %d/%d processors finished (protocol deadlock)", a.Name(), kind, finished, n)
	}
	res := collect(kind.String(), ctxs, finish)
	res.Acct = sys.Accounting()
	res.Monitor = sys.Layer.Monitor()
	if cl != nil {
		res.Events = cl.Events()
	} else {
		res.Events = eng.Events()
	}
	nis := sys.Layer.NIs()
	frac := func(busy sim.Time) float64 {
		if res.Elapsed == 0 {
			return 0
		}
		return float64(busy) / float64(res.Elapsed)
	}
	for i, ni := range nis.NIs {
		res.PostQueueStalls += ni.PostQueue.Blocked
		res.PostQueueStallTime += ni.PostQueue.BlockedTime
		res.PostQueueOverflows += ni.Overflows
		res.Util.Firmware = max(res.Util.Firmware, frac(ni.Firmware.BusyTime))
		res.Util.PCI = max(res.Util.PCI, frac(ni.PCI.BusyTime))
		res.Util.Link = max(res.Util.Link,
			frac(nis.Fabric.Out[i].Stats().BusyTime), frac(nis.Fabric.In[i].Stats().BusyTime))
		res.Util.MaxBacklog = maxT(res.Util.MaxBacklog, ni.Firmware.MaxQueued)
	}
	for _, busy := range nis.Fabric.StageBusy() {
		res.Util.Switch = max(res.Util.Switch, frac(busy))
	}
	res.Util.SwitchStage = nis.Fabric.StageBusy()
	res.Faults = nis.FaultReport()
	if interrupted {
		return res, ws, fmt.Errorf("app %s on %v at trace event %d: %w", a.Name(), kind, traceIdx, ErrInterrupted)
	}
	return res, ws, nil
}
