package app

import (
	"fmt"
	"strconv"

	"genima/internal/core"
	"genima/internal/hwdsm"
	"genima/internal/memory"
	"genima/internal/nic"
	"genima/internal/sim"
	"genima/internal/stats"
	"genima/internal/topo"
)

// Result is one run's outcome.
type Result struct {
	Label      string
	Procs      int
	Elapsed    sim.Time // max processor finish time (timed parallel section)
	Breakdowns []stats.Breakdown
	Avg        stats.Breakdown

	// SVM-only details (zero values otherwise).
	Acct         stats.SVMAccounting
	BarrierProto sim.Time // protocol share of barrier time, summed over leaders
	Monitor      *nic.Monitor
	Events       uint64
	// PostQueueStalls counts host sends that blocked on a full NI post
	// queue; PostQueueStallTime is the total time lost to those stalls
	// (the Barnes-spatial direct-diff effect of §3.3).
	// PostQueueOverflows counts event-context posts accepted past a full
	// post queue (those cannot stall, so the depth bound is waived).
	PostQueueStalls    uint64
	PostQueueStallTime sim.Time
	PostQueueOverflows uint64
	// Faults aggregates fault-injection and reliable-delivery counters
	// (all zeros when fault injection is disabled).
	Faults stats.FaultReport
	// Util summarizes communication-substrate occupancy.
	Util Utilization
	// Latency merges the per-processor request-latency histograms of
	// serving workloads (empty for batch apps).
	Latency stats.LatencyRecorder
}

// Utilization reports busy fractions of the communication substrate
// over the run (max across nodes for the per-node devices), plus the
// largest backlog ever seen in an NI firmware queue.
type Utilization struct {
	Firmware    float64    // NI processor (the paper's 33 MHz LANai)
	PCI         float64    // host I/O bus
	Link        float64    // busiest link direction
	Switch      float64    // busiest fabric stage (the crossbar on xbar8)
	SwitchStage []sim.Time // per-stage summed switch busy time (len = fabric stages)
	MaxBacklog  sim.Time   // worst firmware-queue backlog observed
}

// Speedup computes seq.Elapsed / par.Elapsed.
func Speedup(seq, par *Result) float64 {
	if par.Elapsed == 0 {
		return 0
	}
	return float64(seq.Elapsed) / float64(par.Elapsed)
}

func memIntensityOf(a App) float64 {
	if m, ok := a.(MemIntensive); ok {
		return m.MemIntensity()
	}
	return 0
}

// RunSVM executes the app on the SVM protocol `kind` over cfg and
// returns the result plus the final workspace (home copies hold the
// authoritative output after the harness's trailing barrier).
func RunSVM(cfg topo.Config, kind core.Kind, a App) (*Result, *Workspace, error) {
	return RunSVMTraced(cfg, kind, a, nil)
}

// RunSVMTraced is RunSVM with a packet tracer installed on the NI
// firmware monitor: tracer receives every delivered packet. It is a
// thin wrapper over RunSVMControlled (see control.go), which carries
// the full run machinery.
func RunSVMTraced(cfg topo.Config, kind core.Kind, a App, tracer func(nic.TraceEvent)) (*Result, *Workspace, error) {
	var ctl *RunControl
	if tracer != nil {
		ctl = &RunControl{OnTrace: func(_ uint64, ev nic.TraceEvent) { tracer(ev) }}
	}
	return RunSVMControlled(cfg, kind, a, ctl)
}

func maxT(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// RunHW executes the app on the hardware-DSM (Origin-2000-like) model.
func RunHW(cfg topo.Config, a App) (*Result, *Workspace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	eng := sim.NewEngine()
	ws := NewWorkspace(&cfg)
	a.Setup(ws)
	sys := hwdsm.New(eng, &cfg, ws.Space)

	n := cfg.NumProcs()
	ctxs := make([]*Ctx, n)
	finish := make([]sim.Time, n)
	finished := 0
	for i := 0; i < n; i++ {
		i := i
		be := sys.Backend(i)
		ctxs[i] = NewCtx(i, n, nil, be, ws, &cfg, 0)
		eng.Go(a.Name()+"-hw"+strconv.Itoa(i), func(p *sim.Proc) {
			ctxs[i].p = p
			a.Run(ctxs[i])
			ctxs[i].Barrier()
			finish[i] = p.Now()
			finished++
		})
	}
	eng.RunUntilQuiet()
	if finished != n {
		return nil, nil, fmt.Errorf("app %s on hwdsm: %d/%d processors finished", a.Name(), finished, n)
	}
	res := collect("Origin2000", ctxs, finish)
	res.Events = eng.Events()
	return res, ws, nil
}

// RunSeq executes the app on a single zero-overhead processor: the
// sequential reference (for validation) and the uniprocessor time (for
// speedups, per the SPLASH-2 methodology).
func RunSeq(cfg topo.Config, a App) (*Result, *Workspace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	eng := sim.NewEngine()
	ws := NewWorkspace(&cfg)
	a.Setup(ws)

	ctx := NewCtx(0, 1, nil, NewNullBackend(ws), ws, &cfg, 0)
	var finish sim.Time
	finished := 0
	eng.Go(a.Name()+"-seq", func(p *sim.Proc) {
		ctx.p = p
		a.Run(ctx)
		finish = p.Now()
		finished++
	})
	eng.RunUntilQuiet()
	if finished != 1 {
		return nil, nil, fmt.Errorf("app %s sequential run did not finish", a.Name())
	}
	return collect("seq", []*Ctx{ctx}, []sim.Time{finish}), ws, nil
}

func collect(label string, ctxs []*Ctx, finish []sim.Time) *Result {
	res := &Result{Label: label, Procs: len(ctxs)}
	for i, c := range ctxs {
		res.Breakdowns = append(res.Breakdowns, c.Breakdown)
		res.BarrierProto += c.BarrierProto
		res.Latency.Merge(&c.Latency)
		if finish[i] > res.Elapsed {
			res.Elapsed = finish[i]
		}
	}
	res.Avg = stats.Average(res.Breakdowns)
	return res
}

// Validate compares a parallel run's output against the sequential
// reference: exact bytes by default, or the app's Comparer.
func Validate(a App, par, seq *Workspace) error {
	if c, ok := a.(Comparer); ok {
		return c.Compare(par, seq)
	}
	return CompareExact(par, seq)
}

// CompareExact checks every region byte-for-byte.
func CompareExact(par, seq *Workspace) error {
	pr, sr := par.Regions(), seq.Regions()
	if len(pr) != len(sr) {
		return fmt.Errorf("region count mismatch: %d vs %d", len(pr), len(sr))
	}
	for ri, r := range pr {
		if err := compareRegionBytes(par, seq, r, sr[ri]); err != nil {
			return err
		}
	}
	return nil
}

func compareRegionBytes(par, seq *Workspace, r, s memory.Region) error {
	ps := par.Cfg.PageSize
	for off := 0; off < r.Size; off += ps {
		pp := par.Space.HomeCopy((r.Base + off) / ps)
		sp := seq.Space.HomeCopy((s.Base + off) / ps)
		for i := range pp {
			if pp[i] != sp[i] {
				return fmt.Errorf("region %q differs at byte %d: %#x vs %#x", r.Name, off+i, pp[i], sp[i])
			}
		}
	}
	return nil
}

// CompareF64Tolerance compares a float64 region element-wise with a
// relative tolerance — for apps whose parallel reduction order differs.
func CompareF64Tolerance(par, seq *Workspace, name string, n int, tol float64) error {
	r := par.Region(name)
	s := seq.Region(name)
	for i := 0; i < n; i++ {
		a, b := par.F64(r, i), seq.F64(s, i)
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if b > 1 || b < -1 {
			if b < 0 {
				scale = -b
			} else {
				scale = b
			}
		}
		if diff > tol*scale {
			return fmt.Errorf("region %q element %d: %g vs %g (tol %g)", name, i, a, b, tol)
		}
	}
	return nil
}
