package app

import (
	"math/rand"
	"testing"
	"testing/quick"

	"genima/internal/core"
	"genima/internal/memory"
	"genima/internal/sim"
	"genima/internal/stats"
	"genima/internal/topo"
)

// bulkApp round-trips data through the bulk helpers across pages.
type bulkApp struct {
	n    int
	seed int64
	fail string
}

func (a *bulkApp) Name() string { return "bulk" }
func (a *bulkApp) Ops() float64 { return 1 }

func (a *bulkApp) Setup(ws *Workspace) {
	ws.Alloc("f", 8*a.n, memory.RoundRobin)
	ws.Alloc("i", 4*a.n, memory.RoundRobin)
}

func (a *bulkApp) Run(ctx *Ctx) {
	if ctx.ID() != 0 {
		ctx.Barrier()
		return
	}
	ws := ctx.Workspace()
	rng := rand.New(rand.NewSource(a.seed))
	f := make([]float64, a.n)
	for i := range f {
		f[i] = rng.NormFloat64()
	}
	// Write at an unaligned element offset spanning pages, read back.
	off := rng.Intn(100)
	ctx.CopyInF64(ws.Region("f"), off, f[:a.n-off])
	back := make([]float64, a.n-off)
	ctx.CopyOutF64(ws.Region("f"), off, back)
	for i := range back {
		if back[i] != f[i] {
			a.fail = "float64 round trip"
			break
		}
	}
	iv := make([]int32, a.n)
	for i := range iv {
		iv[i] = rng.Int31()
	}
	ctx.CopyInI32(ws.Region("i"), 0, iv)
	ib := make([]int32, a.n)
	ctx.CopyOutI32(ws.Region("i"), 0, ib)
	for i := range ib {
		if ib[i] != iv[i] {
			a.fail = "int32 round trip"
			break
		}
	}
	ctx.Barrier()
}

func TestBulkRoundTripAcrossPages(t *testing.T) {
	prop := func(seed int64) bool {
		a := &bulkApp{n: 2000, seed: seed} // 16 KB: spans 4 pages
		cfg := testConfig()
		if _, _, err := RunSVM(cfg, core.GeNIMA, a); err != nil {
			t.Fatal(err)
		}
		return a.fail == ""
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// attributionApp checks that each Ctx operation charges the right
// breakdown category.
type attributionApp struct{}

func (a *attributionApp) Name() string { return "attr" }
func (a *attributionApp) Ops() float64 { return 1 }

func (a *attributionApp) Setup(ws *Workspace) {
	ws.Alloc("x", 4096*4, memory.RoundRobin)
}

func (a *attributionApp) Run(ctx *Ctx) {
	x := ctx.Workspace().Region("x")
	ctx.Compute(1000)
	ctx.SetF64(x, 512*ctx.ID()%1024, 1) // remote fault for most procs
	ctx.Lock(1)
	ctx.Unlock(1)
	ctx.Acquire(2)
	ctx.Release(2)
	ctx.Barrier()
}

func TestBreakdownAttribution(t *testing.T) {
	cfg := testConfig()
	res, _, err := RunSVM(cfg, core.Base, &attributionApp{})
	if err != nil {
		t.Fatal(err)
	}
	var sum stats.Breakdown
	for _, b := range res.Breakdowns {
		sum.Merge(b)
	}
	for _, c := range []stats.Category{stats.Compute, stats.Data, stats.Lock, stats.AcqRel, stats.Barrier} {
		if sum.T[c] == 0 {
			t.Errorf("category %v never charged", c)
		}
	}
}

func TestForEachSpanCoversExactly(t *testing.T) {
	cfg := topo.Default()
	ws := NewWorkspace(&cfg)
	ws.Alloc("r", 4*cfg.PageSize, memory.RoundRobin)
	ctx := NewCtx(0, 1, nil, NewNullBackend(ws), ws, &cfg, 0)
	prop := func(a, s uint16) bool {
		addr := int(a) % (3 * cfg.PageSize)
		size := int(s)%cfg.PageSize + 1
		covered := 0
		prevEnd := addr
		ok := true
		ctx.forEachSpan(addr, size, func(pg []byte, off, n, done int) {
			if done != covered {
				ok = false
			}
			if addr+done != prevEnd {
				ok = false
			}
			if off+n > len(pg) {
				ok = false
			}
			covered += n
			prevEnd = addr + done + n
		})
		return ok && covered == size
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSuiteDeterminism(t *testing.T) {
	a := &sumApp{n: 4096}
	run := func() sim.Time {
		res, _, err := RunSVM(testConfig(), core.GeNIMA, a)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	first := run()
	for i := 0; i < 3; i++ {
		if again := run(); again != first {
			t.Fatalf("elapsed differs across identical runs: %d vs %d", first, again)
		}
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 0
	if _, _, err := RunSVM(cfg, core.Base, &sumApp{n: 256}); err == nil {
		t.Error("invalid config accepted by RunSVM")
	}
	if _, _, err := RunHW(cfg, &sumApp{n: 256}); err == nil {
		t.Error("invalid config accepted by RunHW")
	}
	if _, _, err := RunSeq(cfg, &sumApp{n: 256}); err == nil {
		t.Error("invalid config accepted by RunSeq")
	}
}

func TestUtilizationBounded(t *testing.T) {
	a := &sumApp{n: 16384}
	res, _, err := RunSVM(testConfig(), core.Base, a)
	if err != nil {
		t.Fatal(err)
	}
	u := res.Util
	for name, v := range map[string]float64{
		"firmware": u.Firmware, "pci": u.PCI, "link": u.Link, "switch": u.Switch,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s utilization = %v, want [0,1]", name, v)
		}
	}
	if u.Firmware == 0 || u.PCI == 0 {
		t.Error("no substrate activity recorded")
	}
}
