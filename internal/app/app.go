// Package app defines the programming interface the workloads use — a
// shared-address-space API with locks and barriers — and the harness
// that runs a workload over any execution backend: the SVM protocol
// family (internal/core), the hardware-DSM model (internal/hwdsm), or a
// zero-cost sequential backend used for reference results and
// uniprocessor timings.
//
// Applications compute on real bytes in the shared space; the harness
// validates parallel results against a sequential run of the same code.
package app

import (
	"fmt"

	"genima/internal/memory"
	"genima/internal/sim"
	"genima/internal/topo"
)

// App is one workload (an analogue of a SPLASH-2 application).
type App interface {
	// Name is a short identifier ("fft", "barnes", ...).
	Name() string
	// Setup allocates shared regions and initializes them. It runs
	// sequentially, outside the timed section (SPLASH-2 rules).
	Setup(ws *Workspace)
	// Run is the parallel computation, executed once per processor.
	Run(ctx *Ctx)
	// Ops returns the approximate sequential operation count, used for
	// reporting only.
	Ops() float64
}

// Comparer lets an app replace exact byte comparison of results with a
// tolerance-aware check (needed when floating-point reduction order
// differs between sequential and parallel runs).
type Comparer interface {
	Compare(par, seq *Workspace) error
}

// MemIntensive marks apps whose compute time suffers SMP memory-bus
// contention (the paper calls out FFT and Ocean); the value in [0,1]
// scales the configured bus penalty.
type MemIntensive interface {
	MemIntensity() float64
}

// Backend is one processor's view of an execution model.
type Backend interface {
	// EnsureRead makes [addr, addr+size) readable, blocking for any
	// remote traffic.
	EnsureRead(p *sim.Proc, addr, size int)
	// EnsureWrite makes [addr, addr+size) writable.
	EnsureWrite(p *sim.Proc, addr, size int)
	// Bytes returns the processor's working copy of the page holding
	// addr (after an Ensure call).
	Bytes(page int) []byte
	// Lock/Unlock provide system-wide mutual exclusion.
	Lock(p *sim.Proc, id int)
	Unlock(p *sim.Proc, id int)
	// Barrier blocks until all processors arrive; it returns the
	// protocol-processing portion of the elapsed time.
	Barrier(p *sim.Proc) sim.Time
	// ComputeScale multiplies compute time (SMP bus contention).
	ComputeScale(memIntensity float64) float64
	// TakeSteal returns pending stolen time (interrupt scheduling
	// perturbation) to fold into the next compute period.
	TakeSteal() sim.Time
}

// Workspace is the allocation view of the shared space, used by Setup
// (sequential, zero-cost direct access) and by result comparison.
type Workspace struct {
	Cfg     *topo.Config
	Space   *memory.Space
	regions map[string]memory.Region
}

// NewWorkspace wraps a fresh space.
func NewWorkspace(cfg *topo.Config) *Workspace {
	return &Workspace{
		Cfg:     cfg,
		Space:   memory.NewSpace(cfg.PageSize, cfg.WordSize, cfg.Nodes),
		regions: map[string]memory.Region{},
	}
}

// Alloc reserves a named shared region.
func (ws *Workspace) Alloc(name string, bytes int, pol memory.HomePolicy) memory.Region {
	if _, dup := ws.regions[name]; dup {
		panic(fmt.Sprintf("app: duplicate region %q", name))
	}
	r := ws.Space.Alloc(name, bytes, pol)
	ws.regions[name] = r
	return r
}

// Region returns a previously allocated region by name.
func (ws *Workspace) Region(name string) memory.Region {
	r, ok := ws.regions[name]
	if !ok {
		panic(fmt.Sprintf("app: unknown region %q", name))
	}
	return r
}

// Regions lists allocated regions in allocation order.
func (ws *Workspace) Regions() []memory.Region { return ws.Space.Regions() }

// --- Direct (setup-time / verification-time) accessors. ---

func (ws *Workspace) page(addr int) []byte {
	return ws.Space.HomeCopy(addr / ws.Cfg.PageSize)
}

// SetF64 stores a float64 at element index i of region r.
func (ws *Workspace) SetF64(r memory.Region, i int, v float64) {
	addr := r.Base + 8*i
	putF64(ws.page(addr), addr%ws.Cfg.PageSize, v)
}

// F64 loads a float64 from element index i of region r.
func (ws *Workspace) F64(r memory.Region, i int) float64 {
	addr := r.Base + 8*i
	return getF64(ws.page(addr), addr%ws.Cfg.PageSize)
}

// SetI32 stores an int32 at element index i of region r.
func (ws *Workspace) SetI32(r memory.Region, i int, v int32) {
	addr := r.Base + 4*i
	putI32(ws.page(addr), addr%ws.Cfg.PageSize, v)
}

// I32 loads an int32 from element index i of region r.
func (ws *Workspace) I32(r memory.Region, i int) int32 {
	addr := r.Base + 4*i
	return getI32(ws.page(addr), addr%ws.Cfg.PageSize)
}

// SetI64 stores an int64 at element index i of region r.
func (ws *Workspace) SetI64(r memory.Region, i int, v int64) {
	addr := r.Base + 8*i
	putI64(ws.page(addr), addr%ws.Cfg.PageSize, v)
}

// I64 loads an int64 from element index i of region r.
func (ws *Workspace) I64(r memory.Region, i int) int64 {
	addr := r.Base + 8*i
	return getI64(ws.page(addr), addr%ws.Cfg.PageSize)
}
