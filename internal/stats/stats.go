// Package stats collects and formats execution-time statistics for the
// simulated SVM system: per-processor execution-time breakdowns in the
// paper's five categories, overhead sub-accounting (mprotect, barrier
// protocol time), and simple aggregation helpers used by the benchmark
// harness to regenerate the paper's tables and figures.
package stats

import (
	"fmt"
	"strings"

	"genima/internal/sim"
)

// Category classifies where a simulated processor's time goes, matching
// the execution-time breakdown of Figure 3 in the paper.
type Category int

const (
	// Compute is useful work, including local memory stalls.
	Compute Category = iota
	// Data is time spent on remote memory accesses (page faults).
	Data
	// Lock is time spent in lock synchronization.
	Lock
	// AcqRel is time in acquire/release primitives used purely for
	// release consistency (no mutual exclusion).
	AcqRel
	// Barrier is time spent in barriers.
	Barrier
	numCategories
)

var categoryNames = [...]string{"Compute", "Data", "Lock", "Acq/Rel", "Barrier"}

// String returns the category's display name.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// NumCategories is the number of breakdown categories.
const NumCategories = int(numCategories)

// Breakdown accumulates virtual time per category for one processor.
type Breakdown struct {
	T [NumCategories]sim.Time
}

// Add charges d to category c.
func (b *Breakdown) Add(c Category, d sim.Time) { b.T[c] += d }

// Total returns the sum over all categories.
func (b *Breakdown) Total() sim.Time {
	var t sim.Time
	for _, v := range b.T {
		t += v
	}
	return t
}

// Overhead returns total SVM overhead (everything except Compute).
func (b *Breakdown) Overhead() sim.Time { return b.Total() - b.T[Compute] }

// Merge adds o into b.
func (b *Breakdown) Merge(o Breakdown) {
	for i := range b.T {
		b.T[i] += o.T[i]
	}
}

// Average returns the mean breakdown over procs (empty input yields zero).
func Average(procs []Breakdown) Breakdown {
	var sum Breakdown
	if len(procs) == 0 {
		return sum
	}
	for _, p := range procs {
		sum.Merge(p)
	}
	for i := range sum.T {
		sum.T[i] /= sim.Time(len(procs))
	}
	return sum
}

// Fractions returns each category's share of the total (zeros if empty).
func (b *Breakdown) Fractions() [NumCategories]float64 {
	var f [NumCategories]float64
	tot := b.Total()
	if tot == 0 {
		return f
	}
	for i, v := range b.T {
		f[i] = float64(v) / float64(tot)
	}
	return f
}

// SVMAccounting tracks overhead sub-components the paper's Table 2
// reports: where barrier time goes and how much of all SVM overhead is
// mprotect.
type SVMAccounting struct {
	BarrierWait  sim.Time // imbalance: waiting for other processors
	BarrierProto sim.Time // protocol processing at barriers (incl. mprotect there)
	Mprotect     sim.Time // all mprotect time, wherever incurred
	MprotectOps  uint64   // number of mprotect system calls (post-coalescing)
	DiffCompute  sim.Time // time spent computing diffs
	DiffBytes    uint64   // bytes of diff data produced
	PageFetches  uint64   // remote page fetches
	FetchRetries uint64   // remote-fetch retries due to stale home version
	LockOps      uint64   // remote lock acquires
	Interrupts   uint64   // host interrupts taken (Base-style asynchronous handling)
}

// Merge adds o into a.
func (a *SVMAccounting) Merge(o SVMAccounting) {
	a.BarrierWait += o.BarrierWait
	a.BarrierProto += o.BarrierProto
	a.Mprotect += o.Mprotect
	a.MprotectOps += o.MprotectOps
	a.DiffCompute += o.DiffCompute
	a.DiffBytes += o.DiffBytes
	a.PageFetches += o.PageFetches
	a.FetchRetries += o.FetchRetries
	a.LockOps += o.LockOps
	a.Interrupts += o.Interrupts
}

// FaultReport aggregates the fault-injection and NI reliable-delivery
// counters for one run: what the fault plan injected into the fabric,
// and what the firmware reliability layer did to mask it. All zeros
// when fault injection is disabled.
type FaultReport struct {
	// Injected by the fault plan, at link granularity.
	DropsInjected    uint64 // packets lost on a link crossing
	DupsInjected     uint64 // packets delivered twice by the in-link
	DelaysInjected   uint64 // packets held for an extra reorder delay
	CorruptsInjected uint64 // packets with flipped payload bits
	DownDrops        uint64 // packets lost to a timed link-down window

	// Masked by the NI reliable-delivery layer.
	RetxSent       uint64 // retransmissions sent (go-back-N bursts)
	DupsSuppressed uint64 // arrivals below the cumulative ack, discarded
	OOODropped     uint64 // out-of-order arrivals discarded (go-back-N)
	CorruptDropped uint64 // checksum-failed arrivals discarded
	AcksSent       uint64 // standalone cumulative acks
	PiggybackAcks  uint64 // acks carried by reverse data traffic

	// Recovery time: first transmission to cumulative ack, over packets
	// that needed at least one retransmission.
	Recovered     uint64
	TotalRecovery sim.Time
	MaxRecovery   sim.Time
}

// Merge adds o into r.
func (r *FaultReport) Merge(o FaultReport) {
	r.DropsInjected += o.DropsInjected
	r.DupsInjected += o.DupsInjected
	r.DelaysInjected += o.DelaysInjected
	r.CorruptsInjected += o.CorruptsInjected
	r.DownDrops += o.DownDrops
	r.RetxSent += o.RetxSent
	r.DupsSuppressed += o.DupsSuppressed
	r.OOODropped += o.OOODropped
	r.CorruptDropped += o.CorruptDropped
	r.AcksSent += o.AcksSent
	r.PiggybackAcks += o.PiggybackAcks
	r.Recovered += o.Recovered
	r.TotalRecovery += o.TotalRecovery
	if o.MaxRecovery > r.MaxRecovery {
		r.MaxRecovery = o.MaxRecovery
	}
}

// Any reports whether the run saw any fault or reliability activity.
func (r *FaultReport) Any() bool {
	return r.DropsInjected+r.DupsInjected+r.DelaysInjected+r.CorruptsInjected+
		r.DownDrops+r.RetxSent+r.DupsSuppressed+r.OOODropped+r.CorruptDropped+
		r.AcksSent+r.PiggybackAcks > 0
}

// MeanRecovery returns the average first-send-to-ack latency of packets
// that needed retransmission (0 when none did).
func (r *FaultReport) MeanRecovery() sim.Time {
	if r.Recovered == 0 {
		return 0
	}
	return r.TotalRecovery / sim.Time(r.Recovered)
}

// DigestInto folds every breakdown category into d.
func (b *Breakdown) DigestInto(d *sim.Digest) {
	for _, v := range b.T {
		d.I64(v)
	}
}

// DigestInto folds the accounting counters into d.
func (a *SVMAccounting) DigestInto(d *sim.Digest) {
	d.I64(a.BarrierWait)
	d.I64(a.BarrierProto)
	d.I64(a.Mprotect)
	d.U64(a.MprotectOps)
	d.I64(a.DiffCompute)
	d.U64(a.DiffBytes)
	d.U64(a.PageFetches)
	d.U64(a.FetchRetries)
	d.U64(a.LockOps)
	d.U64(a.Interrupts)
}

// DigestInto folds the fault counters into d.
func (r *FaultReport) DigestInto(d *sim.Digest) {
	d.U64(r.DropsInjected)
	d.U64(r.DupsInjected)
	d.U64(r.DelaysInjected)
	d.U64(r.CorruptsInjected)
	d.U64(r.DownDrops)
	d.U64(r.RetxSent)
	d.U64(r.DupsSuppressed)
	d.U64(r.OOODropped)
	d.U64(r.CorruptDropped)
	d.U64(r.AcksSent)
	d.U64(r.PiggybackAcks)
	d.U64(r.Recovered)
	d.I64(r.TotalRecovery)
	d.I64(r.MaxRecovery)
}

// Seconds renders a virtual time as seconds.
func Seconds(t sim.Time) float64 { return float64(t) / float64(sim.Second) }

// Pct renders a ratio as a percentage.
func Pct(num, den sim.Time) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// Table is a minimal fixed-width text table writer used by the bench
// harness to print paper-style rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	ncol := len(t.header)
	width := make([]int, ncol)
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < ncol && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range width {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(ncol-1)))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
