package stats

import (
	"fmt"
	"math/bits"

	"genima/internal/sim"
)

// LatencyRecorder is a fixed-bucket log-scaled histogram of virtual-time
// request latencies. Buckets are log-linear: each power-of-two octave is
// split into 2^latSubBits linear sub-buckets, bounding the relative
// error of any reported quantile by 1/2^latSubBits (12.5%) while keeping
// the table a small fixed array — no allocation per sample, mergeable
// across nodes by element-wise addition, and deterministic: the recorded
// distribution is a pure function of the sampled virtual times.
//
// Values are sim.Time nanoseconds. Samples below zero are clamped to
// zero; samples at or above the last bucket's bound land in the final
// catch-all bucket (its reported upper bound is the recorded Max, which
// is tracked exactly).
type LatencyRecorder struct {
	buckets [latBuckets]uint64
	count   uint64
	sum     sim.Time
	max     sim.Time
}

const (
	// latSubBits sub-divides each octave into 8 linear sub-buckets.
	latSubBits = 3
	latSubs    = 1 << latSubBits
	// latBuckets covers [0, 2^62): values 0..2^latSubBits-1 map one-to-one
	// to the first latSubs buckets, then each of the remaining octaves
	// (exponents latSubBits..61) contributes latSubs buckets.
	latBuckets = latSubs * (63 - latSubBits)
)

// latBucketIdx maps a non-negative latency to its bucket index.
func latBucketIdx(v sim.Time) int {
	u := uint64(v)
	if u < latSubs {
		return int(u)
	}
	e := bits.Len64(u) - 1 // position of the top set bit, ≥ latSubBits
	sub := int(u>>(uint(e)-latSubBits)) & (latSubs - 1)
	idx := (e-latSubBits)*latSubs + latSubs + sub
	if idx >= latBuckets {
		return latBuckets - 1
	}
	return idx
}

// latBucketUpper returns the exclusive upper bound of bucket idx — the
// value reported for a quantile that lands in this bucket, making every
// reported quantile an overestimate by at most one sub-bucket width.
func latBucketUpper(idx int) sim.Time {
	if idx < latSubs {
		return sim.Time(idx + 1)
	}
	e := uint(idx-latSubs)/latSubs + latSubBits
	sub := uint64(idx-latSubs) % latSubs
	return sim.Time((uint64(latSubs) + sub + 1) << (e - latSubBits))
}

// Record adds one latency sample.
func (l *LatencyRecorder) Record(v sim.Time) {
	if v < 0 {
		v = 0
	}
	l.buckets[latBucketIdx(v)]++
	l.count++
	l.sum += v
	if v > l.max {
		l.max = v
	}
}

// Merge folds other into l. Merging is associative and commutative, so
// per-node recorders can be combined in any order with identical
// results.
func (l *LatencyRecorder) Merge(other *LatencyRecorder) {
	for i := range l.buckets {
		l.buckets[i] += other.buckets[i]
	}
	l.count += other.count
	l.sum += other.sum
	if other.max > l.max {
		l.max = other.max
	}
}

// Count returns the number of recorded samples.
func (l *LatencyRecorder) Count() uint64 { return l.count }

// Sum returns the exact sum of recorded samples.
func (l *LatencyRecorder) Sum() sim.Time { return l.sum }

// Max returns the exact maximum recorded sample (0 when empty).
func (l *LatencyRecorder) Max() sim.Time { return l.max }

// Quantile returns an upper bound on the q-quantile (0 < q ≤ 1) of the
// recorded samples, exact to within one sub-bucket (≤12.5% relative
// error). Returns 0 when empty. The top bucket reports the exact Max.
func (l *LatencyRecorder) Quantile(q float64) sim.Time {
	if l.count == 0 {
		return 0
	}
	// Rank of the q-quantile, 1-based, clamped to [1, count]: the
	// smallest sample position covering fraction q of the distribution.
	rank := uint64(q * float64(l.count))
	if float64(rank) < q*float64(l.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > l.count {
		rank = l.count
	}
	var seen uint64
	for i, c := range l.buckets {
		seen += c
		if seen >= rank {
			u := latBucketUpper(i)
			if u > l.max {
				u = l.max
			}
			return u
		}
	}
	return l.max
}

// DigestInto folds the recorder's full state into d, pinning the exact
// latency distribution for checkpoint/restore verification.
func (l *LatencyRecorder) DigestInto(d *sim.Digest) {
	d.U64(l.count)
	d.U64(uint64(l.sum))
	d.U64(uint64(l.max))
	for _, c := range l.buckets {
		d.U64(c)
	}
}

// LatencySummary is the reporting view of a LatencyRecorder: request
// count plus the tail quantiles the serving experiments report.
type LatencySummary struct {
	Count uint64
	Mean  sim.Time
	P50   sim.Time
	P90   sim.Time
	P99   sim.Time
	P999  sim.Time
	Max   sim.Time
}

// Summary computes the reporting view. Zero-valued when empty.
func (l *LatencyRecorder) Summary() LatencySummary {
	if l.count == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Count: l.count,
		Mean:  l.sum / sim.Time(l.count),
		P50:   l.Quantile(0.50),
		P90:   l.Quantile(0.90),
		P99:   l.Quantile(0.99),
		P999:  l.Quantile(0.999),
		Max:   l.max,
	}
}

// Throughput returns completed requests per simulated second over the
// elapsed virtual time (0 if elapsed is not positive).
func (l *LatencyRecorder) Throughput(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(l.count) / Seconds(elapsed)
}

// String renders the summary as a single human-readable line in
// microseconds.
func (s LatencySummary) String() string {
	us := func(t sim.Time) float64 { return float64(t) / 1e3 }
	return fmt.Sprintf("reqs=%d mean=%.1fµs p50=%.1fµs p90=%.1fµs p99=%.1fµs p999=%.1fµs max=%.1fµs",
		s.Count, us(s.Mean), us(s.P50), us(s.P90), us(s.P99), us(s.P999), us(s.Max))
}
