package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"genima/internal/sim"
)

func TestBreakdownAccumulation(t *testing.T) {
	var b Breakdown
	b.Add(Compute, 100)
	b.Add(Compute, 50)
	b.Add(Data, 30)
	b.Add(Barrier, 20)
	if b.Total() != 200 {
		t.Errorf("total = %d", b.Total())
	}
	if b.Overhead() != 50 {
		t.Errorf("overhead = %d", b.Overhead())
	}
}

func TestBreakdownMergeAndAverage(t *testing.T) {
	a := Breakdown{}
	a.Add(Compute, 100)
	b := Breakdown{}
	b.Add(Compute, 300)
	b.Add(Lock, 40)
	avg := Average([]Breakdown{a, b})
	if avg.T[Compute] != 200 {
		t.Errorf("avg compute = %d", avg.T[Compute])
	}
	if avg.T[Lock] != 20 {
		t.Errorf("avg lock = %d", avg.T[Lock])
	}
	if z := Average(nil); z.Total() != 0 {
		t.Error("empty average not zero")
	}
}

func TestFractionsSumToOne(t *testing.T) {
	prop := func(c, d, l, a, bar uint16) bool {
		var b Breakdown
		b.Add(Compute, sim.Time(c))
		b.Add(Data, sim.Time(d))
		b.Add(Lock, sim.Time(l))
		b.Add(AcqRel, sim.Time(a))
		b.Add(Barrier, sim.Time(bar))
		f := b.Fractions()
		sum := 0.0
		for _, v := range f {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		if b.Total() == 0 {
			return sum == 0
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCategoryNames(t *testing.T) {
	want := []string{"Compute", "Data", "Lock", "Acq/Rel", "Barrier"}
	for i, w := range want {
		if Category(i).String() != w {
			t.Errorf("category %d = %q, want %q", i, Category(i), w)
		}
	}
	if !strings.Contains(Category(99).String(), "99") {
		t.Error("out-of-range category should embed its value")
	}
}

func TestSVMAccountingMerge(t *testing.T) {
	a := SVMAccounting{Mprotect: 10, MprotectOps: 2, PageFetches: 5, Interrupts: 1}
	b := SVMAccounting{Mprotect: 5, MprotectOps: 1, PageFetches: 3, LockOps: 7}
	a.Merge(b)
	if a.Mprotect != 15 || a.MprotectOps != 3 || a.PageFetches != 8 || a.LockOps != 7 || a.Interrupts != 1 {
		t.Errorf("merged = %+v", a)
	}
}

func TestHelpers(t *testing.T) {
	if Seconds(sim.Second) != 1 {
		t.Error("Seconds(1s) != 1")
	}
	if Pct(25, 100) != 25 {
		t.Error("Pct wrong")
	}
	if Pct(1, 0) != 0 {
		t.Error("Pct with zero denominator should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("App", "Speedup")
	tab.Row("FFT", 2.5)
	tab.Row("LU-contiguous", 7.0)
	out := tab.String()
	if !strings.Contains(out, "FFT") || !strings.Contains(out, "2.50") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Errorf("table has %d lines", len(lines))
	}
	// Columns align: both rows start their second column at the same
	// offset as the header's.
	idx := strings.Index(lines[0], "Speedup")
	if !strings.HasPrefix(lines[2][idx:], "2.50") {
		t.Errorf("misaligned columns:\n%s", out)
	}
}
