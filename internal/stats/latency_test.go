package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"genima/internal/rng"
	"genima/internal/sim"
)

// TestLatBucketBoundaries checks bucket-boundary exactness: indices are
// contiguous and monotone, every value lands strictly below its
// bucket's upper bound, and the upper bound of bucket i is where bucket
// i+1 begins.
func TestLatBucketBoundaries(t *testing.T) {
	// Exhaustive over the small values, then probe every octave edge.
	prev := -1
	for u := sim.Time(0); u < 4096; u++ {
		idx := latBucketIdx(u)
		if idx != prev && idx != prev+1 {
			t.Fatalf("bucket index jumped %d -> %d at value %d", prev, idx, u)
		}
		prev = idx
		if u >= latBucketUpper(idx) {
			t.Fatalf("value %d not below its bucket %d upper bound %d", u, idx, latBucketUpper(idx))
		}
		if idx > 0 && u < latBucketUpper(idx-1) {
			t.Fatalf("value %d below previous bucket %d upper bound %d", u, idx-1, latBucketUpper(idx-1))
		}
	}
	for e := uint(3); e < 62; e++ {
		for _, u := range []sim.Time{1 << e, (1 << e) - 1, (1 << e) + 1} {
			idx := latBucketIdx(u)
			if idx < 0 || idx >= latBuckets {
				t.Fatalf("value %d maps to out-of-range bucket %d", u, idx)
			}
			if u >= latBucketUpper(idx) && idx != latBuckets-1 {
				t.Fatalf("value %d >= upper bound %d of its bucket %d", u, latBucketUpper(idx), idx)
			}
		}
	}
	// Exact low buckets: values 0..7 are recorded with zero error.
	for u := sim.Time(0); u < 8; u++ {
		var l LatencyRecorder
		l.Record(u)
		if got := l.Quantile(1); got != u {
			t.Fatalf("low value %d reported as %d", u, got)
		}
	}
}

func TestLatBucketUpperMonotone(t *testing.T) {
	for i := 1; i < latBuckets; i++ {
		if latBucketUpper(i) <= latBucketUpper(i-1) {
			t.Fatalf("upper bound not monotone at bucket %d: %d <= %d",
				i, latBucketUpper(i), latBucketUpper(i-1))
		}
	}
}

// samplesFromSeed expands a seed into a deterministic latency sample
// set spanning several octaves, like real request latencies do.
func samplesFromSeed(seed uint64, n int) []sim.Time {
	r := rng.New(seed)
	out := make([]sim.Time, n)
	for i := range out {
		// Log-uniform over [1, 2^40): exercise many octaves.
		e := r.Intn(40)
		out[i] = sim.Time(uint64(1)<<uint(e) | r.Next()&((1<<uint(e))-1))
	}
	return out
}

func recorderOf(samples []sim.Time) *LatencyRecorder {
	var l LatencyRecorder
	for _, s := range samples {
		l.Record(s)
	}
	return &l
}

// TestMergeAssociativeCommutative: merging per-node recorders in any
// order or grouping yields identical state.
func TestMergeAssociativeCommutative(t *testing.T) {
	f := func(s1, s2, s3 uint64) bool {
		a := func() *LatencyRecorder { return recorderOf(samplesFromSeed(s1, 50)) }
		b := func() *LatencyRecorder { return recorderOf(samplesFromSeed(s2, 70)) }
		c := func() *LatencyRecorder { return recorderOf(samplesFromSeed(s3, 30)) }

		// (a+b)+c
		l1 := a()
		l1.Merge(b())
		l1.Merge(c())
		// a+(b+c)
		bc := b()
		bc.Merge(c())
		l2 := a()
		l2.Merge(bc)
		// c+b+a
		l3 := c()
		l3.Merge(b())
		l3.Merge(a())

		return *l1 == *l2 && *l1 == *l3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuantileAgainstSortOracle: every reported quantile must bracket
// the exact (sort-based) quantile from above within the histogram's
// 12.5% relative-error bound, and never exceed the exact max.
func TestQuantileAgainstSortOracle(t *testing.T) {
	f := func(seed uint64) bool {
		samples := samplesFromSeed(seed, 200)
		l := recorderOf(samples)
		sorted := append([]sim.Time(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
			rank := int(math.Ceil(q * float64(len(sorted))))
			if rank < 1 {
				rank = 1
			}
			exact := sorted[rank-1]
			got := l.Quantile(q)
			if got < exact {
				return false // quantile must be an upper bound
			}
			if float64(got) > float64(exact)*1.125+1 {
				return false // within one sub-bucket (≤12.5%)
			}
		}
		return l.Quantile(1) == l.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuantileMonotone: q1 ≤ q2 implies Quantile(q1) ≤ Quantile(q2).
func TestQuantileMonotone(t *testing.T) {
	f := func(seed uint64, a, b uint16) bool {
		l := recorderOf(samplesFromSeed(seed, 100))
		q1 := float64(a%1000+1) / 1000
		q2 := float64(b%1000+1) / 1000
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return l.Quantile(q1) <= l.Quantile(q2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRecorder(t *testing.T) {
	var l LatencyRecorder
	if l.Count() != 0 || l.Max() != 0 || l.Quantile(0.99) != 0 {
		t.Fatalf("empty recorder not zero: %+v", l.Summary())
	}
	if s := l.Summary(); s != (LatencySummary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
	if l.Throughput(sim.Second) != 0 {
		t.Fatal("empty throughput nonzero")
	}
}

func TestCountSumMaxExact(t *testing.T) {
	samples := []sim.Time{5, 1000, 123456, 7, 999999999}
	l := recorderOf(samples)
	var sum sim.Time
	for _, s := range samples {
		sum += s
	}
	if l.Count() != uint64(len(samples)) || l.Sum() != sum || l.Max() != 999999999 {
		t.Fatalf("count=%d sum=%d max=%d", l.Count(), l.Sum(), l.Max())
	}
	if l.Summary().Mean != sum/sim.Time(len(samples)) {
		t.Fatalf("mean = %d", l.Summary().Mean)
	}
}

func TestNegativeClamped(t *testing.T) {
	var l LatencyRecorder
	l.Record(-100)
	if l.Max() != 0 || l.Quantile(1) != 0 || l.Count() != 1 {
		t.Fatalf("negative sample not clamped: %+v", l.Summary())
	}
}

func TestThroughput(t *testing.T) {
	var l LatencyRecorder
	for i := 0; i < 500; i++ {
		l.Record(sim.Time(i))
	}
	if got := l.Throughput(sim.Second / 2); got != 1000 {
		t.Fatalf("throughput = %v, want 1000", got)
	}
}
