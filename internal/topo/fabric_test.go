package topo

import (
	"strings"
	"testing"
)

func TestParseTopoVocabulary(t *testing.T) {
	for s, want := range map[string]TopoKind{
		"xbar": TopoXbar, "xbar8": TopoXbar,
		"clos2": TopoClos2, "fattree": TopoFatTree,
	} {
		got, err := ParseTopo(s)
		if err != nil || got != want {
			t.Errorf("ParseTopo(%q) = %v, %v", s, got, err)
		}
		if rt, _ := ParseTopo(got.String()); rt != got {
			t.Errorf("%v does not round-trip through String", got)
		}
	}
	if _, err := ParseTopo("torus"); err == nil || !strings.Contains(err.Error(), "torus") {
		t.Errorf("bad topology accepted: %v", err)
	}
}

// TestValidateFabricErrorMessages pins the actionable content of each
// new rejection: the message must name the offending knob and value.
func TestValidateFabricErrorMessages(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"odd radix", func(c *Config) { c.Topo = TopoClos2; c.SwitchRadix = 7 },
			"even SwitchRadix >= 4, got 7"},
		{"tiny radix", func(c *Config) { c.Topo = TopoFatTree; c.SwitchRadix = 2 },
			"even SwitchRadix >= 4, got 2"},
		{"over clos2 capacity", func(c *Config) { c.Topo = TopoClos2; c.SwitchRadix = 4; c.Nodes = 9 },
			"holds at most 8 nodes, got Nodes = 9"},
		{"over fattree capacity", func(c *Config) { c.Topo = TopoFatTree; c.SwitchRadix = 4; c.Nodes = 17 },
			"holds at most 16 nodes, got Nodes = 17"},
		{"unknown kind", func(c *Config) { c.Topo = TopoKind(9) },
			"Topo = 9 invalid"},
		{"arity", func(c *Config) { c.Collectives = true; c.CollectiveArity = 1 },
			"CollectiveArity >= 2, got 1"},
		{"vector vs packet", func(c *Config) {
			c.Collectives = true
			c.Topo = TopoClos2
			c.SwitchRadix = 64
			c.Nodes = 1024
		}, "8*Nodes = 8192 bytes"},
		{"zero lookahead", func(c *Config) { c.IntraRunWorkers = 4; c.Costs.SwitchFixed = 0 },
			"lookahead"},
	}
	for _, tc := range cases {
		cfg := Default()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q lacks %q", tc.name, err, tc.want)
		}
	}
}

// checkAllPairs verifies reachability and structural sanity of every
// compiled route: correct endpoints, in-range switch ids, stages
// climbing then descending, and hop counts within the diameter.
func checkAllPairs(t *testing.T, d *FabricDesc, nodes int) {
	t.Helper()
	for s := 0; s < nodes; s++ {
		for dst := 0; dst < nodes; dst++ {
			r := d.Route(s, dst)
			if len(r) < 1 || len(r) > d.MaxHops() {
				t.Fatalf("route %d->%d has %d hops (max %d)", s, dst, len(r), d.MaxHops())
			}
			if r[0] != d.FirstSwitch(s) {
				t.Fatalf("route %d->%d enters %d, FirstSwitch says %d", s, dst, r[0], d.FirstSwitch(s))
			}
			if last := r[len(r)-1]; last != d.FirstSwitch(dst) {
				t.Fatalf("route %d->%d exits %d, not dst's edge %d", s, dst, last, d.FirstSwitch(dst))
			}
			for i, sw := range r {
				if sw < 0 || int(sw) >= d.NumSwitches {
					t.Fatalf("route %d->%d hop %d: switch %d out of range", s, dst, i, sw)
				}
				// Stages rise to the apex then fall: stage(hop i) equals
				// min(i, len-1-i) for every shortest path here.
				want := i
				if o := len(r) - 1 - i; o < want {
					want = o
				}
				if int(d.SwitchStage[sw]) != want {
					t.Fatalf("route %d->%d hop %d: switch %d stage %d, want %d",
						s, dst, i, sw, d.SwitchStage[sw], want)
				}
			}
		}
	}
}

func TestRoutingAllPairs(t *testing.T) {
	cases := []struct {
		topo  TopoKind
		radix int
		nodes int
	}{
		{TopoXbar, 0, 8},
		{TopoClos2, 4, 4},    // partially populated leaves
		{TopoClos2, 4, 8},    // full
		{TopoClos2, 8, 21},   // ragged last leaf
		{TopoFatTree, 4, 16}, // full 3-level
		{TopoFatTree, 4, 10}, // ragged pods
	}
	for _, tc := range cases {
		cfg := Default()
		cfg.Topo, cfg.SwitchRadix, cfg.Nodes = tc.topo, tc.radix, tc.nodes
		d := cfg.Fabric()
		if d.Kind != tc.topo {
			t.Errorf("%v: built kind %v", tc.topo, d.Kind)
		}
		checkAllPairs(t, d, tc.nodes)
	}
}

// TestRoutingDeterministic compiles the same config twice and demands
// identical tables — the property the byte-identical-trace guarantee
// rests on (no map iteration or randomness in route construction).
func TestRoutingDeterministic(t *testing.T) {
	cfg := Default()
	cfg.Topo, cfg.SwitchRadix, cfg.Nodes = TopoFatTree, 6, 50
	a, b := cfg.Fabric(), cfg.Fabric()
	for s := 0; s < cfg.Nodes; s++ {
		for d := 0; d < cfg.Nodes; d++ {
			ra, rb := a.Route(s, d), b.Route(s, d)
			if len(ra) != len(rb) {
				t.Fatalf("route %d->%d length differs", s, d)
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("route %d->%d differs at hop %d", s, d, i)
				}
			}
		}
	}
}

func TestFabricCapacity(t *testing.T) {
	for _, tc := range []struct {
		kind  TopoKind
		radix int
		want  int
	}{
		{TopoXbar, 8, 0}, // unlimited
		{TopoClos2, 8, 32},
		{TopoClos2, 32, 512},
		{TopoFatTree, 8, 128},
		{TopoFatTree, 16, 1024},
	} {
		if got := FabricCapacity(tc.kind, tc.radix); got != tc.want {
			t.Errorf("FabricCapacity(%v, %d) = %d, want %d", tc.kind, tc.radix, got, tc.want)
		}
	}
}
