package topo

// Multi-stage fabric descriptions. The paper's testbed is a single
// 8-way Myrinet crossbar; scaling the ladder past 32 processors needs
// switched fabrics. Two classic shapes are supported beside the
// crossbar, both built from switches of one parameterized radix:
//
//   - clos2: a 2-level Myrinet-style Clos. Each leaf switch dedicates
//     half its ports to hosts and half to uplinks; radix/2 spine
//     switches connect every leaf to every spine. Capacity is
//     radix²/2 hosts; routes are 1 hop (same leaf) or 3 hops
//     (leaf-spine-leaf).
//   - fattree: a 3-level k-ary fat tree (k = radix). Pods of k/2 edge
//     and k/2 aggregation switches, (k/2)² core switches, k/2 hosts
//     per edge switch. Capacity is k³/4 hosts; routes are 1, 3, or 5
//     hops.
//
// Routing is deterministic shortest-path, compiled into a flat table
// at Config build time: the spine (clos2) and the aggregation/core
// pair (fattree) are selected by arithmetic on the destination id, so
// every (src, dst) pair uses one fixed route in every run — the
// determinism the byte-identical-trace guarantee rests on. Each hop
// charges the per-hop Costs.SwitchFixed on that switch's own FIFO
// resource, which is what gives per-stage busy accounting.

import "fmt"

// TopoKind selects the fabric topology.
type TopoKind int

// Fabric topologies.
const (
	// TopoXbar is the paper's single crossbar switch (the default).
	TopoXbar TopoKind = iota
	// TopoClos2 is the 2-level leaf/spine Clos.
	TopoClos2
	// TopoFatTree is the 3-level k-ary fat tree.
	TopoFatTree
)

var topoNames = [...]string{"xbar8", "clos2", "fattree"}

// String names the topology (the -topo flag vocabulary).
func (t TopoKind) String() string {
	if t < 0 || int(t) >= len(topoNames) {
		return fmt.Sprintf("TopoKind(%d)", int(t))
	}
	return topoNames[t]
}

// ParseTopo parses a -topo flag value.
func ParseTopo(s string) (TopoKind, error) {
	switch s {
	case "xbar", "xbar8":
		return TopoXbar, nil
	case "clos2":
		return TopoClos2, nil
	case "fattree":
		return TopoFatTree, nil
	}
	return 0, errf("unknown topology %q (have xbar8, clos2, fattree)", s)
}

// FabricDesc is a compiled fabric: the switch inventory and the
// deterministic all-pairs routing table. Build it once per Config via
// Config.Fabric.
type FabricDesc struct {
	Kind TopoKind
	// NumSwitches is the total switch count across all stages.
	NumSwitches int
	// NumStages is the number of switch stages (1, 2, or 3).
	NumStages int
	// SwitchStage maps a switch id to its stage (0 = leaf/edge).
	SwitchStage []int8

	// Flat route storage: route (src, dst) occupies
	// hops[(src*nodes+dst)*maxHops : ... + routeLen], switch ids in
	// traversal order.
	nodes   int
	maxHops int
	hops    []int16
	lens    []int8
}

// Route returns the switch ids a packet from src to dst traverses, in
// order. The slice aliases the compiled table; callers must not
// mutate it.
func (d *FabricDesc) Route(src, dst int) []int16 {
	i := src*d.nodes + dst
	off := i * d.maxHops
	return d.hops[off : off+int(d.lens[i])]
}

// MaxHops returns the fabric diameter in switch hops.
func (d *FabricDesc) MaxHops() int { return d.maxHops }

// FirstSwitch returns the leaf/edge switch a packet from src enters
// first (the fan-out point for NI broadcasts).
func (d *FabricDesc) FirstSwitch(src int) int16 {
	return d.hops[(src*d.nodes+src)*d.maxHops]
}

// Fabric compiles the configured topology into a switch inventory and
// routing table. The Config must have passed Validate.
func (c *Config) Fabric() *FabricDesc {
	switch c.Topo {
	case TopoClos2:
		return buildClos2(c.Nodes, c.SwitchRadix)
	case TopoFatTree:
		return buildFatTree(c.Nodes, c.SwitchRadix)
	default:
		return buildXbar(c.Nodes)
	}
}

func newDesc(kind TopoKind, nodes, nSwitches, nStages, maxHops int) *FabricDesc {
	return &FabricDesc{
		Kind:        kind,
		NumSwitches: nSwitches,
		NumStages:   nStages,
		SwitchStage: make([]int8, nSwitches),
		nodes:       nodes,
		maxHops:     maxHops,
		hops:        make([]int16, nodes*nodes*maxHops),
		lens:        make([]int8, nodes*nodes),
	}
}

func (d *FabricDesc) setRoute(src, dst int, hops ...int16) {
	i := src*d.nodes + dst
	d.lens[i] = int8(len(hops))
	copy(d.hops[i*d.maxHops:], hops)
}

func buildXbar(nodes int) *FabricDesc {
	d := newDesc(TopoXbar, nodes, 1, 1, 1)
	for s := 0; s < nodes; s++ {
		for t := 0; t < nodes; t++ {
			d.setRoute(s, t, 0)
		}
	}
	return d
}

// buildClos2: leaves 0..nLeaves-1 (stage 0), spines after (stage 1).
// The spine for a cross-leaf route is dst%nSpines — destination-based
// and deterministic, spreading flows across spines.
func buildClos2(nodes, radix int) *FabricDesc {
	hpl := radix / 2 // hosts per leaf
	nLeaves := (nodes + hpl - 1) / hpl
	nSpines := radix / 2
	d := newDesc(TopoClos2, nodes, nLeaves+nSpines, 2, 3)
	for sw := nLeaves; sw < nLeaves+nSpines; sw++ {
		d.SwitchStage[sw] = 1
	}
	for s := 0; s < nodes; s++ {
		ls := s / hpl
		for t := 0; t < nodes; t++ {
			lt := t / hpl
			if ls == lt {
				d.setRoute(s, t, int16(ls))
				continue
			}
			d.setRoute(s, t, int16(ls), int16(nLeaves+t%nSpines), int16(lt))
		}
	}
	return d
}

// buildFatTree: edges (stage 0), then aggregations (stage 1) grouped
// by pod, then cores (stage 2). Aggregation a = dst % p is chosen per
// destination; aggregation a of every pod connects to core group a, so
// the up- and down-path aggregations match and the core within the
// group is dst/h % p.
func buildFatTree(nodes, radix int) *FabricDesc {
	h := radix / 2 // hosts per edge switch
	p := radix / 2 // edge (and agg) switches per pod
	nEdges := (nodes + h - 1) / h
	nPods := (nEdges + p - 1) / p
	nAggs := nPods * p
	nCores := p * p
	d := newDesc(TopoFatTree, nodes, nEdges+nAggs+nCores, 3, 5)
	agg := func(pod, j int) int16 { return int16(nEdges + pod*p + j) }
	core := func(group, j int) int16 { return int16(nEdges + nAggs + group*p + j) }
	for sw := nEdges; sw < nEdges+nAggs; sw++ {
		d.SwitchStage[sw] = 1
	}
	for sw := nEdges + nAggs; sw < d.NumSwitches; sw++ {
		d.SwitchStage[sw] = 2
	}
	for s := 0; s < nodes; s++ {
		es := s / h
		podS := es / p
		for t := 0; t < nodes; t++ {
			et := t / h
			podT := et / p
			switch {
			case es == et:
				d.setRoute(s, t, int16(es))
			case podS == podT:
				d.setRoute(s, t, int16(es), agg(podS, t%p), int16(et))
			default:
				a := t % p
				d.setRoute(s, t,
					int16(es), agg(podS, a), core(a, t/h%p), agg(podT, a), int16(et))
			}
		}
	}
	return d
}

// FabricCapacity returns the maximum host count the topology supports
// at the given radix (0 = unlimited, for the idealized crossbar).
func FabricCapacity(kind TopoKind, radix int) int {
	switch kind {
	case TopoClos2:
		return radix * radix / 2
	case TopoFatTree:
		return radix * radix * radix / 4
	}
	return 0
}
