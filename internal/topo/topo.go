// Package topo defines the simulated cluster configuration: node and
// processor counts and every cost constant of the execution model. The
// defaults are calibrated against the measured micro-numbers reported in
// §3.1 of the GeNIMA paper (ISCA 1999): 18 µs one-way latency for a
// one-word message, ~95 MB/s peak bandwidth, ~2 µs asynchronous send
// overhead, ~110 µs for a 4 KB remote-fetch page transfer vs ~200 µs for
// an interrupt-based fetch.
package topo

import (
	"fmt"

	"genima/internal/sim"
)

// Config describes a simulated cluster of SMP nodes.
type Config struct {
	// Nodes is the number of SMP nodes (the paper uses 4 and 8).
	Nodes int
	// ProcsPerNode is the number of compute processors per node (4 in
	// the paper: 4-way Pentium Pro SMPs).
	ProcsPerNode int
	// PageSize in bytes (4096 on the paper's platform).
	PageSize int
	// WordSize is the diff granularity in bytes (32-bit words).
	WordSize int
	// MaxPacket is the largest network packet (VMMC: 4 KB).
	MaxPacket int
	// PostQueueDepth bounds outstanding send requests in the NI post
	// queue; the host stalls when it is full (the Barnes-spatial direct
	// diff problem in §3.3 of the paper).
	PostQueueDepth int
	// SendPipelining divides the NI's per-packet send occupancy to model
	// improved pipelining in the NI outgoing path (1 = the paper's
	// Linux/VMMC prototype; higher values model the Windows NT port's
	// improved pipelining that recovered Barnes-spatial).
	SendPipelining int

	// IntraRunWorkers is the number of OS threads executing one
	// simulation in parallel (conservative PDES with node-shard logical
	// processes plus one for the fabric, lookahead derived from
	// Costs.LinkFixed/SwitchFixed). 0 or 1 selects the serial engine;
	// any value produces a byte-identical event trace. The cmd-line
	// knob is -jrun.
	IntraRunWorkers int

	// LPShards is the number of node-shard logical processes a parallel
	// run is partitioned into: nodes are block-partitioned onto LPShards
	// shard LPs (plus one fabric LP), so barrier and merge cost scales
	// with shards instead of nodes and intra-shard traffic never crosses
	// an LP boundary. 0 selects the default, min(IntraRunWorkers,
	// Nodes); values above Nodes are clamped to Nodes (one LP per node,
	// the pre-sharding shape). Any value produces a byte-identical event
	// trace. Ignored by the serial engine. The cmd-line knob is
	// -lpshards.
	LPShards int

	// Faults configures deterministic network fault injection plus the
	// NI-firmware reliable-delivery layer that masks it (sequence
	// numbers, checksums, retransmission, duplicate suppression,
	// cumulative acks). Zero value: perfect links, reliability layer
	// fully disabled with zero overhead.
	Faults FaultPlan

	// ScatterGather enables the NI scatter-gather extension the paper
	// discusses but deliberately leaves out (§3.3): with it, a direct
	// diff's runs travel as one gathered message that the destination
	// NI scatters into the home copy — far fewer messages, at the cost
	// of extra NI occupancy on both sides (NISGPerByte).
	ScatterGather bool
	// NIBroadcast enables NI-level broadcast (the paper's §5 future
	// work): a write notice is posted once and replicated to all
	// destinations by the fabric, instead of one host post per node.
	NIBroadcast bool

	// Topo selects the fabric topology (see fabric.go). The default,
	// TopoXbar, is the paper's single crossbar; clos2 and fattree are
	// multi-stage switched fabrics for 64-512 node runs.
	Topo TopoKind
	// SwitchRadix is the port count of each switch in a multi-stage
	// fabric (ignored for TopoXbar). Capacity: clos2 holds radix²/2
	// hosts, fattree radix³/4.
	SwitchRadix int

	// Collectives moves barrier reduction and write-notice broadcast
	// onto an NI-firmware k-ary tree: combine and fan-out steps execute
	// in NI memory with no host interrupts, layered under reliable
	// delivery. Only protocols with the deposit-write capability (DW
	// and up) use it; Base keeps its interrupt-driven path as the
	// contrast case. Default off — the fault-free xbar8 traces the
	// golden hashes pin are untouched.
	Collectives bool
	// CollectiveArity is the fan-out k of the collective tree (>= 2).
	CollectiveArity int

	Costs Costs
}

// LinkDir selects which direction(s) of a host's link pair a fault
// window applies to.
type LinkDir int

// Link directions for DownWindow.
const (
	// BothDirs downs the host's out- and in-link.
	BothDirs LinkDir = iota
	// OutOnly downs only the host-to-switch link.
	OutOnly
	// InOnly downs only the switch-to-host link.
	InOnly
)

// DownWindow is a timed link outage: every packet crossing the selected
// link(s) of the given host during [From, Until) is lost. The NI
// reliable-delivery layer recovers via retransmission once the window
// closes.
type DownWindow struct {
	Node        int
	Dir         LinkDir
	From, Until sim.Time
}

// FaultPlan configures deterministic, seed-driven fault injection at
// the fabric's link crossings. All randomness comes from per-link PRNG
// streams derived from Seed, so runs are replayable: the same Config
// (including Seed) produces a byte-identical event trace. Rates are
// per-packet probabilities per link crossing.
type FaultPlan struct {
	// Enabled turns on both fault injection and the NI reliable-delivery
	// layer. When false every other field is ignored and the packet
	// pipeline is byte-identical to the fault-free model.
	Enabled bool
	// Seed drives every per-link PRNG stream (no wall clock, no global
	// rand). Two runs with equal Config produce identical traces.
	Seed uint64
	// DropRate is the probability a packet is lost on a link crossing.
	DropRate float64
	// DupRate is the probability the switch-to-host link delivers a
	// packet twice.
	DupRate float64
	// DelayRate is the probability a packet is held after the
	// switch-to-host link for an extra uniform (0, DelayMax] delay,
	// reordering it behind later packets.
	DelayRate float64
	// DelayMax bounds the extra reorder delay.
	DelayMax sim.Time
	// CorruptRate is the probability a link crossing flips payload bits;
	// the receiver's firmware checksum catches it and the packet is
	// discarded (then retransmitted).
	CorruptRate float64
	// AckEvery is the cumulative-ack threshold: a receiver returns a
	// standalone ack after this many unacknowledged in-order deliveries
	// (0 = default 4). Acks piggyback on reverse traffic regardless.
	AckEvery int
	// Down lists timed link outages.
	Down []DownWindow
}

// FaultMix returns a ready-to-use fault plan dominated by drops at the
// given rate, with duplication, reordering, and corruption mixed in at
// proportional rates (the cmd-line `-faults` preset).
func FaultMix(rate float64, seed uint64) FaultPlan {
	return FaultPlan{
		Enabled:     true,
		Seed:        seed,
		DropRate:    rate,
		DupRate:     rate / 4,
		DelayRate:   rate / 2,
		DelayMax:    sim.Micro(100),
		CorruptRate: rate / 4,
	}
}

// Costs holds every virtual-time cost constant of the model.
type Costs struct {
	// --- Host processor ---

	// NsPerOp converts application "operations" into compute time
	// (≈ 200 MHz Pentium Pro with some superscalar overlap).
	NsPerOp float64
	// SMPBusPenalty is the per-extra-processor compute inflation factor
	// applied to memory-intensive applications, modeling SMP memory bus
	// contention (§3.4 "Memory bus contention": FFT and Ocean).
	SMPBusPenalty float64
	// LocalLock is the cost of an intra-node (hardware-coherent)
	// lock acquire or release.
	LocalLock sim.Time

	// --- Interrupt path (Base protocol asynchronous handling) ---

	// Interrupt is the cost from message delivery to the protocol
	// handler running (interrupt dispatch + scheduling).
	Interrupt sim.Time
	// SchedPerturb is compute time stolen from one of the node's
	// processors each time the protocol process is scheduled.
	SchedPerturb sim.Time
	// HandlerFixed is the fixed protocol-handler service cost per
	// request, on top of any data work.
	HandlerFixed sim.Time
	// HandlerPerByte is the handler's unpack/apply cost per byte
	// (diff application, message unpacking).
	HandlerPerByte float64

	// --- Communication layer (VMMC on Myrinet) ---

	// PostOverhead is the host cost to post an asynchronous send (~2 µs).
	PostOverhead sim.Time
	// PCIPerByte is host<->NI DMA time per byte (133 MB/s bus).
	PCIPerByte float64
	// PCIFixed is the per-packet DMA setup cost.
	PCIFixed sim.Time
	// NIPerPacket is the NI firmware occupancy per packet, each
	// direction (33 MHz LANai).
	NIPerPacket sim.Time
	// NIPerByte is additional NI occupancy per byte.
	NIPerByte float64
	// LinkPerByte is wire time per byte (160 MB/s links).
	LinkPerByte float64
	// LinkFixed is the per-packet link/switch propagation latency.
	LinkFixed sim.Time
	// SwitchFixed is the crossbar routing delay per packet.
	SwitchFixed sim.Time

	// --- NI firmware services (GeNIMA extensions) ---

	// NIFetchService is extra firmware time to service a remote fetch
	// (locate exported region, set up reply DMA).
	NIFetchService sim.Time
	// NISGPerByte is the additional NI occupancy per byte for
	// scatter-gather pack/unpack (the paper: "would require additional
	// processing in the NI ... and fast fine-grained access to local
	// memory from the NI"). Charged on both the send and receive side
	// when ScatterGather is enabled.
	NISGPerByte float64
	// NILockService is firmware time per lock operation.
	NILockService sim.Time
	// NIColCombine is fixed firmware time per collective combine or
	// fan-out step executed in NI memory (tree barriers/broadcasts).
	NIColCombine sim.Time
	// NIColPerByte is the firmware cost per byte of combining or
	// copying a collective payload in NI memory.
	NIColPerByte float64
	// FetchRetryBackoff is how long a requester waits before retrying a
	// remote fetch that returned a stale page version.
	FetchRetryBackoff sim.Time

	// --- NI reliable delivery (active only with Faults.Enabled) ---

	// NIRelFixed is per-packet firmware time for sequence/ack
	// bookkeeping, charged on both the send and receive side.
	NIRelFixed sim.Time
	// NICsumPerByte is the firmware checksum cost per payload byte,
	// charged on both sides (compute at the sender, verify at the
	// receiver).
	NICsumPerByte float64
	// RetxTimeout is the initial per-flow retransmission timeout; it
	// doubles on every consecutive timeout (exponential backoff).
	RetxTimeout sim.Time
	// RetxTimeoutMax is retained for configuration compatibility but
	// no longer caps the backoff: the NI's retransmission timeout
	// backs off without limit until ack progress resets it, because
	// any static cap below the queueing round trip of a congested
	// fabric turns the timer into a congestion-collapse engine (see
	// the internal/nic/reliable.go package comment).
	RetxTimeoutMax sim.Time
	// AckDelay is the receiver's delayed cumulative-ack timer: an ack is
	// pushed this long after an in-order delivery if no reverse traffic
	// carried it first.
	AckDelay sim.Time

	// --- Operating system ---

	// MprotectBase is the cost of one mprotect call (first page).
	MprotectBase sim.Time
	// MprotectPerPage is the marginal cost per additional contiguous
	// page folded into a coalesced call.
	MprotectPerPage sim.Time

	// --- Memory/protocol work ---

	// TwinCopyPerByte is the cost per byte of creating a twin.
	TwinCopyPerByte float64
	// DiffPerByte is the cost per byte of comparing a page with its twin.
	DiffPerByte float64
}

// Default returns the paper-calibrated configuration: 4 nodes × 4-way
// SMPs on a Myrinet-like fabric.
func Default() Config {
	return Config{
		Nodes:          4,
		ProcsPerNode:   4,
		PageSize:       4096,
		WordSize:       4,
		MaxPacket:      4096,
		PostQueueDepth: 64,
		SendPipelining: 1,
		// Multi-stage fabrics default to 8-port switches (the paper's
		// Myrinet crossbar radix); -topo picks the shape.
		SwitchRadix:     8,
		CollectiveArity: 4,
		Costs:           DefaultCosts(),
	}
}

// DefaultCosts returns cost constants calibrated to §3.1 of the paper.
//
// Derived figures with these constants:
//
//	1-word message one-way:  post 2 + dma 2.6 + ni 4 + link 1.5 + switch 0.5
//	                         + ni 4 + dma 2.6 ≈ 17.2 µs   (paper: ~18 µs)
//	4 KB page transfer:      + 4096·(2/133e6 + 1/160e6 + 1/33e6·0.0) s
//	remote fetch page total: ≈ 112 µs                      (paper: ~110 µs)
//	base page fetch total:   ≈ 200 µs (17 µs request + 80 µs interrupt
//	                         + 6 µs handler + ~100 µs reply)
func DefaultCosts() Costs {
	return Costs{
		// A 200 MHz Pentium Pro retires well under one application
		// "operation" (flop + addressing + load/store) per cycle on
		// these codes; 30 ns/op reproduces plausible uniprocessor
		// runtimes for the scaled problem sizes.
		NsPerOp:       30,
		SMPBusPenalty: 0.05,
		LocalLock:     sim.Micro(0.8),

		Interrupt:      sim.Micro(80),
		SchedPerturb:   sim.Micro(15),
		HandlerFixed:   sim.Micro(6),
		HandlerPerByte: 4, // ns per byte ≈ 250 MB/s unpack

		PostOverhead: sim.Micro(2),
		// The PCI bus runs at 133 MB/s, but VMMC pipelines host<->NI DMA
		// with link injection within a packet; modeling stages strictly
		// in series, we use the effective overlapped rate (2x) so that
		// end-to-end page latency matches the paper (~100 µs one-way).
		PCIPerByte:  1e3 / 266e6 * 1e6, // ns per byte, pipelined-effective
		PCIFixed:    sim.Micro(2.6),
		NIPerPacket: sim.Micro(4),
		NIPerByte:   0,
		LinkPerByte: 1e3 / 160e6 * 1e6, // ns per byte at 160 MB/s
		LinkFixed:   sim.Micro(1.5),
		SwitchFixed: sim.Micro(0.5),

		NIFetchService: sim.Micro(5),
		// Reliability layer: the LANai computes a checksum with hardware
		// assist (~0.5 ns/byte) plus fixed seq/ack bookkeeping; the RTO
		// starts above a loaded 4 KB round trip, adapts to measured
		// round trips, and backs off without a behavioral cap.
		NIRelFixed:     sim.Micro(0.5),
		NICsumPerByte:  0.5,
		RetxTimeout:    sim.Micro(400),
		RetxTimeoutMax: sim.Micro(6400),
		AckDelay:       sim.Micro(30),
		// The 33 MHz LANai touches local memory slowly: ~30 ns/byte of
		// gather/scatter work.
		NISGPerByte:       30,
		NILockService:     sim.Micro(4),
		FetchRetryBackoff: sim.Micro(25),
		// Collective tree steps: the LANai merges or copies a vector in
		// NI memory — fixed dispatch plus the same ~slow local-memory
		// touch rate the SG path pays per byte.
		NIColCombine: sim.Micro(1),
		NIColPerByte: 4,

		MprotectBase:    sim.Micro(12),
		MprotectPerPage: sim.Micro(1.5),

		TwinCopyPerByte: 2.5, // ns per byte ≈ 400 MB/s copy
		DiffPerByte:     4,   // ns per byte ≈ 250 MB/s compare
	}
}

// NumProcs returns the total processor count.
func (c *Config) NumProcs() int { return c.Nodes * c.ProcsPerNode }

// WordsPerPage returns the number of diff words in a page.
func (c *Config) WordsPerPage() int { return c.PageSize / c.WordSize }

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return errf("Nodes = %d, need >= 1", c.Nodes)
	case c.ProcsPerNode < 1:
		return errf("ProcsPerNode = %d, need >= 1", c.ProcsPerNode)
	case c.PageSize < c.WordSize || c.PageSize%c.WordSize != 0:
		return errf("PageSize %d not a multiple of WordSize %d", c.PageSize, c.WordSize)
	case c.MaxPacket < c.WordSize:
		return errf("MaxPacket = %d too small", c.MaxPacket)
	case c.PostQueueDepth < 1:
		return errf("PostQueueDepth = %d, need >= 1", c.PostQueueDepth)
	case c.SendPipelining < 1:
		return errf("SendPipelining = %d, need >= 1", c.SendPipelining)
	case c.IntraRunWorkers < 0:
		return errf("IntraRunWorkers = %d, need >= 0", c.IntraRunWorkers)
	case c.IntraRunWorkers > 1 && (c.Costs.LinkFixed <= 0 || c.Costs.SwitchFixed <= 0):
		// Conservative parallel execution derives its lookahead from the
		// fixed link and switch latencies; zero lookahead cannot make
		// progress.
		return errf("IntraRunWorkers = %d needs Costs.LinkFixed > 0 and Costs.SwitchFixed > 0 (lookahead)", c.IntraRunWorkers)
	case c.LPShards < 0:
		return errf("LPShards = %d, need >= 0 (0 = auto)", c.LPShards)
	}
	if err := c.validateFabric(); err != nil {
		return err
	}
	return c.Faults.validate(c.Nodes)
}

func (c *Config) validateFabric() error {
	switch c.Topo {
	case TopoXbar:
		// The idealized crossbar scales to any port count.
	case TopoClos2, TopoFatTree:
		switch {
		case c.SwitchRadix < 4 || c.SwitchRadix%2 != 0:
			// Both shapes split ports evenly between the host/down side
			// and the up side.
			return errf("Topo %v needs an even SwitchRadix >= 4, got %d", c.Topo, c.SwitchRadix)
		case c.Nodes > FabricCapacity(c.Topo, c.SwitchRadix):
			return errf("Topo %v radix %d holds at most %d nodes, got Nodes = %d",
				c.Topo, c.SwitchRadix, FabricCapacity(c.Topo, c.SwitchRadix), c.Nodes)
		}
	default:
		return errf("Topo = %d invalid", int(c.Topo))
	}
	if c.Collectives {
		switch {
		case c.CollectiveArity < 2:
			return errf("Collectives needs CollectiveArity >= 2, got %d", c.CollectiveArity)
		case 8*c.Nodes > c.MaxPacket:
			// The barrier reduction carries one full version vector
			// (8 bytes per node) in a single packet at every tree hop.
			return errf("Collectives needs the version vector (8*Nodes = %d bytes) to fit MaxPacket = %d",
				8*c.Nodes, c.MaxPacket)
		}
	}
	return nil
}

// Lookaheads returns the conservative-PDES lookahead pair for
// sim.NewCluster: every event a node LP schedules on the fabric LP is
// an out-link completion at least LinkFixed away; every event the
// fabric LP schedules on a node LP is that route's final switch-hop
// completion, at least SwitchFixed away. SwitchFixed is the minimum
// per-hop cost on any multi-stage route — intermediate hops only ever
// push the final crossing further out, so the bound holds for every
// topology.
func (c *Config) Lookaheads() (node, fabric sim.Time) {
	return c.Costs.LinkFixed, c.Costs.SwitchFixed
}

// EffectiveLPShards resolves Config.LPShards: 0 defaults to the worker
// count (one shard LP per executing thread amortizes scheduling
// overhead per group, and more shards than workers only adds barrier
// cost), and the result is clamped to [1, Nodes]. The trace is
// byte-identical for every value; only performance differs.
func (c *Config) EffectiveLPShards() int {
	s := c.LPShards
	if s == 0 {
		s = c.IntraRunWorkers
	}
	if s > c.Nodes {
		s = c.Nodes
	}
	if s < 1 {
		s = 1
	}
	return s
}

func (fp *FaultPlan) validate(nodes int) error {
	if !fp.Enabled {
		return nil
	}
	rates := map[string]float64{
		"DropRate": fp.DropRate, "DupRate": fp.DupRate,
		"DelayRate": fp.DelayRate, "CorruptRate": fp.CorruptRate,
	}
	for _, name := range []string{"DropRate", "DupRate", "DelayRate", "CorruptRate"} {
		// A rate of 1.0 would make reliable delivery (and hence the
		// simulation) livelock, so the bound is exclusive.
		if r := rates[name]; r < 0 || r >= 1 {
			return errf("Faults.%s = %g, need [0, 1)", name, r)
		}
	}
	if fp.DelayRate > 0 && fp.DelayMax <= 0 {
		return errf("Faults.DelayRate = %g with DelayMax = %d, need DelayMax > 0", fp.DelayRate, fp.DelayMax)
	}
	if fp.AckEvery < 0 {
		return errf("Faults.AckEvery = %d, need >= 0", fp.AckEvery)
	}
	for i, w := range fp.Down {
		if w.Node < 0 || w.Node >= nodes {
			return errf("Faults.Down[%d].Node = %d, need [0, %d)", i, w.Node, nodes)
		}
		if w.Until <= w.From {
			return errf("Faults.Down[%d]: Until %d <= From %d", i, w.Until, w.From)
		}
		if w.Dir < BothDirs || w.Dir > InOnly {
			return errf("Faults.Down[%d].Dir = %d invalid", i, w.Dir)
		}
	}
	return nil
}

type configError string

func (e configError) Error() string { return "topo: " + string(e) }

func errf(format string, args ...any) error {
	return configError(fmt.Sprintf(format, args...))
}
