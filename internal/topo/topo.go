// Package topo defines the simulated cluster configuration: node and
// processor counts and every cost constant of the execution model. The
// defaults are calibrated against the measured micro-numbers reported in
// §3.1 of the GeNIMA paper (ISCA 1999): 18 µs one-way latency for a
// one-word message, ~95 MB/s peak bandwidth, ~2 µs asynchronous send
// overhead, ~110 µs for a 4 KB remote-fetch page transfer vs ~200 µs for
// an interrupt-based fetch.
package topo

import (
	"fmt"

	"genima/internal/sim"
)

// Config describes a simulated cluster of SMP nodes.
type Config struct {
	// Nodes is the number of SMP nodes (the paper uses 4 and 8).
	Nodes int
	// ProcsPerNode is the number of compute processors per node (4 in
	// the paper: 4-way Pentium Pro SMPs).
	ProcsPerNode int
	// PageSize in bytes (4096 on the paper's platform).
	PageSize int
	// WordSize is the diff granularity in bytes (32-bit words).
	WordSize int
	// MaxPacket is the largest network packet (VMMC: 4 KB).
	MaxPacket int
	// PostQueueDepth bounds outstanding send requests in the NI post
	// queue; the host stalls when it is full (the Barnes-spatial direct
	// diff problem in §3.3 of the paper).
	PostQueueDepth int
	// SendPipelining divides the NI's per-packet send occupancy to model
	// improved pipelining in the NI outgoing path (1 = the paper's
	// Linux/VMMC prototype; higher values model the Windows NT port's
	// improved pipelining that recovered Barnes-spatial).
	SendPipelining int

	// ScatterGather enables the NI scatter-gather extension the paper
	// discusses but deliberately leaves out (§3.3): with it, a direct
	// diff's runs travel as one gathered message that the destination
	// NI scatters into the home copy — far fewer messages, at the cost
	// of extra NI occupancy on both sides (NISGPerByte).
	ScatterGather bool
	// NIBroadcast enables NI-level broadcast (the paper's §5 future
	// work): a write notice is posted once and replicated to all
	// destinations by the fabric, instead of one host post per node.
	NIBroadcast bool

	Costs Costs
}

// Costs holds every virtual-time cost constant of the model.
type Costs struct {
	// --- Host processor ---

	// NsPerOp converts application "operations" into compute time
	// (≈ 200 MHz Pentium Pro with some superscalar overlap).
	NsPerOp float64
	// SMPBusPenalty is the per-extra-processor compute inflation factor
	// applied to memory-intensive applications, modeling SMP memory bus
	// contention (§3.4 "Memory bus contention": FFT and Ocean).
	SMPBusPenalty float64
	// LocalLock is the cost of an intra-node (hardware-coherent)
	// lock acquire or release.
	LocalLock sim.Time

	// --- Interrupt path (Base protocol asynchronous handling) ---

	// Interrupt is the cost from message delivery to the protocol
	// handler running (interrupt dispatch + scheduling).
	Interrupt sim.Time
	// SchedPerturb is compute time stolen from one of the node's
	// processors each time the protocol process is scheduled.
	SchedPerturb sim.Time
	// HandlerFixed is the fixed protocol-handler service cost per
	// request, on top of any data work.
	HandlerFixed sim.Time
	// HandlerPerByte is the handler's unpack/apply cost per byte
	// (diff application, message unpacking).
	HandlerPerByte float64

	// --- Communication layer (VMMC on Myrinet) ---

	// PostOverhead is the host cost to post an asynchronous send (~2 µs).
	PostOverhead sim.Time
	// PCIPerByte is host<->NI DMA time per byte (133 MB/s bus).
	PCIPerByte float64
	// PCIFixed is the per-packet DMA setup cost.
	PCIFixed sim.Time
	// NIPerPacket is the NI firmware occupancy per packet, each
	// direction (33 MHz LANai).
	NIPerPacket sim.Time
	// NIPerByte is additional NI occupancy per byte.
	NIPerByte float64
	// LinkPerByte is wire time per byte (160 MB/s links).
	LinkPerByte float64
	// LinkFixed is the per-packet link/switch propagation latency.
	LinkFixed sim.Time
	// SwitchFixed is the crossbar routing delay per packet.
	SwitchFixed sim.Time

	// --- NI firmware services (GeNIMA extensions) ---

	// NIFetchService is extra firmware time to service a remote fetch
	// (locate exported region, set up reply DMA).
	NIFetchService sim.Time
	// NISGPerByte is the additional NI occupancy per byte for
	// scatter-gather pack/unpack (the paper: "would require additional
	// processing in the NI ... and fast fine-grained access to local
	// memory from the NI"). Charged on both the send and receive side
	// when ScatterGather is enabled.
	NISGPerByte float64
	// NILockService is firmware time per lock operation.
	NILockService sim.Time
	// FetchRetryBackoff is how long a requester waits before retrying a
	// remote fetch that returned a stale page version.
	FetchRetryBackoff sim.Time

	// --- Operating system ---

	// MprotectBase is the cost of one mprotect call (first page).
	MprotectBase sim.Time
	// MprotectPerPage is the marginal cost per additional contiguous
	// page folded into a coalesced call.
	MprotectPerPage sim.Time

	// --- Memory/protocol work ---

	// TwinCopyPerByte is the cost per byte of creating a twin.
	TwinCopyPerByte float64
	// DiffPerByte is the cost per byte of comparing a page with its twin.
	DiffPerByte float64
}

// Default returns the paper-calibrated configuration: 4 nodes × 4-way
// SMPs on a Myrinet-like fabric.
func Default() Config {
	return Config{
		Nodes:          4,
		ProcsPerNode:   4,
		PageSize:       4096,
		WordSize:       4,
		MaxPacket:      4096,
		PostQueueDepth: 64,
		SendPipelining: 1,
		Costs:          DefaultCosts(),
	}
}

// DefaultCosts returns cost constants calibrated to §3.1 of the paper.
//
// Derived figures with these constants:
//
//	1-word message one-way:  post 2 + dma 2.6 + ni 4 + link 1.5 + switch 0.5
//	                         + ni 4 + dma 2.6 ≈ 17.2 µs   (paper: ~18 µs)
//	4 KB page transfer:      + 4096·(2/133e6 + 1/160e6 + 1/33e6·0.0) s
//	remote fetch page total: ≈ 112 µs                      (paper: ~110 µs)
//	base page fetch total:   ≈ 200 µs (17 µs request + 80 µs interrupt
//	                         + 6 µs handler + ~100 µs reply)
func DefaultCosts() Costs {
	return Costs{
		// A 200 MHz Pentium Pro retires well under one application
		// "operation" (flop + addressing + load/store) per cycle on
		// these codes; 30 ns/op reproduces plausible uniprocessor
		// runtimes for the scaled problem sizes.
		NsPerOp:       30,
		SMPBusPenalty: 0.05,
		LocalLock:     sim.Micro(0.8),

		Interrupt:      sim.Micro(80),
		SchedPerturb:   sim.Micro(15),
		HandlerFixed:   sim.Micro(6),
		HandlerPerByte: 4, // ns per byte ≈ 250 MB/s unpack

		PostOverhead: sim.Micro(2),
		// The PCI bus runs at 133 MB/s, but VMMC pipelines host<->NI DMA
		// with link injection within a packet; modeling stages strictly
		// in series, we use the effective overlapped rate (2x) so that
		// end-to-end page latency matches the paper (~100 µs one-way).
		PCIPerByte:  1e3 / 266e6 * 1e6, // ns per byte, pipelined-effective
		PCIFixed:    sim.Micro(2.6),
		NIPerPacket: sim.Micro(4),
		NIPerByte:   0,
		LinkPerByte: 1e3 / 160e6 * 1e6, // ns per byte at 160 MB/s
		LinkFixed:   sim.Micro(1.5),
		SwitchFixed: sim.Micro(0.5),

		NIFetchService: sim.Micro(5),
		// The 33 MHz LANai touches local memory slowly: ~30 ns/byte of
		// gather/scatter work.
		NISGPerByte:       30,
		NILockService:     sim.Micro(4),
		FetchRetryBackoff: sim.Micro(25),

		MprotectBase:    sim.Micro(12),
		MprotectPerPage: sim.Micro(1.5),

		TwinCopyPerByte: 2.5, // ns per byte ≈ 400 MB/s copy
		DiffPerByte:     4,   // ns per byte ≈ 250 MB/s compare
	}
}

// NumProcs returns the total processor count.
func (c *Config) NumProcs() int { return c.Nodes * c.ProcsPerNode }

// WordsPerPage returns the number of diff words in a page.
func (c *Config) WordsPerPage() int { return c.PageSize / c.WordSize }

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return errf("Nodes = %d, need >= 1", c.Nodes)
	case c.ProcsPerNode < 1:
		return errf("ProcsPerNode = %d, need >= 1", c.ProcsPerNode)
	case c.PageSize < c.WordSize || c.PageSize%c.WordSize != 0:
		return errf("PageSize %d not a multiple of WordSize %d", c.PageSize, c.WordSize)
	case c.MaxPacket < c.WordSize:
		return errf("MaxPacket = %d too small", c.MaxPacket)
	case c.PostQueueDepth < 1:
		return errf("PostQueueDepth = %d, need >= 1", c.PostQueueDepth)
	case c.SendPipelining < 1:
		return errf("SendPipelining = %d, need >= 1", c.SendPipelining)
	}
	return nil
}

type configError string

func (e configError) Error() string { return "topo: " + string(e) }

func errf(format string, args ...any) error {
	return configError(fmt.Sprintf(format, args...))
}
