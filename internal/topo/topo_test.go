package topo

import (
	"testing"

	"genima/internal/sim"
)

func TestDefaultIsValidAndPaperShaped(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 4 || cfg.ProcsPerNode != 4 {
		t.Errorf("default cluster %dx%d, want the paper's 4x4", cfg.Nodes, cfg.ProcsPerNode)
	}
	if cfg.PageSize != 4096 || cfg.MaxPacket != 4096 {
		t.Errorf("page/packet = %d/%d, want 4096/4096", cfg.PageSize, cfg.MaxPacket)
	}
	if cfg.NumProcs() != 16 {
		t.Errorf("NumProcs = %d", cfg.NumProcs())
	}
	if cfg.WordsPerPage() != 1024 {
		t.Errorf("WordsPerPage = %d", cfg.WordsPerPage())
	}
}

func TestCostCalibrationAnchors(t *testing.T) {
	c := DefaultCosts()
	if c.PostOverhead != sim.Micro(2) {
		t.Errorf("post overhead = %v, paper says ~2 us", c.PostOverhead)
	}
	// The interrupt path must dwarf the NI firmware services — the
	// paper's whole premise.
	if c.Interrupt < 5*c.NILockService {
		t.Errorf("interrupt (%v) not much larger than NI lock service (%v)", c.Interrupt, c.NILockService)
	}
	if c.MprotectPerPage >= c.MprotectBase {
		t.Error("coalesced mprotect page cost should be below the base call cost")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.ProcsPerNode = 0 },
		func(c *Config) { c.PageSize = 1001 }, // not a word multiple
		func(c *Config) { c.MaxPacket = 1 },
		func(c *Config) { c.PostQueueDepth = 0 },
		func(c *Config) { c.SendPipelining = 0 },
	}
	for i, mutate := range bad {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
