package sim

// Tests for the typed (Handler) event path and for the queueing
// statistics the suite reports: Gate.Blocked/BlockedTime and
// Resource.MaxQueued.

import "testing"

// recordingHandler records every (start, end) pair it is dispatched with.
type recordingHandler struct {
	starts, ends []Time
}

func (h *recordingHandler) Run(start, end Time) {
	h.starts = append(h.starts, start)
	h.ends = append(h.ends, end)
}

func TestEnqueueHandlerPassesReservationBounds(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	h := &recordingHandler{}
	e.At(0, func() {
		r.EnqueueHandler(50, h) // idle: starts now
		r.EnqueueHandler(30, h) // queued behind the first
	})
	e.RunUntilQuiet()
	if len(h.starts) != 2 {
		t.Fatalf("dispatched %d times, want 2", len(h.starts))
	}
	if h.starts[0] != 0 || h.ends[0] != 50 {
		t.Errorf("first job = (%d,%d), want (0,50)", h.starts[0], h.ends[0])
	}
	if h.starts[1] != 50 || h.ends[1] != 80 {
		t.Errorf("second job = (%d,%d), want (50,80)", h.starts[1], h.ends[1])
	}
}

// orderHandler appends its tag to a shared log when dispatched.
type orderHandler struct {
	log *[]string
	tag string
}

func (h *orderHandler) Run(_, _ Time) { *h.log = append(*h.log, h.tag) }

// Handler and closure events scheduled at the same timestamp must fire
// in scheduling order: both forms share the engine's seq counter, which
// is what keeps the pooled pipeline's event stream bit-identical to the
// closure pipeline it replaced.
func TestHandlerAndClosureShareTieBreakOrder(t *testing.T) {
	e := NewEngine()
	var log []string
	e.At(10, func() { log = append(log, "fn-1") })
	e.AtHandler(10, 0, &orderHandler{log: &log, tag: "h-1"})
	e.At(10, func() { log = append(log, "fn-2") })
	e.AtHandler(10, 0, &orderHandler{log: &log, tag: "h-2"})
	e.RunUntilQuiet()
	want := []string{"fn-1", "h-1", "fn-2", "h-2"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestAtHandlerPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("AtHandler in the past did not panic")
			}
		}()
		e.AtHandler(50, 0, &recordingHandler{})
	})
	e.RunUntilQuiet()
}

// Handler events count toward Events() exactly like closure events.
func TestHandlerEventsCounted(t *testing.T) {
	e := NewEngine()
	h := &recordingHandler{}
	e.AtHandler(1, 0, h)
	e.AtHandler(2, 0, h)
	e.At(3, func() {})
	e.RunUntilQuiet()
	if got := e.Events(); got != 3 {
		t.Fatalf("Events() = %d, want 3", got)
	}
}

func TestGateBlockedTimeAccounting(t *testing.T) {
	e := NewEngine()
	g := NewGate(1)
	e.Go("holder", func(p *Proc) {
		g.Acquire(p)
		p.Sleep(100)
		g.Release()
	})
	e.Go("waiter", func(p *Proc) {
		g.Acquire(p) // full until t=100
		g.Release()
	})
	e.RunUntilQuiet()
	if g.Blocked != 1 {
		t.Errorf("Blocked = %d, want 1", g.Blocked)
	}
	if g.BlockedTime != 100 {
		t.Errorf("BlockedTime = %d, want 100", g.BlockedTime)
	}
	if g.InUse() != 0 {
		t.Errorf("InUse = %d after all releases", g.InUse())
	}
}

func TestGateUncontendedAcquireNotCounted(t *testing.T) {
	e := NewEngine()
	g := NewGate(2)
	e.Go("p", func(p *Proc) {
		g.Acquire(p)
		g.Release()
	})
	e.RunUntilQuiet()
	if g.Blocked != 0 || g.BlockedTime != 0 {
		t.Errorf("uncontended acquire counted: Blocked=%d BlockedTime=%d", g.Blocked, g.BlockedTime)
	}
}

func TestResourceMaxQueuedTracksWorstBacklog(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	e.At(0, func() {
		r.Enqueue(100, nil) // starts at 0, backlog 0
		r.Enqueue(100, nil) // backlog 100
		r.Enqueue(100, nil) // backlog 200
	})
	e.At(250, func() {
		r.Enqueue(100, nil) // backlog 50: must not lower the max
	})
	e.RunUntilQuiet()
	if r.MaxQueued != 200 {
		t.Errorf("MaxQueued = %d, want 200", r.MaxQueued)
	}
	if r.WaitTime != 0+100+200+50 {
		t.Errorf("WaitTime = %d, want 350", r.WaitTime)
	}
	if r.Jobs != 4 {
		t.Errorf("Jobs = %d, want 4", r.Jobs)
	}
}

// EnqueueHandler must feed the same statistics as Enqueue.
func TestEnqueueHandlerUpdatesStats(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	h := &recordingHandler{}
	e.At(0, func() {
		r.EnqueueHandler(100, h)
		r.EnqueueHandler(100, h)
	})
	e.RunUntilQuiet()
	if r.Jobs != 2 || r.BusyTime != 200 || r.WaitTime != 100 || r.MaxQueued != 100 {
		t.Errorf("stats = {Jobs:%d Busy:%d Wait:%d MaxQueued:%d}, want {2 200 100 100}",
			r.Jobs, r.BusyTime, r.WaitTime, r.MaxQueued)
	}
}
