package sim

// Digest is an order-sensitive FNV-1a 64 accumulator used to fingerprint
// live simulator state for checkpoint verification (see internal/checkpoint).
// It is not a cryptographic hash: the goal is a cheap, deterministic
// summary that catches a restore diverging from the run it resumes —
// every field folded in is a pure function of the executed event prefix,
// so two runs that executed the same prefix in the same mode produce the
// same digest.
type Digest struct {
	h uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewDigest returns a fresh accumulator.
func NewDigest() *Digest { return &Digest{h: fnvOffset64} }

// U64 folds one 64-bit word into the digest, byte by byte.
func (d *Digest) U64(v uint64) {
	h := d.h
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	d.h = h
}

// I64 folds a signed word (virtual times, counters).
func (d *Digest) I64(v int64) { d.U64(uint64(v)) }

// Bool folds a flag.
func (d *Digest) Bool(v bool) {
	if v {
		d.U64(1)
	} else {
		d.U64(0)
	}
}

// Str folds a string length-prefixed, so concatenations cannot collide.
func (d *Digest) Str(s string) {
	d.U64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		d.h ^= uint64(s[i])
		d.h *= fnvPrime64
	}
}

// Bytes folds a byte slice length-prefixed.
func (d *Digest) Bytes(b []byte) {
	d.U64(uint64(len(b)))
	h := d.h
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	d.h = h
}

// Sum returns the accumulated fingerprint.
func (d *Digest) Sum() uint64 { return d.h }

// DigestInto folds this engine's live state: clock, counters, and the
// raw event heap. The heap array layout is itself deterministic — it is
// a pure function of the push/pop history, which two runs executing the
// same event prefix share — so hashing slots in array order is sound.
// Handler identities cannot be hashed portably; each slot contributes
// its timestamps, key, and a closure-vs-handler tag, which is enough to
// catch any divergence in queue contents.
func (e *Engine) DigestInto(d *Digest) {
	d.I64(e.now)
	d.U64(e.seq)
	d.U64(e.nEvents)
	d.I64(e.countAdj)
	d.U64(e.logStart)
	d.U64(uint64(e.events.len()))
	for i := range e.events.a {
		ev := &e.events.a[i]
		d.I64(ev.at)
		d.U64(ev.seq)
		d.I64(ev.start)
		d.Bool(ev.h != nil)
	}
}

// DigestInto folds a FIFO resource's server state: the running tail and
// the accumulated service statistics.
func (r *Resource) DigestInto(d *Digest) {
	d.I64(r.busyUntil)
	d.U64(r.Jobs)
	d.I64(r.BusyTime)
	d.I64(r.WaitTime)
	d.I64(r.MaxQueued)
}

// DigestInto folds a gate's admission state.
func (g *Gate) DigestInto(d *Digest) {
	d.U64(uint64(g.Depth))
	d.U64(uint64(g.inUse))
	d.U64(uint64(g.q.Len()))
	d.U64(g.Blocked)
	d.I64(g.BlockedTime)
}

// DigestInto folds the cluster's cross-LP synchronization state on top
// of every member engine's digest: global ordinal counter, commit
// backlog, held-message floor, and each LP's uncommitted round log and
// outbox. Deferred handlers contribute their count and positions only
// (their identities are not portable), which still pins the backlog
// shape.
func (cl *Cluster) DigestInto(d *Digest) {
	d.U64(cl.setupSeq)
	d.U64(cl.nextOrd)
	d.U64(uint64(cl.pending))
	d.I64(cl.heldMin)
	d.U64(uint64(len(cl.all)))
	for _, e := range cl.all {
		e.DigestInto(d)
		d.U64(uint64(len(e.roundLog)))
		for i := range e.roundLog {
			d.I64(e.roundLog[i].at)
			d.U64(e.roundLog[i].key)
		}
		d.U64(uint64(len(e.outbox)))
		for i := range e.outbox {
			m := &e.outbox[i]
			d.I64(m.at)
			d.I64(m.start)
			d.U64(m.key)
		}
		d.U64(uint64(len(e.defers)))
		for i := range e.defers {
			d.U64(e.defers[i].pos)
			d.I64(e.defers[i].at)
		}
	}
}
