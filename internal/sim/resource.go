package sim

// Resource models a FIFO-served, single-server device: a DMA engine, an
// I/O bus, a network link, or a firmware processor. Work is admitted in
// arrival order; each job occupies the server for its service time.
//
// Because the engine is sequential, "arrival order" is simply the order of
// Enqueue/Use calls, so a running-tail timestamp (busyUntil) is a complete
// FIFO model: a job arriving at time t starts at max(t, busyUntil).
//
// The resource keeps utilization and queueing statistics so callers can
// compute contention ratios (actual time / uncontended time).
type Resource struct {
	eng  *Engine
	name string

	busyUntil Time

	// Statistics.
	Jobs      uint64 // jobs served
	BusyTime  Time   // total service time
	WaitTime  Time   // total time jobs spent queued before service
	MaxQueued Time   // maximum backlog (busyUntil - now) seen at enqueue
}

// NewResource creates a named FIFO resource on the engine.
func NewResource(eng *Engine, name string) *Resource {
	return &Resource{eng: eng, name: name}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Backlog returns the current queued work (time until the server drains).
func (r *Resource) Backlog() Time {
	b := r.busyUntil - r.eng.now
	if b < 0 {
		return 0
	}
	return b
}

// reserve claims the next FIFO slot for a job with the given service
// time, updates the statistics, and returns the job's (start, end).
func (r *Resource) reserve(service Time) (start, end Time) {
	now := r.eng.now
	start = now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end = start + service
	r.busyUntil = end
	r.Jobs++
	r.BusyTime += service
	r.WaitTime += start - now
	if q := start - now; q > r.MaxQueued {
		r.MaxQueued = q
	}
	return start, end
}

// Enqueue reserves the next FIFO slot for a job with the given service
// time and returns the job's (start, end) times. If fn is non-nil it is
// scheduled to run at end. Enqueue may be called from any context.
func (r *Resource) Enqueue(service Time, fn func(start, end Time)) (start, end Time) {
	start, end = r.reserve(service)
	if fn != nil {
		r.eng.At(end, func() { fn(start, end) })
	}
	return start, end
}

// EnqueueHandler is Enqueue for the typed event path: the reservation's
// completion is scheduled as h.Run(start, end) with zero closure
// allocations. It shares reserve and the engine's seq counter with
// Enqueue, so a pipeline mixing both forms keeps the exact event order
// the closure-only pipeline produced.
func (r *Resource) EnqueueHandler(service Time, h Handler) (start, end Time) {
	start, end = r.reserve(service)
	r.eng.AtHandler(end, start, h)
	return start, end
}

// Reserve claims the next FIFO slot without scheduling any completion
// and returns the job's (start, end); the caller delivers the
// completion itself (e.g. fanning one reservation out to several
// logical processes).
func (r *Resource) Reserve(service Time) (start, end Time) {
	return r.reserve(service)
}

// EnqueueHandlerCross is EnqueueHandler for completions that belong to
// a different logical process: the reservation is made on this resource
// (which must be owned by the LP `from`, the caller's engine), and the
// completion h.Run(start, end) is delivered to the LP `to` through
// from.Send. With a standalone engine (from == to) it is byte-identical
// to EnqueueHandler, so serial pipelines can call it unconditionally.
func (r *Resource) EnqueueHandlerCross(from, to *Engine, service Time, h Handler) (start, end Time) {
	start, end = r.reserve(service)
	from.Send(to, end, start, h)
	return start, end
}

// Use runs a job on behalf of process p, blocking it until the job
// completes, and returns how long the job waited before service began.
func (r *Resource) Use(p *Proc, service Time) (waited Time) {
	start, end := r.Enqueue(service, nil)
	waited = start - p.eng.now
	p.SleepUntil(end)
	return waited
}

// Gate is a counting-semaphore admission control used to model a bounded
// queue (e.g. the NI post queue): at most Depth jobs may be outstanding;
// producers block in Acquire when the queue is full and are released in
// FIFO order as Release is called.
type Gate struct {
	Depth int
	inUse int
	q     WaitQ

	Blocked     uint64 // number of Acquire calls that had to wait
	BlockedTime Time   // total time spent blocked in Acquire
}

// NewGate returns a gate admitting up to depth concurrent holders.
func NewGate(depth int) *Gate { return &Gate{Depth: depth} }

// Acquire blocks p until a slot is free, then claims it.
func (g *Gate) Acquire(p *Proc) {
	if g.inUse >= g.Depth {
		g.Blocked++
		t0 := p.Now()
		for g.inUse >= g.Depth {
			g.q.Wait(p)
		}
		g.BlockedTime += p.Now() - t0
	}
	g.inUse++
}

// Enqueue parks a machine-context waiter in the gate's FIFO: the
// Acquire path for Handler state machines, which cannot block. The
// waiter is woken by the next Release and must retry TryAcquire,
// mirroring Acquire's Blocked/BlockedTime accounting itself.
func (g *Gate) Enqueue(w Waiter) { g.q.Enqueue(w) }

// TryAcquire claims a slot if one is free without blocking.
func (g *Gate) TryAcquire() bool {
	if g.inUse >= g.Depth {
		return false
	}
	g.inUse++
	return true
}

// Release frees a slot and wakes one blocked producer. May be called from
// any context.
func (g *Gate) Release() {
	if g.inUse <= 0 {
		panic("sim: Gate.Release without Acquire")
	}
	g.inUse--
	g.q.WakeOne()
}

// InUse returns the number of currently held slots.
func (g *Gate) InUse() int { return g.inUse }
