package sim

import (
	"strings"
	"testing"
)

// A cluster whose backlog never drains must trip the progress watchdog
// with per-LP diagnostics instead of spinning commit-only passes
// forever. The stall is synthesized by claiming an uncommitted log
// entry that no LP actually holds: every round is then a no-op barrier
// pass with an unchanged progress signature.
func TestWatchdogTripsOnStalledCluster(t *testing.T) {
	cl := NewCluster(4, 2, 1, 10, 10)
	cl.SetWatchdog(50)
	cl.exec = true
	cl.pending = 1 // synthetic: backlog that can never commit

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run returned; want watchdog panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("recovered %T (%v); want string", r, r)
		}
		for _, want := range []string{"watchdog", "no progress in 50 rounds", "shard LP 0", "shard LP 1", "fabric LP", "horizons:"} {
			if !strings.Contains(msg, want) {
				t.Errorf("watchdog panic missing %q:\n%s", want, msg)
			}
		}
	}()
	cl.Run()
}

// A healthy run must never trip the watchdog, even with a tiny
// threshold: every productive round changes the progress signature.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cl := NewCluster(2, 2, 2, 10, 10)
	cl.SetWatchdog(2)
	eng := cl.Main()
	other := eng.LPNode(1)
	var got int
	// Ping-pong a handler between the two shard LPs via plain events.
	var ping func(e *Engine, depth int)
	ping = func(e *Engine, depth int) {
		got++
		if depth == 0 {
			return
		}
		to := other
		if e == other {
			to = eng
		}
		e.Send(to, e.Now()+10, e.Now(), handlerFunc(func(_, _ Time) { ping(to, depth-1) }))
	}
	eng.At(0, func() { ping(eng, 100) })
	cl.Run()
	if got != 101 {
		t.Fatalf("executed %d pings, want 101", got)
	}
}

type handlerFunc func(start, end Time)

func (f handlerFunc) Run(start, end Time) { f(start, end) }

// Two engines that execute the same schedule must produce the same
// digest; diverging by one event must change it.
func TestEngineDigestDeterminism(t *testing.T) {
	build := func(extra bool) uint64 {
		e := NewEngine()
		e.At(5, func() { e.After(7, func() {}) })
		e.At(9, func() {})
		e.Run(6) // leave events in the heap so the digest covers them
		if extra {
			e.At(11, func() {})
		}
		d := NewDigest()
		e.DigestInto(d)
		return d.Sum()
	}
	a, b := build(false), build(false)
	if a != b {
		t.Fatalf("identical runs digest differently: %#x vs %#x", a, b)
	}
	if c := build(true); c == a {
		t.Fatalf("divergent run digests equal: %#x", c)
	}
}
