package sim

// Tests for the shard-granular cluster: node-to-shard mapping, the
// lone-shard fast path (no worker wakeups in quiescent phases), panic
// propagation out of a parallel round, and — through a miniature
// bipartite node/fabric network recorded via DeferFlush — byte-equal
// global event ordering for every (shards, workers) combination,
// including rounds that leave a deferred-commit backlog.

import (
	"fmt"
	"strings"
	"testing"
)

// tick is a self-rescheduling local event: left more firings, step
// apart, on a fixed engine.
type tick struct {
	e    *Engine
	step Time
	left int
}

func (t *tick) Run(_, now Time) {
	if t.left == 0 {
		return
	}
	t.left--
	t.e.AtHandler(now+t.step, now, t)
}

func TestShardMapping(t *testing.T) {
	cl := NewCluster(10, 4, 2, 10, 10)
	if got := cl.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	main := cl.Main()
	// Block partition: ceil(10/4) = 3 nodes per shard.
	wantShard := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3}
	seen := map[*Engine]bool{}
	for i, w := range wantShard {
		lp := main.LPNode(i)
		if lp != cl.all[w] {
			t.Errorf("LPNode(%d) on shard %d, want %d", i, lp.lp, w)
		}
		seen[lp] = true
	}
	if len(seen) != 4 {
		t.Errorf("nodes map onto %d shard LPs, want 4", len(seen))
	}
	if cl.Main().LPFabric() == cl.Main().LPNode(9) {
		t.Error("fabric LP must be distinct from every shard LP")
	}
	// Shard counts clamp to [1, nodes].
	if got := NewCluster(4, 99, 2, 10, 10).Shards(); got != 4 {
		t.Errorf("shards clamp high: got %d, want 4", got)
	}
	if got := NewCluster(4, 0, 2, 10, 10).Shards(); got != 1 {
		t.Errorf("shards clamp low: got %d, want 1", got)
	}
}

// TestLoneShardNoWorkerWake: a quiescent phase — all activity on one
// shard, nothing anywhere else — must run entirely on the lone-LP fast
// path without waking the worker pool, no matter how many nodes share
// the shard.
func TestLoneShardNoWorkerWake(t *testing.T) {
	cl := NewCluster(8, 2, 4, 10, 10)
	main := cl.Main()
	// Nodes 0..3 live on shard 0; give several of them interleaved
	// local activity. Shard 1 and the fabric stay empty.
	for i := 0; i < 4; i++ {
		lp := main.LPNode(i)
		if lp != main {
			t.Fatalf("node %d not on shard 0", i)
		}
	}
	main.AtHandler(0, 0, &tick{e: main, step: 3, left: 100})
	main.AtHandler(1, 0, &tick{e: main, step: 5, left: 100})
	cl.Run()
	st := cl.Stats()
	if st.WorkerWakes != 0 {
		t.Errorf("lone-shard phase woke workers %d times, want 0", st.WorkerWakes)
	}
	if st.ParRounds != 0 {
		t.Errorf("lone-shard phase ran %d parallel rounds, want 0", st.ParRounds)
	}
	if st.LoneRounds == 0 {
		t.Error("expected lone-mode rounds")
	}
	if got := cl.Events(); got != 202 {
		t.Errorf("executed %d events, want 202", got)
	}
}

// boomAt panics when its firing time reaches boom; before that it
// behaves like tick.
type boomAt struct {
	e    *Engine
	step Time
	boom Time
}

func (b *boomAt) Run(_, now Time) {
	if now >= b.boom {
		panic("kaboom-test")
	}
	b.e.AtHandler(now+b.step, now, b)
}

// TestRoundPanicPropagates: a handler panic inside a parallel round
// must re-raise from Run with the failing LP identified — not deadlock
// the barrier WaitGroup.
func TestRoundPanicPropagates(t *testing.T) {
	cl := NewCluster(2, 2, 2, 10, 10)
	main := cl.Main()
	// Both shards busy so rounds are parallel (worker pool engaged).
	main.AtHandler(0, 0, &tick{e: main, step: 4, left: 50})
	lp1 := main.LPNode(1)
	lp1.AtHandler(0, 0, &boomAt{e: lp1, step: 4, boom: 40})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "shard LP 1") || !strings.Contains(msg, "kaboom-test") {
			t.Errorf("panic message %q, want the failing LP and cause identified", msg)
		}
	}()
	cl.Run()
}

// --- miniature bipartite network for order-equivalence tests ---------

// rec appends one formatted record when flushed; scheduled through
// DeferFlush it replays in global ordinal order at the barrier, so the
// collected log is the global serial execution order.
type rec struct {
	log *[]string
	s   string
}

func (r rec) Run(_, _ Time) { *r.log = append(*r.log, r.s) }

// bipNet wires n logical "nodes" to a relay "fabric": every node tick
// records itself and launches a packet to the fabric (lookahead
// nodeLA), the fabric forwards it to the next node (lookahead fabLA),
// and the arrival records itself. With a cluster the node engines are
// shard LPs and the relay runs on the fabric LP, so the traffic is
// exactly the bipartite shape the runner guarantees.
type bipNet struct {
	nodes  []*Engine
	fab    *Engine
	nodeLA Time
	fabLA  Time
	log    []string
}

type bipTick struct {
	net  *bipNet
	id   int
	step Time
	left int
}

func (h *bipTick) Run(_, now Time) {
	e := h.net.nodes[h.id]
	e.DeferFlush(rec{&h.net.log, fmt.Sprintf("tick %d @%d", h.id, now)})
	e.Send(h.net.fab, now+h.net.nodeLA, now, &bipRelay{net: h.net, from: h.id})
	if h.left > 0 {
		h.left--
		e.AtHandler(now+h.step, now, h)
	}
}

type bipRelay struct {
	net  *bipNet
	from int
}

func (h *bipRelay) Run(_, now Time) {
	n := h.net
	n.fab.DeferFlush(rec{&n.log, fmt.Sprintf("relay %d @%d", h.from, now)})
	to := (h.from + 1) % len(n.nodes)
	n.fab.Send(n.nodes[to], now+n.fabLA, now, &bipArr{net: n, at: to})
}

type bipArr struct {
	net *bipNet
	at  int
}

func (h *bipArr) Run(_, now Time) {
	n := h.net
	n.nodes[h.at].DeferFlush(rec{&n.log, fmt.Sprintf("arr %d @%d", h.at, now)})
}

// runBipNet executes the workload on a standalone engine (shards == 0)
// or on a cluster with the given shape, and returns the global-order
// log. Node i ticks with a distinct period so shards fall out of step
// and partial commits occur.
func runBipNet(n, shards, workers int) (string, ClusterStats) {
	const nodeLA, fabLA = 5, 3
	net := &bipNet{nodeLA: nodeLA, fabLA: fabLA}
	var cl *Cluster
	if shards == 0 {
		e := NewEngine()
		net.fab = e.LPFabric()
		for i := 0; i < n; i++ {
			net.nodes = append(net.nodes, e.LPNode(i))
		}
	} else {
		cl = NewCluster(n, shards, workers, nodeLA, fabLA)
		cl.MarkBipartite()
		net.fab = cl.Main().LPFabric()
		for i := 0; i < n; i++ {
			net.nodes = append(net.nodes, cl.Main().LPNode(i))
		}
	}
	for i := 0; i < n; i++ {
		net.nodes[i].AtHandler(Time(i), 0, &bipTick{net: net, id: i, step: Time(7 + 2*i), left: 40})
	}
	if cl != nil {
		cl.Run()
		return strings.Join(net.log, "\n"), cl.Stats()
	}
	net.nodes[0].RunUntilQuiet()
	return strings.Join(net.log, "\n"), ClusterStats{}
}

// TestBipartiteOrderEquivalence: the globally ordered event log must
// be identical to the standalone engine's for every (shards, workers)
// shape, and at least one shape must actually exercise the
// deferred-commit backlog (otherwise the batched horizons proved
// nothing).
func TestBipartiteOrderEquivalence(t *testing.T) {
	const n = 8
	want, _ := runBipNet(n, 0, 0)
	sawBacklog := false
	for _, shards := range []int{1, 2, 3, 8} {
		for _, workers := range []int{1, 2, 4} {
			got, st := runBipNet(n, shards, workers)
			if got != want {
				t.Fatalf("shards=%d workers=%d: global order diverges from serial\nserial head: %.120s\ncluster head: %.120s",
					shards, workers, want, got)
			}
			if st.MaxBacklog > 0 {
				sawBacklog = true
			}
		}
	}
	if !sawBacklog {
		t.Error("no shape produced a deferred-commit backlog; batched windows untested")
	}
}
