package sim

// WaitQ is a FIFO queue of blocked processes, the simulation analogue of a
// condition variable. Wait must be called from process context; WakeOne and
// WakeAll may be called from any context (they schedule the resumption as a
// zero-delay event).
type WaitQ struct {
	waiters []*Proc
}

// Len returns the number of processes currently blocked on the queue.
func (q *WaitQ) Len() int { return len(q.waiters) }

// Wait blocks the calling process until it is woken.
func (q *WaitQ) Wait(p *Proc) {
	q.waiters = append(q.waiters, p)
	p.Park()
}

// WakeOne wakes the longest-waiting process, if any, and reports whether a
// process was woken. The queue compacts in place rather than re-slicing
// off the front, so the backing array is reused and a steady
// block/wake cycle allocates nothing.
func (q *WaitQ) WakeOne() bool {
	n := len(q.waiters)
	if n == 0 {
		return false
	}
	p := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters[n-1] = nil
	q.waiters = q.waiters[:n-1]
	p.Unpark()
	return true
}

// WakeAll wakes every waiting process and returns how many were woken.
func (q *WaitQ) WakeAll() int {
	n := len(q.waiters)
	for i, p := range q.waiters {
		p.Unpark()
		q.waiters[i] = nil // release, but keep the backing array
	}
	q.waiters = q.waiters[:0]
	return n
}

// Flag is a one-shot level-triggered condition: processes that Wait before
// Set block until Set; Waits after Set return immediately.
type Flag struct {
	set bool
	q   WaitQ
}

// Set raises the flag and wakes all waiters.
func (f *Flag) Set() {
	if f.set {
		return
	}
	f.set = true
	f.q.WakeAll()
}

// IsSet reports whether the flag has been raised.
func (f *Flag) IsSet() bool { return f.set }

// Wait blocks p until the flag is set.
func (f *Flag) Wait(p *Proc) {
	for !f.set {
		f.q.Wait(p)
	}
}

// Counter is a monotonically increasing counter processes can wait on,
// used to model spinning on a protocol flag word deposited by a remote NI.
type Counter struct {
	val uint64
	q   WaitQ
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.val }

// Add increases the counter and wakes all waiters (they re-check their
// thresholds).
func (c *Counter) Add(n uint64) {
	c.val += n
	c.q.WakeAll()
}

// WaitFor blocks p until the counter reaches at least target.
func (c *Counter) WaitFor(p *Proc, target uint64) {
	for c.val < target {
		c.q.Wait(p)
	}
}
