package sim

// Waiter is anything that can park in a WaitQ and be resumed later:
// goroutine-backed Procs and resumable Handler state machines alike.
// Unpark schedules the waiter to run at the current virtual time; for a
// Proc that resumes the goroutine, for a machine it re-enters Run.
type Waiter interface {
	Unpark()
}

// WaitQ is a FIFO queue of blocked waiters, the simulation analogue of a
// condition variable. Wait must be called from process context (Enqueue
// is the machine-context form); WakeOne and WakeAll may be called from
// any context (they schedule the resumption as a zero-delay event).
// The oldest waiter lives in the inline slot w0 (the common case is a
// single waiter, and there are many thousands of WaitQ instances —
// per page, per lock, per pooled record — so the inline slot avoids
// ever materializing a backing array for most of them); the next few
// live in the inline ring wn (enough for every processor of a node to
// park at once), and only deeper queues spill to the heap-allocated
// waiters slice. FIFO order across the tiers is w0, wn[:n], waiters.
// Invariant: w0 is nil only when the queue is empty, and waiters is
// non-empty only when n == len(wn).
type WaitQ struct {
	w0      Waiter
	n       int8 // occupied slots of wn
	wn      [3]Waiter
	waiters []Waiter
}

// Len returns the number of waiters currently blocked on the queue.
func (q *WaitQ) Len() int {
	if q.w0 == nil {
		return 0
	}
	return 1 + int(q.n) + len(q.waiters)
}

// Wait blocks the calling process until it is woken.
func (q *WaitQ) Wait(p *Proc) {
	q.enq(p)
	p.Park()
}

// Enqueue adds a non-goroutine waiter (a Handler state machine) to the
// queue; the machine must return to the engine loop after calling it
// and resume from its Unpark.
func (q *WaitQ) Enqueue(w Waiter) {
	q.enq(w)
}

func (q *WaitQ) enq(w Waiter) {
	if q.w0 == nil {
		q.w0 = w
		return
	}
	if int(q.n) < len(q.wn) {
		q.wn[q.n] = w
		q.n++
		return
	}
	if q.waiters == nil {
		// First heap overflow: start at a capacity that never regrows
		// 1->2->4->8 on hot queues.
		q.waiters = make([]Waiter, 0, 8)
	}
	q.waiters = append(q.waiters, w)
}

// WakeOne wakes the longest-waiting waiter, if any, and reports whether
// one was woken. The overflow queue compacts in place rather than
// re-slicing off the front, so the backing array is reused and a steady
// block/wake cycle allocates nothing.
func (q *WaitQ) WakeOne() bool {
	w := q.w0
	if w == nil {
		return false
	}
	if q.n > 0 {
		q.w0 = q.wn[0]
		copy(q.wn[:], q.wn[1:q.n])
		q.n--
		q.wn[q.n] = nil
		if n := len(q.waiters); n > 0 {
			// Refill the inline ring from the heap overflow, keeping
			// FIFO order across the tiers.
			q.wn[q.n] = q.waiters[0]
			q.n++
			copy(q.waiters, q.waiters[1:])
			q.waiters[n-1] = nil
			q.waiters = q.waiters[:n-1]
		}
	} else {
		q.w0 = nil
	}
	w.Unpark()
	return true
}

// WakeAll wakes every waiter (in FIFO order) and returns how many were
// woken.
func (q *WaitQ) WakeAll() int {
	if q.w0 == nil {
		return 0
	}
	q.w0.Unpark()
	q.w0 = nil
	n := 1 + int(q.n) + len(q.waiters)
	for i := int8(0); i < q.n; i++ {
		q.wn[i].Unpark()
		q.wn[i] = nil
	}
	q.n = 0
	for i, w := range q.waiters {
		w.Unpark()
		q.waiters[i] = nil // release, but keep the backing array
	}
	q.waiters = q.waiters[:0]
	return n
}

// Flag is a one-shot level-triggered condition: processes that Wait before
// Set block until Set; Waits after Set return immediately.
type Flag struct {
	set bool
	q   WaitQ
}

// Set raises the flag and wakes all waiters.
func (f *Flag) Set() {
	if f.set {
		return
	}
	f.set = true
	f.q.WakeAll()
}

// IsSet reports whether the flag has been raised.
func (f *Flag) IsSet() bool { return f.set }

// Reset lowers the flag for reuse, keeping the wait queue's backing
// array. It must only be called when no waiter is still parked (every
// woken waiter has resumed), e.g. when recycling a pooled record whose
// single waiter has consumed the result.
func (f *Flag) Reset() {
	if f.q.Len() != 0 {
		panic("sim: Flag.Reset with parked waiters")
	}
	f.set = false
}

// Wait blocks p until the flag is set.
func (f *Flag) Wait(p *Proc) {
	for !f.set {
		f.q.Wait(p)
	}
}

// Counter is a monotonically increasing counter processes can wait on,
// used to model spinning on a protocol flag word deposited by a remote NI.
type Counter struct {
	val uint64
	q   WaitQ
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.val }

// Add increases the counter and wakes all waiters (they re-check their
// thresholds).
func (c *Counter) Add(n uint64) {
	c.val += n
	c.q.WakeAll()
}

// WaitFor blocks p until the counter reaches at least target.
func (c *Counter) WaitFor(p *Proc, target uint64) {
	for c.val < target {
		c.q.Wait(p)
	}
}

// Reset zeroes the counter for reuse, keeping the wait queue's backing
// array. It must only be called when no waiter is still parked.
func (c *Counter) Reset() {
	if c.q.Len() != 0 {
		panic("sim: Counter.Reset with parked waiters")
	}
	c.val = 0
}
