// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock (int64 nanoseconds) by executing
// events in timestamp order. Two styles of simulated activity coexist:
//
//   - Plain events: closures scheduled with At/After, executed inline by
//     the engine loop. Used for message deliveries, DMA completions, etc.
//   - Processes: goroutines that model sequential agents (simulated
//     processors, protocol handlers). Exactly one goroutine — either the
//     engine loop or a single process — runs at any instant; control is
//     handed over synchronously, so simulations are deterministic and
//     race-free without locks.
//
// Ties between events at the same timestamp are broken by scheduling
// order, which makes runs bit-reproducible.
package sim

import (
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time = int64

// Common durations in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micro returns d microseconds as a Time duration.
func Micro(d float64) Time { return Time(d * float64(Microsecond)) }

// Handler is the typed event form: a pre-built object whose Run method
// the engine invokes directly from the event queue, with no func() (and
// therefore no closure allocation) in between. start carries the
// reservation's begin time when the event was scheduled by a Resource
// (see Resource.EnqueueHandler); end is the event's own timestamp,
// equal to Engine.Now() at dispatch. Hot paths (the NI packet pipeline)
// implement Handler on pooled records; cold paths keep using At/After
// with plain closures.
type Handler interface {
	Run(start, end Time)
}

// event is one queue entry. Exactly one of fn and h is set; h events
// additionally carry the start word handed to Handler.Run.
type event struct {
	at    Time
	seq   uint64
	start Time
	fn    func()
	h     Handler
}

// eventBefore orders events by timestamp, then by scheduling order, so
// runs stay bit-reproducible.
func eventBefore(x, y *event) bool {
	return x.at < y.at || (x.at == y.at && x.seq < y.seq)
}

// eventQueue is a typed 4-ary min-heap over a flat []event. It replaces
// container/heap, which boxes every event through `any` (one allocation
// per push) and dispatches Less/Swap through an interface. The 4-ary
// shape halves the tree depth, so pops touch fewer cache lines than a
// binary heap on the deep queues the protocol simulations build.
// Vacated slots are zeroed on pop so executed event closures (and
// everything they capture) become garbage-collectable immediately.
type eventQueue struct {
	a []event
}

func (q *eventQueue) len() int     { return len(q.a) }
func (q *eventQueue) peek() *event { return &q.a[0] }

func (q *eventQueue) push(e event) {
	q.a = append(q.a, e)
	a := q.a
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventBefore(&a[i], &a[parent]) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	a := q.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = event{} // release the closure to the GC
	q.a = a[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if eventBefore(&a[j], &a[m]) {
				m = j
			}
		}
		if !eventBefore(&a[m], &a[i]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventQueue

	// park receives control back from a running process.
	park chan struct{}

	procs   []*Proc
	running int // number of live (not finished) processes
	stopped bool

	nEvents uint64

	// Parallel (cluster) state; all zero for standalone engines, in
	// which case every field below is dead and the engine behaves
	// exactly as before. See plp.go for the synchronization scheme.
	cl       *Cluster
	lp       int    // this LP's index in cl.all
	la       Time   // lookahead: min cross-LP scheduling delta
	inRound  bool   // runWindow is executing this LP
	curPos   uint64 // absolute log position of the executing event
	curOrd   uint64 // lone mode: resolved ordinal of the executing event
	actIdx   uint64 // scheduling actions taken by the executing event
	winH     Time   // this round's execution horizon (set by Run loop)
	logStart uint64 // absolute position of roundLog[0] (commit floor)
	roundLog []logRec
	ord      []uint64 // barrier-assigned ordinal per committed log index
	outbox   []crossMsg
	defers   []deferRec
	countAdj int64 // correction added to nEvents by Cluster.Events

	// Membership bookkeeping for the cluster's incremental structures.
	heapIdx  int32 // index in the cluster's peek heap, -1 when absent
	peekKey  Time  // cached peek timestamp while in the peek heap
	touched  bool  // queued in cl.touched for a post-barrier peek sync
	inLogged bool  // has uncommitted round-log entries (in cl.logged)
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{park: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.nEvents }

// nextKey returns the ordering key for the next scheduled event. For a
// standalone engine it is the plain scheduling sequence number; for an
// LP engine it is a setup, resolved, or provisional structured key (see
// plp.go) that reproduces the serial tie-break order without a shared
// hot-path counter.
func (e *Engine) nextKey() uint64 {
	cl := e.cl
	if cl == nil {
		e.seq++
		return e.seq
	}
	if !cl.exec {
		cl.setupSeq++
		if cl.setupSeq >= maxSetup {
			panic("sim: setup scheduling sequence overflow")
		}
		return cl.setupSeq
	}
	if cl.lone != e && !e.inRound {
		panic("sim: scheduling on an LP engine that is not executing (cross-LP event must use Send)")
	}
	a := e.actIdx
	e.actIdx++
	if a > actMask {
		panic("sim: too many events scheduled by a single event")
	}
	if cl.lone == e {
		return e.curOrd<<actBits | a
	}
	if e.curPos > posMask {
		panic("sim: round-log position overflow")
	}
	return provBit | e.curPos<<actBits | a
}

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it would make the clock non-monotonic.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.events.push(event{at: t, seq: e.nextKey(), fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// AtHandler schedules h.Run(start, t) at virtual time t. It is the
// allocation-free counterpart of At: the handler value is stored in the
// event queue slot directly (no closure), so scheduling a pooled record
// costs zero heap allocations. Ties with At-scheduled events are broken
// by the same shared seq counter, so interleaving handler and closure
// events preserves the global FIFO tie-break order.
func (e *Engine) AtHandler(t, start Time, h Handler) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.events.push(event{at: t, seq: e.nextKey(), start: start, h: h})
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the event queue is empty, Stop is called, or
// the optional deadline (>0) is reached. It returns the final virtual time.
func (e *Engine) Run(deadline Time) Time {
	for !e.stopped && e.events.len() > 0 {
		if deadline > 0 && e.events.peek().at > deadline {
			e.now = deadline
			break
		}
		ev := e.events.pop()
		e.now = ev.at
		e.nEvents++
		if ev.h != nil {
			ev.h.Run(ev.start, ev.at)
		} else {
			ev.fn()
		}
	}
	return e.now
}

// RunUntilQuiet is Run with no deadline.
func (e *Engine) RunUntilQuiet() Time { return e.Run(0) }

// LPNode returns the logical-process engine of node i: in a parallel
// run the LP of the shard the node is mapped to (several nodes may
// share one LP, see Cluster sharding), on a standalone engine the
// engine itself. Code that constructs per-node devices calls this so
// the same construction path serves serial and parallel runs.
func (e *Engine) LPNode(i int) *Engine {
	if e.cl == nil {
		return e
	}
	return e.cl.all[e.cl.nodeLP[i]]
}

// LPFabric returns the network fabric's logical-process engine (the
// engine itself when standalone); the shared switch lives there.
func (e *Engine) LPFabric() *Engine {
	if e.cl == nil {
		return e
	}
	return e.cl.fabric
}

// Parallel reports whether this engine is an LP of a parallel cluster.
func (e *Engine) Parallel() bool { return e.cl != nil }

// Send schedules h.Run(start, at) on the engine `to`, which may belong
// to a different LP. On a standalone engine — or between setup-phase
// cluster engines, or when to is the sender itself — it is exactly
// to.AtHandler. During parallel execution a cross-LP send is parked in
// the sender's outbox and delivered at the round barrier (or pushed
// directly in lone mode, ending the lone run); either way it burns one
// action index on the sending event, so the child-order the serial
// engine would have produced is preserved.
func (e *Engine) Send(to *Engine, at, start Time, h Handler) {
	cl := e.cl
	if cl == nil || !cl.exec || to == e {
		to.AtHandler(at, start, h)
		return
	}
	if at < e.now+e.la {
		panic(fmt.Sprintf("sim: cross-LP send at %d violates lookahead (now %d + la %d)", at, e.now, e.la))
	}
	if cl.bipartite && e != cl.fabric && to != cl.fabric {
		panic("sim: shard-to-shard send in a bipartite cluster (cross-LP traffic must pass the fabric LP)")
	}
	key := e.nextKey()
	if cl.lone == e {
		cl.loneCrossed = true
		to.events.push(event{at: at, seq: key, start: start, h: h})
		cl.markTouched(to)
		return
	}
	e.outbox = append(e.outbox, crossMsg{to: to, at: at, start: start, key: key, h: h})
}

// Deferring reports whether side effects flushed through DeferFlush
// will be postponed to the round barrier (true only during a parallel
// round). Callers use it to decide between committing shared-state
// mutations inline and snapshotting them for deferred commit.
func (e *Engine) Deferring() bool {
	cl := e.cl
	return cl != nil && cl.exec && cl.lone != e
}

// DeferFlush runs h at the round barrier, after all LPs have finished
// the round, in the global serial order of the deferring events. Use it
// for side effects on state shared across LPs (statistics, trace
// emission) that must not run concurrently but do not influence the
// simulation itself. Outside a parallel round it runs h inline.
func (e *Engine) DeferFlush(h Handler) {
	if !e.Deferring() {
		h.Run(e.now, e.now)
		return
	}
	e.defers = append(e.defers, deferRec{pos: e.curPos, at: e.now, h: h})
}

// AdjustEventCount corrects this LP's executed-event count as reported
// by Cluster.Events. The parallel fabric path turns one serial fan-out
// event into one arrival event per destination; the site records the
// difference here so serial and parallel runs report identical totals.
func (e *Engine) AdjustEventCount(d int64) { e.countAdj += d }

// effKey resolves a provisional key against the ordinals assigned to
// this LP's committed log prefix at the barrier (positions are
// absolute; ord is indexed relative to logStart); setup and resolved
// keys pass through unchanged. Callers guarantee the referenced
// position has been committed this barrier.
func (e *Engine) effKey(k uint64) uint64 {
	if k&provBit == 0 {
		return k
	}
	return e.ord[(k>>actBits&posMask)-e.logStart]<<actBits | k&actMask
}

// runWindow executes this LP's events with timestamp below the round
// horizon h, logging each so the barrier can assign global ordinals.
func (e *Engine) runWindow(h Time) {
	e.inRound = true
	for e.events.len() > 0 && e.events.peek().at < h {
		ev := e.events.pop()
		e.now = ev.at
		e.nEvents++
		e.curPos = e.logStart + uint64(len(e.roundLog))
		e.actIdx = 0
		e.roundLog = append(e.roundLog, logRec{at: ev.at, key: ev.seq})
		if ev.h != nil {
			ev.h.Run(ev.start, ev.at)
		} else {
			ev.fn()
		}
	}
	e.inRound = false
}

// runLone executes this LP while it is the only one with events:
// ordinals are assigned as events pop (heap order is the global order
// when every other LP is empty), so no logging or merging is needed.
// The run ends when the heap drains or an event sends cross-LP — past
// that point the receiver could react back into this LP, so the
// cluster must recompute the horizon.
func (e *Engine) runLone() {
	cl := e.cl
	cl.lone = e
	cl.loneCrossed = false
	for e.events.len() > 0 && !cl.loneCrossed && !cl.stop {
		ev := e.events.pop()
		e.now = ev.at
		e.nEvents++
		e.curOrd = cl.nextOrd
		cl.nextOrd++
		e.actIdx = 0
		if ev.h != nil {
			ev.h.Run(ev.start, ev.at)
		} else {
			ev.fn()
		}
	}
	cl.lone = nil
}

// Proc is a simulated sequential agent backed by a goroutine. All Proc
// methods that block (Sleep, WaitOn, ...) must be called from the process's
// own goroutine.
type Proc struct {
	eng  *Engine
	name string
	wake chan struct{}
	done bool
}

// Go spawns a new process running body. The process starts at the current
// virtual time (as a scheduled event, so Go may be called before Run).
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, wake: make(chan struct{})}
	e.procs = append(e.procs, p)
	e.running++
	go func() {
		<-p.wake // wait for first dispatch
		body(p)
		p.done = true
		e.running--
		e.park <- struct{}{} // return control to the engine loop
	}()
	e.AtHandler(e.now, e.now, p)
	return p
}

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Run implements Handler: a scheduled wakeup dispatches the process.
// It exists so Sleep, Unpark, and Go can schedule dispatches through
// the typed event path with no closure allocation; it is not meant to
// be called directly.
func (p *Proc) Run(_, _ Time) { p.dispatch() }

// dispatch transfers control from the engine loop to the process and
// waits for it to yield back. It must run in engine (event) context.
func (p *Proc) dispatch() {
	if p.done {
		panic("sim: dispatch of finished process " + p.name)
	}
	p.wake <- struct{}{}
	<-p.eng.park
}

// yield returns control to the engine loop and blocks until the next
// dispatch. It must run in process context.
func (p *Proc) yield() {
	p.eng.park <- struct{}{}
	<-p.wake
}

// Sleep suspends the process for d nanoseconds of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		return
	}
	t := p.eng.now + d
	p.eng.AtHandler(t, t, p)
	p.yield()
}

// SleepUntil suspends the process until virtual time t (no-op if t <= now).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.eng.now {
		return
	}
	p.Sleep(t - p.eng.now)
}

// Park suspends the process indefinitely; something else must hold a
// reference and call Unpark (in engine/event or another process's context).
func (p *Proc) Park() { p.yield() }

// Unpark resumes a parked process at the current virtual time. It must be
// called from engine (event) context — e.g. inside an event callback — or
// via WaitQ/Mailbox which handle this correctly.
func (p *Proc) Unpark() {
	p.eng.AtHandler(p.eng.now, p.eng.now, p)
}
