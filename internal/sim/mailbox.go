package sim

// Mailbox is an unbounded FIFO message queue between simulated activities.
// Send may be called from any context; Recv must be called from process
// context and blocks until a message is available.
type Mailbox[T any] struct {
	items []T
	q     WaitQ
}

// Send enqueues an item and wakes one waiting receiver.
func (m *Mailbox[T]) Send(v T) {
	m.items = append(m.items, v)
	m.q.WakeOne()
}

// Recv dequeues the oldest item, blocking p until one is available.
func (m *Mailbox[T]) Recv(p *Proc) T {
	for len(m.items) == 0 {
		m.q.Wait(p)
	}
	return m.pop()
}

// TryRecv dequeues the oldest item without blocking.
func (m *Mailbox[T]) TryRecv() (T, bool) {
	var zero T
	if len(m.items) == 0 {
		return zero, false
	}
	return m.pop(), true
}

// pop removes the head, compacting in place so the backing array is
// reused instead of re-sliced away (a steady send/recv cycle then
// allocates nothing).
func (m *Mailbox[T]) pop() T {
	n := len(m.items)
	v := m.items[0]
	var zero T
	copy(m.items, m.items[1:])
	m.items[n-1] = zero // release references held by the vacated slot
	m.items = m.items[:n-1]
	return v
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.items) }
