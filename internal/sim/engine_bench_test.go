package sim

// Wall-clock micro-benchmarks for the simulation hot paths: event
// scheduling/dispatch (the typed 4-ary heap) and process switching (the
// two channel handoffs per dispatch). `make bench-smoke` runs these once;
// compare before/after with `go test -bench Engine -benchmem ./internal/sim`.

import (
	"testing"
)

// BenchmarkEngineAtRun measures schedule+dispatch throughput: each
// iteration pushes one event into a standing queue and drains one, the
// steady-state mix of a protocol simulation.
func BenchmarkEngineAtRun(b *testing.B) {
	e := NewEngine()
	depth := 1024
	nop := func() {}
	for i := 0; i < depth; i++ {
		e.At(Time(i), nop)
	}
	b.ResetTimer()
	t := Time(depth)
	var scheduled int
	body := func() {
		scheduled++
	}
	for i := 0; i < b.N; i++ {
		e.At(t+Time(i), body)
	}
	e.RunUntilQuiet()
	b.ReportMetric(float64(e.Events())/float64(b.N), "events/op")
}

// BenchmarkEventQueuePushPop measures raw heap operations on a deep
// queue with heavy timestamp ties (the tie-break path).
func BenchmarkEventQueuePushPop(b *testing.B) {
	var q eventQueue
	for i := 0; i < 4096; i++ {
		q.push(event{at: Time(i % 64), seq: uint64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.pop()
		e.seq = uint64(4096 + i)
		e.at += 64
		q.push(e)
	}
}

// BenchmarkEventCascade measures a self-rescheduling event chain: the
// pattern of timers and resource completions in the NI model.
func BenchmarkEventCascade(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	b.ResetTimer()
	e.RunUntilQuiet()
	if n != b.N {
		b.Fatalf("ran %d ticks, want %d", n, b.N)
	}
}

// BenchmarkProcSwitch measures a full process dispatch round trip
// (engine -> goroutine -> engine) via 1-tick sleeps.
func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine()
	e.Go("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.RunUntilQuiet()
}

// BenchmarkProcPingPong measures two processes alternating through a
// mailbox, the protocol-process communication pattern.
func BenchmarkProcPingPong(b *testing.B) {
	e := NewEngine()
	var mbA, mbB Mailbox[int]
	e.Go("ping", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			mbB.Send(1)
			mbA.Recv(p)
		}
	})
	e.Go("pong", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			mbB.Recv(p)
			mbA.Send(1)
		}
	})
	b.ResetTimer()
	e.RunUntilQuiet()
}
