package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	end := e.RunUntilQuiet()
	if end != 30 {
		t.Fatalf("end time = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.RunUntilQuiet()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break order = %v", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.RunUntilQuiet()
}

func TestDeadline(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(1000, func() { fired = true })
	end := e.Run(500)
	if fired {
		t.Error("event beyond deadline fired")
	}
	if end != 500 {
		t.Errorf("end = %d, want 500", end)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var depth int
	var ping func()
	ping = func() {
		depth++
		if depth < 100 {
			e.After(7, ping)
		}
	}
	e.After(7, ping)
	end := e.RunUntilQuiet()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if end != 700 {
		t.Fatalf("end = %d, want 700", end)
	}
}

func TestProcessSleep(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.Go("sleeper", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10)
			trace = append(trace, p.Now())
		}
	})
	e.RunUntilQuiet()
	for i, at := range trace {
		if want := Time(10 * (i + 1)); at != want {
			t.Fatalf("wakeup %d at %d, want %d", i, at, want)
		}
	}
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		e.Go("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(10)
				log = append(log, "a")
			}
		})
		e.Go("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(10)
				log = append(log, "b")
			}
		})
		e.RunUntilQuiet()
		return log
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine()
	var woke Time
	var target *Proc
	target = e.Go("sleeper", func(p *Proc) {
		p.Park()
		woke = p.Now()
	})
	e.At(123, func() { target.Unpark() })
	e.RunUntilQuiet()
	if woke != 123 {
		t.Fatalf("woke at %d, want 123", woke)
	}
}

func TestWaitQFIFO(t *testing.T) {
	e := NewEngine()
	var q WaitQ
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(Time(i + 1)) // stagger arrival: 1,2,3,4
			q.Wait(p)
			order = append(order, i)
		})
	}
	e.At(100, func() {
		for q.WakeOne() {
		}
	})
	e.RunUntilQuiet()
	for i := range order {
		if order[i] != i {
			t.Fatalf("wake order = %v, want FIFO", order)
		}
	}
}

func TestFlag(t *testing.T) {
	e := NewEngine()
	var f Flag
	var at Time
	e.Go("waiter", func(p *Proc) {
		f.Wait(p)
		at = p.Now()
		// A second wait after set returns immediately.
		f.Wait(p)
		if p.Now() != at {
			t.Error("wait on set flag blocked")
		}
	})
	e.At(55, func() { f.Set() })
	e.RunUntilQuiet()
	if at != 55 {
		t.Fatalf("flag wait released at %d, want 55", at)
	}
	if !f.IsSet() {
		t.Error("flag not set")
	}
}

func TestCounterThresholds(t *testing.T) {
	e := NewEngine()
	var c Counter
	var releasedAt [3]Time
	for i, target := range []uint64{1, 3, 5} {
		i, target := i, target
		e.Go("w", func(p *Proc) {
			c.WaitFor(p, target)
			releasedAt[i] = p.Now()
		})
	}
	for i := 1; i <= 5; i++ {
		at := Time(i * 10)
		e.At(at, func() { c.Add(1) })
	}
	e.RunUntilQuiet()
	want := [3]Time{10, 30, 50}
	if releasedAt != want {
		t.Fatalf("released at %v, want %v", releasedAt, want)
	}
}

func TestMailbox(t *testing.T) {
	e := NewEngine()
	var mb Mailbox[int]
	var got []int
	e.Go("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p))
		}
	})
	e.At(10, func() { mb.Send(1) })
	e.At(20, func() { mb.Send(2); mb.Send(3) })
	e.RunUntilQuiet()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "pci")
	var ends []Time
	e.At(0, func() {
		r.Enqueue(100, func(s, en Time) { ends = append(ends, en) })
		r.Enqueue(50, func(s, en Time) { ends = append(ends, en) })
	})
	e.At(10, func() {
		r.Enqueue(10, func(s, en Time) { ends = append(ends, en) })
	})
	e.RunUntilQuiet()
	want := []Time{100, 150, 160}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if r.Jobs != 3 || r.BusyTime != 160 {
		t.Fatalf("jobs=%d busy=%d", r.Jobs, r.BusyTime)
	}
	// Job 2 waited 100, job 3 waited 140.
	if r.WaitTime != 240 {
		t.Fatalf("wait=%d, want 240", r.WaitTime)
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "link")
	var starts []Time
	e.At(0, func() { r.Enqueue(10, func(s, _ Time) { starts = append(starts, s) }) })
	e.At(100, func() { r.Enqueue(10, func(s, _ Time) { starts = append(starts, s) }) })
	e.RunUntilQuiet()
	if starts[0] != 0 || starts[1] != 100 {
		t.Fatalf("starts = %v; idle resource must start immediately", starts)
	}
}

func TestResourceUseReportsWait(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	var w1, w2 Time
	e.Go("a", func(p *Proc) { w1 = r.Use(p, 100) })
	e.Go("b", func(p *Proc) { w2 = r.Use(p, 100) })
	e.RunUntilQuiet()
	if w1 != 0 || w2 != 100 {
		t.Fatalf("waits = %d,%d; want 0,100", w1, w2)
	}
}

func TestGateBlocksAtDepth(t *testing.T) {
	e := NewEngine()
	g := NewGate(2)
	var acquired []Time
	for i := 0; i < 4; i++ {
		e.Go("p", func(p *Proc) {
			g.Acquire(p)
			acquired = append(acquired, p.Now())
			p.Sleep(100)
			g.Release()
		})
	}
	e.RunUntilQuiet()
	want := []Time{0, 0, 100, 100}
	for i := range want {
		if acquired[i] != want[i] {
			t.Fatalf("acquire times = %v, want %v", acquired, want)
		}
	}
	if g.Blocked != 2 {
		t.Fatalf("blocked = %d, want 2", g.Blocked)
	}
}

func TestGateTryAcquire(t *testing.T) {
	g := NewGate(1)
	if !g.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if g.TryAcquire() {
		t.Fatal("second TryAcquire succeeded at depth 1")
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

// Property: for any set of event times, the engine executes them in
// nondecreasing time order and ends at the max time.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var seen []Time
		var maxT Time
		for _, d := range delays {
			at := Time(d)
			if at > maxT {
				maxT = at
			}
			e.At(at, func() { seen = append(seen, e.Now()) })
		}
		end := e.RunUntilQuiet()
		if end != maxT {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a FIFO resource never starts a job before the previous one
// ends, and actual time >= uncontended time.
func TestResourceFIFOProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewResource(e, "x")
		type span struct{ s, e Time }
		var spans []span
		jobs := int(n%20) + 1
		for i := 0; i < jobs; i++ {
			at := Time(rng.Intn(1000))
			svc := Time(rng.Intn(100) + 1)
			e.At(at, func() {
				r.Enqueue(svc, func(s, en Time) { spans = append(spans, span{s, en}) })
			})
		}
		e.RunUntilQuiet()
		for i := 1; i < len(spans); i++ {
			if spans[i].s < spans[i-1].e {
				return false
			}
		}
		return len(spans) == jobs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMicroConversion(t *testing.T) {
	if Micro(18) != 18000 {
		t.Fatalf("Micro(18) = %d", Micro(18))
	}
	if Micro(0.5) != 500 {
		t.Fatalf("Micro(0.5) = %d", Micro(0.5))
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++; e.Stop() })
	e.At(20, func() { ran++ })
	e.RunUntilQuiet()
	if ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
}

func TestSleepUntilPastIsNoop(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Go("p", func(p *Proc) {
		p.Sleep(100)
		p.SleepUntil(50) // already past
		at = p.Now()
	})
	e.RunUntilQuiet()
	if at != 100 {
		t.Fatalf("SleepUntil in the past moved time to %d", at)
	}
}

func TestResourceBacklog(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x")
	e.At(0, func() {
		r.Enqueue(100, nil)
		r.Enqueue(100, nil)
		if got := r.Backlog(); got != 200 {
			t.Errorf("backlog = %d, want 200", got)
		}
	})
	e.At(150, func() {
		if got := r.Backlog(); got != 50 {
			t.Errorf("backlog at t=150 = %d, want 50", got)
		}
	})
	e.At(250, func() {
		if got := r.Backlog(); got != 0 {
			t.Errorf("backlog after drain = %d", got)
		}
	})
	e.RunUntilQuiet()
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEngine()
	e.Go("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative sleep did not panic")
			}
		}()
		p.Sleep(-1)
	})
	e.RunUntilQuiet()
}

// TestEventQueueOrderProperty cross-checks the typed 4-ary heap against
// a sort-based oracle under random interleaved pushes and pops, with
// many timestamp ties to exercise the seq tie-break.
func TestEventQueueOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var q eventQueue
		var oracle []event
		seq := uint64(0)
		var popped, want []uint64
		for op := 0; op < 400; op++ {
			if q.len() == 0 || rng.Intn(3) > 0 {
				seq++
				ev := event{at: Time(rng.Intn(16)), seq: seq}
				q.push(ev)
				oracle = append(oracle, ev)
				continue
			}
			popped = append(popped, q.pop().seq)
			// Oracle: minimum by (at, seq).
			m := 0
			for i := range oracle {
				if eventBefore(&oracle[i], &oracle[m]) {
					m = i
				}
			}
			want = append(want, oracle[m].seq)
			oracle = append(oracle[:m], oracle[m+1:]...)
		}
		for q.len() > 0 {
			popped = append(popped, q.pop().seq)
			m := 0
			for i := range oracle {
				if eventBefore(&oracle[i], &oracle[m]) {
					m = i
				}
			}
			want = append(want, oracle[m].seq)
			oracle = append(oracle[:m], oracle[m+1:]...)
		}
		for i := range want {
			if popped[i] != want[i] {
				t.Fatalf("trial %d: pop order differs from oracle at %d: got %v want %v",
					trial, i, popped[i], want[i])
			}
		}
	}
}

// TestDrainedEngineHoldsNoEvents is the regression test for the event
// closure retention leak: after the queue drains, every slot of the
// backing array must be zeroed so executed closures are collectable.
func TestDrainedEngineHoldsNoEvents(t *testing.T) {
	e := NewEngine()
	var ran int
	for i := 0; i < 1000; i++ {
		d := Time(i % 37)
		e.At(d, func() { ran++ })
	}
	e.RunUntilQuiet()
	if ran != 1000 {
		t.Fatalf("ran %d events, want 1000", ran)
	}
	if e.events.len() != 0 {
		t.Fatalf("queue not drained: %d left", e.events.len())
	}
	backing := e.events.a[:cap(e.events.a)]
	for i, ev := range backing {
		if ev.fn != nil {
			t.Fatalf("drained queue retains closure at slot %d of %d", i, len(backing))
		}
	}
}
