package sim

import (
	"sync"
	"sync/atomic"
)

// Conservative parallel discrete-event execution (intra-run parallelism).
//
// A Cluster partitions one simulation into logical processes (LPs): one
// per simulated node plus one for the network fabric. Each LP is a full
// Engine — its own typed 4-ary heap, clock, and Handler dispatch — and
// LPs exchange timestamped events only through Engine.Send, never by
// scheduling into each other's heaps directly.
//
// Synchronization is barrier-window conservative PDES. Every round the
// cluster computes a global horizon
//
//	H = min over non-empty LPs of (peek().at + LP.lookahead)
//
// and each LP executes exactly its events with timestamp < H, in
// parallel, with no rollback. This is safe because an LP's lookahead is
// a lower bound on the delta between its current event and anything it
// can schedule on another LP (for node LPs the fixed cost of the
// outbound link, for the fabric LP the fixed switch cost — both from
// internal/topo), so every cross-LP message generated during the round
// provably lands at time >= H and cannot affect the round itself. The
// LP that attains the minimum has peek().at = H - lookahead < H, so at
// least one event executes per round and the simulation always makes
// progress.
//
// Determinism. The serial engine orders same-time events by a global
// scheduling sequence number; the parallel engine must reproduce that
// order exactly (byte-identical traces) without a shared counter on the
// hot path. The event `seq` word is reused as a structured key:
//
//	setup key        [1, 2^44)           shared counter, pre-Run only
//	resolved key     ord<<20 | act       ord >= 2^24, act in [0, 2^20)
//	provisional key  1<<63 | pos<<20 | act
//
// where `ord` is the global execution ordinal of the event's parent
// (the event that scheduled it), `act` counts the parent's scheduling
// actions (local and cross-LP through one shared counter, so child
// order equals call order equals serial order), and `pos` is the
// parent's index in its LP's current round log. Ordering by
// (time, parent ordinal, action index) is order-isomorphic to the
// serial (time, seq) order: serial seq values are handed out in
// parent-execution order, consecutively per parent.
//
// During a round an LP cannot know the global ordinals of the events it
// executes, so children are keyed provisionally by (pos, act); within
// one LP that compares identically to serial order (pos is execution
// order, the provisional bit ranks fresh children after all previously
// scheduled same-time events, exactly like a larger serial seq). At the
// barrier the per-LP round logs are K-way merged by (time, key) —
// resolving provisional keys on the fly, the parent is always merged
// before its same-round children — and each merged event is assigned
// the next global ordinal. Provisional keys still sitting in heaps and
// outboxes are then rewritten to their resolved form; the rewrite is
// pairwise order-preserving (ordinals are monotone in pos and across
// rounds), so heaps need no re-heapify. Finally outbox messages are
// pushed into their target heaps. Cross-LP FIFO ties are therefore
// broken exactly as the serial engine would have.
//
// When only one LP has pending events the cluster drops into lone mode:
// that LP executes directly on the caller's goroutine, ordinals are
// assigned as events pop (heap order is serial order when nobody else
// has events), children get resolved keys immediately, and deferred
// work runs inline. A cross-LP send ends lone mode after the current
// event: running past the send's arrival time would be unsound, since
// the receiver may react back into this LP. Lone mode keeps quiescent
// phases (one node computing, barrier stragglers) at near-serial speed
// with no logs, merges, or rewrites.
const (
	actBits  = 20
	actMask  = uint64(1)<<actBits - 1
	posMask  = uint64(1)<<43 - 1 // pos field of a provisional key (bits 20..62)
	provBit  = uint64(1) << 63
	firstOrd = uint64(1) << 24
	maxSetup = firstOrd << actBits
)

// logRec records one executed event of the current round: its timestamp
// and the key it was popped with (possibly still provisional).
type logRec struct {
	at  Time
	key uint64
}

// crossMsg is an event addressed to another LP, parked in the sender's
// outbox until the barrier resolves its key and delivers it.
type crossMsg struct {
	to    *Engine
	at    Time
	start Time
	key   uint64
	h     Handler
}

// deferRec is a unit of work postponed to the barrier (see
// Engine.DeferFlush): pos identifies the deferring event so the barrier
// can replay defers in global ordinal order.
type deferRec struct {
	pos int
	at  Time
	h   Handler
}

// Cluster couples the LP engines of one parallel run. Construct with
// NewCluster, wire the simulation against Main() (per-LP engines are
// reached through Engine.LPNode/LPFabric), then call Run.
type Cluster struct {
	all    []*Engine // nodes 0..N-1, fabric at index N
	fabric *Engine

	workers int
	exec    bool // Run is active: keys are provisional/resolved, not setup

	// Lone mode: the single non-empty LP currently executing, and
	// whether its current event has sent cross-LP (which ends the run).
	lone        *Engine
	loneCrossed bool

	setupSeq uint64 // shared pre-Run scheduling counter
	nextOrd  uint64 // next global execution ordinal

	round []*Engine // LPs with events this round
	heads []int     // merge cursors, one per LP

	workerCh []chan Time
	wg       sync.WaitGroup
	widx     int32
}

// NewCluster builds nodes+1 LP engines (one per node plus the fabric)
// executed by up to workers OS threads. nodeLA and fabricLA are the
// lookahead bounds: the minimum virtual-time delta between an event on
// a node (resp. fabric) LP and anything it schedules cross-LP. Callers
// derive them from the topology's fixed link and switch costs; they
// must be positive or conservative synchronization cannot make
// progress.
func NewCluster(nodes, workers int, nodeLA, fabricLA Time) *Cluster {
	if nodes < 1 {
		panic("sim: NewCluster needs at least one node")
	}
	if nodeLA <= 0 || fabricLA <= 0 {
		panic("sim: NewCluster needs positive lookahead")
	}
	if workers < 1 {
		workers = 1
	}
	cl := &Cluster{workers: workers, nextOrd: firstOrd}
	cl.all = make([]*Engine, nodes+1)
	for i := range cl.all {
		e := NewEngine()
		e.cl = cl
		e.lp = i
		e.la = nodeLA
		cl.all[i] = e
	}
	cl.fabric = cl.all[nodes]
	cl.fabric.la = fabricLA
	cl.round = make([]*Engine, 0, nodes+1)
	cl.heads = make([]int, nodes+1)
	return cl
}

// Main returns the LP of node 0, the engine a parallel run is wired
// against: construction code holds it and reaches sibling LPs through
// LPNode/LPFabric (which on a standalone engine return the engine
// itself, so serial construction paths are unchanged).
func (cl *Cluster) Main() *Engine { return cl.all[0] }

// Now returns the cluster's virtual time: the clock of the LP that has
// advanced furthest (the time of the last event executed anywhere).
func (cl *Cluster) Now() Time {
	var t Time
	for _, e := range cl.all {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// Events returns the total number of events executed, corrected by the
// per-LP count adjustments (see Engine.AdjustEventCount) so the total
// matches the serial engine's count event-for-event.
func (cl *Cluster) Events() uint64 {
	var n int64
	for _, e := range cl.all {
		n += int64(e.nEvents) + e.countAdj
	}
	return uint64(n)
}

// Run executes the simulation to quiescence: rounds of barrier-window
// parallel execution, lone mode when a single LP has events, done when
// no LP does. It must be called exactly once, after setup.
func (cl *Cluster) Run() {
	cl.exec = true
	for {
		active := cl.round[:0]
		var h Time
		for _, e := range cl.all {
			if e.events.len() > 0 {
				if hh := e.events.peek().at + e.la; len(active) == 0 || hh < h {
					h = hh
				}
				active = append(active, e)
			}
		}
		cl.round = active
		switch len(active) {
		case 0:
			cl.exec = false
			for _, ch := range cl.workerCh {
				close(ch)
			}
			cl.workerCh = nil
			return
		case 1:
			active[0].runLone()
		default:
			cl.runRound(h)
			cl.barrier()
		}
	}
}

// runRound executes every active LP's events below horizon h, fanning
// the LPs out over the worker pool. Workers are persistent goroutines
// spawned lazily; the calling goroutine participates as one of them.
// LP indices are claimed via an atomic cursor, so the assignment of LPs
// to threads is load-balanced and — because each LP runs
// single-threaded and the barrier is serial — has no effect on the
// simulation's result.
func (cl *Cluster) runRound(h Time) {
	nw := cl.workers
	if nw > len(cl.round) {
		nw = len(cl.round)
	}
	atomic.StoreInt32(&cl.widx, 0)
	for len(cl.workerCh) < nw-1 {
		ch := make(chan Time, 1)
		cl.workerCh = append(cl.workerCh, ch)
		go cl.workerLoop(ch)
	}
	cl.wg.Add(nw - 1)
	for i := 0; i < nw-1; i++ {
		cl.workerCh[i] <- h
	}
	cl.drain(h)
	cl.wg.Wait()
}

func (cl *Cluster) workerLoop(ch chan Time) {
	for h := range ch {
		cl.drain(h)
		cl.wg.Done()
	}
}

// drain claims unexecuted LPs of the current round until none remain.
func (cl *Cluster) drain(h Time) {
	for {
		i := int(atomic.AddInt32(&cl.widx, 1)) - 1
		if i >= len(cl.round) {
			return
		}
		cl.round[i].runWindow(h)
	}
}

// barrier globally orders the round just executed and releases its
// cross-LP effects. It runs single-threaded on the Run goroutine.
func (cl *Cluster) barrier() {
	lps := cl.round
	cur := cl.heads[:len(lps)]

	// 1. Assign global ordinals: K-way merge of the per-LP round logs
	// by (time, key), resolving provisional keys against ordinals
	// already assigned this pass (a parent always merges before its
	// same-round children, so the resolution is available in time).
	for i := range cur {
		cur[i] = 0
	}
	for _, e := range lps {
		if cap(e.ord) < len(e.roundLog) {
			e.ord = make([]uint64, len(e.roundLog))
		} else {
			e.ord = e.ord[:len(e.roundLog)]
		}
	}
	for {
		best := -1
		var bAt Time
		var bKey uint64
		for i, e := range lps {
			c := cur[i]
			if c >= len(e.roundLog) {
				continue
			}
			r := e.roundLog[c]
			k := e.effKey(r.key)
			if best < 0 || r.at < bAt || (r.at == bAt && k < bKey) {
				best, bAt, bKey = i, r.at, k
			}
		}
		if best < 0 {
			break
		}
		lps[best].ord[cur[best]] = cl.nextOrd
		cl.nextOrd++
		cur[best]++
	}

	// 2. Replay deferred work in global ordinal order. Each LP's defer
	// list is already sorted by deferring position (hence by ordinal),
	// so another K-way merge reproduces the serial interleaving of
	// side effects that must not run concurrently (monitor commits).
	for i := range cur {
		cur[i] = 0
	}
	for {
		best := -1
		var bOrd uint64
		for i, e := range lps {
			c := cur[i]
			if c >= len(e.defers) {
				continue
			}
			if o := e.ord[e.defers[c].pos]; best < 0 || o < bOrd {
				best, bOrd = i, o
			}
		}
		if best < 0 {
			break
		}
		d := lps[best].defers[cur[best]]
		lps[best].defers[cur[best]] = deferRec{}
		cur[best]++
		d.h.Run(d.at, d.at)
	}

	// 3. Rewrite provisional keys left in heaps to resolved form and
	// deliver outboxes with resolved keys. The rewrite preserves every
	// pairwise heap order (ordinals are monotone in log position and
	// strictly above all previously issued keys), so the heap array is
	// patched in place without re-heapifying.
	for _, e := range lps {
		for i := range e.events.a {
			if ev := &e.events.a[i]; ev.seq&provBit != 0 {
				ev.seq = e.effKey(ev.seq)
			}
		}
		for i := range e.outbox {
			m := &e.outbox[i]
			m.to.events.push(event{at: m.at, seq: e.effKey(m.key), start: m.start, h: m.h})
			*m = crossMsg{}
		}
		e.outbox = e.outbox[:0]
		e.defers = e.defers[:0]
		e.roundLog = e.roundLog[:0]
	}
}
