package sim

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
)

// Conservative parallel discrete-event execution (intra-run parallelism).
//
// A Cluster partitions one simulation into logical processes (LPs):
// shard LPs, each owning a contiguous block of simulated nodes, plus
// one LP for the network fabric. Each LP is a full Engine — its own
// typed 4-ary heap, clock, and Handler dispatch — and LPs exchange
// timestamped events only through Engine.Send, never by scheduling
// into each other's heaps directly. Sharding (NewCluster's shards
// argument, CLI -lpshards) is what makes big runs cheap: traffic
// between nodes of the same shard never crosses an LP boundary, and
// every per-round cost (horizon computation, barrier merge, key
// rewrite) scales with the number of shards, not the number of nodes.
//
// Synchronization is barrier-window conservative PDES. Every round
// each LP executes its events below a horizon — a proven lower bound
// on anything that can still arrive from another LP — in parallel,
// with no rollback. Lookaheads come from the topology's fixed costs:
// a shard LP cannot affect another LP sooner than nodeLA (the fixed
// cost of an outbound link) after its current event, the fabric LP
// not sooner than fabricLA (the fixed switch cost).
//
// # Batched windows
//
// In the wiring the runner builds, cross-LP traffic is bipartite:
// shard LPs send only to the fabric LP (packets entering the network)
// and the fabric LP sends only to shard LPs (packets leaving it). A
// caller that guarantees this calls MarkBipartite, and the cluster
// then computes one horizon per class from the earliest possible
// *input* each class can still receive — following the two-hop
// lookahead chains through the other class instead of stopping at the
// first hop:
//
//	causeFab  = min(fabPeek, minShardPeek+nodeLA, heldMin)
//	causeNode = min(minShardPeek, fabPeek+fabricLA, heldMin)
//	hShard    = min(causeFab + fabricLA, heldMin)
//	hFabric   = min(causeNode + nodeLA, heldMin)
//
// where heldMin bounds messages already generated but not yet
// deliverable (see below). Each horizon covers every chain of future
// events that could reach the class: a fabric event at fabPeek can
// reach a shard no sooner than fabPeek+fabricLA; a shard event can
// reach another shard no sooner than minShardPeek+nodeLA+fabricLA
// (it must cross the fabric); and symmetrically for the fabric,
// including its self-loop through a reacting shard
// (fabPeek+fabricLA+nodeLA). The result is that an LP executes
// multiple consecutive old-style global windows per barrier — e.g. a
// busy fabric with idle shards batches a full round trip — while the
// LP attaining the global minimum always executes at least one event,
// so progress is guaranteed. Without MarkBipartite the cluster falls
// back to the single global horizon H = min(peek+lookahead), under
// which every barrier commits completely.
//
// # Determinism
//
// The serial engine orders same-time events by a global scheduling
// sequence number; the parallel engine must reproduce that order
// exactly (byte-identical traces) for ANY (workers, shards) choice,
// without a shared counter on the hot path. The event `seq` word is
// reused as a structured key:
//
//	setup key        [1, 2^44)           shared counter, pre-Run only
//	resolved key     ord<<20 | act       ord >= 2^24, act in [0, 2^20)
//	provisional key  1<<63 | pos<<20 | act
//
// where `ord` is the global execution ordinal of the event's parent
// (the event that scheduled it), `act` counts the parent's scheduling
// actions (local and cross-LP through one shared counter, so child
// order equals call order equals serial order), and `pos` is the
// parent's ABSOLUTE position in its LP's execution log. Ordering by
// (time, parent ordinal, action index) is order-isomorphic to the
// serial (time, seq) order. Node-to-LP mapping cannot change any key:
// an intra-shard Send takes the same action index the outbox path
// would have, and position order within an LP is execution order.
//
// Per-class horizons make ordinal assignment subtler than in the
// global-window scheme: LP i may execute an event at t=80 in a round
// whose other class still holds an event at t=60, so ordinals can no
// longer be assigned to everything each barrier. Instead the barrier
// computes a commit floor
//
//	C = min(all post-round heap peeks, all undelivered outbox times)
//
// — no future execution anywhere can happen below C — and K-way
// merges only log entries with time < C by (time, key), resolving
// provisional keys on the fly (a parent always merges no later than
// its children: child time >= parent time, and within an LP the log
// is execution-ordered). Entries at or above C stay logged across
// rounds; outbox messages whose parent is uncommitted are *held* in
// the sender's outbox, and heldMin (the earliest held arrival) is
// folded into both horizons so no LP outruns a message that exists
// but cannot yet be delivered. Provisional keys still sitting in
// heaps, log tails, and outboxes are rewritten to resolved form as
// soon as their parent commits; the rewrite is pairwise
// order-preserving (ordinals are monotone in position), so heaps need
// no re-heapify. Deferred work (monitor commits) replays at the
// barrier in global ordinal order, committed prefix only. When
// nothing is executable but a backlog remains (every horizon capped
// by heldMin), a commit-only barrier pass raises C past the held
// message's parent and delivers it.
//
// # O(active) rounds
//
// The cluster maintains an indexed 4-ary min-heap over the shard LPs'
// cached peek timestamps (the fabric is a scalar alongside). Horizons
// read the heap root; the round's active set is collected by
// descending only into heap subtrees below the horizon. The heap is
// fixed up incrementally — only LPs that executed, received a
// delivery, or ran lone are touched — so a round in which few LPs
// participate costs O(active · log shards), not O(LPs). Round logs,
// ordinal arrays, merge cursors, outboxes, and the active list all
// reuse pooled backing storage: the steady-state barrier path is
// allocation-free.
//
// # Lone mode and failure
//
// When exactly one LP has pending events and no uncommitted backlog
// exists anywhere, the cluster drops into lone mode: that LP executes
// directly on the caller's goroutine, ordinals are assigned as events
// pop, children get resolved keys immediately, and deferred work runs
// inline — no logs, merges, or rewrites, and the worker pool is not
// woken. A cross-LP send ends lone mode after the current event.
// Quiescent phases (one shard computing, barrier stragglers) therefore
// run at near-serial speed regardless of cluster size.
//
// A panic inside an LP's window is caught on the executing worker,
// recorded (first one wins), and re-raised from Run on the caller's
// goroutine with the failing LP identified — the round WaitGroup is
// always released, so a crashing handler surfaces as a panic, not a
// deadlock.
const (
	actBits  = 20
	actMask  = uint64(1)<<actBits - 1
	posMask  = uint64(1)<<43 - 1 // pos field of a provisional key (bits 20..62)
	provBit  = uint64(1) << 63
	firstOrd = uint64(1) << 24
	maxSetup = firstOrd << actBits
)

// horizonInf is the "no constraint" horizon; far above any simulated
// timestamp, with headroom so adding a lookahead cannot overflow.
const horizonInf = Time(1) << 62

// logRec records one executed event: its timestamp and the key it was
// popped with (possibly still provisional).
type logRec struct {
	at  Time
	key uint64
}

// crossMsg is an event addressed to another LP, parked in the sender's
// outbox until a barrier commits its parent, resolves its key, and
// delivers it.
type crossMsg struct {
	to    *Engine
	at    Time
	start Time
	key   uint64
	h     Handler
}

// deferRec is a unit of work postponed to the barrier (see
// Engine.DeferFlush): pos is the absolute log position of the
// deferring event, so the barrier can replay committed defers in
// global ordinal order.
type deferRec struct {
	pos uint64
	at  Time
	h   Handler
}

// Cluster couples the LP engines of one parallel run. Construct with
// NewCluster, wire the simulation against Main() (per-LP engines are
// reached through Engine.LPNode/LPFabric), then call Run.
type Cluster struct {
	all    []*Engine // shard LPs 0..S-1, fabric at index S
	fabric *Engine
	nodeLP []int32 // node id -> shard LP index

	workers   int
	exec      bool // Run is active: keys are provisional/resolved, not setup
	bipartite bool // cross-LP sends only shard<->fabric (MarkBipartite)

	// Lone mode: the single non-empty LP currently executing, and
	// whether its current event has sent cross-LP (which ends the run).
	lone        *Engine
	loneCrossed bool

	setupSeq uint64 // shared pre-Run scheduling counter
	nextOrd  uint64 // next global execution ordinal

	peeks   peekHeap  // min-structure over shard LP peeks (not the fabric)
	logged  []*Engine // LPs with uncommitted log entries
	pending int       // total uncommitted log entries
	heldMin Time      // earliest held (undeliverable) outbox arrival

	round   []*Engine // LPs executing this round
	heads   []int     // merge cursors, one per logged LP
	dheads  []int     // defer-replay cursors
	touched []*Engine // LPs whose heaps changed since their last peek sync

	// Introspection (tests, bench): counters of executed round kinds.
	loneRounds  uint64 // lone-mode runs
	parRounds   uint64 // parallel (window+barrier) rounds
	commitOnly  uint64 // barrier-only passes (backlog flush, nothing ran)
	workerWakes uint64 // worker-pool channel signals sent
	maxBacklog  int    // largest uncommitted-entry backlog after a barrier

	// Progress watchdog: a livelocked round loop (horizons capped by a
	// held message whose parent never commits, e.g. under a buggy
	// lookahead) would otherwise spin commit-only passes forever. The
	// signature (nextOrd, pending, heldMin) changes on every productive
	// round — parallel rounds either commit entries (nextOrd advances)
	// or grow the backlog (pending), lone rounds advance nextOrd, and a
	// useful commit-only pass commits or delivers something — so wdLimit
	// consecutive rounds with an unchanged signature prove a livelock in
	// this deterministic system, and the cluster fails loudly with
	// per-LP diagnostics instead of hanging.
	wdLimit   int // rounds without progress before tripping; <=0 disables
	wdRounds  int
	wdOrd     uint64
	wdPending int
	wdHeld    Time

	stop bool // Stop was called: Run returns at the next round boundary

	workerCh []chan struct{}
	wg       sync.WaitGroup
	widx     int32

	panicMu    sync.Mutex
	panicVal   any
	panicLP    int
	panicStack []byte
}

// NewCluster builds shards+1 LP engines — nodes are block-partitioned
// onto `shards` shard LPs, plus one fabric LP — executed by up to
// `workers` OS threads. nodeLA and fabricLA are the lookahead bounds:
// the minimum virtual-time delta between an event on a shard (resp.
// fabric) LP and anything it schedules cross-LP. Callers derive them
// from the topology's fixed link and switch costs; they must be
// positive or conservative synchronization cannot make progress.
// shards is clamped to [1, nodes]; the event trace is byte-identical
// for every choice.
func NewCluster(nodes, shards, workers int, nodeLA, fabricLA Time) *Cluster {
	if nodes < 1 {
		panic("sim: NewCluster needs at least one node")
	}
	if nodeLA <= 0 || fabricLA <= 0 {
		panic("sim: NewCluster needs positive lookahead")
	}
	if shards < 1 {
		shards = 1
	}
	if shards > nodes {
		shards = nodes
	}
	if workers < 1 {
		workers = 1
	}
	cl := &Cluster{workers: workers, nextOrd: firstOrd, heldMin: horizonInf, wdLimit: defaultWatchdogRounds}
	cl.all = make([]*Engine, shards+1)
	for i := range cl.all {
		e := NewEngine()
		e.cl = cl
		e.lp = i
		e.la = nodeLA
		e.heapIdx = -1
		cl.all[i] = e
	}
	cl.fabric = cl.all[shards]
	cl.fabric.la = fabricLA
	per := (nodes + shards - 1) / shards
	cl.nodeLP = make([]int32, nodes)
	for i := range cl.nodeLP {
		cl.nodeLP[i] = int32(i / per)
	}
	cl.round = make([]*Engine, 0, shards+1)
	cl.heads = make([]int, 0, shards+1)
	cl.dheads = make([]int, 0, shards+1)
	cl.logged = make([]*Engine, 0, shards+1)
	cl.touched = make([]*Engine, 0, shards+1)
	cl.peeks.a = make([]*Engine, 0, shards)
	return cl
}

// defaultWatchdogRounds is the default progress-watchdog threshold.
// The check is O(1) per round and productive rounds always reset it,
// so the value only bounds how long a genuine livelock spins before
// the diagnostic fires; it is far above any legitimate streak.
const defaultWatchdogRounds = 100_000

// SetWatchdog sets the progress-watchdog threshold: the number of
// consecutive rounds without commit-floor/ordinal progress after which
// Run panics with per-LP diagnostics. rounds <= 0 disables the
// watchdog. The default is defaultWatchdogRounds.
func (cl *Cluster) SetWatchdog(rounds int) { cl.wdLimit = rounds }

// Stop makes Run return at the next round boundary (or at the end of
// the current lone run). It must be called from simulation context on
// the Run goroutine — an event handler, a deferred flush, or a barrier
// callback — never from another OS thread. The cluster's state stays
// consistent; the run simply does not finish.
func (cl *Cluster) Stop() { cl.stop = true }

// MarkBipartite asserts that during execution no shard LP ever sends
// to another shard LP: all cross-LP traffic passes through the fabric
// LP. The runner's wiring guarantees this (packets enter the network
// at TransferCross and leave it at RouteCross/fan-out, and NI timers
// are LP-local), and the cluster exploits it to batch multiple safe
// windows per barrier (see the package comment). Send panics if the
// assertion is violated.
func (cl *Cluster) MarkBipartite() { cl.bipartite = true }

// Shards returns the number of shard LPs (excluding the fabric LP).
func (cl *Cluster) Shards() int { return len(cl.all) - 1 }

// Main returns the LP of node 0, the engine a parallel run is wired
// against: construction code holds it and reaches sibling LPs through
// LPNode/LPFabric (which on a standalone engine return the engine
// itself, so serial construction paths are unchanged).
func (cl *Cluster) Main() *Engine { return cl.all[0] }

// Now returns the cluster's virtual time: the clock of the LP that has
// advanced furthest (the time of the last event executed anywhere).
func (cl *Cluster) Now() Time {
	var t Time
	for _, e := range cl.all {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// Events returns the total number of events executed, corrected by the
// per-LP count adjustments (see Engine.AdjustEventCount) so the total
// matches the serial engine's count event-for-event.
func (cl *Cluster) Events() uint64 {
	var n int64
	for _, e := range cl.all {
		n += int64(e.nEvents) + e.countAdj
	}
	return uint64(n)
}

// horizons returns the execution horizons for this round: hShard for
// every shard LP and hFab for the fabric LP. See the package comment
// for the derivation.
func (cl *Cluster) horizons() (hShard, hFab Time) {
	minShard, fabPeek := horizonInf, horizonInf
	if m := cl.peeks.min(); m != nil {
		minShard = m.peekKey
	}
	if cl.fabric.events.len() > 0 {
		fabPeek = cl.fabric.events.peek().at
	}
	nodeLA, fabLA := cl.all[0].la, cl.fabric.la
	if !cl.bipartite {
		// Single global horizon: every LP's first hop bounds everyone.
		h := horizonInf
		if minShard < horizonInf {
			h = minShard + nodeLA
		}
		if fabPeek < horizonInf && fabPeek+fabLA < h {
			h = fabPeek + fabLA
		}
		if cl.heldMin < h {
			h = cl.heldMin
		}
		return h, h
	}
	causeFab := fabPeek // earliest future fabric-LP execution
	if minShard < horizonInf && minShard+nodeLA < causeFab {
		causeFab = minShard + nodeLA
	}
	causeNode := minShard // earliest future shard-LP execution
	if fabPeek < horizonInf && fabPeek+fabLA < causeNode {
		causeNode = fabPeek + fabLA
	}
	if cl.heldMin < causeFab {
		causeFab = cl.heldMin
	}
	if cl.heldMin < causeNode {
		causeNode = cl.heldMin
	}
	hShard, hFab = horizonInf, horizonInf
	if causeFab < horizonInf {
		hShard = causeFab + fabLA
	}
	if causeNode < horizonInf {
		hFab = causeNode + nodeLA
	}
	if cl.heldMin < hShard {
		hShard = cl.heldMin
	}
	if cl.heldMin < hFab {
		hFab = cl.heldMin
	}
	return hShard, hFab
}

// Run executes the simulation to quiescence: rounds of barrier-window
// parallel execution, lone mode when a single LP has events and no
// backlog is pending, done when neither events nor backlog remain. It
// must be called exactly once, after setup.
func (cl *Cluster) Run() {
	cl.exec = true
	for _, e := range cl.all[:len(cl.all)-1] {
		cl.syncPeek(e)
	}
	for {
		if cl.stop {
			cl.shutdown()
			return
		}
		cl.watchdogCheck()
		fabNonEmpty := cl.fabric.events.len() > 0
		nonEmpty := len(cl.peeks.a)
		if fabNonEmpty {
			nonEmpty++
		}
		if nonEmpty == 0 && cl.pending == 0 {
			cl.shutdown()
			return
		}
		if nonEmpty == 1 && cl.pending == 0 {
			// Lone fast path: sound only when every other LP is
			// completely empty (runLone has no horizon) and no
			// uncommitted backlog exists, since it assigns ordinals
			// immediately as events pop.
			cl.loneRounds++
			e := cl.fabric
			if !fabNonEmpty {
				e = cl.peeks.a[0]
			}
			e.runLone()
			cl.syncPeek(e)
			cl.syncTouched()
			continue
		}
		hShard, hFab := cl.horizons()
		active := cl.round[:0]
		if m := cl.peeks.min(); m != nil && m.peekKey < hShard {
			active = cl.peeks.collect(0, hShard, active)
		}
		fabActive := fabNonEmpty && cl.fabric.events.peek().at < hFab
		if fabActive {
			active = append(active, cl.fabric)
		}
		cl.round = active
		// len(active) may be 0 here: a commit-only pass that raises
		// the commit floor and releases held messages.
		for _, e := range active {
			e.winH = hShard
		}
		if fabActive {
			cl.fabric.winH = hFab
		}
		if len(active) > 0 {
			cl.parRounds++
			cl.runRound()
		} else {
			cl.commitOnly++
		}
		cl.barrier()
	}
}

// watchdogCheck advances the progress watchdog by one round and trips
// it when the signature has not moved for wdLimit consecutive rounds.
func (cl *Cluster) watchdogCheck() {
	if cl.wdLimit <= 0 {
		return
	}
	if cl.nextOrd != cl.wdOrd || cl.pending != cl.wdPending || cl.heldMin != cl.wdHeld {
		cl.wdOrd, cl.wdPending, cl.wdHeld = cl.nextOrd, cl.pending, cl.heldMin
		cl.wdRounds = 0
		return
	}
	cl.wdRounds++
	if cl.wdRounds >= cl.wdLimit {
		cl.watchdogTrip()
	}
}

// watchdogTrip shuts the worker pool down and panics with a per-LP
// dump: clocks, heap peeks, uncommitted log shapes, and held outbox
// messages — everything needed to see which LP (and which held parent)
// is pinning the horizon.
func (cl *Cluster) watchdogTrip() {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: watchdog: no progress in %d rounds (nextOrd=%d pending=%d heldMin=%d)\n",
		cl.wdRounds, cl.nextOrd, cl.pending, cl.heldMin)
	hShard, hFab := cl.horizons()
	fmt.Fprintf(&b, "  horizons: shard=%d fabric=%d\n", hShard, hFab)
	for i, e := range cl.all {
		name := fmt.Sprintf("shard LP %d", i)
		if e == cl.fabric {
			name = "fabric LP"
		}
		fmt.Fprintf(&b, "  %s: now=%d executed=%d heap=%d", name, e.now, e.nEvents, e.events.len())
		if e.events.len() > 0 {
			p := e.events.peek()
			fmt.Fprintf(&b, " peek(at=%d key=%#x)", p.at, p.seq)
		}
		fmt.Fprintf(&b, " logged=%d logStart=%d held=%d", len(e.roundLog), e.logStart, len(e.outbox))
		if len(e.outbox) > 0 {
			earliest := 0
			for j := 1; j < len(e.outbox); j++ {
				if e.outbox[j].at < e.outbox[earliest].at {
					earliest = j
				}
			}
			m := &e.outbox[earliest]
			fmt.Fprintf(&b, " heldEarliest(at=%d key=%#x)", m.at, m.key)
		}
		b.WriteByte('\n')
	}
	cl.shutdown()
	panic(b.String())
}

// shutdown releases the worker pool.
func (cl *Cluster) shutdown() {
	cl.exec = false
	for _, ch := range cl.workerCh {
		close(ch)
	}
	cl.workerCh = nil
}

// runRound executes every active LP's events below its window horizon,
// fanning the LPs out over the worker pool. Workers are persistent
// goroutines spawned lazily; the calling goroutine participates as one
// of them, and single-LP rounds wake no workers at all. LP indices are
// claimed via an atomic cursor, so the assignment of LPs to threads is
// load-balanced and — because each LP runs single-threaded and the
// barrier is serial — has no effect on the simulation's result.
func (cl *Cluster) runRound() {
	nw := cl.workers
	if nw > len(cl.round) {
		nw = len(cl.round)
	}
	atomic.StoreInt32(&cl.widx, 0)
	for len(cl.workerCh) < nw-1 {
		ch := make(chan struct{}, 1)
		cl.workerCh = append(cl.workerCh, ch)
		go cl.workerLoop(ch)
	}
	cl.wg.Add(nw - 1)
	for i := 0; i < nw-1; i++ {
		cl.workerWakes++
		cl.workerCh[i] <- struct{}{}
	}
	cl.drain()
	cl.wg.Wait()
	if cl.panicVal != nil {
		// Surface a worker's panic from Run with the LP identified;
		// the pool is shut down first so the goroutines don't leak.
		name := fmt.Sprintf("shard LP %d", cl.panicLP)
		if cl.panicLP == len(cl.all)-1 {
			name = "fabric LP"
		}
		cl.shutdown()
		panic(fmt.Sprintf("sim: %s panicked during a parallel round: %v\n%s", name, cl.panicVal, cl.panicStack))
	}
}

func (cl *Cluster) workerLoop(ch chan struct{}) {
	for range ch {
		cl.drain()
		cl.wg.Done()
	}
}

// drain claims unexecuted LPs of the current round until none remain.
func (cl *Cluster) drain() {
	for {
		i := int(atomic.AddInt32(&cl.widx, 1)) - 1
		if i >= len(cl.round) {
			return
		}
		cl.runLP(cl.round[i])
	}
}

// runLP runs one LP's window, converting a handler panic into a
// recorded failure (first one wins) so the round barrier is never
// deadlocked by a missing wg.Done.
func (cl *Cluster) runLP(e *Engine) {
	defer func() {
		if r := recover(); r != nil {
			cl.panicMu.Lock()
			if cl.panicVal == nil {
				cl.panicVal, cl.panicLP, cl.panicStack = r, e.lp, debug.Stack()
			}
			cl.panicMu.Unlock()
		}
	}()
	e.runWindow(e.winH)
}

// markTouched queues e for a peek-heap sync at the end of the current
// barrier (or lone run). Single-threaded: called only from barrier
// delivery and lone-mode sends.
func (cl *Cluster) markTouched(e *Engine) {
	if !e.touched {
		e.touched = true
		cl.touched = append(cl.touched, e)
	}
}

func (cl *Cluster) syncTouched() {
	for i, e := range cl.touched {
		e.touched = false
		cl.syncPeek(e)
		cl.touched[i] = nil
	}
	cl.touched = cl.touched[:0]
}

// barrier globally orders the committable prefix of the execution so
// far and releases its cross-LP effects. It runs single-threaded on
// the Run goroutine.
func (cl *Cluster) barrier() {
	// Round participants join the logged set and get their peek-heap
	// entries refreshed (they popped and pushed events).
	for _, e := range cl.round {
		if !e.inLogged && len(e.roundLog) > 0 {
			e.inLogged = true
			cl.logged = append(cl.logged, e)
		}
		cl.syncPeek(e)
	}
	lps := cl.logged
	if len(lps) == 0 {
		return
	}

	// 1. Commit floor C: nothing can ever execute below min(all heap
	// peeks, all undelivered outbox arrivals), so log entries under C
	// are in their final global order.
	C := horizonInf
	if m := cl.peeks.min(); m != nil {
		C = m.peekKey
	}
	if cl.fabric.events.len() > 0 && cl.fabric.events.peek().at < C {
		C = cl.fabric.events.peek().at
	}
	for _, e := range lps {
		for i := range e.outbox {
			if e.outbox[i].at < C {
				C = e.outbox[i].at
			}
		}
	}

	// 2. Assign global ordinals: K-way merge of the logs' sub-C
	// prefixes by (time, key), resolving provisional keys against
	// ordinals already assigned this pass (a parent always merges
	// before its children needing it; parents committed at earlier
	// barriers already rewrote their children's keys in step 4).
	cur := cl.heads[:0]
	for _, e := range lps {
		cur = append(cur, 0)
		if cap(e.ord) < len(e.roundLog) {
			e.ord = make([]uint64, len(e.roundLog))
		} else {
			e.ord = e.ord[:len(e.roundLog)]
		}
	}
	cl.heads = cur[:0]
	for {
		best := -1
		var bAt Time
		var bKey uint64
		for i, e := range lps {
			c := cur[i]
			if c >= len(e.roundLog) {
				continue
			}
			r := e.roundLog[c]
			if r.at >= C {
				continue
			}
			k := e.effKey(r.key)
			if best < 0 || r.at < bAt || (r.at == bAt && k < bKey) {
				best, bAt, bKey = i, r.at, k
			}
		}
		if best < 0 {
			break
		}
		lps[best].ord[cur[best]] = cl.nextOrd
		cl.nextOrd++
		cur[best]++
	}

	// 3. Replay committed deferred work in global ordinal order. Each
	// LP's defer list is sorted by absolute position (hence by
	// ordinal), so another K-way merge reproduces the serial
	// interleaving of side effects that must not run concurrently
	// (monitor commits). Defers of uncommitted events stay queued.
	dcur := cl.dheads[:0]
	for range lps {
		dcur = append(dcur, 0)
	}
	cl.dheads = dcur[:0]
	for {
		best := -1
		var bOrd uint64
		for i, e := range lps {
			c := dcur[i]
			if c >= len(e.defers) {
				continue
			}
			p := e.defers[c].pos
			if p >= e.logStart+uint64(cur[i]) {
				continue
			}
			if o := e.ord[p-e.logStart]; best < 0 || o < bOrd {
				best, bOrd = i, o
			}
		}
		if best < 0 {
			break
		}
		d := lps[best].defers[dcur[best]]
		dcur[best]++
		d.h.Run(d.at, d.at)
	}

	// 4. Rewrite provisional keys whose parent just committed — in
	// heaps, in uncommitted log tails (so later merges can order
	// them), and in outboxes, delivering every message that now has a
	// resolved key. The rewrite preserves every pairwise heap order
	// (ordinals are monotone in log position and above all previously
	// issued keys), so heap arrays are patched in place without
	// re-heapifying. Messages whose parent is still uncommitted are
	// held; the earliest held arrival caps the next horizons.
	cl.heldMin = horizonInf
	for li, e := range lps {
		lim := e.logStart + uint64(cur[li])
		for i := range e.events.a {
			if ev := &e.events.a[i]; ev.seq&provBit != 0 && ev.seq>>actBits&posMask < lim {
				ev.seq = e.effKey(ev.seq)
			}
		}
		for i := cur[li]; i < len(e.roundLog); i++ {
			if k := e.roundLog[i].key; k&provBit != 0 && k>>actBits&posMask < lim {
				e.roundLog[i].key = e.effKey(k)
			}
		}
		keep := 0
		for i := range e.outbox {
			m := &e.outbox[i]
			if m.key&provBit != 0 && m.key>>actBits&posMask >= lim {
				if m.at < cl.heldMin {
					cl.heldMin = m.at
				}
				e.outbox[keep] = *m
				keep++
				continue
			}
			m.to.events.push(event{at: m.at, seq: e.effKey(m.key), start: m.start, h: m.h})
			cl.markTouched(m.to)
		}
		for i := keep; i < len(e.outbox); i++ {
			e.outbox[i] = crossMsg{}
		}
		e.outbox = e.outbox[:keep]

		// 5. Compact the committed prefixes, keeping backing storage.
		if c := cur[li]; c > 0 {
			n := copy(e.roundLog, e.roundLog[c:])
			e.roundLog = e.roundLog[:n]
			e.logStart += uint64(c)
		}
		if c := dcur[li]; c > 0 {
			n := copy(e.defers, e.defers[c:])
			for i := n; i < len(e.defers); i++ {
				e.defers[i] = deferRec{}
			}
			e.defers = e.defers[:n]
		}
	}

	// 6. Drop fully committed LPs from the logged set and refresh the
	// peek heap for every LP that received a delivery.
	kept, pending := 0, 0
	for _, e := range lps {
		if len(e.roundLog) > 0 {
			lps[kept] = e
			kept++
			pending += len(e.roundLog)
		} else {
			e.inLogged = false
		}
	}
	for i := kept; i < len(lps); i++ {
		lps[i] = nil
	}
	cl.logged = lps[:kept]
	cl.pending = pending
	if pending > cl.maxBacklog {
		cl.maxBacklog = pending
	}
	cl.syncTouched()
}

// ClusterStats describes the execution shape of a finished (or
// running) cluster, for benchmarks and tests.
type ClusterStats struct {
	LoneRounds  uint64 // lone-mode fast-path runs
	ParRounds   uint64 // parallel window+barrier rounds
	CommitOnly  uint64 // barrier-only passes that flushed backlog
	WorkerWakes uint64 // worker-pool wakeup signals sent
	MaxBacklog  int    // peak uncommitted log entries across barriers
}

// Stats returns execution-shape counters: how often the cluster used
// each synchronization path and how deep the deferred-commit backlog
// got. Purely informational; reading it does not perturb the run.
func (cl *Cluster) Stats() ClusterStats {
	return ClusterStats{
		LoneRounds:  cl.loneRounds,
		ParRounds:   cl.parRounds,
		CommitOnly:  cl.commitOnly,
		WorkerWakes: cl.workerWakes,
		MaxBacklog:  cl.maxBacklog,
	}
}

// --- incremental min-structure over shard LP peeks -------------------

// peekHeap is an indexed 4-ary min-heap over shard LPs keyed by their
// cached peek timestamp (Engine.peekKey). The cache is refreshed only
// through Cluster.syncPeek, so the heap invariant always holds with
// respect to the cached keys even while several LPs' real heaps have
// changed; the cluster syncs every LP it touched before reading the
// heap again. The fabric LP is deliberately not tracked here — it is
// a single scalar peek in horizons().
type peekHeap struct {
	a []*Engine
}

func (h *peekHeap) min() *Engine {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

// syncPeek reconciles e's membership and cached key with the real
// state of its event heap. The fabric LP is ignored.
func (cl *Cluster) syncPeek(e *Engine) {
	if e == cl.fabric {
		return
	}
	h := &cl.peeks
	if e.events.len() == 0 {
		if e.heapIdx >= 0 {
			h.remove(int(e.heapIdx))
		}
		return
	}
	e.peekKey = e.events.peek().at
	if e.heapIdx < 0 {
		h.push(e)
	} else {
		h.fix(int(e.heapIdx))
	}
}

func (h *peekHeap) swap(i, j int) {
	h.a[i], h.a[j] = h.a[j], h.a[i]
	h.a[i].heapIdx = int32(i)
	h.a[j].heapIdx = int32(j)
}

func (h *peekHeap) up(i int) int {
	for i > 0 {
		p := (i - 1) / 4
		if h.a[i].peekKey >= h.a[p].peekKey {
			break
		}
		h.swap(i, p)
		i = p
	}
	return i
}

func (h *peekHeap) down(i int) {
	n := len(h.a)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if h.a[j].peekKey < h.a[m].peekKey {
				m = j
			}
		}
		if h.a[m].peekKey >= h.a[i].peekKey {
			return
		}
		h.swap(i, m)
		i = m
	}
}

func (h *peekHeap) fix(i int) {
	if h.up(i) == i {
		h.down(i)
	}
}

func (h *peekHeap) push(e *Engine) {
	e.heapIdx = int32(len(h.a))
	h.a = append(h.a, e)
	h.up(len(h.a) - 1)
}

func (h *peekHeap) remove(i int) {
	n := len(h.a) - 1
	h.a[i].heapIdx = -1
	if i != n {
		h.a[i] = h.a[n]
		h.a[i].heapIdx = int32(i)
	}
	h.a[n] = nil
	h.a = h.a[:n]
	if i < n {
		h.fix(i)
	}
}

// collect appends every LP in the subtree rooted at i whose cached
// peek is below bound — O(result) plus the pruned frontier, not
// O(LPs).
func (h *peekHeap) collect(i int, bound Time, out []*Engine) []*Engine {
	if i >= len(h.a) || h.a[i].peekKey >= bound {
		return out
	}
	out = append(out, h.a[i])
	for c := 4*i + 1; c <= 4*i+4 && c < len(h.a); c++ {
		out = h.collect(c, bound, out)
	}
	return out
}
