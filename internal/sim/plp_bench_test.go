package sim

// Micro-benchmark for the conservative-parallel cluster's cross-LP
// handoff: the cost of one Send into a sibling logical process plus the
// provisional-key dispatch and barrier round that deliver it. This is
// the per-hop overhead a packet pays each time it crosses an LP
// boundary (node -> fabric -> node), so it bounds how fine-grained the
// lookahead windows can get before synchronization dominates.
// `make bench-smoke` runs it once; compare with
// `go test -bench CrossLP -benchmem ./internal/sim`.

import "testing"

// crossHop bounces a single event between two node LPs until left
// reaches zero. Every dispatch performs exactly one cross-LP Send, so
// one benchmark iteration is one handoff.
type crossHop struct {
	cur, next *Engine
	la        Time
	left      int
}

func (h *crossHop) Run(_, now Time) {
	if h.left == 0 {
		return
	}
	h.left--
	h.cur.Send(h.next, now+h.la, now, h)
	h.cur, h.next = h.next, h.cur
}

func BenchmarkCrossLPHandoff(b *testing.B) {
	la := Time(1500)
	cl := NewCluster(2, 2, la, Time(500))
	lp0 := cl.Main()
	h := &crossHop{cur: lp0, next: lp0.LPNode(1), la: la, left: b.N}
	lp0.AtHandler(0, 0, h)
	b.ResetTimer()
	cl.Run()
}
