package sim

// Micro-benchmark for the conservative-parallel cluster's cross-LP
// handoff: the cost of one Send into a sibling logical process plus the
// provisional-key dispatch and barrier round that deliver it. This is
// the per-hop overhead a packet pays each time it crosses an LP
// boundary (node -> fabric -> node), so it bounds how fine-grained the
// lookahead windows can get before synchronization dominates.
// `make bench-smoke` runs it once; compare with
// `go test -bench CrossLP -benchmem ./internal/sim`.

import (
	"runtime"
	"testing"
)

// crossHop bounces a single event between two node LPs until left
// reaches zero. Every dispatch performs exactly one cross-LP Send, so
// one benchmark iteration is one handoff.
type crossHop struct {
	cur, next *Engine
	la        Time
	left      int
}

func (h *crossHop) Run(_, now Time) {
	if h.left == 0 {
		return
	}
	h.left--
	h.cur.Send(h.next, now+h.la, now, h)
	h.cur, h.next = h.next, h.cur
}

func BenchmarkCrossLPHandoff(b *testing.B) {
	la := Time(1500)
	cl := NewCluster(2, 2, 2, la, Time(500))
	lp0 := cl.Main()
	h := &crossHop{cur: lp0, next: lp0.LPNode(1), la: la, left: b.N}
	lp0.AtHandler(0, 0, h)
	b.ReportAllocs()
	b.ResetTimer()
	cl.Run()
}

// TestSteadyStateRoundAllocs pins down the pooled round logs and merge
// scratch: once the per-LP buffers have grown to their working size,
// a barrier round must not allocate. Two cluster runs differing only in
// round count are measured; the warm-up allocations cancel in the
// difference, so the per-round residue must be ~zero.
func TestSteadyStateRoundAllocs(t *testing.T) {
	measure := func(iters int) (mallocs uint64, rounds uint64) {
		// workers=1 keeps everything on the calling goroutine so the
		// runtime's goroutine machinery cannot pollute the counters.
		cl := NewCluster(2, 2, 1, 10, 10)
		main := cl.Main()
		main.AtHandler(0, 0, &tick{e: main, step: 10, left: iters})
		lp1 := main.LPNode(1)
		lp1.AtHandler(0, 0, &tick{e: lp1, step: 10, left: iters})
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		cl.Run()
		runtime.ReadMemStats(&m1)
		st := cl.Stats()
		return m1.Mallocs - m0.Mallocs, st.ParRounds + st.LoneRounds
	}
	a1, r1 := measure(2000)
	a2, r2 := measure(6000)
	if r2 <= r1 {
		t.Fatalf("round counts did not scale: %d vs %d", r1, r2)
	}
	perRound := float64(a2) - float64(a1)
	perRound /= float64(r2 - r1)
	// Allow a little slack for runtime-internal allocations (GC
	// metadata etc.); the pre-pooling engine allocated several objects
	// per round, so 0.1 cleanly separates pass from regression.
	if perRound > 0.1 {
		t.Errorf("steady-state barrier rounds allocate: %.3f allocs/round (runs: %d allocs / %d rounds, %d allocs / %d rounds)",
			perRound, a1, r1, a2, r2)
	}
}
