// Package network models a Myrinet-like system-area network: full-duplex
// point-to-point links connecting each host's network interface to a
// crossbar switch. Links and the switch are FIFO resources, so per
// source-destination pair delivery order is preserved — the only ordering
// guarantee VMMC (and the GeNIMA protocols) require.
package network

import (
	"genima/internal/faults"
	"genima/internal/sim"
	"genima/internal/topo"
)

// Link is a unidirectional wire with a fixed per-packet propagation delay
// and a per-byte serialization time (160 MB/s in the paper's Myrinet).
type Link struct {
	res     *sim.Resource
	fixed   sim.Time
	perByte float64
}

// NewLink creates a link with the given fixed latency and ns/byte rate.
func NewLink(eng *sim.Engine, name string, fixed sim.Time, perByte float64) *Link {
	return &Link{res: sim.NewResource(eng, name), fixed: fixed, perByte: perByte}
}

// ServiceTime returns the uncontended time to carry n bytes.
func (l *Link) ServiceTime(n int) sim.Time {
	return l.fixed + sim.Time(float64(n)*l.perByte)
}

// Transfer enqueues an n-byte packet; fn runs when the last byte is on
// the far side.
func (l *Link) Transfer(n int, fn func(start, end sim.Time)) {
	l.res.Enqueue(l.ServiceTime(n), fn)
}

// TransferHandler is Transfer on the typed event path: h.Run fires when
// the last byte is on the far side, with no closure allocation.
func (l *Link) TransferHandler(n int, h sim.Handler) {
	l.res.EnqueueHandler(l.ServiceTime(n), h)
}

// TransferCross is TransferHandler for a completion that runs on a
// different logical process (the far side of the link): the reservation
// is made by `from` (which must own this link), the completion is
// delivered to `to`. Serial runs (from == to) are byte-identical to
// TransferHandler.
func (l *Link) TransferCross(n int, from, to *sim.Engine, h sim.Handler) {
	l.res.EnqueueHandlerCross(from, to, l.ServiceTime(n), h)
}

// Stats exposes the underlying resource for utilization reporting.
func (l *Link) Stats() *sim.Resource { return l.res }

// Switch is a crossbar that routes packets between links with a fixed
// per-packet routing delay. The paper's testbed is a single 8-way switch;
// we model its arbitration as one FIFO resource, which slightly
// pessimizes concurrent disjoint routes but preserves ordering.
type Switch struct {
	res   *sim.Resource
	fixed sim.Time
}

// NewSwitch creates the crossbar.
func NewSwitch(eng *sim.Engine, fixed sim.Time) *Switch {
	return &Switch{res: sim.NewResource(eng, "switch"), fixed: fixed}
}

// Route enqueues a routing decision; fn runs when the head flit exits.
func (s *Switch) Route(fn func(start, end sim.Time)) {
	s.res.Enqueue(s.fixed, fn)
}

// RouteHandler is Route on the typed event path.
func (s *Switch) RouteHandler(h sim.Handler) {
	s.res.EnqueueHandler(s.fixed, h)
}

// RouteCross is RouteHandler with the completion delivered to another
// logical process (the destination host's LP); from must be the
// fabric LP that owns the switch. Serial runs (from == to) are
// byte-identical to RouteHandler.
func (s *Switch) RouteCross(from, to *sim.Engine, h sim.Handler) {
	s.res.EnqueueHandlerCross(from, to, s.fixed, h)
}

// Reserve claims the switch's next FIFO routing slot without scheduling
// a completion and returns its (start, end). The parallel broadcast
// path uses it to compute the single routing occupancy it then fans out
// to every destination LP itself.
func (s *Switch) Reserve() (start, end sim.Time) {
	return s.res.Reserve(s.fixed)
}

// ServiceTime returns the uncontended routing delay.
func (s *Switch) ServiceTime() sim.Time { return s.fixed }

// Stats exposes the underlying resource.
func (s *Switch) Stats() *sim.Resource { return s.res }

// Fabric wires N hosts to one switch with an in- and out-link each.
type Fabric struct {
	Switch *Switch
	Out    []*Link // host -> switch
	In     []*Link // switch -> host

	// Faults is the compiled fault plan, nil when fault injection is
	// disabled (the common case; nil keeps the fault-free path free of
	// any per-packet overhead). The NI pipeline consults it at the two
	// link-crossing boundaries.
	Faults *faults.Plan
}

// NewFabric builds the fabric for cfg.Nodes hosts. Resources are placed
// on their owning logical process — the switch on the fabric LP, node
// i's links on node i's LP (LinkFixed is the node LPs' lookahead: every
// event a node schedules on the fabric is an out-link completion at
// least LinkFixed away; SwitchFixed is the fabric LP's, by the mirror
// argument). On a standalone engine LPNode/LPFabric return the engine
// itself and nothing changes.
func NewFabric(eng *sim.Engine, cfg *topo.Config) *Fabric {
	f := &Fabric{
		Switch: NewSwitch(eng.LPFabric(), cfg.Costs.SwitchFixed),
		Out:    make([]*Link, cfg.Nodes),
		In:     make([]*Link, cfg.Nodes),
	}
	if cfg.Faults.Enabled {
		f.Faults = faults.New(&cfg.Faults, cfg.Nodes)
	}
	for i := 0; i < cfg.Nodes; i++ {
		f.Out[i] = NewLink(eng.LPNode(i), "link-out", cfg.Costs.LinkFixed, cfg.Costs.LinkPerByte)
		f.In[i] = NewLink(eng.LPNode(i), "link-in", cfg.Costs.LinkFixed, cfg.Costs.LinkPerByte)
	}
	return f
}

// UncontendedNet returns the no-queueing network time for n bytes from
// any host to any other: out-link + switch + in-link.
func (f *Fabric) UncontendedNet(n int) sim.Time {
	return f.Out[0].ServiceTime(n) + f.Switch.ServiceTime() + f.In[0].ServiceTime(n)
}

// Send moves an n-byte packet from src to dst through the three fabric
// stages; fn runs when the last byte reaches dst's NI, with inject being
// the time the packet finished entering the network (end of the out-link
// stage, the paper's "LANai insertion" boundary).
func (f *Fabric) Send(src, dst, n int, fn func(inject, arrive sim.Time)) {
	f.Out[src].Transfer(n, func(_, outEnd sim.Time) {
		f.Switch.Route(func(_, _ sim.Time) {
			f.In[dst].Transfer(n, func(_, inEnd sim.Time) {
				fn(outEnd, inEnd)
			})
		})
	})
}

// Broadcast moves one n-byte packet from src through the out-link and
// switch once, then replicates it onto every destination's in-link (the
// NI-broadcast extension of the paper's §5). fn runs once per
// destination.
func (f *Fabric) Broadcast(src int, dsts []int, n int, fn func(dst int, inject, arrive sim.Time)) {
	f.Out[src].Transfer(n, func(_, outEnd sim.Time) {
		f.Switch.Route(func(_, _ sim.Time) {
			for _, dst := range dsts {
				f.In[dst].Transfer(n, func(_, inEnd sim.Time) {
					fn(dst, outEnd, inEnd)
				})
			}
		})
	})
}
