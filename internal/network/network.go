// Package network models a Myrinet-like system-area network: full-duplex
// point-to-point links connecting each host's network interface to a
// crossbar switch. Links and the switch are FIFO resources, so per
// source-destination pair delivery order is preserved — the only ordering
// guarantee VMMC (and the GeNIMA protocols) require.
package network

import (
	"fmt"

	"genima/internal/faults"
	"genima/internal/sim"
	"genima/internal/topo"
)

// Link is a unidirectional wire with a fixed per-packet propagation delay
// and a per-byte serialization time (160 MB/s in the paper's Myrinet).
type Link struct {
	res     *sim.Resource
	fixed   sim.Time
	perByte float64
}

// NewLink creates a link with the given fixed latency and ns/byte rate.
func NewLink(eng *sim.Engine, name string, fixed sim.Time, perByte float64) *Link {
	return &Link{res: sim.NewResource(eng, name), fixed: fixed, perByte: perByte}
}

// ServiceTime returns the uncontended time to carry n bytes.
func (l *Link) ServiceTime(n int) sim.Time {
	return l.fixed + sim.Time(float64(n)*l.perByte)
}

// Transfer enqueues an n-byte packet; fn runs when the last byte is on
// the far side.
func (l *Link) Transfer(n int, fn func(start, end sim.Time)) {
	l.res.Enqueue(l.ServiceTime(n), fn)
}

// TransferHandler is Transfer on the typed event path: h.Run fires when
// the last byte is on the far side, with no closure allocation.
func (l *Link) TransferHandler(n int, h sim.Handler) {
	l.res.EnqueueHandler(l.ServiceTime(n), h)
}

// TransferCross is TransferHandler for a completion that runs on a
// different logical process (the far side of the link): the reservation
// is made by `from` (which must own this link), the completion is
// delivered to `to`. Serial runs (from == to) are byte-identical to
// TransferHandler.
func (l *Link) TransferCross(n int, from, to *sim.Engine, h sim.Handler) {
	l.res.EnqueueHandlerCross(from, to, l.ServiceTime(n), h)
}

// Stats exposes the underlying resource for utilization reporting.
func (l *Link) Stats() *sim.Resource { return l.res }

// Switch is a crossbar that routes packets between links with a fixed
// per-packet routing delay. The paper's testbed is a single 8-way switch;
// we model its arbitration as one FIFO resource, which slightly
// pessimizes concurrent disjoint routes but preserves ordering.
type Switch struct {
	res   *sim.Resource
	fixed sim.Time
}

// NewSwitch creates the crossbar.
func NewSwitch(eng *sim.Engine, fixed sim.Time) *Switch {
	return &Switch{res: sim.NewResource(eng, "switch"), fixed: fixed}
}

// NewSwitchNamed creates one switch of a multi-stage fabric.
func NewSwitchNamed(eng *sim.Engine, name string, fixed sim.Time) *Switch {
	return &Switch{res: sim.NewResource(eng, name), fixed: fixed}
}

// Route enqueues a routing decision; fn runs when the head flit exits.
func (s *Switch) Route(fn func(start, end sim.Time)) {
	s.res.Enqueue(s.fixed, fn)
}

// RouteHandler is Route on the typed event path.
func (s *Switch) RouteHandler(h sim.Handler) {
	s.res.EnqueueHandler(s.fixed, h)
}

// RouteCross is RouteHandler with the completion delivered to another
// logical process (the destination host's LP); from must be the
// fabric LP that owns the switch. Serial runs (from == to) are
// byte-identical to RouteHandler.
func (s *Switch) RouteCross(from, to *sim.Engine, h sim.Handler) {
	s.res.EnqueueHandlerCross(from, to, s.fixed, h)
}

// Reserve claims the switch's next FIFO routing slot without scheduling
// a completion and returns its (start, end). The parallel broadcast
// path uses it to compute the single routing occupancy it then fans out
// to every destination LP itself.
func (s *Switch) Reserve() (start, end sim.Time) {
	return s.res.Reserve(s.fixed)
}

// ServiceTime returns the uncontended routing delay.
func (s *Switch) ServiceTime() sim.Time { return s.fixed }

// Stats exposes the underlying resource.
func (s *Switch) Stats() *sim.Resource { return s.res }

// Fabric wires N hosts to a switched fabric with an in- and out-link
// each. The fabric is one switch (the paper's 8-way crossbar) or a
// multi-stage topology (clos2/fattree) whose deterministic routes were
// compiled into Desc at Config build time.
type Fabric struct {
	// Switch is the single crossbar, kept as an alias of Switches[0]
	// for the one-switch call sites and utilization reporting.
	Switch *Switch
	// Switches holds every switch of the fabric, indexed by the ids
	// Desc's routes use. All of them live on the fabric LP.
	Switches []*Switch
	// Desc is the compiled topology: switch inventory + routing table.
	Desc *topo.FabricDesc
	Out  []*Link // host -> first switch
	In   []*Link // last switch -> host

	// Faults is the compiled fault plan, nil when fault injection is
	// disabled (the common case; nil keeps the fault-free path free of
	// any per-packet overhead). The NI pipeline consults it at the two
	// link-crossing boundaries.
	Faults *faults.Plan
}

// NewFabric builds the fabric for cfg.Nodes hosts. Resources are placed
// on their owning logical process — every switch on the fabric LP, node
// i's links on node i's LP (LinkFixed is the node LPs' lookahead: every
// event a node schedules on the fabric is an out-link completion at
// least LinkFixed away; SwitchFixed, the per-hop cost, is the fabric
// LP's, by the mirror argument — intermediate hops stay fabric-local).
// On a standalone engine LPNode/LPFabric return the engine itself and
// nothing changes.
func NewFabric(eng *sim.Engine, cfg *topo.Config) *Fabric {
	desc := cfg.Fabric()
	f := &Fabric{
		Switches: make([]*Switch, desc.NumSwitches),
		Desc:     desc,
		Out:      make([]*Link, cfg.Nodes),
		In:       make([]*Link, cfg.Nodes),
	}
	for i := range f.Switches {
		name := "switch"
		if desc.NumSwitches > 1 {
			name = fmt.Sprintf("sw%d.s%d", i, desc.SwitchStage[i])
		}
		f.Switches[i] = NewSwitchNamed(eng.LPFabric(), name, cfg.Costs.SwitchFixed)
	}
	f.Switch = f.Switches[0]
	if cfg.Faults.Enabled {
		f.Faults = faults.New(&cfg.Faults, cfg.Nodes)
	}
	for i := 0; i < cfg.Nodes; i++ {
		f.Out[i] = NewLink(eng.LPNode(i), "link-out", cfg.Costs.LinkFixed, cfg.Costs.LinkPerByte)
		f.In[i] = NewLink(eng.LPNode(i), "link-in", cfg.Costs.LinkFixed, cfg.Costs.LinkPerByte)
	}
	return f
}

// Route returns the switch ids a src->dst packet traverses, in order.
func (f *Fabric) Route(src, dst int) []int16 { return f.Desc.Route(src, dst) }

// StageBusy returns the total switch busy time accumulated per fabric
// stage (index 0 = leaf/edge stage).
func (f *Fabric) StageBusy() []sim.Time {
	busy := make([]sim.Time, f.Desc.NumStages)
	for i, sw := range f.Switches {
		busy[f.Desc.SwitchStage[i]] += sw.res.BusyTime
	}
	return busy
}

// UncontendedNet returns the worst-case no-queueing network time for n
// bytes between any host pair: out-link + diameter switch hops +
// in-link. On the crossbar this is the exact (and only) route time.
func (f *Fabric) UncontendedNet(n int) sim.Time {
	return f.Out[0].ServiceTime(n) +
		sim.Time(f.Desc.MaxHops())*f.Switch.ServiceTime() +
		f.In[0].ServiceTime(n)
}

// UncontendedNetRoute returns the no-queueing network time for n bytes
// on the specific src->dst route.
func (f *Fabric) UncontendedNetRoute(src, dst, n int) sim.Time {
	return f.Out[src].ServiceTime(n) +
		sim.Time(len(f.Route(src, dst)))*f.Switch.ServiceTime() +
		f.In[dst].ServiceTime(n)
}

// Send moves an n-byte packet from src to dst through the fabric
// stages (out-link, each switch on the compiled route, in-link); fn
// runs when the last byte reaches dst's NI, with inject being the time
// the packet finished entering the network (end of the out-link stage,
// the paper's "LANai insertion" boundary).
func (f *Fabric) Send(src, dst, n int, fn func(inject, arrive sim.Time)) {
	route := f.Route(src, dst)
	f.Out[src].Transfer(n, func(_, outEnd sim.Time) {
		var hop func(i int)
		hop = func(i int) {
			if i == len(route) {
				f.In[dst].Transfer(n, func(_, inEnd sim.Time) {
					fn(outEnd, inEnd)
				})
				return
			}
			f.Switches[route[i]].Route(func(_, _ sim.Time) { hop(i + 1) })
		}
		hop(0)
	})
}

// Broadcast moves one n-byte packet from src through the out-link and
// its first switch once, then replicates it toward every destination
// (remaining route hops, then the in-link — the NI-broadcast extension
// of the paper's §5). fn runs once per destination.
func (f *Fabric) Broadcast(src int, dsts []int, n int, fn func(dst int, inject, arrive sim.Time)) {
	f.Out[src].Transfer(n, func(_, outEnd sim.Time) {
		f.Switches[f.Desc.FirstSwitch(src)].Route(func(_, _ sim.Time) {
			for _, dst := range dsts {
				route := f.Route(src, dst)
				var hop func(i int)
				d := dst
				hop = func(i int) {
					if i == len(route) {
						f.In[d].Transfer(n, func(_, inEnd sim.Time) {
							fn(d, outEnd, inEnd)
						})
						return
					}
					f.Switches[route[i]].Route(func(_, _ sim.Time) { hop(i + 1) })
				}
				hop(1)
			}
		})
	})
}
