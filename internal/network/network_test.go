package network

import (
	"testing"
	"testing/quick"

	"genima/internal/sim"
	"genima/internal/topo"
)

func TestLinkServiceTime(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "l", sim.Micro(1), 1.0) // 1 ns/byte
	if got := l.ServiceTime(1000); got != sim.Micro(1)+1000 {
		t.Errorf("service = %d", got)
	}
}

func TestLinkSerializesTransfers(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "l", 0, 1.0)
	var ends []sim.Time
	eng.At(0, func() {
		l.Transfer(100, func(_, e sim.Time) { ends = append(ends, e) })
		l.Transfer(100, func(_, e sim.Time) { ends = append(ends, e) })
	})
	eng.RunUntilQuiet()
	if ends[0] != 100 || ends[1] != 200 {
		t.Errorf("ends = %v", ends)
	}
}

func TestFabricEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	cfg := topo.Default()
	f := NewFabric(eng, &cfg)
	var inject, arrive sim.Time
	eng.At(0, func() {
		f.Send(0, 2, 4096, func(i, a sim.Time) { inject, arrive = i, a })
	})
	eng.RunUntilQuiet()
	if inject <= 0 || arrive <= inject {
		t.Fatalf("inject=%d arrive=%d", inject, arrive)
	}
	if want := f.UncontendedNet(4096); arrive != want {
		t.Errorf("arrive = %d, uncontended = %d", arrive, want)
	}
}

func TestUncontendedNetMonotoneInSize(t *testing.T) {
	eng := sim.NewEngine()
	cfg := topo.Default()
	f := NewFabric(eng, &cfg)
	prop := func(a, b uint16) bool {
		sa, sb := int(a)+1, int(b)+1
		if sa > sb {
			sa, sb = sb, sa
		}
		return f.UncontendedNet(sa) <= f.UncontendedNet(sb)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchSharedAcrossPairs(t *testing.T) {
	// Two simultaneous sends on disjoint links still serialize at the
	// single crossbar (the model's stated pessimism).
	eng := sim.NewEngine()
	cfg := topo.Default()
	f := NewFabric(eng, &cfg)
	var arrivals []sim.Time
	eng.At(0, func() {
		f.Send(0, 1, 64, func(_, a sim.Time) { arrivals = append(arrivals, a) })
		f.Send(2, 3, 64, func(_, a sim.Time) { arrivals = append(arrivals, a) })
	})
	eng.RunUntilQuiet()
	if len(arrivals) != 2 {
		t.Fatalf("%d arrivals", len(arrivals))
	}
	if arrivals[0] == arrivals[1] {
		t.Error("switch arbitration did not serialize the two routes")
	}
}

// Fault-hook edge cases: the fan-out and drop/delay injection points in
// the NI pipeline lean on these fabric properties.

// The 4 KB max-packet boundary: service times at MaxPacket must follow
// the exact per-byte formula (no truncation or rounding cliff at the
// boundary), since a full page transfer always rides a max-size packet.
func TestMaxPacketBoundaryServiceTimes(t *testing.T) {
	eng := sim.NewEngine()
	cfg := topo.Default()
	f := NewFabric(eng, &cfg)
	for _, n := range []int{cfg.MaxPacket - 1, cfg.MaxPacket} {
		want := cfg.Costs.LinkFixed + sim.Time(float64(n)*cfg.Costs.LinkPerByte)
		if got := f.Out[0].ServiceTime(n); got != want {
			t.Errorf("out-link service(%d) = %d, want %d", n, got, want)
		}
		if got := f.In[0].ServiceTime(n); got != want {
			t.Errorf("in-link service(%d) = %d, want %d", n, got, want)
		}
	}
	want := f.Out[0].ServiceTime(cfg.MaxPacket) + f.Switch.ServiceTime() +
		f.In[0].ServiceTime(cfg.MaxPacket)
	if got := f.UncontendedNet(cfg.MaxPacket); got != want {
		t.Errorf("UncontendedNet(MaxPacket) = %d, want %d", got, want)
	}
	if d := f.UncontendedNet(cfg.MaxPacket) - f.UncontendedNet(cfg.MaxPacket-1); d <= 0 {
		t.Errorf("last byte at the 4 KB boundary costs %d, want > 0", d)
	}
}

// The fault plan hangs off the fabric only when enabled, and with its
// configured seed: the NI pipeline nil-checks Fabric.Faults for its
// zero-overhead off switch.
func TestFabricFaultPlanConstruction(t *testing.T) {
	eng := sim.NewEngine()
	cfg := topo.Default()
	if f := NewFabric(eng, &cfg); f.Faults != nil {
		t.Fatal("fault plan built with faults disabled")
	}
	cfg.Faults = topo.FaultMix(0.5, 123)
	f := NewFabric(eng, &cfg)
	if f.Faults == nil {
		t.Fatal("no fault plan built with faults enabled")
	}
	saw := false
	for i := 0; i < 50 && !saw; i++ {
		v := f.Faults.JudgeIn(0, 0)
		saw = v.Drop || v.Dup || v.Delay > 0 || v.CorruptMask != 0
	}
	if !saw {
		t.Error("enabled 50% fault plan judged 50 packets clean")
	}
}

// Broadcast fan-out replicates onto every destination in-link
// independently: one slow (busy) in-link must not delay the copies
// bound for the other destinations — the property that lets a downed
// link stall only its own destination.
func TestBroadcastFanOutIndependentInLinks(t *testing.T) {
	eng := sim.NewEngine()
	cfg := topo.Default()
	f := NewFabric(eng, &cfg)
	// Pre-load node 2's in-link with a long transfer.
	eng.At(0, func() {
		f.In[2].Transfer(cfg.MaxPacket, func(_, _ sim.Time) {})
	})
	arrive := map[int]sim.Time{}
	eng.At(0, func() {
		f.Broadcast(0, []int{1, 2, 3}, 64, func(dst int, _, a sim.Time) {
			arrive[dst] = a
		})
	})
	eng.RunUntilQuiet()
	if len(arrive) != 3 {
		t.Fatalf("%d arrivals, want 3", len(arrive))
	}
	if arrive[1] != arrive[3] {
		t.Errorf("idle destinations arrived apart: %d vs %d", arrive[1], arrive[3])
	}
	if arrive[2] <= arrive[1] {
		t.Errorf("busy in-link did not delay its own copy: dst2=%d dst1=%d", arrive[2], arrive[1])
	}
}

// Multi-stage fabric regression: routed sends must charge every switch
// on the compiled route, and per-stage busy accounting must see it.

func clos2Fabric(t *testing.T, nodes, radix int) (*sim.Engine, *Fabric, *topo.Config) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := topo.Default()
	cfg.Topo, cfg.SwitchRadix, cfg.Nodes = topo.TopoClos2, radix, nodes
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return eng, NewFabric(eng, &cfg), &cfg
}

func TestMultiStageSendMatchesRouteTime(t *testing.T) {
	eng, f, cfg := clos2Fabric(t, 8, 4) // 2 hosts/leaf: 0->5 is 3 hops
	if got := len(f.Route(0, 5)); got != 3 {
		t.Fatalf("route 0->5 has %d hops, want 3", got)
	}
	if got := len(f.Route(0, 1)); got != 1 {
		t.Fatalf("route 0->1 has %d hops, want 1", got)
	}
	var sameLeaf, crossLeaf sim.Time
	eng.At(0, func() {
		f.Send(0, 1, 256, func(_, a sim.Time) { sameLeaf = a })
	})
	eng.RunUntilQuiet()
	eng.At(eng.Now(), func() {
		f.Send(0, 5, 256, func(_, a sim.Time) { crossLeaf = a })
	})
	start := eng.Now()
	eng.RunUntilQuiet()
	if want := f.UncontendedNetRoute(0, 1, 256); sameLeaf != want {
		t.Errorf("same-leaf arrive = %d, want %d", sameLeaf, want)
	}
	if want := start + f.UncontendedNetRoute(0, 5, 256); crossLeaf != want {
		t.Errorf("cross-leaf arrive = %d, want %d", crossLeaf, want)
	}
	if d := f.UncontendedNetRoute(0, 5, 256) - f.UncontendedNetRoute(0, 1, 256); d != 2*cfg.Costs.SwitchFixed {
		t.Errorf("cross-leaf route costs %d more, want 2 switch hops = %d", d, 2*cfg.Costs.SwitchFixed)
	}
}

func TestPerStageBusyAccounting(t *testing.T) {
	eng, f, cfg := clos2Fabric(t, 8, 4)
	done := 0
	eng.At(0, func() {
		f.Send(0, 1, 64, func(_, _ sim.Time) { done++ }) // leaf-only
		f.Send(0, 5, 64, func(_, _ sim.Time) { done++ }) // leaf, spine, leaf
	})
	eng.RunUntilQuiet()
	if done != 2 {
		t.Fatalf("%d sends completed", done)
	}
	busy := f.StageBusy()
	if len(busy) != 2 {
		t.Fatalf("%d stages reported, want 2", len(busy))
	}
	sf := cfg.Costs.SwitchFixed
	if busy[0] != 3*sf {
		t.Errorf("leaf stage busy = %d, want %d (3 hops)", busy[0], 3*sf)
	}
	if busy[1] != sf {
		t.Errorf("spine stage busy = %d, want %d (1 hop)", busy[1], sf)
	}
}

func TestMultiStageBroadcastTraversesFirstSwitchOnce(t *testing.T) {
	eng, f, cfg := clos2Fabric(t, 8, 4)
	arrive := map[int]sim.Time{}
	eng.At(0, func() {
		f.Broadcast(0, []int{1, 5}, 64, func(dst int, _, a sim.Time) { arrive[dst] = a })
	})
	eng.RunUntilQuiet()
	if len(arrive) != 2 {
		t.Fatalf("%d arrivals", len(arrive))
	}
	// The shared leaf hop is charged once: exactly 1 (shared leaf) +
	// 2 (spine+leaf for dst 5) hops of busy time in total.
	var total sim.Time
	for _, b := range f.StageBusy() {
		total += b
	}
	if want := 3 * cfg.Costs.SwitchFixed; total != want {
		t.Errorf("broadcast switch busy = %d, want %d", total, want)
	}
	if arrive[5] <= arrive[1] {
		t.Errorf("3-hop copy (%d) not after 1-hop copy (%d)", arrive[5], arrive[1])
	}
}
