package network

import (
	"testing"
	"testing/quick"

	"genima/internal/sim"
	"genima/internal/topo"
)

func TestLinkServiceTime(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "l", sim.Micro(1), 1.0) // 1 ns/byte
	if got := l.ServiceTime(1000); got != sim.Micro(1)+1000 {
		t.Errorf("service = %d", got)
	}
}

func TestLinkSerializesTransfers(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "l", 0, 1.0)
	var ends []sim.Time
	eng.At(0, func() {
		l.Transfer(100, func(_, e sim.Time) { ends = append(ends, e) })
		l.Transfer(100, func(_, e sim.Time) { ends = append(ends, e) })
	})
	eng.RunUntilQuiet()
	if ends[0] != 100 || ends[1] != 200 {
		t.Errorf("ends = %v", ends)
	}
}

func TestFabricEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	cfg := topo.Default()
	f := NewFabric(eng, &cfg)
	var inject, arrive sim.Time
	eng.At(0, func() {
		f.Send(0, 2, 4096, func(i, a sim.Time) { inject, arrive = i, a })
	})
	eng.RunUntilQuiet()
	if inject <= 0 || arrive <= inject {
		t.Fatalf("inject=%d arrive=%d", inject, arrive)
	}
	if want := f.UncontendedNet(4096); arrive != want {
		t.Errorf("arrive = %d, uncontended = %d", arrive, want)
	}
}

func TestUncontendedNetMonotoneInSize(t *testing.T) {
	eng := sim.NewEngine()
	cfg := topo.Default()
	f := NewFabric(eng, &cfg)
	prop := func(a, b uint16) bool {
		sa, sb := int(a)+1, int(b)+1
		if sa > sb {
			sa, sb = sb, sa
		}
		return f.UncontendedNet(sa) <= f.UncontendedNet(sb)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchSharedAcrossPairs(t *testing.T) {
	// Two simultaneous sends on disjoint links still serialize at the
	// single crossbar (the model's stated pessimism).
	eng := sim.NewEngine()
	cfg := topo.Default()
	f := NewFabric(eng, &cfg)
	var arrivals []sim.Time
	eng.At(0, func() {
		f.Send(0, 1, 64, func(_, a sim.Time) { arrivals = append(arrivals, a) })
		f.Send(2, 3, 64, func(_, a sim.Time) { arrivals = append(arrivals, a) })
	})
	eng.RunUntilQuiet()
	if len(arrivals) != 2 {
		t.Fatalf("%d arrivals", len(arrivals))
	}
	if arrivals[0] == arrivals[1] {
		t.Error("switch arbitration did not serialize the two routes")
	}
}
