package hwdsm

import (
	"testing"

	"genima/internal/memory"
	"genima/internal/sim"
	"genima/internal/topo"
)

func build(t *testing.T) (*sim.Engine, *System, *topo.Config) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := topo.Default()
	space := memory.NewSpace(cfg.PageSize, cfg.WordSize, cfg.Nodes)
	space.Alloc("a", 16*cfg.PageSize, memory.RoundRobin)
	return eng, New(eng, &cfg, space), &cfg
}

func TestFirstTouchCostsMissSecondIsFree(t *testing.T) {
	eng, s, _ := build(t)
	be := s.Backend(0)
	var first, second sim.Time
	eng.Go("p", func(p *sim.Proc) {
		t0 := p.Now()
		be.EnsureRead(p, 0, LineSize)
		first = p.Now() - t0
		t0 = p.Now()
		be.EnsureRead(p, 0, LineSize)
		second = p.Now() - t0
	})
	eng.RunUntilQuiet()
	if first == 0 {
		t.Error("first touch cost nothing")
	}
	if second != 0 {
		t.Errorf("cache hit cost %d", second)
	}
}

func TestRemoteDirtierThanLocal(t *testing.T) {
	eng, s, cfg := build(t)
	local := s.Backend(0)                   // node 0
	remote := s.Backend(cfg.NumProcs() - 1) // last node
	// Page 0 is homed at node 0.
	var localCost, remoteCost sim.Time
	eng.Go("l", func(p *sim.Proc) {
		t0 := p.Now()
		local.EnsureRead(p, 0, LineSize)
		localCost = p.Now() - t0
	})
	eng.Go("r", func(p *sim.Proc) {
		t0 := p.Now()
		remote.EnsureRead(p, LineSize, LineSize) // different line, same page
		remoteCost = p.Now() - t0
	})
	eng.RunUntilQuiet()
	if remoteCost <= localCost {
		t.Errorf("remote miss (%d) not above local miss (%d)", remoteCost, localCost)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	eng, s, _ := build(t)
	a, b := s.Backend(0), s.Backend(1)
	var rereadCost sim.Time
	eng.Go("seq", func(p *sim.Proc) {
		a.EnsureRead(p, 0, LineSize)
		b.EnsureRead(p, 0, LineSize)
		// b writes: invalidates a.
		b.EnsureWrite(p, 0, LineSize)
		t0 := p.Now()
		a.EnsureRead(p, 0, LineSize) // dirty miss (3-hop)
		rereadCost = p.Now() - t0
	})
	eng.RunUntilQuiet()
	if rereadCost < s.costs.DirtyMiss {
		t.Errorf("re-read after remote write cost %d, want >= dirty miss %d", rereadCost, s.costs.DirtyMiss)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	eng, s, _ := build(t)
	in := 0
	bad := 0
	for i := 0; i < 8; i++ {
		be := s.Backend(i)
		eng.Go("p", func(p *sim.Proc) {
			for k := 0; k < 5; k++ {
				be.Lock(p, 3)
				in++
				if in > 1 {
					bad++
				}
				p.Sleep(sim.Micro(3))
				in--
				be.Unlock(p, 3)
			}
		})
	}
	eng.RunUntilQuiet()
	if bad != 0 {
		t.Errorf("%d mutual exclusion violations", bad)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	eng, s, cfg := build(t)
	n := cfg.NumProcs()
	arrived := 0
	violations := 0
	for i := 0; i < n; i++ {
		i := i
		be := s.Backend(i)
		eng.Go("p", func(p *sim.Proc) {
			p.Sleep(sim.Time(i) * sim.Micro(5))
			arrived++
			be.Barrier(p)
			if arrived != n {
				violations++
			}
			be.Barrier(p)
		})
	}
	eng.RunUntilQuiet()
	if violations != 0 {
		t.Errorf("%d processors passed the barrier early", violations)
	}
}

func TestBytesIsCoherentMemory(t *testing.T) {
	eng, s, _ := build(t)
	a, b := s.Backend(0), s.Backend(5)
	var got byte
	eng.Go("seq", func(p *sim.Proc) {
		a.EnsureWrite(p, 100, 1)
		a.Bytes(0)[100] = 42
		b.EnsureRead(p, 100, 1)
		got = b.Bytes(0)[100]
	})
	eng.RunUntilQuiet()
	if got != 42 {
		t.Errorf("read %d through the other processor, want 42", got)
	}
}

func TestPopcount(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 3: 2, 0xFF: 8, 1 << 63: 1}
	for in, want := range cases {
		if got := popcount(in); got != want {
			t.Errorf("popcount(%#x) = %d, want %d", in, got, want)
		}
	}
}

func TestMissCounterAdvances(t *testing.T) {
	eng, s, _ := build(t)
	be := s.Backend(0)
	eng.Go("p", func(p *sim.Proc) {
		be.EnsureRead(p, 0, 4*LineSize)
	})
	eng.RunUntilQuiet()
	if s.Misses != 4 {
		t.Errorf("misses = %d, want 4", s.Misses)
	}
}
