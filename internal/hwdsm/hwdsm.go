// Package hwdsm models a hardware cache-coherent distributed shared
// memory machine (an SGI Origin 2000 analogue) for the paper's Figure 1,
// Figure 4 and Table 5 comparisons. Coherence is tracked at cache-line
// (128 B) granularity with an infinite-cache directory model: the first
// access to a line by a processor pays a miss whose cost depends on
// where the line's memory home is and whether another processor holds
// it dirty. Data lives directly in the shared space's home copies (one
// coherent memory), so results are exact.
package hwdsm

import (
	"genima/internal/memory"
	"genima/internal/sim"
	"genima/internal/topo"
)

// LineSize is the coherence granularity in bytes.
const LineSize = 128

// Costs are the hardware model's latency constants.
type Costs struct {
	LocalMiss  sim.Time // line whose memory home is this processor's node
	RemoteMiss sim.Time // clean line homed elsewhere
	DirtyMiss  sim.Time // line held dirty by another processor (3-hop)
	InvalBase  sim.Time // write upgrade with sharers to invalidate
	PerSharer  sim.Time // additional invalidation cost per sharer
	LockBase   sim.Time // uncontended lock acquire/release
	BarBase    sim.Time // barrier base cost
	BarPerProc sim.Time // barrier cost per processor
}

// DefaultCosts reflect published Origin 2000 latencies (≈0.3–1.3 µs
// memory-to-memory at 1999 clock speeds).
func DefaultCosts() Costs {
	return Costs{
		LocalMiss:  sim.Micro(0.35),
		RemoteMiss: sim.Micro(0.9),
		DirtyMiss:  sim.Micro(1.3),
		InvalBase:  sim.Micro(0.7),
		PerSharer:  sim.Micro(0.15),
		LockBase:   sim.Micro(2.0),
		BarBase:    sim.Micro(6.0),
		BarPerProc: sim.Micro(0.4),
	}
}

// System is the hardware DSM machine.
type System struct {
	eng   *sim.Engine
	cfg   *topo.Config
	space *memory.Space
	costs Costs

	nprocs int
	owner  []int16  // dirty owner per line, -1 if clean
	shared []uint64 // sharer bitmask per line (≤ 64 processors)

	locks map[int]*hwLock
	bar   barState

	// Misses counts directory misses served (diagnostics).
	Misses uint64
}

type hwLock struct {
	held bool
	q    sim.WaitQ
}

type barState struct {
	epoch   int
	arrived int
	flags   map[int]*sim.Flag
}

// New builds the machine over an allocated space.
func New(eng *sim.Engine, cfg *topo.Config, space *memory.Space) *System {
	nlines := space.NPages() * cfg.PageSize / LineSize
	s := &System{
		eng:    eng,
		cfg:    cfg,
		space:  space,
		costs:  DefaultCosts(),
		nprocs: cfg.NumProcs(),
		owner:  make([]int16, nlines),
		shared: make([]uint64, nlines),
		locks:  map[int]*hwLock{},
		bar:    barState{flags: map[int]*sim.Flag{}},
	}
	if s.nprocs > 64 {
		panic("hwdsm: more than 64 processors not supported")
	}
	for i := range s.owner {
		s.owner[i] = -1
	}
	return s
}

// Backend returns processor proc's execution backend.
func (s *System) Backend(proc int) *Proc {
	return &Proc{sys: s, id: proc, node: proc / s.cfg.ProcsPerNode}
}

// Proc is one hardware processor's backend (implements app.Backend).
type Proc struct {
	sys  *System
	id   int
	node int
}

func (b *Proc) lineRange(addr, size int) (int, int) {
	if size <= 0 {
		size = 1
	}
	return addr / LineSize, (addr + size - 1) / LineSize
}

// EnsureRead charges read-miss costs for uncached lines.
func (b *Proc) EnsureRead(p *sim.Proc, addr, size int) {
	s := b.sys
	bit := uint64(1) << uint(b.id)
	l0, l1 := b.lineRange(addr, size)
	var cost sim.Time
	for l := l0; l <= l1; l++ {
		if s.shared[l]&bit != 0 {
			continue // cache hit
		}
		s.Misses++
		switch {
		case s.owner[l] >= 0 && int(s.owner[l]) != b.id:
			cost += s.costs.DirtyMiss
			s.owner[l] = -1 // dirty data written back, line now shared
		case s.space.Home(l*LineSize/s.cfg.PageSize) == b.node:
			cost += s.costs.LocalMiss
		default:
			cost += s.costs.RemoteMiss
		}
		s.shared[l] |= bit
	}
	if cost > 0 {
		p.Sleep(cost)
	}
}

// EnsureWrite charges write-miss/upgrade costs and takes exclusive
// ownership of the lines.
func (b *Proc) EnsureWrite(p *sim.Proc, addr, size int) {
	s := b.sys
	bit := uint64(1) << uint(b.id)
	l0, l1 := b.lineRange(addr, size)
	var cost sim.Time
	for l := l0; l <= l1; l++ {
		if s.owner[l] == int16(b.id) {
			continue // already exclusive
		}
		s.Misses++
		others := popcount(s.shared[l] &^ bit)
		if s.owner[l] >= 0 {
			cost += s.costs.DirtyMiss
		} else if s.shared[l]&bit == 0 {
			if s.space.Home(l*LineSize/s.cfg.PageSize) == b.node {
				cost += s.costs.LocalMiss
			} else {
				cost += s.costs.RemoteMiss
			}
		}
		if others > 0 {
			cost += s.costs.InvalBase + s.costs.PerSharer*sim.Time(others)
		}
		s.shared[l] = bit
		s.owner[l] = int16(b.id)
	}
	if cost > 0 {
		p.Sleep(cost)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Bytes returns the coherent memory for a page (the home copy).
func (b *Proc) Bytes(page int) []byte { return b.sys.space.HomeCopy(page) }

// Lock acquires a hardware lock (queued, fair).
func (b *Proc) Lock(p *sim.Proc, id int) {
	s := b.sys
	lk := s.locks[id]
	if lk == nil {
		lk = &hwLock{}
		s.locks[id] = lk
	}
	p.Sleep(s.costs.LockBase)
	for lk.held {
		lk.q.Wait(p)
	}
	lk.held = true
}

// Unlock releases a hardware lock.
func (b *Proc) Unlock(p *sim.Proc, id int) {
	s := b.sys
	lk := s.locks[id]
	p.Sleep(s.costs.LockBase / 2)
	lk.held = false
	lk.q.WakeOne()
}

// Barrier is a hardware tree barrier.
func (b *Proc) Barrier(p *sim.Proc) sim.Time {
	s := b.sys
	epoch := s.bar.epoch
	f := s.bar.flags[epoch]
	if f == nil {
		f = &sim.Flag{}
		s.bar.flags[epoch] = f
	}
	s.bar.arrived++
	cost := s.costs.BarBase + s.costs.BarPerProc*sim.Time(s.nprocs)
	if s.bar.arrived == s.nprocs {
		s.bar.arrived = 0
		s.bar.epoch++
		delete(s.bar.flags, epoch)
		p.Sleep(cost)
		f.Set()
		return 0
	}
	f.Wait(p)
	p.Sleep(cost)
	return 0
}

// ComputeScale: no SMP bus penalty in the hardware machine model.
func (b *Proc) ComputeScale(float64) float64 { return 1 }

// TakeSteal: no interrupts in the hardware machine.
func (b *Proc) TakeSteal() sim.Time { return 0 }
