// Package checkpoint implements deterministic checkpoint/restore for
// soak-scale simulation runs.
//
// A Go simulation whose compute processors are goroutines cannot
// serialize their stacks, so a checkpoint is not a byte image of the
// process. Instead it records the *cut point* of a deterministic run —
// the number of trace events emitted, the SHA-256 midstate of the
// canonical trace prefix, the virtual clock, and a digest of the live
// simulator state (event heaps, pools, version-vector tables, protocol
// machines, reliable-delivery flows, fault cursors, collective trees;
// see the DigestInto methods across internal/...) — plus everything
// needed to rebuild the run from its inputs. Restore re-executes the
// run from event zero with trace emission suppressed up to the cut,
// verifies that the replayed prefix reproduces the recorded hash
// midstate (and, when the execution mode matches, the state digest),
// and then continues normally. The resumed trace is byte-identical to
// an uninterrupted run by construction, and the verification turns "by
// construction" into a checked invariant. Soak mode (genima.Soak)
// checkpoints at run boundaries, where no goroutine state is live at
// all, so its restores are true O(1) cursor seeks.
//
// The on-disk format is versioned and checksummed: a fixed header
// (magic, format version, payload length), a field-wise binary payload,
// and a whole-file SHA-256 trailer. Files are written to a temp path
// and renamed into place, so a crash mid-write never leaves a partial
// checkpoint under the real name.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"genima/internal/sim"
	"genima/internal/topo"
)

// Format constants.
const (
	// Magic identifies a genima checkpoint file.
	Magic = uint32(0x474e434b) // "GNCK"
	// Version is the current format version. Load rejects other
	// versions: the payload layout is not self-describing.
	Version = uint32(1)
)

// Sentinel errors, matchable with errors.Is.
var (
	ErrCorrupt = errors.New("checkpoint: corrupt file")
	ErrVersion = errors.New("checkpoint: unsupported format version")
)

// State is everything a checkpoint records. Mode fields capture the
// execution mode the checkpoint was taken under; the trace stream is
// mode-independent, so a restore may run under a different mode, but
// the live-state digest is only comparable when the mode matches (a
// parallel run's deferred-commit backlog makes its live state at trace
// event k legitimately differ from a serial run's).
type State struct {
	// Run identity.
	ConfigSum [32]byte // ConfigSum(cfg): the topology/cost/fault fingerprint
	App       string
	Proto     string
	Scale     string

	// Execution mode at checkpoint time.
	ModeWorkers int
	ModeShards  int

	// Cut point.
	TraceEvents uint64   // trace events emitted before the cut
	SimTime     int64    // virtual clock at the cut
	Events      uint64   // engine events executed at the cut
	StateDigest uint64   // sim/nic/core/memory/faults live-state digest
	HashState   []byte   // SHA-256 midstate of the canonical trace prefix

	// Soak-mode cursor (zero outside soak runs).
	SoakIter   uint64   // completed soak iterations
	SoakEvents uint64   // cumulative events across completed iterations
	SoakChain  [32]byte // chained hash over completed iterations

	// Note is free-form context (which signal triggered the write, ...).
	Note string
}

// ConfigSum fingerprints a cluster configuration for restore-time
// compatibility checking. Execution-mode fields (IntraRunWorkers,
// LPShards) are zeroed first: they change how the run is executed, not
// what it computes, and a checkpoint taken under one mode may be
// restored under another.
func ConfigSum(cfg *topo.Config) [32]byte {
	c := *cfg
	c.IntraRunWorkers = 0
	c.LPShards = 0
	return sha256.Sum256([]byte(fmt.Sprintf("%#v", c)))
}

// Save writes st to path atomically: temp file in the same directory,
// fsync, rename. The resulting file carries a whole-file SHA-256
// trailer that Load verifies.
func Save(path string, st *State) error {
	payload := st.encode()
	head := make([]byte, 16)
	binary.LittleEndian.PutUint32(head[0:], Magic)
	binary.LittleEndian.PutUint32(head[4:], Version)
	binary.LittleEndian.PutUint64(head[8:], uint64(len(payload)))
	h := sha256.New()
	h.Write(head)
	h.Write(payload)
	sum := h.Sum(nil)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	for _, chunk := range [][]byte{head, payload, sum} {
		if _, err := tmp.Write(chunk); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}

// Load reads and verifies a checkpoint file.
func Load(path string) (*State, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 16+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes, below minimum", ErrCorrupt, len(raw))
	}
	if got := binary.LittleEndian.Uint32(raw[0:]); got != Magic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, got)
	}
	if got := binary.LittleEndian.Uint32(raw[4:]); got != Version {
		return nil, fmt.Errorf("%w: file is v%d, this build reads v%d", ErrVersion, got, Version)
	}
	plen := binary.LittleEndian.Uint64(raw[8:])
	if plen != uint64(len(raw)-16-sha256.Size) {
		return nil, fmt.Errorf("%w: payload length %d does not match file size %d", ErrCorrupt, plen, len(raw))
	}
	body := raw[:16+plen]
	want := raw[16+plen:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(want) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	st := &State{}
	if err := st.decode(body[16:]); err != nil {
		return nil, err
	}
	return st, nil
}

// CompatibleWith checks that a loaded checkpoint belongs to the run the
// caller is about to rebuild, returning a descriptive error naming the
// first mismatched dimension.
func (st *State) CompatibleWith(cfg *topo.Config, app, proto, scale string) error {
	if sum := ConfigSum(cfg); sum != st.ConfigSum {
		return fmt.Errorf("checkpoint: config mismatch (checkpoint %x..., current %x...)", st.ConfigSum[:4], sum[:4])
	}
	if app != st.App {
		return fmt.Errorf("checkpoint: app mismatch (checkpoint %q, current %q)", st.App, app)
	}
	if proto != st.Proto {
		return fmt.Errorf("checkpoint: protocol mismatch (checkpoint %q, current %q)", st.Proto, proto)
	}
	if scale != st.Scale {
		return fmt.Errorf("checkpoint: scale mismatch (checkpoint %q, current %q)", st.Scale, scale)
	}
	return nil
}

// SameMode reports whether the checkpoint was taken under the given
// execution mode — the gate for comparing StateDigest.
func (st *State) SameMode(workers, shards int) bool {
	return st.ModeWorkers == workers && st.ModeShards == shards
}

// --- payload encoding -------------------------------------------------

type encoder struct{ b []byte }

func (e *encoder) u64(v uint64) {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], v)
	e.b = append(e.b, w[:]...)
}

func (e *encoder) bytes(b []byte) {
	e.u64(uint64(len(b)))
	e.b = append(e.b, b...)
}

func (e *encoder) str(s string) { e.bytes([]byte(s)) }

type decoder struct{ b []byte }

func (d *decoder) u64() (uint64, error) {
	if len(d.b) < 8 {
		return 0, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v, nil
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.u64()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.b)) < n {
		return nil, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	v := d.b[:n:n]
	d.b = d.b[n:]
	return v, nil
}

func (d *decoder) str() (string, error) {
	b, err := d.bytes()
	return string(b), err
}

func (st *State) encode() []byte {
	var e encoder
	e.bytes(st.ConfigSum[:])
	e.str(st.App)
	e.str(st.Proto)
	e.str(st.Scale)
	e.u64(uint64(st.ModeWorkers))
	e.u64(uint64(st.ModeShards))
	e.u64(st.TraceEvents)
	e.u64(uint64(st.SimTime))
	e.u64(st.Events)
	e.u64(st.StateDigest)
	e.bytes(st.HashState)
	e.u64(st.SoakIter)
	e.u64(st.SoakEvents)
	e.bytes(st.SoakChain[:])
	e.str(st.Note)
	return e.b
}

func (st *State) decode(payload []byte) error {
	d := decoder{b: payload}
	fail := func(field string, err error) error {
		return fmt.Errorf("checkpoint: field %s: %w", field, err)
	}
	b, err := d.bytes()
	if err != nil {
		return fail("ConfigSum", err)
	}
	if len(b) != len(st.ConfigSum) {
		return fmt.Errorf("%w: ConfigSum is %d bytes", ErrCorrupt, len(b))
	}
	copy(st.ConfigSum[:], b)
	if st.App, err = d.str(); err != nil {
		return fail("App", err)
	}
	if st.Proto, err = d.str(); err != nil {
		return fail("Proto", err)
	}
	if st.Scale, err = d.str(); err != nil {
		return fail("Scale", err)
	}
	var v uint64
	if v, err = d.u64(); err != nil {
		return fail("ModeWorkers", err)
	}
	st.ModeWorkers = int(v)
	if v, err = d.u64(); err != nil {
		return fail("ModeShards", err)
	}
	st.ModeShards = int(v)
	if st.TraceEvents, err = d.u64(); err != nil {
		return fail("TraceEvents", err)
	}
	if v, err = d.u64(); err != nil {
		return fail("SimTime", err)
	}
	st.SimTime = int64(v)
	if st.Events, err = d.u64(); err != nil {
		return fail("Events", err)
	}
	if st.StateDigest, err = d.u64(); err != nil {
		return fail("StateDigest", err)
	}
	if st.HashState, err = d.bytes(); err != nil {
		return fail("HashState", err)
	}
	if st.SoakIter, err = d.u64(); err != nil {
		return fail("SoakIter", err)
	}
	if st.SoakEvents, err = d.u64(); err != nil {
		return fail("SoakEvents", err)
	}
	if b, err = d.bytes(); err != nil {
		return fail("SoakChain", err)
	}
	if len(b) != len(st.SoakChain) {
		return fmt.Errorf("%w: SoakChain is %d bytes", ErrCorrupt, len(b))
	}
	copy(st.SoakChain[:], b)
	if st.Note, err = d.str(); err != nil {
		return fail("Note", err)
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.b))
	}
	return nil
}

// SimTimeT returns the cut's virtual clock as a sim.Time.
func (st *State) SimTimeT() sim.Time { return sim.Time(st.SimTime) }
