package checkpoint

import (
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"genima/internal/nic"
	"genima/internal/topo"
)

func sampleState() *State {
	st := &State{
		App: "fft", Proto: "GeNIMA", Scale: "test",
		ModeWorkers: 4, ModeShards: 2,
		TraceEvents: 12345, SimTime: 987654321, Events: 400000,
		StateDigest: 0xdeadbeefcafef00d,
		HashState:   []byte{1, 2, 3, 4, 5},
		SoakIter:    7, SoakEvents: 1 << 30,
		Note: "unit test",
	}
	cfg := topo.Default()
	st.ConfigSum = ConfigSum(&cfg)
	for i := range st.SoakChain {
		st.SoakChain[i] = byte(i)
	}
	return st
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	want := sampleState()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ConfigSum != want.ConfigSum || got.App != want.App || got.Proto != want.Proto ||
		got.Scale != want.Scale || got.ModeWorkers != want.ModeWorkers || got.ModeShards != want.ModeShards ||
		got.TraceEvents != want.TraceEvents || got.SimTime != want.SimTime || got.Events != want.Events ||
		got.StateDigest != want.StateDigest || got.SoakIter != want.SoakIter ||
		got.SoakEvents != want.SoakEvents || got.SoakChain != want.SoakChain || got.Note != want.Note {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if string(got.HashState) != string(want.HashState) {
		t.Fatalf("HashState mismatch: %v vs %v", got.HashState, want.HashState)
	}
}

// Every single-byte flip anywhere in the file must be rejected (the
// whole-file checksum covers header and payload; flips inside the
// trailer invalidate the checksum itself).
func TestLoadRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, sampleState()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Stride through the file; every position must be caught.
	for pos := 0; pos < len(raw); pos += 7 {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Fatalf("flip at byte %d loaded cleanly", pos)
		}
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, sampleState()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 8, 15, 16, len(raw) / 2, len(raw) - 1} {
		if err := os.WriteFile(path, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrCorrupt", n, err)
		}
	}
}

func TestLoadRejectsFutureVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, sampleState()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[4] = 99 // version word
	// Refresh the trailer so ONLY the version check can reject it.
	sum := sha256.Sum256(raw[:len(raw)-sha256.Size])
	copy(raw[len(raw)-sha256.Size:], sum[:])
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestCompatibleWith(t *testing.T) {
	st := sampleState()
	cfg := topo.Default()
	if err := st.CompatibleWith(&cfg, "fft", "GeNIMA", "test"); err != nil {
		t.Fatalf("matching run rejected: %v", err)
	}
	if err := st.CompatibleWith(&cfg, "lu", "GeNIMA", "test"); err == nil {
		t.Fatal("app mismatch accepted")
	}
	other := topo.Default()
	other.Nodes = 16
	if err := st.CompatibleWith(&other, "fft", "GeNIMA", "test"); err == nil {
		t.Fatal("config mismatch accepted")
	}
	// Mode fields must NOT participate in ConfigSum: a checkpoint can be
	// restored under a different (jrun, lpshards).
	modal := topo.Default()
	modal.IntraRunWorkers = 8
	modal.LPShards = 4
	if err := st.CompatibleWith(&modal, "fft", "GeNIMA", "test"); err != nil {
		t.Fatalf("mode-only config change rejected: %v", err)
	}
}

// A hasher restored from a midstate snapshot must finish with exactly
// the hash an uninterrupted hasher produces.
func TestTraceHasherMidstateResume(t *testing.T) {
	evs := make([]nic.TraceEvent, 50)
	for i := range evs {
		evs[i] = nic.TraceEvent{Time: int64(1000 * i), Src: i % 4, Dst: (i + 1) % 4,
			Size: 64 + i, Kind: "page-req", Firmware: i%2 == 0}
	}
	straight := NewTraceHasher()
	for _, ev := range evs {
		straight.Add(ev)
	}
	want := straight.Final(777777, 999)

	first := NewTraceHasher()
	for _, ev := range evs[:20] {
		first.Add(ev)
	}
	snap, err := first.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed := NewTraceHasher()
	if err := resumed.Restore(snap, first.Count()); err != nil {
		t.Fatal(err)
	}
	if resumed.Count() != 20 {
		t.Fatalf("resumed count %d, want 20", resumed.Count())
	}
	for _, ev := range evs[20:] {
		resumed.Add(ev)
	}
	if got := resumed.Final(777777, 999); got != want {
		t.Fatalf("resumed hash %s, want %s", got, want)
	}
}
