package checkpoint

import (
	"crypto/sha256"
	"encoding"
	"encoding/hex"
	"fmt"
	"hash"

	"genima/internal/nic"
	"genima/internal/sim"
)

// TraceHasher accumulates the canonical SHA-256 over a run's delivered-
// packet trace — the same rendering trace_golden_test.go pins the
// golden hashes with — and can snapshot/restore its midstate, which is
// what lets a checkpoint resume the hash without replaying the prefix
// bytes. The midstate snapshot uses the stdlib hash's binary marshaling
// (stable within a format version; the checkpoint file version gates
// compatibility).
type TraceHasher struct {
	h hash.Hash
	n uint64
}

// NewTraceHasher returns an empty hasher.
func NewTraceHasher() *TraceHasher {
	return &TraceHasher{h: sha256.New()}
}

// Add folds one delivered packet, in delivery order.
func (t *TraceHasher) Add(ev nic.TraceEvent) {
	fmt.Fprintf(t.h, "%d|%d|%d|%d|%s|%v|%d|%d|%d|%d\n",
		ev.Time, ev.Src, ev.Dst, ev.Size, ev.Kind, ev.Firmware,
		ev.StageTime[0], ev.StageTime[1], ev.StageTime[2], ev.StageTime[3])
	t.n++
}

// Count returns the number of events folded so far.
func (t *TraceHasher) Count() uint64 { return t.n }

// PrefixSum returns the hash of the events folded so far, without the
// final trailer and without disturbing the accumulating state.
func (t *TraceHasher) PrefixSum() []byte { return t.h.Sum(nil) }

// Snapshot marshals the hash midstate for storage in a checkpoint.
func (t *TraceHasher) Snapshot() ([]byte, error) {
	m, ok := t.h.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("checkpoint: sha256 state is not marshalable")
	}
	return m.MarshalBinary()
}

// Restore replaces the hasher's state with a checkpointed midstate
// covering n events.
func (t *TraceHasher) Restore(state []byte, n uint64) error {
	u, ok := t.h.(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("checkpoint: sha256 state is not unmarshalable")
	}
	if err := u.UnmarshalBinary(state); err != nil {
		return fmt.Errorf("checkpoint: restoring hash midstate: %w", err)
	}
	t.n = n
	return nil
}

// Final appends the run trailer (final elapsed time and engine event
// count, the golden-hash convention) and returns the hex digest. The
// hasher must not be used afterwards.
func (t *TraceHasher) Final(elapsed sim.Time, events uint64) string {
	fmt.Fprintf(t.h, "elapsed=%d events=%d\n", elapsed, events)
	return hex.EncodeToString(t.h.Sum(nil))
}
