package vmmc

// Messaging micro-benchmarks for the pooled packet pipeline. Run with
//
//	go test -run xxx -bench 'Deposit|RemoteFetch|Broadcast' -benchmem ./internal/vmmc
//
// (`make bench-mem`). The allocs/op column is the headline number: the
// typed event path and per-NI packet pools exist to drive it toward
// zero on the steady-state message path.

import (
	"testing"

	"genima/internal/sim"
)

// BenchmarkDeposit measures the full seven-stage remote-deposit pipeline
// for a small (64-byte) message: post, source DMA, firmware, fabric,
// destination firmware, destination DMA, delivery callback.
func BenchmarkDeposit(b *testing.B) {
	eng, l, _ := newLayer(4)
	delivered := 0
	onDeliver := func() { delivered++ }
	eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			l.Endpoint(0).Deposit(p, 1, 64, "bench", nil, onDeliver)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	eng.RunUntilQuiet()
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d deposits", delivered, b.N)
	}
}

// BenchmarkDepositLarge is BenchmarkDeposit with a 16 KB payload split
// into four wire packets, exercising the packet-splitting arithmetic.
func BenchmarkDepositLarge(b *testing.B) {
	eng, l, _ := newLayer(4)
	delivered := 0
	onDeliver := func() { delivered++ }
	eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			l.Endpoint(0).Deposit(p, 1, 16384, "bench-large", nil, onDeliver)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	eng.RunUntilQuiet()
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d deposits", delivered, b.N)
	}
}

// BenchmarkRemoteFetch measures the firmware-serviced page-fetch round
// trip: 16-byte request, firmware handler at the home NI, 4 KB reply
// DMA'd from host memory, requester blocked throughout.
func BenchmarkRemoteFetch(b *testing.B) {
	eng, l, _ := newLayer(2)
	reply := FetchReply{Payload: nil, Size: 4096}
	l.Endpoint(1).FetchServer = func(FetchReq) FetchReply { return reply }
	done := 0
	eng.Go("fetcher", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			l.Endpoint(0).RemoteFetch(p, 1, 4096, "page-req", "page-reply", 7)
			done++
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	eng.RunUntilQuiet()
	b.StopTimer()
	if done != b.N {
		b.Fatalf("completed %d of %d fetches", done, b.N)
	}
}

// BenchmarkBroadcast measures the NI-broadcast fan-out: one post and one
// source DMA, the fabric replicating onto every other node's in-link,
// one delivery per destination.
func BenchmarkBroadcast(b *testing.B) {
	eng, l, _ := newLayer(8)
	delivered := 0
	onDeliver := func(int) { delivered++ }
	eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			l.Endpoint(0).DepositBroadcast(p, 128, "bench-bcast", onDeliver)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	eng.RunUntilQuiet()
	b.StopTimer()
	if delivered != 7*b.N {
		b.Fatalf("delivered %d of %d broadcast copies", delivered, 7*b.N)
	}
}

// BenchmarkNILock measures one firmware lock acquire+release pair with a
// remote home (node 1) — the NI-lock hot path of the GeNIMA protocol.
func BenchmarkNILock(b *testing.B) {
	eng, l, _ := newLayer(4)
	done := 0
	eng.Go("locker", func(p *sim.Proc) {
		ep := l.Endpoint(2)
		for i := 0; i < b.N; i++ {
			ep.NILockAcquire(p, 1)
			ep.NILockRelease(p, 1, nil, 8)
			done++
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	eng.RunUntilQuiet()
	b.StopTimer()
	if done != b.N {
		b.Fatalf("completed %d of %d lock pairs", done, b.N)
	}
}
