// Package vmmc models the VMMC user-level communication layer plus the
// GeNIMA extensions to it, on top of the NI model:
//
//   - Remote deposit: asynchronous sends whose data lands directly in
//     destination virtual memory with no receive operation and no host
//     involvement (VMMC's native capability).
//   - Interrupt delivery: deposits that additionally interrupt a host
//     processor and hand the message to a registered sink — the only
//     delivery mode the Base protocol uses for protocol requests.
//   - Remote fetch: pull data from exported remote memory entirely via
//     the home NI's firmware (extension §2 "Remote fetch").
//   - NI locks: a distributed lock algorithm (static home, last-owner
//     chaining) run entirely in NI firmware, carrying an opaque
//     protocol timestamp with each grant (extension §2 "Network
//     interface locks").
//
// Message payloads travel as Go values; the Size field is the simulated
// wire size that drives all timing.
package vmmc

import (
	"fmt"

	"genima/internal/nic"
	"genima/internal/sim"
	"genima/internal/topo"
)

// MsgKind is the integer protocol-message discriminator for
// interrupt-class deliveries. The protocol core dispatches on it with a
// dense switch (no string compare, no map); String() recovers the
// packet-trace label.
type MsgKind uint8

// Interrupt-class protocol message kinds (the SVM core's request set).
const (
	MsgInvalid MsgKind = iota
	MsgPageReq
	MsgDiff
	MsgLockReq
	MsgLockFwd
	MsgBarArrive
	MsgBarRelease
)

var msgKindLabels = [...]string{
	MsgInvalid:    "invalid",
	MsgPageReq:    "page-req",
	MsgDiff:       "diff",
	MsgLockReq:    "lock-req",
	MsgLockFwd:    "lock-fwd",
	MsgBarArrive:  "bar-arrive",
	MsgBarRelease: "bar-release",
}

// String returns the wire-trace label for the kind.
func (k MsgKind) String() string {
	if int(k) < len(msgKindLabels) {
		return msgKindLabels[k]
	}
	return "unknown"
}

// Msg is a message delivered to a host interrupt sink.
type Msg struct {
	Src     int
	Kind    MsgKind
	Payload any
}

// MsgSink is the typed interrupt receiver: a persistent per-node object
// (the protocol machine) that replaces a per-node closure. It runs in
// engine context after the interrupt dispatch delay.
type MsgSink interface {
	HandleMsg(m Msg)
}

// FetchReq is what a remote-fetch firmware handler receives.
type FetchReq struct {
	Src  int // requesting node
	Tag  int // protocol-defined request descriptor (page id, ...)
	Size int // requested data size in bytes
}

// FetchReply is the result of a remote fetch.
type FetchReply struct {
	Payload any
	Size    int
}

// Layer is the communication layer instance for a whole cluster.
type Layer struct {
	eng *sim.Engine
	cfg *topo.Config
	sys *nic.System
	eps []*Endpoint

	// intrDel is the shared deliverer for every interrupt-class packet
	// (replaces a per-send OnDeliver closure).
	intrDel interruptDeliver

	// NI-lock firmware handlers, bound once here so posting a lock
	// packet allocates no closure (see nilocks.go).
	lockAcqFw, lockFwdFw, lockGrantFw func(*nic.NI, *nic.Packet)
}

// interruptDeliver dispatches a delivered interrupt-class packet to the
// destination endpoint: the packet's Meta carries the MsgKind and
// Payload the protocol record.
type interruptDeliver struct{ l *Layer }

func (d *interruptDeliver) Deliver(pkt *nic.Packet) {
	d.l.eps[pkt.Dst].interrupt(Msg{Src: pkt.Src, Kind: MsgKind(pkt.Meta), Payload: pkt.Payload})
}

// New builds the layer (one endpoint per node) over a fresh NI system.
func New(eng *sim.Engine, cfg *topo.Config) *Layer {
	l := &Layer{eng: eng, cfg: cfg, sys: nic.NewSystem(eng, cfg)}
	l.intrDel.l = l
	l.lockAcqFw, l.lockFwdFw, l.lockGrantFw = l.fwLockAcq, l.fwLockFwd, l.fwLockGrant
	l.eps = make([]*Endpoint, cfg.Nodes)
	for i := range l.eps {
		l.eps[i] = &Endpoint{
			layer: l,
			Node:  i,
			ni:    l.sys.NIs[i],
			eng:   l.sys.NIs[i].Eng(),
			locks: map[int]*niLock{},
			owned: map[int]*ownedLock{},
		}
	}
	return l
}

// Endpoint returns node n's endpoint.
func (l *Layer) Endpoint(n int) *Endpoint { return l.eps[n] }

// NI exposes the endpoint's network interface for machine-context
// senders that drive the post pipeline step by step (sim.Handler state
// machines cannot block in Post, so they claim the post-queue slot and
// call LaunchPosted themselves).
func (ep *Endpoint) NI() *nic.NI { return ep.ni }

// InterruptDeliverer returns the shared deliverer interrupt-class
// packets carry (with Meta = MsgKind), so machine-built packets follow
// the exact delivery path of SendInterrupt.
func (ep *Endpoint) InterruptDeliverer() nic.Deliverer { return &ep.layer.intrDel }

// BroadcastDsts returns the cached everyone-but-self destination set
// used by broadcast posts.
func (ep *Endpoint) BroadcastDsts() []int {
	ep.buildBcastDsts()
	return ep.bcastDsts
}

// Monitor returns the NI firmware performance monitor.
func (l *Layer) Monitor() *nic.Monitor { return l.sys.Monitor }

// NIs exposes the underlying NI system (for queue statistics).
func (l *Layer) NIs() *nic.System { return l.sys }

// Endpoint is one node's view of the communication layer.
type Endpoint struct {
	layer *Layer
	Node  int
	ni    *nic.NI
	// eng is this node's logical process (the NI's engine); endpoint
	// work like the interrupt dispatch must be scheduled here, not on
	// the layer's construction engine, so it stays LP-local in a
	// parallel run. Identical to layer.eng in a serial run.
	eng *sim.Engine

	// Sink receives interrupt-class messages after the interrupt
	// dispatch delay. Runs in engine context. Takes precedence over
	// InterruptSink when both are set.
	Sink MsgSink
	// InterruptSink is the closure form of Sink (tests, ad-hoc
	// receivers).
	InterruptSink func(Msg)
	// Perturb, if set, is invoked once per interrupt so the caller can
	// charge scheduling perturbation to a compute processor.
	Perturb func()

	// FetchServer services remote-fetch requests against this node's
	// exported memory. It runs in firmware context (engine context, no
	// host time charged) and returns the reply payload and actual size.
	FetchServer func(FetchReq) FetchReply

	// NI lock state for locks homed at this node.
	locks map[int]*niLock
	// NI lock state for locks this node currently owns.
	owned map[int]*ownedLock
	// Outstanding remote lock acquires (one per lock).
	acq map[int]*acquireWait

	// bcastDsts caches the broadcast destination set (built lazily).
	bcastDsts []int

	// Deterministic LIFO free lists (memory.BufPool rules: plain
	// slices, single-threaded engines, reuse order reproducible).
	intrFree   []*intrEvent
	fetchFree  []*fetchOp
	lockOpFree []*lockOp

	Interrupts uint64 // interrupt-class deliveries at this node
}

// splitStep computes one step of the message-to-wire-packet split
// arithmetically (no per-send []int): for rem remaining bytes it
// returns the next packet's size and whether it is the last. A
// zero-byte message still produces one zero-size packet.
func splitStep(rem, max int) (sz int, last bool) {
	if rem <= max {
		return rem, true
	}
	return max, false
}

// Deposit asynchronously sends size bytes to node dst, depositing them
// directly into destination memory. onDeliver (optional) runs in engine
// context when the last byte lands. The caller is charged only the post
// overhead (plus any post-queue stall).
func (ep *Endpoint) Deposit(p *sim.Proc, dst, size int, kind string, payload any, onDeliver func()) {
	max := ep.layer.cfg.MaxPacket
	for rem := size; ; {
		sz, last := splitStep(rem, max)
		pkt := ep.ni.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size, pkt.Kind = ep.Node, dst, sz, kind
		if last {
			pkt.Payload = payload
			pkt.OnDeliver = onDeliver
		}
		ep.ni.Post(p, pkt)
		if last {
			break
		}
		rem -= sz
	}
}

// DepositTo is Deposit with a typed deliverer instead of a closure: to
// (a shared dispatcher) is invoked with the final packet, whose Payload
// carries the protocol record, when the last byte lands.
func (ep *Endpoint) DepositTo(p *sim.Proc, dst, size int, label string, payload any, to nic.Deliverer) {
	max := ep.layer.cfg.MaxPacket
	for rem := size; ; {
		sz, last := splitStep(rem, max)
		pkt := ep.ni.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size, pkt.Kind = ep.Node, dst, sz, label
		if last {
			pkt.Payload = payload
			pkt.DeliverTo = to
		}
		ep.ni.Post(p, pkt)
		if last {
			break
		}
		rem -= sz
	}
}

// DepositBroadcast sends one message that the fabric replicates to all
// other nodes (requires cfg.NIBroadcast hardware): one host post, one
// source DMA, N deliveries. onDeliver runs once per destination.
func (ep *Endpoint) DepositBroadcast(p *sim.Proc, size int, kind string, onDeliver func(dst int)) {
	if size > ep.layer.cfg.MaxPacket {
		panic("vmmc: broadcast larger than one packet")
	}
	ep.buildBcastDsts()
	tmpl := ep.ni.NewPacket()
	tmpl.Src, tmpl.Dst, tmpl.Size, tmpl.Kind = ep.Node, -1, size, kind
	ep.ni.PostBroadcast(p, tmpl, ep.bcastDsts, onDeliver)
}

// DepositBroadcastTo is DepositBroadcast with a typed deliverer: every
// per-destination copy carries payload and invokes to at its delivery
// (the deliverer reads the copy's Dst to identify the destination).
func (ep *Endpoint) DepositBroadcastTo(p *sim.Proc, size int, label string, payload any, to nic.Deliverer) {
	if size > ep.layer.cfg.MaxPacket {
		panic("vmmc: broadcast larger than one packet")
	}
	ep.buildBcastDsts()
	tmpl := ep.ni.NewPacket()
	tmpl.Src, tmpl.Dst, tmpl.Size, tmpl.Kind = ep.Node, -1, size, label
	tmpl.Payload = payload
	tmpl.DeliverTo = to
	ep.ni.PostBroadcast(p, tmpl, ep.bcastDsts, nil)
}

// buildBcastDsts lazily builds the everyone-but-self destination set
// once, so repeated broadcasts allocate nothing.
func (ep *Endpoint) buildBcastDsts() {
	if ep.bcastDsts != nil {
		return
	}
	ep.bcastDsts = make([]int, 0, ep.layer.cfg.Nodes-1)
	for d := 0; d < ep.layer.cfg.Nodes; d++ {
		if d != ep.Node {
			ep.bcastDsts = append(ep.bcastDsts, d)
		}
	}
}

// DepositGathered sends size bytes of scattered data as ONE message
// that the destination NI scatters into memory itself (the
// scatter-gather extension, paper §3.3): extra firmware occupancy on
// both NIs, no host involvement at the destination. apply runs in the
// destination NI's firmware context.
func (ep *Endpoint) DepositGathered(p *sim.Proc, dst, size int, kind string, apply func()) {
	c := &ep.layer.cfg.Costs
	max := ep.layer.cfg.MaxPacket
	for rem := size; ; {
		sz, last := splitStep(rem, max)
		pkt := ep.ni.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size, pkt.Kind = ep.Node, dst, sz, kind
		pkt.FwSendExtra = sim.Time(float64(sz) * c.NISGPerByte)
		pkt.FwService = sim.Time(float64(sz) * c.NISGPerByte)
		pkt.FwHandler = SGApplyHandler
		if last && apply != nil {
			// The scatter-gather payload slot carries the apply hook so
			// one shared handler serves every sg packet (no per-packet
			// closure); sg messages have no protocol payload of their own.
			pkt.Payload = apply
		}
		ep.ni.Post(p, pkt)
		if last {
			break
		}
		rem -= sz
	}
}

// SGApplier is the typed scatter-gather apply hook: a pooled record
// implementing it replaces the per-flush closure of DepositGathered.
type SGApplier interface {
	ApplySG()
}

// DepositGatheredTo is DepositGathered with a typed apply record
// instead of a closure.
func (ep *Endpoint) DepositGatheredTo(p *sim.Proc, dst, size int, kind string, apply SGApplier) {
	c := &ep.layer.cfg.Costs
	max := ep.layer.cfg.MaxPacket
	for rem := size; ; {
		sz, last := splitStep(rem, max)
		pkt := ep.ni.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size, pkt.Kind = ep.Node, dst, sz, kind
		pkt.FwSendExtra = sim.Time(float64(sz) * c.NISGPerByte)
		pkt.FwService = sim.Time(float64(sz) * c.NISGPerByte)
		pkt.FwHandler = SGApplyHandler
		if last {
			pkt.Payload = apply
		}
		ep.ni.Post(p, pkt)
		if last {
			break
		}
		rem -= sz
	}
}

// SGApplyHandler is the shared firmware handler for scatter-gather
// deposits: it scatters the fragment in NI firmware (the service time is
// on the packet) and runs the apply hook carried by the final fragment.
// Exported so machine-context senders can stamp it on the packets they
// build themselves.
func SGApplyHandler(_ *nic.NI, pkt *nic.Packet) {
	switch f := pkt.Payload.(type) {
	case func():
		f()
	case SGApplier:
		f.ApplySG()
	}
}

// DepositFromEvent is Deposit from engine context (protocol handlers).
func (ep *Endpoint) DepositFromEvent(dst, size int, kind string, payload any, onDeliver func()) {
	max := ep.layer.cfg.MaxPacket
	for rem := size; ; {
		sz, last := splitStep(rem, max)
		pkt := ep.ni.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size, pkt.Kind = ep.Node, dst, sz, kind
		if last {
			pkt.Payload = payload
			pkt.OnDeliver = onDeliver
		}
		ep.ni.PostFromEvent(pkt)
		if last {
			break
		}
		rem -= sz
	}
}

// SendInterrupt sends a message that interrupts a destination host
// processor and is handed to the destination's InterruptSink after the
// interrupt dispatch cost (the Base protocol's delivery mode).
func (ep *Endpoint) SendInterrupt(p *sim.Proc, dst, size int, kind MsgKind, payload any) {
	ep.sendInterruptPkts(dst, size, kind, payload, func(pkt *nic.Packet) {
		ep.ni.Post(p, pkt)
	})
}

// SendInterruptFromEvent is SendInterrupt from engine context.
func (ep *Endpoint) SendInterruptFromEvent(dst, size int, kind MsgKind, payload any) {
	ep.sendInterruptPkts(dst, size, kind, payload, func(pkt *nic.Packet) {
		ep.ni.PostFromEvent(pkt)
	})
}

func (ep *Endpoint) sendInterruptPkts(dst, size int, kind MsgKind, payload any, post func(*nic.Packet)) {
	max := ep.layer.cfg.MaxPacket
	for rem := size; ; {
		sz, last := splitStep(rem, max)
		pkt := ep.ni.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size, pkt.Kind = ep.Node, dst, sz, kind.String()
		if last {
			pkt.Payload = payload
			pkt.Meta = int(kind)
			pkt.DeliverTo = &ep.layer.intrDel
		}
		post(pkt)
		if last {
			break
		}
		rem -= sz
	}
}

// intrEvent is a pooled scheduled interrupt dispatch: the Msg rides in
// the event queue slot itself (via Handler) instead of a closure.
type intrEvent struct {
	ep     *Endpoint
	sink   MsgSink
	sinkFn func(Msg)
	m      Msg
}

// Run implements sim.Handler: hand the message to the sink recorded at
// interrupt time and recycle the event record.
func (ev *intrEvent) Run(_, _ sim.Time) {
	ep, sink, sinkFn, m := ev.ep, ev.sink, ev.sinkFn, ev.m
	*ev = intrEvent{}
	ep.intrFree = append(ep.intrFree, ev)
	if sink != nil {
		sink.HandleMsg(m)
		return
	}
	sinkFn(m)
}

func (ep *Endpoint) interrupt(m Msg) {
	ep.Interrupts++
	if ep.Perturb != nil {
		ep.Perturb()
	}
	sink, sinkFn := ep.Sink, ep.InterruptSink
	if sink == nil && sinkFn == nil {
		panic(fmt.Sprintf("vmmc: interrupt-class message %q at node %d with no sink", m.Kind, ep.Node))
	}
	var ev *intrEvent
	if n := len(ep.intrFree); n > 0 {
		ev = ep.intrFree[n-1]
		ep.intrFree[n-1] = nil
		ep.intrFree = ep.intrFree[:n-1]
	} else {
		ev = &intrEvent{}
	}
	ev.ep, ev.sink, ev.sinkFn, ev.m = ep, sink, sinkFn, m
	eng := ep.eng
	now := eng.Now()
	eng.AtHandler(now+ep.layer.cfg.Costs.Interrupt, now, ev)
}

// fetchOp is one outstanding RemoteFetch: a pooled record that serves as
// the request packet's payload (so one shared firmware handler replaces
// the per-fetch closure) and carries the reply back to the blocked
// requester.
type fetchOp struct {
	ep         *Endpoint // requesting endpoint
	home       int
	size       int
	tag        int
	replyLabel string
	reply      FetchReply
	done       sim.Flag
}

// fetchReqFw is the shared firmware handler for remote-fetch request
// packets; it runs on the home NI.
func fetchReqFw(homeNI *nic.NI, pkt *nic.Packet) {
	op := pkt.Payload.(*fetchOp)
	home := op.home
	srv := op.ep.layer.eps[home].FetchServer
	if srv == nil {
		panic(fmt.Sprintf("vmmc: remote fetch at node %d with no FetchServer", home))
	}
	op.reply = srv(FetchReq{Src: op.ep.Node, Tag: op.tag, Size: op.size})
	max := op.ep.layer.cfg.MaxPacket
	for rem := op.reply.Size; ; {
		sz, last := splitStep(rem, max)
		rp := homeNI.NewPacket()
		rp.Src, rp.Dst, rp.Size, rp.Kind = home, op.ep.Node, sz, op.replyLabel
		if last {
			rp.Payload = op
			rp.DeliverTo = fetchReplyDel
		}
		homeNI.FirmwareSend(rp, true) // data DMA'd from host memory
		if last {
			break
		}
		rem -= sz
	}
}

// fetchDeliver completes a RemoteFetch when the last reply byte lands.
type fetchDeliver struct{}

var fetchReplyDel fetchDeliver

func (fetchDeliver) Deliver(pkt *nic.Packet) { pkt.Payload.(*fetchOp).done.Set() }

// RemoteFetch pulls size bytes of exported memory from node home,
// serviced entirely by the home NI's firmware; the calling process
// blocks until the reply is deposited locally. The home node's
// FetchServer produces the data. reqLabel/replyLabel are the packet
// trace labels for the request and reply legs.
func (ep *Endpoint) RemoteFetch(p *sim.Proc, home, size int, reqLabel, replyLabel string, tag int) FetchReply {
	if home == ep.Node {
		panic("vmmc: RemoteFetch from self")
	}
	var op *fetchOp
	if n := len(ep.fetchFree); n > 0 {
		op = ep.fetchFree[n-1]
		ep.fetchFree[n-1] = nil
		ep.fetchFree = ep.fetchFree[:n-1]
	} else {
		op = &fetchOp{}
	}
	op.ep, op.home, op.size, op.tag, op.replyLabel = ep, home, size, tag, replyLabel
	req := ep.ni.NewPacket()
	req.Src, req.Dst, req.Size, req.Kind = ep.Node, home, 16, reqLabel
	req.FwService = ep.layer.cfg.Costs.NIFetchService
	req.FwHandler = fetchReqFw
	req.Payload = op
	ep.ni.Post(p, req)
	op.done.Wait(p)
	reply := op.reply
	// The single waiter has resumed, so the op (and its embedded Flag)
	// can be reset and recycled; Reset keeps the flag's queue storage.
	op.ep, op.replyLabel, op.reply = nil, "", FetchReply{}
	op.done.Reset()
	ep.fetchFree = append(ep.fetchFree, op)
	return reply
}
