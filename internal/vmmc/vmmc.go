// Package vmmc models the VMMC user-level communication layer plus the
// GeNIMA extensions to it, on top of the NI model:
//
//   - Remote deposit: asynchronous sends whose data lands directly in
//     destination virtual memory with no receive operation and no host
//     involvement (VMMC's native capability).
//   - Interrupt delivery: deposits that additionally interrupt a host
//     processor and hand the message to a registered sink — the only
//     delivery mode the Base protocol uses for protocol requests.
//   - Remote fetch: pull data from exported remote memory entirely via
//     the home NI's firmware (extension §2 "Remote fetch").
//   - NI locks: a distributed lock algorithm (static home, last-owner
//     chaining) run entirely in NI firmware, carrying an opaque
//     protocol timestamp with each grant (extension §2 "Network
//     interface locks").
//
// Message payloads travel as Go values; the Size field is the simulated
// wire size that drives all timing.
package vmmc

import (
	"fmt"

	"genima/internal/nic"
	"genima/internal/sim"
	"genima/internal/topo"
)

// Msg is a message delivered to a host interrupt sink.
type Msg struct {
	Src     int
	Kind    string
	Size    int
	Payload any
}

// FetchReq is what a remote-fetch firmware handler receives.
type FetchReq struct {
	Src  int // requesting node
	Tag  any // protocol-defined request descriptor (page id, ...)
	Size int // requested data size in bytes
}

// FetchReply is the result of a remote fetch.
type FetchReply struct {
	Payload any
	Size    int
}

// Layer is the communication layer instance for a whole cluster.
type Layer struct {
	eng *sim.Engine
	cfg *topo.Config
	sys *nic.System
	eps []*Endpoint
}

// New builds the layer (one endpoint per node) over a fresh NI system.
func New(eng *sim.Engine, cfg *topo.Config) *Layer {
	l := &Layer{eng: eng, cfg: cfg, sys: nic.NewSystem(eng, cfg)}
	l.eps = make([]*Endpoint, cfg.Nodes)
	for i := range l.eps {
		l.eps[i] = &Endpoint{
			layer: l,
			Node:  i,
			ni:    l.sys.NIs[i],
			locks: map[int]*niLock{},
			owned: map[int]*ownedLock{},
		}
	}
	return l
}

// Endpoint returns node n's endpoint.
func (l *Layer) Endpoint(n int) *Endpoint { return l.eps[n] }

// Monitor returns the NI firmware performance monitor.
func (l *Layer) Monitor() *nic.Monitor { return l.sys.Monitor }

// NIs exposes the underlying NI system (for queue statistics).
func (l *Layer) NIs() *nic.System { return l.sys }

// Endpoint is one node's view of the communication layer.
type Endpoint struct {
	layer *Layer
	Node  int
	ni    *nic.NI

	// InterruptSink receives interrupt-class messages after the
	// interrupt dispatch delay. Runs in engine context.
	InterruptSink func(Msg)
	// Perturb, if set, is invoked once per interrupt so the caller can
	// charge scheduling perturbation to a compute processor.
	Perturb func()

	// FetchServer services remote-fetch requests against this node's
	// exported memory. It runs in firmware context (engine context, no
	// host time charged) and returns the reply payload and actual size.
	FetchServer func(FetchReq) FetchReply

	// NI lock state for locks homed at this node.
	locks map[int]*niLock
	// NI lock state for locks this node currently owns.
	owned map[int]*ownedLock
	// Outstanding remote lock acquires (one per lock).
	acq map[int]*acquireWait

	// bcastDsts caches the broadcast destination set (built lazily).
	bcastDsts []int

	Interrupts uint64 // interrupt-class deliveries at this node
}

// splitStep computes one step of the message-to-wire-packet split
// arithmetically (no per-send []int): for rem remaining bytes it
// returns the next packet's size and whether it is the last. A
// zero-byte message still produces one zero-size packet.
func splitStep(rem, max int) (sz int, last bool) {
	if rem <= max {
		return rem, true
	}
	return max, false
}

// Deposit asynchronously sends size bytes to node dst, depositing them
// directly into destination memory. onDeliver (optional) runs in engine
// context when the last byte lands. The caller is charged only the post
// overhead (plus any post-queue stall).
func (ep *Endpoint) Deposit(p *sim.Proc, dst, size int, kind string, payload any, onDeliver func()) {
	max := ep.layer.cfg.MaxPacket
	for rem := size; ; {
		sz, last := splitStep(rem, max)
		pkt := ep.ni.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size, pkt.Kind = ep.Node, dst, sz, kind
		if last {
			pkt.Payload = payload
			pkt.OnDeliver = onDeliver
		}
		ep.ni.Post(p, pkt)
		if last {
			break
		}
		rem -= sz
	}
}

// DepositBroadcast sends one message that the fabric replicates to all
// other nodes (requires cfg.NIBroadcast hardware): one host post, one
// source DMA, N deliveries. onDeliver runs once per destination.
func (ep *Endpoint) DepositBroadcast(p *sim.Proc, size int, kind string, onDeliver func(dst int)) {
	if size > ep.layer.cfg.MaxPacket {
		panic("vmmc: broadcast larger than one packet")
	}
	if ep.bcastDsts == nil {
		// The destination set (everyone but self) never changes; build
		// it once so repeated broadcasts allocate nothing.
		ep.bcastDsts = make([]int, 0, ep.layer.cfg.Nodes-1)
		for d := 0; d < ep.layer.cfg.Nodes; d++ {
			if d != ep.Node {
				ep.bcastDsts = append(ep.bcastDsts, d)
			}
		}
	}
	tmpl := ep.ni.NewPacket()
	tmpl.Src, tmpl.Dst, tmpl.Size, tmpl.Kind = ep.Node, -1, size, kind
	ep.ni.PostBroadcast(p, tmpl, ep.bcastDsts, onDeliver)
}

// DepositGathered sends size bytes of scattered data as ONE message
// that the destination NI scatters into memory itself (the
// scatter-gather extension, paper §3.3): extra firmware occupancy on
// both NIs, no host involvement at the destination. apply runs in the
// destination NI's firmware context.
func (ep *Endpoint) DepositGathered(p *sim.Proc, dst, size int, kind string, apply func()) {
	c := &ep.layer.cfg.Costs
	max := ep.layer.cfg.MaxPacket
	for rem := size; ; {
		sz, last := splitStep(rem, max)
		pkt := ep.ni.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size, pkt.Kind = ep.Node, dst, sz, kind
		pkt.FwSendExtra = sim.Time(float64(sz) * c.NISGPerByte)
		pkt.FwService = sim.Time(float64(sz) * c.NISGPerByte)
		pkt.FwHandler = sgApplyHandler
		if last && apply != nil {
			// The scatter-gather payload slot carries the apply hook so
			// one shared handler serves every sg packet (no per-packet
			// closure); sg messages have no protocol payload of their own.
			pkt.Payload = apply
		}
		ep.ni.Post(p, pkt)
		if last {
			break
		}
		rem -= sz
	}
}

// sgApplyHandler is the shared firmware handler for scatter-gather
// deposits: it scatters the fragment in NI firmware (the service time is
// on the packet) and runs the apply hook carried by the final fragment.
func sgApplyHandler(_ *nic.NI, pkt *nic.Packet) {
	if f, ok := pkt.Payload.(func()); ok {
		f()
	}
}

// DepositFromEvent is Deposit from engine context (protocol handlers).
func (ep *Endpoint) DepositFromEvent(dst, size int, kind string, payload any, onDeliver func()) {
	max := ep.layer.cfg.MaxPacket
	for rem := size; ; {
		sz, last := splitStep(rem, max)
		pkt := ep.ni.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size, pkt.Kind = ep.Node, dst, sz, kind
		if last {
			pkt.Payload = payload
			pkt.OnDeliver = onDeliver
		}
		ep.ni.PostFromEvent(pkt)
		if last {
			break
		}
		rem -= sz
	}
}

// SendInterrupt sends a message that interrupts a destination host
// processor and is handed to the destination's InterruptSink after the
// interrupt dispatch cost (the Base protocol's delivery mode).
func (ep *Endpoint) SendInterrupt(p *sim.Proc, dst, size int, kind string, payload any) {
	ep.sendInterruptPkts(dst, size, kind, payload, func(pkt *nic.Packet) {
		ep.ni.Post(p, pkt)
	})
}

// SendInterruptFromEvent is SendInterrupt from engine context.
func (ep *Endpoint) SendInterruptFromEvent(dst, size int, kind string, payload any) {
	ep.sendInterruptPkts(dst, size, kind, payload, func(pkt *nic.Packet) {
		ep.ni.PostFromEvent(pkt)
	})
}

func (ep *Endpoint) sendInterruptPkts(dst, size int, kind string, payload any, post func(*nic.Packet)) {
	dstEP := ep.layer.eps[dst]
	max := ep.layer.cfg.MaxPacket
	for rem := size; ; {
		sz, last := splitStep(rem, max)
		pkt := ep.ni.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size, pkt.Kind = ep.Node, dst, sz, kind
		if last {
			pkt.Payload = payload
			pkt.OnDeliver = func() { dstEP.interrupt(Msg{Src: ep.Node, Kind: kind, Size: size, Payload: payload}) }
		}
		post(pkt)
		if last {
			break
		}
		rem -= sz
	}
}

func (ep *Endpoint) interrupt(m Msg) {
	ep.Interrupts++
	if ep.Perturb != nil {
		ep.Perturb()
	}
	sink := ep.InterruptSink
	if sink == nil {
		panic(fmt.Sprintf("vmmc: interrupt-class message %q at node %d with no sink", m.Kind, ep.Node))
	}
	ep.layer.eng.After(ep.layer.cfg.Costs.Interrupt, func() { sink(m) })
}

// RemoteFetch pulls size bytes of exported memory from node home,
// serviced entirely by the home NI's firmware; the calling process
// blocks until the reply is deposited locally. The home node's
// FetchServer produces the data.
func (ep *Endpoint) RemoteFetch(p *sim.Proc, home, size int, kind string, tag any) FetchReply {
	if home == ep.Node {
		panic("vmmc: RemoteFetch from self")
	}
	var reply FetchReply
	var done sim.Flag
	req := ep.ni.NewPacket()
	req.Src, req.Dst, req.Size, req.Kind = ep.Node, home, 16, kind+"-req"
	req.FwService = ep.layer.cfg.Costs.NIFetchService
	req.FwHandler = func(homeNI *nic.NI, _ *nic.Packet) {
		srv := ep.layer.eps[home].FetchServer
		if srv == nil {
			panic(fmt.Sprintf("vmmc: remote fetch at node %d with no FetchServer", home))
		}
		r := srv(FetchReq{Src: ep.Node, Tag: tag, Size: size})
		max := ep.layer.cfg.MaxPacket
		for rem := r.Size; ; {
			sz, last := splitStep(rem, max)
			rp := homeNI.NewPacket()
			rp.Src, rp.Dst, rp.Size, rp.Kind = home, ep.Node, sz, kind+"-reply"
			if last {
				rp.OnDeliver = func() {
					reply = r
					done.Set()
				}
			}
			homeNI.FirmwareSend(rp, true) // data DMA'd from host memory
			if last {
				break
			}
			rem -= sz
		}
	}
	ep.ni.Post(p, req)
	done.Wait(p)
	return reply
}
