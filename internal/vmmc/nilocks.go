package vmmc

import (
	"fmt"

	"genima/internal/nic"
	"genima/internal/sim"
)

// NI lock implementation (the paper's "Network interface locks", §2).
//
// Every lock has a static home NI. The home maintains the tail of a
// distributed waiter chain (lastOwner); an acquire is forwarded to the
// previous tail, whose NI grants the lock — immediately if it is free at
// that NI, or upon the host's release otherwise. The grant carries an
// opaque protocol payload (the lock timestamp) that the NIs store and
// forward but never interpret. No host processor other than the
// requester is ever involved, and no interrupts are taken.

// niLock is home-side state: the current chain tail.
type niLock struct {
	lastOwner int
}

// ownedLock is owner-side state at the NI that currently (or imminently)
// holds the lock.
type ownedLock struct {
	isOwner     bool
	held        bool // host has acquired and not yet released
	payload     any  // valid when isOwner && !held
	payloadSize int
	hasNext     bool
	next        int
}

type acquireWait struct {
	flag    sim.Flag
	payload any
}

// pendingAcquires tracks the (single) outstanding remote acquire per
// lock at this node; the protocol layer guarantees one per node.
func (ep *Endpoint) pendingAcquire(id int) *acquireWait {
	if ep.acq == nil {
		ep.acq = map[int]*acquireWait{}
	}
	w := ep.acq[id]
	if w == nil {
		w = &acquireWait{}
		ep.acq[id] = w
	}
	return w
}

func (ep *Endpoint) homeLock(id int) *niLock {
	l := ep.locks[id]
	if l == nil {
		l = &niLock{lastOwner: ep.Node}
		ep.locks[id] = l
		// The home node's NI owns every lock it homes, free, initially.
		ep.owned[id] = &ownedLock{isOwner: true}
	}
	return l
}

func (ep *Endpoint) ownedLockState(id int) *ownedLock {
	ol := ep.owned[id]
	if ol == nil {
		ol = &ownedLock{}
		ep.owned[id] = ol
	}
	return ol
}

// lockHome returns the static home node of a lock.
func (l *Layer) lockHome(id int) int { return id % l.cfg.Nodes }

const lockMsgSize = 16

// NILockAcquire acquires lock id through the NI firmware, blocking the
// calling process until the grant is deposited locally. It returns the
// opaque payload stored by the last releaser (nil for first acquire).
// The caller must ensure at most one outstanding acquire per (node, lock).
func (ep *Endpoint) NILockAcquire(p *sim.Proc, id int) any {
	home := ep.layer.lockHome(id)
	w := ep.pendingAcquire(id)
	if w.flag.IsSet() {
		panic(fmt.Sprintf("vmmc: concurrent NILockAcquire of lock %d at node %d", id, ep.Node))
	}

	svc := ep.layer.cfg.Costs.NILockService
	if home == ep.Node {
		// Local home: the request is a host->NI post, no network hop.
		p.Sleep(ep.layer.cfg.Costs.PostOverhead)
		ep.ni.FirmwareRun(svc, func() {
			l := ep.homeLock(id)
			prev := l.lastOwner
			l.lastOwner = ep.Node
			ep.fwHandoff(prev, id, ep.Node)
		})
	} else {
		req := ep.ni.NewPacket()
		req.Src, req.Dst, req.Size, req.Kind = ep.Node, home, lockMsgSize, "ni-lock-acq"
		req.FwService = svc
		req.FwHandler = func(homeNI *nic.NI, _ *nic.Packet) {
			hep := ep.layer.eps[home]
			l := hep.homeLock(id)
			prev := l.lastOwner
			l.lastOwner = ep.Node
			hep.fwHandoff(prev, id, ep.Node)
		}
		ep.ni.Post(p, req)
	}

	w.flag.Wait(p)
	payload := w.payload
	delete(ep.acq, id)
	return payload
}

// fwHandoff runs at the home NI: tell the previous chain tail to hand
// the lock to requester. Runs in engine context on node ep.Node (home).
func (ep *Endpoint) fwHandoff(prevOwner, id, requester int) {
	if prevOwner == ep.Node {
		// Previous owner's NI is this NI: handle locally.
		ep.fwReceiveHandoff(id, requester)
		return
	}
	fwd := ep.ni.NewPacket()
	fwd.Src, fwd.Dst, fwd.Size, fwd.Kind = ep.Node, prevOwner, lockMsgSize, "ni-lock-fwd"
	fwd.FwService = ep.layer.cfg.Costs.NILockService
	fwd.FwHandler = func(_ *nic.NI, _ *nic.Packet) {
		ep.layer.eps[prevOwner].fwReceiveHandoff(id, requester)
	}
	ep.ni.FirmwareSend(fwd, false)
}

// fwReceiveHandoff runs at the (previous) owner NI when the home chains
// a new requester to it.
func (ep *Endpoint) fwReceiveHandoff(id, requester int) {
	ol := ep.ownedLockState(id)
	if ol.isOwner && !ol.held {
		ep.fwGrant(id, requester, ol)
		return
	}
	// Lock still held by the host here, or ownership is still in
	// flight to this NI; remember the single chained waiter.
	if ol.hasNext {
		panic(fmt.Sprintf("vmmc: lock %d at node %d already has a chained waiter", id, ep.Node))
	}
	ol.hasNext = true
	ol.next = requester
}

// fwGrant transfers ownership (and the payload) from this NI to
// requester's NI, which deposits the grant into its host's memory.
func (ep *Endpoint) fwGrant(id, requester int, ol *ownedLock) {
	payload, psize := ol.payload, ol.payloadSize
	ol.isOwner = false
	ol.payload = nil

	deliver := func(rep *Endpoint) {
		rol := rep.ownedLockState(id)
		rol.isOwner = true
		rol.held = true
		rep.ni.DepositLocal(lockMsgSize+psize, func() {
			w := rep.pendingAcquire(id)
			w.payload = payload
			w.flag.Set()
		})
	}

	if requester == ep.Node {
		// Re-acquire by the same node: grant locally, no network hop.
		ol.isOwner = true
		ol.held = true
		ep.ni.DepositLocal(lockMsgSize+psize, func() {
			w := ep.pendingAcquire(id)
			w.payload = payload
			w.flag.Set()
		})
		return
	}
	grant := ep.ni.NewPacket()
	grant.Src, grant.Dst, grant.Size, grant.Kind = ep.Node, requester, lockMsgSize+psize, "ni-lock-grant"
	grant.FwService = ep.layer.cfg.Costs.NILockService
	grant.FwHandler = func(_ *nic.NI, _ *nic.Packet) {
		deliver(ep.layer.eps[requester])
	}
	ep.ni.FirmwareSend(grant, false)
}

// NILockRelease releases lock id, storing payload (the protocol
// timestamp) with it. The host only posts to its own NI; if a waiter is
// chained, the NI hands the lock over without host involvement.
func (ep *Endpoint) NILockRelease(p *sim.Proc, id int, payload any, payloadSize int) {
	p.Sleep(ep.layer.cfg.Costs.PostOverhead)
	ep.ni.FirmwareRun(ep.layer.cfg.Costs.NILockService, func() {
		ol := ep.ownedLockState(id)
		if !ol.isOwner || !ol.held {
			panic(fmt.Sprintf("vmmc: NILockRelease of lock %d at node %d not held (owner=%v held=%v)",
				id, ep.Node, ol.isOwner, ol.held))
		}
		ol.held = false
		ol.payload = payload
		ol.payloadSize = payloadSize
		if ol.hasNext {
			next := ol.next
			ol.hasNext = false
			ep.fwGrant(id, next, ol)
		}
	})
}
