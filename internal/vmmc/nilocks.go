package vmmc

import (
	"fmt"

	"genima/internal/nic"
	"genima/internal/sim"
)

// NI lock implementation (the paper's "Network interface locks", §2).
//
// Every lock has a static home NI. The home maintains the tail of a
// distributed waiter chain (lastOwner); an acquire is forwarded to the
// previous tail, whose NI grants the lock — immediately if it is free at
// that NI, or upon the host's release otherwise. The grant carries an
// opaque protocol payload (the lock timestamp) that the NIs store and
// forward but never interpret. No host processor other than the
// requester is ever involved, and no interrupts are taken.

// niLock is home-side state: the current chain tail.
type niLock struct {
	lastOwner int
}

// ownedLock is owner-side state at the NI that currently (or imminently)
// holds the lock.
type ownedLock struct {
	isOwner     bool
	held        bool // host has acquired and not yet released
	payload     any  // valid when isOwner && !held
	payloadSize int
	hasNext     bool
	next        int
}

type acquireWait struct {
	flag    sim.Flag
	payload any
}

// pendingAcquires tracks the (single) outstanding remote acquire per
// lock at this node; the protocol layer guarantees one per node. The
// record persists across acquires (reset, not deleted, when consumed).
func (ep *Endpoint) pendingAcquire(id int) *acquireWait {
	if ep.acq == nil {
		ep.acq = map[int]*acquireWait{}
	}
	w := ep.acq[id]
	if w == nil {
		w = &acquireWait{}
		ep.acq[id] = w
	}
	return w
}

// lockOpKind selects a lockOp's action.
type lockOpKind int

const (
	opAcqHome lockOpKind = iota
	opRelease
	opGrantDeposit
)

// lockOp is a pooled typed completion record (sim.Handler) for the
// NI-lock firmware and DMA steps, replacing the per-operation closure
// chain. The record is released at the start of Run: the remaining work
// may start another lock operation on the same endpoint, which then
// reuses it.
type lockOp struct {
	ep      *Endpoint
	kind    lockOpKind
	id      int
	payload any
	psize   int
}

func (o *lockOp) Run(_, _ sim.Time) {
	ep, id, kind := o.ep, o.id, o.kind
	payload, psize := o.payload, o.psize
	o.payload = nil
	ep.putLockOp(o)
	switch kind {
	case opAcqHome:
		// Home-local acquire reached the firmware: chain and hand off.
		l := ep.homeLock(id)
		prev := l.lastOwner
		l.lastOwner = ep.Node
		ep.fwHandoff(prev, id, ep.Node)
	case opRelease:
		ol := ep.ownedLockState(id)
		if !ol.isOwner || !ol.held {
			panic(fmt.Sprintf("vmmc: NILockRelease of lock %d at node %d not held (owner=%v held=%v)",
				id, ep.Node, ol.isOwner, ol.held))
		}
		ol.held = false
		ol.payload = payload
		ol.payloadSize = psize
		if ol.hasNext {
			next := ol.next
			ol.hasNext = false
			ep.fwGrant(id, next, ol)
		}
	case opGrantDeposit:
		// The grant DMA landed in host memory: wake the acquirer.
		w := ep.pendingAcquire(id)
		w.payload = payload
		w.flag.Set()
	}
}

func (ep *Endpoint) getLockOp() *lockOp {
	if k := len(ep.lockOpFree); k > 0 {
		o := ep.lockOpFree[k-1]
		ep.lockOpFree[k-1] = nil
		ep.lockOpFree = ep.lockOpFree[:k-1]
		return o
	}
	return &lockOp{ep: ep}
}

func (ep *Endpoint) putLockOp(o *lockOp) {
	ep.lockOpFree = append(ep.lockOpFree, o)
}

func (ep *Endpoint) homeLock(id int) *niLock {
	l := ep.locks[id]
	if l == nil {
		l = &niLock{lastOwner: ep.Node}
		ep.locks[id] = l
		// The home node's NI owns every lock it homes, free, initially.
		ep.owned[id] = &ownedLock{isOwner: true}
	}
	return l
}

func (ep *Endpoint) ownedLockState(id int) *ownedLock {
	ol := ep.owned[id]
	if ol == nil {
		ol = &ownedLock{}
		ep.owned[id] = ol
	}
	return ol
}

// lockHome returns the static home node of a lock.
func (l *Layer) lockHome(id int) int { return id % l.cfg.Nodes }

const lockMsgSize = 16

// NILockAcquire acquires lock id through the NI firmware, blocking the
// calling process until the grant is deposited locally. It returns the
// opaque payload stored by the last releaser (nil for first acquire).
// The caller must ensure at most one outstanding acquire per (node, lock).
func (ep *Endpoint) NILockAcquire(p *sim.Proc, id int) any {
	home := ep.layer.lockHome(id)
	w := ep.pendingAcquire(id)
	if w.flag.IsSet() {
		panic(fmt.Sprintf("vmmc: concurrent NILockAcquire of lock %d at node %d", id, ep.Node))
	}

	svc := ep.layer.cfg.Costs.NILockService
	if home == ep.Node {
		// Local home: the request is a host->NI post, no network hop.
		p.Sleep(ep.layer.cfg.Costs.PostOverhead)
		op := ep.getLockOp()
		op.kind, op.id = opAcqHome, id
		ep.ni.FirmwareRunHandler(svc, op)
	} else {
		req := ep.ni.NewPacket()
		req.Src, req.Dst, req.Size, req.Kind = ep.Node, home, lockMsgSize, "ni-lock-acq"
		req.Meta = id
		req.FwService = svc
		req.FwHandler = ep.layer.lockAcqFw
		ep.ni.Post(p, req)
	}

	w.flag.Wait(p)
	payload := w.payload
	w.payload = nil
	w.flag.Reset()
	return payload
}

// Shared firmware handlers for the three NI-lock packet kinds, bound
// once per Layer at construction: the lock id rides pkt.Meta (and the
// requester pkt.Meta2 on forwards), so one long-lived method value
// replaces a closure per packet. Each runs on the destination NI in
// engine context.

// fwLockAcq services "ni-lock-acq" at the home NI: chain the requester
// (pkt.Src) and hand the lock off from the previous tail.
func (l *Layer) fwLockAcq(_ *nic.NI, pkt *nic.Packet) {
	hep := l.eps[pkt.Dst]
	lk := hep.homeLock(pkt.Meta)
	prev := lk.lastOwner
	lk.lastOwner = pkt.Src
	hep.fwHandoff(prev, pkt.Meta, pkt.Src)
}

// fwLockFwd services "ni-lock-fwd" at the previous owner: Meta is the
// lock id, Meta2 the requester.
func (l *Layer) fwLockFwd(_ *nic.NI, pkt *nic.Packet) {
	l.eps[pkt.Dst].fwReceiveHandoff(pkt.Meta, pkt.Meta2)
}

// fwLockGrant services "ni-lock-grant" at the requester: ownership
// arrives with the opaque payload in pkt.Payload (pkt.Size is the full
// grant size, lockMsgSize + payload size).
func (l *Layer) fwLockGrant(_ *nic.NI, pkt *nic.Packet) {
	rep := l.eps[pkt.Dst]
	rol := rep.ownedLockState(pkt.Meta)
	rol.isOwner = true
	rol.held = true
	rep.depositGrant(pkt.Meta, pkt.Payload, pkt.Size)
}

// fwHandoff runs at the home NI: tell the previous chain tail to hand
// the lock to requester. Runs in engine context on node ep.Node (home).
func (ep *Endpoint) fwHandoff(prevOwner, id, requester int) {
	if prevOwner == ep.Node {
		// Previous owner's NI is this NI: handle locally.
		ep.fwReceiveHandoff(id, requester)
		return
	}
	fwd := ep.ni.NewPacket()
	fwd.Src, fwd.Dst, fwd.Size, fwd.Kind = ep.Node, prevOwner, lockMsgSize, "ni-lock-fwd"
	fwd.Meta, fwd.Meta2 = id, requester
	fwd.FwService = ep.layer.cfg.Costs.NILockService
	fwd.FwHandler = ep.layer.lockFwdFw
	ep.ni.FirmwareSend(fwd, false)
}

// fwReceiveHandoff runs at the (previous) owner NI when the home chains
// a new requester to it.
func (ep *Endpoint) fwReceiveHandoff(id, requester int) {
	ol := ep.ownedLockState(id)
	if ol.isOwner && !ol.held {
		ep.fwGrant(id, requester, ol)
		return
	}
	// Lock still held by the host here, or ownership is still in
	// flight to this NI; remember the single chained waiter.
	if ol.hasNext {
		panic(fmt.Sprintf("vmmc: lock %d at node %d already has a chained waiter", id, ep.Node))
	}
	ol.hasNext = true
	ol.next = requester
}

// fwGrant transfers ownership (and the payload) from this NI to
// requester's NI, which deposits the grant into its host's memory.
func (ep *Endpoint) fwGrant(id, requester int, ol *ownedLock) {
	payload, psize := ol.payload, ol.payloadSize
	ol.isOwner = false
	ol.payload = nil

	if requester == ep.Node {
		// Re-acquire by the same node: grant locally, no network hop.
		ol.isOwner = true
		ol.held = true
		ep.depositGrant(id, payload, lockMsgSize+psize)
		return
	}
	grant := ep.ni.NewPacket()
	grant.Src, grant.Dst, grant.Size, grant.Kind = ep.Node, requester, lockMsgSize+psize, "ni-lock-grant"
	grant.Meta = id
	grant.Payload = payload
	grant.FwService = ep.layer.cfg.Costs.NILockService
	grant.FwHandler = ep.layer.lockGrantFw
	ep.ni.FirmwareSend(grant, false)
}

// depositGrant DMAs a received (or locally re-acquired) grant into this
// host's memory; the pooled completion record wakes the acquirer.
func (ep *Endpoint) depositGrant(id int, payload any, size int) {
	op := ep.getLockOp()
	op.kind, op.id, op.payload = opGrantDeposit, id, payload
	ep.ni.DepositLocalHandler(size, op)
}

// NILockRelease releases lock id, storing payload (the protocol
// timestamp) with it. The host only posts to its own NI; if a waiter is
// chained, the NI hands the lock over without host involvement.
func (ep *Endpoint) NILockRelease(p *sim.Proc, id int, payload any, payloadSize int) {
	p.Sleep(ep.layer.cfg.Costs.PostOverhead)
	op := ep.getLockOp()
	op.kind, op.id, op.payload, op.psize = opRelease, id, payload, payloadSize
	ep.ni.FirmwareRunHandler(ep.layer.cfg.Costs.NILockService, op)
}
