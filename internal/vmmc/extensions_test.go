package vmmc

import (
	"testing"

	"genima/internal/sim"
)

func TestDepositBroadcastReachesEveryNode(t *testing.T) {
	eng, l, _ := newLayer(6)
	var got []int
	eng.Go("s", func(p *sim.Proc) {
		l.Endpoint(2).DepositBroadcast(p, 64, "notice", func(dst int) {
			got = append(got, dst)
		})
	})
	eng.RunUntilQuiet()
	if len(got) != 5 {
		t.Fatalf("delivered to %d nodes, want 5 (%v)", len(got), got)
	}
	seen := map[int]bool{}
	for _, d := range got {
		if d == 2 {
			t.Error("broadcast delivered to its own sender")
		}
		if seen[d] {
			t.Errorf("duplicate delivery to %d", d)
		}
		seen[d] = true
	}
}

func TestDepositBroadcastCheaperForSender(t *testing.T) {
	// One post instead of N-1: the sender-side cost must not scale
	// with the node count.
	cost := func(nodes int, broadcast bool) sim.Time {
		eng, l, _ := newLayer(nodes)
		var dt sim.Time
		eng.Go("s", func(p *sim.Proc) {
			t0 := p.Now()
			if broadcast {
				l.Endpoint(0).DepositBroadcast(p, 64, "n", nil)
			} else {
				for d := 1; d < nodes; d++ {
					l.Endpoint(0).Deposit(p, d, 64, "n", nil, nil)
				}
			}
			dt = p.Now() - t0
		})
		eng.RunUntilQuiet()
		return dt
	}
	if b, u := cost(8, true), cost(8, false); b >= u {
		t.Errorf("broadcast sender cost %d not below unicast %d", b, u)
	}
}

func TestDepositGatheredHandledInFirmware(t *testing.T) {
	eng, l, _ := newLayer(2)
	applied := false
	eng.Go("s", func(p *sim.Proc) {
		l.Endpoint(0).DepositGathered(p, 1, 600, "sg", func() { applied = true })
	})
	eng.RunUntilQuiet()
	if !applied {
		t.Fatal("gathered deposit never applied")
	}
	if l.Endpoint(1).Interrupts != 0 {
		t.Error("gathered deposit interrupted the destination host")
	}
}

func TestDepositGatheredMultiPacket(t *testing.T) {
	eng, l, _ := newLayer(2)
	applied := 0
	eng.Go("s", func(p *sim.Proc) {
		l.Endpoint(0).DepositGathered(p, 1, 10000, "sg", func() { applied++ })
	})
	eng.RunUntilQuiet()
	if applied != 1 {
		t.Fatalf("apply ran %d times, want exactly once", applied)
	}
	if got := l.Monitor().TotalPackets(); got != 3 {
		t.Errorf("packets = %d, want 3 (10000 B / 4 KB)", got)
	}
}

func TestDepositGatheredSlowerPerByteThanPlain(t *testing.T) {
	// Scatter-gather charges NI occupancy per byte: a single gathered
	// message must take longer end-to-end than a plain deposit of the
	// same size (its win is in message count, not latency).
	timeOf := func(gathered bool) sim.Time {
		eng, l, _ := newLayer(2)
		var done sim.Time
		eng.Go("s", func(p *sim.Proc) {
			if gathered {
				l.Endpoint(0).DepositGathered(p, 1, 4096, "x", func() { done = eng.Now() })
			} else {
				l.Endpoint(0).Deposit(p, 1, 4096, "x", nil, func() { done = eng.Now() })
			}
		})
		eng.RunUntilQuiet()
		return done
	}
	if g, pl := timeOf(true), timeOf(false); g <= pl {
		t.Errorf("gathered latency %d not above plain %d (SG must cost NI occupancy)", g, pl)
	}
}

func TestRemoteFetchFromSelfPanics(t *testing.T) {
	eng, l, _ := newLayer(2)
	eng.Go("s", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("self-fetch did not panic")
			}
		}()
		l.Endpoint(1).RemoteFetch(p, 1, 64, "x-req", "x-reply", 0)
	})
	eng.RunUntilQuiet()
}

func TestInterruptWithoutSinkPanics(t *testing.T) {
	eng, l, _ := newLayer(2)
	defer func() {
		if recover() == nil {
			t.Error("interrupt without sink did not panic")
		}
	}()
	eng.Go("s", func(p *sim.Proc) {
		l.Endpoint(0).SendInterrupt(p, 1, 16, MsgKind(99), nil)
	})
	eng.RunUntilQuiet()
}

// splitAll expands the arithmetic splitStep iteration into the full
// packet-size list, the way every send loop walks it.
func splitAll(size, max int) []int {
	var out []int
	for rem := size; ; {
		sz, last := splitStep(rem, max)
		out = append(out, sz)
		if last {
			return out
		}
		rem -= sz
	}
}

func TestPacketSplitBoundaries(t *testing.T) {
	_, _, cfg := newLayer(2)
	cases := map[int][]int{
		0:                 {0}, // zero-byte message still sends one packet
		1:                 {1},
		cfg.MaxPacket:     {cfg.MaxPacket},
		cfg.MaxPacket + 1: {cfg.MaxPacket, 1},
		3 * cfg.MaxPacket: {cfg.MaxPacket, cfg.MaxPacket, cfg.MaxPacket},
	}
	for size, want := range cases {
		got := splitAll(size, cfg.MaxPacket)
		if len(got) != len(want) {
			t.Errorf("splitAll(%d) = %v, want %v", size, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("splitAll(%d) = %v, want %v", size, got, want)
				break
			}
		}
	}
}
