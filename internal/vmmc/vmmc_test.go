package vmmc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"genima/internal/sim"
	"genima/internal/topo"
)

func newLayer(nodes int) (*sim.Engine, *Layer, topo.Config) {
	eng := sim.NewEngine()
	cfg := topo.Default()
	cfg.Nodes = nodes
	return eng, New(eng, &cfg), cfg
}

func TestDepositDelivers(t *testing.T) {
	eng, l, _ := newLayer(4)
	var got any
	eng.Go("s", func(p *sim.Proc) {
		l.Endpoint(0).Deposit(p, 2, 64, "notice", "hello", func() { got = "hello" })
	})
	eng.RunUntilQuiet()
	if got != "hello" {
		t.Fatal("deposit not delivered")
	}
}

func TestDepositSplitsLargeMessages(t *testing.T) {
	eng, l, _ := newLayer(2)
	delivered := false
	eng.Go("s", func(p *sim.Proc) {
		l.Endpoint(0).Deposit(p, 1, 10000, "big", nil, func() { delivered = true })
	})
	eng.RunUntilQuiet()
	if !delivered {
		t.Fatal("large deposit not delivered")
	}
	// 10000 bytes over 4096-byte packets = 3 packets, all large except the tail.
	if got := l.Monitor().TotalPackets(); got != 3 {
		t.Fatalf("packets = %d, want 3", got)
	}
}

func TestInterruptDelivery(t *testing.T) {
	eng, l, cfg := newLayer(2)
	var sunk Msg
	var sunkAt, deliveredAt sim.Time
	perturbs := 0
	l.Endpoint(1).InterruptSink = func(m Msg) { sunk = m; sunkAt = eng.Now() }
	l.Endpoint(1).Perturb = func() { perturbs++; deliveredAt = eng.Now() }
	eng.Go("s", func(p *sim.Proc) {
		l.Endpoint(0).SendInterrupt(p, 1, 32, MsgPageReq, 42)
	})
	eng.RunUntilQuiet()
	if sunk.Payload != 42 || sunk.Src != 0 || sunk.Kind != MsgPageReq {
		t.Fatalf("sunk = %+v", sunk)
	}
	if got := sunkAt - deliveredAt; got != cfg.Costs.Interrupt {
		t.Errorf("interrupt dispatch delay = %d, want %d", got, cfg.Costs.Interrupt)
	}
	if perturbs != 1 {
		t.Errorf("perturbs = %d, want 1", perturbs)
	}
	if l.Endpoint(1).Interrupts != 1 {
		t.Errorf("interrupt count = %d", l.Endpoint(1).Interrupts)
	}
}

func TestRemoteFetchRoundTrip(t *testing.T) {
	eng, l, _ := newLayer(2)
	l.Endpoint(1).FetchServer = func(req FetchReq) FetchReply {
		if req.Tag != 7 || req.Src != 0 {
			t.Errorf("req = %+v", req)
		}
		return FetchReply{Payload: "data", Size: 4096}
	}
	var got FetchReply
	var at sim.Time
	eng.Go("s", func(p *sim.Proc) {
		got = l.Endpoint(0).RemoteFetch(p, 1, 4096, "page-req", "page-reply", 7)
		at = p.Now()
	})
	eng.RunUntilQuiet()
	if got.Payload != "data" {
		t.Fatalf("fetch reply = %+v", got)
	}
	// The paper measures ~110 µs for a 4 KB remote-fetch page operation.
	lo, hi := sim.Micro(90), sim.Micro(140)
	if at < lo || at > hi {
		t.Errorf("remote fetch of 4KB took %.1f µs, want ~110 µs", float64(at)/1000)
	}
}

func TestRemoteFetchOneWord(t *testing.T) {
	eng, l, _ := newLayer(2)
	l.Endpoint(1).FetchServer = func(req FetchReq) FetchReply {
		return FetchReply{Payload: uint64(7), Size: 8}
	}
	var at sim.Time
	eng.Go("s", func(p *sim.Proc) {
		l.Endpoint(0).RemoteFetch(p, 1, 8, "word-req", "word-reply", 0)
		at = p.Now()
	})
	eng.RunUntilQuiet()
	// Paper: ~40 µs for a one-word remote fetch.
	lo, hi := sim.Micro(30), sim.Micro(55)
	if at < lo || at > hi {
		t.Errorf("one-word remote fetch took %.1f µs, want ~40 µs", float64(at)/1000)
	}
}

func TestNILockBasicAcquireRelease(t *testing.T) {
	eng, l, _ := newLayer(4)
	var got any
	eng.Go("n1", func(p *sim.Proc) {
		ep := l.Endpoint(1)
		pl := ep.NILockAcquire(p, 5) // lock 5 homed at node 1
		if pl != nil {
			t.Errorf("first acquire payload = %v, want nil", pl)
		}
		ep.NILockRelease(p, 5, "ts-1", 32)
		got = ep.NILockAcquire(p, 5)
		ep.NILockRelease(p, 5, "ts-2", 32)
	})
	eng.RunUntilQuiet()
	if got != "ts-1" {
		t.Fatalf("reacquire payload = %v, want ts-1", got)
	}
}

func TestNILockHandoffBetweenNodes(t *testing.T) {
	eng, l, _ := newLayer(4)
	var order []int
	var payloads []any
	for n := 0; n < 4; n++ {
		n := n
		eng.Go("node", func(p *sim.Proc) {
			p.Sleep(sim.Time(n) * sim.Micro(10)) // stagger arrival
			ep := l.Endpoint(n)
			pl := ep.NILockAcquire(p, 9)
			order = append(order, n)
			payloads = append(payloads, pl)
			p.Sleep(sim.Micro(50)) // critical section
			ep.NILockRelease(p, 9, n, 8)
		})
	}
	eng.RunUntilQuiet()
	if len(order) != 4 {
		t.Fatalf("only %d acquires completed: %v", len(order), order)
	}
	// Each grant carries the previous holder's payload.
	for i := 1; i < 4; i++ {
		if payloads[i] != order[i-1] {
			t.Errorf("acquire %d payload = %v, want %v (prev holder)", i, payloads[i], order[i-1])
		}
	}
}

func TestNILockNoHostInterrupts(t *testing.T) {
	eng, l, _ := newLayer(4)
	for n := 0; n < 4; n++ {
		n := n
		eng.Go("node", func(p *sim.Proc) {
			ep := l.Endpoint(n)
			for i := 0; i < 5; i++ {
				ep.NILockAcquire(p, 3)
				p.Sleep(sim.Micro(5))
				ep.NILockRelease(p, 3, nil, 8)
			}
		})
	}
	eng.RunUntilQuiet()
	for n := 0; n < 4; n++ {
		if l.Endpoint(n).Interrupts != 0 {
			t.Errorf("node %d took %d interrupts during NI locking", n, l.Endpoint(n).Interrupts)
		}
	}
}

// Property: NI locks provide mutual exclusion and every acquire
// eventually completes, for random nodes/hold times.
func TestNILockMutualExclusionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 2 + rng.Intn(6)
		eng := sim.NewEngine()
		cfg := topo.Default()
		cfg.Nodes = nodes
		l := New(eng, &cfg)
		inCS := 0
		violations := 0
		completed := 0
		total := 0
		for n := 0; n < nodes; n++ {
			n := n
			iters := 1 + rng.Intn(4)
			hold := sim.Time(rng.Intn(100)+1) * sim.Microsecond
			delay := sim.Time(rng.Intn(50)) * sim.Microsecond
			total += iters
			eng.Go("node", func(p *sim.Proc) {
				ep := l.Endpoint(n)
				p.Sleep(delay)
				for i := 0; i < iters; i++ {
					ep.NILockAcquire(p, 1)
					inCS++
					if inCS > 1 {
						violations++
					}
					p.Sleep(hold)
					inCS--
					ep.NILockRelease(p, 1, nil, 8)
				}
				completed += iters
			})
		}
		eng.RunUntilQuiet()
		return violations == 0 && completed == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNILockCheaperThanInterruptPath(t *testing.T) {
	// An NI lock round trip (acquire from a different node than home)
	// must beat two interrupt costs — that is the whole point.
	eng, l, cfg := newLayer(4)
	var took sim.Time
	eng.Go("n2", func(p *sim.Proc) {
		t0 := p.Now()
		l.Endpoint(2).NILockAcquire(p, 1) // homed at node 1
		took = p.Now() - t0
	})
	eng.RunUntilQuiet()
	if took == 0 {
		t.Fatal("acquire did not complete")
	}
	if took > 2*cfg.Costs.Interrupt {
		t.Errorf("NI lock acquire took %.1f µs, slower than 2 interrupts (%.1f µs)",
			float64(took)/1000, float64(2*cfg.Costs.Interrupt)/1000)
	}
}
