package genima_test

// Fault-injection integration tests: with faults on, runs must stay
// deterministic (same Config + seed => byte-identical traces and
// identical Results) and the reliable-delivery layer must fully mask
// the injected faults (every app still validates against its
// sequential reference).

import (
	"testing"

	genima "genima"
)

func faultedConfig(rate float64, seed uint64) genima.Config {
	cfg := genima.DefaultConfig()
	cfg.Faults = genima.FaultMix(rate, seed)
	return cfg
}

func TestFaultedRunDeterministic(t *testing.T) {
	cfg := faultedConfig(0.01, 42)
	h1 := traceHash(t, "fft", genima.GeNIMA, cfg)
	h2 := traceHash(t, "fft", genima.GeNIMA, cfg)
	if h1 != h2 {
		t.Errorf("same config + fault seed produced different traces:\n%s\n%s", h1, h2)
	}
}

func TestFaultedRunSeedChangesTrace(t *testing.T) {
	h1 := traceHash(t, "fft", genima.GeNIMA, faultedConfig(0.01, 42))
	h2 := traceHash(t, "fft", genima.GeNIMA, faultedConfig(0.01, 43))
	if h1 == h2 {
		t.Error("different fault seeds produced identical traces; the plan is ignoring its seed")
	}
}

func TestFaultedRunInjectsAndRecovers(t *testing.T) {
	a, _ := appByName(t, "fft")
	cfg := faultedConfig(0.01, 42)
	res, _, err := genima.Run(cfg, genima.GeNIMA, a)
	if err != nil {
		t.Fatal(err)
	}
	f := &res.Faults
	if f.DropsInjected == 0 {
		t.Error("1% drop plan injected no drops")
	}
	if f.RetxSent == 0 {
		t.Error("drops were injected but nothing was retransmitted")
	}
	if f.AcksSent+f.PiggybackAcks == 0 {
		t.Error("no acks were ever sent")
	}
	if f.Recovered == 0 || f.MeanRecovery() <= 0 {
		t.Errorf("no recovery recorded: %+v", f)
	}
}

// TestLadderValidatesUnderFaults is the tentpole's headline check: the
// full protocol ladder still produces bit-correct application output at
// a 1% drop rate (with dup/delay/corruption mixed in), because the NI
// firmware masks every injected fault below the VMMC line.
func TestLadderValidatesUnderFaults(t *testing.T) {
	names := []string{"fft", "lu", "water-nsq"}
	if !testing.Short() {
		names = append(names, "ocean", "radix", "barnes", "barnes-sp",
			"volrend", "raytrace", "water-sp")
	}
	cfg := faultedConfig(0.01, 7)
	for _, name := range names {
		a, _ := appByName(t, name)
		_, seqWS, err := genima.RunSequential(cfg, a)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		for _, proto := range genima.Protocols() {
			res, ws, err := genima.Run(cfg, proto, a)
			if err != nil {
				t.Fatalf("%s/%v under faults: %v", name, proto, err)
			}
			if err := genima.Validate(a, ws, seqWS); err != nil {
				t.Errorf("%s/%v does not validate at 1%% drop: %v", name, proto, err)
			}
			if !res.Faults.Any() {
				t.Errorf("%s/%v saw no fault activity despite 1%% plan", name, proto)
			}
		}
	}
}

// TestFaultedBroadcastUnderDownedLink exercises broadcast fan-out while
// one destination's in-link is down for a window: the downed
// destination recovers via unicast retransmission after the window
// lifts, and output still validates.
func TestFaultedBroadcastUnderDownedLink(t *testing.T) {
	cfg := genima.DefaultConfig()
	cfg.Faults = genima.FaultPlan{
		Enabled: true,
		Seed:    11,
		Down: []genima.DownWindow{
			{Node: 1, Dir: genima.InOnly, From: 0, Until: 2_000_000},
		},
	}
	a, _ := appByName(t, "fft")
	res, ws, err := genima.Run(cfg, genima.GeNIMA, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.DownDrops == 0 {
		t.Error("2 ms down window on node 1's in-link dropped nothing")
	}
	if res.Faults.RetxSent == 0 {
		t.Error("down window caused no retransmissions")
	}
	_, seqWS, err := genima.RunSequential(cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := genima.Validate(a, ws, seqWS); err != nil {
		t.Errorf("output does not validate after link-down recovery: %v", err)
	}
}
