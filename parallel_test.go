package genima_test

// Determinism contract of the parallel suite runner: for the same
// configuration, Workers=N must produce byte-identical results to the
// legacy serial runner (Workers=1) — same virtual end times, same event
// counts, same rendered tables. `go test -race` exercises the pool's
// sharing discipline.

import (
	"testing"

	genima "genima"
)

func suiteForWorkers(t *testing.T, workers int) *genima.SuiteResults {
	t.Helper()
	cfg := genima.DefaultConfig()
	s, err := genima.RunSuite(cfg, genima.SuiteOptions{
		Scale:    genima.TestScale,
		Hardware: true,
		Workers:  workers,
	})
	if err != nil {
		t.Fatalf("RunSuite(Workers=%d): %v", workers, err)
	}
	return s
}

func TestParallelSuiteMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite ladder in -short mode")
	}
	serial := suiteForWorkers(t, 1)
	par := suiteForWorkers(t, 4)

	for i, e := range serial.Entries {
		if a, b := serial.Seq[i], par.Seq[i]; a.Elapsed != b.Elapsed || a.Events != b.Events {
			t.Errorf("%s seq: serial (%d ns, %d ev) != parallel (%d ns, %d ev)",
				e.PaperName, a.Elapsed, a.Events, b.Elapsed, b.Events)
		}
		if a, b := serial.HW[i], par.HW[i]; a.Elapsed != b.Elapsed || a.Events != b.Events {
			t.Errorf("%s hw: serial (%d ns, %d ev) != parallel (%d ns, %d ev)",
				e.PaperName, a.Elapsed, a.Events, b.Elapsed, b.Events)
		}
		for _, k := range genima.Protocols() {
			a, b := serial.SVM[k][i], par.SVM[k][i]
			if a.Elapsed != b.Elapsed || a.Events != b.Events {
				t.Errorf("%s on %v: serial (%d ns, %d ev) != parallel (%d ns, %d ev)",
					e.PaperName, k, a.Elapsed, a.Events, b.Elapsed, b.Events)
			}
			if a.Acct != b.Acct {
				t.Errorf("%s on %v: accounting differs between serial and parallel", e.PaperName, k)
			}
		}
	}

	renders := []struct {
		name        string
		serial, par string
	}{
		{"Figure1", serial.Figure1().String(), par.Figure1().String()},
		{"Figure2", serial.Figure2().String(), par.Figure2().String()},
		{"Figure3", serial.Figure3().String(), par.Figure3().String()},
		{"Figure4", serial.Figure4().String(), par.Figure4().String()},
		{"Table1", serial.Table1().String(), par.Table1().String()},
		{"Table2", serial.Table2().String(), par.Table2().String()},
		{"Table3", serial.Table3().String(), par.Table3().String()},
		{"Table4", serial.Table4().String(), par.Table4().String()},
	}
	for _, r := range renders {
		if r.serial != r.par {
			t.Errorf("%s renders differently under Workers=4:\nserial:\n%s\nparallel:\n%s",
				r.name, r.serial, r.par)
		}
	}
}

// TestParallelSuiteVerifies runs the parallel runner with cross-run
// validation on: every protocol run's shared memory must match the
// sequential reference computed in phase 1.
func TestParallelSuiteVerifies(t *testing.T) {
	cfg := genima.DefaultConfig()
	_, err := genima.RunSuite(cfg, genima.SuiteOptions{
		Scale:     genima.TestScale,
		Protocols: []genima.Protocol{genima.Base, genima.GeNIMA},
		Verify:    true,
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
}
