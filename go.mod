module genima

go 1.22
